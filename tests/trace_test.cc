#include "common/trace.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/thread_pool.h"
#include "core/metrics.h"
#include "gtest/gtest.h"
#include "net/channel.h"

namespace sknn {
namespace {

using trace::SpanRecord;
using trace::TraceSpan;
using trace::Tracer;

// Every test starts from a clean, enabled tracer and restores the default
// disabled state afterwards so tests stay order-independent.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Global().Enable(); }
  void TearDown() override { Tracer::Global().Disable(); }
};

std::vector<std::string> Paths(const std::vector<SpanRecord>& records) {
  std::vector<std::string> out;
  for (const SpanRecord& r : records) out.push_back(r.path);
  return out;
}

TEST_F(TraceTest, NestedSpansRecordFullPath) {
  {
    TraceSpan outer("query");
    {
      TraceSpan mid("party_a.distance");
      TraceSpan inner("unit");
    }
  }
  const auto records = Tracer::Global().Records();
  // Children close before parents, so records appear innermost-first.
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].path, "query/party_a.distance/unit");
  EXPECT_EQ(records[1].path, "query/party_a.distance");
  EXPECT_EQ(records[2].path, "query");
  // Parent durations include their children.
  EXPECT_GE(records[2].dur_ns, records[1].dur_ns);
  EXPECT_GE(records[1].dur_ns, records[0].dur_ns);
}

TEST_F(TraceTest, SequentialSpansShareNoAncestry) {
  { TraceSpan a("alpha"); }
  { TraceSpan b("beta"); }
  const auto paths = Paths(Tracer::Global().Records());
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "alpha");
  EXPECT_EQ(paths[1], "beta");
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::Global().Disable();
  {
    TraceSpan span("ignored");
    Tracer::Global().AddBytesSent(100);
  }
  EXPECT_TRUE(Tracer::Global().Records().empty());
}

TEST_F(TraceTest, EnableClearsPriorRecords) {
  { TraceSpan span("stale"); }
  ASSERT_EQ(Tracer::Global().Records().size(), 1u);
  Tracer::Global().Enable();
  EXPECT_TRUE(Tracer::Global().Records().empty());
}

TEST_F(TraceTest, BytesAttributeToInnermostSpan) {
  {
    TraceSpan outer("outer");
    Tracer::Global().AddBytesSent(10);
    {
      TraceSpan inner("inner");
      Tracer::Global().AddBytesSent(7);
      Tracer::Global().AddBytesReceived(3);
    }
    Tracer::Global().AddBytesSent(5);
  }
  const auto records = Tracer::Global().Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].path, "outer/inner");
  EXPECT_EQ(records[0].bytes_sent, 7u);
  EXPECT_EQ(records[0].bytes_received, 3u);
  // The parent keeps only its own bytes; children's are not folded in.
  EXPECT_EQ(records[1].path, "outer");
  EXPECT_EQ(records[1].bytes_sent, 15u);
  EXPECT_EQ(records[1].bytes_received, 0u);
}

TEST_F(TraceTest, ChannelMessagesLandOnActiveSpan) {
  net::InMemoryLink link;
  {
    TraceSpan span("transfer.distances");
    ASSERT_TRUE(
        link.a_endpoint()->Send(std::vector<uint8_t>(128, 0xAB)).ok());
    auto received = link.b_endpoint()->Receive();
    ASSERT_TRUE(received.ok());
  }
  const auto records = Tracer::Global().Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].bytes_sent, 128u);
  EXPECT_EQ(records[0].bytes_received, 128u);
}

TEST_F(TraceTest, ParallelForWorkersInheritCallerPath) {
  ThreadPool pool(2);
  {
    TraceSpan phase("party_a.distance");
    pool.ParallelFor(0, 4, [](size_t) { TraceSpan unit("unit"); });
  }
  const auto records = Tracer::Global().Records();
  size_t units = 0;
  for (const SpanRecord& r : records) {
    if (r.path == "party_a.distance/unit") ++units;
  }
  EXPECT_EQ(units, 4u);
}

TEST_F(TraceTest, SummarizeAggregatesByPath) {
  for (int i = 0; i < 3; ++i) {
    TraceSpan span("phase");
    Tracer::Global().AddBytesSent(10);
  }
  const auto summary = trace::Summarize(Tracer::Global().Records());
  ASSERT_EQ(summary.count("phase"), 1u);
  EXPECT_EQ(summary.at("phase").count, 3u);
  EXPECT_EQ(summary.at("phase").bytes_sent, 30u);
  EXPECT_GT(summary.at("phase").total_ns, 0u);
}

TEST_F(TraceTest, PhaseSummaryJsonContainsEveryPath) {
  { TraceSpan a("a"); }
  {
    TraceSpan b("b");
    Tracer::Global().AddBytesReceived(9);
  }
  const std::string json =
      trace::PhaseSummaryJson(trace::Summarize(Tracer::Global().Records()));
  EXPECT_NE(json.find("\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes_received\":9"), std::string::npos);
}

TEST_F(TraceTest, WriteChromeTraceProducesEvents) {
  {
    TraceSpan outer("query");
    TraceSpan inner("client.encrypt");
  }
  const std::string path = ::testing::TempDir() + "trace_test_chrome.json";
  ASSERT_TRUE(trace::WriteGlobalTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(content.find("\"query/client.encrypt\""), std::string::npos);
  EXPECT_NE(content.find("\"phaseSummary\""), std::string::npos);
  EXPECT_NE(content.find("\"counters\""), std::string::npos);
}

TEST(MetricsRegistryTest, CountersAccumulateAndReset) {
  MetricsRegistry reg;
  MetricsRegistry::Counter* c = reg.GetCounter("bgv.evaluator.add");
  c->Increment();
  c->Add(4);
  EXPECT_EQ(c->value(), 5u);
  // Same name returns the same handle.
  EXPECT_EQ(reg.GetCounter("bgv.evaluator.add"), c);
  reg.GetGauge("noise.budget")->Set(12.5);
  EXPECT_DOUBLE_EQ(reg.GetGauge("noise.budget")->value(), 12.5);
  reg.ResetValues();
  EXPECT_EQ(c->value(), 0u);
}

TEST(MetricsRegistryTest, MergeAddsCountersOverwritesGauges) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("x")->Add(2);
  b.GetCounter("x")->Add(3);
  b.GetCounter("y")->Add(1);
  b.GetGauge("g")->Set(7.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("x")->value(), 5u);
  EXPECT_EQ(a.GetCounter("y")->value(), 1u);
  EXPECT_DOUBLE_EQ(a.GetGauge("g")->value(), 7.0);
}

TEST(MetricsRegistryTest, CountersJsonSkipsNothing) {
  MetricsRegistry reg;
  reg.GetCounter("alpha")->Add(1);
  reg.GetCounter("beta")->Add(2);
  const std::string json = reg.CountersJson();
  EXPECT_NE(json.find("\"alpha\":1"), std::string::npos);
  EXPECT_NE(json.find("\"beta\":2"), std::string::npos);
}

TEST(OpCountsExportTest, ExportsNonZeroFieldsUnderPrefix) {
  core::OpCounts ops;
  ops.he_multiplications = 3;
  ops.decryptions = 2;
  MetricsRegistry reg;
  ops.ExportTo(&reg, "core.party_a");
  const auto values = reg.CounterValues();
  ASSERT_EQ(values.count("core.party_a.he_multiplications"), 1u);
  EXPECT_EQ(values.at("core.party_a.he_multiplications"), 3u);
  EXPECT_EQ(values.at("core.party_a.decryptions"), 2u);
  // Zero fields are skipped to keep exports sparse.
  EXPECT_EQ(values.count("core.party_a.rotations"), 0u);
  // A second export accumulates.
  ops.ExportTo(&reg, "core.party_a");
  EXPECT_EQ(reg.GetCounter("core.party_a.he_multiplications")->value(), 6u);
}

TEST(TraceIdTest, MintedIdsAreNonzeroAndDistinct) {
  std::vector<uint64_t> ids;
  for (int i = 0; i < 64; ++i) ids.push_back(trace::MintTraceId());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_NE(ids[i], 0u);
    for (size_t j = i + 1; j < ids.size(); ++j) EXPECT_NE(ids[i], ids[j]);
  }
}

TEST(TraceIdTest, HexRoundTripsAndRejectsMalformed) {
  const uint64_t probes[] = {1, 0xF, 0xabcdef0123456789ull, ~0ull};
  for (uint64_t id : probes) {
    const std::string hex = trace::TraceIdHex(id);
    EXPECT_EQ(trace::ParseTraceIdHex(hex.data(), hex.data() + hex.size()),
              id);
  }
  EXPECT_EQ(trace::TraceIdHex(0), "0");
  const char* bad[] = {"", "xyz", "123g", "0123456789abcdef0"};  // 17 digits
  for (const char* s : bad) {
    EXPECT_EQ(trace::ParseTraceIdHex(s, s + std::strlen(s)), 0u) << s;
  }
}

TEST(TraceIdTest, DerivedIdsDifferAcrossProcessEpochs) {
  // The flight recorder's cross-restart fix: the same record ordinal
  // under different process epochs must not alias.
  const uint64_t e1 = 0x1111111111111111ull, e2 = 0x2222222222222222ull;
  for (uint64_t ordinal = 0; ordinal < 32; ++ordinal) {
    EXPECT_NE(trace::DeriveTraceId(e1, ordinal),
              trace::DeriveTraceId(e2, ordinal));
    EXPECT_NE(trace::DeriveTraceId(e1, ordinal), 0u);
  }
  EXPECT_NE(trace::ProcessEpoch(), 0u);
  EXPECT_EQ(trace::ProcessEpoch(), trace::ProcessEpoch());
}

TEST(TraceIdTest, ScopedTraceIdSetsAndRestores) {
  EXPECT_EQ(trace::CurrentTraceId(), 0u);
  {
    trace::ScopedTraceId outer(0x1234);
    EXPECT_EQ(trace::CurrentTraceId(), 0x1234u);
    {
      trace::ScopedTraceId inner(0x5678);
      EXPECT_EQ(trace::CurrentTraceId(), 0x5678u);
    }
    EXPECT_EQ(trace::CurrentTraceId(), 0x1234u);
  }
  EXPECT_EQ(trace::CurrentTraceId(), 0u);
}

TEST_F(TraceTest, SpansCaptureTheActiveTraceId) {
  {
    trace::ScopedTraceId scoped(0xabcdef0123456789ull);
    TraceSpan span("traced.work");
  }
  {
    TraceSpan span("untraced.work");
  }
  uint64_t traced_id = 0, untraced_id = ~0ull;
  for (const SpanRecord& r : Tracer::Global().Records()) {
    if (r.path == "traced.work") traced_id = r.trace_id;
    if (r.path == "untraced.work") untraced_id = r.trace_id;
  }
  EXPECT_EQ(traced_id, 0xabcdef0123456789ull);
  EXPECT_EQ(untraced_id, 0u);
}

TEST_F(TraceTest, ChromeTraceTagsEventsWithTraceIdAndMeta) {
  {
    trace::ScopedTraceId scoped(0xfeedface12345678ull);
    TraceSpan span("tagged.query");
  }
  const std::string path = ::testing::TempDir() + "trace_test_ids.json";
  trace::TraceMeta meta;
  meta.process = "unit_test";
  meta.peer_clock_offset_ns = -42;
  ASSERT_TRUE(trace::WriteGlobalTrace(meta, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"trace_id\":\"feedface12345678\""),
            std::string::npos);
  EXPECT_NE(content.find("\"traceMeta\""), std::string::npos);
  EXPECT_NE(content.find("\"process\":\"unit_test\""), std::string::npos);
  EXPECT_NE(content.find("\"peer_clock_offset_ns\":-42"), std::string::npos);
}

}  // namespace
}  // namespace sknn
