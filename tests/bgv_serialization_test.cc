#include "bgv/serialization.h"

#include <gtest/gtest.h>

#include "bgv/decryptor.h"
#include "bgv/encoder.h"
#include "bgv/encryptor.h"
#include "bgv/evaluator.h"
#include "common/rng.h"

namespace sknn {
namespace bgv {
namespace {

class BgvSerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto params = BgvParams::CreateCustom(256, 20, 3, 45, 50);
    ASSERT_TRUE(params.ok());
    auto ctx = BgvContext::Create(params.value());
    ASSERT_TRUE(ctx.ok());
    ctx_ = ctx.value();
    rng_ = std::make_unique<Chacha20Rng>(uint64_t{5150});
    KeyGenerator keygen(ctx_, rng_.get());
    sk_ = keygen.GenerateSecretKey();
    pk_ = keygen.GeneratePublicKey(sk_);
    rk_ = keygen.GenerateRelinKeys(sk_);
    gk_ = keygen.GenerateGaloisKeys(sk_, {ctx_->GaloisEltForRotation(1)});
    encoder_ = std::make_unique<BatchEncoder>(ctx_);
    encryptor_ = std::make_unique<Encryptor>(ctx_, pk_, rng_.get());
    decryptor_ = std::make_unique<Decryptor>(ctx_, sk_);
    evaluator_ = std::make_unique<Evaluator>(ctx_);
  }

  std::shared_ptr<const BgvContext> ctx_;
  std::unique_ptr<Chacha20Rng> rng_;
  SecretKey sk_;
  PublicKey pk_;
  RelinKeys rk_;
  GaloisKeys gk_;
  std::unique_ptr<BatchEncoder> encoder_;
  std::unique_ptr<Encryptor> encryptor_;
  std::unique_ptr<Decryptor> decryptor_;
  std::unique_ptr<Evaluator> evaluator_;
};

TEST_F(BgvSerializationTest, CiphertextRoundtripDecrypts) {
  std::vector<uint64_t> v(ctx_->n());
  for (size_t i = 0; i < v.size(); ++i) v[i] = i % 1000;
  auto ct = encryptor_->Encrypt(encoder_->Encode(v).value()).value();
  ByteSink sink;
  WriteCiphertext(ct, &sink);
  ByteSource src(sink.TakeBytes());
  auto back = ReadCiphertext(&src);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(src.AtEnd());
  EXPECT_EQ(back->level, ct.level);
  EXPECT_EQ(back->scale, ct.scale);
  auto pt = decryptor_->Decrypt(back.value());
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(encoder_->Decode(pt.value()), v);
}

TEST_F(BgvSerializationTest, ModSwitchedCiphertextRoundtrip) {
  std::vector<uint64_t> v = {1, 2, 3};
  auto ct = encryptor_->Encrypt(encoder_->Encode(v).value()).value();
  ASSERT_TRUE(evaluator_->ModSwitchToLevelInplace(&ct, 0).ok());
  ByteSink sink;
  WriteCiphertext(ct, &sink);
  ByteSource src(sink.TakeBytes());
  auto back = ReadCiphertext(&src);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->scale, ct.scale);  // scale travels with the ciphertext
  auto pt = decryptor_->Decrypt(back.value());
  ASSERT_TRUE(pt.ok());
  auto decoded = encoder_->Decode(pt.value());
  EXPECT_EQ(decoded[0], 1u);
  EXPECT_EQ(decoded[2], 3u);
}

TEST_F(BgvSerializationTest, PublicKeyRoundtripUsable) {
  ByteSink sink;
  WritePublicKey(pk_, &sink);
  ByteSource src(sink.TakeBytes());
  auto pk2 = ReadPublicKey(&src);
  ASSERT_TRUE(pk2.ok());
  Encryptor enc2(ctx_, pk2.value(), rng_.get());
  auto ct = enc2.Encrypt(encoder_->EncodeScalar(42)).value();
  auto pt = decryptor_->Decrypt(ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(encoder_->Decode(pt.value())[0], 42u);
}

TEST_F(BgvSerializationTest, SecretKeyRoundtripUsable) {
  ByteSink sink;
  WriteSecretKey(sk_, &sink);
  ByteSource src(sink.TakeBytes());
  auto sk2 = ReadSecretKey(&src);
  ASSERT_TRUE(sk2.ok());
  Decryptor dec2(ctx_, sk2.value());
  auto ct = encryptor_->Encrypt(encoder_->EncodeScalar(7)).value();
  auto pt = dec2.Decrypt(ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(encoder_->Decode(pt.value())[0], 7u);
}

TEST_F(BgvSerializationTest, RelinKeysRoundtripUsable) {
  ByteSink sink;
  WriteRelinKeys(rk_, &sink);
  ByteSource src(sink.TakeBytes());
  auto rk2 = ReadRelinKeys(&src);
  ASSERT_TRUE(rk2.ok());
  auto ca = encryptor_->Encrypt(encoder_->EncodeScalar(6)).value();
  auto cb = encryptor_->Encrypt(encoder_->EncodeScalar(7)).value();
  auto prod = evaluator_->MultiplyRelin(ca, cb, rk2.value());
  ASSERT_TRUE(prod.ok());
  auto pt = decryptor_->Decrypt(prod.value());
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(encoder_->Decode(pt.value())[0], 42u);
}

TEST_F(BgvSerializationTest, GaloisKeysRoundtripUsable) {
  ByteSink sink;
  WriteGaloisKeys(gk_, &sink);
  ByteSource src(sink.TakeBytes());
  auto gk2 = ReadGaloisKeys(&src);
  ASSERT_TRUE(gk2.ok());
  EXPECT_EQ(gk2->keys.size(), gk_.keys.size());
  std::vector<uint64_t> v(ctx_->n());
  for (size_t i = 0; i < v.size(); ++i) v[i] = i;
  auto ct = encryptor_->Encrypt(encoder_->Encode(v).value()).value();
  ASSERT_TRUE(evaluator_->RotateRowsInplace(&ct, 1, gk2.value()).ok());
  auto pt = decryptor_->Decrypt(ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(encoder_->Decode(pt.value())[0], 1u);
}

TEST_F(BgvSerializationTest, PlaintextRoundtrip) {
  auto pt = encoder_->Encode({9, 8, 7}).value();
  ByteSink sink;
  WritePlaintext(pt, &sink);
  ByteSource src(sink.TakeBytes());
  auto back = ReadPlaintext(&src);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->coeffs, pt.coeffs);
}

TEST_F(BgvSerializationTest, TruncatedCiphertextRejected) {
  auto ct = encryptor_->Encrypt(encoder_->EncodeScalar(1)).value();
  ByteSink sink;
  WriteCiphertext(ct, &sink);
  std::vector<uint8_t> bytes = sink.TakeBytes();
  bytes.resize(bytes.size() / 2);
  ByteSource src(std::move(bytes));
  EXPECT_FALSE(ReadCiphertext(&src).ok());
}

TEST_F(BgvSerializationTest, GarbageHeaderRejected) {
  ByteSink sink;
  sink.WriteU64(3);                  // level
  sink.WriteU64(1);                  // scale
  sink.WriteU64(99);                 // absurd size
  ByteSource src(sink.TakeBytes());
  EXPECT_FALSE(ReadCiphertext(&src).ok());
}

TEST_F(BgvSerializationTest, ImplausibleComponentCountRejected) {
  ByteSink sink;
  sink.WriteU64(256);  // n
  sink.WriteU8(1);     // ntt
  sink.WriteU64(1000);  // comps > 64
  ByteSource src(sink.TakeBytes());
  EXPECT_FALSE(ReadRnsPoly(&src).ok());
}

}  // namespace
}  // namespace bgv
}  // namespace sknn
