// Flight recorder (common/flight_recorder.h): ring semantics, JSON shape,
// seed lookup — and the session integration contract: every RunQuery,
// successful or not, appends one record with the five protocol phases,
// counter deltas, noise margins, and a replayable seed.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "common/trace_id.h"
#include "core/session.h"
#include "data/generators.h"
#include "net/faulty_link.h"

namespace sknn {
namespace {

FlightRecord MakeRecord(uint64_t seed, bool ok) {
  FlightRecord r;
  r.seed = seed;
  r.num_points = 16;
  r.dims = 2;
  r.k = 3;
  r.phases.push_back({"query_encrypt", 0.001, 512, 40.5});
  r.phases.push_back({"compute_distances", 0.25, 0, 12.25});
  r.leg_retries = 2;
  r.ok = ok;
  r.status = ok ? "ok" : "deadline exceeded";
  return r;
}

TEST(FlightRecord, JsonShape) {
  const std::string json = MakeRecord(77, true).Json();
  EXPECT_NE(json.find("\"seed\":77"), std::string::npos);
  EXPECT_NE(json.find("\"num_points\":16"), std::string::npos);
  EXPECT_NE(json.find("\"k\":3"), std::string::npos);
  EXPECT_NE(json.find("\"query_encrypt\""), std::string::npos);
  EXPECT_NE(json.find("\"compute_distances\""), std::string::npos);
  EXPECT_NE(json.find("\"leg_retries\":2"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
}

TEST(FlightRecorder, RingEvictsOldest) {
  FlightRecorder recorder(/*capacity=*/4);
  recorder.set_dump_on_error(false);
  for (uint64_t i = 0; i < 6; ++i) recorder.Add(MakeRecord(i, true));
  const auto records = recorder.Records();
  ASSERT_EQ(records.size(), 4u);
  // Oldest two were evicted; ids keep counting across evictions.
  EXPECT_EQ(records.front().seed, 2u);
  EXPECT_EQ(records.back().seed, 5u);
  EXPECT_EQ(records.back().query_id, 5u);
}

TEST(FlightRecorder, FindBySeedPrefersMostRecent) {
  FlightRecorder recorder(8);
  recorder.set_dump_on_error(false);
  recorder.Add(MakeRecord(9, true));
  recorder.Add(MakeRecord(5, true));
  recorder.Add(MakeRecord(9, false));  // same seed, later query
  FlightRecord found;
  ASSERT_TRUE(recorder.FindBySeed(9, &found));
  EXPECT_FALSE(found.ok);
  EXPECT_EQ(found.query_id, 2u);
  EXPECT_FALSE(recorder.FindBySeed(1234, &found));
}

TEST(FlightRecorder, ClearEmptiesRingAndJsonWraps) {
  FlightRecorder recorder(8);
  recorder.Add(MakeRecord(1, true));
  EXPECT_NE(recorder.Json().find("\"flight_records\""), std::string::npos);
  recorder.Clear();
  EXPECT_TRUE(recorder.Records().empty());
}

// --- session integration -------------------------------------------------

core::ProtocolConfig RecorderConfig() {
  core::ProtocolConfig cfg;
  cfg.k = 3;
  cfg.poly_degree = 2;
  cfg.coord_bits = 4;
  cfg.dims = 2;
  cfg.layout = core::Layout::kPacked;
  cfg.preset = bgv::SecurityPreset::kToy;
  cfg.plain_bits = 33;
  cfg.threads = 1;
  cfg.levels = cfg.MinimumLevels();
  return cfg;
}

net::RetryPolicy FastRetries() {
  net::RetryPolicy policy;
  policy.max_receive_polls = 4;
  policy.max_leg_retries = 2;
  policy.base_backoff_us = 0;
  policy.max_backoff_us = 0;
  return policy;
}

TEST(FlightRecorderSession, SuccessfulQueryAppendsFivePhaseRecord) {
  const data::Dataset dataset = data::UniformDataset(16, 2, 15, 42);
  auto session = core::SecureKnnSession::Create(RecorderConfig(), dataset, 7);
  ASSERT_TRUE(session.ok()) << session.status();

  const size_t before = FlightRecorder::Global().Records().size();
  const std::vector<uint64_t> query = data::UniformQuery(2, 15, 11);
  auto result = (*session)->RunQuery(query);
  ASSERT_TRUE(result.ok()) << result.status();

  const auto records = FlightRecorder::Global().Records();
  ASSERT_EQ(records.size(), before + 1);
  const FlightRecord& rec = records.back();
  EXPECT_TRUE(rec.ok);
  EXPECT_EQ(rec.status, "ok");
  EXPECT_EQ(rec.seed, 0u);  // no fault injection active
  EXPECT_EQ(rec.num_points, 16u);
  EXPECT_EQ(rec.dims, 2u);
  EXPECT_EQ(rec.k, 3u);
  ASSERT_EQ(rec.phases.size(), 5u);
  EXPECT_EQ(rec.phases[0].name, "query_encrypt");
  EXPECT_EQ(rec.phases[1].name, "compute_distances");
  EXPECT_EQ(rec.phases[2].name, "find_neighbours");
  EXPECT_EQ(rec.phases[3].name, "return_knn");
  EXPECT_EQ(rec.phases[4].name, "client_decrypt");
  // The BGV phases carry live noise margins (estimator is wired through).
  EXPECT_GT(rec.phases[0].min_noise_budget_bits, 0.0);
  EXPECT_GE(rec.phases[1].min_noise_budget_bits, 0.0);
  EXPECT_GE(rec.phases[3].min_noise_budget_bits, 0.0);
  // Transport phases carry their byte counts.
  EXPECT_GT(rec.phases[0].bytes, 0u);
  EXPECT_GT(rec.phases[2].bytes, 0u);
  EXPECT_GT(rec.phases[3].bytes, 0u);
  for (const auto& phase : rec.phases) EXPECT_GE(phase.seconds, 0.0);
  EXPECT_EQ(rec.leg_retries, 0u);
  EXPECT_EQ(rec.faults_injected, 0u);
}

TEST(FlightRecorderSession, SteadyStateQueryReusesPooledBuffers) {
  // ISSUE acceptance: allocations-per-query must drop >= 10x once the
  // BufferPool is warm. Query 1 populates the free lists (its misses are
  // the cold-start cost); by query 2 at least 90% of buffer requests must
  // be served from the pool, i.e. heap_allocs * 10 <= pool_requests.
  const data::Dataset dataset = data::UniformDataset(16, 2, 15, 43);
  auto session = core::SecureKnnSession::Create(RecorderConfig(), dataset, 7);
  ASSERT_TRUE(session.ok()) << session.status();

  ASSERT_TRUE((*session)->RunQuery(data::UniformQuery(2, 15, 21)).ok());
  ASSERT_TRUE((*session)->RunQuery(data::UniformQuery(2, 15, 22)).ok());

  const auto records = FlightRecorder::Global().Records();
  ASSERT_GE(records.size(), 2u);
  const FlightRecord& warm = records.back();
  // A query makes a substantial number of polynomial temporaries — the
  // floor guards against the counters silently unwiring (0 <= 10*0 would
  // otherwise pass).
  EXPECT_GE(warm.pool_requests, 100u);
  EXPECT_LE(warm.heap_allocs * 10, warm.pool_requests)
      << "warm query hit the heap " << warm.heap_allocs << " times in "
      << warm.pool_requests << " buffer requests";
}

TEST(FlightRecorderSession, FailedQueryRecordsErrorAndReplaySeed) {
  const data::Dataset dataset = data::UniformDataset(16, 2, 15, 42);
  auto session = core::SecureKnnSession::Create(RecorderConfig(), dataset, 7);
  ASSERT_TRUE(session.ok()) << session.status();
  // Drop every frame: the query must fail after exhausting retries.
  auto spec = net::ParseFaultSpec("drop:1.0");
  ASSERT_TRUE(spec.ok());
  (*session)->SetFaultInjection(*spec, /*fault_seed=*/4242);
  (*session)->SetRetryPolicy(FastRetries());

  FlightRecorder::Global().set_dump_on_error(false);
  const size_t before = FlightRecorder::Global().Records().size();
  auto result = (*session)->RunQuery(data::UniformQuery(2, 15, 12));
  FlightRecorder::Global().set_dump_on_error(true);
  ASSERT_FALSE(result.ok());

  const auto records = FlightRecorder::Global().Records();
  ASSERT_EQ(records.size(), before + 1);
  const FlightRecord& rec = records.back();
  EXPECT_FALSE(rec.ok);
  EXPECT_FALSE(rec.status.empty());
  EXPECT_NE(rec.status, "ok");
  EXPECT_EQ(rec.seed, 4242u);  // fault_seed + query index 0: replay key
  EXPECT_GT(rec.faults_injected, 0u);
  // The failure is findable by its replay seed.
  FlightRecord found;
  ASSERT_TRUE(FlightRecorder::Global().FindBySeed(4242, &found));
  EXPECT_FALSE(found.ok);
}

TEST(FlightRecorder, RecordsCarryRestartSafeIdentity) {
  FlightRecorder recorder(/*capacity=*/8);
  recorder.set_dump_on_error(false);
  recorder.Add(MakeRecord(1, true));
  recorder.Add(MakeRecord(2, true));
  const auto records = recorder.Records();
  ASSERT_EQ(records.size(), 2u);
  // Every record is stamped with the live process epoch and a derived
  // nonzero trace id; ids differ between records (the counter moves).
  for (const FlightRecord& r : records) {
    EXPECT_EQ(r.process_epoch, trace::ProcessEpoch());
    EXPECT_NE(r.trace_id, 0u);
  }
  EXPECT_NE(records[0].trace_id, records[1].trace_id);
  // A restarted process (different epoch) cannot alias these ids even
  // at the same query ordinal.
  const uint64_t other_epoch = trace::ProcessEpoch() ^ 0x5555555555555555ull;
  EXPECT_NE(trace::DeriveTraceId(other_epoch, records[0].query_id),
            records[0].trace_id);
}

TEST(FlightRecorder, ExplicitAndThreadLocalTraceIdsWin) {
  FlightRecorder recorder(/*capacity=*/8);
  recorder.set_dump_on_error(false);
  // An explicitly-set trace id (the propagated distributed id) is kept.
  FlightRecord explicit_id = MakeRecord(10, true);
  explicit_id.trace_id = 0xdeadbeefcafef00dull;
  recorder.Add(std::move(explicit_id));
  // With no explicit id, the thread's active id is picked up.
  {
    trace::ScopedTraceId scoped(0x1122334455667788ull);
    recorder.Add(MakeRecord(11, true));
  }
  const auto records = recorder.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, 0xdeadbeefcafef00dull);
  EXPECT_EQ(records[1].trace_id, 0x1122334455667788ull);
  // The JSON emits the ids in the wire/log hex form.
  const std::string json = recorder.Json();
  EXPECT_NE(json.find("\"trace_id\":\"deadbeefcafef00d\""),
            std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"1122334455667788\""),
            std::string::npos);
}

}  // namespace
}  // namespace sknn
