#include "bgv/symmetric.h"

#include <gtest/gtest.h>

#include "bgv/decryptor.h"
#include "bgv/encoder.h"
#include "bgv/encryptor.h"
#include "bgv/evaluator.h"
#include "bgv/serialization.h"

namespace sknn {
namespace bgv {
namespace {

class SymmetricTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto params = BgvParams::CreateCustom(256, 20, 3, 45, 50);
    ASSERT_TRUE(params.ok());
    auto ctx = BgvContext::Create(params.value());
    ASSERT_TRUE(ctx.ok());
    ctx_ = ctx.value();
    rng_ = std::make_unique<Chacha20Rng>(uint64_t{808});
    KeyGenerator keygen(ctx_, rng_.get());
    sk_ = keygen.GenerateSecretKey();
    pk_ = keygen.GeneratePublicKey(sk_);
    rk_ = keygen.GenerateRelinKeys(sk_);
    encoder_ = std::make_unique<BatchEncoder>(ctx_);
    sym_ = std::make_unique<SymmetricEncryptor>(ctx_, sk_, rng_.get());
    pk_enc_ = std::make_unique<Encryptor>(ctx_, pk_, rng_.get());
    decryptor_ = std::make_unique<Decryptor>(ctx_, sk_);
    evaluator_ = std::make_unique<Evaluator>(ctx_);
  }

  std::shared_ptr<const BgvContext> ctx_;
  std::unique_ptr<Chacha20Rng> rng_;
  SecretKey sk_;
  PublicKey pk_;
  RelinKeys rk_;
  std::unique_ptr<BatchEncoder> encoder_;
  std::unique_ptr<SymmetricEncryptor> sym_;
  std::unique_ptr<Encryptor> pk_enc_;
  std::unique_ptr<Decryptor> decryptor_;
  std::unique_ptr<Evaluator> evaluator_;
};

TEST_F(SymmetricTest, EncryptDecryptRoundtrip) {
  std::vector<uint64_t> v = {5, 10, 15, 0, 999};
  auto pt = encoder_->Encode(v).value();
  for (size_t level : {size_t{0}, size_t{1}, size_t{2}}) {
    auto ct = sym_->Encrypt(pt, level);
    ASSERT_TRUE(ct.ok()) << ct.status();
    EXPECT_EQ(ct->level, level);
    auto back = decryptor_->Decrypt(ct.value());
    ASSERT_TRUE(back.ok());
    auto decoded = encoder_->Decode(back.value());
    EXPECT_EQ(decoded[0], 5u);
    EXPECT_EQ(decoded[4], 999u);
  }
}

TEST_F(SymmetricTest, SeededExpansionIsDeterministic) {
  auto pt = encoder_->EncodeScalar(7);
  auto seeded = sym_->EncryptSeeded(pt, 1);
  ASSERT_TRUE(seeded.ok());
  auto ct1 = ExpandSeeded(*ctx_, seeded.value());
  auto ct2 = ExpandSeeded(*ctx_, seeded.value());
  ASSERT_TRUE(ct1.ok() && ct2.ok());
  EXPECT_EQ(ct1->c[1], ct2->c[1]);
}

TEST_F(SymmetricTest, SeededHalvesTheWireSize) {
  auto pt = encoder_->EncodeScalar(7);
  auto seeded = sym_->EncryptSeeded(pt, 1).value();
  auto full = ExpandSeeded(*ctx_, seeded).value();
  ByteSink a, b;
  WriteSeededCiphertext(seeded, &a);
  WriteCiphertext(full, &b);
  EXPECT_LT(a.size(), b.size() * 6 / 10);  // roughly half
}

TEST_F(SymmetricTest, SeededSerializationRoundtrip) {
  auto pt = encoder_->Encode({1, 2, 3}).value();
  auto seeded = sym_->EncryptSeeded(pt, 2).value();
  ByteSink sink;
  WriteSeededCiphertext(seeded, &sink);
  ByteSource src(sink.TakeBytes());
  auto back = ReadSeededCiphertext(&src);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(src.AtEnd());
  auto ct = ExpandSeeded(*ctx_, back.value());
  ASSERT_TRUE(ct.ok());
  auto decoded = encoder_->Decode(decryptor_->Decrypt(ct.value()).value());
  EXPECT_EQ(decoded[0], 1u);
  EXPECT_EQ(decoded[2], 3u);
}

TEST_F(SymmetricTest, InteroperatesWithPublicKeyCiphertexts) {
  // symmetric Enc(3) * public Enc(5) + symmetric Enc(2) == 17 slot-wise.
  auto c_sym3 = sym_->Encrypt(encoder_->EncodeScalar(3), ctx_->max_level());
  auto c_pk5 = pk_enc_->Encrypt(encoder_->EncodeScalar(5));
  auto c_sym2 = sym_->Encrypt(encoder_->EncodeScalar(2), ctx_->max_level());
  ASSERT_TRUE(c_sym3.ok() && c_pk5.ok() && c_sym2.ok());
  auto prod = evaluator_->MultiplyRelin(c_sym3.value(), c_pk5.value(), rk_);
  ASSERT_TRUE(prod.ok());
  Ciphertext acc = std::move(prod).value();
  ASSERT_TRUE(evaluator_->AddInplace(&acc, c_sym2.value()).ok());
  auto decoded = encoder_->Decode(decryptor_->Decrypt(acc).value());
  for (uint64_t v : decoded) EXPECT_EQ(v, 17u);
}

TEST_F(SymmetricTest, FreshSymmetricNoiseIsLowerThanPublicKey) {
  auto pt = encoder_->EncodeScalar(1);
  auto c_sym = sym_->Encrypt(pt, ctx_->max_level()).value();
  auto c_pk = pk_enc_->Encrypt(pt).value();
  auto b_sym = decryptor_->NoiseBudgetBits(c_sym).value();
  auto b_pk = decryptor_->NoiseBudgetBits(c_pk).value();
  EXPECT_GE(b_sym, b_pk);  // no u-convolution term in the symmetric form
}

TEST_F(SymmetricTest, DistinctEncryptionsDistinctSeeds) {
  auto pt = encoder_->EncodeScalar(9);
  auto a = sym_->EncryptSeeded(pt, 1).value();
  auto b = sym_->EncryptSeeded(pt, 1).value();
  EXPECT_NE(a.seed, b.seed);
  EXPECT_NE(a.c0, b.c0);
}

TEST_F(SymmetricTest, RejectsBadLevels) {
  auto pt = encoder_->EncodeScalar(1);
  EXPECT_FALSE(sym_->EncryptSeeded(pt, 99).ok());
}

TEST_F(SymmetricTest, ExpandValidatesShape) {
  auto pt = encoder_->EncodeScalar(1);
  auto seeded = sym_->EncryptSeeded(pt, 1).value();
  seeded.level = 2;  // now inconsistent with c0's component count
  EXPECT_FALSE(ExpandSeeded(*ctx_, seeded).ok());
}

}  // namespace
}  // namespace bgv
}  // namespace sknn
