#include "baseline/subprotocols.h"

#include <gtest/gtest.h>

namespace sknn {
namespace baseline {
namespace {

class SubprotocolsTest : public ::testing::Test {
 protected:
  static constexpr size_t kValueBits = 12;

  void SetUp() override {
    rng_ = std::make_unique<Chacha20Rng>(uint64_t{1234});
    auto kp = paillier::GeneratePaillierKeys(192, rng_.get());
    ASSERT_TRUE(kp.ok()) << kp.status();
    pk_ = kp->pk;
    c2_ = std::make_unique<CloudC2>(kp->pk, kp->sk, 11);
    c1_ = std::make_unique<Subprotocols>(kp->pk, c2_.get(), kValueBits, 12);
    dec_ = std::make_unique<paillier::PaillierDecryptor>(kp->pk, kp->sk);
    enc_ = std::make_unique<paillier::PaillierEncryptor>(kp->pk, rng_.get());
  }

  BigUint Enc(uint64_t v) { return enc_->EncryptU64(v).value(); }
  uint64_t Dec(const BigUint& c) { return dec_->Decrypt(c)->ToU64(); }

  std::vector<BigUint> EncBits(uint64_t v) {
    std::vector<BigUint> bits(kValueBits);
    for (size_t i = 0; i < kValueBits; ++i) bits[i] = Enc((v >> i) & 1);
    return bits;
  }

  std::unique_ptr<Chacha20Rng> rng_;
  paillier::PaillierPublicKey pk_;
  std::unique_ptr<CloudC2> c2_;
  std::unique_ptr<Subprotocols> c1_;
  std::unique_ptr<paillier::PaillierDecryptor> dec_;
  std::unique_ptr<paillier::PaillierEncryptor> enc_;
};

TEST_F(SubprotocolsTest, SecureMultiplyCorrect) {
  for (auto [a, b] : {std::pair<uint64_t, uint64_t>{3, 5},
                      {0, 100},
                      {4095, 4095},
                      {1, 0}}) {
    auto prod = c1_->SecureMultiply(Enc(a), Enc(b));
    ASSERT_TRUE(prod.ok()) << prod.status();
    EXPECT_EQ(Dec(prod.value()), a * b);
  }
}

TEST_F(SubprotocolsTest, SecureMultiplyBatchCountsOneRound) {
  const uint64_t before = c1_->rounds();
  std::vector<BigUint> a = {Enc(2), Enc(3), Enc(4)};
  std::vector<BigUint> b = {Enc(5), Enc(6), Enc(7)};
  auto out = c1_->SecureMultiplyBatch(a, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(c1_->rounds() - before, 1u);
  EXPECT_EQ(Dec((*out)[0]), 10u);
  EXPECT_EQ(Dec((*out)[1]), 18u);
  EXPECT_EQ(Dec((*out)[2]), 28u);
}

TEST_F(SubprotocolsTest, SecureSquaredDistanceCorrect) {
  std::vector<BigUint> p = {Enc(3), Enc(10), Enc(0)};
  std::vector<BigUint> q = {Enc(7), Enc(4), Enc(2)};
  auto d = c1_->SecureSquaredDistance(p, q);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(Dec(d.value()), 16u + 36u + 4u);
}

TEST_F(SubprotocolsTest, SecureBitDecomposeCorrect) {
  for (uint64_t v : {0ull, 1ull, 2ull, 1000ull, 4095ull, 2731ull}) {
    auto bits = c1_->SecureBitDecompose(Enc(v));
    ASSERT_TRUE(bits.ok()) << bits.status();
    ASSERT_EQ(bits->size(), kValueBits);
    uint64_t reconstructed = 0;
    for (size_t i = 0; i < kValueBits; ++i) {
      uint64_t bit = Dec((*bits)[i]);
      ASSERT_LE(bit, 1u);
      reconstructed |= bit << i;
    }
    EXPECT_EQ(reconstructed, v);
  }
}

TEST_F(SubprotocolsTest, SbdBatchUsesOneRoundPerBit) {
  const uint64_t before = c1_->rounds();
  auto bits = c1_->SecureBitDecomposeBatch({Enc(77), Enc(99), Enc(4000)});
  ASSERT_TRUE(bits.ok());
  EXPECT_EQ(c1_->rounds() - before, kValueBits);
}

TEST_F(SubprotocolsTest, BitsToValueRoundtrip) {
  auto bits = c1_->SecureBitDecompose(Enc(1234));
  ASSERT_TRUE(bits.ok());
  EXPECT_EQ(Dec(c1_->BitsToValue(bits.value())), 1234u);
}

TEST_F(SubprotocolsTest, SecureMinCorrect) {
  for (auto [u, v] : {std::pair<uint64_t, uint64_t>{5, 9},
                      {9, 5},
                      {0, 4095},
                      {77, 77},
                      {0, 0},
                      {2048, 2047}}) {
    auto r = c1_->SecureMin(EncBits(u), EncBits(v));
    ASSERT_TRUE(r.ok()) << r.status();
    uint64_t min_val = 0;
    for (size_t i = 0; i < kValueBits; ++i) {
      min_val |= Dec(r->min_bits[i]) << i;
    }
    EXPECT_EQ(min_val, std::min(u, v)) << "u=" << u << " v=" << v;
    // u_is_min consistent with the picked value.
    const uint64_t b = Dec(r->u_is_min);
    ASSERT_LE(b, 1u);
    EXPECT_EQ(b ? u : v, min_val);
  }
}

TEST_F(SubprotocolsTest, SecureMinRandomized) {
  Chacha20Rng vals(uint64_t{55});
  for (int i = 0; i < 15; ++i) {
    uint64_t u = vals.UniformBelow(1 << kValueBits);
    uint64_t v = vals.UniformBelow(1 << kValueBits);
    auto r = c1_->SecureMin(EncBits(u), EncBits(v));
    ASSERT_TRUE(r.ok());
    uint64_t min_val = 0;
    for (size_t b = 0; b < kValueBits; ++b) {
      min_val |= Dec(r->min_bits[b]) << b;
    }
    EXPECT_EQ(min_val, std::min(u, v));
  }
}

TEST_F(SubprotocolsTest, SecureMinNTournament) {
  std::vector<uint64_t> values = {500, 17, 1000, 17, 3000, 42, 4095};
  std::vector<std::vector<BigUint>> bits;
  for (uint64_t v : values) bits.push_back(EncBits(v));
  auto min_bits = c1_->SecureMinN(bits);
  ASSERT_TRUE(min_bits.ok());
  uint64_t min_val = 0;
  for (size_t b = 0; b < kValueBits; ++b) {
    min_val |= Dec((*min_bits)[b]) << b;
  }
  EXPECT_EQ(min_val, 17u);
}

TEST_F(SubprotocolsTest, SecureMinNSingleValue) {
  auto min_bits = c1_->SecureMinN({EncBits(321)});
  ASSERT_TRUE(min_bits.ok());
  uint64_t v = 0;
  for (size_t b = 0; b < kValueBits; ++b) v |= Dec((*min_bits)[b]) << b;
  EXPECT_EQ(v, 321u);
}

TEST_F(SubprotocolsTest, OpsAndBytesAccumulate) {
  auto r = c1_->SecureMultiply(Enc(2), Enc(3));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(c1_->ops().encryptions, 0u);
  EXPECT_GT(c2_->ops().decryptions, 0u);
  EXPECT_GT(c1_->bytes_exchanged(), 0u);
}

}  // namespace
}  // namespace baseline
}  // namespace sknn
