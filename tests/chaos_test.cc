// Chaos harness (ISSUE: fault-tolerant transport). Runs hundreds of
// complete secure k-NN queries through a FaultyLink under every single
// fault mode plus a mixed soak, and enforces the contract of DESIGN.md §8:
// every query either returns the *exact* plaintext k-NN answer or a clean
// typed error — never a crash, a hang (receives are poll-bounded), or a
// silently wrong answer.

#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "common/metrics_registry.h"
#include "core/session.h"
#include "data/generators.h"
#include "knn/knn.h"
#include "net/faulty_link.h"

namespace sknn {
namespace core {
namespace {

ProtocolConfig ChaosConfig() {
  ProtocolConfig cfg;
  cfg.k = 3;
  cfg.poly_degree = 2;
  cfg.coord_bits = 4;
  cfg.dims = 2;
  cfg.layout = Layout::kPacked;
  cfg.preset = bgv::SecurityPreset::kToy;
  cfg.plain_bits = 33;
  cfg.threads = 1;
  cfg.levels = cfg.MinimumLevels();
  return cfg;
}

// Transport retries with no real sleeping, so the soak stays fast.
net::RetryPolicy FastRetries() {
  net::RetryPolicy policy;
  policy.max_receive_polls = 16;
  policy.max_leg_retries = 8;
  policy.base_backoff_us = 0;
  policy.max_backoff_us = 0;
  return policy;
}

std::vector<uint64_t> SortedDistances(
    const std::vector<std::vector<uint64_t>>& points,
    const std::vector<uint64_t>& query) {
  std::vector<uint64_t> out;
  for (const auto& p : points) {
    uint64_t sum = 0;
    for (size_t j = 0; j < query.size(); ++j) {
      uint64_t d = p[j] > query[j] ? p[j] - query[j] : query[j] - p[j];
      sum += d * d;
    }
    out.push_back(sum);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> ReferenceDistances(const data::Dataset& data,
                                         const std::vector<uint64_t>& query,
                                         size_t k) {
  auto ref = knn::PlaintextKnn(data, query, k);
  EXPECT_TRUE(ref.ok());
  std::vector<uint64_t> out;
  for (const auto& nb : ref.value()) out.push_back(nb.squared_distance);
  std::sort(out.begin(), out.end());
  return out;
}

// The only statuses a faulted transport may surface. Anything else (e.g.
// kOutOfRange from the ciphertext parser) means corrupt bytes slipped past
// the frame checksum — exactly the failure class the envelope exists to
// prevent.
bool IsCleanTransportError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:  // drop/delay beyond the poll budget
    case StatusCode::kDataLoss:          // corrupt frame or desync
    case StatusCode::kUnavailable:       // raw link ran dry
    case StatusCode::kAborted:
      return true;
    case StatusCode::kFailedPrecondition:  // flipped version byte: fatal
      return true;
    default:
      return false;
  }
}

struct ChaosTally {
  int ok = 0;
  int typed_errors = 0;
  int recovered = 0;  // queries that succeeded after >= 1 leg re-issue
};

// Runs `num_queries` queries under `spec_str` faults and enforces the
// exact-or-typed-error contract on every one of them.
ChaosTally RunChaos(SecureKnnSession* session, const data::Dataset& dataset,
                    const std::string& spec_str, uint64_t fault_seed,
                    int num_queries) {
  auto spec = net::ParseFaultSpec(spec_str);
  EXPECT_TRUE(spec.ok()) << spec.status();
  session->SetFaultInjection(*spec, fault_seed);
  session->SetRetryPolicy(FastRetries());

  // Thousands of failures are injected on purpose: silence the automatic
  // per-error dump and print only the first failing query's flight record,
  // which carries the replay seed for `--fault-seed` reproduction.
  FlightRecorder::Global().set_dump_on_error(false);
  bool dumped_first_failure = false;

  const ProtocolConfig& cfg = session->config();
  ChaosTally tally;
  for (int q = 0; q < num_queries; ++q) {
    const std::vector<uint64_t> query = data::UniformQuery(
        cfg.dims, (1u << cfg.coord_bits) - 1, fault_seed * 1000 + q);
    auto result = session->RunQuery(query);
    if (result.ok()) {
      ++tally.ok;
      if (result->recovered_legs > 0) ++tally.recovered;
      // Exactness: a success under faults must be bit-for-bit the same
      // answer as plaintext k-NN — a recovered leg may never change the
      // result.
      EXPECT_EQ(SortedDistances(result->neighbours, query),
                ReferenceDistances(dataset, query, cfg.k))
          << "wrong answer under faults '" << spec_str << "', query " << q;
    } else {
      ++tally.typed_errors;
      EXPECT_TRUE(IsCleanTransportError(result.status()))
          << "non-transport error leaked through under '" << spec_str
          << "', query " << q << ": " << result.status();
      EXPECT_FALSE(result.status().message().empty());
      if (!dumped_first_failure) {
        dumped_first_failure = true;
        const auto records = FlightRecorder::Global().Records();
        if (!records.empty()) {
          std::cout << "[chaos] first failing query under '" << spec_str
                    << "' (replay seed " << records.back().seed
                    << "): " << records.back().Json() << "\n";
        }
      }
    }
  }
  // Turn injection back off so later tests start clean.
  session->SetFaultInjection(net::FaultSpec(), 0);
  FlightRecorder::Global().set_dump_on_error(true);
  return tally;
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::Dataset(data::UniformDataset(16, 2, 15, 42));
    auto session = SecureKnnSession::Create(ChaosConfig(), *dataset_, 7);
    ASSERT_TRUE(session.ok()) << session.status();
    session_ = session->release();
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static data::Dataset* dataset_;
  static SecureKnnSession* session_;
};

data::Dataset* ChaosTest::dataset_ = nullptr;
SecureKnnSession* ChaosTest::session_ = nullptr;

// 6 modes x 60 queries = 360 single-fault queries.
TEST_F(ChaosTest, EverySingleFaultModeIsSurvived) {
  const struct {
    const char* spec;
    bool lossless;  // mode cannot lose data -> zero failures expected
  } kModes[] = {
      {"drop:0.1", false},   {"dup:0.1", true},      {"flip:0.1", false},
      {"trunc:0.1", false},  {"reorder:0.1", true},  {"delay:0.1:2", true},
  };
  uint64_t seed = 100;
  int total_recovered = 0;
  for (const auto& mode : kModes) {
    SCOPED_TRACE(mode.spec);
    const ChaosTally tally = RunChaos(session_, *dataset_, mode.spec,
                                      /*fault_seed=*/seed++, 60);
    EXPECT_EQ(tally.ok + tally.typed_errors, 60);
    // Duplicates, reorders, and short delays are absorbed by the framing
    // layer without even a leg retry's worth of disruption to the caller.
    if (mode.lossless) {
      EXPECT_EQ(tally.typed_errors, 0) << "lossless mode produced errors";
    }
    // At 10% the overwhelming majority of queries must come back exact.
    EXPECT_GE(tally.ok, 50) << "too many failures under " << mode.spec;
    total_recovered += tally.recovered;
  }
  // The retry machinery must actually have engaged somewhere.
  EXPECT_GT(total_recovered, 0);
}

// 150-query soak with every fault mode active at once.
TEST_F(ChaosTest, MixedFaultSoak) {
  const ChaosTally tally = RunChaos(
      session_, *dataset_,
      "drop:0.03,dup:0.03,flip:0.03,trunc:0.03,reorder:0.03,delay:0.03:2",
      /*fault_seed=*/500, 150);
  EXPECT_EQ(tally.ok + tally.typed_errors, 150);
  EXPECT_GE(tally.ok, 120) << "soak success rate collapsed";
  EXPECT_GT(tally.recovered, 0) << "soak never exercised leg recovery";
}

// Same session seed + same fault seed => the same success/failure pattern
// and the same answers: the whole chaos run is replayable.
TEST_F(ChaosTest, FaultInjectionIsDeterministic) {
  auto run = [&]() {
    auto session = SecureKnnSession::Create(ChaosConfig(), *dataset_, 7);
    EXPECT_TRUE(session.ok());
    std::vector<std::string> transcript;
    auto spec = net::ParseFaultSpec("drop:0.2,flip:0.1").value();
    (*session)->SetFaultInjection(spec, 77);
    (*session)->SetRetryPolicy(FastRetries());
    for (int q = 0; q < 15; ++q) {
      const std::vector<uint64_t> query = data::UniformQuery(2, 15, 900 + q);
      auto result = (*session)->RunQuery(query);
      if (result.ok()) {
        std::string entry = "ok:";
        for (uint64_t d : SortedDistances(result->neighbours, query)) {
          entry += std::to_string(d) + ",";
        }
        entry += " legs=" + std::to_string(result->recovered_legs);
        transcript.push_back(entry);
      } else {
        transcript.push_back("err:" +
                             std::string(StatusCodeToString(
                                 result.status().code())));
      }
    }
    return transcript;
  };
  EXPECT_EQ(run(), run());
}

// Queries that needed a leg re-issue are bit-exact, and the counters that
// README documents (net.retries/net.leg_retries/query.recovered,
// net.faults.*, net.corrupt_frames) actually move.
TEST_F(ChaosTest, RecoveryCountersMove) {
  auto& registry = MetricsRegistry::Global();
  const uint64_t recovered_before =
      registry.GetCounter("query.recovered")->value();
  const uint64_t leg_retries_before =
      registry.GetCounter("net.leg_retries")->value();
  const uint64_t corrupt_before =
      registry.GetCounter("net.corrupt_frames")->value();
  const uint64_t flips_before =
      registry.GetCounter("net.faults.bitflip")->value();

  const ChaosTally tally =
      RunChaos(session_, *dataset_, "flip:0.25", /*fault_seed=*/900, 30);
  EXPECT_GT(tally.recovered, 0);
  EXPECT_GT(registry.GetCounter("query.recovered")->value(), recovered_before);
  EXPECT_GT(registry.GetCounter("net.leg_retries")->value(),
            leg_retries_before);
  EXPECT_GT(registry.GetCounter("net.corrupt_frames")->value(), corrupt_before);
  EXPECT_GT(registry.GetCounter("net.faults.bitflip")->value(), flips_before);
}

// Fault-free framing overhead on the A<->B link stays under 1% (the ISSUE
// acceptance bound), with the worst-case (uncompressed indicators) payload
// mix; LinkStats and the frame counters agree on the message count.
TEST_F(ChaosTest, FramingOverheadUnderOnePercent) {
  ProtocolConfig cfg = ChaosConfig();
  cfg.compress_indicators = false;
  auto session = SecureKnnSession::Create(cfg, *dataset_, 7);
  ASSERT_TRUE(session.ok());

  auto& registry = MetricsRegistry::Global();
  const uint64_t sent_before = registry.GetCounter("net.frames.sent")->value();
  const uint64_t overhead_before =
      registry.GetCounter("net.frames.overhead_bytes")->value();

  const std::vector<uint64_t> query = data::UniformQuery(2, 15, 321);
  auto result = (*session)->RunQuery(query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->recovered_legs, 0u);
  EXPECT_EQ(result->ab_link.rounds, 2u);

  const uint64_t messages =
      result->ab_link.messages_a_to_b + result->ab_link.messages_b_to_a;
  EXPECT_EQ(registry.GetCounter("net.frames.sent")->value() - sent_before,
            messages);
  const uint64_t overhead =
      registry.GetCounter("net.frames.overhead_bytes")->value() -
      overhead_before;
  EXPECT_EQ(overhead, messages * net::kFrameHeaderBytes);
  // LinkStats counts framed bytes; the envelope is < 1% of the traffic.
  EXPECT_LT(overhead * 100, result->ab_link.total_bytes())
      << "framing overhead " << overhead << " B of "
      << result->ab_link.total_bytes() << " B";
}

// --- Socket transport (net::SocketLink): the identical frames over real
// loopback TCP. The kernel adds its own behaviours — coalescing, partial
// reads, buffered in-flight bytes during a drain — so the exactness and
// typed-error contracts are re-pinned on this transport.

// Clean run over sockets: bit-exact answers, both protocol rounds, and
// the same message counts as the in-memory link.
TEST_F(ChaosTest, SocketTransportCleanRunIsExact) {
  auto session = SecureKnnSession::Create(ChaosConfig(), *dataset_, 7);
  ASSERT_TRUE(session.ok()) << session.status();
  (*session)->SetTransport(SecureKnnSession::Transport::kSocket);
  // Real sockets need a real poll budget (kernel latency), unlike the
  // in-memory link's instant delivery — but each 20ms poll returns as
  // soon as bytes arrive, so 25 polls (500ms) is generous on loopback
  // while keeping genuinely-dropped legs cheap to detect.
  net::RetryPolicy policy = FastRetries();
  policy.max_receive_polls = 25;
  (*session)->SetRetryPolicy(policy);
  for (int q = 0; q < 3; ++q) {
    const std::vector<uint64_t> query = data::UniformQuery(2, 15, 4200 + q);
    auto result = (*session)->RunQuery(query);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->recovered_legs, 0u);
    EXPECT_EQ(SortedDistances(result->neighbours, query),
              ReferenceDistances(*dataset_, query, ChaosConfig().k));
    EXPECT_EQ(result->ab_link.rounds, 2u)
        << "socket transport changed the round structure";
    EXPECT_GT(result->ab_link.bytes_a_to_b, 0u);
    EXPECT_GT(result->ab_link.bytes_b_to_a, 0u);
  }
}

// The full mixed fault soak over real sockets: FaultyLink decorates the
// socket endpoints exactly as it decorates the in-memory ones, and every
// query must still end exact-or-typed-error.
TEST_F(ChaosTest, SocketTransportSurvivesMixedFaults) {
  auto session = SecureKnnSession::Create(ChaosConfig(), *dataset_, 7);
  ASSERT_TRUE(session.ok()) << session.status();
  (*session)->SetTransport(SecureKnnSession::Transport::kSocket);
  net::RetryPolicy policy = FastRetries();
  policy.max_receive_polls = 25;
  (*session)->SetRetryPolicy(policy);

  auto spec = net::ParseFaultSpec(
      "drop:0.03,dup:0.03,flip:0.03,trunc:0.03,reorder:0.03,delay:0.03:2");
  ASSERT_TRUE(spec.ok()) << spec.status();
  (*session)->SetFaultInjection(*spec, 4400);
  FlightRecorder::Global().set_dump_on_error(false);

  ChaosTally tally;
  for (int q = 0; q < 40; ++q) {
    const std::vector<uint64_t> query = data::UniformQuery(2, 15, 4400 + q);
    auto result = (*session)->RunQuery(query);
    if (result.ok()) {
      ++tally.ok;
      if (result->recovered_legs > 0) ++tally.recovered;
      EXPECT_EQ(SortedDistances(result->neighbours, query),
                ReferenceDistances(*dataset_, query, ChaosConfig().k))
          << "wrong answer under faults over sockets, query " << q;
    } else {
      ++tally.typed_errors;
      EXPECT_TRUE(IsCleanTransportError(result.status()))
          << "non-transport error over sockets, query " << q << ": "
          << result.status();
    }
  }
  FlightRecorder::Global().set_dump_on_error(true);
  EXPECT_EQ(tally.ok + tally.typed_errors, 40);
  EXPECT_GE(tally.ok, 30) << "socket soak success rate collapsed";
  EXPECT_GT(tally.recovered, 0)
      << "socket soak never exercised leg recovery";
}

}  // namespace
}  // namespace core
}  // namespace sknn
