// Process-level chaos harness (ctest label: process_chaos): the REAL
// sknn_server_a / sknn_server_b binaries under process-level faults —
// SIGKILL and restart of Party B, stalls and partitions injected by the
// chaos_proxy TCP relay, and SIGTERM graceful drain. The invariant under
// every fault is the robustness contract of DESIGN.md §8/§9: a query
// ends in the exact brute-force k-NN answer or in a clean typed error —
// never a hang, never a wrong or partial answer.
//
// The server binaries' paths are injected by CMake as compile
// definitions, so the harness always tests the binaries built alongside
// it.

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/server.h"
#include "data/generators.h"
#include "knn/knn.h"
#include "obs/telemetry_http.h"

namespace sknn {
namespace core {
namespace {

using Clock = std::chrono::steady_clock;

// The deployment both server binaries derive from these flags; the
// in-test client must derive the identical one or the handshake
// fingerprint rejects it (which is itself the first thing this suite
// would catch after a flag drift).
constexpr int kN = 16;
constexpr int kD = 2;
constexpr int kK = 2;
constexpr int kCoordBits = 4;
constexpr uint64_t kSeed = 7;

ProtocolConfig HarnessConfig() {
  ProtocolConfig cfg;
  cfg.k = kK;
  cfg.dims = kD;
  cfg.coord_bits = kCoordBits;
  cfg.poly_degree = 2;
  cfg.layout = Layout::kPacked;
  cfg.preset = bgv::SecurityPreset::kToy;
  cfg.threads = 1;
  cfg.compress_indicators = true;
  cfg.levels = cfg.MinimumLevels();
  return cfg;
}

std::vector<std::string> CommonServerFlags() {
  return {
      "--n=" + std::to_string(kN),
      "--d=" + std::to_string(kD),
      "--k=" + std::to_string(kK),
      "--coord-bits=" + std::to_string(kCoordBits),
      "--degree=2",
      "--seed=" + std::to_string(kSeed),
      "--preset=toy",
      "--threads=1",
  };
}

// A child process with a captured stdout and a writable stdin. stderr is
// inherited so server diagnostics land in the ctest log.
class Subprocess {
 public:
  Subprocess() = default;
  ~Subprocess() { KillHard(); }
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  bool Start(const std::vector<std::string>& argv) {
    int out_pipe[2] = {-1, -1};
    int in_pipe[2] = {-1, -1};
    if (::pipe(out_pipe) != 0 || ::pipe(in_pipe) != 0) return false;
    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      ::dup2(out_pipe[1], STDOUT_FILENO);
      ::dup2(in_pipe[0], STDIN_FILENO);
      ::close(out_pipe[0]);
      ::close(out_pipe[1]);
      ::close(in_pipe[0]);
      ::close(in_pipe[1]);
      std::vector<char*> args;
      args.reserve(argv.size() + 1);
      for (const std::string& a : argv) {
        args.push_back(const_cast<char*>(a.c_str()));
      }
      args.push_back(nullptr);
      ::execv(args[0], args.data());
      std::perror("execv");
      ::_exit(127);
    }
    ::close(out_pipe[1]);
    ::close(in_pipe[0]);
    out_fd_ = out_pipe[0];
    in_fd_ = in_pipe[1];
    ::fcntl(out_fd_, F_SETFL, O_NONBLOCK);
    return true;
  }

  // Reads child stdout until `pattern` appears in the accumulated
  // capture or `timeout_ms` passes.
  bool ReadUntil(const std::string& pattern, int timeout_ms) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (captured_.find(pattern) == std::string::npos) {
      if (Clock::now() >= deadline) return false;
      pollfd pfd{out_fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 50) <= 0) continue;
      char buf[4096];
      const ssize_t n = ::read(out_fd_, buf, sizeof(buf));
      if (n > 0) {
        captured_.append(buf, static_cast<size_t>(n));
      } else if (n == 0) {
        return captured_.find(pattern) != std::string::npos;
      }
    }
    return true;
  }

  const std::string& captured() const { return captured_; }

  void WriteLine(const std::string& line) {
    const std::string s = line + "\n";
    ssize_t ignored = ::write(in_fd_, s.data(), s.size());
    (void)ignored;
  }

  void Signal(int sig) {
    if (pid_ > 0 && !exited_) ::kill(pid_, sig);
  }

  // Waits up to `timeout_ms` for exit; returns the exit code, or -1 on
  // timeout (128+signal for a signalled child).
  int Wait(int timeout_ms) {
    if (exited_) return exit_code_;
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (Clock::now() < deadline) {
      // Drain stdout so a child blocked on a full pipe can exit.
      (void)ReadUntil("\x01never-matches\x01", 1);
      int status = 0;
      const pid_t r = ::waitpid(pid_, &status, WNOHANG);
      if (r == pid_) {
        exited_ = true;
        exit_code_ = WIFEXITED(status) ? WEXITSTATUS(status)
                                       : 128 + WTERMSIG(status);
        return exit_code_;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return -1;
  }

  void KillHard() {
    if (pid_ > 0 && !exited_) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
      exited_ = true;
      exit_code_ = 128 + SIGKILL;
    }
    if (out_fd_ >= 0) ::close(out_fd_);
    if (in_fd_ >= 0) ::close(in_fd_);
    out_fd_ = in_fd_ = -1;
    pid_ = -1;
  }

 private:
  pid_t pid_ = -1;
  int out_fd_ = -1;
  int in_fd_ = -1;
  std::string captured_;
  bool exited_ = false;
  int exit_code_ = -1;
};

// The port printed after `marker` (trailing digits of the token, with
// any " (fingerprint ...)" suffix stripped): handles both
// "listening on 127.0.0.1:7101 (fingerprint x)" and "listening on 7101".
int ParsePortAfter(const std::string& text, const std::string& marker) {
  const size_t pos = text.find(marker);
  if (pos == std::string::npos) return -1;
  const size_t eol = text.find('\n', pos);
  std::string line = text.substr(
      pos, eol == std::string::npos ? std::string::npos : eol - pos);
  const size_t paren = line.find(" (");
  if (paren != std::string::npos) line = line.substr(0, paren);
  size_t i = line.size();
  while (i > 0 && std::isdigit(static_cast<unsigned char>(line[i - 1]))) --i;
  if (i == line.size()) return -1;
  return std::atoi(line.c_str() + i);
}

// Reserves an ephemeral port and releases it (SO_REUSEADDR on the server
// side makes the immediate re-bind reliable). Needed where a killed
// Party B must restart on the address Party A keeps re-dialling.
uint16_t PickFreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

class ProcessChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::Dataset(
        data::UniformDataset(kN, kD, (uint64_t{1} << kCoordBits) - 1, kSeed));
    auto d = Deployment::Derive(HarnessConfig(), *dataset_, kSeed,
                                /*role_a=*/false);
    ASSERT_TRUE(d.ok()) << d.status();
    deployment_ = new Deployment(std::move(d).value());
  }
  static void TearDownTestSuite() {
    delete deployment_;
    delete dataset_;
    deployment_ = nullptr;
    dataset_ = nullptr;
  }

  static bool StartServerB(Subprocess* proc, uint16_t port,
                           const std::vector<std::string>& extra = {}) {
    std::vector<std::string> argv = {SKNN_SERVER_B_BIN};
    for (const auto& f : CommonServerFlags()) argv.push_back(f);
    argv.push_back("--port=" + std::to_string(port));
    for (const auto& f : extra) argv.push_back(f);
    if (!proc->Start(argv)) return false;
    return proc->ReadUntil("listening on", 120000);
  }

  // Starts A against `peer_port` and returns A's client port, or -1.
  static int StartServerA(Subprocess* proc, uint16_t peer_port,
                          const std::vector<std::string>& extra = {}) {
    std::vector<std::string> argv = {SKNN_SERVER_A_BIN};
    for (const auto& f : CommonServerFlags()) argv.push_back(f);
    argv.push_back("--port=0");
    argv.push_back("--peer-port=" + std::to_string(peer_port));
    argv.push_back("--workers=1");
    argv.push_back("--queue=4");
    for (const auto& f : extra) argv.push_back(f);
    if (!proc->Start(argv)) return -1;
    if (!proc->ReadUntil("listening on", 120000)) return -1;
    return ParsePortAfter(proc->captured(), "listening on");
  }

  static std::vector<uint64_t> ReferenceDistances(
      const std::vector<uint64_t>& query) {
    auto ref = knn::PlaintextKnn(*dataset_, query, kK);
    EXPECT_TRUE(ref.ok());
    std::vector<uint64_t> out;
    for (const auto& nb : ref.value()) out.push_back(nb.squared_distance);
    std::sort(out.begin(), out.end());
    return out;
  }

  static std::vector<uint64_t> AnswerDistances(
      const std::vector<std::vector<uint64_t>>& points,
      const std::vector<uint64_t>& query) {
    std::vector<uint64_t> out;
    for (const auto& p : points) {
      uint64_t sum = 0;
      for (size_t j = 0; j < query.size(); ++j) {
        const uint64_t d =
            p[j] > query[j] ? p[j] - query[j] : query[j] - p[j];
        sum += d * d;
      }
      out.push_back(sum);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  // The acceptance invariant, applied to one query result: exact answer
  // or clean typed (transient) error.
  static void ExpectExactOrTypedTransient(
      const StatusOr<std::vector<std::vector<uint64_t>>>& answer,
      const std::vector<uint64_t>& query, const char* when) {
    if (answer.ok()) {
      EXPECT_EQ(AnswerDistances(answer.value(), query),
                ReferenceDistances(query))
          << when << ": wrong answer";
    } else {
      EXPECT_TRUE(answer.status().IsTransient())
          << when << ": untyped/fatal error " << answer.status();
    }
  }

  // Retries `query` until the service recovers (exact answer) or the
  // budget runs out; every interim failure must be typed transient.
  static bool QueryUntilRecovered(RemoteClient* client,
                                  const std::vector<uint64_t>& query,
                                  int budget_ms, const char* when) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(budget_ms);
    while (Clock::now() < deadline) {
      auto answer = client->Query(query);
      if (answer.ok()) {
        EXPECT_EQ(AnswerDistances(answer.value(), query),
                  ReferenceDistances(query))
            << when << ": wrong answer after recovery";
        return true;
      }
      EXPECT_TRUE(answer.status().IsTransient())
          << when << ": " << answer.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    return false;
  }

  static data::Dataset* dataset_;
  static Deployment* deployment_;
};

data::Dataset* ProcessChaosTest::dataset_ = nullptr;
Deployment* ProcessChaosTest::deployment_ = nullptr;

// SIGKILL Party B mid-service (no FIN, no cleanup — the crash case),
// restart it on the same address, and require Party A to recover without
// any operator action, serving exact answers again.
TEST_F(ProcessChaosTest, SigkillAndRestartPartyBRecovers) {
  const uint16_t b_port = PickFreePort();
  auto server_b = std::make_unique<Subprocess>();
  ASSERT_TRUE(StartServerB(server_b.get(), b_port));
  Subprocess server_a;
  const int a_port = StartServerA(&server_a, b_port);
  ASSERT_GT(a_port, 0) << server_a.captured();

  ServerOptions options;
  auto client = RemoteClient::Connect(
      *deployment_, "127.0.0.1", static_cast<uint16_t>(a_port), options);
  ASSERT_TRUE(client.ok()) << client.status();
  const std::vector<uint64_t> query = data::UniformQuery(kD, 15, 1001);
  auto healthy = (*client)->Query(query);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_EQ(AnswerDistances(healthy.value(), query),
            ReferenceDistances(query));

  // Fire a query and SIGKILL B while it may be mid-exchange. Either
  // outcome is legal; a hang or a wrong answer is not.
  StatusOr<std::vector<std::vector<uint64_t>>> racing =
      UnavailableError("never ran");
  std::thread racer(
      [&] { racing = (*client)->Query(query, /*deadline_ms=*/10000); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server_b->Signal(SIGKILL);
  racer.join();
  ExpectExactOrTypedTransient(racing, query, "query racing SIGKILL");
  server_b->KillHard();  // reap

  // With B dead, queries must keep failing cleanly (typed, bounded).
  auto while_down = (*client)->Query(query, /*deadline_ms=*/5000);
  ASSERT_FALSE(while_down.ok()) << "B is dead; the query cannot succeed";
  EXPECT_TRUE(while_down.status().IsTransient()) << while_down.status();

  // Restart B on the same port; A's supervised reconnect must find it.
  server_b = std::make_unique<Subprocess>();
  ASSERT_TRUE(StartServerB(server_b.get(), b_port));
  EXPECT_TRUE(QueryUntilRecovered(client->get(), query, 60000,
                                  "after B restart"))
      << "Party A never recovered from the B restart";

  // Clean shutdown: both servers drain and exit 0 on SIGTERM.
  server_a.Signal(SIGTERM);
  EXPECT_EQ(server_a.Wait(30000), 0) << server_a.captured();
  server_b->Signal(SIGTERM);
  EXPECT_EQ(server_b->Wait(30000), 0) << server_b->captured();
}

// Stall (bytes accepted, none delivered — the silent-network case) and
// partition (connections die, new ones refused) injected between A and B
// by chaos_proxy. Queries during the fault must fail typed and bounded;
// after heal the service must recover to exact answers.
TEST_F(ProcessChaosTest, StallAndPartitionBetweenAAndBHealCleanly) {
  Subprocess server_b;
  ASSERT_TRUE(StartServerB(&server_b, 0));
  const int b_port = ParsePortAfter(server_b.captured(), "listening on");
  ASSERT_GT(b_port, 0) << server_b.captured();

  Subprocess proxy;
  ASSERT_TRUE(proxy.Start(
      {SKNN_CHAOS_PROXY_BIN, "--upstream-port", std::to_string(b_port)}));
  ASSERT_TRUE(proxy.ReadUntil("listening on", 10000));
  const int proxy_port = ParsePortAfter(proxy.captured(), "listening on");
  ASSERT_GT(proxy_port, 0) << proxy.captured();

  Subprocess server_a;
  const int a_port =
      StartServerA(&server_a, static_cast<uint16_t>(proxy_port));
  ASSERT_GT(a_port, 0) << server_a.captured();

  ServerOptions options;
  auto client = RemoteClient::Connect(
      *deployment_, "127.0.0.1", static_cast<uint16_t>(a_port), options);
  ASSERT_TRUE(client.ok()) << client.status();
  const std::vector<uint64_t> query = data::UniformQuery(kD, 15, 2002);
  auto healthy = (*client)->Query(query);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_EQ(AnswerDistances(healthy.value(), query),
            ReferenceDistances(query));

  // --- Stall ---
  proxy.WriteLine("stall");
  ASSERT_TRUE(proxy.ReadUntil("mode stall", 5000));
  const auto t0 = Clock::now();
  auto stalled = (*client)->Query(query, /*deadline_ms=*/1500);
  const auto stalled_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0)
          .count();
  ExpectExactOrTypedTransient(stalled, query, "query under stall");
  EXPECT_LT(stalled_ms, 15000)
      << "a deadlined query under a stalled network must fail bounded";
  proxy.WriteLine("heal");
  ASSERT_TRUE(proxy.ReadUntil("mode forward", 5000));
  EXPECT_TRUE(QueryUntilRecovered(client->get(), query, 60000, "after stall"))
      << "service never recovered from the stall";

  // --- Partition ---
  proxy.WriteLine("partition");
  ASSERT_TRUE(proxy.ReadUntil("mode partition", 5000));
  auto partitioned = (*client)->Query(query, /*deadline_ms=*/1500);
  ExpectExactOrTypedTransient(partitioned, query, "query under partition");
  proxy.WriteLine("heal");
  // "mode forward" appears once per heal; match the second occurrence by
  // searching the capture AFTER this point via a unique needle: issue a
  // no-op unknown command whose echo is deterministic? Simpler: wait for
  // recovery itself — heal took effect iff queries succeed again.
  EXPECT_TRUE(QueryUntilRecovered(client->get(), query, 60000,
                                  "after partition"))
      << "service never recovered from the partition";

  server_a.Signal(SIGTERM);
  EXPECT_EQ(server_a.Wait(30000), 0) << server_a.captured();
  server_b.Signal(SIGTERM);
  EXPECT_EQ(server_b.Wait(30000), 0) << server_b.captured();
  proxy.WriteLine("quit");
  EXPECT_EQ(proxy.Wait(10000), 0);
}

// SIGTERM drain: in-flight queries finish, the process exits 0, and the
// observability state (Prometheus metrics, flight records) is flushed to
// disk on the way out.
TEST_F(ProcessChaosTest, SigtermDrainsAndFlushesObservability) {
  const std::string tag = std::to_string(::getpid());
  const std::string metrics_path = "/tmp/sknn_chaos_metrics_" + tag + ".prom";
  const std::string flight_path = "/tmp/sknn_chaos_flight_" + tag + ".json";
  std::remove(metrics_path.c_str());
  std::remove(flight_path.c_str());

  Subprocess server_b;
  ASSERT_TRUE(StartServerB(&server_b, 0));
  const int b_port = ParsePortAfter(server_b.captured(), "listening on");
  ASSERT_GT(b_port, 0) << server_b.captured();
  Subprocess server_a;
  const int a_port = StartServerA(
      &server_a, static_cast<uint16_t>(b_port),
      {"--metrics-out=" + metrics_path, "--flight-record=" + flight_path,
       "--drain-ms=5000"});
  ASSERT_GT(a_port, 0) << server_a.captured();

  ServerOptions options;
  auto client = RemoteClient::Connect(
      *deployment_, "127.0.0.1", static_cast<uint16_t>(a_port), options);
  ASSERT_TRUE(client.ok()) << client.status();
  const std::vector<uint64_t> query = data::UniformQuery(kD, 15, 3003);
  for (int q = 0; q < 2; ++q) {
    auto answer = (*client)->Query(query);
    ASSERT_TRUE(answer.ok()) << answer.status();
    EXPECT_EQ(AnswerDistances(answer.value(), query),
              ReferenceDistances(query));
  }

  // SIGTERM while a query is in flight: the drain lets it finish (or
  // sheds it typed), then the process exits 0 with flushed files.
  StatusOr<std::vector<std::vector<uint64_t>>> racing =
      UnavailableError("never ran");
  std::thread racer([&] { racing = (*client)->Query(query); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server_a.Signal(SIGTERM);
  racer.join();
  if (racing.ok()) {
    EXPECT_EQ(AnswerDistances(racing.value(), query),
              ReferenceDistances(query));
  } else {
    EXPECT_TRUE(racing.status().IsTransient()) << racing.status();
  }
  ASSERT_EQ(server_a.Wait(30000), 0) << server_a.captured();
  EXPECT_NE(server_a.captured().find("drained; exiting"), std::string::npos)
      << server_a.captured();

  // Flushed observability: non-empty metrics in Prometheus text form and
  // a flight-record JSON mentioning the per-query phase.
  std::ifstream metrics(metrics_path);
  std::stringstream metrics_text;
  metrics_text << metrics.rdbuf();
  EXPECT_NE(metrics_text.str().find("server"), std::string::npos)
      << "metrics not flushed to " << metrics_path;
  std::ifstream flight(flight_path);
  std::stringstream flight_text;
  flight_text << flight.rdbuf();
  EXPECT_NE(flight_text.str().find("server.query"), std::string::npos)
      << "flight records not flushed to " << flight_path;

  server_b.Signal(SIGTERM);
  EXPECT_EQ(server_b.Wait(30000), 0) << server_b.captured();
  std::remove(metrics_path.c_str());
  std::remove(flight_path.c_str());
}

// The admin plane's readiness contract under real process faults:
// Party A's /readyz must flip to 503 while its B-link is down (B
// SIGKILLed) and while A itself is draining on SIGTERM, and /healthz
// must stay 200 throughout — liveness and readiness are different
// questions. Recovery (B restarted) must flip /readyz back to 200
// with no operator action.
TEST_F(ProcessChaosTest, AdminReadyzTracksDrainAndBOutage) {
  const uint16_t b_port = PickFreePort();
  auto server_b = std::make_unique<Subprocess>();
  ASSERT_TRUE(StartServerB(server_b.get(), b_port, {"--admin-port=0"}));
  ASSERT_TRUE(server_b->ReadUntil("admin listening on", 10000));
  const int b_admin =
      ParsePortAfter(server_b->captured(), "admin listening on");
  ASSERT_GT(b_admin, 0) << server_b->captured();

  Subprocess server_a;
  const int a_port = StartServerA(
      &server_a, b_port,
      {"--admin-port=0", "--drain-ms=10000", "--test-worker-delay-ms=300"});
  ASSERT_GT(a_port, 0) << server_a.captured();
  ASSERT_TRUE(server_a.ReadUntil("admin listening on", 10000));
  const int a_admin = ParsePortAfter(server_a.captured(), "admin listening on");
  ASSERT_GT(a_admin, 0) << server_a.captured();

  auto get = [](int port, const char* path) {
    return obs::HttpGet("127.0.0.1", static_cast<uint16_t>(port), path,
                        /*timeout_ms=*/3000);
  };
  // Polls `path` until it returns `want` or the budget runs out.
  auto await_status = [&get](int port, const char* path, int want,
                             int budget_ms) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(budget_ms);
    int last = -1;
    while (Clock::now() < deadline) {
      auto res = obs::HttpGet("127.0.0.1", static_cast<uint16_t>(port), path,
                              /*timeout_ms=*/3000);
      if (res.ok()) {
        last = res->status;
        if (last == want) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ADD_FAILURE() << path << " on :" << port << " never reached " << want
                  << " (last " << last << ")";
    return false;
  };

  // Healthy steady state: both parties live and ready.
  auto res = get(a_admin, "/readyz");
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->status, 200) << res->body;
  res = get(b_admin, "/readyz");
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->status, 200) << res->body;

  // --- B outage: A must report not-ready, but stay alive. ---
  server_b->Signal(SIGKILL);
  server_b->KillHard();  // reap
  EXPECT_TRUE(await_status(a_admin, "/readyz", 503, 30000))
      << "A never reported its dead B-link on /readyz";
  res = get(a_admin, "/readyz");
  ASSERT_TRUE(res.ok());
  EXPECT_NE(res->body.find("B workers"), std::string::npos) << res->body;
  res = get(a_admin, "/healthz");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->status, 200) << "/healthz is liveness; A is still alive";

  // --- Recovery: restart B on the same port; /readyz flips back. ---
  server_b = std::make_unique<Subprocess>();
  ASSERT_TRUE(StartServerB(server_b.get(), b_port));
  EXPECT_TRUE(await_status(a_admin, "/readyz", 200, 60000))
      << "A never regained readiness after the B restart";

  // --- Drain: SIGTERM with a query in flight (the injected worker
  // delay holds it open); /readyz must flip to 503 while the admin
  // plane itself stays up, then the process exits 0. ---
  ServerOptions options;
  auto client = RemoteClient::Connect(
      *deployment_, "127.0.0.1", static_cast<uint16_t>(a_port), options);
  ASSERT_TRUE(client.ok()) << client.status();
  const std::vector<uint64_t> query = data::UniformQuery(kD, 15, 4004);
  auto warm = (*client)->Query(query);
  ASSERT_TRUE(warm.ok()) << warm.status();

  StatusOr<std::vector<std::vector<uint64_t>>> racing =
      UnavailableError("never ran");
  std::thread racer([&] { racing = (*client)->Query(query); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_a.Signal(SIGTERM);
  EXPECT_TRUE(await_status(a_admin, "/readyz", 503, 5000))
      << "draining A never reported 503 on /readyz";
  racer.join();
  ExpectExactOrTypedTransient(racing, query, "query racing SIGTERM drain");
  EXPECT_EQ(server_a.Wait(30000), 0) << server_a.captured();

  server_b->Signal(SIGTERM);
  EXPECT_EQ(server_b->Wait(30000), 0) << server_b->captured();
}

}  // namespace
}  // namespace core
}  // namespace sknn
