// API misuse must produce Status errors, never crashes or silent
// corruption: wrong-context ciphertexts, invalid rotation arguments,
// out-of-range operations, and operations on malformed ciphertexts.

#include <gtest/gtest.h>

#include "bgv/context.h"
#include "bgv/decryptor.h"
#include "bgv/encoder.h"
#include "bgv/encryptor.h"
#include "bgv/evaluator.h"
#include "bgv/keys.h"
#include "common/rng.h"

namespace sknn {
namespace bgv {
namespace {

struct Deployment {
  std::shared_ptr<const BgvContext> ctx;
  std::unique_ptr<Chacha20Rng> rng;
  SecretKey sk;
  PublicKey pk;
  RelinKeys rk;
  GaloisKeys gk;
  std::unique_ptr<BatchEncoder> encoder;
  std::unique_ptr<Encryptor> encryptor;
  std::unique_ptr<Evaluator> evaluator;
};

Deployment MakeDeployment(size_t n, uint64_t seed) {
  Deployment d;
  auto params = BgvParams::CreateCustom(n, 20, 3, 45, 50);
  EXPECT_TRUE(params.ok());
  d.ctx = BgvContext::Create(params.value()).value();
  d.rng = std::make_unique<Chacha20Rng>(seed);
  KeyGenerator keygen(d.ctx, d.rng.get());
  d.sk = keygen.GenerateSecretKey();
  d.pk = keygen.GeneratePublicKey(d.sk);
  d.rk = keygen.GenerateRelinKeys(d.sk);
  d.gk = keygen.GeneratePowerOfTwoRotationKeys(d.sk);
  d.encoder = std::make_unique<BatchEncoder>(d.ctx);
  d.encryptor = std::make_unique<Encryptor>(d.ctx, d.pk, d.rng.get());
  d.evaluator = std::make_unique<Evaluator>(d.ctx);
  return d;
}

TEST(ApiMisuseTest, ForeignRingCiphertextRejected) {
  Deployment small = MakeDeployment(128, 1);
  Deployment big = MakeDeployment(256, 2);
  Ciphertext foreign =
      small.encryptor->Encrypt(small.encoder->EncodeScalar(1)).value();
  Ciphertext native =
      big.encryptor->Encrypt(big.encoder->EncodeScalar(2)).value();
  EXPECT_FALSE(big.evaluator->AddInplace(&native, foreign).ok());
  EXPECT_FALSE(big.evaluator->Multiply(native, foreign).ok());
  Ciphertext copy = foreign;
  EXPECT_FALSE(big.evaluator->ModSwitchToNextInplace(&copy).ok());
}

TEST(ApiMisuseTest, EmptyCiphertextRejectedEverywhere) {
  Deployment d = MakeDeployment(128, 3);
  Ciphertext empty;
  Ciphertext good = d.encryptor->Encrypt(d.encoder->EncodeScalar(1)).value();
  EXPECT_FALSE(d.evaluator->AddInplace(&good, empty).ok());
  EXPECT_FALSE(d.evaluator->Multiply(good, empty).ok());
  EXPECT_FALSE(d.evaluator->RelinearizeInplace(&good, d.rk).ok());  // size 2
}

TEST(ApiMisuseTest, RelinearizeRequiresSizeThree) {
  Deployment d = MakeDeployment(128, 4);
  Ciphertext ct = d.encryptor->Encrypt(d.encoder->EncodeScalar(1)).value();
  EXPECT_FALSE(d.evaluator->RelinearizeInplace(&ct, d.rk).ok());
}

TEST(ApiMisuseTest, DoubleMultiplyWithoutRelinRejected) {
  Deployment d = MakeDeployment(128, 5);
  Ciphertext a = d.encryptor->Encrypt(d.encoder->EncodeScalar(2)).value();
  auto tensor = d.evaluator->Multiply(a, a);
  ASSERT_TRUE(tensor.ok());
  EXPECT_FALSE(d.evaluator->Multiply(tensor.value(), a).ok());
}

TEST(ApiMisuseTest, FoldBlockValidation) {
  Deployment d = MakeDeployment(128, 6);
  Ciphertext ct = d.encryptor->Encrypt(d.encoder->EncodeScalar(1)).value();
  EXPECT_FALSE(d.evaluator->FoldRowsInplace(&ct, 0, d.gk).ok());
  EXPECT_FALSE(d.evaluator->FoldRowsInplace(&ct, 3, d.gk).ok());     // not 2^k
  EXPECT_FALSE(d.evaluator->FoldRowsInplace(&ct, 256, d.gk).ok());   // > row
  EXPECT_TRUE(d.evaluator->FoldRowsInplace(&ct, 8, d.gk).ok());
}

TEST(ApiMisuseTest, RotationStepNormalization) {
  Deployment d = MakeDeployment(128, 7);
  std::vector<uint64_t> v(d.ctx->n());
  for (size_t i = 0; i < v.size(); ++i) v[i] = i;
  Ciphertext a = d.encryptor->Encrypt(d.encoder->Encode(v).value()).value();
  Ciphertext b = a;
  // step and step + row_size are the same rotation.
  const int row = static_cast<int>(d.ctx->row_size());
  ASSERT_TRUE(d.evaluator->RotateRowsInplace(&a, 3, d.gk).ok());
  ASSERT_TRUE(d.evaluator->RotateRowsInplace(&b, 3 + row, d.gk).ok());
  Decryptor dec(d.ctx, d.sk);
  EXPECT_EQ(d.encoder->Decode(dec.Decrypt(a).value()),
            d.encoder->Decode(dec.Decrypt(b).value()));
  // step 0 is a no-op and must succeed.
  EXPECT_TRUE(d.evaluator->RotateRowsInplace(&a, 0, d.gk).ok());
}

TEST(ApiMisuseTest, DecryptorRejectsMalformedCiphertexts) {
  Deployment d = MakeDeployment(128, 8);
  Decryptor dec(d.ctx, d.sk);
  Ciphertext ct;
  EXPECT_FALSE(dec.Decrypt(ct).ok());
  ct = d.encryptor->Encrypt(d.encoder->EncodeScalar(1)).value();
  ct.level = 99;
  EXPECT_FALSE(dec.Decrypt(ct).ok());
}

TEST(ApiMisuseTest, WrongKeyDecryptsToGarbageNotCrash) {
  Deployment d1 = MakeDeployment(128, 9);
  Deployment d2 = MakeDeployment(128, 10);
  Ciphertext ct =
      d1.encryptor->Encrypt(d1.encoder->EncodeScalar(42)).value();
  Decryptor wrong(d2.ctx, d2.sk);  // same params, different key
  auto pt = wrong.Decrypt(ct);
  ASSERT_TRUE(pt.ok());  // structurally valid...
  EXPECT_NE(d2.encoder->Decode(pt.value())[0], 42u);  // ...semantic garbage
}

}  // namespace
}  // namespace bgv
}  // namespace sknn
