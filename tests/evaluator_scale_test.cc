// Dedicated tests for the BGV correction-factor (scale) machinery — the
// subtlest part of the implementation (see DESIGN.md §3.11): modulus
// switching scales the plaintext by q^{-1} mod t, multiplication multiplies
// the factors, and additions must reconcile mismatched factors.

#include <gtest/gtest.h>

#include "bgv/context.h"
#include "bgv/decryptor.h"
#include "bgv/encoder.h"
#include "bgv/encryptor.h"
#include "bgv/evaluator.h"
#include "bgv/keys.h"
#include "common/rng.h"

namespace sknn {
namespace bgv {
namespace {

class EvaluatorScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto params = BgvParams::CreateCustom(256, 20, 4, 45, 50);
    ASSERT_TRUE(params.ok());
    ctx_ = BgvContext::Create(params.value()).value();
    rng_ = std::make_unique<Chacha20Rng>(uint64_t{717});
    KeyGenerator keygen(ctx_, rng_.get());
    sk_ = keygen.GenerateSecretKey();
    pk_ = keygen.GeneratePublicKey(sk_);
    rk_ = keygen.GenerateRelinKeys(sk_);
    encoder_ = std::make_unique<BatchEncoder>(ctx_);
    encryptor_ = std::make_unique<Encryptor>(ctx_, pk_, rng_.get());
    decryptor_ = std::make_unique<Decryptor>(ctx_, sk_);
    evaluator_ = std::make_unique<Evaluator>(ctx_);
  }

  Ciphertext Enc(uint64_t v) {
    return encryptor_->Encrypt(encoder_->EncodeScalar(v)).value();
  }
  uint64_t Dec0(const Ciphertext& ct) {
    return encoder_->Decode(decryptor_->Decrypt(ct).value())[0];
  }

  std::shared_ptr<const BgvContext> ctx_;
  std::unique_ptr<Chacha20Rng> rng_;
  SecretKey sk_;
  PublicKey pk_;
  RelinKeys rk_;
  std::unique_ptr<BatchEncoder> encoder_;
  std::unique_ptr<Encryptor> encryptor_;
  std::unique_ptr<Decryptor> decryptor_;
  std::unique_ptr<Evaluator> evaluator_;
};

TEST_F(EvaluatorScaleTest, FreshScaleIsOne) {
  EXPECT_EQ(Enc(5).scale, 1u);
}

TEST_F(EvaluatorScaleTest, ModSwitchTracksDroppedPrimeInverse) {
  Ciphertext ct = Enc(5);
  const uint64_t t = ctx_->t();
  uint64_t expected = 1;
  while (ct.level > 0) {
    const size_t dropped = ct.level;
    ASSERT_TRUE(evaluator_->ModSwitchToNextInplace(&ct).ok());
    expected = MulModSlow(expected, ctx_->q_inv_mod_t(dropped), t);
    EXPECT_EQ(ct.scale, expected);
    EXPECT_EQ(Dec0(ct), 5u);
  }
  // Accumulated factor equals the reference product of dropped primes.
  EXPECT_EQ(MulModSlow(ct.scale, ctx_->correction_mod_t(0), t), 1u);
}

TEST_F(EvaluatorScaleTest, MultiplicationMultipliesScales) {
  Ciphertext a = Enc(3);
  Ciphertext b = Enc(4);
  ASSERT_TRUE(evaluator_->ModSwitchToNextInplace(&a).ok());
  ASSERT_TRUE(evaluator_->ModSwitchToNextInplace(&b).ok());
  auto prod = evaluator_->MultiplyRelin(a, b, rk_, /*mod_switch=*/false);
  ASSERT_TRUE(prod.ok());
  EXPECT_EQ(prod->scale, MulModSlow(a.scale, b.scale, ctx_->t()));
  EXPECT_EQ(Dec0(prod.value()), 12u);
}

TEST_F(EvaluatorScaleTest, DeepChainDecryptsThroughScaleTracking) {
  // (((2*3)*4)*5) = 120 with a mod switch after every multiply: the scale
  // walks through several factors and must always be divided out exactly.
  Ciphertext acc = Enc(2);
  for (uint64_t v : {3ull, 4ull, 5ull}) {
    auto next = evaluator_->MultiplyRelin(acc, Enc(v), rk_);
    ASSERT_TRUE(next.ok());
    acc = std::move(next).value();
  }
  EXPECT_EQ(Dec0(acc), 120u);
  EXPECT_NE(acc.scale, 1u);
}

TEST_F(EvaluatorScaleTest, AddReconcilesMismatchedScales) {
  // a: two multiplications deep (its scale picks up a squared factor);
  // b: only mod-switched. Their scales differ at the same level; Add must
  // reconcile and still produce 3*3*1 + 4 = 13.
  auto a1 = evaluator_->MultiplyRelin(Enc(3), Enc(3), rk_);
  ASSERT_TRUE(a1.ok());
  auto a = evaluator_->MultiplyRelin(a1.value(), Enc(1), rk_);
  ASSERT_TRUE(a.ok());
  Ciphertext b = Enc(4);
  ASSERT_TRUE(evaluator_->ModSwitchToLevelInplace(&b, a->level).ok());
  EXPECT_NE(a->scale, b.scale);
  Ciphertext sum = a.value();
  ASSERT_TRUE(evaluator_->AddInplace(&sum, b).ok());
  EXPECT_EQ(Dec0(sum), 13u);
}

TEST_F(EvaluatorScaleTest, SubReconcilesMismatchedScales) {
  auto a = evaluator_->MultiplyRelin(Enc(5), Enc(5), rk_);  // 25
  ASSERT_TRUE(a.ok());
  Ciphertext b = Enc(4);
  Ciphertext diff = a.value();
  ASSERT_TRUE(evaluator_->SubInplace(&diff, b).ok());
  EXPECT_EQ(Dec0(diff), 21u);
}

TEST_F(EvaluatorScaleTest, AddPlainRespectsScale) {
  auto a = evaluator_->MultiplyRelin(Enc(6), Enc(7), rk_);  // 42, scaled
  ASSERT_TRUE(a.ok());
  Ciphertext ct = a.value();
  ASSERT_TRUE(
      evaluator_->AddPlainInplace(&ct, encoder_->EncodeScalar(8)).ok());
  EXPECT_EQ(Dec0(ct), 50u);
}

TEST_F(EvaluatorScaleTest, MultiplyPlainPreservesScale) {
  auto a = evaluator_->MultiplyRelin(Enc(6), Enc(7), rk_);
  ASSERT_TRUE(a.ok());
  Ciphertext ct = a.value();
  const uint64_t scale_before = ct.scale;
  ASSERT_TRUE(
      evaluator_->MultiplyPlainInplace(&ct, encoder_->EncodeScalar(2)).ok());
  EXPECT_EQ(ct.scale, scale_before);
  EXPECT_EQ(Dec0(ct), 84u);
}

TEST_F(EvaluatorScaleTest, HornerStyleMixedOpsExact) {
  // The protocol's exact hot path: u = a2*x + a1; u = u*x + a0 with large
  // pseudo-random coefficients, verified against 64-bit reference.
  Chacha20Rng coeff_rng(uint64_t{5});
  const uint64_t t = ctx_->t();
  Modulus t_mod(t);
  for (int trial = 0; trial < 5; ++trial) {
    const uint64_t x = coeff_rng.UniformBelow(1 << 12);
    const uint64_t a2 = coeff_rng.UniformBelow(1 << 8);
    const uint64_t a1 = coeff_rng.UniformBelow(t);
    const uint64_t a0 = coeff_rng.UniformBelow(t);
    Ciphertext cx = Enc(x);
    Ciphertext u = cx;
    ASSERT_TRUE(evaluator_->MultiplyScalarInplace(&u, a2).ok());
    ASSERT_TRUE(
        evaluator_->AddPlainInplace(&u, encoder_->EncodeScalar(a1)).ok());
    auto u2 = evaluator_->MultiplyRelin(u, cx, rk_);
    ASSERT_TRUE(u2.ok());
    u = std::move(u2).value();
    ASSERT_TRUE(
        evaluator_->AddPlainInplace(&u, encoder_->EncodeScalar(a0)).ok());
    const uint64_t expected = AddMod(
        t_mod.MulMod(AddMod(t_mod.MulMod(a2, x), a1, t), x), a0, t);
    EXPECT_EQ(Dec0(u), expected);
  }
}

}  // namespace
}  // namespace bgv
}  // namespace sknn
