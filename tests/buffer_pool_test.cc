#include "common/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

// Tests for the RnsPoly arena allocator: recycle semantics, telemetry
// accounting, and a multi-threaded stress proving no buffer is ever handed
// to two owners at once (run under tsan by the sanitizer presets).

namespace sknn {
namespace {

TEST(BufferPoolTest, AcquireReturnsRequestedSize) {
  std::vector<uint64_t> a = BufferPool::Acquire(100);
  EXPECT_EQ(a.size(), 100u);
  std::vector<uint64_t> z = BufferPool::AcquireZeroed(64);
  ASSERT_EQ(z.size(), 64u);
  for (uint64_t w : z) EXPECT_EQ(w, 0u);
  BufferPool::Release(std::move(a));
  BufferPool::Release(std::move(z));
}

TEST(BufferPoolTest, ReleasedBufferIsRecycled) {
  BufferPool::Clear();
  std::vector<uint64_t> a = BufferPool::Acquire(512);
  const uint64_t* ptr = a.data();
  BufferPool::Release(std::move(a));

  const BufferPool::Stats before = BufferPool::GetStats();
  std::vector<uint64_t> b = BufferPool::Acquire(512);
  const BufferPool::Stats after = BufferPool::GetStats();
  // Same thread, same size: must come off the free list — and since the
  // list is LIFO, it is literally the same allocation.
  EXPECT_EQ(after.pool_hits, before.pool_hits + 1);
  EXPECT_EQ(after.pool_misses, before.pool_misses);
  EXPECT_EQ(b.data(), ptr);
  BufferPool::Release(std::move(b));
}

TEST(BufferPoolTest, AcquireZeroedScrubsRecycledContents) {
  BufferPool::Clear();
  std::vector<uint64_t> a = BufferPool::Acquire(256);
  for (uint64_t& w : a) w = 0xDEADBEEFCAFEF00Dull;
  BufferPool::Release(std::move(a));
  std::vector<uint64_t> z = BufferPool::AcquireZeroed(256);
  for (uint64_t w : z) ASSERT_EQ(w, 0u);
  BufferPool::Release(std::move(z));
}

TEST(BufferPoolTest, AcquireCopyMatchesSource) {
  std::vector<uint64_t> src = {1, 2, 3, 4, 5};
  std::vector<uint64_t> copy = BufferPool::AcquireCopy(src);
  EXPECT_EQ(copy, src);
  BufferPool::Release(std::move(copy));
}

TEST(BufferPoolTest, BytesOutstandingTracksOwnership) {
  BufferPool::Clear();
  const int64_t base = BufferPool::GetStats().bytes_outstanding;
  {
    BufferPool::Scoped a(1000);
    EXPECT_EQ(BufferPool::GetStats().bytes_outstanding,
              base + 1000 * static_cast<int64_t>(sizeof(uint64_t)));
    BufferPool::Scoped b(24, /*zeroed=*/false);
    EXPECT_EQ(BufferPool::GetStats().bytes_outstanding,
              base + 1024 * static_cast<int64_t>(sizeof(uint64_t)));
  }
  EXPECT_EQ(BufferPool::GetStats().bytes_outstanding, base);
}

TEST(BufferPoolTest, ReleaseOfEmptyBufferIsNoop) {
  const BufferPool::Stats before = BufferPool::GetStats();
  BufferPool::Release(std::vector<uint64_t>{});
  const BufferPool::Stats after = BufferPool::GetStats();
  EXPECT_EQ(after.released, before.released);
  EXPECT_EQ(after.bytes_outstanding, before.bytes_outstanding);
}

TEST(BufferPoolTest, SteadyStateLoopIsAllocationQuiet) {
  BufferPool::Clear();
  // Warm up one buffer per size class, then loop: every subsequent acquire
  // must be a hit.
  const size_t sizes[] = {64, 256, 1024};
  for (size_t words : sizes) {
    BufferPool::Release(BufferPool::Acquire(words));
  }
  const BufferPool::Stats warm = BufferPool::GetStats();
  for (int round = 0; round < 50; ++round) {
    for (size_t words : sizes) {
      BufferPool::Scoped buf(words, /*zeroed=*/false);
      buf.data()[0] = round;
    }
  }
  const BufferPool::Stats after = BufferPool::GetStats();
  EXPECT_EQ(after.pool_misses, warm.pool_misses) << "steady state hit heap";
  EXPECT_EQ(after.pool_hits, warm.pool_hits + 150);
}

// Cross-thread stress: workers continuously acquire buffers of a few
// protocol-typical sizes, stamp every word with a tag unique to
// (thread, iteration), re-verify the stamp after more pool traffic, and
// release. Any double-ownership (one buffer on two free lists, or handed
// to two owners) shows up as a corrupted stamp — and as a data race under
// the tsan preset.
TEST(BufferPoolTest, ThreadedStressNoAliasing) {
  ThreadPool pool(4);
  constexpr size_t kWorkers = 8;
  constexpr int kRounds = 200;
  std::atomic<int> corrupt{0};

  pool.ParallelFor(0, kWorkers, [&](size_t worker) {
    Chacha20Rng rng(uint64_t{0xB0FFE4} + worker);
    const size_t sizes[] = {33, 64, 257, 1024};
    for (int round = 0; round < kRounds; ++round) {
      std::vector<uint64_t> sample;
      rng.SampleUniformMod(4, 2, &sample);
      const size_t words = sizes[sample[0]];
      const uint64_t tag =
          (uint64_t{worker} << 32) ^ (static_cast<uint64_t>(round) << 8) ^ 1;

      std::vector<uint64_t> buf = BufferPool::Acquire(words);
      for (uint64_t& w : buf) w = tag;
      // Interleave more pool traffic so a shared buffer would get
      // overwritten by the other owner before we check.
      std::vector<uint64_t> other = BufferPool::AcquireZeroed(sizes[sample[1]]);
      for (uint64_t w : other) {
        if (w != 0) corrupt.fetch_add(1, std::memory_order_relaxed);
      }
      for (uint64_t w : buf) {
        if (w != tag) corrupt.fetch_add(1, std::memory_order_relaxed);
      }
      BufferPool::Release(std::move(other));
      BufferPool::Release(std::move(buf));
    }
  });

  EXPECT_EQ(corrupt.load(), 0);
  // Every stressed buffer was released, so the books balance: acquires
  // equal releases (process-wide deltas may include other tests' leftovers,
  // so compare against a snapshot-free invariant instead: nothing the
  // stress acquired is still outstanding, i.e. outstanding bytes are
  // non-negative and releases never exceed acquires).
  const BufferPool::Stats stats = BufferPool::GetStats();
  EXPECT_GE(stats.bytes_outstanding, 0);
  EXPECT_LE(stats.released, stats.pool_hits + stats.pool_misses);
}

}  // namespace
}  // namespace sknn
