// Validates the static noise estimator (bgv/noise_model.h) against the
// exact secret-key measurement (Decryptor::NoiseBudgetBits): across
// parameter sets and through every evaluator primitive, the estimated
// remaining budget must be a LOWER bound on the exact budget — the
// conservativeness guarantee DESIGN.md §7.3 derives. The observed slack
// (how pessimistic the bound is) is also capped so the estimator stays
// useful, not just safe.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bgv/context.h"
#include "bgv/decryptor.h"
#include "bgv/encoder.h"
#include "bgv/encryptor.h"
#include "bgv/evaluator.h"
#include "bgv/keys.h"
#include "bgv/noise_model.h"
#include "bgv/symmetric.h"
#include "common/metrics_registry.h"
#include "common/rng.h"

namespace sknn {
namespace bgv {
namespace {

struct NoiseParam {
  size_t n;
  int plain_bits;
  size_t levels;
  int data_prime_bits;
  int special_prime_bits;
};

class NoiseModelTest : public ::testing::TestWithParam<NoiseParam> {
 protected:
  void SetUp() override {
    const NoiseParam p = GetParam();
    auto params = BgvParams::CreateCustom(p.n, p.plain_bits, p.levels,
                                          p.data_prime_bits,
                                          p.special_prime_bits);
    ASSERT_TRUE(params.ok()) << params.status();
    auto ctx = BgvContext::Create(params.value());
    ASSERT_TRUE(ctx.ok()) << ctx.status();
    ctx_ = ctx.value();
    rng_ = std::make_unique<Chacha20Rng>(uint64_t{2024} + p.n);
    KeyGenerator keygen(ctx_, rng_.get());
    sk_ = keygen.GenerateSecretKey();
    pk_ = keygen.GeneratePublicKey(sk_);
    rk_ = keygen.GenerateRelinKeys(sk_);
    gk_ = keygen.GeneratePowerOfTwoRotationKeys(sk_);
    encoder_ = std::make_unique<BatchEncoder>(ctx_);
    encryptor_ = std::make_unique<Encryptor>(ctx_, pk_, rng_.get());
    decryptor_ = std::make_unique<Decryptor>(ctx_, sk_);
    evaluator_ = std::make_unique<Evaluator>(ctx_);
    model_ = std::make_unique<NoiseModel>(*ctx_);
  }

  // The core invariant: estimated budget <= exact budget, always.
  void ExpectConservative(const Ciphertext& ct, const char* where) {
    ASSERT_TRUE(ct.noise_tracked()) << where;
    const double estimated = model_->EstimatedBudgetBits(ct);
    auto exact = decryptor_->NoiseBudgetBits(ct);
    ASSERT_TRUE(exact.ok()) << where;
    EXPECT_LE(estimated, exact.value()) << where;
    if (exact.value() - estimated > max_slack_) {
      max_slack_ = exact.value() - estimated;
    }
  }

  std::shared_ptr<const BgvContext> ctx_;
  std::unique_ptr<Chacha20Rng> rng_;
  SecretKey sk_;
  PublicKey pk_;
  RelinKeys rk_;
  GaloisKeys gk_;
  std::unique_ptr<BatchEncoder> encoder_;
  std::unique_ptr<Encryptor> encryptor_;
  std::unique_ptr<Decryptor> decryptor_;
  std::unique_ptr<Evaluator> evaluator_;
  std::unique_ptr<NoiseModel> model_;
  double max_slack_ = 0;
};

TEST_P(NoiseModelTest, EstimateIsConservativeThroughProtocolChain) {
  // Mirrors Party A's distance pipeline: sub, square+relin(+mod switch),
  // rotate, plain multiply, scalar multiply, plain add, mod switch down.
  const uint64_t t = ctx_->t();
  std::vector<uint64_t> slots(ctx_->n());
  for (auto& s : slots) s = rng_->UniformBelow(t);
  Ciphertext a =
      encryptor_->Encrypt(encoder_->Encode(slots).value()).value();
  Ciphertext b = encryptor_->Encrypt(encoder_->EncodeScalar(7)).value();
  ExpectConservative(a, "fresh pk");

  ASSERT_TRUE(evaluator_->SubInplace(&a, b).ok());
  ExpectConservative(a, "sub");

  auto sq = evaluator_->MultiplyRelin(a, a, rk_);
  ASSERT_TRUE(sq.ok());
  a = std::move(sq).value();
  ExpectConservative(a, "square+relin+modswitch");

  ASSERT_TRUE(evaluator_->RotateRowsInplace(&a, 1, gk_).ok());
  ExpectConservative(a, "rotate");

  ASSERT_TRUE(
      evaluator_->MultiplyPlainInplace(&a, encoder_->EncodeScalar(3)).ok());
  ExpectConservative(a, "plain multiply");

  ASSERT_TRUE(evaluator_->MultiplyScalarInplace(&a, t / 3 + 1).ok());
  ExpectConservative(a, "scalar multiply");

  ASSERT_TRUE(
      evaluator_->AddPlainInplace(&a, encoder_->EncodeScalar(t - 1)).ok());
  ExpectConservative(a, "plain add");

  while (a.level > 0) {
    ASSERT_TRUE(evaluator_->ModSwitchToNextInplace(&a).ok());
    ExpectConservative(a, "mod switch");
  }

  // The bound must stay useful: worst-case coefficient-norm analysis costs
  // tens of bits of pessimism, not hundreds (DESIGN.md §7.3 tabulates the
  // per-rule slack; the dominant term is the n·(t/2)² cross term of the
  // multiply rule versus its average-case behaviour).
  RecordProperty("max_slack_bits", static_cast<int>(max_slack_));
  EXPECT_LT(max_slack_, 100.0)
      << "estimator has become uselessly pessimistic";
}

TEST_P(NoiseModelTest, SymmetricAndSeededEncryptionsAreTracked) {
  SymmetricEncryptor sym(ctx_, sk_, rng_.get());
  const size_t level = ctx_->max_level();
  Ciphertext direct =
      sym.Encrypt(encoder_->EncodeScalar(5), level).value();
  EXPECT_TRUE(direct.noise_tracked());
  ExpectConservative(direct, "symmetric");

  SeededCiphertext seeded =
      sym.EncryptSeeded(encoder_->EncodeScalar(5), level).value();
  Ciphertext expanded = ExpandSeeded(*ctx_, seeded).value();
  EXPECT_TRUE(expanded.noise_tracked());
  ExpectConservative(expanded, "seed-expanded");
}

TEST_P(NoiseModelTest, AdditionsOfTrackedCiphertextsStayConservative) {
  Ciphertext acc = encryptor_->Encrypt(encoder_->EncodeScalar(1)).value();
  for (int i = 0; i < 16; ++i) {
    Ciphertext fresh =
        encryptor_->Encrypt(encoder_->EncodeScalar(1)).value();
    ASSERT_TRUE(evaluator_->AddInplace(&acc, fresh).ok());
  }
  ExpectConservative(acc, "16 additions");
}

INSTANTIATE_TEST_SUITE_P(
    Params, NoiseModelTest,
    ::testing::Values(NoiseParam{128, 18, 2, 40, 45},
                      NoiseParam{256, 20, 3, 45, 50},
                      NoiseParam{256, 30, 3, 52, 57},
                      NoiseParam{512, 25, 4, 48, 53},
                      NoiseParam{1024, 33, 4, 45, 50}),
    [](const auto& info) {
      const NoiseParam& p = info.param;
      return "n" + std::to_string(p.n) + "_t" +
             std::to_string(p.plain_bits) + "_L" + std::to_string(p.levels);
    });

// Non-parameterized guarantees.

class NoiseModelGuaranteeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto params = BgvParams::CreateCustom(256, 20, 3, 45, 50);
    ASSERT_TRUE(params.ok());
    ctx_ = BgvContext::Create(params.value()).value();
    rng_ = std::make_unique<Chacha20Rng>(uint64_t{77});
    KeyGenerator keygen(ctx_, rng_.get());
    sk_ = keygen.GenerateSecretKey();
    pk_ = keygen.GeneratePublicKey(sk_);
    encoder_ = std::make_unique<BatchEncoder>(ctx_);
    encryptor_ = std::make_unique<Encryptor>(ctx_, pk_, rng_.get());
    decryptor_ = std::make_unique<Decryptor>(ctx_, sk_);
    evaluator_ = std::make_unique<Evaluator>(ctx_);
    model_ = std::make_unique<NoiseModel>(*ctx_);
  }

  std::shared_ptr<const BgvContext> ctx_;
  std::unique_ptr<Chacha20Rng> rng_;
  SecretKey sk_;
  PublicKey pk_;
  std::unique_ptr<BatchEncoder> encoder_;
  std::unique_ptr<Encryptor> encryptor_;
  std::unique_ptr<Decryptor> decryptor_;
  std::unique_ptr<Evaluator> evaluator_;
  std::unique_ptr<NoiseModel> model_;
};

TEST_F(NoiseModelGuaranteeTest, WarnsBeforeDecryptionCanGoWrong) {
  // Drive a level-0 ciphertext into the ground with scalar multiplies.
  // The protocol-level guarantee: by the time a decryption can come back
  // wrong, the estimator must already be under the thin-margin threshold
  // (it is a lower bound on the exact budget, so it hits zero first).
  Ciphertext ct = encryptor_->Encrypt(encoder_->EncodeScalar(1)).value();
  ASSERT_TRUE(evaluator_->ModSwitchToLevelInplace(&ct, 0).ok());
  MetricsRegistry::Counter* warnings =
      MetricsRegistry::Global().GetCounter("bgv.noise.thin_margin_warnings");
  const uint64_t t = ctx_->t();
  const uint64_t scalar = (1u << 16) - 1;
  uint64_t expected = 1;
  bool warned = false;
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(evaluator_->MultiplyScalarInplace(&ct, scalar).ok());
    expected = expected * scalar % t;
    const uint64_t warnings_before = warnings->value();
    model_->WarnIfThin(ct, "noise_model_test");
    if (warnings->value() > warnings_before) warned = true;
    const double exact = decryptor_->NoiseBudgetBits(ct).value();
    EXPECT_LE(model_->EstimatedBudgetBits(ct), exact);
    auto pt = decryptor_->Decrypt(ct);
    const bool wrong =
        !pt.ok() || encoder_->Decode(pt.value())[0] != expected;
    if (wrong) {
      // The acceptance criterion: no incorrect decryption without a prior
      // thin-margin warning.
      EXPECT_TRUE(warned) << "wrong decryption without a prior warning";
      break;
    }
    if (exact == 0.0) {
      // Budget formally exhausted; the estimator (a lower bound) must have
      // tripped the warning by now even if this decryption survived.
      EXPECT_TRUE(warned) << "budget exhausted without a thin-margin warning";
      break;
    }
  }
  EXPECT_TRUE(warned);
}

TEST_F(NoiseModelGuaranteeTest, UntrackedPropagates) {
  Ciphertext tracked = encryptor_->Encrypt(encoder_->EncodeScalar(2)).value();
  Ciphertext untracked = tracked;
  untracked.noise_bits = kNoiseUntracked;  // e.g. a deserialized ciphertext
  EXPECT_FALSE(untracked.noise_tracked());
  EXPECT_EQ(model_->EstimatedBudgetBits(untracked), kNoiseUntracked);

  ASSERT_TRUE(evaluator_->AddInplace(&tracked, untracked).ok());
  EXPECT_FALSE(tracked.noise_tracked());
  // WarnIfThin must stay silent on untracked ciphertexts.
  MetricsRegistry::Counter* warnings =
      MetricsRegistry::Global().GetCounter("bgv.noise.thin_margin_warnings");
  const uint64_t before = warnings->value();
  model_->WarnIfThin(tracked, "noise_model_test");
  EXPECT_EQ(warnings->value(), before);
}

TEST_F(NoiseModelGuaranteeTest, FreshBoundsOrderedAndPositive) {
  // Symmetric encryptions are strictly quieter than public-key ones.
  EXPECT_LT(model_->FreshSymmetricNoiseBits(), model_->FreshPkNoiseBits());
  Ciphertext ct = encryptor_->Encrypt(encoder_->EncodeScalar(3)).value();
  EXPECT_GT(model_->EstimatedBudgetBits(ct), 0.0);
}

}  // namespace
}  // namespace bgv
}  // namespace sknn
