// Noise-budget behaviour of the BGV implementation: these tests pin down
// the level-management contract the protocol relies on (see the pipeline
// in src/core/party_a.cc).

#include <gtest/gtest.h>

#include "bgv/context.h"
#include "bgv/decryptor.h"
#include "bgv/encoder.h"
#include "bgv/encryptor.h"
#include "bgv/evaluator.h"
#include "bgv/keys.h"
#include "common/rng.h"

namespace sknn {
namespace bgv {
namespace {

class BgvNoiseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto params = BgvParams::CreateCustom(256, 20, 4, 45, 50);
    ASSERT_TRUE(params.ok());
    auto ctx = BgvContext::Create(params.value());
    ASSERT_TRUE(ctx.ok());
    ctx_ = ctx.value();
    rng_ = std::make_unique<Chacha20Rng>(uint64_t{31337});
    KeyGenerator keygen(ctx_, rng_.get());
    sk_ = keygen.GenerateSecretKey();
    pk_ = keygen.GeneratePublicKey(sk_);
    rk_ = keygen.GenerateRelinKeys(sk_);
    gk_ = keygen.GeneratePowerOfTwoRotationKeys(sk_);
    encoder_ = std::make_unique<BatchEncoder>(ctx_);
    encryptor_ = std::make_unique<Encryptor>(ctx_, pk_, rng_.get());
    decryptor_ = std::make_unique<Decryptor>(ctx_, sk_);
    evaluator_ = std::make_unique<Evaluator>(ctx_);
  }

  Ciphertext Fresh(uint64_t scalar = 3) {
    return encryptor_->Encrypt(encoder_->EncodeScalar(scalar)).value();
  }

  double Budget(const Ciphertext& ct) {
    return decryptor_->NoiseBudgetBits(ct).value();
  }

  std::shared_ptr<const BgvContext> ctx_;
  std::unique_ptr<Chacha20Rng> rng_;
  SecretKey sk_;
  PublicKey pk_;
  RelinKeys rk_;
  GaloisKeys gk_;
  std::unique_ptr<BatchEncoder> encoder_;
  std::unique_ptr<Encryptor> encryptor_;
  std::unique_ptr<Decryptor> decryptor_;
  std::unique_ptr<Evaluator> evaluator_;
};

TEST_F(BgvNoiseTest, AdditionBarelyCostsBudget) {
  Ciphertext a = Fresh();
  Ciphertext b = Fresh();
  const double before = Budget(a);
  ASSERT_TRUE(evaluator_->AddInplace(&a, b).ok());
  EXPECT_GE(Budget(a), before - 2.0);
}

TEST_F(BgvNoiseTest, PlainAddIsEssentiallyFree) {
  Ciphertext a = Fresh();
  const double before = Budget(a);
  ASSERT_TRUE(
      evaluator_->AddPlainInplace(&a, encoder_->EncodeScalar(12345)).ok());
  EXPECT_GE(Budget(a), before - 2.0);
}

TEST_F(BgvNoiseTest, ScalarMultCostsAboutLogScalar) {
  Ciphertext a = Fresh();
  const double before = Budget(a);
  ASSERT_TRUE(evaluator_->MultiplyScalarInplace(&a, 1 << 10).ok());
  const double after = Budget(a);
  EXPECT_LT(after, before);
  // ~10 bits plus small slack.
  EXPECT_GT(after, before - 18.0);
}

TEST_F(BgvNoiseTest, CiphertextMultCostsMuchMoreThanScalar) {
  Ciphertext a = Fresh();
  Ciphertext b = Fresh();
  Ciphertext s = Fresh();
  const double before = Budget(a);
  auto prod = evaluator_->MultiplyRelin(a, b, rk_, /*mod_switch=*/false);
  ASSERT_TRUE(prod.ok());
  const double mult_cost = before - Budget(prod.value());
  ASSERT_TRUE(evaluator_->MultiplyScalarInplace(&s, 7).ok());
  const double scalar_cost = before - Budget(s);
  EXPECT_GT(mult_cost, scalar_cost + 10.0);
}

TEST_F(BgvNoiseTest, ModSwitchRecoversRelativeBudget) {
  // After a multiplication, switching down sheds noise along with modulus
  // so the *relative* budget is nearly preserved while ciphertexts shrink.
  Ciphertext a = Fresh();
  auto prod = evaluator_->MultiplyRelin(a, a, rk_, /*mod_switch=*/false);
  ASSERT_TRUE(prod.ok());
  const double before = Budget(prod.value());
  Ciphertext switched = prod.value();
  ASSERT_TRUE(evaluator_->ModSwitchToNextInplace(&switched).ok());
  // The budget loss from dropping one ~45-bit prime should be far less
  // than 45 bits because noise shrinks proportionally.
  EXPECT_GT(Budget(switched), before - 46.0);
  EXPECT_GT(Budget(switched), 0.0);
  // And the plaintext is intact.
  auto pt = decryptor_->Decrypt(switched);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(encoder_->Decode(pt.value())[0], 9u);
}

TEST_F(BgvNoiseTest, RotationAddsOnlyAdditiveNoise) {
  Ciphertext a = Fresh();
  const double before = Budget(a);
  ASSERT_TRUE(evaluator_->RotateRowsInplace(&a, 1, gk_).ok());
  EXPECT_GT(Budget(a), before - 25.0);  // keyswitch noise floor, not a level
}

TEST_F(BgvNoiseTest, Level0SurvivesAdditionButNotMultiplication) {
  Ciphertext a = Fresh(5);
  ASSERT_TRUE(evaluator_->ModSwitchToLevelInplace(&a, 0).ok());
  EXPECT_GT(Budget(a), 0.0);
  Ciphertext b = a;
  ASSERT_TRUE(evaluator_->AddInplace(&a, b).ok());
  auto pt = decryptor_->Decrypt(a);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(encoder_->Decode(pt.value())[0], 10u);
}

TEST_F(BgvNoiseTest, ExhaustedBudgetDetectable) {
  // Deliberately run out of budget: repeated scalar multiplications at the
  // lowest level must eventually drive the measured budget to zero.
  Ciphertext a = Fresh(1);
  ASSERT_TRUE(evaluator_->ModSwitchToLevelInplace(&a, 0).ok());
  double budget = Budget(a);
  for (int i = 0; i < 20 && budget > 0; ++i) {
    ASSERT_TRUE(evaluator_->MultiplyScalarInplace(&a, (1u << 16) - 1).ok());
    budget = Budget(a);
  }
  EXPECT_EQ(budget, 0.0);
}

TEST_F(BgvNoiseTest, FreshBudgetGrowsWithLevels) {
  // More data primes -> larger modulus -> more budget.
  auto small = BgvParams::CreateCustom(256, 20, 2, 45, 50);
  ASSERT_TRUE(small.ok());
  auto small_ctx = BgvContext::Create(small.value()).value();
  Chacha20Rng rng(uint64_t{1});
  KeyGenerator kg(small_ctx, &rng);
  auto sk = kg.GenerateSecretKey();
  auto pk = kg.GeneratePublicKey(sk);
  BatchEncoder enc(small_ctx);
  Encryptor encr(small_ctx, pk, &rng);
  Decryptor dec(small_ctx, sk);
  auto ct = encr.Encrypt(enc.EncodeScalar(3)).value();
  const double small_budget = dec.NoiseBudgetBits(ct).value();
  EXPECT_GT(Budget(Fresh()), small_budget + 40.0);  // two extra 45-bit primes
}

}  // namespace
}  // namespace bgv
}  // namespace sknn
