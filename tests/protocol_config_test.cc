#include "core/protocol_config.h"

#include <gtest/gtest.h>

namespace sknn {
namespace core {
namespace {

ProtocolConfig Valid() {
  ProtocolConfig cfg;
  cfg.k = 3;
  cfg.dims = 2;
  cfg.coord_bits = 4;
  cfg.poly_degree = 2;
  cfg.layout = Layout::kPacked;
  cfg.preset = bgv::SecurityPreset::kToy;
  cfg.levels = cfg.MinimumLevels();
  return cfg;
}

TEST(ProtocolConfigTest, ValidConfigPasses) {
  EXPECT_TRUE(Valid().Validate().ok());
}

TEST(ProtocolConfigTest, RejectsZeroK) {
  ProtocolConfig cfg = Valid();
  cfg.k = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ProtocolConfigTest, RejectsZeroDims) {
  ProtocolConfig cfg = Valid();
  cfg.dims = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ProtocolConfigTest, RejectsZeroDegree) {
  ProtocolConfig cfg = Valid();
  cfg.poly_degree = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ProtocolConfigTest, RejectsBadCoordBits) {
  ProtocolConfig cfg = Valid();
  cfg.coord_bits = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.coord_bits = 31;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ProtocolConfigTest, MinimumLevelsPerLayout) {
  ProtocolConfig cfg = Valid();
  cfg.poly_degree = 2;
  cfg.layout = Layout::kPerPoint;
  EXPECT_EQ(cfg.MinimumLevels(), 4u);  // square + 1 horner + mask + transport
  cfg.layout = Layout::kPacked;
  EXPECT_EQ(cfg.MinimumLevels(), 5u);  // + selector level
  cfg.poly_degree = 3;
  EXPECT_EQ(cfg.MinimumLevels(), 6u);
  cfg.poly_degree = 1;
  cfg.layout = Layout::kPerPoint;
  EXPECT_EQ(cfg.MinimumLevels(), 3u);
}

TEST(ProtocolConfigTest, RejectsTooFewLevels) {
  ProtocolConfig cfg = Valid();
  cfg.levels = cfg.MinimumLevels() - 1;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ProtocolConfigTest, RejectsBadIndicatorLevel) {
  ProtocolConfig cfg = Valid();
  cfg.indicator_level = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.indicator_level = cfg.levels;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ProtocolConfigTest, MakeBgvParamsHonoursPresetAndLevels) {
  ProtocolConfig cfg = Valid();
  auto params = cfg.MakeBgvParams();
  ASSERT_TRUE(params.ok()) << params.status();
  EXPECT_EQ(params->n, 1024u);  // kToy
  EXPECT_EQ(params->data_primes.size(), cfg.levels);
  EXPECT_EQ(params->plain_modulus >> (cfg.plain_bits - 1), 1u);
}

TEST(ProtocolConfigTest, DebugStringMentionsLayout) {
  ProtocolConfig cfg = Valid();
  EXPECT_NE(cfg.DebugString().find("packed"), std::string::npos);
  cfg.layout = Layout::kPerPoint;
  EXPECT_NE(cfg.DebugString().find("per-point"), std::string::npos);
}

TEST(ProtocolConfigTest, LayoutNames) {
  EXPECT_STREQ(LayoutName(Layout::kPerPoint), "per-point");
  EXPECT_STREQ(LayoutName(Layout::kPacked), "packed");
}

}  // namespace
}  // namespace core
}  // namespace sknn
