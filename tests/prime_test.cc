#include "math/prime.h"

#include <gtest/gtest.h>

#include <set>

#include "math/mod_arith.h"

namespace sknn {
namespace {

TEST(PrimeTest, SmallPrimesRecognized) {
  const std::set<uint64_t> primes = {2,  3,  5,  7,  11, 13, 17, 19, 23,
                                     29, 31, 37, 41, 43, 47, 53, 59, 61};
  for (uint64_t n = 0; n < 62; ++n) {
    EXPECT_EQ(IsPrime(n), primes.count(n) > 0) << n;
  }
}

TEST(PrimeTest, KnownLargePrimes) {
  EXPECT_TRUE(IsPrime(998244353));            // 119*2^23+1
  EXPECT_TRUE(IsPrime(0xffffffff00000001ull));  // Goldilocks
  EXPECT_TRUE(IsPrime(1099511627689ull));     // the paper's plaintext prime
  EXPECT_TRUE(IsPrime((uint64_t{1} << 61) - 1));  // Mersenne 61
}

TEST(PrimeTest, KnownComposites) {
  EXPECT_FALSE(IsPrime(998244353ull * 3));
  EXPECT_FALSE(IsPrime((uint64_t{1} << 58)));
  EXPECT_FALSE(IsPrime(3215031751ull));  // strong pseudoprime to bases 2,3,5,7
  EXPECT_FALSE(IsPrime(341550071728321ull));  // spsp to 2..17
}

TEST(PrimeTest, GenerateNttPrimesSatisfyCongruence) {
  for (size_t n : {size_t{1024}, size_t{4096}, size_t{8192}}) {
    auto primes = GenerateNttPrimes(55, 2 * n, 4);
    ASSERT_TRUE(primes.ok()) << primes.status();
    std::set<uint64_t> distinct;
    for (uint64_t q : primes.value()) {
      EXPECT_TRUE(IsPrime(q));
      EXPECT_EQ(q % (2 * n), 1u);
      EXPECT_EQ(q >> 54, 1u) << "must be exactly 55 bits";
      distinct.insert(q);
    }
    EXPECT_EQ(distinct.size(), 4u);
  }
}

TEST(PrimeTest, GenerateRespectsExcludeList) {
  const size_t n = 1024;
  auto first = GenerateNttPrimes(50, 2 * n, 2);
  ASSERT_TRUE(first.ok());
  auto second = GenerateNttPrimes(50, 2 * n, 2, first.value());
  ASSERT_TRUE(second.ok());
  for (uint64_t q : second.value()) {
    for (uint64_t p : first.value()) EXPECT_NE(q, p);
  }
}

TEST(PrimeTest, GenerateRejectsBadSizes) {
  EXPECT_FALSE(GenerateNttPrimes(8, 2048, 1).ok());
  EXPECT_FALSE(GenerateNttPrimes(63, 2048, 1).ok());
}

TEST(PrimeTest, PrimitiveRootHasExactOrder) {
  const uint64_t q = 998244353;  // q-1 = 2^23 * 7 * 17
  for (uint64_t order : {2ull, 8ull, 1ull << 23, 7ull, 14ull}) {
    auto root = FindPrimitiveRoot(order, q);
    ASSERT_TRUE(root.ok()) << root.status();
    EXPECT_EQ(PowMod(root.value(), order, q), 1u);
    if (order % 2 == 0) {
      EXPECT_NE(PowMod(root.value(), order / 2, q), 1u);
    }
  }
}

TEST(PrimeTest, PrimitiveRootRejectsNonDivisorOrder) {
  EXPECT_FALSE(FindPrimitiveRoot(3, 998244353).ok() &&
               (998244353 - 1) % 3 != 0);
  auto r = FindPrimitiveRoot(5, 998244353);
  EXPECT_FALSE(r.ok());  // 5 does not divide 2^23*7*17
}

TEST(PrimeTest, PrimitiveRootRejectsComposite) {
  EXPECT_FALSE(FindPrimitiveRoot(2, 1000).ok());
}

}  // namespace
}  // namespace sknn
