// Robustness of every deserializer against malformed input: random bytes,
// truncations of valid encodings, and bit flips must produce Status errors
// or harmless misparses — never crashes, hangs, or giant allocations.
// (Party A consumes bytes produced by Party B and vice versa; in the
// threat model those parties are honest-but-curious, but a production
// system still must not be crashable by a corrupted message.)

#include <gtest/gtest.h>

#include "bgv/context.h"
#include "bgv/encoder.h"
#include "bgv/encryptor.h"
#include "bgv/keys.h"
#include "bgv/serialization.h"
#include "bgv/symmetric.h"
#include "common/rng.h"

namespace sknn {
namespace bgv {
namespace {

class SerializationRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto params = BgvParams::CreateCustom(256, 20, 3, 45, 50);
    ASSERT_TRUE(params.ok());
    ctx_ = BgvContext::Create(params.value()).value();
    rng_ = std::make_unique<Chacha20Rng>(uint64_t{31415});
    KeyGenerator keygen(ctx_, rng_.get());
    sk_ = keygen.GenerateSecretKey();
    pk_ = keygen.GeneratePublicKey(sk_);
    encoder_ = std::make_unique<BatchEncoder>(ctx_);
    encryptor_ = std::make_unique<Encryptor>(ctx_, pk_, rng_.get());
  }

  std::vector<uint8_t> ValidCiphertextBytes() {
    auto ct = encryptor_->Encrypt(encoder_->EncodeScalar(5)).value();
    ByteSink sink;
    WriteCiphertext(ct, &sink);
    return sink.TakeBytes();
  }

  std::shared_ptr<const BgvContext> ctx_;
  std::unique_ptr<Chacha20Rng> rng_;
  SecretKey sk_;
  PublicKey pk_;
  std::unique_ptr<BatchEncoder> encoder_;
  std::unique_ptr<Encryptor> encryptor_;
};

TEST_F(SerializationRobustnessTest, RandomBytesNeverCrashCiphertextReader) {
  for (int trial = 0; trial < 200; ++trial) {
    const size_t len = rng_->UniformBelow(256);
    std::vector<uint8_t> junk(len);
    rng_->FillBytes(junk.data(), len);
    ByteSource src(std::move(junk));
    auto result = ReadCiphertext(&src);  // must simply return, ok or not
    (void)result;
  }
}

TEST_F(SerializationRobustnessTest, RandomBytesNeverCrashKeyReaders) {
  for (int trial = 0; trial < 100; ++trial) {
    const size_t len = rng_->UniformBelow(300);
    std::vector<uint8_t> junk(len);
    rng_->FillBytes(junk.data(), len);
    {
      ByteSource src(junk);
      (void)ReadPublicKey(&src);
    }
    {
      ByteSource src(junk);
      (void)ReadRelinKeys(&src);
    }
    {
      ByteSource src(junk);
      (void)ReadGaloisKeys(&src);
    }
    {
      ByteSource src(junk);
      (void)ReadSeededCiphertext(&src);
    }
  }
}

TEST_F(SerializationRobustnessTest, EveryTruncationOfValidCiphertextErrors) {
  std::vector<uint8_t> valid = ValidCiphertextBytes();
  // Sample truncation points across the buffer (checking all ~50k is slow).
  for (size_t cut = 0; cut < valid.size(); cut += 997) {
    std::vector<uint8_t> truncated(valid.begin(),
                                   valid.begin() + static_cast<long>(cut));
    ByteSource src(std::move(truncated));
    EXPECT_FALSE(ReadCiphertext(&src).ok()) << "cut at " << cut;
  }
}

TEST_F(SerializationRobustnessTest, LengthFieldCorruptionIsBounded) {
  // Blow up the claimed vector length: the reader must reject it instead
  // of attempting a giant allocation.
  std::vector<uint8_t> valid = ValidCiphertextBytes();
  // Bytes 16..24 hold the first RnsPoly's n field (level, scale, size come
  // first); overwrite with an absurd value.
  for (size_t pos : {size_t{16}, size_t{17}, size_t{40}}) {
    std::vector<uint8_t> corrupted = valid;
    for (size_t i = 0; i < 8 && pos + i < corrupted.size(); ++i) {
      corrupted[pos + i] = 0xff;
    }
    ByteSource src(std::move(corrupted));
    auto result = ReadCiphertext(&src);
    // Either a clean error or a (harmless) misparse -- never a crash.
    (void)result;
  }
}

TEST_F(SerializationRobustnessTest, ExtraTrailingBytesAreDetectable) {
  std::vector<uint8_t> valid = ValidCiphertextBytes();
  valid.push_back(0xab);
  ByteSource src(std::move(valid));
  auto ct = ReadCiphertext(&src);
  ASSERT_TRUE(ct.ok());
  EXPECT_FALSE(src.AtEnd());
  EXPECT_EQ(src.remaining(), 1u);
}

}  // namespace
}  // namespace bgv
}  // namespace sknn
