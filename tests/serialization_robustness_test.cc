// Robustness of every deserializer against malformed input: random bytes,
// truncations of valid encodings, and bit flips must produce Status errors
// or harmless misparses — never crashes, hangs, or giant allocations.
// (Party A consumes bytes produced by Party B and vice versa; in the
// threat model those parties are honest-but-curious, but a production
// system still must not be crashable by a corrupted message.)

#include <gtest/gtest.h>

#include "bgv/context.h"
#include "bgv/encoder.h"
#include "bgv/encryptor.h"
#include "bgv/keys.h"
#include "bgv/serialization.h"
#include "bgv/symmetric.h"
#include "common/rng.h"
#include "net/faulty_link.h"
#include "net/frame.h"
#include "net/resilient_channel.h"

namespace sknn {
namespace bgv {
namespace {

class SerializationRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto params = BgvParams::CreateCustom(256, 20, 3, 45, 50);
    ASSERT_TRUE(params.ok());
    ctx_ = BgvContext::Create(params.value()).value();
    rng_ = std::make_unique<Chacha20Rng>(uint64_t{31415});
    KeyGenerator keygen(ctx_, rng_.get());
    sk_ = keygen.GenerateSecretKey();
    pk_ = keygen.GeneratePublicKey(sk_);
    encoder_ = std::make_unique<BatchEncoder>(ctx_);
    encryptor_ = std::make_unique<Encryptor>(ctx_, pk_, rng_.get());
  }

  std::vector<uint8_t> ValidCiphertextBytes() {
    auto ct = encryptor_->Encrypt(encoder_->EncodeScalar(5)).value();
    ByteSink sink;
    WriteCiphertext(ct, &sink);
    return sink.TakeBytes();
  }

  std::shared_ptr<const BgvContext> ctx_;
  std::unique_ptr<Chacha20Rng> rng_;
  SecretKey sk_;
  PublicKey pk_;
  std::unique_ptr<BatchEncoder> encoder_;
  std::unique_ptr<Encryptor> encryptor_;
};

TEST_F(SerializationRobustnessTest, RandomBytesNeverCrashCiphertextReader) {
  for (int trial = 0; trial < 200; ++trial) {
    const size_t len = rng_->UniformBelow(256);
    std::vector<uint8_t> junk(len);
    rng_->FillBytes(junk.data(), len);
    ByteSource src(std::move(junk));
    auto result = ReadCiphertext(&src);  // must simply return, ok or not
    (void)result;
  }
}

TEST_F(SerializationRobustnessTest, RandomBytesNeverCrashKeyReaders) {
  for (int trial = 0; trial < 100; ++trial) {
    const size_t len = rng_->UniformBelow(300);
    std::vector<uint8_t> junk(len);
    rng_->FillBytes(junk.data(), len);
    {
      ByteSource src(junk);
      (void)ReadPublicKey(&src);
    }
    {
      ByteSource src(junk);
      (void)ReadRelinKeys(&src);
    }
    {
      ByteSource src(junk);
      (void)ReadGaloisKeys(&src);
    }
    {
      ByteSource src(junk);
      (void)ReadSeededCiphertext(&src);
    }
  }
}

TEST_F(SerializationRobustnessTest, EveryTruncationOfValidCiphertextErrors) {
  std::vector<uint8_t> valid = ValidCiphertextBytes();
  // Sample truncation points across the buffer (checking all ~50k is slow).
  for (size_t cut = 0; cut < valid.size(); cut += 997) {
    std::vector<uint8_t> truncated(valid.begin(),
                                   valid.begin() + static_cast<long>(cut));
    ByteSource src(std::move(truncated));
    EXPECT_FALSE(ReadCiphertext(&src).ok()) << "cut at " << cut;
  }
}

TEST_F(SerializationRobustnessTest, LengthFieldCorruptionIsBounded) {
  // Blow up the claimed vector length: the reader must reject it instead
  // of attempting a giant allocation.
  std::vector<uint8_t> valid = ValidCiphertextBytes();
  // Bytes 16..24 hold the first RnsPoly's n field (level, scale, size come
  // first); overwrite with an absurd value.
  for (size_t pos : {size_t{16}, size_t{17}, size_t{40}}) {
    std::vector<uint8_t> corrupted = valid;
    for (size_t i = 0; i < 8 && pos + i < corrupted.size(); ++i) {
      corrupted[pos + i] = 0xff;
    }
    ByteSource src(std::move(corrupted));
    auto result = ReadCiphertext(&src);
    // Either a clean error or a (harmless) misparse -- never a crash.
    (void)result;
  }
}

TEST_F(SerializationRobustnessTest, ExtraTrailingBytesAreDetectable) {
  std::vector<uint8_t> valid = ValidCiphertextBytes();
  valid.push_back(0xab);
  ByteSource src(std::move(valid));
  auto ct = ReadCiphertext(&src);
  ASSERT_TRUE(ct.ok());
  EXPECT_FALSE(src.AtEnd());
  EXPECT_EQ(src.remaining(), 1u);
}

TEST_F(SerializationRobustnessTest, HugeLengthHeaderIsRejectedBeforeAlloc) {
  // An adversarial header promising the plausibility-check maxima
  // (n = 2^20 ring degree, 64 RNS components = 512 MB of coefficients) on
  // a near-empty buffer must be rejected by the remaining-bytes bound, not
  // answered with a giant allocation.
  ByteSink sink;
  sink.WriteU64(uint64_t{1} << 20);  // n: maximal plausible degree
  sink.WriteU8(0);                   // ntt flag
  sink.WriteU64(64);                 // comps: maximal plausible count
  ByteSource src(sink.TakeBytes());
  auto poly = ReadRnsPoly(&src);
  ASSERT_FALSE(poly.ok());
  EXPECT_EQ(poly.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(poly.status().message().find("remain"), std::string::npos)
      << poly.status();
}

// The four wire messages of PROTOCOL.md (1 query ct, 2 distance ct,
// 3 indicator — seeded form, 4 result ct), each framed and pushed through
// a FaultyLink injecting bit flips and truncations. The contract under
// fuzzing: the frame checksum rejects every corrupted delivery before the
// ciphertext parsers ever see the bytes, and intact deliveries decode to
// the original payload.
TEST_F(SerializationRobustnessTest, ProtocolMessagesSurviveFaultyLinkFuzz) {
  // Message payloads: real encodings of each protocol message type.
  std::vector<std::pair<net::MessageType, std::vector<uint8_t>>> messages;
  messages.emplace_back(net::MessageType::kQuery, ValidCiphertextBytes());
  messages.emplace_back(net::MessageType::kDistances, ValidCiphertextBytes());
  {
    Chacha20Rng seed_rng(uint64_t{999});
    SymmetricEncryptor sym(ctx_, sk_, &seed_rng);
    auto seeded = sym.EncryptSeeded(encoder_->EncodeScalar(3), /*level=*/0);
    ASSERT_TRUE(seeded.ok()) << seeded.status();
    ByteSink sink;
    WriteSeededCiphertext(seeded.value(), &sink);
    messages.emplace_back(net::MessageType::kIndicators, sink.TakeBytes());
  }
  messages.emplace_back(net::MessageType::kResults, ValidCiphertextBytes());

  net::FaultSpec spec;
  spec.flip = 0.3;
  spec.trunc = 0.2;
  net::RetryPolicy policy;
  policy.max_receive_polls = 2;
  policy.base_backoff_us = 0;
  policy.max_backoff_us = 0;

  int corrupted = 0;
  int delivered = 0;
  for (uint64_t round = 0; round < 50; ++round) {
    net::InMemoryLink raw;
    net::FaultyLink link(raw.a_endpoint(), raw.b_endpoint(), spec, spec,
                         round);
    net::ResilientChannel a(link.a_endpoint(), policy, round, "A");
    net::ResilientChannel b(link.b_endpoint(), policy, round + 1, "B");
    for (const auto& [type, payload] : messages) {
      ASSERT_TRUE(a.SendMessage(type, payload).ok());
      auto received = b.ReceiveMessage(type);
      if (!received.ok()) {
        // Lost or corrupt: must be a typed transient transport error.
        EXPECT_TRUE(received.status().IsTransient() ||
                    received.status().code() ==
                        StatusCode::kFailedPrecondition)
            << received.status();
        ++corrupted;
        // Drain and re-align both ends, as session leg recovery would.
        raw.Drain();
        link.Reset();
        a.ResetEpoch();
        b.ResetEpoch();
        continue;
      }
      ++delivered;
      // Intact delivery: bit-identical payload, parsed by the matching
      // deserializer without error.
      EXPECT_EQ(received.value(), payload);
      ByteSource src(std::move(received).value());
      if (type == net::MessageType::kIndicators) {
        EXPECT_TRUE(ReadSeededCiphertext(&src).ok());
      } else {
        EXPECT_TRUE(ReadCiphertext(&src).ok());
      }
    }
  }
  // At 30%/20% rates the fuzz must exercise both outcomes heavily.
  EXPECT_GT(corrupted, 20);
  EXPECT_GT(delivered, 20);
}

}  // namespace
}  // namespace bgv
}  // namespace sknn
