// Property-style sweep of the BGV implementation across parameter sets:
// the enc/dec/add/mult/rotate contract must hold for every ring degree,
// plaintext size and chain length a user can configure.

#include <gtest/gtest.h>

#include <numeric>

#include "bgv/context.h"
#include "bgv/decryptor.h"
#include "bgv/encoder.h"
#include "bgv/encryptor.h"
#include "bgv/evaluator.h"
#include "bgv/keys.h"
#include "common/rng.h"

namespace sknn {
namespace bgv {
namespace {

struct SweepParam {
  size_t n;
  int plain_bits;
  size_t levels;
  int data_prime_bits;
  int special_prime_bits;
};

class BgvParamSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BgvParamSweepTest, FullContractHolds) {
  const SweepParam p = GetParam();
  auto params = BgvParams::CreateCustom(p.n, p.plain_bits, p.levels,
                                        p.data_prime_bits,
                                        p.special_prime_bits);
  ASSERT_TRUE(params.ok()) << params.status();
  auto ctx_or = BgvContext::Create(params.value());
  ASSERT_TRUE(ctx_or.ok()) << ctx_or.status();
  auto ctx = ctx_or.value();

  Chacha20Rng rng(uint64_t{1000} + p.n + static_cast<uint64_t>(p.plain_bits));
  KeyGenerator keygen(ctx, &rng);
  SecretKey sk = keygen.GenerateSecretKey();
  PublicKey pk = keygen.GeneratePublicKey(sk);
  RelinKeys rk = keygen.GenerateRelinKeys(sk);
  GaloisKeys gk =
      keygen.GenerateGaloisKeys(sk, {ctx->GaloisEltForRotation(1)});
  BatchEncoder encoder(ctx);
  Encryptor encryptor(ctx, pk, &rng);
  Decryptor decryptor(ctx, sk);
  Evaluator evaluator(ctx);
  const uint64_t t = ctx->t();
  Modulus t_mod(t);

  // Roundtrip.
  std::vector<uint64_t> a(ctx->n()), b(ctx->n());
  for (auto& x : a) x = rng.UniformBelow(t);
  for (auto& x : b) x = rng.UniformBelow(t);
  Ciphertext ca = encryptor.Encrypt(encoder.Encode(a).value()).value();
  Ciphertext cb = encryptor.Encrypt(encoder.Encode(b).value()).value();
  EXPECT_EQ(encoder.Decode(decryptor.Decrypt(ca).value()), a);

  // Add.
  Ciphertext sum = ca;
  ASSERT_TRUE(evaluator.AddInplace(&sum, cb).ok());
  auto sum_dec = encoder.Decode(decryptor.Decrypt(sum).value());
  for (size_t i = 0; i < ctx->n(); ++i) {
    ASSERT_EQ(sum_dec[i], AddMod(a[i], b[i], t)) << "slot " << i;
  }

  // Multiply + relinearize + switch.
  auto prod = evaluator.MultiplyRelin(ca, cb, rk);
  ASSERT_TRUE(prod.ok()) << prod.status();
  auto prod_dec = encoder.Decode(decryptor.Decrypt(prod.value()).value());
  for (size_t i = 0; i < ctx->n(); ++i) {
    ASSERT_EQ(prod_dec[i], t_mod.MulMod(a[i], b[i])) << "slot " << i;
  }

  // Rotation by one.
  Ciphertext rot = ca;
  ASSERT_TRUE(evaluator.RotateRowsInplace(&rot, 1, gk).ok());
  auto rot_dec = encoder.Decode(decryptor.Decrypt(rot).value());
  const size_t row = ctx->row_size();
  for (size_t i = 0; i + 1 < row; ++i) {
    ASSERT_EQ(rot_dec[i], a[i + 1]) << "slot " << i;
  }

  // Switch all the way down and decrypt via the fast path.
  Ciphertext low = ca;
  ASSERT_TRUE(evaluator.ModSwitchToLevelInplace(&low, 0).ok());
  EXPECT_EQ(encoder.Decode(decryptor.Decrypt(low).value()), a);
}

INSTANTIATE_TEST_SUITE_P(
    Params, BgvParamSweepTest,
    ::testing::Values(SweepParam{128, 18, 2, 40, 45},
                      SweepParam{256, 20, 3, 45, 50},
                      SweepParam{256, 30, 3, 52, 57},
                      SweepParam{512, 25, 4, 48, 53},
                      SweepParam{1024, 33, 4, 45, 50},
                      SweepParam{1024, 40, 3, 55, 60},
                      SweepParam{2048, 33, 5, 50, 55}),
    [](const auto& info) {
      const SweepParam& p = info.param;
      return "n" + std::to_string(p.n) + "_t" + std::to_string(p.plain_bits) +
             "_L" + std::to_string(p.levels) + "_q" +
             std::to_string(p.data_prime_bits);
    });

}  // namespace
}  // namespace bgv
}  // namespace sknn
