#include "math/mod_arith.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sknn {
namespace {

TEST(ModArithTest, AddSubNegBasics) {
  const uint64_t q = 17;
  EXPECT_EQ(AddMod(9, 9, q), 1u);
  EXPECT_EQ(AddMod(0, 0, q), 0u);
  EXPECT_EQ(AddMod(16, 16, q), 15u);
  EXPECT_EQ(SubMod(3, 5, q), 15u);
  EXPECT_EQ(SubMod(5, 3, q), 2u);
  EXPECT_EQ(NegMod(0, q), 0u);
  EXPECT_EQ(NegMod(5, q), 12u);
}

TEST(ModArithTest, AddModNearWordBoundary) {
  const uint64_t q = (uint64_t{1} << 62) - 57;  // large modulus
  EXPECT_EQ(AddMod(q - 1, q - 1, q), q - 2);
  EXPECT_EQ(AddMod(q - 1, 1, q), 0u);
}

TEST(ModArithTest, BarrettMatchesSlowMultiply) {
  Chacha20Rng rng(uint64_t{42});
  for (int trial = 0; trial < 50; ++trial) {
    uint64_t q = rng.UniformInRange(3, (uint64_t{1} << 62) - 1) | 1;
    Modulus mod(q);
    for (int i = 0; i < 200; ++i) {
      uint64_t a = rng.UniformBelow(q);
      uint64_t b = rng.UniformBelow(q);
      EXPECT_EQ(mod.MulMod(a, b), MulModSlow(a, b, q));
    }
  }
}

TEST(ModArithTest, BarrettReducesArbitrary128Bit) {
  Chacha20Rng rng(uint64_t{43});
  for (int trial = 0; trial < 20; ++trial) {
    uint64_t q = rng.UniformInRange(3, (uint64_t{1} << 62) - 1);
    Modulus mod(q);
    for (int i = 0; i < 100; ++i) {
      uint128_t x = Make128(rng.NextU64() >> 2, rng.NextU64());
      EXPECT_EQ(mod.ReduceU128(x), static_cast<uint64_t>(x % q));
    }
  }
}

TEST(ModArithTest, PowModMatchesRepeatedMultiply) {
  const uint64_t q = 1000003;
  uint64_t acc = 1;
  for (uint64_t e = 0; e < 40; ++e) {
    EXPECT_EQ(PowMod(7, e, q), acc);
    acc = MulModSlow(acc, 7, q);
  }
}

TEST(ModArithTest, PowModFermat) {
  // a^(p-1) = 1 mod p for prime p.
  const uint64_t p = 0x1fffffffffe00001ull;  // 61-bit NTT prime
  Chacha20Rng rng(uint64_t{44});
  for (int i = 0; i < 20; ++i) {
    uint64_t a = rng.UniformInRange(2, p - 1);
    EXPECT_EQ(PowMod(a, p - 1, p), 1u);
  }
}

TEST(ModArithTest, InvModPrime) {
  const uint64_t p = 998244353;
  Chacha20Rng rng(uint64_t{45});
  for (int i = 0; i < 100; ++i) {
    uint64_t a = rng.UniformInRange(1, p - 1);
    uint64_t inv = InvModPrime(a, p);
    EXPECT_EQ(MulModSlow(a, inv, p), 1u);
  }
}

TEST(ModArithTest, ShoupMultiplicationMatchesBarrett) {
  Chacha20Rng rng(uint64_t{46});
  for (int trial = 0; trial < 20; ++trial) {
    uint64_t q = rng.UniformInRange(3, (uint64_t{1} << 61) - 1) | 1;
    Modulus mod(q);
    uint64_t w = rng.UniformBelow(q);
    uint64_t ws = ShoupPrecompute(w, q);
    for (int i = 0; i < 200; ++i) {
      uint64_t x = rng.UniformBelow(q);
      EXPECT_EQ(MulModShoup(x, w, ws, q), mod.MulMod(x, w));
    }
  }
}

TEST(ModArithTest, CenterModSymmetric) {
  const uint64_t q = 11;
  EXPECT_EQ(CenterMod(0, q), 0);
  EXPECT_EQ(CenterMod(5, q), 5);
  EXPECT_EQ(CenterMod(6, q), -5);
  EXPECT_EQ(CenterMod(10, q), -1);
}

TEST(ModArithTest, ToUnsignedModRoundtrip) {
  const uint64_t q = 97;
  for (int64_t x = -200; x <= 200; ++x) {
    uint64_t u = ToUnsignedMod(x, q);
    EXPECT_LT(u, q);
    // u = x mod q
    int64_t diff = static_cast<int64_t>(u) - x;
    EXPECT_EQ(((diff % static_cast<int64_t>(q)) + static_cast<int64_t>(q)) %
                  static_cast<int64_t>(q),
              0);
  }
}

TEST(ModArithTest, CenterThenUnsignedIsIdentity) {
  const uint64_t q = 12289;
  Chacha20Rng rng(uint64_t{47});
  for (int i = 0; i < 500; ++i) {
    uint64_t x = rng.UniformBelow(q);
    EXPECT_EQ(ToUnsignedMod(CenterMod(x, q), q), x);
  }
}

}  // namespace
}  // namespace sknn
