#include "common/status.h"

#include <gtest/gtest.h>

#include "common/statusor.h"

namespace sknn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, OkStatusWithoutValueBecomesInternal) {
  StatusOr<int> v = Status::Ok();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  SKNN_ASSIGN_OR_RETURN(int h, Half(x));
  SKNN_RETURN_IF_ERROR(Status::Ok());
  *out = h;
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnMacroPropagatesValue) {
  int out = 0;
  ASSERT_TRUE(UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
}

TEST(StatusOrTest, AssignOrReturnMacroPropagatesError) {
  int out = 0;
  Status s = UseMacros(9, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

}  // namespace
}  // namespace sknn
