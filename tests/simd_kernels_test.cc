#include "math/simd/kernels.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "math/mod_arith.h"
#include "math/ntt.h"
#include "math/prime.h"

// Unit tests for the runtime-dispatched SIMD kernel tables: every compiled
// table must be fully populated, agree bit-for-bit with the scalar table on
// every kernel (including lengths that are not multiples of the vector
// width, so the scalar tails run), and the SKNN_SIMD override must select
// exactly the requested level.

namespace sknn {
namespace simd {
namespace {

// Lengths chosen to straddle the vector widths (4 for AVX2, 8 for AVX-512):
// shorter than a vector, exact multiples, and odd tails.
const size_t kLengths[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 100, 257};

std::vector<const KernelTable*> CompiledTables() {
  std::vector<const KernelTable*> tables;
  for (const KernelTable* t :
       {ScalarKernels(), Avx2Kernels(), Avx512Kernels()}) {
    if (t != nullptr) tables.push_back(t);
  }
  return tables;
}

TEST(SimdDispatchTest, EveryCompiledTableIsFullyPopulated) {
  for (const KernelTable* t : CompiledTables()) {
    ASSERT_NE(t->name, nullptr);
    SCOPED_TRACE(t->name);
    EXPECT_NE(t->ntt_forward, nullptr);
    EXPECT_NE(t->ntt_inverse, nullptr);
    EXPECT_NE(t->mod_add, nullptr);
    EXPECT_NE(t->mod_sub, nullptr);
    EXPECT_NE(t->mod_neg, nullptr);
    EXPECT_NE(t->mod_mul, nullptr);
    EXPECT_NE(t->mod_add_mul, nullptr);
    EXPECT_NE(t->mod_mul_scalar, nullptr);
    EXPECT_NE(t->fused_mac, nullptr);
  }
}

TEST(SimdDispatchTest, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(IsaAvailable(Isa::kScalar));
  ASSERT_NE(ScalarKernels(), nullptr);
  std::vector<Isa> levels = AvailableIsaLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), Isa::kScalar);
  // Levels are ordered narrow to wide and each one really is available.
  for (size_t i = 0; i < levels.size(); ++i) {
    EXPECT_TRUE(IsaAvailable(levels[i])) << IsaName(levels[i]);
    if (i > 0) {
      EXPECT_LT(static_cast<int>(levels[i - 1]), static_cast<int>(levels[i]));
    }
  }
}

TEST(SimdDispatchTest, ForceIsaSelectsRequestedTable) {
  for (Isa isa : AvailableIsaLevels()) {
    ASSERT_TRUE(ForceIsa(isa).ok()) << IsaName(isa);
    EXPECT_EQ(ActiveIsa(), isa);
    EXPECT_STREQ(ActiveKernels().name, IsaName(isa));
  }
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (!IsaAvailable(isa)) {
      EXPECT_FALSE(ForceIsa(isa).ok()) << IsaName(isa);
    }
  }
  ResetIsaFromEnv();
}

class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, old_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv(name_);
    }
    ResetIsaFromEnv();
  }
  void Set(const char* value) { setenv(name_, value, /*overwrite=*/1); }
  void Unset() { unsetenv(name_); }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(SimdDispatchTest, EnvOverrideSelectsLevel) {
  ScopedEnv env("SKNN_SIMD");

  env.Set("scalar");
  ResetIsaFromEnv();
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);

  if (IsaAvailable(Isa::kAvx2)) {
    env.Set("avx2");
    ResetIsaFromEnv();
    EXPECT_EQ(ActiveIsa(), Isa::kAvx2);
  }
  if (IsaAvailable(Isa::kAvx512)) {
    env.Set("avx512");
    ResetIsaFromEnv();
    EXPECT_EQ(ActiveIsa(), Isa::kAvx512);
  }

  // Unknown values warn and fall back to the widest available level.
  env.Set("sse9000");
  ResetIsaFromEnv();
  EXPECT_EQ(ActiveIsa(), AvailableIsaLevels().back());

  // No override: widest available.
  env.Unset();
  ResetIsaFromEnv();
  EXPECT_EQ(ActiveIsa(), AvailableIsaLevels().back());
}

TEST(SimdDispatchTest, EnvOverrideBeatsForceOnReset) {
  ScopedEnv env("SKNN_SIMD");
  env.Set("scalar");
  ResetIsaFromEnv();
  ASSERT_EQ(ActiveIsa(), Isa::kScalar);
  ASSERT_TRUE(ForceIsa(AvailableIsaLevels().back()).ok());
  ResetIsaFromEnv();
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
}

// Element-wise kernel equality: each compiled table against the scalar
// reference, on random reduced inputs, for every length in kLengths.
class SimdKernelEqualityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 60-bit prime: the widest the lazy pipeline admits, so the vector
    // arithmetic has no headroom to hide overflow bugs.
    auto primes = GenerateNttPrimes(60, 2 * 1024, 1);
    ASSERT_TRUE(primes.ok()) << primes.status();
    q_ = primes.value()[0];
    mod_ = std::make_unique<Modulus>(q_);
  }

  std::vector<uint64_t> Random(size_t n, uint64_t bound, uint64_t seed) {
    Chacha20Rng rng(seed);
    std::vector<uint64_t> v;
    rng.SampleUniformMod(bound, n, &v);
    return v;
  }

  uint64_t q_ = 0;
  std::unique_ptr<Modulus> mod_;
};

TEST_F(SimdKernelEqualityTest, ElementwiseKernelsMatchScalar) {
  const KernelTable* scalar = ScalarKernels();
  for (const KernelTable* t : CompiledTables()) {
    if (t == scalar) continue;
    SCOPED_TRACE(t->name);
    for (size_t n : kLengths) {
      SCOPED_TRACE("n=" + std::to_string(n));
      const std::vector<uint64_t> a0 = Random(n, q_, 11 * n + 1);
      const std::vector<uint64_t> b = Random(n, q_, 11 * n + 2);
      const std::vector<uint64_t> c = Random(n, q_, 11 * n + 3);

      std::vector<uint64_t> want, got;

      want = a0;
      scalar->mod_add(want.data(), b.data(), n, q_);
      got = a0;
      t->mod_add(got.data(), b.data(), n, q_);
      EXPECT_EQ(got, want) << "mod_add";

      want = a0;
      scalar->mod_sub(want.data(), b.data(), n, q_);
      got = a0;
      t->mod_sub(got.data(), b.data(), n, q_);
      EXPECT_EQ(got, want) << "mod_sub";

      want = a0;
      scalar->mod_neg(want.data(), n, q_);
      got = a0;
      t->mod_neg(got.data(), n, q_);
      EXPECT_EQ(got, want) << "mod_neg";

      want = a0;
      scalar->mod_mul(want.data(), b.data(), n, q_, mod_->ratio_hi(),
                      mod_->ratio_lo());
      got = a0;
      t->mod_mul(got.data(), b.data(), n, q_, mod_->ratio_hi(),
                 mod_->ratio_lo());
      EXPECT_EQ(got, want) << "mod_mul";

      want = a0;
      scalar->mod_add_mul(want.data(), b.data(), c.data(), n, q_,
                          mod_->ratio_hi(), mod_->ratio_lo());
      got = a0;
      t->mod_add_mul(got.data(), b.data(), c.data(), n, q_, mod_->ratio_hi(),
                     mod_->ratio_lo());
      EXPECT_EQ(got, want) << "mod_add_mul";

      const uint64_t s = b[0];
      const uint64_t s_shoup = ShoupPrecompute(s, q_);
      want = a0;
      scalar->mod_mul_scalar(want.data(), n, s, s_shoup, q_);
      got = a0;
      t->mod_mul_scalar(got.data(), n, s, s_shoup, q_);
      EXPECT_EQ(got, want) << "mod_mul_scalar";
    }
  }
}

TEST_F(SimdKernelEqualityTest, ElementwiseKernelsMatchScalarAtExtremes) {
  // All-(q-1) operands: the largest reduced inputs, so every internal sum
  // and product sits at its bound.
  const KernelTable* scalar = ScalarKernels();
  for (const KernelTable* t : CompiledTables()) {
    if (t == scalar) continue;
    SCOPED_TRACE(t->name);
    for (size_t n : kLengths) {
      const std::vector<uint64_t> max_in(n, q_ - 1);
      std::vector<uint64_t> want, got;

      want = max_in;
      scalar->mod_add(want.data(), max_in.data(), n, q_);
      got = max_in;
      t->mod_add(got.data(), max_in.data(), n, q_);
      EXPECT_EQ(got, want) << "mod_add n=" << n;

      want = max_in;
      scalar->mod_mul(want.data(), max_in.data(), n, q_, mod_->ratio_hi(),
                      mod_->ratio_lo());
      got = max_in;
      t->mod_mul(got.data(), max_in.data(), n, q_, mod_->ratio_hi(),
                 mod_->ratio_lo());
      EXPECT_EQ(got, want) << "mod_mul n=" << n;

      std::vector<uint64_t> zero(n, 0);
      want = max_in;
      scalar->mod_sub(want.data(), zero.data(), n, q_);
      got = max_in;
      t->mod_sub(got.data(), zero.data(), n, q_);
      EXPECT_EQ(got, want) << "mod_sub n=" << n;

      want = zero;
      scalar->mod_neg(want.data(), n, q_);
      got = zero;
      t->mod_neg(got.data(), n, q_);
      EXPECT_EQ(got, want) << "mod_neg(0) n=" << n;
    }
  }
}

TEST_F(SimdKernelEqualityTest, FusedMacMatchesScalar) {
  const KernelTable* scalar = ScalarKernels();
  const uint64_t two_q = 2 * q_;
  for (const KernelTable* t : CompiledTables()) {
    if (t == scalar) continue;
    SCOPED_TRACE(t->name);
    for (size_t n : kLengths) {
      SCOPED_TRACE("n=" + std::to_string(n));
      // Accumulators start anywhere in the lazy [0, 2q) domain; the gather
      // source d and key components kb/ka are reduced.
      const std::vector<uint64_t> acc0_init = Random(n, two_q, 13 * n + 1);
      const std::vector<uint64_t> acc1_init = Random(n, two_q, 13 * n + 2);
      const std::vector<uint64_t> d = Random(n, q_, 13 * n + 3);
      const std::vector<uint64_t> kb = Random(n, q_, 13 * n + 4);
      const std::vector<uint64_t> ka = Random(n, q_, 13 * n + 5);
      std::vector<uint64_t> kb_shoup(n), ka_shoup(n);
      for (size_t i = 0; i < n; ++i) {
        kb_shoup[i] = ShoupPrecompute(kb[i], q_);
        ka_shoup[i] = ShoupPrecompute(ka[i], q_);
      }
      // A nontrivial permutation (reversal) standing in for the Galois
      // gather of hoisted rotations.
      std::vector<uint32_t> perm(n);
      for (size_t i = 0; i < n; ++i) {
        perm[i] = static_cast<uint32_t>(n - 1 - i);
      }

      const uint32_t* gathers[] = {nullptr, perm.data()};
      for (const uint32_t* p : gathers) {
        std::vector<uint64_t> want0 = acc0_init, want1 = acc1_init;
        scalar->fused_mac(want0.data(), want1.data(), d.data(), p, kb.data(),
                          kb_shoup.data(), ka.data(), ka_shoup.data(), n, q_);
        std::vector<uint64_t> got0 = acc0_init, got1 = acc1_init;
        t->fused_mac(got0.data(), got1.data(), d.data(), p, kb.data(),
                     kb_shoup.data(), ka.data(), ka_shoup.data(), n, q_);
        EXPECT_EQ(got0, want0) << (p ? "perm" : "identity") << " acc0";
        EXPECT_EQ(got1, want1) << (p ? "perm" : "identity") << " acc1";
        // The lazy invariant must hold on output: everything < 2q.
        for (size_t i = 0; i < n; ++i) {
          ASSERT_LT(got0[i], two_q);
          ASSERT_LT(got1[i], two_q);
        }
      }
    }
  }
}

TEST_F(SimdKernelEqualityTest, NttKernelsMatchScalarDirectCall) {
  // Direct table-to-table comparison (no dispatch): complements the
  // ForceIsa-based sweep in ntt_test by proving the per-ISA entry points
  // agree even when invoked outside the dispatcher.
  const size_t n = 1024;
  auto tables = NttTables::Create(n, q_);
  ASSERT_TRUE(tables.ok()) << tables.status();
  const NttArgs args = tables->KernelArgs();
  const KernelTable* scalar = ScalarKernels();
  const std::vector<uint64_t> input = Random(n, q_, 999);

  std::vector<uint64_t> fwd_ref = input;
  scalar->ntt_forward(args, fwd_ref.data());
  std::vector<uint64_t> inv_ref = fwd_ref;
  scalar->ntt_inverse(args, inv_ref.data());
  EXPECT_EQ(inv_ref, input);

  for (const KernelTable* t : CompiledTables()) {
    if (t == scalar) continue;
    SCOPED_TRACE(t->name);
    std::vector<uint64_t> fwd = input;
    t->ntt_forward(args, fwd.data());
    EXPECT_EQ(fwd, fwd_ref);
    std::vector<uint64_t> inv = fwd_ref;
    t->ntt_inverse(args, inv.data());
    EXPECT_EQ(inv, inv_ref);
  }
}

}  // namespace
}  // namespace simd
}  // namespace sknn
