// Multi-client server tests: the socket-backed two-cloud deployment
// (core/server.h) serving concurrent clients with admission control.
// Every answer is checked exactly against plaintext brute force; the
// backpressure test pins the typed-shed contract of DESIGN.md §9.

#include "core/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "data/generators.h"
#include "knn/knn.h"
#include "net/frame.h"
#include "net/resilient_channel.h"
#include "net/socket_link.h"

namespace sknn {
namespace core {
namespace {

ProtocolConfig ServerConfig() {
  ProtocolConfig cfg;
  cfg.k = 3;
  cfg.poly_degree = 2;
  cfg.coord_bits = 4;
  cfg.dims = 2;
  cfg.layout = Layout::kPacked;
  cfg.preset = bgv::SecurityPreset::kToy;
  cfg.plain_bits = 33;
  cfg.threads = 1;
  cfg.levels = cfg.MinimumLevels();
  return cfg;
}

std::vector<uint64_t> SortedDistances(
    const std::vector<std::vector<uint64_t>>& points,
    const std::vector<uint64_t>& query) {
  std::vector<uint64_t> out;
  for (const auto& p : points) {
    uint64_t sum = 0;
    for (size_t j = 0; j < query.size(); ++j) {
      const uint64_t d = p[j] > query[j] ? p[j] - query[j] : query[j] - p[j];
      sum += d * d;
    }
    out.push_back(sum);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> ReferenceDistances(const data::Dataset& data,
                                         const std::vector<uint64_t>& query,
                                         size_t k) {
  auto ref = knn::PlaintextKnn(data, query, k);
  EXPECT_TRUE(ref.ok());
  std::vector<uint64_t> out;
  for (const auto& nb : ref.value()) out.push_back(nb.squared_distance);
  std::sort(out.begin(), out.end());
  return out;
}

// Deriving a toy deployment costs a second or two; share one across the
// suite (the servers themselves are started per test).
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::Dataset(data::UniformDataset(24, 2, 15, 42));
    auto a = Deployment::Derive(ServerConfig(), *dataset_, 7,
                                /*role_a=*/true);
    ASSERT_TRUE(a.ok()) << a.status();
    deployment_a_ = new Deployment(std::move(a).value());
    auto b = Deployment::Derive(ServerConfig(), *dataset_, 7,
                                /*role_a=*/false);
    ASSERT_TRUE(b.ok()) << b.status();
    deployment_b_ = new Deployment(std::move(b).value());
  }
  static void TearDownTestSuite() {
    delete deployment_a_;
    delete deployment_b_;
    delete dataset_;
    deployment_a_ = nullptr;
    deployment_b_ = nullptr;
    dataset_ = nullptr;
  }

  // Starts B then A wired to it; returns both (A must shut down first, so
  // order of members in the struct matters: A is declared last).
  struct Servers {
    std::unique_ptr<PartyBServer> b;
    std::unique_ptr<PartyAServer> a;
    Servers() = default;
    Servers(Servers&&) = default;
    ~Servers() {
      if (a) a->Shutdown();
      if (b) b->Shutdown();
    }
  };

  static Servers StartServers(size_t workers, size_t queue_capacity,
                              ServerOptions a_options = ServerOptions()) {
    Servers s;
    ServerOptions b_options;
    auto b = PartyBServer::Start(*deployment_b_, b_options);
    EXPECT_TRUE(b.ok()) << b.status();
    s.b = std::move(b).value();
    a_options.peer_port = s.b->port();
    a_options.workers = workers;
    a_options.queue_capacity = queue_capacity;
    auto a = PartyAServer::Start(*deployment_a_, a_options);
    EXPECT_TRUE(a.ok()) << a.status();
    s.a = std::move(a).value();
    return s;
  }

  static data::Dataset* dataset_;
  static Deployment* deployment_a_;
  static Deployment* deployment_b_;
};

data::Dataset* ServerTest::dataset_ = nullptr;
Deployment* ServerTest::deployment_a_ = nullptr;
Deployment* ServerTest::deployment_b_ = nullptr;

TEST(AdmissionQueueTest, BoundsDepthAndSheds) {
  AdmissionQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3)) << "push beyond capacity must shed";
  EXPECT_EQ(queue.depth(), 2u);
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1) << "FIFO order";
  EXPECT_TRUE(queue.TryPush(3)) << "popping frees a slot";
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
}

TEST(AdmissionQueueTest, PopForTimesOutAndDrainHandsBackItems) {
  AdmissionQueue<int> queue(4);
  int out = 0;
  // Bounded wait on an empty queue: kTimeout, promptly.
  EXPECT_EQ(queue.PopFor(&out, 10), AdmissionQueue<int>::PopOutcome::kTimeout);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_EQ(queue.PopFor(&out, 10), AdmissionQueue<int>::PopOutcome::kItem);
  EXPECT_EQ(out, 1);
  // StopAndDrain returns the leftovers in FIFO order and stops the queue.
  std::vector<int> leftover = queue.StopAndDrain();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], 2);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.PopFor(&out, 10),
            AdmissionQueue<int>::PopOutcome::kStopped);
  EXPECT_FALSE(queue.TryPush(3)) << "a drained queue is stopped";
}

TEST(AdmissionQueueTest, StopUnblocksPoppers) {
  AdmissionQueue<int> queue(4);
  std::atomic<bool> returned{false};
  std::thread popper([&] {
    int out = 0;
    EXPECT_FALSE(queue.Pop(&out)) << "Pop after Stop must return false";
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned);
  queue.Stop();
  popper.join();
  EXPECT_TRUE(returned);
  EXPECT_FALSE(queue.TryPush(1)) << "a stopped queue sheds everything";
}

TEST_F(ServerTest, DeploymentDerivationIsDeterministic) {
  auto again = Deployment::Derive(ServerConfig(), *dataset_, 7,
                                  /*role_a=*/false);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->fingerprint, deployment_a_->fingerprint);
  EXPECT_EQ(again->party_a_seed, deployment_a_->party_a_seed);
  EXPECT_EQ(again->party_b_seed, deployment_a_->party_b_seed);
  EXPECT_EQ(again->client_seed, deployment_a_->client_seed);
  // role_a controls whether the encrypted database is materialized.
  EXPECT_TRUE(again->encrypted_db.empty());
  EXPECT_FALSE(deployment_a_->encrypted_db.empty());

  // A different seed is a different deployment: the handshake fingerprint
  // must differ so mismatched processes reject each other.
  auto other = Deployment::Derive(ServerConfig(), *dataset_, 8,
                                  /*role_a=*/false);
  ASSERT_TRUE(other.ok()) << other.status();
  EXPECT_NE(other->fingerprint, deployment_a_->fingerprint);
}

TEST_F(ServerTest, FourConcurrentClientsGetExactAnswers) {
  Servers servers = StartServers(/*workers=*/2, /*queue_capacity=*/8);
  constexpr size_t kClients = 4;
  constexpr size_t kQueriesPerClient = 2;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ServerOptions options;
      auto client = RemoteClient::Connect(*deployment_b_, "127.0.0.1",
                                          servers.a->port(), options);
      if (!client.ok()) {
        ADD_FAILURE() << "client " << c << ": " << client.status();
        ++failures;
        return;
      }
      for (size_t q = 0; q < kQueriesPerClient; ++q) {
        const std::vector<uint64_t> query =
            data::UniformQuery(2, 15, 1000 * (c + 1) + q);
        auto answer = (*client)->Query(query);
        if (!answer.ok()) {
          ADD_FAILURE() << "client " << c << " query " << q << ": "
                        << answer.status();
          ++failures;
          continue;
        }
        if (SortedDistances(answer.value(), query) !=
            ReferenceDistances(*dataset_, query, ServerConfig().k)) {
          ADD_FAILURE() << "client " << c << " query " << q
                        << ": answer does not match brute force";
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The counters OPERATIONS.md tells operators to watch moved.
  auto& registry = MetricsRegistry::Global();
  EXPECT_GE(registry.GetCounter("server.queries.completed")->value(),
            kClients * kQueriesPerClient);
  EXPECT_GE(registry.GetCounter("server.connections.accepted")->value(),
            kClients);
  EXPECT_EQ(registry.GetGauge("server.workers")->value(), 2.0);
}

TEST_F(ServerTest, SequentialQueriesOnOneConnection) {
  Servers servers = StartServers(/*workers=*/1, /*queue_capacity=*/4);
  ServerOptions options;
  auto client = RemoteClient::Connect(*deployment_b_, "127.0.0.1",
                                      servers.a->port(), options);
  ASSERT_TRUE(client.ok()) << client.status();
  // Several queries over one connection: per-query epochs keep the
  // sequence spaces aligned between client and server.
  for (int q = 0; q < 3; ++q) {
    const std::vector<uint64_t> query = data::UniformQuery(2, 15, 7000 + q);
    auto answer = (*client)->Query(query);
    ASSERT_TRUE(answer.ok()) << "query " << q << ": " << answer.status();
    EXPECT_EQ(SortedDistances(answer.value(), query),
              ReferenceDistances(*dataset_, query, ServerConfig().k));
  }
}

TEST_F(ServerTest, SaturatedQueueShedsWithTypedUnavailable) {
  Servers servers = StartServers(/*workers=*/1, /*queue_capacity=*/1);
  // One worker, one queue slot, and a 400ms artificial delay per query:
  // firing 4 concurrent queries guarantees at least one arrives while
  // both the worker and the slot are busy.
  servers.a->set_worker_delay_ms_for_test(400);
  auto& registry = MetricsRegistry::Global();
  const uint64_t shed_before =
      registry.GetCounter("server.queries.shed")->value();
  std::atomic<int> ok_count{0}, shed_count{0}, other_count{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < 4; ++c) {
    threads.emplace_back([&, c] {
      ServerOptions options;
      auto client = RemoteClient::Connect(*deployment_b_, "127.0.0.1",
                                          servers.a->port(), options);
      if (!client.ok()) {
        ++other_count;
        return;
      }
      const std::vector<uint64_t> query = data::UniformQuery(2, 15, 500 + c);
      auto answer = (*client)->Query(query);
      if (answer.ok()) {
        ++ok_count;
      } else if (answer.status().code() == StatusCode::kUnavailable) {
        // The shed contract: typed, transient, and explanatory.
        EXPECT_TRUE(answer.status().IsTransient());
        EXPECT_NE(answer.status().message().find("admission queue full"),
                  std::string::npos)
            << answer.status();
        ++shed_count;
      } else {
        ADD_FAILURE() << "client " << c
                      << ": unexpected error: " << answer.status();
        ++other_count;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count + shed_count, 4) << "every query ends ok or shed";
  EXPECT_GE(shed_count.load(), 1) << "saturation never tripped admission";
  EXPECT_GE(ok_count.load(), 1) << "admitted queries still complete";
  EXPECT_GT(registry.GetCounter("server.queries.shed")->value(), shed_before);
}

TEST_F(ServerTest, MismatchedDeploymentIsRejectedAtHandshake) {
  Servers servers = StartServers(/*workers=*/1, /*queue_capacity=*/4);
  auto wrong = Deployment::Derive(ServerConfig(), *dataset_, 999,
                                  /*role_a=*/false);
  ASSERT_TRUE(wrong.ok()) << wrong.status();
  ServerOptions options;
  auto client = RemoteClient::Connect(*wrong, "127.0.0.1", servers.a->port(),
                                      options);
  ASSERT_FALSE(client.ok()) << "a mismatched fingerprint must not connect";
  EXPECT_EQ(client.status().code(), StatusCode::kFailedPrecondition)
      << client.status();
  EXPECT_NE(client.status().message().find("reject"), std::string::npos)
      << client.status();
}

TEST_F(ServerTest, PartyAServerRequiresEncryptedDatabase) {
  ServerOptions options;
  options.peer_port = 1;  // never dialed: the role check fires first
  auto server = PartyAServer::Start(*deployment_b_, options);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kFailedPrecondition);
}

// The documented fail-fast path: Start returns the connect error before
// the listener exists, and the partially-constructed server's destructor
// (which runs Shutdown) must tolerate the missing members instead of
// dereferencing null.
TEST_F(ServerTest, PartyAStartFailsCleanlyWhenPeerUnreachable) {
  ServerOptions options;
  options.peer_port = 1;  // reserved port, nothing listens: refused
  options.connect_timeout_ms = 500;
  auto server = PartyAServer::Start(*deployment_a_, options);
  ASSERT_FALSE(server.ok()) << "connect to an unreachable B must fail";
  EXPECT_TRUE(server.status().IsTransient() ||
              server.status().code() == StatusCode::kFailedPrecondition)
      << server.status();
}

TEST_F(ServerTest, PartyBStartFailsCleanlyWhenPortTaken) {
  ServerOptions options;
  auto first = PartyBServer::Start(*deployment_b_, options);
  ASSERT_TRUE(first.ok()) << first.status();
  ServerOptions clash;
  clash.listen_port = (*first)->port();
  // Listen fails before the accept thread exists; the error must surface
  // through Start (the destructor runs Shutdown on a listener-less
  // server).
  auto second = PartyBServer::Start(*deployment_b_, clash);
  ASSERT_FALSE(second.ok()) << "binding a taken port must fail";
}

// A corrupted or hostile "ok k=..." control frame must surface as a typed
// kDataLoss, not an exception or an unbounded result loop. The fake
// Party A speaks just enough of the protocol (raw handshake welcome, then
// framed control replies) to poison the reply.
TEST_F(ServerTest, MalformedControlReplyIsTypedDataLoss) {
  auto listener = net::SocketListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const std::vector<std::string> replies = {"ok k=banana", "ok k=999"};
  std::thread fake_a([&] {
    auto conn_or = (*listener)->Accept(5000, "fake-A conn");
    if (!conn_or.ok()) {
      ADD_FAILURE() << conn_or.status();
      return;
    }
    std::unique_ptr<net::SocketChannel> conn = std::move(conn_or).value();
    conn->set_io_poll_ms(20);
    // Handshake: swallow the hello, answer welcome (the dialer only
    // checks the prefix).
    StatusOr<std::vector<uint8_t>> hello = conn->Receive();
    for (int i = 0; i < 500 && !hello.ok() &&
                    hello.status().code() == StatusCode::kUnavailable;
         ++i) {
      hello = conn->Receive();
    }
    if (!hello.ok()) {
      ADD_FAILURE() << hello.status();
      return;
    }
    const std::string welcome = "sknn-welcome/1";
    (void)conn->Send(net::EncodeFrame(
        net::MessageType::kControl, 0,
        std::vector<uint8_t>(welcome.begin(), welcome.end())));
    net::ResilientChannel ch(conn.get(), ServerOptions::ServerRetryPolicy(),
                             1, "fake-A serve");
    for (const std::string& reply : replies) {
      ch.ResetEpoch();
      auto query = ch.ReceiveMessage(net::MessageType::kQuery);
      if (!query.ok()) {
        ADD_FAILURE() << query.status();
        return;
      }
      (void)ch.SendMessage(
          net::MessageType::kControl,
          std::vector<uint8_t>(reply.begin(), reply.end()));
    }
  });
  ServerOptions options;
  auto client = RemoteClient::Connect(*deployment_b_, "127.0.0.1",
                                      (*listener)->port(), options);
  ASSERT_TRUE(client.ok()) << client.status();
  const std::vector<uint64_t> query = data::UniformQuery(2, 15, 321);
  auto garbled = (*client)->Query(query);
  ASSERT_FALSE(garbled.ok());
  EXPECT_EQ(garbled.status().code(), StatusCode::kDataLoss)
      << garbled.status();
  EXPECT_NE(garbled.status().message().find("malformed"), std::string::npos)
      << garbled.status();
  // "ok k=999" parses but exceeds the configured k: the client must bound
  // it instead of looping on 999 result frames that never come.
  auto oversized = (*client)->Query(query);
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.status().code(), StatusCode::kDataLoss)
      << oversized.status();
  EXPECT_NE(oversized.status().message().find("exceeds configured k"),
            std::string::npos)
      << oversized.status();
  fake_a.join();
}

// Regression for the stuck-worker bug: after a query error the worker
// used to make ONE reconnect attempt and, when that failed, kept popping
// jobs into the closed channel forever — every later client hung. The
// supervised loop must shed with a typed kUnavailable while B is down and
// recover by itself once B is back on the same address.
TEST_F(ServerTest, WorkerShedsWhileBDownAndRecoversAfterRestart) {
  Servers servers = StartServers(/*workers=*/1, /*queue_capacity=*/4);
  const uint16_t b_port = servers.b->port();
  ServerOptions options;
  auto client = RemoteClient::Connect(*deployment_b_, "127.0.0.1",
                                      servers.a->port(), options);
  ASSERT_TRUE(client.ok()) << client.status();
  const std::vector<uint64_t> query = data::UniformQuery(2, 15, 4242);
  auto before = (*client)->Query(query);
  ASSERT_TRUE(before.ok()) << before.status();

  // Kill B. The next queries must end in typed transient errors — never
  // hang, never a wrong answer.
  servers.b->Shutdown();
  servers.b.reset();
  for (int q = 0; q < 2; ++q) {
    auto while_down = (*client)->Query(query);
    ASSERT_FALSE(while_down.ok()) << "query must fail while B is down";
    EXPECT_TRUE(while_down.status().IsTransient()) << while_down.status();
  }

  // Restart B on the same port; the worker's supervised reconnect loop
  // must find it without any operator action on A.
  ServerOptions b_options;
  b_options.listen_port = b_port;
  auto restarted = PartyBServer::Start(*deployment_b_, b_options);
  ASSERT_TRUE(restarted.ok()) << restarted.status();
  servers.b = std::move(restarted).value();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  StatusOr<std::vector<std::vector<uint64_t>>> answer =
      UnavailableError("never ran");
  while (std::chrono::steady_clock::now() < deadline) {
    answer = (*client)->Query(query);
    if (answer.ok()) break;
    ASSERT_TRUE(answer.status().IsTransient()) << answer.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_TRUE(answer.ok()) << "worker never recovered: " << answer.status();
  EXPECT_EQ(SortedDistances(answer.value(), query),
            ReferenceDistances(*dataset_, query, ServerConfig().k));
  EXPECT_GE(
      MetricsRegistry::Global().GetCounter("server.worker.reconnects")->value(),
      1u);
}

// Idle workers probe their B connection: within a few heartbeat intervals
// both sides' heartbeat counters must move, with no query traffic at all.
TEST_F(ServerTest, IdleWorkersHeartbeatPartyB) {
  auto& registry = MetricsRegistry::Global();
  const uint64_t a_beats_before =
      registry.GetCounter("server.worker.heartbeats")->value();
  const uint64_t b_beats_before =
      registry.GetCounter("server.b.heartbeats")->value();
  ServerOptions a_options;
  a_options.heartbeat_interval_ms = 50;
  Servers servers = StartServers(/*workers=*/1, /*queue_capacity=*/4,
                                 a_options);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         registry.GetCounter("server.worker.heartbeats")->value() <
             a_beats_before + 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(registry.GetCounter("server.worker.heartbeats")->value(),
            a_beats_before + 2);
  EXPECT_GE(registry.GetCounter("server.b.heartbeats")->value(),
            b_beats_before + 2);
  EXPECT_EQ(registry.GetCounter("server.worker.heartbeat_failures")->value(),
            0u);
}

// Deadline propagation: a query whose budget expires while it waits in
// the admission queue must be shed with a typed kDeadlineExceeded (and
// counted), not run to completion for a client that already gave up.
TEST_F(ServerTest, ExpiredQueueDeadlineIsTypedDeadlineExceeded) {
  Servers servers = StartServers(/*workers=*/1, /*queue_capacity=*/4);
  servers.a->set_worker_delay_ms_for_test(300);
  auto& registry = MetricsRegistry::Global();
  const uint64_t expired_before =
      registry.GetCounter("server.queries.expired")->value();
  // Occupy the single worker, then race a short-deadline query into the
  // queue behind it.
  std::thread occupant([&] {
    ServerOptions options;
    auto c = RemoteClient::Connect(*deployment_b_, "127.0.0.1",
                                   servers.a->port(), options);
    if (!c.ok()) return;
    (void)(*c)->Query(data::UniformQuery(2, 15, 9001));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  ServerOptions options;
  auto client = RemoteClient::Connect(*deployment_b_, "127.0.0.1",
                                      servers.a->port(), options);
  ASSERT_TRUE(client.ok()) << client.status();
  auto answer =
      (*client)->Query(data::UniformQuery(2, 15, 9002), /*deadline_ms=*/100);
  occupant.join();
  ASSERT_FALSE(answer.ok()) << "a 100ms deadline cannot survive a 300ms+ "
                               "occupied worker";
  EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded)
      << answer.status();
  // The server-side expiry counter moves when the worker pops the dead
  // job (which may be after the client's own bounded wait returned).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline &&
         registry.GetCounter("server.queries.expired")->value() <=
             expired_before) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(registry.GetCounter("server.queries.expired")->value(),
            expired_before);
  // The connection survives for the next (undeadlined) query.
  auto after = (*client)->Query(data::UniformQuery(2, 15, 9003));
  EXPECT_TRUE(after.ok()) << after.status();
}

// Whole-query re-execution: an injected worker fault aborts the first
// attempt; the worker must reconnect and re-run the query from
// StartQuery, and the client sees nothing but a correct answer.
TEST_F(ServerTest, InjectedWorkerFaultIsHealedByReexecution) {
  Servers servers = StartServers(/*workers=*/1, /*queue_capacity=*/4);
  auto& registry = MetricsRegistry::Global();
  const uint64_t reexec_before =
      registry.GetCounter("server.query.reexecutions")->value();
  servers.a->inject_worker_faults_for_test(1);
  ServerOptions options;
  auto client = RemoteClient::Connect(*deployment_b_, "127.0.0.1",
                                      servers.a->port(), options);
  ASSERT_TRUE(client.ok()) << client.status();
  const std::vector<uint64_t> query = data::UniformQuery(2, 15, 777);
  auto answer = (*client)->Query(query);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(SortedDistances(answer.value(), query),
            ReferenceDistances(*dataset_, query, ServerConfig().k));
  EXPECT_EQ(registry.GetCounter("server.query.reexecutions")->value(),
            reexec_before + 1);
}

// Party A disconnecting after the "ok k=" control reply but before the
// result frames must surface as a typed transient error on the client —
// never a hang (the dead socket fast-fails the receive) and never a
// partial answer.
TEST_F(ServerTest, DisconnectMidResultStreamIsTypedTransient) {
  auto listener = net::SocketListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  std::thread fake_a([&] {
    auto conn_or = (*listener)->Accept(5000, "fake-A conn");
    if (!conn_or.ok()) {
      ADD_FAILURE() << conn_or.status();
      return;
    }
    std::unique_ptr<net::SocketChannel> conn = std::move(conn_or).value();
    conn->set_io_poll_ms(20);
    StatusOr<std::vector<uint8_t>> hello = conn->Receive();
    for (int i = 0; i < 500 && !hello.ok() &&
                    hello.status().code() == StatusCode::kUnavailable;
         ++i) {
      hello = conn->Receive();
    }
    if (!hello.ok()) {
      ADD_FAILURE() << hello.status();
      return;
    }
    const std::string welcome = "sknn-welcome/1";
    (void)conn->Send(net::EncodeFrame(
        net::MessageType::kControl, 0,
        std::vector<uint8_t>(welcome.begin(), welcome.end())));
    net::ResilientChannel ch(conn.get(), ServerOptions::ServerRetryPolicy(),
                             1, "fake-A serve");
    ch.ResetEpoch();
    auto query = ch.ReceiveMessage(net::MessageType::kQuery);
    if (!query.ok()) {
      ADD_FAILURE() << query.status();
      return;
    }
    // Promise two results, deliver none: drop the connection mid-stream.
    const std::string ok = "ok k=2";
    (void)ch.SendMessage(net::MessageType::kControl,
                         std::vector<uint8_t>(ok.begin(), ok.end()));
    conn->Close();
  });
  ServerOptions options;
  auto client = RemoteClient::Connect(*deployment_b_, "127.0.0.1",
                                      (*listener)->port(), options);
  ASSERT_TRUE(client.ok()) << client.status();
  const auto t0 = std::chrono::steady_clock::now();
  auto answer = (*client)->Query(data::UniformQuery(2, 15, 654));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  ASSERT_FALSE(answer.ok()) << "a mid-stream disconnect cannot produce an "
                               "answer";
  EXPECT_TRUE(answer.status().IsTransient()) << answer.status();
  // Fast-fail contract: a closed peer is detected at the frame boundary,
  // not after the full receive-poll budget (~10s).
  EXPECT_LT(elapsed, 5000) << "client hung on a dead connection";
  fake_a.join();
}

// Graceful drain: queued-but-unstarted queries are answered with a typed
// kUnavailable at the drain deadline, in-flight queries finish, and new
// arrivals are shed while draining.
TEST_F(ServerTest, DrainAnswersStragglersAndShedsNewQueries) {
  Servers servers = StartServers(/*workers=*/1, /*queue_capacity=*/4);
  servers.a->set_worker_delay_ms_for_test(400);
  auto& registry = MetricsRegistry::Global();
  const uint64_t drained_before =
      registry.GetCounter("server.queries.drained")->value();
  std::atomic<int> ok_count{0}, unavailable_count{0}, other_count{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&, c] {
      ServerOptions options;
      auto client = RemoteClient::Connect(*deployment_b_, "127.0.0.1",
                                          servers.a->port(), options);
      if (!client.ok()) {
        ++other_count;
        return;
      }
      const std::vector<uint64_t> query = data::UniformQuery(2, 15, 80 + c);
      auto answer = (*client)->Query(query);
      if (answer.ok()) {
        if (SortedDistances(answer.value(), query) ==
            ReferenceDistances(*dataset_, query, ServerConfig().k)) {
          ++ok_count;
        } else {
          ADD_FAILURE() << "drained server returned a wrong answer";
          ++other_count;
        }
      } else if (answer.status().code() == StatusCode::kUnavailable) {
        ++unavailable_count;
      } else {
        ADD_FAILURE() << "unexpected drain-time error: " << answer.status();
        ++other_count;
      }
    });
  }
  // Let the queries reach the queue, then drain with a deadline shorter
  // than the backlog: the in-flight query finishes, the rest are
  // answered with the typed straggler error.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  servers.a->Drain(/*deadline_ms=*/100);
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count + unavailable_count, 3)
      << "every query must end answered or typed-shed";
  EXPECT_GE(ok_count.load(), 1) << "the in-flight query must finish";
  EXPECT_GE(unavailable_count.load(), 1) << "stragglers must be shed";
  EXPECT_GE(registry.GetCounter("server.queries.drained")->value(),
            drained_before + 1);
  // New queries during/after drain: typed shed, never accepted.
  ServerOptions options;
  auto late_client = RemoteClient::Connect(*deployment_b_, "127.0.0.1",
                                           servers.a->port(), options);
  ASSERT_TRUE(late_client.ok()) << late_client.status();
  auto late = (*late_client)->Query(data::UniformQuery(2, 15, 99));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable) << late.status();
  EXPECT_NE(late.status().message().find("draining"), std::string::npos)
      << late.status();
}

}  // namespace
}  // namespace core
}  // namespace sknn
