// Multi-client server tests: the socket-backed two-cloud deployment
// (core/server.h) serving concurrent clients with admission control.
// Every answer is checked exactly against plaintext brute force; the
// backpressure test pins the typed-shed contract of DESIGN.md §9.

#include "core/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "data/generators.h"
#include "knn/knn.h"
#include "net/frame.h"
#include "net/resilient_channel.h"
#include "net/socket_link.h"

namespace sknn {
namespace core {
namespace {

ProtocolConfig ServerConfig() {
  ProtocolConfig cfg;
  cfg.k = 3;
  cfg.poly_degree = 2;
  cfg.coord_bits = 4;
  cfg.dims = 2;
  cfg.layout = Layout::kPacked;
  cfg.preset = bgv::SecurityPreset::kToy;
  cfg.plain_bits = 33;
  cfg.threads = 1;
  cfg.levels = cfg.MinimumLevels();
  return cfg;
}

std::vector<uint64_t> SortedDistances(
    const std::vector<std::vector<uint64_t>>& points,
    const std::vector<uint64_t>& query) {
  std::vector<uint64_t> out;
  for (const auto& p : points) {
    uint64_t sum = 0;
    for (size_t j = 0; j < query.size(); ++j) {
      const uint64_t d = p[j] > query[j] ? p[j] - query[j] : query[j] - p[j];
      sum += d * d;
    }
    out.push_back(sum);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> ReferenceDistances(const data::Dataset& data,
                                         const std::vector<uint64_t>& query,
                                         size_t k) {
  auto ref = knn::PlaintextKnn(data, query, k);
  EXPECT_TRUE(ref.ok());
  std::vector<uint64_t> out;
  for (const auto& nb : ref.value()) out.push_back(nb.squared_distance);
  std::sort(out.begin(), out.end());
  return out;
}

// Deriving a toy deployment costs a second or two; share one across the
// suite (the servers themselves are started per test).
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::Dataset(data::UniformDataset(24, 2, 15, 42));
    auto a = Deployment::Derive(ServerConfig(), *dataset_, 7,
                                /*role_a=*/true);
    ASSERT_TRUE(a.ok()) << a.status();
    deployment_a_ = new Deployment(std::move(a).value());
    auto b = Deployment::Derive(ServerConfig(), *dataset_, 7,
                                /*role_a=*/false);
    ASSERT_TRUE(b.ok()) << b.status();
    deployment_b_ = new Deployment(std::move(b).value());
  }
  static void TearDownTestSuite() {
    delete deployment_a_;
    delete deployment_b_;
    delete dataset_;
    deployment_a_ = nullptr;
    deployment_b_ = nullptr;
    dataset_ = nullptr;
  }

  // Starts B then A wired to it; returns both (A must shut down first, so
  // order of members in the struct matters: A is declared last).
  struct Servers {
    std::unique_ptr<PartyBServer> b;
    std::unique_ptr<PartyAServer> a;
    Servers() = default;
    Servers(Servers&&) = default;
    ~Servers() {
      if (a) a->Shutdown();
      if (b) b->Shutdown();
    }
  };

  static Servers StartServers(size_t workers, size_t queue_capacity) {
    Servers s;
    ServerOptions b_options;
    auto b = PartyBServer::Start(*deployment_b_, b_options);
    EXPECT_TRUE(b.ok()) << b.status();
    s.b = std::move(b).value();
    ServerOptions a_options;
    a_options.peer_port = s.b->port();
    a_options.workers = workers;
    a_options.queue_capacity = queue_capacity;
    auto a = PartyAServer::Start(*deployment_a_, a_options);
    EXPECT_TRUE(a.ok()) << a.status();
    s.a = std::move(a).value();
    return s;
  }

  static data::Dataset* dataset_;
  static Deployment* deployment_a_;
  static Deployment* deployment_b_;
};

data::Dataset* ServerTest::dataset_ = nullptr;
Deployment* ServerTest::deployment_a_ = nullptr;
Deployment* ServerTest::deployment_b_ = nullptr;

TEST(AdmissionQueueTest, BoundsDepthAndSheds) {
  AdmissionQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3)) << "push beyond capacity must shed";
  EXPECT_EQ(queue.depth(), 2u);
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1) << "FIFO order";
  EXPECT_TRUE(queue.TryPush(3)) << "popping frees a slot";
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
}

TEST(AdmissionQueueTest, StopUnblocksPoppers) {
  AdmissionQueue<int> queue(4);
  std::atomic<bool> returned{false};
  std::thread popper([&] {
    int out = 0;
    EXPECT_FALSE(queue.Pop(&out)) << "Pop after Stop must return false";
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned);
  queue.Stop();
  popper.join();
  EXPECT_TRUE(returned);
  EXPECT_FALSE(queue.TryPush(1)) << "a stopped queue sheds everything";
}

TEST_F(ServerTest, DeploymentDerivationIsDeterministic) {
  auto again = Deployment::Derive(ServerConfig(), *dataset_, 7,
                                  /*role_a=*/false);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->fingerprint, deployment_a_->fingerprint);
  EXPECT_EQ(again->party_a_seed, deployment_a_->party_a_seed);
  EXPECT_EQ(again->party_b_seed, deployment_a_->party_b_seed);
  EXPECT_EQ(again->client_seed, deployment_a_->client_seed);
  // role_a controls whether the encrypted database is materialized.
  EXPECT_TRUE(again->encrypted_db.empty());
  EXPECT_FALSE(deployment_a_->encrypted_db.empty());

  // A different seed is a different deployment: the handshake fingerprint
  // must differ so mismatched processes reject each other.
  auto other = Deployment::Derive(ServerConfig(), *dataset_, 8,
                                  /*role_a=*/false);
  ASSERT_TRUE(other.ok()) << other.status();
  EXPECT_NE(other->fingerprint, deployment_a_->fingerprint);
}

TEST_F(ServerTest, FourConcurrentClientsGetExactAnswers) {
  Servers servers = StartServers(/*workers=*/2, /*queue_capacity=*/8);
  constexpr size_t kClients = 4;
  constexpr size_t kQueriesPerClient = 2;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ServerOptions options;
      auto client = RemoteClient::Connect(*deployment_b_, "127.0.0.1",
                                          servers.a->port(), options);
      if (!client.ok()) {
        ADD_FAILURE() << "client " << c << ": " << client.status();
        ++failures;
        return;
      }
      for (size_t q = 0; q < kQueriesPerClient; ++q) {
        const std::vector<uint64_t> query =
            data::UniformQuery(2, 15, 1000 * (c + 1) + q);
        auto answer = (*client)->Query(query);
        if (!answer.ok()) {
          ADD_FAILURE() << "client " << c << " query " << q << ": "
                        << answer.status();
          ++failures;
          continue;
        }
        if (SortedDistances(answer.value(), query) !=
            ReferenceDistances(*dataset_, query, ServerConfig().k)) {
          ADD_FAILURE() << "client " << c << " query " << q
                        << ": answer does not match brute force";
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The counters OPERATIONS.md tells operators to watch moved.
  auto& registry = MetricsRegistry::Global();
  EXPECT_GE(registry.GetCounter("server.queries.completed")->value(),
            kClients * kQueriesPerClient);
  EXPECT_GE(registry.GetCounter("server.connections.accepted")->value(),
            kClients);
  EXPECT_EQ(registry.GetGauge("server.workers")->value(), 2.0);
}

TEST_F(ServerTest, SequentialQueriesOnOneConnection) {
  Servers servers = StartServers(/*workers=*/1, /*queue_capacity=*/4);
  ServerOptions options;
  auto client = RemoteClient::Connect(*deployment_b_, "127.0.0.1",
                                      servers.a->port(), options);
  ASSERT_TRUE(client.ok()) << client.status();
  // Several queries over one connection: per-query epochs keep the
  // sequence spaces aligned between client and server.
  for (int q = 0; q < 3; ++q) {
    const std::vector<uint64_t> query = data::UniformQuery(2, 15, 7000 + q);
    auto answer = (*client)->Query(query);
    ASSERT_TRUE(answer.ok()) << "query " << q << ": " << answer.status();
    EXPECT_EQ(SortedDistances(answer.value(), query),
              ReferenceDistances(*dataset_, query, ServerConfig().k));
  }
}

TEST_F(ServerTest, SaturatedQueueShedsWithTypedUnavailable) {
  Servers servers = StartServers(/*workers=*/1, /*queue_capacity=*/1);
  // One worker, one queue slot, and a 400ms artificial delay per query:
  // firing 4 concurrent queries guarantees at least one arrives while
  // both the worker and the slot are busy.
  servers.a->set_worker_delay_ms_for_test(400);
  auto& registry = MetricsRegistry::Global();
  const uint64_t shed_before =
      registry.GetCounter("server.queries.shed")->value();
  std::atomic<int> ok_count{0}, shed_count{0}, other_count{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < 4; ++c) {
    threads.emplace_back([&, c] {
      ServerOptions options;
      auto client = RemoteClient::Connect(*deployment_b_, "127.0.0.1",
                                          servers.a->port(), options);
      if (!client.ok()) {
        ++other_count;
        return;
      }
      const std::vector<uint64_t> query = data::UniformQuery(2, 15, 500 + c);
      auto answer = (*client)->Query(query);
      if (answer.ok()) {
        ++ok_count;
      } else if (answer.status().code() == StatusCode::kUnavailable) {
        // The shed contract: typed, transient, and explanatory.
        EXPECT_TRUE(answer.status().IsTransient());
        EXPECT_NE(answer.status().message().find("admission queue full"),
                  std::string::npos)
            << answer.status();
        ++shed_count;
      } else {
        ADD_FAILURE() << "client " << c
                      << ": unexpected error: " << answer.status();
        ++other_count;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count + shed_count, 4) << "every query ends ok or shed";
  EXPECT_GE(shed_count.load(), 1) << "saturation never tripped admission";
  EXPECT_GE(ok_count.load(), 1) << "admitted queries still complete";
  EXPECT_GT(registry.GetCounter("server.queries.shed")->value(), shed_before);
}

TEST_F(ServerTest, MismatchedDeploymentIsRejectedAtHandshake) {
  Servers servers = StartServers(/*workers=*/1, /*queue_capacity=*/4);
  auto wrong = Deployment::Derive(ServerConfig(), *dataset_, 999,
                                  /*role_a=*/false);
  ASSERT_TRUE(wrong.ok()) << wrong.status();
  ServerOptions options;
  auto client = RemoteClient::Connect(*wrong, "127.0.0.1", servers.a->port(),
                                      options);
  ASSERT_FALSE(client.ok()) << "a mismatched fingerprint must not connect";
  EXPECT_EQ(client.status().code(), StatusCode::kFailedPrecondition)
      << client.status();
  EXPECT_NE(client.status().message().find("reject"), std::string::npos)
      << client.status();
}

TEST_F(ServerTest, PartyAServerRequiresEncryptedDatabase) {
  ServerOptions options;
  options.peer_port = 1;  // never dialed: the role check fires first
  auto server = PartyAServer::Start(*deployment_b_, options);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kFailedPrecondition);
}

// The documented fail-fast path: Start returns the connect error before
// the listener exists, and the partially-constructed server's destructor
// (which runs Shutdown) must tolerate the missing members instead of
// dereferencing null.
TEST_F(ServerTest, PartyAStartFailsCleanlyWhenPeerUnreachable) {
  ServerOptions options;
  options.peer_port = 1;  // reserved port, nothing listens: refused
  options.connect_timeout_ms = 500;
  auto server = PartyAServer::Start(*deployment_a_, options);
  ASSERT_FALSE(server.ok()) << "connect to an unreachable B must fail";
  EXPECT_TRUE(server.status().IsTransient() ||
              server.status().code() == StatusCode::kFailedPrecondition)
      << server.status();
}

TEST_F(ServerTest, PartyBStartFailsCleanlyWhenPortTaken) {
  ServerOptions options;
  auto first = PartyBServer::Start(*deployment_b_, options);
  ASSERT_TRUE(first.ok()) << first.status();
  ServerOptions clash;
  clash.listen_port = (*first)->port();
  // Listen fails before the accept thread exists; the error must surface
  // through Start (the destructor runs Shutdown on a listener-less
  // server).
  auto second = PartyBServer::Start(*deployment_b_, clash);
  ASSERT_FALSE(second.ok()) << "binding a taken port must fail";
}

// A corrupted or hostile "ok k=..." control frame must surface as a typed
// kDataLoss, not an exception or an unbounded result loop. The fake
// Party A speaks just enough of the protocol (raw handshake welcome, then
// framed control replies) to poison the reply.
TEST_F(ServerTest, MalformedControlReplyIsTypedDataLoss) {
  auto listener = net::SocketListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const std::vector<std::string> replies = {"ok k=banana", "ok k=999"};
  std::thread fake_a([&] {
    auto conn_or = (*listener)->Accept(5000, "fake-A conn");
    if (!conn_or.ok()) {
      ADD_FAILURE() << conn_or.status();
      return;
    }
    std::unique_ptr<net::SocketChannel> conn = std::move(conn_or).value();
    conn->set_io_poll_ms(20);
    // Handshake: swallow the hello, answer welcome (the dialer only
    // checks the prefix).
    StatusOr<std::vector<uint8_t>> hello = conn->Receive();
    for (int i = 0; i < 500 && !hello.ok() &&
                    hello.status().code() == StatusCode::kUnavailable;
         ++i) {
      hello = conn->Receive();
    }
    if (!hello.ok()) {
      ADD_FAILURE() << hello.status();
      return;
    }
    const std::string welcome = "sknn-welcome/1";
    (void)conn->Send(net::EncodeFrame(
        net::MessageType::kControl, 0,
        std::vector<uint8_t>(welcome.begin(), welcome.end())));
    net::ResilientChannel ch(conn.get(), ServerOptions::ServerRetryPolicy(),
                             1, "fake-A serve");
    for (const std::string& reply : replies) {
      ch.ResetEpoch();
      auto query = ch.ReceiveMessage(net::MessageType::kQuery);
      if (!query.ok()) {
        ADD_FAILURE() << query.status();
        return;
      }
      (void)ch.SendMessage(
          net::MessageType::kControl,
          std::vector<uint8_t>(reply.begin(), reply.end()));
    }
  });
  ServerOptions options;
  auto client = RemoteClient::Connect(*deployment_b_, "127.0.0.1",
                                      (*listener)->port(), options);
  ASSERT_TRUE(client.ok()) << client.status();
  const std::vector<uint64_t> query = data::UniformQuery(2, 15, 321);
  auto garbled = (*client)->Query(query);
  ASSERT_FALSE(garbled.ok());
  EXPECT_EQ(garbled.status().code(), StatusCode::kDataLoss)
      << garbled.status();
  EXPECT_NE(garbled.status().message().find("malformed"), std::string::npos)
      << garbled.status();
  // "ok k=999" parses but exceeds the configured k: the client must bound
  // it instead of looping on 999 result frames that never come.
  auto oversized = (*client)->Query(query);
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.status().code(), StatusCode::kDataLoss)
      << oversized.status();
  EXPECT_NE(oversized.status().message().find("exceeds configured k"),
            std::string::npos)
      << oversized.status();
  fake_a.join();
}

}  // namespace
}  // namespace core
}  // namespace sknn
