#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "bgv/context.h"
#include "bgv/decryptor.h"
#include "bgv/encoder.h"
#include "bgv/encryptor.h"
#include "bgv/evaluator.h"
#include "bgv/keys.h"
#include "bgv/params.h"
#include "common/rng.h"

namespace sknn {
namespace bgv {
namespace {

// Shared small-parameter fixture: n=256 keeps every test fast while
// exercising the full RNS/keyswitch machinery.
class BgvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto params = BgvParams::CreateCustom(/*n=*/256, /*plain_bits=*/20,
                                          /*levels=*/4, /*data_prime_bits=*/45,
                                          /*special_prime_bits=*/50);
    ASSERT_TRUE(params.ok()) << params.status();
    auto ctx = BgvContext::Create(params.value());
    ASSERT_TRUE(ctx.ok()) << ctx.status();
    ctx_ = ctx.value();
    rng_ = std::make_unique<Chacha20Rng>(uint64_t{2024});
    KeyGenerator keygen(ctx_, rng_.get());
    sk_ = keygen.GenerateSecretKey();
    pk_ = keygen.GeneratePublicKey(sk_);
    rk_ = keygen.GenerateRelinKeys(sk_);
    gk_ = keygen.GeneratePowerOfTwoRotationKeys(sk_);
    encoder_ = std::make_unique<BatchEncoder>(ctx_);
    encryptor_ = std::make_unique<Encryptor>(ctx_, pk_, rng_.get());
    decryptor_ = std::make_unique<Decryptor>(ctx_, sk_);
    evaluator_ = std::make_unique<Evaluator>(ctx_);
  }

  std::vector<uint64_t> RandomSlots(uint64_t bound = 0) {
    if (bound == 0) bound = ctx_->t();
    std::vector<uint64_t> v(ctx_->n());
    for (auto& x : v) x = rng_->UniformBelow(bound);
    return v;
  }

  Ciphertext EncryptVec(const std::vector<uint64_t>& slots) {
    auto pt = encoder_->Encode(slots);
    EXPECT_TRUE(pt.ok());
    auto ct = encryptor_->Encrypt(pt.value());
    EXPECT_TRUE(ct.ok());
    return ct.value();
  }

  std::vector<uint64_t> DecryptVec(const Ciphertext& ct) {
    auto pt = decryptor_->Decrypt(ct);
    EXPECT_TRUE(pt.ok()) << pt.status();
    return encoder_->Decode(pt.value());
  }

  std::shared_ptr<const BgvContext> ctx_;
  std::unique_ptr<Chacha20Rng> rng_;
  SecretKey sk_;
  PublicKey pk_;
  RelinKeys rk_;
  GaloisKeys gk_;
  std::unique_ptr<BatchEncoder> encoder_;
  std::unique_ptr<Encryptor> encryptor_;
  std::unique_ptr<Decryptor> decryptor_;
  std::unique_ptr<Evaluator> evaluator_;
};

TEST(BgvParamsTest, PresetsValidate) {
  for (auto preset : {SecurityPreset::kToy, SecurityPreset::kBench}) {
    auto p = BgvParams::Create(preset, /*levels=*/3);
    ASSERT_TRUE(p.ok()) << p.status();
    EXPECT_TRUE(p->Validate().ok());
    EXPECT_EQ(p->max_level(), 2u);
  }
}

TEST(BgvParamsTest, PlaintextPrimeSplitsRing) {
  auto p = BgvParams::Create(SecurityPreset::kToy);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->plain_modulus % (2 * p->n), 1u);
}

TEST(BgvParamsTest, SecurityEstimateMonotoneInModulus) {
  double wide = EstimateSecurityBits(8192, 400);
  double narrow = EstimateSecurityBits(8192, 200);
  EXPECT_GT(narrow, wide);
  EXPECT_NEAR(EstimateSecurityBits(8192, 218), 128.0, 1.0);
}

TEST(BgvParamsTest, CustomRejectsSillyInputs) {
  EXPECT_FALSE(BgvParams::CreateCustom(100, 20, 2, 45, 50).ok());  // not 2^k
  EXPECT_FALSE(BgvParams::CreateCustom(256, 20, 0, 45, 50).ok());  // no primes
}

TEST_F(BgvTest, ContextConstantsAreConsistent) {
  const uint64_t t = ctx_->t();
  for (size_t i = 0; i < ctx_->num_data_primes(); ++i) {
    const uint64_t q = ctx_->params().data_primes[i];
    EXPECT_EQ(MulModSlow(ctx_->t_inv_mod_q(i), t % q, q), 1u);
    EXPECT_EQ(ctx_->sp_mod_q(i), ctx_->params().special_prime % q);
    EXPECT_EQ(MulModSlow(ctx_->sp_inv_mod_q(i), ctx_->sp_mod_q(i), q), 1u);
  }
  // q_inv_mod_t really inverts each prime mod t.
  for (size_t i = 0; i < ctx_->num_data_primes(); ++i) {
    EXPECT_EQ(MulModSlow(ctx_->q_inv_mod_t(i),
                         ctx_->params().data_primes[i] % t, t),
              1u);
  }
  EXPECT_EQ(ctx_->correction_mod_t(ctx_->max_level()), 1u);
}

TEST_F(BgvTest, EncoderRoundtrip) {
  std::vector<uint64_t> values = RandomSlots();
  auto pt = encoder_->Encode(values);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(encoder_->Decode(pt.value()), values);
}

TEST_F(BgvTest, EncoderPartialVectorZeroPads) {
  std::vector<uint64_t> values = {1, 2, 3};
  auto pt = encoder_->Encode(values);
  ASSERT_TRUE(pt.ok());
  auto decoded = encoder_->Decode(pt.value());
  EXPECT_EQ(decoded[0], 1u);
  EXPECT_EQ(decoded[1], 2u);
  EXPECT_EQ(decoded[2], 3u);
  for (size_t i = 3; i < decoded.size(); ++i) EXPECT_EQ(decoded[i], 0u);
}

TEST_F(BgvTest, EncoderRejectsOversize) {
  std::vector<uint64_t> too_many(ctx_->n() + 1, 0);
  EXPECT_FALSE(encoder_->Encode(too_many).ok());
  EXPECT_FALSE(encoder_->Encode({ctx_->t()}).ok());
}

TEST_F(BgvTest, ScalarEncodePutsValueInEverySlot) {
  Plaintext pt = encoder_->EncodeScalar(7);
  for (uint64_t v : encoder_->Decode(pt)) EXPECT_EQ(v, 7u);
}

TEST_F(BgvTest, EncryptDecryptRoundtrip) {
  std::vector<uint64_t> values = RandomSlots();
  Ciphertext ct = EncryptVec(values);
  EXPECT_EQ(ct.level, ctx_->max_level());
  EXPECT_EQ(DecryptVec(ct), values);
}

TEST_F(BgvTest, FreshNoiseBudgetPositive) {
  Ciphertext ct = EncryptVec(RandomSlots());
  auto budget = decryptor_->NoiseBudgetBits(ct);
  ASSERT_TRUE(budget.ok());
  EXPECT_GT(budget.value(), 30.0);
}

TEST_F(BgvTest, AddIsSlotwise) {
  auto a = RandomSlots();
  auto b = RandomSlots();
  Ciphertext ca = EncryptVec(a);
  Ciphertext cb = EncryptVec(b);
  ASSERT_TRUE(evaluator_->AddInplace(&ca, cb).ok());
  auto sum = DecryptVec(ca);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(sum[i], AddMod(a[i], b[i], ctx_->t()));
  }
}

TEST_F(BgvTest, SubIsSlotwise) {
  auto a = RandomSlots();
  auto b = RandomSlots();
  Ciphertext ca = EncryptVec(a);
  Ciphertext cb = EncryptVec(b);
  ASSERT_TRUE(evaluator_->SubInplace(&ca, cb).ok());
  auto diff = DecryptVec(ca);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(diff[i], SubMod(a[i], b[i], ctx_->t()));
  }
}

TEST_F(BgvTest, NegateIsSlotwise) {
  auto a = RandomSlots();
  Ciphertext ca = EncryptVec(a);
  evaluator_->NegateInplace(&ca);
  auto neg = DecryptVec(ca);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(neg[i], NegMod(a[i], ctx_->t()));
  }
}

TEST_F(BgvTest, AddPlainIsSlotwise) {
  auto a = RandomSlots();
  auto b = RandomSlots();
  Ciphertext ca = EncryptVec(a);
  auto pb = encoder_->Encode(b);
  ASSERT_TRUE(pb.ok());
  ASSERT_TRUE(evaluator_->AddPlainInplace(&ca, pb.value()).ok());
  auto sum = DecryptVec(ca);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(sum[i], AddMod(a[i], b[i], ctx_->t()));
  }
}

TEST_F(BgvTest, MultiplyRelinIsSlotwise) {
  auto a = RandomSlots();
  auto b = RandomSlots();
  Ciphertext ca = EncryptVec(a);
  Ciphertext cb = EncryptVec(b);
  auto prod = evaluator_->MultiplyRelin(ca, cb, rk_);
  ASSERT_TRUE(prod.ok()) << prod.status();
  EXPECT_EQ(prod->level, ctx_->max_level() - 1);  // auto mod switch
  auto got = DecryptVec(prod.value());
  Modulus t(ctx_->t());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(got[i], t.MulMod(a[i], b[i]));
  }
}

TEST_F(BgvTest, MultiplyWithoutRelinDecryptsViaSize3) {
  auto a = RandomSlots();
  auto b = RandomSlots();
  auto prod = evaluator_->Multiply(EncryptVec(a), EncryptVec(b));
  ASSERT_TRUE(prod.ok());
  EXPECT_EQ(prod->size(), 3u);
  auto got = DecryptVec(prod.value());
  Modulus t(ctx_->t());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(got[i], t.MulMod(a[i], b[i]));
  }
}

TEST_F(BgvTest, MultiplyPlainIsSlotwise) {
  auto a = RandomSlots();
  auto b = RandomSlots();
  Ciphertext ca = EncryptVec(a);
  auto pb = encoder_->Encode(b);
  ASSERT_TRUE(pb.ok());
  ASSERT_TRUE(evaluator_->MultiplyPlainInplace(&ca, pb.value()).ok());
  auto got = DecryptVec(ca);
  Modulus t(ctx_->t());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(got[i], t.MulMod(a[i], b[i]));
  }
}

TEST_F(BgvTest, MultiplyScalarScalesEverySlot) {
  auto a = RandomSlots();
  Ciphertext ca = EncryptVec(a);
  ASSERT_TRUE(evaluator_->MultiplyScalarInplace(&ca, 12345).ok());
  auto got = DecryptVec(ca);
  Modulus t(ctx_->t());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(got[i], t.MulMod(a[i], 12345));
  }
}

TEST_F(BgvTest, ModSwitchPreservesPlaintextAllTheWayDown) {
  auto a = RandomSlots();
  Ciphertext ca = EncryptVec(a);
  while (ca.level > 0) {
    ASSERT_TRUE(evaluator_->ModSwitchToNextInplace(&ca).ok());
    EXPECT_EQ(DecryptVec(ca), a) << "level " << ca.level;
  }
  EXPECT_FALSE(evaluator_->ModSwitchToNextInplace(&ca).ok());
}

TEST_F(BgvTest, EncryptAtLevelMatchesSwitchedDown) {
  auto a = RandomSlots();
  auto b = RandomSlots();
  auto pa = encoder_->Encode(a);
  ASSERT_TRUE(pa.ok());
  auto low = encryptor_->EncryptAtLevel(pa.value(), 1);
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low->level, 1u);
  EXPECT_EQ(DecryptVec(low.value()), a);
  // Mixing a fresh low-level ciphertext with a switched-down one must work.
  Ciphertext cb = EncryptVec(b);
  ASSERT_TRUE(evaluator_->ModSwitchToLevelInplace(&cb, 1).ok());
  ASSERT_TRUE(evaluator_->AddInplace(&cb, low.value()).ok());
  auto sum = DecryptVec(cb);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(sum[i], AddMod(a[i], b[i], ctx_->t()));
  }
}

TEST_F(BgvTest, AddAcrossLevelsAutoEqualizes) {
  auto a = RandomSlots();
  auto b = RandomSlots();
  Ciphertext ca = EncryptVec(a);
  Ciphertext cb = EncryptVec(b);
  ASSERT_TRUE(evaluator_->ModSwitchToLevelInplace(&ca, 1).ok());
  ASSERT_TRUE(evaluator_->AddInplace(&ca, cb).ok());
  auto sum = DecryptVec(ca);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(sum[i], AddMod(a[i], b[i], ctx_->t()));
  }
}

TEST_F(BgvTest, FullDepthMultiplicationChain) {
  // Multiply max_level() fresh ciphertexts together (uses every level).
  const size_t depth = ctx_->max_level();
  std::vector<uint64_t> expected(ctx_->n(), 1);
  Modulus t(ctx_->t());
  Ciphertext acc = EncryptVec(std::vector<uint64_t>(ctx_->n(), 1));
  for (size_t d = 0; d < depth; ++d) {
    auto v = RandomSlots(1 << 10);
    for (size_t i = 0; i < expected.size(); ++i) {
      expected[i] = t.MulMod(expected[i], v[i]);
    }
    auto next = evaluator_->MultiplyRelin(acc, EncryptVec(v), rk_);
    ASSERT_TRUE(next.ok()) << next.status();
    acc = std::move(next).value();
  }
  EXPECT_EQ(acc.level, 0u);
  EXPECT_EQ(DecryptVec(acc), expected);
}

TEST_F(BgvTest, NoiseBudgetDecreasesWithMultiplication) {
  Ciphertext ct = EncryptVec(RandomSlots());
  auto fresh = decryptor_->NoiseBudgetBits(ct);
  ASSERT_TRUE(fresh.ok());
  auto prod = evaluator_->MultiplyRelin(ct, ct, rk_, /*mod_switch=*/false);
  ASSERT_TRUE(prod.ok());
  auto after = decryptor_->NoiseBudgetBits(prod.value());
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after.value(), fresh.value());
}

TEST_F(BgvTest, RotateRowsShiftsSlotsLeft) {
  std::vector<uint64_t> v(ctx_->n());
  std::iota(v.begin(), v.end(), 0);
  Ciphertext ct = EncryptVec(v);
  ASSERT_TRUE(evaluator_->RotateRowsInplace(&ct, 1, gk_).ok());
  auto got = DecryptVec(ct);
  const size_t row = ctx_->row_size();
  for (size_t i = 0; i < row; ++i) {
    EXPECT_EQ(got[i], v[(i + 1) % row]) << "row0 slot " << i;
    EXPECT_EQ(got[row + i], v[row + (i + 1) % row]) << "row1 slot " << i;
  }
}

TEST_F(BgvTest, RotateRowsNegativeStepShiftsRight) {
  std::vector<uint64_t> v(ctx_->n());
  std::iota(v.begin(), v.end(), 0);
  Ciphertext ct = EncryptVec(v);
  ASSERT_TRUE(evaluator_->RotateRowsInplace(&ct, -1, gk_).ok());
  auto got = DecryptVec(ct);
  const size_t row = ctx_->row_size();
  for (size_t i = 0; i < row; ++i) {
    EXPECT_EQ(got[i], v[(i + row - 1) % row]);
  }
}

TEST_F(BgvTest, RotateByCompositeStepViaPowerOfTwoKeys) {
  std::vector<uint64_t> v(ctx_->n());
  std::iota(v.begin(), v.end(), 0);
  Ciphertext ct = EncryptVec(v);
  ASSERT_TRUE(evaluator_->RotateRowsInplace(&ct, 5, gk_).ok());
  auto got = DecryptVec(ct);
  const size_t row = ctx_->row_size();
  for (size_t i = 0; i < row; ++i) {
    EXPECT_EQ(got[i], v[(i + 5) % row]);
  }
}

TEST_F(BgvTest, RotateColumnsSwapsRows) {
  std::vector<uint64_t> v(ctx_->n());
  std::iota(v.begin(), v.end(), 0);
  Ciphertext ct = EncryptVec(v);
  ASSERT_TRUE(evaluator_->RotateColumnsInplace(&ct, gk_).ok());
  auto got = DecryptVec(ct);
  const size_t row = ctx_->row_size();
  for (size_t i = 0; i < row; ++i) {
    EXPECT_EQ(got[i], v[row + i]);
    EXPECT_EQ(got[row + i], v[i]);
  }
}

TEST_F(BgvTest, FoldRowsComputesBlockSums) {
  const size_t block = 8;
  auto v = RandomSlots(1 << 10);
  Ciphertext ct = EncryptVec(v);
  ASSERT_TRUE(evaluator_->FoldRowsInplace(&ct, block, gk_).ok());
  auto got = DecryptVec(ct);
  const size_t row = ctx_->row_size();
  const uint64_t t = ctx_->t();
  // After folding, slot j holds sum of v[j..j+block-1] (cyclic in the row).
  for (size_t r = 0; r < 2; ++r) {
    for (size_t j = 0; j < row; j += block) {
      uint64_t expected = 0;
      for (size_t b = 0; b < block; ++b) {
        expected = AddMod(expected, v[r * row + (j + b) % row], t);
      }
      EXPECT_EQ(got[r * row + j], expected) << "row " << r << " block " << j;
    }
  }
}

TEST_F(BgvTest, RotationAfterMultiplicationStillCorrect) {
  auto a = RandomSlots(1 << 9);
  auto b = RandomSlots(1 << 9);
  auto prod = evaluator_->MultiplyRelin(EncryptVec(a), EncryptVec(b), rk_);
  ASSERT_TRUE(prod.ok());
  Ciphertext ct = std::move(prod).value();
  ASSERT_TRUE(evaluator_->RotateRowsInplace(&ct, 2, gk_).ok());
  auto got = DecryptVec(ct);
  Modulus t(ctx_->t());
  const size_t row = ctx_->row_size();
  for (size_t i = 0; i < row; ++i) {
    EXPECT_EQ(got[i], t.MulMod(a[(i + 2) % row], b[(i + 2) % row]));
  }
}

TEST_F(BgvTest, MissingGaloisKeyIsReported) {
  GaloisKeys empty;
  Ciphertext ct = EncryptVec(RandomSlots());
  Status s = evaluator_->ApplyGaloisInplace(&ct, 3, empty);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(BgvTest, TransparentMultiplicationsRejected) {
  Ciphertext ct = EncryptVec(RandomSlots());
  EXPECT_FALSE(evaluator_->MultiplyScalarInplace(&ct, 0).ok());
  Plaintext zero;
  zero.coeffs.assign(ctx_->n(), 0);
  EXPECT_FALSE(evaluator_->MultiplyPlainInplace(&ct, zero).ok());
}

}  // namespace
}  // namespace bgv
}  // namespace sknn
