// Structural security properties of the protocol (Section 4 of the
// paper), checked against the implementation's observable state. These are
// not cryptographic proofs — they verify that the implementation actually
// realizes the mechanisms the proofs rely on: fresh masks, fresh
// permutations, order preservation, the equidistance-only leakage at
// Party B, and the single-round structure.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/session.h"
#include "data/generators.h"

namespace sknn {
namespace core {
namespace {

ProtocolConfig Config(Layout layout) {
  ProtocolConfig cfg;
  cfg.k = 3;
  cfg.poly_degree = 2;
  cfg.coord_bits = 4;
  cfg.dims = 2;
  cfg.layout = layout;
  cfg.preset = bgv::SecurityPreset::kToy;
  cfg.levels = cfg.MinimumLevels();
  return cfg;
}

TEST(SecurityPropertiesTest, MaskedOrderEqualsTrueOrder) {
  // The masked values Party B sees must induce exactly the true distance
  // order (that is what makes the protocol exact) while being completely
  // different values.
  data::Dataset dataset = data::UniformDataset(40, 2, 15, 1);
  auto session = SecureKnnSession::Create(Config(Layout::kPerPoint),
                                          dataset, 2);
  ASSERT_TRUE(session.ok());
  std::vector<uint64_t> query = {3, 12};
  ASSERT_TRUE((*session)->RunQuery(query).ok());

  const auto& observed = (*session)->party_b().observed_masked_values();
  ASSERT_EQ(observed.size(), 40u);
  // Reconstruct the multiset of true distances and of masked values; the
  // i-th smallest masked value must correspond to the i-th smallest
  // distance (as multisets with multiplicities).
  std::vector<uint64_t> true_d;
  for (size_t i = 0; i < 40; ++i) {
    true_d.push_back(data::SquaredDistance(dataset, i, query));
  }
  std::vector<uint64_t> masked = observed;
  std::sort(true_d.begin(), true_d.end());
  std::sort(masked.begin(), masked.end());
  const auto* mask = (*session)->party_a().last_mask();
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(masked[i], mask->Evaluate(true_d[i])) << i;
  }
}

TEST(SecurityPropertiesTest, EquidistantLeakageExactlyAsTheorem42) {
  // Theorem 4.2: Party B learns the number of equidistant points and
  // nothing else about the values. Verify both directions: equal distances
  // produce equal masked values, distinct distances produce distinct ones.
  data::Dataset dataset(6, 2);
  // Points at distances {4, 4, 4, 9, 16, 16} from the query (1, 1).
  const uint64_t pts[6][2] = {{3, 1}, {1, 3}, {3, 1}, {4, 1}, {5, 1}, {1, 5}};
  for (size_t i = 0; i < 6; ++i) {
    dataset.set(i, 0, pts[i][0]);
    dataset.set(i, 1, pts[i][1]);
  }
  auto session = SecureKnnSession::Create(Config(Layout::kPerPoint),
                                          dataset, 3);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->RunQuery({1, 1}).ok());
  std::vector<uint64_t> masked = (*session)->party_b().observed_masked_values();
  std::sort(masked.begin(), masked.end());
  std::map<uint64_t, int> histogram;
  for (uint64_t v : masked) ++histogram[v];
  // Multiplicity profile must be {3, 1, 2} (sorted by value).
  std::vector<int> counts;
  for (const auto& [v, c] : histogram) counts.push_back(c);
  EXPECT_EQ(counts, (std::vector<int>{3, 1, 2}));
}

TEST(SecurityPropertiesTest, PermutationChangesAcrossQueries) {
  data::Dataset dataset = data::UniformDataset(30, 2, 15, 4);
  auto session = SecureKnnSession::Create(Config(Layout::kPerPoint),
                                          dataset, 5);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->RunQuery({1, 1}).ok());
  auto perm1 = (*session)->party_a().last_permutation();
  ASSERT_TRUE((*session)->RunQuery({1, 1}).ok());
  auto perm2 = (*session)->party_a().last_permutation();
  EXPECT_NE(perm1, perm2);
}

TEST(SecurityPropertiesTest, NearestNeighbourPositionLooksUniform) {
  // Across repeated identical queries, the flat position at which Party B
  // sees the global minimum must move around (otherwise B learns a stable
  // database index — the access pattern).
  data::Dataset dataset = data::UniformDataset(16, 2, 15, 6);
  auto session = SecureKnnSession::Create(Config(Layout::kPerPoint),
                                          dataset, 7);
  ASSERT_TRUE(session.ok());
  std::set<size_t> min_positions;
  for (int trial = 0; trial < 12; ++trial) {
    ASSERT_TRUE((*session)->RunQuery({8, 8}).ok());
    const auto& obs = (*session)->party_b().observed_masked_values();
    min_positions.insert(static_cast<size_t>(
        std::min_element(obs.begin(), obs.end()) - obs.begin()));
  }
  // 12 draws over 16 positions: seeing at least 6 distinct ones is
  // overwhelmingly likely under a uniform permutation, and impossible if
  // the position were fixed.
  EXPECT_GE(min_positions.size(), 6u);
}

TEST(SecurityPropertiesTest, MaskedValuesChangeEvenWhenDistancesRepeat) {
  // Search-pattern hiding: same query twice -> same true distances, but
  // disjoint masked images (fresh polynomial), so B cannot link queries.
  data::Dataset dataset = data::UniformDataset(25, 2, 15, 8);
  auto session = SecureKnnSession::Create(Config(Layout::kPerPoint),
                                          dataset, 9);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->RunQuery({2, 2}).ok());
  std::set<uint64_t> seen1((*session)->party_b().observed_masked_values().begin(),
                           (*session)->party_b().observed_masked_values().end());
  ASSERT_TRUE((*session)->RunQuery({2, 2}).ok());
  size_t overlap = 0;
  for (uint64_t v : (*session)->party_b().observed_masked_values()) {
    if (seen1.count(v)) ++overlap;
  }
  // Random degree-2 masks over a 33-bit space: collisions are negligible.
  EXPECT_EQ(overlap, 0u);
}

TEST(SecurityPropertiesTest, PartyAOpsAreAllCiphertextOps) {
  // Party A must never encrypt or decrypt — it works exclusively on
  // ciphertexts with public material (its leakage profile in §4.1 depends
  // on this).
  data::Dataset dataset = data::UniformDataset(20, 2, 15, 10);
  auto session = SecureKnnSession::Create(Config(Layout::kPacked),
                                          dataset, 11);
  ASSERT_TRUE(session.ok());
  auto result = (*session)->RunQuery({5, 5});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->party_a_ops.encryptions, 0u);
  EXPECT_EQ(result->party_a_ops.decryptions, 0u);
  EXPECT_GT(result->party_a_ops.he_multiplications, 0u);
}

TEST(SecurityPropertiesTest, OneRoundForAnyK) {
  data::Dataset dataset = data::UniformDataset(20, 2, 15, 12);
  for (size_t k : {size_t{1}, size_t{5}, size_t{20}}) {
    ProtocolConfig cfg = Config(Layout::kPacked);
    cfg.k = k;
    auto session = SecureKnnSession::Create(cfg, dataset, 13);
    ASSERT_TRUE(session.ok());
    auto result = (*session)->RunQuery({1, 1});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ((result->ab_link.rounds + 1) / 2, 1u) << "k=" << k;
  }
}

TEST(SecurityPropertiesTest, MaskedValuesFitPlaintextSpace) {
  // The no-overflow guarantee behind exactness: every masked value B
  // observes is a valid plaintext strictly below t (pad sentinels are
  // exactly t-1).
  data::Dataset dataset = data::UniformDataset(50, 3, 15, 14);
  ProtocolConfig cfg = Config(Layout::kPacked);
  cfg.dims = 3;
  auto session = SecureKnnSession::Create(cfg, dataset, 15);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->RunQuery({1, 2, 3}).ok());
  const uint64_t t = (*session)->context()->t();
  size_t sentinels = 0;
  for (uint64_t v : (*session)->party_b().observed_masked_values()) {
    EXPECT_LT(v, t);
    if (v == t - 1) ++sentinels;
  }
  // Padding payloads must be sentinels; real values are < t-1.
  const size_t expected_pads =
      (*session)->party_a().num_units() *
          ((*session)->party_b().observed_masked_values().size() /
           (*session)->party_a().num_units()) -
      dataset.num_points();
  EXPECT_EQ(sentinels, expected_pads);
}

}  // namespace
}  // namespace core
}  // namespace sknn
