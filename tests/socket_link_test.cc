// Socket transport unit tests: framed envelopes over real loopback TCP
// (PROTOCOL.md "Socket transport"). Covers the round-trip of every
// protocol message type, stream reassembly across the kernel boundary,
// and the typed-transient error taxonomy for truncated connections, peer
// disconnects, and desynchronized streams.

#include "net/socket_link.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/frame.h"
#include "net/resilient_channel.h"

namespace sknn {
namespace net {
namespace {

// Receive with retries: the sender's bytes need a trip through the kernel,
// so the first poll-bounded Receive may legitimately return kUnavailable.
StatusOr<std::vector<uint8_t>> ReceiveBlocking(Channel* ch,
                                               int max_polls = 200) {
  for (int i = 0; i < max_polls; ++i) {
    auto bytes = ch->Receive();
    if (bytes.ok() || bytes.status().code() != StatusCode::kUnavailable) {
      return bytes;
    }
  }
  return DeadlineExceededError("no frame within the test's poll budget");
}

// Same, but for errors: polls until Receive reports something other than
// kUnavailable and returns that status.
Status ReceiveUntilError(Channel* ch, int max_polls = 200) {
  for (int i = 0; i < max_polls; ++i) {
    auto bytes = ch->Receive();
    if (bytes.ok()) continue;  // drain anything that did arrive
    if (bytes.status().code() != StatusCode::kUnavailable) {
      return bytes.status();
    }
  }
  return Status::Ok();  // never became an error — callers EXPECT against it
}

// A connected loopback pair built through the public listener API.
struct RawPair {
  std::unique_ptr<SocketListener> listener;
  std::unique_ptr<SocketChannel> dialer;
  std::unique_ptr<SocketChannel> accepted;
};

RawPair MakePair() {
  RawPair pair;
  auto listener = SocketListener::Listen("127.0.0.1", 0);
  EXPECT_TRUE(listener.ok()) << listener.status();
  pair.listener = std::move(listener).value();
  auto dialer =
      ConnectSocket("127.0.0.1", pair.listener->port(), 2000, "dialer");
  EXPECT_TRUE(dialer.ok()) << dialer.status();
  pair.dialer = std::move(dialer).value();
  auto accepted = pair.listener->Accept(2000, "accepted");
  EXPECT_TRUE(accepted.ok()) << accepted.status();
  pair.accepted = std::move(accepted).value();
  return pair;
}

TEST(SocketLinkTest, RoundTripsEveryProtocolMessageType) {
  auto link = SocketLink::Create();
  ASSERT_TRUE(link.ok()) << link.status();
  const MessageType kTypes[] = {MessageType::kQuery, MessageType::kDistances,
                                MessageType::kIndicators,
                                MessageType::kResults};
  uint64_t seq = 0;
  for (MessageType type : kTypes) {
    const std::vector<uint8_t> payload = {1, 2, 3,
                                          static_cast<uint8_t>(seq)};
    // A -> B.
    ASSERT_TRUE(
        (*link)->a_endpoint()->Send(EncodeFrame(type, seq, payload)).ok());
    auto received = ReceiveBlocking((*link)->b_endpoint());
    ASSERT_TRUE(received.ok()) << received.status();
    auto frame = DecodeFrame(std::move(received).value());
    ASSERT_TRUE(frame.ok()) << frame.status();
    EXPECT_EQ(frame->type, type);
    EXPECT_EQ(frame->seq, seq);
    EXPECT_EQ(frame->payload, payload);
    // B -> A.
    ASSERT_TRUE(
        (*link)->b_endpoint()->Send(EncodeFrame(type, seq, payload)).ok());
    received = ReceiveBlocking((*link)->a_endpoint());
    ASSERT_TRUE(received.ok()) << received.status();
    frame = DecodeFrame(std::move(received).value());
    ASSERT_TRUE(frame.ok()) << frame.status();
    EXPECT_EQ(frame->type, type);
    ++seq;
  }
  // Byte accounting matches: every frame crossed the link exactly once.
  EXPECT_EQ((*link)->stats().messages_a_to_b, 4u);
  EXPECT_EQ((*link)->stats().messages_b_to_a, 4u);
  EXPECT_EQ((*link)->stats().bytes_a_to_b, (*link)->stats().bytes_b_to_a);
}

TEST(SocketLinkTest, ReassemblesFramesLargerThanOneRead) {
  auto link = SocketLink::Create();
  ASSERT_TRUE(link.ok()) << link.status();
  // Bigger than the 64KB read chunks, so reassembly spans many fills.
  std::vector<uint8_t> payload(1 << 20);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  ASSERT_TRUE((*link)
                  ->a_endpoint()
                  ->Send(EncodeFrame(MessageType::kDistances, 9, payload))
                  .ok());
  auto received = ReceiveBlocking((*link)->b_endpoint(), 2000);
  ASSERT_TRUE(received.ok()) << received.status();
  auto frame = DecodeFrame(std::move(received).value());
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->payload, payload);
}

TEST(SocketLinkTest, BackToBackFramesStayDelimited) {
  auto link = SocketLink::Create();
  ASSERT_TRUE(link.ok()) << link.status();
  // Many small frames coalesce into one TCP segment; the header length
  // field must split them back apart.
  for (uint64_t seq = 0; seq < 16; ++seq) {
    ASSERT_TRUE((*link)
                    ->a_endpoint()
                    ->Send(EncodeFrame(MessageType::kOpaque, seq,
                                       {static_cast<uint8_t>(seq)}))
                    .ok());
  }
  for (uint64_t seq = 0; seq < 16; ++seq) {
    auto received = ReceiveBlocking((*link)->b_endpoint());
    ASSERT_TRUE(received.ok()) << received.status();
    auto frame = DecodeFrame(std::move(received).value());
    ASSERT_TRUE(frame.ok()) << frame.status();
    EXPECT_EQ(frame->seq, seq);
  }
}

TEST(SocketLinkTest, EmptyStreamIsUnavailable) {
  auto link = SocketLink::Create();
  ASSERT_TRUE(link.ok()) << link.status();
  auto received = (*link)->b_endpoint()->Receive();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(received.status().IsTransient());
}

TEST(SocketLinkTest, CleanDisconnectAtFrameBoundaryIsAborted) {
  RawPair pair = MakePair();
  // One whole frame, then a clean close: the receiver must deliver the
  // frame, then report kAborted (peer gone, stream not corrupted).
  ASSERT_TRUE(
      pair.dialer->Send(EncodeFrame(MessageType::kResults, 3, {7})).ok());
  pair.dialer->Close();
  auto received = ReceiveBlocking(pair.accepted.get());
  ASSERT_TRUE(received.ok()) << received.status();
  EXPECT_TRUE(DecodeFrame(std::move(received).value()).ok());
  const Status status = ReceiveUntilError(pair.accepted.get());
  EXPECT_EQ(status.code(), StatusCode::kAborted) << status;
  EXPECT_TRUE(status.IsTransient());
}

TEST(SocketLinkTest, TruncatedConnectionIsDataLoss) {
  RawPair pair = MakePair();
  // Half a frame, then the peer dies: typed kDataLoss, never a hang.
  std::vector<uint8_t> frame =
      EncodeFrame(MessageType::kDistances, 1, std::vector<uint8_t>(256, 9));
  frame.resize(frame.size() / 2);
  ASSERT_TRUE(pair.dialer->Send(std::move(frame)).ok());
  pair.dialer->Close();
  const Status status = ReceiveUntilError(pair.accepted.get());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status;
  EXPECT_TRUE(status.IsTransient());
}

TEST(SocketLinkTest, GarbageOnTheStreamIsDataLoss) {
  RawPair pair = MakePair();
  // 64 bytes of non-SKNF garbage: the receiver cannot find a frame
  // header, declares the stream desynchronized, and discards its buffer.
  ASSERT_TRUE(pair.dialer->Send(std::vector<uint8_t>(64, 0xAB)).ok());
  const Status status = ReceiveUntilError(pair.accepted.get());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status;
  EXPECT_TRUE(status.IsTransient());
}

TEST(SocketLinkTest, SendToDisconnectedPeerIsAborted) {
  RawPair pair = MakePair();
  pair.accepted->Close();
  // The first send may land in the kernel buffer before the RST comes
  // back; within a few sends the error must surface as kAborted.
  Status status = Status::Ok();
  for (int i = 0; i < 50 && status.ok(); ++i) {
    status = pair.dialer->Send(
        EncodeFrame(MessageType::kOpaque, i, std::vector<uint8_t>(4096, 1)));
  }
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kAborted) << status;
  EXPECT_TRUE(status.IsTransient());
}

TEST(SocketLinkTest, AcceptTimesOutUnavailable) {
  auto listener = SocketListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  auto conn = (*listener)->Accept(10, "nobody");
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kUnavailable);
}

TEST(SocketLinkTest, ConnectToClosedPortFailsCleanly) {
  // Grab an ephemeral port, then close the listener so nobody is there.
  auto listener = SocketListener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  const uint16_t port = (*listener)->port();
  (*listener)->Close();
  auto conn = ConnectSocket("127.0.0.1", port, 50, "nobody");
  ASSERT_FALSE(conn.ok());
  EXPECT_TRUE(conn.status().IsTransient()) << conn.status();
}

TEST(SocketLinkTest, WaitReadableSeesTraffic) {
  RawPair pair = MakePair();
  auto quiet = pair.accepted->WaitReadable(10);
  ASSERT_TRUE(quiet.ok()) << quiet.status();
  EXPECT_FALSE(quiet.value());
  ASSERT_TRUE(
      pair.dialer->Send(EncodeFrame(MessageType::kControl, 0, {1})).ok());
  auto ready = pair.accepted->WaitReadable(2000);
  ASSERT_TRUE(ready.ok()) << ready.status();
  EXPECT_TRUE(ready.value());
}

TEST(SocketLinkTest, DiscardPendingClearsInFlightBytes) {
  RawPair pair = MakePair();
  for (uint64_t seq = 0; seq < 8; ++seq) {
    ASSERT_TRUE(
        pair.dialer->Send(EncodeFrame(MessageType::kOpaque, seq,
                                      std::vector<uint8_t>(1024, 2)))
            .ok());
  }
  pair.accepted->DiscardPending();
  // Whatever was in flight is gone; a fresh frame still comes through.
  ASSERT_TRUE(
      pair.dialer->Send(EncodeFrame(MessageType::kResults, 99, {5})).ok());
  auto received = ReceiveBlocking(pair.accepted.get());
  ASSERT_TRUE(received.ok()) << received.status();
  auto frame = DecodeFrame(std::move(received).value());
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->seq, 99u);
}

// The resilient layer's ordered exactly-once delivery works unchanged
// over the socket transport (same Channel interface contract).
TEST(SocketLinkTest, ResilientChannelRunsOverSockets) {
  auto link = SocketLink::Create();
  ASSERT_TRUE(link.ok()) << link.status();
  RetryPolicy policy;
  policy.max_receive_polls = 200;
  ResilientChannel a((*link)->a_endpoint(), policy, 1, "a");
  ResilientChannel b((*link)->b_endpoint(), policy, 2, "b");
  for (int round = 0; round < 3; ++round) {
    a.ResetEpoch();
    b.ResetEpoch();
    for (uint64_t i = 0; i < 4; ++i) {
      const std::vector<uint8_t> payload = {static_cast<uint8_t>(round),
                                            static_cast<uint8_t>(i)};
      ASSERT_TRUE(a.SendMessage(MessageType::kDistances, payload).ok());
      auto got = b.ReceiveMessage(MessageType::kDistances);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(got.value(), payload);
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace sknn
