#include "math/rns_poly.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "math/prime.h"

namespace sknn {
namespace {

class RnsPolyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const size_t n = 64;
    auto primes = GenerateNttPrimes(40, 2 * n, 3);
    ASSERT_TRUE(primes.ok());
    auto base = RnsBase::Create(n, primes.value());
    ASSERT_TRUE(base.ok());
    base_ = std::make_unique<RnsBase>(std::move(base).value());
  }

  RnsPoly RandomPoly(uint64_t seed, bool ntt_form = false) {
    Chacha20Rng rng(seed);
    RnsPoly p = ZeroPoly(base_->n(), base_->size(), ntt_form);
    for (size_t i = 0; i < base_->size(); ++i) {
      rng.SampleUniformModInto(base_->modulus(i).value(), base_->n(),
                               p.comp(i));
    }
    return p;
  }

  std::unique_ptr<RnsBase> base_;
};

TEST_F(RnsPolyTest, ZeroPolyIsZero) {
  RnsPoly p = ZeroPoly(base_->n(), base_->size(), false);
  EXPECT_TRUE(p.IsZero());
  EXPECT_EQ(p.num_components(), 3u);
}

TEST_F(RnsPolyTest, StorageIsOneContiguousAllocation) {
  RnsPoly p = RandomPoly(99);
  // The whole polynomial is a single n * num_components buffer, component-
  // major: comp(i) is an alias into data() at offset i * n.
  EXPECT_EQ(p.flat().size(), p.n() * p.num_components());
  EXPECT_EQ(p.data(), p.flat().data());
  for (size_t i = 0; i < p.num_components(); ++i) {
    EXPECT_EQ(p.comp(i), p.data() + i * p.n()) << "component " << i;
  }
  // Component views tile the buffer exactly: writing through comp(i) is
  // visible at the corresponding flat offset.
  for (size_t i = 0; i < p.num_components(); ++i) {
    p.comp(i)[3] = 17 + i;
    EXPECT_EQ(p.flat()[i * p.n() + 3], 17 + i);
  }
}

TEST_F(RnsPolyTest, PrefixCopiesLeadingComponents) {
  RnsPoly p = RandomPoly(42, /*ntt_form=*/true);
  RnsPoly two = p.Prefix(2);
  EXPECT_EQ(two.n(), p.n());
  EXPECT_EQ(two.num_components(), 2u);
  EXPECT_TRUE(two.ntt_form());
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(std::equal(two.comp(i), two.comp(i) + two.n(), p.comp(i)));
  }
}

TEST_F(RnsPolyTest, AddThenSubtractIsIdentity) {
  RnsPoly a = RandomPoly(1);
  RnsPoly b = RandomPoly(2);
  RnsPoly original = a;
  AddInplace(&a, b, *base_);
  SubInplace(&a, b, *base_);
  EXPECT_EQ(a, original);
}

TEST_F(RnsPolyTest, NegateTwiceIsIdentity) {
  RnsPoly a = RandomPoly(3);
  RnsPoly original = a;
  NegateInplace(&a, *base_);
  NegateInplace(&a, *base_);
  EXPECT_EQ(a, original);
}

TEST_F(RnsPolyTest, AddOwnNegationIsZero) {
  RnsPoly a = RandomPoly(4);
  RnsPoly b = a;
  NegateInplace(&b, *base_);
  AddInplace(&a, b, *base_);
  EXPECT_TRUE(a.IsZero());
}

TEST_F(RnsPolyTest, NttRoundtrip) {
  RnsPoly a = RandomPoly(5);
  RnsPoly original = a;
  ToNttInplace(&a, *base_);
  EXPECT_TRUE(a.ntt_form());
  FromNttInplace(&a, *base_);
  EXPECT_FALSE(a.ntt_form());
  EXPECT_EQ(a, original);
}

TEST_F(RnsPolyTest, MulPointwiseMatchesNaivePerPrime) {
  RnsPoly a = RandomPoly(6);
  RnsPoly b = RandomPoly(7);
  RnsPoly a_coeff = a, b_coeff = b;
  ToNttInplace(&a, *base_);
  ToNttInplace(&b, *base_);
  RnsPoly c = MulPointwise(a, b, *base_);
  FromNttInplace(&c, *base_);
  for (size_t i = 0; i < base_->size(); ++i) {
    // NaiveNegacyclicMultiply wants owning vectors; the result compare
    // reads the component in place.
    std::vector<uint64_t> av(a_coeff.comp(i), a_coeff.comp(i) + a_coeff.n());
    std::vector<uint64_t> bv(b_coeff.comp(i), b_coeff.comp(i) + b_coeff.n());
    std::vector<uint64_t> expected;
    NaiveNegacyclicMultiply(av, bv, base_->modulus(i).value(), &expected);
    EXPECT_TRUE(std::equal(c.comp(i), c.comp(i) + c.n(), expected.begin(),
                           expected.end()))
        << "prime index " << i;
  }
}

TEST_F(RnsPolyTest, AddMulAccumulates) {
  RnsPoly a = RandomPoly(8, true);
  RnsPoly b = RandomPoly(9, true);
  RnsPoly c = RandomPoly(10, true);
  RnsPoly expected = a;
  RnsPoly bc = MulPointwise(b, c, *base_);
  AddInplace(&expected, bc, *base_);
  AddMulInplace(&a, b, c, *base_);
  EXPECT_EQ(a, expected);
}

TEST_F(RnsPolyTest, MulScalarMatchesRepeatedAdd) {
  RnsPoly a = RandomPoly(11);
  RnsPoly tripled = ZeroPoly(base_->n(), base_->size(), false);
  for (int i = 0; i < 3; ++i) AddInplace(&tripled, a, *base_);
  std::vector<uint64_t> three(base_->size(), 3);
  MulScalarInplace(&a, three, *base_);
  EXPECT_EQ(a, tripled);
}

TEST_F(RnsPolyTest, GaloisIdentityElement) {
  RnsPoly a = RandomPoly(12);
  RnsPoly out = ApplyGaloisCoeff(a, 1, *base_);
  EXPECT_EQ(out, a);
}

TEST_F(RnsPolyTest, GaloisComposition) {
  // Applying g then h equals applying g*h mod 2n.
  const uint64_t two_n = 2 * base_->n();
  RnsPoly a = RandomPoly(13);
  const uint64_t g = 3, h = 5;
  RnsPoly gh = ApplyGaloisCoeff(ApplyGaloisCoeff(a, g, *base_), h, *base_);
  RnsPoly direct = ApplyGaloisCoeff(a, (g * h) % two_n, *base_);
  EXPECT_EQ(gh, direct);
}

TEST_F(RnsPolyTest, GaloisPreservesConstantTerm) {
  RnsPoly a = ZeroPoly(base_->n(), base_->size(), false);
  for (size_t i = 0; i < base_->size(); ++i) a.comp(i)[0] = 7;
  RnsPoly out = ApplyGaloisCoeff(a, 3, *base_);
  for (size_t i = 0; i < base_->size(); ++i) {
    EXPECT_EQ(out.comp(i)[0], 7u);
  }
}

TEST_F(RnsPolyTest, GaloisIsRingHomomorphismOnProducts) {
  // tau(a*b) == tau(a) * tau(b)
  RnsPoly a = RandomPoly(14);
  RnsPoly b = RandomPoly(15);
  const uint64_t g = 2 * base_->n() - 1;

  RnsPoly an = a, bn = b;
  ToNttInplace(&an, *base_);
  ToNttInplace(&bn, *base_);
  RnsPoly ab = MulPointwise(an, bn, *base_);
  FromNttInplace(&ab, *base_);
  RnsPoly tau_ab = ApplyGaloisCoeff(ab, g, *base_);

  RnsPoly ta = ApplyGaloisCoeff(a, g, *base_);
  RnsPoly tb = ApplyGaloisCoeff(b, g, *base_);
  ToNttInplace(&ta, *base_);
  ToNttInplace(&tb, *base_);
  RnsPoly prod = MulPointwise(ta, tb, *base_);
  FromNttInplace(&prod, *base_);

  EXPECT_EQ(tau_ab, prod);
}

TEST_F(RnsPolyTest, GaloisNttMatchesCoeffDomainGalois) {
  // NTT-domain automorphism (pure slot permutation) must agree with the
  // coefficient-domain reference composed with the NTT on both sides, for
  // every odd Galois element. This is the identity the hoisted key-switch
  // path relies on.
  const size_t two_n = 2 * base_->n();
  RnsPoly a = RandomPoly(77);
  for (uint64_t elt = 3; elt < two_n; elt += 2) {
    RnsPoly expect = ApplyGaloisCoeff(a, elt, *base_);
    ToNttInplace(&expect, *base_);
    RnsPoly a_ntt = a;
    ToNttInplace(&a_ntt, *base_);
    RnsPoly got = ApplyGaloisNtt(a_ntt, elt, *base_);
    ASSERT_EQ(got, expect) << "elt=" << elt;
  }
}

TEST_F(RnsPolyTest, GaloisNttIdentityElement) {
  RnsPoly a = RandomPoly(78, /*ntt_form=*/true);
  EXPECT_EQ(ApplyGaloisNtt(a, 1, *base_), a);
}

TEST_F(RnsPolyTest, GaloisPermTableMatchesDirectComputation) {
  const size_t n = base_->n();
  const uint64_t two_n = 2 * n;
  for (uint64_t elt : {uint64_t{3}, uint64_t{5}, two_n - 1}) {
    const std::vector<uint32_t>& table = base_->GaloisPermTable(elt);
    ASSERT_EQ(table.size(), n);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t target = (static_cast<uint64_t>(i) * elt) % two_n;
      const uint32_t expected = target < n
                                    ? static_cast<uint32_t>(target << 1)
                                    : static_cast<uint32_t>(
                                          ((target - n) << 1) | 1);
      EXPECT_EQ(table[i], expected) << "elt=" << elt << " i=" << i;
    }
    // Second lookup hits the cache and must return the same table.
    EXPECT_EQ(&base_->GaloisPermTable(elt), &table);
  }
}

TEST_F(RnsPolyTest, ThreadedNttConversionMatchesSerial) {
  auto pool = std::make_shared<ThreadPool>(3);
  auto primes = GenerateNttPrimes(40, 2 * base_->n(), 3);
  ASSERT_TRUE(primes.ok());
  auto threaded = RnsBase::Create(base_->n(), primes.value());
  ASSERT_TRUE(threaded.ok());
  threaded.value().set_thread_pool(pool);

  RnsPoly a = RandomPoly(21);
  RnsPoly serial = a, parallel = a;
  ToNttInplace(&serial, *base_);
  ToNttInplace(&parallel, threaded.value());
  EXPECT_EQ(serial, parallel);
  FromNttInplace(&serial, *base_);
  FromNttInplace(&parallel, threaded.value());
  EXPECT_EQ(serial, a);
  EXPECT_EQ(parallel, a);
}

}  // namespace
}  // namespace sknn
