#include "core/layout.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace sknn {
namespace core {
namespace {

ProtocolConfig MakeConfig(Layout layout, size_t dims) {
  ProtocolConfig cfg;
  cfg.layout = layout;
  cfg.dims = dims;
  return cfg;
}

TEST(LayoutTest, PerPointGeometry) {
  auto l = SlotLayout::Create(MakeConfig(Layout::kPerPoint, 3), 64, 10);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->padded_dims(), 4u);
  EXPECT_EQ(l->points_per_unit(), 1u);
  EXPECT_EQ(l->num_units(), 10u);
  EXPECT_EQ(l->PayloadSlot(0), 0u);
  EXPECT_EQ(l->PointIndex(7, 0), 7u);
}

TEST(LayoutTest, PackedGeometry) {
  auto l = SlotLayout::Create(MakeConfig(Layout::kPacked, 3), 64, 100);
  ASSERT_TRUE(l.ok());
  // row_size=32, padded=4 -> 8 blocks/row, 16 points/unit, 7 units.
  EXPECT_EQ(l->points_per_row(), 8u);
  EXPECT_EQ(l->points_per_unit(), 16u);
  EXPECT_EQ(l->num_units(), 7u);
  // Payload slots stride by padded_dims within rows.
  EXPECT_EQ(l->PayloadSlot(0), 0u);
  EXPECT_EQ(l->PayloadSlot(1), 4u);
  EXPECT_EQ(l->PayloadSlot(7), 28u);
  EXPECT_EQ(l->PayloadSlot(8), 32u);  // second row starts
}

TEST(LayoutTest, RejectsOversizedDims) {
  EXPECT_FALSE(SlotLayout::Create(MakeConfig(Layout::kPacked, 40), 64, 5).ok());
  EXPECT_FALSE(SlotLayout::Create(MakeConfig(Layout::kPacked, 2), 64, 0).ok());
}

TEST(LayoutTest, DbUnitEncodingPlacesPoints) {
  data::Dataset d = data::UniformDataset(20, 3, 15, 1);
  auto l = SlotLayout::Create(MakeConfig(Layout::kPacked, 3), 64, 20);
  ASSERT_TRUE(l.ok());
  for (size_t u = 0; u < l->num_units(); ++u) {
    auto slots = l->EncodeDbUnit(d, u);
    for (size_t p = 0; p < l->points_per_unit(); ++p) {
      const size_t point = l->PointIndex(u, p);
      const size_t base = l->PayloadSlot(p);
      for (size_t j = 0; j < 3; ++j) {
        const uint64_t expected = point < 20 ? d.at(point, j) : 0;
        EXPECT_EQ(slots[base + j], expected);
      }
      EXPECT_EQ(slots[base + 3], 0u);  // padding dim
    }
  }
}

TEST(LayoutTest, QueryReplicationPacked) {
  auto l = SlotLayout::Create(MakeConfig(Layout::kPacked, 2), 32, 10);
  ASSERT_TRUE(l.ok());
  auto slots = l->EncodeQuery({5, 9});
  for (size_t p = 0; p < l->points_per_unit(); ++p) {
    EXPECT_EQ(slots[l->PayloadSlot(p)], 5u);
    EXPECT_EQ(slots[l->PayloadSlot(p) + 1], 9u);
  }
}

TEST(LayoutTest, QueryPerPointOnlyBlockZero) {
  auto l = SlotLayout::Create(MakeConfig(Layout::kPerPoint, 2), 32, 10);
  ASSERT_TRUE(l.ok());
  auto slots = l->EncodeQuery({5, 9});
  EXPECT_EQ(slots[0], 5u);
  EXPECT_EQ(slots[1], 9u);
  for (size_t s = 2; s < slots.size(); ++s) EXPECT_EQ(slots[s], 0u);
}

TEST(LayoutTest, SelectorMarksOnlyRealPayloads) {
  // 20 points, 16 per unit: unit 1 has 4 real + 12 padding payloads.
  auto l = SlotLayout::Create(MakeConfig(Layout::kPacked, 3), 64, 20);
  ASSERT_TRUE(l.ok());
  auto sel0 = l->SelectorSlots(0);
  auto sel1 = l->SelectorSlots(1);
  size_t ones0 = 0, ones1 = 0;
  for (uint64_t v : sel0) ones0 += v;
  for (uint64_t v : sel1) ones1 += v;
  EXPECT_EQ(ones0, 16u);
  EXPECT_EQ(ones1, 4u);
}

TEST(LayoutTest, PaddingSlotsComplementSelector) {
  auto l = SlotLayout::Create(MakeConfig(Layout::kPacked, 3), 64, 20);
  ASSERT_TRUE(l.ok());
  auto pads = l->PaddingPayloadSlots(1);
  EXPECT_EQ(pads.size(), 12u);
  auto sel = l->SelectorSlots(1);
  for (size_t s : pads) EXPECT_EQ(sel[s], 0u);
}

TEST(LayoutTest, RandomMaskExcludesAllPayloadPositions) {
  auto l = SlotLayout::Create(MakeConfig(Layout::kPacked, 3), 64, 20);
  ASSERT_TRUE(l.ok());
  auto mask = l->RandomMaskPositions(1);
  for (size_t p = 0; p < l->payloads_per_unit(); ++p) {
    EXPECT_FALSE(mask[l->PayloadSlot(p)]);
  }
}

TEST(LayoutTest, IndicatorCoversWholeBlock) {
  auto l = SlotLayout::Create(MakeConfig(Layout::kPacked, 3), 64, 100);
  ASSERT_TRUE(l.ok());
  auto ind = l->IndicatorSlots(5);
  const size_t base = l->PayloadSlot(5);
  for (size_t s = 0; s < ind.size(); ++s) {
    const bool in_block = s >= base && s < base + l->padded_dims();
    EXPECT_EQ(ind[s], in_block ? 1u : 0u);
  }
}

TEST(LayoutTest, ExtractPointSumsBlocks) {
  auto l = SlotLayout::Create(MakeConfig(Layout::kPacked, 2), 32, 10);
  ASSERT_TRUE(l.ok());
  std::vector<uint64_t> decoded(32, 0);
  // Only block 3 is populated (as after the oblivious selection).
  decoded[l->PayloadSlot(3)] = 11;
  decoded[l->PayloadSlot(3) + 1] = 22;
  auto point = l->ExtractPoint(decoded, 1000003);
  EXPECT_EQ(point, (std::vector<uint64_t>{11, 22}));
}

TEST(LayoutTest, PointIndexRoundtripAcrossUnits) {
  auto l = SlotLayout::Create(MakeConfig(Layout::kPacked, 4), 64, 50);
  ASSERT_TRUE(l.ok());
  for (size_t g = 0; g < 50; ++g) {
    const size_t unit = g / l->points_per_unit();
    const size_t payload = g % l->points_per_unit();
    EXPECT_EQ(l->PointIndex(unit, payload), g);
  }
}

}  // namespace
}  // namespace core
}  // namespace sknn
