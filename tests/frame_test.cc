// Frame envelope: checksum vectors, roundtrip, and detection of every
// corruption class the transport must survive (PROTOCOL.md "Frame
// envelope & recovery").

#include "net/frame.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/xxhash.h"

namespace sknn {
namespace net {
namespace {

// Reference vectors for the XXH64 implementation (xxHash spec known-answer
// values; the 64-char vector uses the spec's classic prime seed).
TEST(Xxh64Test, KnownAnswerVectors) {
  EXPECT_EQ(Xxh64("", 0, 0), 0xEF46DB3751D8E999ull);
  EXPECT_EQ(Xxh64("a", 1, 0), 0xD24EC4F1A98C6E5Bull);
  EXPECT_EQ(Xxh64("abc", 3, 0), 0x44BC2CF5AD770999ull);
  const char* long_input =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  EXPECT_EQ(Xxh64(long_input, 62, 2654435761ull), 0x82FB2CAE7E35C906ull);
}

TEST(Xxh64Test, SeedAndLengthChangeTheHash) {
  const char data[] = "payload";
  EXPECT_NE(Xxh64(data, 7, 0), Xxh64(data, 7, 1));
  EXPECT_NE(Xxh64(data, 6, 0), Xxh64(data, 7, 0));
}

std::vector<uint8_t> SomePayload(size_t len, uint64_t seed) {
  Chacha20Rng rng(seed);
  std::vector<uint8_t> p(len);
  rng.FillBytes(p.data(), len);
  return p;
}

TEST(FrameTest, RoundTripPreservesEverything) {
  for (size_t len : {size_t{0}, size_t{1}, size_t{31}, size_t{4096}}) {
    const std::vector<uint8_t> payload = SomePayload(len, 7 + len);
    auto wire = EncodeFrame(MessageType::kDistances, 42, payload);
    EXPECT_EQ(wire.size(), kFrameHeaderBytes + len);
    auto frame = DecodeFrame(std::move(wire));
    ASSERT_TRUE(frame.ok()) << frame.status();
    EXPECT_EQ(frame->type, MessageType::kDistances);
    EXPECT_EQ(frame->seq, 42u);
    EXPECT_EQ(frame->payload, payload);
  }
}

TEST(FrameTest, EverySingleBitFlipIsDetected) {
  const std::vector<uint8_t> payload = SomePayload(64, 3);
  const auto wire = EncodeFrame(MessageType::kIndicators, 7, payload);
  for (size_t bit = 0; bit < wire.size() * 8; ++bit) {
    std::vector<uint8_t> corrupted = wire;
    corrupted[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    auto frame = DecodeFrame(std::move(corrupted));
    EXPECT_FALSE(frame.ok()) << "undetected flip at bit " << bit;
    // A flipped version byte is the one fatal error; everything else is
    // transient corruption.
    if (frame.status().code() == StatusCode::kFailedPrecondition) {
      EXPECT_EQ(bit / 8, 4u) << "fatal error outside the version byte";
    } else {
      EXPECT_TRUE(frame.status().IsTransient()) << frame.status();
    }
  }
}

TEST(FrameTest, EveryTruncationIsDetected) {
  const auto wire = EncodeFrame(MessageType::kQuery, 0, SomePayload(128, 5));
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    std::vector<uint8_t> truncated(wire.begin(),
                                   wire.begin() + static_cast<long>(cut));
    auto frame = DecodeFrame(std::move(truncated));
    EXPECT_FALSE(frame.ok()) << "undetected truncation at " << cut;
    EXPECT_TRUE(frame.status().IsTransient());
  }
}

TEST(FrameTest, AppendedBytesAreDetected) {
  auto wire = EncodeFrame(MessageType::kResults, 1, SomePayload(16, 9));
  wire.push_back(0x00);
  EXPECT_FALSE(DecodeFrame(std::move(wire)).ok());
}

TEST(FrameTest, VersionMismatchIsFatalNotTransient) {
  auto wire = EncodeFrame(MessageType::kQuery, 0, {});
  wire[4] = kFrameVersion + 1;
  auto frame = DecodeFrame(std::move(wire));
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(frame.status().IsTransient());
}

TEST(FrameTest, SplicedPayloadsAreDetected) {
  // Concatenating the payload of one valid frame onto the header of
  // another (same length) must fail the checksum.
  const auto a = EncodeFrame(MessageType::kOpaque, 3, SomePayload(64, 11));
  const auto b = EncodeFrame(MessageType::kOpaque, 3, SomePayload(64, 12));
  std::vector<uint8_t> spliced(a.begin(), a.begin() + kFrameHeaderBytes);
  spliced.insert(spliced.end(), b.begin() + kFrameHeaderBytes, b.end());
  EXPECT_FALSE(DecodeFrame(std::move(spliced)).ok());
}

TEST(FrameTest, StatusTaxonomy) {
  EXPECT_TRUE(UnavailableError("x").IsTransient());
  EXPECT_TRUE(DeadlineExceededError("x").IsTransient());
  EXPECT_TRUE(DataLossError("x").IsTransient());
  EXPECT_TRUE(AbortedError("x").IsTransient());
  EXPECT_FALSE(InvalidArgumentError("x").IsTransient());
  EXPECT_FALSE(InternalError("x").IsTransient());
  EXPECT_FALSE(Status::Ok().IsTransient());
}

}  // namespace
}  // namespace net
}  // namespace sknn
