#include "data/dataset.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace sknn {
namespace data {
namespace {

TEST(DatasetTest, BasicAccessors) {
  Dataset d(3, 2);
  d.set(1, 0, 7);
  d.set(1, 1, 9);
  EXPECT_EQ(d.num_points(), 3u);
  EXPECT_EQ(d.dims(), 2u);
  EXPECT_EQ(d.at(1, 0), 7u);
  EXPECT_EQ(d.point(1), (std::vector<uint64_t>{7, 9}));
  EXPECT_EQ(d.point(0), (std::vector<uint64_t>{0, 0}));
  EXPECT_EQ(d.MaxValue(), 9u);
}

TEST(DatasetTest, SquaredDistance) {
  Dataset d(1, 3);
  d.set(0, 0, 1);
  d.set(0, 1, 5);
  d.set(0, 2, 10);
  EXPECT_EQ(SquaredDistance(d, 0, {1, 5, 10}), 0u);
  EXPECT_EQ(SquaredDistance(d, 0, {2, 3, 13}), 1u + 4u + 9u);
  EXPECT_EQ(SquaredDistance(d, 0, {0, 7, 8}), 1u + 4u + 4u);
}

TEST(DatasetTest, MaxSquaredDistanceBound) {
  EXPECT_EQ(MaxSquaredDistance(3, 15), 3u * 225u);
  Dataset d = UniformDataset(50, 3, 15, 1);
  for (size_t i = 0; i < d.num_points(); ++i) {
    EXPECT_LE(SquaredDistance(d, i, {0, 0, 0}), MaxSquaredDistance(3, 15));
  }
}

TEST(DatasetTest, QuantizeToBitsBoundsValues) {
  Dataset d = UniformDataset(100, 4, 100000, 2);
  Dataset q = d.QuantizeToBits(6);
  EXPECT_LT(q.MaxValue(), 64u);
  EXPECT_EQ(q.num_points(), d.num_points());
  EXPECT_EQ(q.dims(), d.dims());
}

TEST(DatasetTest, QuantizeNoopWhenAlreadySmall) {
  Dataset d = UniformDataset(20, 2, 15, 3);
  Dataset q = d.QuantizeToBits(8);
  for (size_t i = 0; i < d.num_points(); ++i) {
    EXPECT_EQ(q.point(i), d.point(i));
  }
}

TEST(GeneratorsTest, UniformRespectsRange) {
  Dataset d = UniformDataset(500, 3, 31, 4);
  EXPECT_LE(d.MaxValue(), 31u);
  EXPECT_EQ(d.num_points(), 500u);
  EXPECT_EQ(d.dims(), 3u);
}

TEST(GeneratorsTest, UniformDeterministicPerSeed) {
  Dataset a = UniformDataset(50, 2, 100, 7);
  Dataset b = UniformDataset(50, 2, 100, 7);
  Dataset c = UniformDataset(50, 2, 100, 8);
  EXPECT_EQ(a.point(13), b.point(13));
  bool any_diff = false;
  for (size_t i = 0; i < 50; ++i) {
    if (a.point(i) != c.point(i)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorsTest, UniformQueryInRange) {
  auto q = UniformQuery(10, 63, 9);
  EXPECT_EQ(q.size(), 10u);
  for (uint64_t v : q) EXPECT_LE(v, 63u);
}

TEST(GeneratorsTest, CervicalCancerShapeMatchesPaper) {
  Dataset d = SimulatedCervicalCancer(11);
  EXPECT_EQ(d.num_points(), 858u);  // paper: 858 patients
  EXPECT_EQ(d.dims(), 32u);         // paper: 32 dimensions
}

TEST(GeneratorsTest, CervicalCancerValueRangesPlausible) {
  Dataset d = SimulatedCervicalCancer(12);
  // Ages (feature 0) within the documented range, binary indicators 0/1.
  for (size_t i = 0; i < d.num_points(); ++i) {
    EXPECT_GE(d.at(i, 0), 13u);
    EXPECT_LE(d.at(i, 0), 84u);
    EXPECT_LE(d.at(i, 4), 1u);
  }
}

TEST(GeneratorsTest, CreditCardShapeMatchesPaper) {
  Dataset d = SimulatedCreditCard(13);
  EXPECT_EQ(d.num_points(), 30000u);  // paper: 30000 clients
  EXPECT_EQ(d.dims(), 23u);           // paper: 23 dimensions
}

TEST(GeneratorsTest, CreditCardSupportsSubsampling) {
  Dataset d = SimulatedCreditCard(14, 1000);
  EXPECT_EQ(d.num_points(), 1000u);
  EXPECT_EQ(d.dims(), 23u);
}

}  // namespace
}  // namespace data
}  // namespace sknn
