#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

namespace sknn {
namespace {

// RFC 8439 section 2.3.2 test vector for the ChaCha20 block function.
TEST(ChaCha20Test, Rfc8439BlockVector) {
  std::array<uint32_t, 8> key;
  for (int i = 0; i < 8; ++i) {
    // Key bytes 00 01 02 ... 1f, little-endian words.
    uint32_t w = 0;
    for (int b = 3; b >= 0; --b) w = (w << 8) | static_cast<uint32_t>(4 * i + b);
    key[i] = w;
  }
  std::array<uint32_t, 3> nonce = {0x09000000u, 0x4a000000u, 0x00000000u};
  std::array<uint8_t, 64> block;
  ChaCha20Block(key, 1, nonce, &block);
  const uint8_t expected[64] = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd,
      0x1f, 0xa3, 0x20, 0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0,
      0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4, 0x6c, 0x4e, 0xd2,
      0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2, 0xd7, 0x05,
      0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e,
      0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e};
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(block[static_cast<size_t>(i)], expected[i]) << "byte " << i;
  }
}

TEST(Chacha20RngTest, DeterministicForSameSeed) {
  Chacha20Rng a(uint64_t{12345});
  Chacha20Rng b(uint64_t{12345});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Chacha20RngTest, DifferentSeedsDiffer) {
  Chacha20Rng a(uint64_t{1});
  Chacha20Rng b(uint64_t{2});
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Chacha20RngTest, DifferentStreamsDiffer) {
  Chacha20Rng a(uint64_t{1}, 0);
  Chacha20Rng b(uint64_t{1}, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Chacha20RngTest, ForkProducesIndependentStream) {
  Chacha20Rng a(uint64_t{99});
  Chacha20Rng child = a.Fork(7);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == child.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Chacha20RngTest, UniformBelowStaysInRange) {
  Chacha20Rng rng(uint64_t{3});
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformBelow(bound), bound);
    }
  }
}

TEST(Chacha20RngTest, UniformInRangeInclusive) {
  Chacha20Rng rng(uint64_t{4});
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.UniformInRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    if (v == 5) hit_lo = true;
    if (v == 8) hit_hi = true;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Chacha20RngTest, UniformBelowIsRoughlyUniform) {
  Chacha20Rng rng(uint64_t{5});
  constexpr uint64_t kBuckets = 16;
  constexpr int kSamples = 16000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.UniformBelow(kBuckets)];
  // Chi-square with 15 dof; 99.9% quantile ~ 37.7.
  double chi2 = 0;
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 37.7);
}

TEST(Chacha20RngTest, TernarySamplesOnlyThreeValues) {
  Chacha20Rng rng(uint64_t{6});
  const uint64_t q = 97;
  std::vector<uint64_t> v;
  rng.SampleTernary(q, 3000, &v);
  int minus = 0, zero = 0, plus = 0;
  for (uint64_t x : v) {
    ASSERT_TRUE(x == 0 || x == 1 || x == q - 1);
    if (x == 0) ++zero;
    if (x == 1) ++plus;
    if (x == q - 1) ++minus;
  }
  EXPECT_GT(zero, 800);
  EXPECT_GT(plus, 800);
  EXPECT_GT(minus, 800);
}

TEST(Chacha20RngTest, GaussianHasExpectedMoments) {
  Chacha20Rng rng(uint64_t{7});
  const uint64_t q = 1ull << 50;
  const double sigma = 3.2;
  std::vector<uint64_t> v;
  rng.SampleGaussian(q, sigma, 20000, &v);
  double sum = 0, sumsq = 0;
  for (uint64_t x : v) {
    double c = (x > q / 2) ? static_cast<double>(x) - static_cast<double>(q)
                           : static_cast<double>(x);
    EXPECT_LE(std::abs(c), 6 * sigma + 1);
    sum += c;
    sumsq += c * c;
  }
  double mean = sum / 20000;
  double var = sumsq / 20000 - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.15);
  EXPECT_NEAR(var, sigma * sigma, 0.8);
}

TEST(Chacha20RngTest, RandomPermutationIsPermutation) {
  Chacha20Rng rng(uint64_t{8});
  for (size_t n : {0ul, 1ul, 2ul, 10ul, 257ul}) {
    std::vector<size_t> p = rng.RandomPermutation(n);
    ASSERT_EQ(p.size(), n);
    std::set<size_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), n);
    if (n > 0) {
      EXPECT_EQ(*seen.begin(), 0u);
      EXPECT_EQ(*seen.rbegin(), n - 1);
    }
  }
}

TEST(Chacha20RngTest, RandomPermutationCoversArrangements) {
  // All 6 permutations of 3 elements should appear over many draws.
  Chacha20Rng rng(uint64_t{9});
  std::map<std::vector<size_t>, int> counts;
  for (int i = 0; i < 1200; ++i) ++counts[rng.RandomPermutation(3)];
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [perm, count] : counts) {
    EXPECT_GT(count, 120) << "permutation unexpectedly rare";
  }
}

TEST(Chacha20RngTest, FillBytesMatchesStream) {
  Chacha20Rng a(uint64_t{10});
  Chacha20Rng b(uint64_t{10});
  std::vector<uint8_t> buf(100);
  a.FillBytes(buf.data(), buf.size());
  // Drawing the same bytes via repeated FillBytes in chunks must agree.
  std::vector<uint8_t> buf2(100);
  b.FillBytes(buf2.data(), 37);
  b.FillBytes(buf2.data() + 37, 63);
  EXPECT_EQ(buf, buf2);
}

}  // namespace
}  // namespace sknn
