// End-to-end integration on the paper's (simulated) evaluation workloads:
// subsets of the cervical-cancer-shaped and credit-card-shaped datasets,
// full 32/23-dimensional records, checked for exactness against the
// plaintext reference — the miniature version of Figures 3 and 4.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/trace.h"
#include "core/session.h"
#include "data/generators.h"
#include "extensions/secure_kmeans.h"
#include "knn/knn.h"

namespace sknn {
namespace {

std::vector<uint64_t> SortedDistances(
    const std::vector<std::vector<uint64_t>>& points,
    const std::vector<uint64_t>& query) {
  std::vector<uint64_t> out;
  for (const auto& p : points) {
    uint64_t sum = 0;
    for (size_t j = 0; j < query.size(); ++j) {
      uint64_t d = p[j] > query[j] ? p[j] - query[j] : query[j] - p[j];
      sum += d * d;
    }
    out.push_back(sum);
  }
  std::sort(out.begin(), out.end());
  return out;
}

data::Dataset Subset(const data::Dataset& d, size_t n) {
  data::Dataset out(std::min(n, d.num_points()), d.dims());
  for (size_t i = 0; i < out.num_points(); ++i) {
    for (size_t j = 0; j < d.dims(); ++j) out.set(i, j, d.at(i, j));
  }
  return out;
}

TEST(IntegrationTest, CancerWorkloadExact) {
  // 120 patients x 32 features, 8-NN (the Figure 3 workload, miniature).
  data::Dataset full = data::SimulatedCervicalCancer(2018).QuantizeToBits(5);
  data::Dataset dataset = Subset(full, 120);
  core::ProtocolConfig cfg;
  cfg.k = 8;
  cfg.dims = 32;
  cfg.coord_bits = 5;
  cfg.poly_degree = 2;
  cfg.layout = core::Layout::kPacked;
  cfg.preset = bgv::SecurityPreset::kToy;
  cfg.levels = cfg.MinimumLevels();
  auto session = core::SecureKnnSession::Create(cfg, dataset, 8);
  ASSERT_TRUE(session.ok()) << session.status();
  auto query = data::UniformQuery(32, 31, 9);
  auto result = (*session)->RunQuery(query);
  ASSERT_TRUE(result.ok()) << result.status();
  auto ref = knn::PlaintextKnn(dataset, query, 8);
  ASSERT_TRUE(ref.ok());
  std::vector<uint64_t> expected;
  for (const auto& nb : ref.value()) expected.push_back(nb.squared_distance);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(SortedDistances(result->neighbours, query), expected);
}

TEST(IntegrationTest, CreditWorkloadExact) {
  // 300 clients x 23 features, 5-NN (the Figure 4 workload, miniature).
  data::Dataset dataset = data::SimulatedCreditCard(2018, 300).QuantizeToBits(5);
  core::ProtocolConfig cfg;
  cfg.k = 5;
  cfg.dims = 23;
  cfg.coord_bits = 5;
  cfg.poly_degree = 2;
  cfg.layout = core::Layout::kPacked;
  cfg.preset = bgv::SecurityPreset::kToy;
  cfg.levels = cfg.MinimumLevels();
  auto session = core::SecureKnnSession::Create(cfg, dataset, 10);
  ASSERT_TRUE(session.ok()) << session.status();
  auto query = data::UniformQuery(23, 31, 11);
  auto result = (*session)->RunQuery(query);
  ASSERT_TRUE(result.ok()) << result.status();
  auto ref = knn::PlaintextKnn(dataset, query, 5);
  ASSERT_TRUE(ref.ok());
  std::vector<uint64_t> expected;
  for (const auto& nb : ref.value()) expected.push_back(nb.squared_distance);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(SortedDistances(result->neighbours, query), expected);
}

TEST(IntegrationTest, PerPointAndPackedAgreeOnRealWorkload) {
  data::Dataset dataset =
      Subset(data::SimulatedCervicalCancer(2018).QuantizeToBits(4), 60);
  auto query = data::UniformQuery(32, 15, 12);
  std::vector<std::vector<uint64_t>> results[2];
  int idx = 0;
  for (auto layout : {core::Layout::kPerPoint, core::Layout::kPacked}) {
    core::ProtocolConfig cfg;
    cfg.k = 4;
    cfg.dims = 32;
    cfg.coord_bits = 4;
    cfg.poly_degree = 2;
    cfg.layout = layout;
    cfg.preset = bgv::SecurityPreset::kToy;
    cfg.levels = cfg.MinimumLevels();
    auto session = core::SecureKnnSession::Create(cfg, dataset, 13);
    ASSERT_TRUE(session.ok()) << session.status();
    auto result = (*session)->RunQuery(query);
    ASSERT_TRUE(result.ok()) << result.status();
    results[idx++] = result->neighbours;
  }
  EXPECT_EQ(SortedDistances(results[0], query),
            SortedDistances(results[1], query));
}

TEST(IntegrationTest, FullQueryEmitsSpansForEveryPhase) {
  // Observability acceptance: a traced Session run must produce the whole
  // span tree, with wire bytes attributed to the two A<->B transfer spans.
  trace::Tracer::Global().Enable();
  data::Dataset dataset =
      Subset(data::SimulatedCervicalCancer(2018).QuantizeToBits(4), 40);
  core::ProtocolConfig cfg;
  cfg.k = 2;
  cfg.dims = 32;
  cfg.coord_bits = 4;
  cfg.poly_degree = 2;
  cfg.layout = core::Layout::kPacked;
  cfg.preset = bgv::SecurityPreset::kToy;
  cfg.levels = cfg.MinimumLevels();
  auto session = core::SecureKnnSession::Create(cfg, dataset, 21);
  ASSERT_TRUE(session.ok()) << session.status();
  auto query = data::UniformQuery(32, 15, 22);
  auto result = (*session)->RunQuery(query);
  ASSERT_TRUE(result.ok()) << result.status();

  const auto summary = trace::Summarize(trace::Tracer::Global().Records());
  trace::Tracer::Global().Disable();
  for (const char* phase :
       {"setup", "setup/owner.encrypt_db", "query", "query/client.encrypt",
        "query/transfer.query", "query/party_a.distance",
        "query/party_a.distance/unit",
        "query/party_a.distance/unit/square_fold",
        "query/party_a.distance/unit/mask",
        "query/party_a.distance/unit/permute",
        "query/party_a.distance/party_a.permute", "query/transfer.distances",
        "query/party_b.decrypt_select", "query/party_b.indicator",
        "query/transfer.indicators", "query/party_a.absorb",
        "query/party_a.retrieve", "query/transfer.results",
        "query/client.decrypt"}) {
    EXPECT_EQ(summary.count(phase), 1u) << "missing span: " << phase;
  }
  // The serialized distance and indicator ciphertexts crossed the link
  // inside their transfer spans.
  EXPECT_GT(summary.at("query/transfer.distances").bytes_sent, 0u);
  EXPECT_GT(summary.at("query/transfer.distances").bytes_received, 0u);
  EXPECT_GT(summary.at("query/transfer.indicators").bytes_sent, 0u);
  EXPECT_GT(summary.at("query/transfer.indicators").bytes_received, 0u);
  EXPECT_EQ(summary.at("query/transfer.distances").bytes_sent,
            result->ab_link.bytes_a_to_b);
  EXPECT_EQ(summary.at("query/transfer.indicators").bytes_sent,
            result->ab_link.bytes_b_to_a);
}

TEST(IntegrationTest, KMeansOnCreditWorkload) {
  data::Dataset dataset = data::SimulatedCreditCard(2018, 150).QuantizeToBits(4);
  extensions::KMeansConfig cfg;
  cfg.num_clusters = 2;
  cfg.dims = 23;
  cfg.coord_bits = 4;
  cfg.iterations = 2;
  cfg.preset = bgv::SecurityPreset::kToy;
  cfg.seed = 14;
  auto km = extensions::SecureKMeans::Create(cfg, dataset);
  ASSERT_TRUE(km.ok()) << km.status();
  auto result = (*km)->Run();
  ASSERT_TRUE(result.ok()) << result.status();
  auto ref = extensions::SecureKMeans::ReferenceLloyd(
      dataset, {dataset.point(0), dataset.point(1)}, 2);
  EXPECT_EQ(result->centroids, ref);
  EXPECT_EQ(result->sizes[0] + result->sizes[1], 150u);
}

}  // namespace
}  // namespace sknn
