#include "baseline/elmehdwi.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "knn/knn.h"

namespace sknn {
namespace baseline {
namespace {

std::vector<uint64_t> SortedDistances(
    const std::vector<std::vector<uint64_t>>& points,
    const std::vector<uint64_t>& query) {
  std::vector<uint64_t> out;
  for (const auto& p : points) {
    uint64_t sum = 0;
    for (size_t j = 0; j < query.size(); ++j) {
      uint64_t d = p[j] > query[j] ? p[j] - query[j] : query[j] - p[j];
      sum += d * d;
    }
    out.push_back(sum);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> ReferenceDistances(const data::Dataset& data,
                                         const std::vector<uint64_t>& query,
                                         size_t k) {
  auto ref = knn::PlaintextKnn(data, query, k);
  EXPECT_TRUE(ref.ok());
  std::vector<uint64_t> out;
  for (const auto& nb : ref.value()) out.push_back(nb.squared_distance);
  std::sort(out.begin(), out.end());
  return out;
}

BaselineConfig SmallConfig(size_t k) {
  BaselineConfig cfg;
  cfg.k = k;
  cfg.paillier_bits = 192;  // test speed; benches use 512+
  cfg.seed = 99;
  return cfg;
}

TEST(BaselineTest, MatchesPlaintextKnn) {
  data::Dataset dataset = data::UniformDataset(14, 2, 15, 1);
  auto proto = ElmehdwiSknn::Create(SmallConfig(3), dataset);
  ASSERT_TRUE(proto.ok()) << proto.status();
  std::vector<uint64_t> query = {7, 9};
  auto result = (*proto)->RunQuery(query);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->neighbours.size(), 3u);
  EXPECT_EQ(SortedDistances(result->neighbours, query),
            ReferenceDistances(dataset, query, 3));
}

TEST(BaselineTest, HigherDimensional) {
  data::Dataset dataset = data::UniformDataset(10, 5, 10, 2);
  auto proto = ElmehdwiSknn::Create(SmallConfig(2), dataset);
  ASSERT_TRUE(proto.ok());
  std::vector<uint64_t> query = {1, 2, 3, 4, 5};
  auto result = (*proto)->RunQuery(query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(SortedDistances(result->neighbours, query),
            ReferenceDistances(dataset, query, 2));
}

TEST(BaselineTest, KEqualsN) {
  data::Dataset dataset = data::UniformDataset(5, 2, 7, 3);
  auto proto = ElmehdwiSknn::Create(SmallConfig(5), dataset);
  ASSERT_TRUE(proto.ok());
  std::vector<uint64_t> query = {3, 3};
  auto result = (*proto)->RunQuery(query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(SortedDistances(result->neighbours, query),
            ReferenceDistances(dataset, query, 5));
}

TEST(BaselineTest, KClampedToN) {
  data::Dataset dataset = data::UniformDataset(4, 2, 7, 4);
  auto proto = ElmehdwiSknn::Create(SmallConfig(9), dataset);
  ASSERT_TRUE(proto.ok());
  auto result = (*proto)->RunQuery({1, 1});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->k, 4u);
}

TEST(BaselineTest, EquidistantPoints) {
  data::Dataset dataset(4, 2);
  dataset.set(0, 0, 0);
  dataset.set(0, 1, 0);
  dataset.set(1, 0, 0);
  dataset.set(1, 1, 10);
  dataset.set(2, 0, 10);
  dataset.set(2, 1, 0);
  dataset.set(3, 0, 10);
  dataset.set(3, 1, 10);
  auto proto = ElmehdwiSknn::Create(SmallConfig(2), dataset);
  ASSERT_TRUE(proto.ok());
  auto result = (*proto)->RunQuery({5, 5});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(SortedDistances(result->neighbours, {5, 5}),
            ReferenceDistances(dataset, {5, 5}, 2));
}

TEST(BaselineTest, RoundsGrowWithK) {
  // The paper's headline comparison: the baseline needs O(k) interactive
  // rounds while the new protocol needs exactly one.
  data::Dataset dataset = data::UniformDataset(8, 2, 15, 5);
  auto p1 = ElmehdwiSknn::Create(SmallConfig(1), dataset);
  auto p3 = ElmehdwiSknn::Create(SmallConfig(3), dataset);
  ASSERT_TRUE(p1.ok() && p3.ok());
  auto r1 = (*p1)->RunQuery({2, 2});
  auto r3 = (*p3)->RunQuery({2, 2});
  ASSERT_TRUE(r1.ok() && r3.ok());
  EXPECT_GT(r3->rounds, r1->rounds);
  EXPECT_GT(r1->rounds, 1u);
}

TEST(BaselineTest, OpCountsScaleWithKAndL) {
  data::Dataset dataset = data::UniformDataset(8, 2, 15, 6);
  auto p1 = ElmehdwiSknn::Create(SmallConfig(1), dataset);
  auto p3 = ElmehdwiSknn::Create(SmallConfig(3), dataset);
  ASSERT_TRUE(p1.ok() && p3.ok());
  auto r1 = (*p1)->RunQuery({2, 2});
  auto r3 = (*p3)->RunQuery({2, 2});
  ASSERT_TRUE(r1.ok() && r3.ok());
  // Encryptions at C2 scale with k (O(nkl) family).
  EXPECT_GT(r3->c2_ops.encryptions, 2 * r1->c2_ops.encryptions);
  EXPECT_GT(r3->c2_ops.decryptions, r1->c2_ops.decryptions);
}

TEST(BaselineTest, RejectsBadInputs) {
  data::Dataset dataset = data::UniformDataset(5, 2, 7, 7);
  BaselineConfig cfg = SmallConfig(0);
  EXPECT_FALSE(ElmehdwiSknn::Create(cfg, dataset).ok());
  auto proto = ElmehdwiSknn::Create(SmallConfig(2), dataset);
  ASSERT_TRUE(proto.ok());
  EXPECT_FALSE((*proto)->RunQuery({1, 2, 3}).ok());
}

TEST(BaselineTest, RepeatedQueriesConsistent) {
  data::Dataset dataset = data::UniformDataset(9, 3, 12, 8);
  auto proto = ElmehdwiSknn::Create(SmallConfig(2), dataset);
  ASSERT_TRUE(proto.ok());
  std::vector<uint64_t> query = {4, 4, 4};
  auto r1 = (*proto)->RunQuery(query);
  auto r2 = (*proto)->RunQuery(query);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(SortedDistances(r1->neighbours, query),
            SortedDistances(r2->neighbours, query));
}

}  // namespace
}  // namespace baseline
}  // namespace sknn
