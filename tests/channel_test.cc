#include "net/channel.h"

#include <gtest/gtest.h>

namespace sknn {
namespace net {
namespace {

TEST(ChannelTest, MessageDelivery) {
  InMemoryLink link;
  ASSERT_TRUE(link.a_endpoint()->Send({1, 2, 3}).ok());
  auto msg = link.b_endpoint()->Receive();
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value(), (std::vector<uint8_t>{1, 2, 3}));
}

TEST(ChannelTest, BidirectionalFifoOrder) {
  InMemoryLink link;
  ASSERT_TRUE(link.a_endpoint()->Send({1}).ok());
  ASSERT_TRUE(link.a_endpoint()->Send({2}).ok());
  ASSERT_TRUE(link.b_endpoint()->Send({9}).ok());
  EXPECT_EQ(link.b_endpoint()->Receive().value(), (std::vector<uint8_t>{1}));
  EXPECT_EQ(link.b_endpoint()->Receive().value(), (std::vector<uint8_t>{2}));
  EXPECT_EQ(link.a_endpoint()->Receive().value(), (std::vector<uint8_t>{9}));
}

TEST(ChannelTest, ReceiveOnEmptyFails) {
  InMemoryLink link;
  EXPECT_FALSE(link.b_endpoint()->Receive().ok());
}

TEST(ChannelTest, ByteAccounting) {
  InMemoryLink link;
  ASSERT_TRUE(link.a_endpoint()->Send(std::vector<uint8_t>(100)).ok());
  ASSERT_TRUE(link.a_endpoint()->Send(std::vector<uint8_t>(50)).ok());
  ASSERT_TRUE(link.b_endpoint()->Send(std::vector<uint8_t>(7)).ok());
  const LinkStats& stats = link.stats();
  EXPECT_EQ(stats.bytes_a_to_b, 150u);
  EXPECT_EQ(stats.bytes_b_to_a, 7u);
  EXPECT_EQ(stats.messages_a_to_b, 2u);
  EXPECT_EQ(stats.messages_b_to_a, 1u);
  EXPECT_EQ(stats.total_bytes(), 157u);
}

TEST(ChannelTest, RoundCountsDirectionFlips) {
  InMemoryLink link;
  // A burst from A, then a burst from B, then one more from A: 3 flips.
  ASSERT_TRUE(link.a_endpoint()->Send({1}).ok());
  ASSERT_TRUE(link.a_endpoint()->Send({2}).ok());
  ASSERT_TRUE(link.b_endpoint()->Send({3}).ok());
  ASSERT_TRUE(link.b_endpoint()->Send({4}).ok());
  ASSERT_TRUE(link.a_endpoint()->Send({5}).ok());
  EXPECT_EQ(link.stats().rounds, 3u);
}

TEST(ChannelTest, ResetStatsClearsCounters) {
  InMemoryLink link;
  ASSERT_TRUE(link.a_endpoint()->Send({1}).ok());
  link.ResetStats();
  EXPECT_EQ(link.stats().total_bytes(), 0u);
  EXPECT_EQ(link.stats().rounds, 0u);
}

TEST(ChannelTest, SinkAndSourceHelpers) {
  InMemoryLink link;
  ByteSink sink;
  sink.WriteU64(1234);
  sink.WriteString("payload");
  ASSERT_TRUE(link.a_endpoint()->SendSink(&sink).ok());
  auto src = link.b_endpoint()->ReceiveSource();
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->ReadU64().value(), 1234u);
  EXPECT_EQ(src->ReadString().value(), "payload");
}

}  // namespace
}  // namespace net
}  // namespace sknn
