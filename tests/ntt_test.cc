#include "math/ntt.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/prime.h"

namespace sknn {
namespace {

struct NttParam {
  size_t n;
  int prime_bits;
};

class NttParamTest : public ::testing::TestWithParam<NttParam> {};

TEST_P(NttParamTest, ForwardInverseRoundtrip) {
  const auto [n, bits] = GetParam();
  auto primes = GenerateNttPrimes(bits, 2 * n, 1);
  ASSERT_TRUE(primes.ok()) << primes.status();
  const uint64_t q = primes.value()[0];
  auto tables = NttTables::Create(n, q);
  ASSERT_TRUE(tables.ok()) << tables.status();
  Chacha20Rng rng(uint64_t{100} + n);
  std::vector<uint64_t> a;
  rng.SampleUniformMod(q, n, &a);
  std::vector<uint64_t> original = a;
  tables->ForwardNtt(&a);
  EXPECT_NE(a, original);  // transform does something
  tables->InverseNtt(&a);
  EXPECT_EQ(a, original);
}

TEST_P(NttParamTest, PointwiseProductIsNegacyclicConvolution) {
  const auto [n, bits] = GetParam();
  if (n > 256) GTEST_SKIP() << "naive reference too slow";
  auto primes = GenerateNttPrimes(bits, 2 * n, 1);
  ASSERT_TRUE(primes.ok());
  const uint64_t q = primes.value()[0];
  auto tables = NttTables::Create(n, q);
  ASSERT_TRUE(tables.ok());
  Chacha20Rng rng(uint64_t{200} + n);
  std::vector<uint64_t> a, b;
  rng.SampleUniformMod(q, n, &a);
  rng.SampleUniformMod(q, n, &b);
  std::vector<uint64_t> expected;
  NaiveNegacyclicMultiply(a, b, q, &expected);

  Modulus mod(q);
  tables->ForwardNtt(&a);
  tables->ForwardNtt(&b);
  std::vector<uint64_t> c(n);
  for (size_t i = 0; i < n; ++i) c[i] = mod.MulMod(a[i], b[i]);
  tables->InverseNtt(&c);
  EXPECT_EQ(c, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NttParamTest,
    ::testing::Values(NttParam{8, 30}, NttParam{16, 30}, NttParam{32, 40},
                      NttParam{64, 50}, NttParam{128, 55}, NttParam{256, 59},
                      NttParam{1024, 59}, NttParam{4096, 59}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_q" +
             std::to_string(info.param.prime_bits);
    });

TEST(NttTest, RejectsNonPowerOfTwo) {
  EXPECT_FALSE(NttTables::Create(24, 97).ok());
}

TEST(NttTest, RejectsBadCongruence) {
  // 97 is prime but 97 != 1 mod 64.
  EXPECT_FALSE(NttTables::Create(32, 97).ok());
}

TEST(NttTest, RejectsComposite) {
  EXPECT_FALSE(NttTables::Create(32, 65 * 64 + 1).ok());  // 4161 = 3*19*73
}

TEST(NttTest, PsiHasOrder2N) {
  const size_t n = 64;
  auto primes = GenerateNttPrimes(30, 2 * n, 1);
  ASSERT_TRUE(primes.ok());
  const uint64_t q = primes.value()[0];
  auto tables = NttTables::Create(n, q);
  ASSERT_TRUE(tables.ok());
  const uint64_t psi = tables->psi();
  EXPECT_EQ(PowMod(psi, 2 * n, q), 1u);
  EXPECT_EQ(PowMod(psi, n, q), q - 1);  // psi^n = -1 (negacyclic)
}

TEST(NttTest, LinearityOfTransform) {
  const size_t n = 128;
  auto primes = GenerateNttPrimes(50, 2 * n, 1);
  ASSERT_TRUE(primes.ok());
  const uint64_t q = primes.value()[0];
  auto tables = NttTables::Create(n, q);
  ASSERT_TRUE(tables.ok());
  Chacha20Rng rng(uint64_t{300});
  std::vector<uint64_t> a, b;
  rng.SampleUniformMod(q, n, &a);
  rng.SampleUniformMod(q, n, &b);
  std::vector<uint64_t> sum(n);
  for (size_t i = 0; i < n; ++i) sum[i] = AddMod(a[i], b[i], q);
  tables->ForwardNtt(&a);
  tables->ForwardNtt(&b);
  tables->ForwardNtt(&sum);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(sum[i], AddMod(a[i], b[i], q));
  }
}

TEST(NttTest, ReverseBitsBasics) {
  EXPECT_EQ(ReverseBits(0b001, 3), 0b100u);
  EXPECT_EQ(ReverseBits(0b110, 3), 0b011u);
  EXPECT_EQ(ReverseBits(1, 10), 1u << 9);
  EXPECT_EQ(ReverseBits(0, 5), 0u);
}

TEST(NttTest, NaiveMultiplyWrapsSign) {
  // (x^(n-1))^2 = x^(2n-2) = -x^(n-2) in the negacyclic ring.
  const size_t n = 8;
  const uint64_t q = 97;  // 97 = 1 mod 16
  std::vector<uint64_t> a(n, 0), out;
  a[n - 1] = 1;
  NaiveNegacyclicMultiply(a, a, q, &out);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], i == n - 2 ? q - 1 : 0u);
  }
}

}  // namespace
}  // namespace sknn
