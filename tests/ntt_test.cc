#include "math/ntt.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "math/prime.h"
#include "math/simd/kernels.h"

namespace sknn {
namespace {

struct NttParam {
  size_t n;
  int prime_bits;
};

class NttParamTest : public ::testing::TestWithParam<NttParam> {};

TEST_P(NttParamTest, ForwardInverseRoundtrip) {
  const auto [n, bits] = GetParam();
  auto primes = GenerateNttPrimes(bits, 2 * n, 1);
  ASSERT_TRUE(primes.ok()) << primes.status();
  const uint64_t q = primes.value()[0];
  auto tables = NttTables::Create(n, q);
  ASSERT_TRUE(tables.ok()) << tables.status();
  Chacha20Rng rng(uint64_t{100} + n);
  std::vector<uint64_t> a;
  rng.SampleUniformMod(q, n, &a);
  std::vector<uint64_t> original = a;
  tables->ForwardNtt(&a);
  EXPECT_NE(a, original);  // transform does something
  tables->InverseNtt(&a);
  EXPECT_EQ(a, original);
}

TEST_P(NttParamTest, PointwiseProductIsNegacyclicConvolution) {
  const auto [n, bits] = GetParam();
  if (n > 256) GTEST_SKIP() << "naive reference too slow";
  auto primes = GenerateNttPrimes(bits, 2 * n, 1);
  ASSERT_TRUE(primes.ok());
  const uint64_t q = primes.value()[0];
  auto tables = NttTables::Create(n, q);
  ASSERT_TRUE(tables.ok());
  Chacha20Rng rng(uint64_t{200} + n);
  std::vector<uint64_t> a, b;
  rng.SampleUniformMod(q, n, &a);
  rng.SampleUniformMod(q, n, &b);
  std::vector<uint64_t> expected;
  NaiveNegacyclicMultiply(a, b, q, &expected);

  Modulus mod(q);
  tables->ForwardNtt(&a);
  tables->ForwardNtt(&b);
  std::vector<uint64_t> c(n);
  for (size_t i = 0; i < n; ++i) c[i] = mod.MulMod(a[i], b[i]);
  tables->InverseNtt(&c);
  EXPECT_EQ(c, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NttParamTest,
    ::testing::Values(NttParam{8, 30}, NttParam{16, 30}, NttParam{32, 40},
                      NttParam{64, 50}, NttParam{128, 55}, NttParam{256, 59},
                      NttParam{1024, 59}, NttParam{4096, 59}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_q" +
             std::to_string(info.param.prime_bits);
    });

// Cross-check of the lazy-reduction kernels against the O(n^2) schoolbook
// negacyclic product, over the full protocol matrix: every supported ring
// degree n in {4..8192} times every prime size the protocol presets use
// (33-bit plain, 45-bit toy data, 50-bit toy special, 58-bit data, 60-bit
// special). These sizes bracket the lazy bound: at 60 bits, 4q is within a
// factor 4 of 2^64, so any missed reduction overflows and the product is
// wrong with overwhelming probability.
class LazyNttMatrixTest : public ::testing::TestWithParam<NttParam> {
 protected:
  void SetUp() override {
    const auto [n, bits] = GetParam();
    auto primes = GenerateNttPrimes(bits, 2 * n, 1);
    ASSERT_TRUE(primes.ok()) << primes.status();
    q_ = primes.value()[0];
    auto tables = NttTables::Create(n, q_);
    ASSERT_TRUE(tables.ok()) << tables.status();
    tables_ = std::make_unique<NttTables>(std::move(tables).value());
  }

  uint64_t q_ = 0;
  std::unique_ptr<NttTables> tables_;
};

TEST_P(LazyNttMatrixTest, RandomProductMatchesSchoolbook) {
  const size_t n = GetParam().n;
  Chacha20Rng rng(uint64_t{400} + n * 64 + GetParam().prime_bits);
  std::vector<uint64_t> a, b;
  rng.SampleUniformMod(q_, n, &a);
  rng.SampleUniformMod(q_, n, &b);
  std::vector<uint64_t> expected;
  NaiveNegacyclicMultiply(a, b, q_, &expected);

  Modulus mod(q_);
  tables_->ForwardNtt(&a);
  tables_->ForwardNtt(&b);
  // Forward output must be fully reduced: the lazy pipeline's final pass
  // brings every value from [0, 4q) back into [0, q).
  for (size_t i = 0; i < n; ++i) {
    ASSERT_LT(a[i], q_) << "forward NTT output not reduced at " << i;
  }
  std::vector<uint64_t> c(n);
  for (size_t i = 0; i < n; ++i) c[i] = mod.MulMod(a[i], b[i]);
  tables_->InverseNtt(&c);
  EXPECT_EQ(c, expected);
}

TEST_P(LazyNttMatrixTest, WorstCaseAllMaxCoefficients) {
  // All coefficients q-1 maximizes every intermediate in the butterfly
  // network, exercising the [0, 4q) bound at each stage. (-1)^2 summed over
  // the negacyclic wrap gives a closed-form reference as well, but the
  // schoolbook product keeps the oracle independent of any NTT reasoning.
  const size_t n = GetParam().n;
  std::vector<uint64_t> a(n, q_ - 1);
  std::vector<uint64_t> b(n, q_ - 1);
  std::vector<uint64_t> expected;
  NaiveNegacyclicMultiply(a, b, q_, &expected);

  std::vector<uint64_t> roundtrip = a;
  tables_->ForwardNtt(&roundtrip);
  for (size_t i = 0; i < n; ++i) ASSERT_LT(roundtrip[i], q_);
  tables_->InverseNtt(&roundtrip);
  EXPECT_EQ(roundtrip, a);

  Modulus mod(q_);
  tables_->ForwardNtt(&a);
  tables_->ForwardNtt(&b);
  std::vector<uint64_t> c(n);
  for (size_t i = 0; i < n; ++i) c[i] = mod.MulMod(a[i], b[i]);
  tables_->InverseNtt(&c);
  EXPECT_EQ(c, expected);
}

TEST_P(LazyNttMatrixTest, SimdLevelsBitIdenticalToScalar) {
  // Every compiled-in ISA level must produce bit-for-bit the scalar result
  // for both transforms, on a random reduced input and on the all-(q-1)
  // worst case that maximizes every lazy intermediate. ForceIsa pins the
  // dispatch table so each path is exercised even on CPUs that support
  // wider ISAs (and under SKNN_SIMD overrides from ctest).
  const size_t n = GetParam().n;
  Chacha20Rng rng(uint64_t{7000} + n * 64 + GetParam().prime_bits);
  std::vector<std::vector<uint64_t>> inputs(2);
  rng.SampleUniformMod(q_, n, &inputs[0]);
  inputs[1].assign(n, q_ - 1);

  for (const std::vector<uint64_t>& input : inputs) {
    ASSERT_TRUE(ForceIsa(simd::Isa::kScalar).ok());
    std::vector<uint64_t> fwd_ref = input;
    tables_->ForwardNtt(&fwd_ref);
    std::vector<uint64_t> inv_ref = fwd_ref;
    tables_->InverseNtt(&inv_ref);

    for (simd::Isa isa : simd::AvailableIsaLevels()) {
      ASSERT_TRUE(ForceIsa(isa).ok());
      std::vector<uint64_t> fwd = input;
      tables_->ForwardNtt(&fwd);
      EXPECT_EQ(fwd, fwd_ref) << "forward mismatch under " << IsaName(isa);
      std::vector<uint64_t> inv = fwd_ref;
      tables_->InverseNtt(&inv);
      EXPECT_EQ(inv, inv_ref) << "inverse mismatch under " << IsaName(isa);
    }
  }
  // Back to the process default (CPUID or SKNN_SIMD) for later tests.
  simd::ResetIsaFromEnv();
}

std::vector<NttParam> LazyMatrix() {
  std::vector<NttParam> params;
  for (size_t n = 4; n <= 8192; n <<= 1) {
    for (int bits : {33, 45, 50, 58, 60}) {
      params.push_back(NttParam{n, bits});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(ProtocolMatrix, LazyNttMatrixTest,
                         ::testing::ValuesIn(LazyMatrix()),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_q" +
                                  std::to_string(info.param.prime_bits);
                         });

TEST(NttTest, RejectsModulusAtOrAbove2Pow62) {
  // 4q must fit in 64 bits for the lazy butterflies; Create refuses larger.
  const size_t n = 8;
  // A 63-bit odd value with the right congruence class (primality is not
  // reached before the bound check fires).
  const uint64_t too_big = (uint64_t{1} << 62) + 2 * n + 1;
  EXPECT_FALSE(NttTables::Create(n, too_big).ok());
}

TEST(NttTest, RejectsNonPowerOfTwo) {
  EXPECT_FALSE(NttTables::Create(24, 97).ok());
}

TEST(NttTest, RejectsBadCongruence) {
  // 97 is prime but 97 != 1 mod 64.
  EXPECT_FALSE(NttTables::Create(32, 97).ok());
}

TEST(NttTest, RejectsComposite) {
  EXPECT_FALSE(NttTables::Create(32, 65 * 64 + 1).ok());  // 4161 = 3*19*73
}

TEST(NttTest, PsiHasOrder2N) {
  const size_t n = 64;
  auto primes = GenerateNttPrimes(30, 2 * n, 1);
  ASSERT_TRUE(primes.ok());
  const uint64_t q = primes.value()[0];
  auto tables = NttTables::Create(n, q);
  ASSERT_TRUE(tables.ok());
  const uint64_t psi = tables->psi();
  EXPECT_EQ(PowMod(psi, 2 * n, q), 1u);
  EXPECT_EQ(PowMod(psi, n, q), q - 1);  // psi^n = -1 (negacyclic)
}

TEST(NttTest, LinearityOfTransform) {
  const size_t n = 128;
  auto primes = GenerateNttPrimes(50, 2 * n, 1);
  ASSERT_TRUE(primes.ok());
  const uint64_t q = primes.value()[0];
  auto tables = NttTables::Create(n, q);
  ASSERT_TRUE(tables.ok());
  Chacha20Rng rng(uint64_t{300});
  std::vector<uint64_t> a, b;
  rng.SampleUniformMod(q, n, &a);
  rng.SampleUniformMod(q, n, &b);
  std::vector<uint64_t> sum(n);
  for (size_t i = 0; i < n; ++i) sum[i] = AddMod(a[i], b[i], q);
  tables->ForwardNtt(&a);
  tables->ForwardNtt(&b);
  tables->ForwardNtt(&sum);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(sum[i], AddMod(a[i], b[i], q));
  }
}

TEST(NttTest, ReverseBitsBasics) {
  EXPECT_EQ(ReverseBits(0b001, 3), 0b100u);
  EXPECT_EQ(ReverseBits(0b110, 3), 0b011u);
  EXPECT_EQ(ReverseBits(1, 10), 1u << 9);
  EXPECT_EQ(ReverseBits(0, 5), 0u);
}

TEST(NttTest, NaiveMultiplyWrapsSign) {
  // (x^(n-1))^2 = x^(2n-2) = -x^(n-2) in the negacyclic ring.
  const size_t n = 8;
  const uint64_t q = 97;  // 97 = 1 mod 16
  std::vector<uint64_t> a(n, 0), out;
  a[n - 1] = 1;
  NaiveNegacyclicMultiply(a, a, q, &out);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], i == n - 2 ? q - 1 : 0u);
  }
}

}  // namespace
}  // namespace sknn
