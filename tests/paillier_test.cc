#include "crypto/paillier.h"

#include <gtest/gtest.h>

namespace sknn {
namespace paillier {
namespace {

class PaillierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Chacha20Rng>(uint64_t{77});
    auto kp = GeneratePaillierKeys(256, rng_.get());
    ASSERT_TRUE(kp.ok()) << kp.status();
    kp_ = std::make_unique<PaillierKeyPair>(std::move(kp).value());
    enc_ = std::make_unique<PaillierEncryptor>(kp_->pk, rng_.get());
    dec_ = std::make_unique<PaillierDecryptor>(kp_->pk, kp_->sk);
  }

  std::unique_ptr<Chacha20Rng> rng_;
  std::unique_ptr<PaillierKeyPair> kp_;
  std::unique_ptr<PaillierEncryptor> enc_;
  std::unique_ptr<PaillierDecryptor> dec_;
};

TEST_F(PaillierTest, KeyGenerationShape) {
  EXPECT_EQ(kp_->pk.n.BitLength(), 256u);
  EXPECT_EQ(kp_->pk.n_squared, BigUint::Mul(kp_->pk.n, kp_->pk.n));
}

TEST_F(PaillierTest, EncryptDecryptRoundtrip) {
  for (uint64_t m : {0ull, 1ull, 42ull, 123456789ull, (1ull << 40)}) {
    auto ct = enc_->EncryptU64(m);
    ASSERT_TRUE(ct.ok());
    auto back = dec_->Decrypt(ct.value());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->ToU64(), m);
  }
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  auto c1 = enc_->EncryptU64(5);
  auto c2 = enc_->EncryptU64(5);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(c1.value(), c2.value());
}

TEST_F(PaillierTest, AdditiveHomomorphism) {
  Chacha20Rng vals(uint64_t{5});
  for (int i = 0; i < 10; ++i) {
    uint64_t a = vals.UniformBelow(1ull << 50);
    uint64_t b = vals.UniformBelow(1ull << 50);
    auto ca = enc_->EncryptU64(a);
    auto cb = enc_->EncryptU64(b);
    ASSERT_TRUE(ca.ok() && cb.ok());
    auto sum = dec_->Decrypt(enc_->Add(ca.value(), cb.value()));
    ASSERT_TRUE(sum.ok());
    EXPECT_EQ(sum->ToU64(), a + b);
  }
}

TEST_F(PaillierTest, AddPlainMatchesAdd) {
  auto ca = enc_->EncryptU64(1000);
  ASSERT_TRUE(ca.ok());
  auto csum = enc_->AddPlain(ca.value(), BigUint(234));
  ASSERT_TRUE(csum.ok());
  EXPECT_EQ(dec_->Decrypt(csum.value())->ToU64(), 1234u);
}

TEST_F(PaillierTest, ScalarMultiplication) {
  auto ca = enc_->EncryptU64(37);
  ASSERT_TRUE(ca.ok());
  BigUint ck = enc_->MulPlain(ca.value(), BigUint(100));
  EXPECT_EQ(dec_->Decrypt(ck)->ToU64(), 3700u);
}

TEST_F(PaillierTest, NegationAndSignedDecrypt) {
  auto ca = enc_->EncryptU64(25);
  ASSERT_TRUE(ca.ok());
  BigUint cneg = enc_->Negate(ca.value());
  auto v = dec_->DecryptSignedU64(cneg);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), -25);
}

TEST_F(PaillierTest, SignedArithmeticAcrossZero) {
  // Enc(10) + Enc(-25) = Enc(-15).
  auto ca = enc_->EncryptU64(10);
  auto cb = enc_->EncryptU64(25);
  ASSERT_TRUE(ca.ok() && cb.ok());
  BigUint cdiff = enc_->Add(ca.value(), enc_->Negate(cb.value()));
  EXPECT_EQ(dec_->DecryptSignedU64(cdiff).value(), -15);
}

TEST_F(PaillierTest, RerandomizePreservesPlaintext) {
  auto ca = enc_->EncryptU64(77);
  ASSERT_TRUE(ca.ok());
  auto cr = enc_->Rerandomize(ca.value());
  ASSERT_TRUE(cr.ok());
  EXPECT_NE(cr.value(), ca.value());
  EXPECT_EQ(dec_->Decrypt(cr.value())->ToU64(), 77u);
}

TEST_F(PaillierTest, RejectsOversizedPlaintext) {
  EXPECT_FALSE(enc_->Encrypt(kp_->pk.n).ok());
}

TEST_F(PaillierTest, RejectsBadKeySizes) {
  Chacha20Rng rng(uint64_t{1});
  EXPECT_FALSE(GeneratePaillierKeys(32, &rng).ok());
  EXPECT_FALSE(GeneratePaillierKeys(1 << 14, &rng).ok());
}

TEST_F(PaillierTest, BigPlaintextRoundtrip) {
  Chacha20Rng rng(uint64_t{9});
  BigUint m = BigUint::RandomBelow(kp_->pk.n, &rng);
  auto ct = enc_->Encrypt(m);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(dec_->Decrypt(ct.value()).value(), m);
}

}  // namespace
}  // namespace paillier
}  // namespace sknn
