#include "common/serial.h"

#include <gtest/gtest.h>

namespace sknn {
namespace {

TEST(SerialTest, RoundtripScalars) {
  ByteSink sink;
  sink.WriteU8(0xab);
  sink.WriteU32(0xdeadbeef);
  sink.WriteU64(0x0123456789abcdefull);
  ByteSource src(sink.TakeBytes());
  EXPECT_EQ(src.ReadU8().value(), 0xab);
  EXPECT_EQ(src.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(src.ReadU64().value(), 0x0123456789abcdefull);
  EXPECT_TRUE(src.AtEnd());
}

TEST(SerialTest, RoundtripVector) {
  ByteSink sink;
  std::vector<uint64_t> v = {0, 1, UINT64_MAX, 42, 1ull << 63};
  sink.WriteU64Vector(v);
  ByteSource src(sink.TakeBytes());
  auto got = src.ReadU64Vector();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), v);
  EXPECT_TRUE(src.AtEnd());
}

TEST(SerialTest, RoundtripEmptyVector) {
  ByteSink sink;
  sink.WriteU64Vector({});
  ByteSource src(sink.TakeBytes());
  auto got = src.ReadU64Vector();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().empty());
}

TEST(SerialTest, RoundtripString) {
  ByteSink sink;
  sink.WriteString("hello");
  sink.WriteString("");
  ByteSource src(sink.TakeBytes());
  EXPECT_EQ(src.ReadString().value(), "hello");
  EXPECT_EQ(src.ReadString().value(), "");
}

TEST(SerialTest, TruncatedReadFails) {
  ByteSink sink;
  sink.WriteU32(7);
  ByteSource src(sink.TakeBytes());
  EXPECT_FALSE(src.ReadU64().ok());
}

TEST(SerialTest, VectorLengthBoundsChecked) {
  // A claimed length far beyond the available bytes must error, not crash.
  ByteSink sink;
  sink.WriteU64(1ull << 60);  // absurd element count
  sink.WriteU64(0);
  ByteSource src(sink.TakeBytes());
  EXPECT_FALSE(src.ReadU64Vector().ok());
}

TEST(SerialTest, SizeTracksWrites) {
  ByteSink sink;
  EXPECT_EQ(sink.size(), 0u);
  sink.WriteU64(1);
  EXPECT_EQ(sink.size(), 8u);
  sink.WriteU8(1);
  EXPECT_EQ(sink.size(), 9u);
}

TEST(SerialTest, MixedSequenceRoundtrip) {
  ByteSink sink;
  sink.WriteU64Vector({5, 6, 7});
  sink.WriteString("tag");
  sink.WriteU32(99);
  ByteSource src(sink.TakeBytes());
  EXPECT_EQ(src.ReadU64Vector().value(), (std::vector<uint64_t>{5, 6, 7}));
  EXPECT_EQ(src.ReadString().value(), "tag");
  EXPECT_EQ(src.ReadU32().value(), 99u);
  EXPECT_TRUE(src.AtEnd());
}

}  // namespace
}  // namespace sknn
