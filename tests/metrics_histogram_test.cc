// Tests for the MetricsRegistry histogram subsystem: bucket geometry,
// quantile readout, merge/reset, Prometheus text exposition, and a
// multi-threaded hammer (the tsan preset re-runs this suite, so the
// lock-free Record path gets a data-race check for free).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics_registry.h"
#include "common/thread_pool.h"

namespace sknn {
namespace {

using Histogram = MetricsRegistry::Histogram;

TEST(HistogramBuckets, SmallValuesGetExactBuckets) {
  // Values below kSubBuckets land in per-value unit buckets.
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::BucketUpperBound(static_cast<int>(v)), v);
  }
}

TEST(HistogramBuckets, IndexIsMonotoneAndBoundsAreConsistent) {
  uint64_t probes[] = {0,   1,    7,    8,     9,    15,        16,
                       100, 1000, 1023, 1024,  4095, 123456789, 1ull << 40,
                       (1ull << 63) + 5, ~0ull};
  int prev_index = -1;
  uint64_t prev_value = 0;
  for (uint64_t v : probes) {
    const int index = Histogram::BucketIndex(v);
    ASSERT_GE(index, 0) << v;
    ASSERT_LT(index, Histogram::kNumBuckets) << v;
    if (v >= prev_value) EXPECT_GE(index, prev_index) << v;
    // The bucket's upper bound never understates its members.
    EXPECT_GE(Histogram::BucketUpperBound(index), v);
    // ...and overstates by at most one sub-bucket width (12.5% relative).
    if (v >= Histogram::kSubBuckets) {
      EXPECT_LE(static_cast<double>(Histogram::BucketUpperBound(index)),
                static_cast<double>(v) * 1.125 + 1.0);
    }
    prev_index = index;
    prev_value = v;
  }
}

TEST(HistogramBuckets, EveryBucketRoundTrips) {
  // The upper bound of every bucket must map back into that bucket.
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    const uint64_t upper = Histogram::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketIndex(upper), i) << "bucket " << i;
  }
}

TEST(Histogram, CountSumMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  h.Record(10);
  h.Record(20);
  h.Record(5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 35u);
  EXPECT_EQ(h.max(), 20u);
}

TEST(Histogram, QuantilesOnUniformRange) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  // Bucketed quantiles may overshoot by one bucket width (<= 12.5%), and
  // never undershoot the true quantile's bucket.
  const uint64_t p50 = h.Quantile(0.5);
  const uint64_t p95 = h.Quantile(0.95);
  const uint64_t p99 = h.Quantile(0.99);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 563u);
  EXPECT_GE(p95, 950u);
  EXPECT_LE(p95, 1000u);  // clamped to observed max
  EXPECT_GE(p99, 990u);
  EXPECT_LE(p99, 1000u);
  EXPECT_EQ(h.Quantile(1.0), 1000u);
}

TEST(Histogram, QuantileOfSingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.Quantile(0.0), 42u);
  EXPECT_EQ(h.Quantile(0.5), 42u);
  EXPECT_EQ(h.Quantile(1.0), 42u);
}

TEST(Histogram, MergeFromAddsEvents) {
  Histogram a;
  Histogram b;
  a.Record(10);
  b.Record(1000);
  b.Record(2000);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 3010u);
  EXPECT_EQ(a.max(), 2000u);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  h.Record(123);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(Registry, GetHistogramIsStableAndNamed) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("latency_ns.query");
  EXPECT_EQ(h, registry.GetHistogram("latency_ns.query"));
  h->Record(100);
  auto snapshots = registry.HistogramValues();
  ASSERT_EQ(snapshots.count("latency_ns.query"), 1u);
  EXPECT_EQ(snapshots["latency_ns.query"].count, 1u);
}

TEST(Registry, MergeAndResetCoverHistograms) {
  MetricsRegistry a;
  MetricsRegistry b;
  b.GetHistogram("h")->Record(7);
  b.GetCounter("c")->Add(3);
  a.MergeFrom(b);
  EXPECT_EQ(a.HistogramValues()["h"].count, 1u);
  EXPECT_EQ(a.CounterValues()["c"], 3u);
  a.ResetValues();
  EXPECT_EQ(a.HistogramValues()["h"].count, 0u);
  EXPECT_EQ(a.CounterValues()["c"], 0u);
}

TEST(Registry, HistogramsJsonCarriesQuantiles) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("latency_ns.phase");
  for (uint64_t v = 1; v <= 100; ++v) h->Record(v);
  const std::string json = registry.HistogramsJson();
  EXPECT_NE(json.find("\"latency_ns.phase\""), std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
  EXPECT_NE(json.find("100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Registry, PrometheusTextShape) {
  MetricsRegistry registry;
  registry.GetCounter("bgv.evaluator.multiply")->Add(4);
  registry.GetGauge("bgv.noise.party_a.mask")->Set(17.5);
  Histogram* h = registry.GetHistogram("latency_ns.query");
  h->Record(5);
  h->Record(500);
  const std::string text = registry.PrometheusText();
  // Names are sanitized: dots become underscores.
  EXPECT_NE(text.find("# TYPE bgv_evaluator_multiply counter"),
            std::string::npos);
  EXPECT_NE(text.find("bgv_evaluator_multiply 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bgv_noise_party_a_mask gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_ns_query histogram"),
            std::string::npos);
  // Cumulative buckets end with +Inf and carry _sum/_count.
  EXPECT_NE(text.find("latency_ns_query_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("latency_ns_query_sum 505"), std::string::npos);
  EXPECT_NE(text.find("latency_ns_query_count 2"), std::string::npos);
  // Companion quantile summary.
  EXPECT_NE(text.find("latency_ns_query_quantiles{quantile=\"0.5\"}"),
            std::string::npos);
  // Every line is either a comment or "name[{labels}] value".
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
    pos = end + 1;
  }
}

TEST(Registry, ConcurrentCountersAndHistogramsNoEventLoss) {
  // Hammer one registry from the thread pool: every worker records into
  // the SAME counter and histogram. Under the tsan preset this doubles as
  // a data-race check on the lock-free Record path.
  MetricsRegistry registry;
  MetricsRegistry::Counter* counter = registry.GetCounter("hammer.counter");
  Histogram* histogram = registry.GetHistogram("hammer.histogram");
  constexpr size_t kWorkers = 8;
  constexpr uint64_t kPerWorker = 20000;
  ThreadPool pool(kWorkers);
  pool.ParallelFor(0, kWorkers, [&](size_t w) {
    uint64_t v = w * 977 + 1;
    for (uint64_t i = 0; i < kPerWorker; ++i) {
      counter->Increment();
      histogram->Record(v);
      v = v * 6364136223846793005ull + 1442695040888963407ull;
      v >>= 32;
      // Worker-local names also exercise the locked map path.
      if (i % 4096 == 0) registry.GetHistogram("hammer.histogram");
    }
  });
  EXPECT_EQ(counter->value(), kWorkers * kPerWorker);
  EXPECT_EQ(histogram->count(), kWorkers * kPerWorker);
  // Bucket totals must equal the event count (no lost updates).
  uint64_t bucket_total = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += histogram->bucket_count(i);
  }
  EXPECT_EQ(bucket_total, kWorkers * kPerWorker);
}

TEST(Registry, GaugeAddIsAtomicUnderContention) {
  // The servers track live connection counts with Gauge::Add from
  // concurrent threads; a load/Set pair would lose updates and drift.
  // Balanced +1/-1 pairs must land exactly back at the starting value.
  MetricsRegistry registry;
  MetricsRegistry::Gauge* gauge = registry.GetGauge("hammer.gauge");
  gauge->Set(5);
  constexpr size_t kWorkers = 8;
  constexpr int kPerWorker = 20000;
  ThreadPool pool(kWorkers);
  pool.ParallelFor(0, kWorkers, [&](size_t) {
    for (int i = 0; i < kPerWorker; ++i) {
      gauge->Add(1);
      gauge->Add(-1);
    }
  });
  EXPECT_EQ(gauge->value(), 5.0);
}

}  // namespace
}  // namespace sknn
