#include "core/config_advisor.h"

#include <gtest/gtest.h>

#include "core/session.h"
#include "data/generators.h"

namespace sknn {
namespace core {
namespace {

TEST(ConfigAdvisorTest, SmallWorkloadGetsPerPoint) {
  WorkloadSpec w;
  w.num_points = 100;
  w.dims = 4;
  w.coord_bits = 4;
  w.k = 5;
  w.preset = bgv::SecurityPreset::kToy;
  auto advised = AdviseConfig(w);
  ASSERT_TRUE(advised.ok()) << advised.status();
  EXPECT_EQ(advised->config.layout, Layout::kPerPoint);
  EXPECT_TRUE(advised->config.Validate().ok());
  EXPECT_NE(advised->rationale.find("per-point"), std::string::npos);
}

TEST(ConfigAdvisorTest, LargeWorkloadGetsPacked) {
  WorkloadSpec w;
  w.num_points = 100000;
  w.dims = 2;
  w.coord_bits = 5;
  w.preset = bgv::SecurityPreset::kToy;
  auto advised = AdviseConfig(w);
  ASSERT_TRUE(advised.ok());
  EXPECT_EQ(advised->config.layout, Layout::kPacked);
}

TEST(ConfigAdvisorTest, PrefersHighestFittingDegree) {
  // Tiny coordinates: degree 3 fits with budget to spare.
  WorkloadSpec w;
  w.num_points = 50;
  w.dims = 2;
  w.coord_bits = 2;
  w.preset = bgv::SecurityPreset::kToy;
  auto advised = AdviseConfig(w);
  ASSERT_TRUE(advised.ok());
  EXPECT_EQ(advised->config.poly_degree, 3u);
  // Large coordinates: only degree 1 leaves coefficient entropy.
  w.coord_bits = 11;
  advised = AdviseConfig(w);
  ASSERT_TRUE(advised.ok()) << advised.status();
  EXPECT_EQ(advised->config.poly_degree, 1u);
}

TEST(ConfigAdvisorTest, RespectsDegreeFloor) {
  WorkloadSpec w;
  w.num_points = 50;
  w.dims = 2;
  w.coord_bits = 11;  // only degree 1 fits...
  w.min_poly_degree = 2;  // ...but the user demands 2
  w.preset = bgv::SecurityPreset::kToy;
  EXPECT_FALSE(AdviseConfig(w).ok());
}

TEST(ConfigAdvisorTest, RejectsImpossibleWorkloads) {
  WorkloadSpec w;
  w.num_points = 10;
  w.dims = 2;
  w.coord_bits = 20;  // squared distances blow past t/2
  w.preset = bgv::SecurityPreset::kToy;
  EXPECT_FALSE(AdviseConfig(w).ok());
  w.coord_bits = 4;
  w.dims = 4000;  // more slots than the toy ring offers
  EXPECT_FALSE(AdviseConfig(w).ok());
  w.dims = 0;
  EXPECT_FALSE(AdviseConfig(w).ok());
}

TEST(ConfigAdvisorTest, AdvisedConfigActuallyRuns) {
  WorkloadSpec w;
  w.num_points = 40;
  w.dims = 3;
  w.coord_bits = 4;
  w.k = 3;
  w.preset = bgv::SecurityPreset::kToy;
  auto advised = AdviseConfig(w);
  ASSERT_TRUE(advised.ok());
  data::Dataset dataset = data::UniformDataset(40, 3, 15, 1);
  auto session = SecureKnnSession::Create(advised->config, dataset, 2);
  ASSERT_TRUE(session.ok()) << session.status();
  auto result = (*session)->RunQuery({1, 2, 3});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->neighbours.size(), 3u);
}

TEST(ConfigAdvisorTest, RationaleExplainsChoices) {
  WorkloadSpec w;
  w.num_points = 5000;
  w.dims = 8;
  w.coord_bits = 4;
  w.preset = bgv::SecurityPreset::kToy;
  auto advised = AdviseConfig(w);
  ASSERT_TRUE(advised.ok());
  EXPECT_NE(advised->rationale.find("packed"), std::string::npos);
  EXPECT_NE(advised->rationale.find("masking degree"), std::string::npos);
  EXPECT_NE(advised->rationale.find("levels"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace sknn
