#include "knn/knn.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "data/generators.h"

namespace sknn {
namespace knn {
namespace {

TEST(PlaintextKnnTest, FindsExactNeighbours) {
  data::Dataset d(4, 1);
  d.set(0, 0, 10);
  d.set(1, 0, 20);
  d.set(2, 0, 30);
  d.set(3, 0, 40);
  auto result = PlaintextKnn(d, {22}, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].index, 1u);  // 20: distance 4
  EXPECT_EQ((*result)[1].index, 2u);  // 30: distance 64
}

TEST(PlaintextKnnTest, DistancesSortedAscending) {
  data::Dataset d = data::UniformDataset(200, 4, 100, 1);
  auto q = data::UniformQuery(4, 100, 2);
  auto result = PlaintextKnn(d, q, 10);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->size(); ++i) {
    EXPECT_LE((*result)[i - 1].squared_distance,
              (*result)[i].squared_distance);
  }
}

TEST(PlaintextKnnTest, TieBreaksByIndex) {
  data::Dataset d(3, 1);
  d.set(0, 0, 5);
  d.set(1, 0, 15);  // both at distance 25 from q=10
  d.set(2, 0, 10);
  auto result = PlaintextKnn(d, {10}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].index, 2u);
  EXPECT_EQ((*result)[1].index, 0u);  // ties: lower index first
}

TEST(PlaintextKnnTest, KClampedToN) {
  data::Dataset d = data::UniformDataset(5, 2, 10, 3);
  auto result = PlaintextKnn(d, {0, 0}, 100);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
}

TEST(PlaintextKnnTest, RejectsBadInput) {
  data::Dataset d = data::UniformDataset(5, 2, 10, 4);
  EXPECT_FALSE(PlaintextKnn(d, {1, 2, 3}, 2).ok());
  EXPECT_FALSE(PlaintextKnn(d, {1, 2}, 0).ok());
}

TEST(SelectKSmallestTest, BasicSelection) {
  std::vector<uint64_t> v = {50, 10, 40, 20, 30};
  auto idx = SelectKSmallest(v, 2);
  std::set<size_t> got(idx.begin(), idx.end());
  EXPECT_EQ(got, (std::set<size_t>{1, 3}));
}

TEST(SelectKSmallestTest, MatchesSortBasedReference) {
  Chacha20Rng rng(uint64_t{5});
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<uint64_t> v(100);
    for (auto& x : v) x = rng.UniformBelow(1 << 30);
    const size_t k = 1 + rng.UniformBelow(20);
    auto idx = SelectKSmallest(v, k);
    ASSERT_EQ(idx.size(), k);
    std::vector<uint64_t> selected;
    for (size_t i : idx) selected.push_back(v[i]);
    std::sort(selected.begin(), selected.end());
    std::vector<uint64_t> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    sorted.resize(k);
    EXPECT_EQ(selected, sorted);
  }
}

TEST(SelectKSmallestTest, DistinctIndices) {
  std::vector<uint64_t> v = {7, 7, 7, 7};
  auto idx = SelectKSmallest(v, 3);
  std::set<size_t> got(idx.begin(), idx.end());
  EXPECT_EQ(got.size(), 3u);
}

TEST(SelectKSmallestTest, KLargerThanInput) {
  std::vector<uint64_t> v = {3, 1};
  auto idx = SelectKSmallest(v, 10);
  EXPECT_EQ(idx.size(), 2u);
}

TEST(SelectKSmallestTest, EmptyInput) {
  EXPECT_TRUE(SelectKSmallest({}, 5).empty());
  EXPECT_TRUE(SelectKSmallest({1, 2}, 0).empty());
}

}  // namespace
}  // namespace knn
}  // namespace sknn
