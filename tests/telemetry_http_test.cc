// Tests for the admin/telemetry HTTP plane (src/obs/telemetry_http.h):
// endpoint semantics (/healthz /readyz /flightz /varz, 404/405/400
// paths), Prometheus exposition conformance of the live /metrics body
// (metric-name charset, cumulative monotone `le` buckets ending in
// +Inf, summary quantiles), and a scrape-while-recording hammer that
// races live scrapes against metric writers — the same race a
// Prometheus scraper runs against production traffic.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/flight_recorder.h"
#include "common/metrics_registry.h"
#include "common/trace_id.h"
#include "obs/telemetry_http.h"

namespace sknn {
namespace {

using obs::BuildInfo;
using obs::HttpGet;
using obs::TelemetryHttpServer;

// Sends a raw HTTP request (for methods/framing HttpGet can't produce)
// and returns the full response bytes.
std::string RawRequest(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// Starts a server with the standard endpoints and a toggleable ready
// check shared between the test body and the handler.
struct TestPlane {
  std::unique_ptr<TelemetryHttpServer> server;
  std::shared_ptr<std::atomic<bool>> ready =
      std::make_shared<std::atomic<bool>>(true);

  static TestPlane Start() {
    TestPlane p;
    auto server = TelemetryHttpServer::Start("127.0.0.1", 0);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    p.server = std::move(server.value());
    BuildInfo info;
    info.role = "test";
    info.params_fingerprint = "deadbeef";
    auto ready = p.ready;
    obs::RegisterStandardEndpoints(p.server.get(), info, [ready]() {
      if (!ready->load()) return UnavailableError("not ready (test)");
      return Status::Ok();
    });
    return p;
  }
  uint16_t port() const { return server->port(); }
};

// One `name value` or `name{labels} value` sample line.
struct Sample {
  std::string name;
  std::string labels;  // between { and }, empty if none
  double value = 0;
};

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

// Parses an exposition body into sample lines, EXPECTing conformance of
// every line along the way (names, comment structure, parseable values).
std::vector<Sample> ParseExposition(const std::string& body) {
  std::vector<Sample> samples;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.compare(0, 7, "# TYPE ") == 0 ||
                  line.compare(0, 7, "# HELP ") == 0)
          << "bad comment line: " << line;
      continue;
    }
    Sample s;
    const size_t brace = line.find('{');
    const size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "no value on line: " << line;
    if (space == std::string::npos) continue;
    if (brace != std::string::npos && brace < space) {
      const size_t close = line.find('}', brace);
      EXPECT_NE(close, std::string::npos) << "unclosed labels: " << line;
      if (close == std::string::npos) continue;
      s.name = line.substr(0, brace);
      s.labels = line.substr(brace + 1, close - brace - 1);
    } else {
      s.name = line.substr(0, space);
    }
    EXPECT_TRUE(ValidMetricName(s.name)) << "bad metric name: " << s.name;
    char* end = nullptr;
    s.value = std::strtod(line.c_str() + space + 1, &end);
    EXPECT_NE(end, line.c_str() + space + 1) << "bad value: " << line;
    samples.push_back(std::move(s));
  }
  return samples;
}

double LabelLe(const std::string& labels) {
  // le="..."; "+Inf" maps to infinity.
  const size_t q1 = labels.find('"');
  const size_t q2 = labels.rfind('"');
  const std::string v = labels.substr(q1 + 1, q2 - q1 - 1);
  if (v == "+Inf") return std::numeric_limits<double>::infinity();
  return std::strtod(v.c_str(), nullptr);
}

TEST(TelemetryHttp, HealthzAndUnknownPath) {
  TestPlane p = TestPlane::Start();
  auto res = HttpGet("127.0.0.1", p.port(), "/healthz");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->status, 200);
  EXPECT_EQ(res->body, "ok\n");

  res = HttpGet("127.0.0.1", p.port(), "/no-such-endpoint");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->status, 404);
}

TEST(TelemetryHttp, MethodNotAllowedAndHead) {
  TestPlane p = TestPlane::Start();
  const std::string post = RawRequest(
      p.port(), "POST /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0"
                "\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos) << post;

  // HEAD gets headers but no body.
  const std::string head =
      RawRequest(p.port(), "HEAD /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(head.find("200"), std::string::npos) << head;
  const size_t body_at = head.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(head.substr(body_at + 4), "");
}

TEST(TelemetryHttp, ReadyzFollowsReadyCheck) {
  TestPlane p = TestPlane::Start();
  auto res = HttpGet("127.0.0.1", p.port(), "/readyz");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->status, 200);
  EXPECT_EQ(res->body, "ready\n");

  p.ready->store(false);
  res = HttpGet("127.0.0.1", p.port(), "/readyz");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->status, 503);
  EXPECT_NE(res->body.find("not ready (test)"), std::string::npos);

  p.ready->store(true);
  res = HttpGet("127.0.0.1", p.port(), "/readyz");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->status, 200);
}

TEST(TelemetryHttp, FlightzServesRecordsAndRejectsBadParam) {
  TestPlane p = TestPlane::Start();
  FlightRecord record;
  record.seed = 4242;
  record.trace_id = 0xabcdef0123456789ull;
  record.ok = true;
  record.status = "ok";
  FlightRecorder::Global().Add(std::move(record));

  auto res = HttpGet("127.0.0.1", p.port(), "/flightz?n=1");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->status, 200);
  EXPECT_NE(res->body.find("\"flight_records\""), std::string::npos);
  EXPECT_NE(res->body.find("abcdef0123456789"), std::string::npos)
      << "flight record trace id missing from " << res->body;
  EXPECT_NE(res->body.find("\"total_in_ring\""), std::string::npos);

  res = HttpGet("127.0.0.1", p.port(), "/flightz?n=bogus");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->status, 400);
}

TEST(TelemetryHttp, VarzReportsBuildInfo) {
  TestPlane p = TestPlane::Start();
  auto res = HttpGet("127.0.0.1", p.port(), "/varz");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->status, 200);
  EXPECT_NE(res->body.find("\"role\":\"test\""), std::string::npos)
      << res->body;
  EXPECT_NE(res->body.find("\"params_fingerprint\":\"deadbeef\""),
            std::string::npos);
  // The process epoch must match the live one (restart-safe identity).
  EXPECT_NE(res->body.find(trace::TraceIdHex(trace::ProcessEpoch())),
            std::string::npos);
}

TEST(PrometheusConformance, MetricsScrapeIsWellFormed) {
  TestPlane p = TestPlane::Start();
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test.promconf.requests")->Add(7);
  registry.GetGauge("test.promconf.depth")->Set(3.5);
  auto* hist = registry.GetHistogram("test.promconf.latency_us");
  const uint64_t values[] = {1, 2, 3, 9, 120, 4096, 123456, 1ull << 33};
  for (uint64_t v : values) hist->Record(v);

  auto res = HttpGet("127.0.0.1", p.port(), "/metrics");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->status, 200);
  // ParseExposition EXPECTs name/comment/value conformance per line.
  const std::vector<Sample> samples = ParseExposition(res->body);
  ASSERT_FALSE(samples.empty());
  std::map<std::string, double> by_name;
  for (const Sample& s : samples) {
    if (s.labels.empty()) by_name[s.name] = s.value;
  }
  // Dotted registry names come out underscore-sanitized with the
  // recorded values intact.
  ASSERT_TRUE(by_name.count("test_promconf_requests"));
  EXPECT_GE(by_name["test_promconf_requests"], 7);
  ASSERT_TRUE(by_name.count("test_promconf_depth"));
  EXPECT_DOUBLE_EQ(by_name["test_promconf_depth"], 3.5);
  // The scrape itself shows up in the obs.http instrumentation.
  ASSERT_TRUE(by_name.count("obs_http_requests"));
  EXPECT_GE(by_name["obs_http_requests"], 1);
}

TEST(PrometheusConformance, HistogramBucketsAreCumulativeMonotone) {
  TestPlane p = TestPlane::Start();
  auto& registry = MetricsRegistry::Global();
  auto* hist = registry.GetHistogram("test.promconf2.latency_us");
  const uint64_t values[] = {1, 1, 2, 9, 120, 120, 4096, 123456, 1ull << 33};
  for (uint64_t v : values) hist->Record(v);

  auto res = HttpGet("127.0.0.1", p.port(), "/metrics");
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->status, 200);
  const std::vector<Sample> samples = ParseExposition(res->body);
  ASSERT_FALSE(samples.empty());

  // Group histogram bucket series by base name; validate each.
  std::map<std::string, std::vector<Sample>> buckets;
  std::map<std::string, double> counts;
  bool saw_quantile_summary = false;
  for (const Sample& s : samples) {
    if (s.name.size() > 7 &&
        s.name.compare(s.name.size() - 7, 7, "_bucket") == 0) {
      ASSERT_NE(s.labels.find("le="), std::string::npos) << s.name;
      buckets[s.name.substr(0, s.name.size() - 7)].push_back(s);
    } else if (s.name.size() > 6 &&
               s.name.compare(s.name.size() - 6, 6, "_count") == 0) {
      counts[s.name.substr(0, s.name.size() - 6)] = s.value;
    } else if (s.labels.find("quantile=") != std::string::npos) {
      saw_quantile_summary = true;
      EXPECT_GE(s.value, 0) << s.name;
    }
  }
  ASSERT_FALSE(buckets.empty());
  EXPECT_TRUE(saw_quantile_summary);
  for (const auto& [base, series] : buckets) {
    double prev_le = -1, prev_count = -1;
    for (const Sample& s : series) {
      const double le = LabelLe(s.labels);
      EXPECT_GT(le, prev_le) << base << ": le not increasing";
      EXPECT_GE(s.value, prev_count) << base << ": counts not cumulative";
      prev_le = le;
      prev_count = s.value;
    }
    // The series must terminate in +Inf, and since no writers are racing
    // this scrape, +Inf must equal the _count sample.
    EXPECT_TRUE(std::isinf(prev_le)) << base << ": missing +Inf bucket";
    ASSERT_TRUE(counts.count(base)) << base << ": missing _count";
    EXPECT_EQ(prev_count, counts[base]) << base;
  }

  // Our freshly-recorded histogram is present with the right count.
  ASSERT_TRUE(counts.count("test_promconf2_latency_us"));
  EXPECT_GE(counts["test_promconf2_latency_us"], 9);
}

TEST(PrometheusConformance, ScrapeWhileRecordingHammer) {
  TestPlane p = TestPlane::Start();
  auto& registry = MetricsRegistry::Global();
  std::atomic<bool> running{true};

  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&registry, &running, w]() {
      auto* counter = registry.GetCounter("test.hammer.ops");
      auto* hist = registry.GetHistogram("test.hammer.latency");
      uint64_t v = 1 + static_cast<uint64_t>(w);
      while (running.load(std::memory_order_relaxed)) {
        counter->Increment();
        hist->Record(v);
        v = v * 2862933555777941757ull + 3037000493ull;  // cheap LCG
        v %= (1ull << 40);
      }
    });
  }

  int scrapes = 0;
  for (int i = 0; i < 25; ++i) {
    auto res = HttpGet("127.0.0.1", p.port(), "/metrics");
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_EQ(res->status, 200);
    // Every mid-write scrape must still be structurally conformant.
    // (Bucket-vs-count equality is NOT asserted here: writers race the
    // snapshot, so the totals may legitimately be in motion.)
    const std::vector<Sample> samples = ParseExposition(res->body);
    EXPECT_FALSE(samples.empty());
    std::map<std::string, double> prev_le, prev_count;
    for (const Sample& s : samples) {
      if (s.name.size() > 7 &&
          s.name.compare(s.name.size() - 7, 7, "_bucket") == 0) {
        const double le = LabelLe(s.labels);
        EXPECT_GT(le, prev_le.count(s.name) ? prev_le[s.name] : -1.0)
            << s.name;
        EXPECT_GE(s.value,
                  prev_count.count(s.name) ? prev_count[s.name] : -1.0)
            << s.name;
        prev_le[s.name] = le;
        prev_count[s.name] = s.value;
      }
    }
    ++scrapes;
  }
  running.store(false);
  for (auto& t : writers) t.join();
  EXPECT_EQ(scrapes, 25);
}

}  // namespace
}  // namespace sknn
