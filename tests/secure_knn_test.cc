#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/session.h"
#include "data/generators.h"
#include "knn/knn.h"

// End-to-end tests of the secure k-NN protocol: exactness against the
// plaintext reference on both layouts, edge cases, metrics, and the
// structural security properties (one round, fresh masks, permutation).

namespace sknn {
namespace core {
namespace {

ProtocolConfig SmallConfig(Layout layout) {
  ProtocolConfig cfg;
  cfg.k = 3;
  cfg.poly_degree = 2;
  cfg.coord_bits = 4;
  cfg.dims = 2;
  cfg.layout = layout;
  cfg.preset = bgv::SecurityPreset::kToy;  // n=1024: fast tests
  cfg.plain_bits = 33;
  cfg.threads = 1;
  cfg.levels = cfg.MinimumLevels();
  return cfg;
}

// Sorted squared distances of the returned points (the protocol's output
// order and tie choices are implementation-defined; distance multisets are
// the correct invariant).
std::vector<uint64_t> SortedDistances(
    const std::vector<std::vector<uint64_t>>& points,
    const std::vector<uint64_t>& query) {
  std::vector<uint64_t> out;
  for (const auto& p : points) {
    uint64_t sum = 0;
    for (size_t j = 0; j < query.size(); ++j) {
      uint64_t d = p[j] > query[j] ? p[j] - query[j] : query[j] - p[j];
      sum += d * d;
    }
    out.push_back(sum);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> ReferenceDistances(const data::Dataset& data,
                                         const std::vector<uint64_t>& query,
                                         size_t k) {
  auto ref = knn::PlaintextKnn(data, query, k);
  EXPECT_TRUE(ref.ok());
  std::vector<uint64_t> out;
  for (const auto& nb : ref.value()) out.push_back(nb.squared_distance);
  std::sort(out.begin(), out.end());
  return out;
}

bool IsDatasetPoint(const data::Dataset& data,
                    const std::vector<uint64_t>& p) {
  for (size_t i = 0; i < data.num_points(); ++i) {
    if (data.point(i) == p) return true;
  }
  return false;
}

struct E2EParam {
  Layout layout;
  size_t n;
  size_t dims;
  size_t k;
  size_t poly_degree;
};

class SecureKnnE2ETest : public ::testing::TestWithParam<E2EParam> {};

TEST_P(SecureKnnE2ETest, MatchesPlaintextKnn) {
  const E2EParam p = GetParam();
  ProtocolConfig cfg = SmallConfig(p.layout);
  cfg.dims = p.dims;
  cfg.k = p.k;
  cfg.poly_degree = p.poly_degree;
  cfg.levels = cfg.MinimumLevels();
  data::Dataset dataset =
      data::UniformDataset(p.n, p.dims, (1u << cfg.coord_bits) - 1, 42);
  auto session = SecureKnnSession::Create(cfg, dataset, 7);
  ASSERT_TRUE(session.ok()) << session.status();

  for (uint64_t qseed : {1ull, 2ull}) {
    std::vector<uint64_t> query =
        data::UniformQuery(p.dims, (1u << cfg.coord_bits) - 1, qseed);
    auto result = (*session)->RunQuery(query);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->neighbours.size(), std::min(p.k, p.n));
    // Every returned point is a real dataset point.
    for (const auto& pt : result->neighbours) {
      EXPECT_TRUE(IsDatasetPoint(dataset, pt));
    }
    // Exactness: distance multiset equals plaintext k-NN.
    EXPECT_EQ(SortedDistances(result->neighbours, query),
              ReferenceDistances(dataset, query, p.k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, SecureKnnE2ETest,
    ::testing::Values(
        E2EParam{Layout::kPerPoint, 12, 2, 3, 2},
        E2EParam{Layout::kPerPoint, 20, 5, 4, 1},
        E2EParam{Layout::kPerPoint, 8, 3, 8, 2},   // k == n
        E2EParam{Layout::kPerPoint, 6, 1, 2, 2},   // 1-dimensional
        E2EParam{Layout::kPacked, 12, 2, 3, 2},
        E2EParam{Layout::kPacked, 700, 2, 5, 2},   // multiple units + padding
        E2EParam{Layout::kPacked, 64, 7, 4, 2},    // non-pow2 dims
        E2EParam{Layout::kPacked, 1030, 3, 3, 2},  // > one unit, pads
        E2EParam{Layout::kPacked, 33, 2, 1, 1}),   // k=1, degree-1 mask
    [](const auto& info) {
      const E2EParam& p = info.param;
      return std::string(p.layout == Layout::kPerPoint ? "PerPoint"
                                                       : "Packed") +
             "_n" + std::to_string(p.n) + "_d" + std::to_string(p.dims) +
             "_k" + std::to_string(p.k) + "_D" +
             std::to_string(p.poly_degree);
    });

TEST(SecureKnnTest, KLargerThanNClamps) {
  ProtocolConfig cfg = SmallConfig(Layout::kPacked);
  cfg.k = 50;
  data::Dataset dataset = data::UniformDataset(5, 2, 15, 1);
  auto session = SecureKnnSession::Create(cfg, dataset, 2);
  ASSERT_TRUE(session.ok()) << session.status();
  auto result = (*session)->RunQuery({3, 3});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->k, 5u);
  EXPECT_EQ(result->neighbours.size(), 5u);
}

TEST(SecureKnnTest, SingleRoundTripBetweenParties) {
  ProtocolConfig cfg = SmallConfig(Layout::kPacked);
  data::Dataset dataset = data::UniformDataset(40, 2, 15, 3);
  auto session = SecureKnnSession::Create(cfg, dataset, 4);
  ASSERT_TRUE(session.ok());
  auto result = (*session)->RunQuery({1, 2});
  ASSERT_TRUE(result.ok());
  // The paper's headline: exactly one round of communication. Our link
  // counts direction flips; one A->B burst + one B->A burst = 2 flips.
  EXPECT_EQ(result->ab_link.rounds, 2u);
  EXPECT_GT(result->ab_link.bytes_a_to_b, 0u);
  EXPECT_GT(result->ab_link.bytes_b_to_a, 0u);
}

TEST(SecureKnnTest, OpCountsMatchTableOne) {
  // Table 1 row "ours": O(n) decryptions at B, O(nk) encryptions at B.
  ProtocolConfig cfg = SmallConfig(Layout::kPerPoint);
  cfg.k = 3;
  const size_t n = 10;
  data::Dataset dataset = data::UniformDataset(n, 2, 15, 5);
  auto session = SecureKnnSession::Create(cfg, dataset, 6);
  ASSERT_TRUE(session.ok());
  auto result = (*session)->RunQuery({7, 7});
  ASSERT_TRUE(result.ok());
  // Per-point layout: exactly n decryptions and n*k indicator encryptions.
  EXPECT_EQ(result->party_b_ops.decryptions, n);
  EXPECT_EQ(result->party_b_ops.encryptions, n * cfg.k);
  // Party A: O(n*(k + d + D)) homomorphic work, no encryptions, and no
  // decryptions anywhere outside B/client.
  EXPECT_EQ(result->party_a_ops.encryptions, 0u);
  EXPECT_EQ(result->party_a_ops.decryptions, 0u);
  EXPECT_GE(result->party_a_ops.he_multiplications, n * (1 + cfg.k));
  EXPECT_EQ(result->client_ops.decryptions, cfg.k);
}

TEST(SecureKnnTest, MaskRefreshedPerQuery) {
  ProtocolConfig cfg = SmallConfig(Layout::kPacked);
  data::Dataset dataset = data::UniformDataset(30, 2, 15, 8);
  auto session = SecureKnnSession::Create(cfg, dataset, 9);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->RunQuery({1, 1}).ok());
  auto coeffs1 = (*session)->party_a().last_mask()->coefficients();
  ASSERT_TRUE((*session)->RunQuery({1, 1}).ok());
  auto coeffs2 = (*session)->party_a().last_mask()->coefficients();
  EXPECT_NE(coeffs1, coeffs2);
}

TEST(SecureKnnTest, SamePointTwiceObservedDifferentlyByB) {
  // Search-pattern hiding: issuing the identical query twice must present
  // Party B with different masked values (fresh polynomial + permutation).
  ProtocolConfig cfg = SmallConfig(Layout::kPacked);
  data::Dataset dataset = data::UniformDataset(50, 2, 15, 10);
  auto session = SecureKnnSession::Create(cfg, dataset, 11);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->RunQuery({4, 9}).ok());
  auto seen1 = (*session)->party_b().observed_masked_values();
  ASSERT_TRUE((*session)->RunQuery({4, 9}).ok());
  auto seen2 = (*session)->party_b().observed_masked_values();
  EXPECT_NE(seen1, seen2);
}

TEST(SecureKnnTest, MaskedValuesAreNotTrueDistances) {
  ProtocolConfig cfg = SmallConfig(Layout::kPerPoint);
  data::Dataset dataset = data::UniformDataset(15, 2, 15, 12);
  auto session = SecureKnnSession::Create(cfg, dataset, 13);
  ASSERT_TRUE(session.ok());
  std::vector<uint64_t> query = {2, 3};
  ASSERT_TRUE((*session)->RunQuery(query).ok());
  // B observed n masked values; none equal any true squared distance
  // except with negligible probability (coefficients are > 1).
  std::set<uint64_t> true_distances;
  for (size_t i = 0; i < dataset.num_points(); ++i) {
    true_distances.insert(data::SquaredDistance(dataset, i, query));
  }
  size_t collisions = 0;
  for (uint64_t v : (*session)->party_b().observed_masked_values()) {
    if (true_distances.count(v)) ++collisions;
  }
  EXPECT_EQ(collisions, 0u);
}

TEST(SecureKnnTest, EquidistantPointsReturnValidSet) {
  // Four corners at identical distance from the centre query: any k of the
  // tied points is exact; the distance multiset must still match.
  ProtocolConfig cfg = SmallConfig(Layout::kPacked);
  cfg.k = 2;
  data::Dataset dataset(4, 2);
  dataset.set(0, 0, 0);
  dataset.set(0, 1, 0);
  dataset.set(1, 0, 0);
  dataset.set(1, 1, 10);
  dataset.set(2, 0, 10);
  dataset.set(2, 1, 0);
  dataset.set(3, 0, 10);
  dataset.set(3, 1, 10);
  auto session = SecureKnnSession::Create(cfg, dataset, 14);
  ASSERT_TRUE(session.ok());
  auto result = (*session)->RunQuery({5, 5});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(SortedDistances(result->neighbours, {5, 5}),
            ReferenceDistances(dataset, {5, 5}, 2));
}

TEST(SecureKnnTest, DeterministicWithSameSeed) {
  ProtocolConfig cfg = SmallConfig(Layout::kPacked);
  data::Dataset dataset = data::UniformDataset(25, 2, 15, 15);
  auto s1 = SecureKnnSession::Create(cfg, dataset, 99);
  auto s2 = SecureKnnSession::Create(cfg, dataset, 99);
  ASSERT_TRUE(s1.ok() && s2.ok());
  auto r1 = (*s1)->RunQuery({8, 8});
  auto r2 = (*s2)->RunQuery({8, 8});
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->neighbours, r2->neighbours);
}

TEST(SecureKnnTest, RejectsOutOfRangeData) {
  ProtocolConfig cfg = SmallConfig(Layout::kPacked);
  data::Dataset dataset = data::UniformDataset(10, 2, 100, 16);  // > 2^4
  EXPECT_FALSE(SecureKnnSession::Create(cfg, dataset, 17).ok());
}

TEST(SecureKnnTest, RejectsOutOfRangeQuery) {
  ProtocolConfig cfg = SmallConfig(Layout::kPacked);
  data::Dataset dataset = data::UniformDataset(10, 2, 15, 18);
  auto session = SecureKnnSession::Create(cfg, dataset, 19);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE((*session)->RunQuery({1000, 0}).ok());
  EXPECT_FALSE((*session)->RunQuery({1, 2, 3}).ok());
}

TEST(SecureKnnTest, SetupReportPopulated) {
  ProtocolConfig cfg = SmallConfig(Layout::kPacked);
  data::Dataset dataset = data::UniformDataset(20, 2, 15, 20);
  auto session = SecureKnnSession::Create(cfg, dataset, 21);
  ASSERT_TRUE(session.ok());
  const SetupReport& report = (*session)->setup_report();
  EXPECT_GT(report.encrypted_db_bytes, 0u);
  EXPECT_GT(report.evaluation_key_bytes, 0u);
  EXPECT_GT(report.owner_ops.encryptions, 0u);
  EXPECT_GT(report.estimated_security_bits, 0.0);
}

TEST(SecureKnnTest, CompressedIndicatorsMatchUncompressed) {
  // Seed-compressed symmetric indicators must yield identical results with
  // strictly fewer bytes on the B->A direction.
  data::Dataset dataset = data::UniformDataset(30, 2, 15, 77);
  ProtocolConfig on = SmallConfig(Layout::kPacked);
  ProtocolConfig off = on;
  off.compress_indicators = false;
  auto s_on = SecureKnnSession::Create(on, dataset, 5);
  auto s_off = SecureKnnSession::Create(off, dataset, 5);
  ASSERT_TRUE(s_on.ok() && s_off.ok());
  auto r_on = (*s_on)->RunQuery({4, 4});
  auto r_off = (*s_off)->RunQuery({4, 4});
  ASSERT_TRUE(r_on.ok() && r_off.ok());
  EXPECT_EQ(SortedDistances(r_on->neighbours, {4, 4}),
            SortedDistances(r_off->neighbours, {4, 4}));
  // Acceptance floor for the seeded encoding: >= 1.8x fewer B->A bytes
  // (on * 9 <= off * 5  <=>  off / on >= 1.8). The indicator matrix
  // dominates the leg, and the seeded form halves each ciphertext minus
  // the 32-byte seed and framing, so the measured ratio sits just under
  // 2x.
  EXPECT_LE(r_on->ab_link.bytes_b_to_a * 9, r_off->ab_link.bytes_b_to_a * 5)
      << "b_to_a bytes: seeded=" << r_on->ab_link.bytes_b_to_a
      << " full=" << r_off->ab_link.bytes_b_to_a;
}

TEST(SecureKnnTest, MultiThreadedPartyAMatchesSingleThreaded) {
  data::Dataset dataset = data::UniformDataset(40, 3, 15, 22);
  ProtocolConfig cfg1 = SmallConfig(Layout::kPacked);
  cfg1.dims = 3;
  ProtocolConfig cfg4 = cfg1;
  cfg4.threads = 4;
  auto s1 = SecureKnnSession::Create(cfg1, dataset, 23);
  auto s4 = SecureKnnSession::Create(cfg4, dataset, 23);
  ASSERT_TRUE(s1.ok() && s4.ok());
  auto r1 = (*s1)->RunQuery({5, 6, 7});
  auto r4 = (*s4)->RunQuery({5, 6, 7});
  ASSERT_TRUE(r1.ok() && r4.ok());
  EXPECT_EQ(r1->neighbours, r4->neighbours);
}

}  // namespace
}  // namespace core
}  // namespace sknn
