#include "core/data_owner.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace sknn {
namespace core {
namespace {

ProtocolConfig Config() {
  ProtocolConfig cfg;
  cfg.k = 3;
  cfg.dims = 2;
  cfg.coord_bits = 4;
  cfg.poly_degree = 2;
  cfg.layout = Layout::kPacked;
  cfg.preset = bgv::SecurityPreset::kToy;
  cfg.levels = cfg.MinimumLevels();
  return cfg;
}

TEST(DataOwnerTest, CreatesAllKeyMaterial) {
  data::Dataset dataset = data::UniformDataset(10, 2, 15, 1);
  auto owner = DataOwner::Create(Config(), dataset, 2);
  ASSERT_TRUE(owner.ok()) << owner.status();
  EXPECT_FALSE((*owner)->relin().key.digits.empty());
  EXPECT_FALSE((*owner)->galois().keys.empty());
  EXPECT_GT((*owner)->context()->n(), 0u);
}

TEST(DataOwnerTest, EncryptedDatabaseHasLayoutUnitCount) {
  data::Dataset dataset = data::UniformDataset(1200, 2, 15, 3);
  auto owner = DataOwner::Create(Config(), dataset, 4);
  ASSERT_TRUE(owner.ok());
  auto units = (*owner)->EncryptDatabase();
  ASSERT_TRUE(units.ok());
  EXPECT_EQ(units->size(), (*owner)->layout().num_units());
  EXPECT_EQ((*owner)->ops().encryptions, units->size());
  for (const auto& ct : units.value()) {
    EXPECT_EQ(ct.level, (*owner)->context()->max_level());
  }
}

TEST(DataOwnerTest, RejectsDimensionMismatch) {
  data::Dataset dataset = data::UniformDataset(10, 3, 15, 5);
  EXPECT_FALSE(DataOwner::Create(Config(), dataset, 6).ok());
}

TEST(DataOwnerTest, RejectsOutOfRangeValues) {
  data::Dataset dataset = data::UniformDataset(10, 2, 300, 7);
  EXPECT_FALSE(DataOwner::Create(Config(), dataset, 8).ok());
}

TEST(DataOwnerTest, RejectsMaskingDegreeThatCannotFit) {
  // 30-bit coordinates with degree-2 masking: x^2 alone exceeds the 33-bit
  // plaintext space.
  ProtocolConfig cfg = Config();
  cfg.coord_bits = 20;
  data::Dataset dataset = data::UniformDataset(4, 2, (1u << 20) - 1, 9);
  auto owner = DataOwner::Create(cfg, dataset, 10);
  EXPECT_FALSE(owner.ok());
}

TEST(DataOwnerTest, DeterministicKeygenPerSeed) {
  data::Dataset dataset = data::UniformDataset(5, 2, 15, 11);
  auto o1 = DataOwner::Create(Config(), dataset, 99);
  auto o2 = DataOwner::Create(Config(), dataset, 99);
  ASSERT_TRUE(o1.ok() && o2.ok());
  EXPECT_EQ((*o1)->sk().s_coeff, (*o2)->sk().s_coeff);
  auto o3 = DataOwner::Create(Config(), dataset, 100);
  ASSERT_TRUE(o3.ok());
  EXPECT_NE((*o1)->sk().s_coeff, (*o3)->sk().s_coeff);
}

}  // namespace
}  // namespace core
}  // namespace sknn
