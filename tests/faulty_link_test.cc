// FaultyLink + ResilientChannel: deterministic fault injection and the
// receive-side recovery machinery (dedup, reorder stash, poll/backoff,
// typed timeouts), plus FaultSpec parsing.

#include "net/faulty_link.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "net/resilient_channel.h"

namespace sknn {
namespace net {
namespace {

// Retry policy tuned for tests: enough polls to beat every delay spec
// used here, no real sleeping.
RetryPolicy FastPolicy() {
  RetryPolicy p;
  p.max_receive_polls = 32;
  p.base_backoff_us = 0;
  p.max_backoff_us = 0;
  return p;
}

std::vector<uint8_t> Payload(uint8_t tag, size_t len = 32) {
  return std::vector<uint8_t>(len, tag);
}

TEST(FaultSpecTest, ParsesModesAndRejectsGarbage) {
  auto spec = ParseFaultSpec("drop:0.05,flip:0.01,delay:0.2:7");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_DOUBLE_EQ(spec->drop, 0.05);
  EXPECT_DOUBLE_EQ(spec->flip, 0.01);
  EXPECT_DOUBLE_EQ(spec->delay, 0.2);
  EXPECT_EQ(spec->delay_polls, 7);
  EXPECT_TRUE(spec->any());

  EXPECT_TRUE(ParseFaultSpec("").ok());
  EXPECT_FALSE(ParseFaultSpec("")->any());
  EXPECT_FALSE(ParseFaultSpec("drop:1.5").ok());
  EXPECT_FALSE(ParseFaultSpec("warp:0.1").ok());
  EXPECT_FALSE(ParseFaultSpec("drop").ok());
  EXPECT_FALSE(ParseFaultSpec("flip:0.1:3").ok());
  EXPECT_FALSE(ParseFaultSpec("delay:0.1:0").ok());
}

TEST(FaultSpecTest, DebugStringListsActiveModes) {
  auto spec = ParseFaultSpec("drop:0.25,reorder:0.5").value();
  const std::string s = spec.DebugString();
  EXPECT_NE(s.find("drop:0.25"), std::string::npos);
  EXPECT_NE(s.find("reorder:0.5"), std::string::npos);
  EXPECT_EQ(s.find("flip"), std::string::npos);
}

TEST(FaultyLinkTest, NoFaultsIsTransparent) {
  InMemoryLink raw;
  FaultSpec none;
  FaultyLink link(raw.a_endpoint(), raw.b_endpoint(), none, none, 1);
  ASSERT_TRUE(link.a_endpoint()->Send(Payload(1)).ok());
  auto msg = link.b_endpoint()->Receive();
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value(), Payload(1));
  EXPECT_EQ(link.faults_injected(), 0u);
}

TEST(FaultyLinkTest, DropIsDeterministicAndCounted) {
  FaultSpec spec;
  spec.drop = 0.5;
  auto run = [&](uint64_t seed) {
    InMemoryLink raw;
    FaultyLink link(raw.a_endpoint(), raw.b_endpoint(), spec, spec, seed);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(link.a_endpoint()->Send(Payload(1)).ok());
    }
    return raw.stats().messages_a_to_b;
  };
  const uint64_t delivered = run(7);
  EXPECT_EQ(delivered, run(7)) << "same seed must replay identically";
  EXPECT_GT(delivered, 20u);
  EXPECT_LT(delivered, 80u);
}

TEST(FaultyLinkTest, InjectionCountsAreExported) {
  MetricsRegistry::Counter* drops =
      MetricsRegistry::Global().GetCounter("net.faults.drop");
  const uint64_t before = drops->value();
  FaultSpec spec;
  spec.drop = 1.0;
  InMemoryLink raw;
  FaultyLink link(raw.a_endpoint(), raw.b_endpoint(), spec, spec, 3);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(link.a_endpoint()->Send(Payload(2)).ok());
  }
  EXPECT_EQ(drops->value(), before + 10);
  EXPECT_EQ(raw.stats().messages_a_to_b, 0u);
  EXPECT_EQ(link.faults_injected(), 10u);
}

TEST(ResilientChannelTest, FramedRoundTripOverCleanLink) {
  InMemoryLink raw;
  ResilientChannel a(raw.a_endpoint(), FastPolicy(), 1, "A");
  ResilientChannel b(raw.b_endpoint(), FastPolicy(), 2, "B");
  ASSERT_TRUE(a.SendMessage(MessageType::kDistances, Payload(1)).ok());
  ASSERT_TRUE(a.SendMessage(MessageType::kDistances, Payload(2)).ok());
  auto m1 = b.ReceiveMessage(MessageType::kDistances);
  auto m2 = b.ReceiveMessage(MessageType::kDistances);
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_EQ(m1.value(), Payload(1));
  EXPECT_EQ(m2.value(), Payload(2));
  // Wire bytes = payload + one header per message.
  EXPECT_EQ(raw.stats().bytes_a_to_b, 2 * (32 + kFrameHeaderBytes));
}

TEST(ResilientChannelTest, WrongTypeIsTypedDesyncError) {
  InMemoryLink raw;
  ResilientChannel a(raw.a_endpoint(), FastPolicy(), 1, "A");
  ResilientChannel b(raw.b_endpoint(), FastPolicy(), 2, "B");
  ASSERT_TRUE(a.SendMessage(MessageType::kDistances, Payload(1)).ok());
  auto msg = b.ReceiveMessage(MessageType::kIndicators);
  ASSERT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(msg.status().IsTransient());
}

TEST(ResilientChannelTest, DuplicatesAreConsumedSilently) {
  FaultSpec spec;
  spec.dup = 1.0;
  InMemoryLink raw;
  FaultyLink link(raw.a_endpoint(), raw.b_endpoint(), spec, spec, 5);
  ResilientChannel a(link.a_endpoint(), FastPolicy(), 1, "A");
  ResilientChannel b(link.b_endpoint(), FastPolicy(), 2, "B");
  for (uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(a.SendMessage(MessageType::kOpaque, Payload(i)).ok());
  }
  EXPECT_EQ(raw.stats().messages_a_to_b, 10u);  // every frame doubled
  for (uint8_t i = 0; i < 5; ++i) {
    auto msg = b.ReceiveMessage(MessageType::kOpaque);
    ASSERT_TRUE(msg.ok()) << msg.status();
    EXPECT_EQ(msg.value(), Payload(i)) << "duplicate leaked through";
  }
  // Nothing but the 5 duplicates is left.
  EXPECT_FALSE(b.Receive().ok());
}

TEST(ResilientChannelTest, ReorderedFramesAreReassembledInOrder) {
  FaultSpec spec;
  spec.reorder = 1.0;  // every message held and released after the next
  InMemoryLink raw;
  FaultyLink link(raw.a_endpoint(), raw.b_endpoint(), spec, spec, 6);
  ResilientChannel a(link.a_endpoint(), FastPolicy(), 1, "A");
  ResilientChannel b(link.b_endpoint(), FastPolicy(), 2, "B");
  for (uint8_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(a.SendMessage(MessageType::kOpaque, Payload(i)).ok());
  }
  for (uint8_t i = 0; i < 6; ++i) {
    auto msg = b.ReceiveMessage(MessageType::kOpaque);
    ASSERT_TRUE(msg.ok()) << msg.status();
    EXPECT_EQ(msg.value(), Payload(i)) << "order not restored at " << int{i};
  }
}

TEST(ResilientChannelTest, DelayedFrameArrivesAfterPolling) {
  FaultSpec spec;
  spec.delay = 1.0;
  spec.delay_polls = 4;
  InMemoryLink raw;
  FaultyLink link(raw.a_endpoint(), raw.b_endpoint(), spec, spec, 8);
  ResilientChannel a(link.a_endpoint(), FastPolicy(), 1, "A");
  ResilientChannel b(link.b_endpoint(), FastPolicy(), 2, "B");
  ASSERT_TRUE(a.SendMessage(MessageType::kOpaque, Payload(9)).ok());
  EXPECT_EQ(raw.stats().messages_a_to_b, 0u) << "message should be staged";
  auto msg = b.ReceiveMessage(MessageType::kOpaque);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_EQ(msg.value(), Payload(9));
}

TEST(ResilientChannelTest, DropYieldsDeadlineExceeded) {
  FaultSpec spec;
  spec.drop = 1.0;
  InMemoryLink raw;
  FaultyLink link(raw.a_endpoint(), raw.b_endpoint(), spec, spec, 9);
  RetryPolicy policy = FastPolicy();
  policy.max_receive_polls = 4;
  ResilientChannel a(link.a_endpoint(), policy, 1, "A");
  ResilientChannel b(link.b_endpoint(), policy, 2, "B");
  ASSERT_TRUE(a.SendMessage(MessageType::kDistances, Payload(1)).ok());
  auto msg = b.ReceiveMessage(MessageType::kDistances);
  ASSERT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(msg.status().IsTransient());
}

TEST(ResilientChannelTest, BitFlipYieldsDataLoss) {
  FaultSpec spec;
  spec.flip = 1.0;
  InMemoryLink raw;
  FaultyLink link(raw.a_endpoint(), raw.b_endpoint(), spec, spec, 10);
  ResilientChannel a(link.a_endpoint(), FastPolicy(), 1, "A");
  ResilientChannel b(link.b_endpoint(), FastPolicy(), 2, "B");
  ASSERT_TRUE(a.SendMessage(MessageType::kDistances, Payload(1)).ok());
  auto msg = b.ReceiveMessage(MessageType::kDistances);
  ASSERT_FALSE(msg.ok());
  // A flip can land anywhere, including the version byte: corrupt
  // (kDataLoss, transient) is the norm, version mismatch the rare fatal.
  EXPECT_TRUE(msg.status().code() == StatusCode::kDataLoss ||
              msg.status().code() == StatusCode::kFailedPrecondition)
      << msg.status();
}

TEST(ResilientChannelTest, EpochResetAfterDrainRecoversDesync) {
  FaultSpec spec;  // clean link; desync provoked by a manual raw drain
  InMemoryLink raw;
  FaultyLink link(raw.a_endpoint(), raw.b_endpoint(), spec, spec, 11);
  RetryPolicy policy = FastPolicy();
  policy.max_receive_polls = 3;
  ResilientChannel a(link.a_endpoint(), policy, 1, "A");
  ResilientChannel b(link.b_endpoint(), policy, 2, "B");
  ASSERT_TRUE(a.SendMessage(MessageType::kOpaque, Payload(1)).ok());
  raw.Drain();  // "the network ate it"
  EXPECT_FALSE(b.ReceiveMessage(MessageType::kOpaque).ok());
  // Leg recovery: drain (already empty), reset epochs, re-issue.
  link.Reset();
  a.ResetEpoch();
  b.ResetEpoch();
  ASSERT_TRUE(a.SendMessage(MessageType::kOpaque, Payload(1)).ok());
  auto msg = b.ReceiveMessage(MessageType::kOpaque);
  ASSERT_TRUE(msg.ok()) << msg.status();
  EXPECT_EQ(msg.value(), Payload(1));
}

TEST(ChannelTest, EmptyQueueErrorIsUnavailableWithContext) {
  InMemoryLink link;
  ASSERT_TRUE(link.a_endpoint()->Send(Payload(1)).ok());
  ASSERT_TRUE(link.b_endpoint()->Receive().ok());
  auto msg = link.b_endpoint()->Receive();
  ASSERT_FALSE(msg.ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(msg.status().IsTransient());
  // Direction, counts, and the expected message index are all reported.
  const std::string& text = msg.status().message();
  EXPECT_NE(text.find("A->B"), std::string::npos) << text;
  EXPECT_NE(text.find("expected message #1"), std::string::npos) << text;
  EXPECT_NE(text.find("endpoint B"), std::string::npos) << text;
}

}  // namespace
}  // namespace net
}  // namespace sknn
