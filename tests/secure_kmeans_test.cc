#include "extensions/secure_kmeans.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace sknn {
namespace extensions {
namespace {

KMeansConfig SmallConfig(size_t clusters, size_t dims) {
  KMeansConfig cfg;
  cfg.num_clusters = clusters;
  cfg.dims = dims;
  cfg.coord_bits = 4;
  cfg.poly_degree = 2;
  cfg.iterations = 4;
  cfg.preset = bgv::SecurityPreset::kToy;
  cfg.seed = 101;
  return cfg;
}

TEST(SecureKMeansTest, MatchesPlaintextLloydExactly) {
  data::Dataset dataset = data::UniformDataset(30, 2, 15, 1);
  auto km = SecureKMeans::Create(SmallConfig(3, 2), dataset);
  ASSERT_TRUE(km.ok()) << km.status();
  auto result = (*km)->Run();
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<std::vector<uint64_t>> init = {
      dataset.point(0), dataset.point(1), dataset.point(2)};
  std::vector<size_t> ref_sizes;
  auto ref = SecureKMeans::ReferenceLloyd(dataset, init, 4, &ref_sizes);
  EXPECT_EQ(result->centroids, ref);
  EXPECT_EQ(result->sizes, ref_sizes);
}

TEST(SecureKMeansTest, WellSeparatedClustersFound) {
  // Two obvious blobs: around (1,1) and (14,14).
  data::Dataset dataset(10, 2);
  for (size_t i = 0; i < 5; ++i) {
    dataset.set(i, 0, 1 + i % 2);
    dataset.set(i, 1, 1 + i % 3);
  }
  for (size_t i = 5; i < 10; ++i) {
    dataset.set(i, 0, 13 + i % 2);
    dataset.set(i, 1, 13 + i % 3);
  }
  auto km = SecureKMeans::Create(SmallConfig(2, 2), dataset);
  ASSERT_TRUE(km.ok());
  auto result = (*km)->Run({{0, 0}, {15, 15}});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->sizes, (std::vector<size_t>{5, 5}));
  // Centroids land inside their blobs.
  EXPECT_LE(result->centroids[0][0], 3u);
  EXPECT_GE(result->centroids[1][0], 12u);
}

TEST(SecureKMeansTest, ConvergenceStopsEarly) {
  data::Dataset dataset(4, 1);
  dataset.set(0, 0, 1);
  dataset.set(1, 0, 2);
  dataset.set(2, 0, 14);
  dataset.set(3, 0, 15);
  KMeansConfig cfg = SmallConfig(2, 1);
  cfg.iterations = 10;
  auto km = SecureKMeans::Create(cfg, dataset);
  ASSERT_TRUE(km.ok());
  auto result = (*km)->Run({{0}, {15}});
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->iterations_run, 10u);  // stabilizes quickly
  EXPECT_EQ(result->centroids[0][0], 1u);   // floor((1+2)/2)
  EXPECT_EQ(result->centroids[1][0], 14u);  // floor((14+15)/2)
}

TEST(SecureKMeansTest, MultiUnitDatasetWithPadding) {
  // More points than one unit holds at n=1024, d=2 -> several units plus
  // padding blocks, all of which must be excluded from the assignment.
  data::Dataset dataset = data::UniformDataset(1200, 2, 15, 2);
  KMeansConfig cfg = SmallConfig(2, 2);
  cfg.iterations = 2;
  auto km = SecureKMeans::Create(cfg, dataset);
  ASSERT_TRUE(km.ok());
  auto result = (*km)->Run();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->sizes[0] + result->sizes[1], 1200u);
  std::vector<std::vector<uint64_t>> init = {dataset.point(0),
                                             dataset.point(1)};
  auto ref = SecureKMeans::ReferenceLloyd(dataset, init, 2);
  EXPECT_EQ(result->centroids, ref);
}

TEST(SecureKMeansTest, EmptyClusterKeepsCentroid) {
  data::Dataset dataset(3, 2);
  dataset.set(0, 0, 1);
  dataset.set(0, 1, 1);
  dataset.set(1, 0, 2);
  dataset.set(1, 1, 2);
  dataset.set(2, 0, 3);
  dataset.set(2, 1, 3);
  KMeansConfig cfg = SmallConfig(2, 2);
  cfg.iterations = 1;
  auto km = SecureKMeans::Create(cfg, dataset);
  ASSERT_TRUE(km.ok());
  // Second centroid far away from everything: it captures no points.
  auto result = (*km)->Run({{2, 2}, {15, 15}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sizes[1], 0u);
  EXPECT_EQ(result->centroids[1], (std::vector<uint64_t>{15, 15}));
}

TEST(SecureKMeansTest, HigherDimensions) {
  data::Dataset dataset = data::UniformDataset(40, 5, 15, 3);
  auto km = SecureKMeans::Create(SmallConfig(3, 5), dataset);
  ASSERT_TRUE(km.ok());
  auto result = (*km)->Run();
  ASSERT_TRUE(result.ok()) << result.status();
  std::vector<std::vector<uint64_t>> init = {
      dataset.point(0), dataset.point(1), dataset.point(2)};
  EXPECT_EQ(result->centroids, SecureKMeans::ReferenceLloyd(dataset, init, 4));
}

TEST(SecureKMeansTest, RejectsBadConfigs) {
  data::Dataset dataset = data::UniformDataset(5, 2, 15, 4);
  KMeansConfig cfg = SmallConfig(0, 2);
  EXPECT_FALSE(SecureKMeans::Create(cfg, dataset).ok());
  cfg = SmallConfig(6, 2);  // more clusters than points
  EXPECT_FALSE(SecureKMeans::Create(cfg, dataset).ok());
  cfg = SmallConfig(2, 3);  // dims mismatch
  EXPECT_FALSE(SecureKMeans::Create(cfg, dataset).ok());
}

TEST(SecureKMeansTest, RejectsWrongInitialCentroids) {
  data::Dataset dataset = data::UniformDataset(5, 2, 15, 5);
  auto km = SecureKMeans::Create(SmallConfig(2, 2), dataset);
  ASSERT_TRUE(km.ok());
  EXPECT_FALSE((*km)->Run({{1, 1}}).ok());            // too few
  EXPECT_FALSE((*km)->Run({{1}, {2}}).ok());          // wrong dims
}

TEST(SecureKMeansTest, PartyOpsAccumulated) {
  data::Dataset dataset = data::UniformDataset(20, 2, 15, 6);
  KMeansConfig cfg = SmallConfig(2, 2);
  cfg.iterations = 1;
  auto km = SecureKMeans::Create(cfg, dataset);
  ASSERT_TRUE(km.ok());
  auto result = (*km)->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->party_a_ops.he_multiplications, 0u);
  EXPECT_GT(result->party_b_ops.decryptions, 0u);
  EXPECT_GT(result->party_b_ops.encryptions, 0u);
}

}  // namespace
}  // namespace extensions
}  // namespace sknn
