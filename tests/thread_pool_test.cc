#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sknn {
namespace {

TEST(ThreadPoolTest, InlineModeRunsAllIterations) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0u);  // inline mode has no workers
  std::vector<int> hits(100, 0);
  pool.ParallelFor(0, 100, [&](size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, MultiThreadedRunsAllIterations) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(5, 5, [&](size_t) { count.fetch_add(1); });
  pool.ParallelFor(7, 3, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPoolTest, SubrangeRespected) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.ParallelFor(10, 20, [&](size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(0, 50, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPoolTest, ScheduleRunsTask) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  std::mutex mu;
  std::condition_variable cv;
  pool.Schedule([&] {
    ran = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::seconds(10), [&] { return ran.load(); });
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace sknn
