#include "core/masking.h"

#include <gtest/gtest.h>

namespace sknn {
namespace core {
namespace {

constexpr uint64_t kT = 8589934583ull;  // 33-bit prime-ish test modulus

TEST(MaskingTest, SampleProducesRequestedDegree) {
  Chacha20Rng rng(uint64_t{1});
  auto m = MaskingPolynomial::Sample(kT, 1 << 10, 2, &rng);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->degree(), 2u);
  EXPECT_EQ(m->coefficients().size(), 3u);
}

TEST(MaskingTest, StrictlyMonotoneOverDomain) {
  Chacha20Rng rng(uint64_t{2});
  for (int trial = 0; trial < 20; ++trial) {
    auto m = MaskingPolynomial::Sample(kT, 1000, 2, &rng);
    ASSERT_TRUE(m.ok());
    uint64_t prev = m->Evaluate(0);
    for (uint64_t x = 1; x <= 1000; ++x) {
      uint64_t cur = m->Evaluate(x);
      EXPECT_GT(cur, prev) << "at x=" << x;
      prev = cur;
    }
  }
}

TEST(MaskingTest, NeverOverflowsPlaintextSpace) {
  Chacha20Rng rng(uint64_t{3});
  for (size_t degree : {1u, 2u, 3u}) {
    for (int trial = 0; trial < 50; ++trial) {
      auto m = MaskingPolynomial::Sample(kT, 1 << 10, degree, &rng);
      ASSERT_TRUE(m.ok());
      EXPECT_LT(m->Evaluate(1 << 10), kT);
    }
  }
}

TEST(MaskingTest, OrderPreservedOnRandomInputs) {
  Chacha20Rng rng(uint64_t{4});
  auto m = MaskingPolynomial::Sample(kT, 1 << 12, 2, &rng);
  ASSERT_TRUE(m.ok());
  for (int i = 0; i < 500; ++i) {
    uint64_t a = rng.UniformBelow(1 << 12);
    uint64_t b = rng.UniformBelow(1 << 12);
    if (a < b) {
      EXPECT_LT(m->Evaluate(a), m->Evaluate(b));
    } else if (a == b) {
      EXPECT_EQ(m->Evaluate(a), m->Evaluate(b));
    } else {
      EXPECT_GT(m->Evaluate(a), m->Evaluate(b));
    }
  }
}

TEST(MaskingTest, CoefficientsWithinBudget) {
  Chacha20Rng rng(uint64_t{5});
  const uint64_t max_input = 1 << 12;
  auto m = MaskingPolynomial::Sample(kT, max_input, 2, &rng);
  ASSERT_TRUE(m.ok());
  for (size_t j = 0; j <= 2; ++j) {
    EXPECT_LE(m->coefficients()[j],
              MaskingPolynomial::CoefficientBudget(kT, max_input, 2, j));
  }
  // Non-constant coefficients are strictly positive.
  EXPECT_GE(m->coefficients()[1], 1u);
  EXPECT_GE(m->coefficients()[2], 1u);
}

TEST(MaskingTest, BudgetShrinksWithDegree) {
  const uint64_t b0 = MaskingPolynomial::CoefficientBudget(kT, 1000, 3, 0);
  const uint64_t b1 = MaskingPolynomial::CoefficientBudget(kT, 1000, 3, 1);
  const uint64_t b2 = MaskingPolynomial::CoefficientBudget(kT, 1000, 3, 2);
  EXPECT_GT(b0, b1);
  EXPECT_GT(b1, b2);
}

TEST(MaskingTest, RejectsImpossibleDegree) {
  Chacha20Rng rng(uint64_t{6});
  // max_input^degree exceeds the modulus: no valid leading coefficient.
  auto m = MaskingPolynomial::Sample(1 << 20, 1 << 12, 3, &rng);
  EXPECT_FALSE(m.ok());
  EXPECT_FALSE(MaskingPolynomial::Sample(kT, 1, 0, &rng).ok());
}

TEST(MaskingTest, DistinctSamplesDiffer) {
  Chacha20Rng rng(uint64_t{7});
  auto m1 = MaskingPolynomial::Sample(kT, 1000, 2, &rng);
  auto m2 = MaskingPolynomial::Sample(kT, 1000, 2, &rng);
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_NE(m1->coefficients(), m2->coefficients());
}

TEST(MaskingTest, InjectiveImpliesEquidistantDetection) {
  // The only leakage the paper concedes to Party B: equal distances give
  // equal masked values, unequal give unequal.
  Chacha20Rng rng(uint64_t{8});
  auto m = MaskingPolynomial::Sample(kT, 4096, 2, &rng);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->Evaluate(77), m->Evaluate(77));
  EXPECT_NE(m->Evaluate(77), m->Evaluate(78));
}

}  // namespace
}  // namespace core
}  // namespace sknn
