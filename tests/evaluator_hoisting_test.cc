// Tests for the hoisted key-switching stack (DESIGN.md §3.2): hoisted
// rotations vs sequential rotations, the coefficient-form Galois chain,
// fold-vs-naive equivalence, and the prepared plaintext-operand cache.
// The hoisted and sequential paths share DecomposeForKeySwitch +
// KeySwitchInner, so single-hop results are bit-identical — the tests
// below assert polynomial equality, not just decode equality, wherever
// that invariant holds.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bgv/context.h"
#include "bgv/decryptor.h"
#include "bgv/encoder.h"
#include "bgv/encryptor.h"
#include "bgv/evaluator.h"
#include "bgv/keys.h"
#include "common/rng.h"

namespace sknn {
namespace bgv {
namespace {

class EvaluatorHoistingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto params = BgvParams::CreateCustom(256, 20, 4, 45, 50);
    ASSERT_TRUE(params.ok());
    ctx_ = BgvContext::Create(params.value()).value();
    rng_ = std::make_unique<Chacha20Rng>(uint64_t{4242});
    KeyGenerator keygen(ctx_, rng_.get());
    sk_ = keygen.GenerateSecretKey();
    pk_ = keygen.GeneratePublicKey(sk_);
    gk_ = keygen.GeneratePowerOfTwoRotationKeys(sk_);
    encoder_ = std::make_unique<BatchEncoder>(ctx_);
    encryptor_ = std::make_unique<Encryptor>(ctx_, pk_, rng_.get());
    decryptor_ = std::make_unique<Decryptor>(ctx_, sk_);
    evaluator_ = std::make_unique<Evaluator>(ctx_);
  }

  Ciphertext EncryptRamp() {
    std::vector<uint64_t> values(ctx_->n());
    for (size_t i = 0; i < values.size(); ++i) values[i] = i % ctx_->t();
    return encryptor_->Encrypt(encoder_->Encode(values).value()).value();
  }

  std::vector<uint64_t> Decode(const Ciphertext& ct) {
    return encoder_->Decode(decryptor_->Decrypt(ct).value());
  }

  static void ExpectSameCiphertext(const Ciphertext& a, const Ciphertext& b) {
    ASSERT_EQ(a.c.size(), b.c.size());
    EXPECT_EQ(a.level, b.level);
    EXPECT_EQ(a.scale, b.scale);
    for (size_t i = 0; i < a.c.size(); ++i) EXPECT_TRUE(a.c[i] == b.c[i]);
  }

  std::shared_ptr<const BgvContext> ctx_;
  std::unique_ptr<Chacha20Rng> rng_;
  SecretKey sk_;
  PublicKey pk_;
  GaloisKeys gk_;
  std::unique_ptr<BatchEncoder> encoder_;
  std::unique_ptr<Encryptor> encryptor_;
  std::unique_ptr<Decryptor> decryptor_;
  std::unique_ptr<Evaluator> evaluator_;
};

// Hoisting must agree with the sequential path for every power-of-two step
// at every level of the modulus chain (the decomposition width changes with
// the level, so each level exercises a different code path).
TEST_F(EvaluatorHoistingTest, HoistedMatchesSequentialAcrossLevels) {
  std::vector<int> steps;
  for (size_t s = 1; s < ctx_->row_size(); s <<= 1) {
    steps.push_back(static_cast<int>(s));
  }
  Ciphertext ct = EncryptRamp();
  for (size_t level = ctx_->max_level();; --level) {
    auto hoisted = evaluator_->HoistedRotations(ct, steps, gk_);
    ASSERT_TRUE(hoisted.ok()) << "level " << level;
    ASSERT_EQ(hoisted.value().size(), steps.size());
    for (size_t i = 0; i < steps.size(); ++i) {
      Ciphertext seq = ct;
      ASSERT_TRUE(evaluator_->RotateRowsInplace(&seq, steps[i], gk_).ok());
      ExpectSameCiphertext(hoisted.value()[i], seq);
      EXPECT_EQ(Decode(hoisted.value()[i]), Decode(seq));
    }
    if (level == 0) break;
    ASSERT_TRUE(evaluator_->ModSwitchToNextInplace(&ct).ok());
  }
}

TEST_F(EvaluatorHoistingTest, HoistedHandlesNegativeAndZeroSteps) {
  Ciphertext ct = EncryptRamp();
  const std::vector<int> steps = {0, -1, -4, 1};
  auto hoisted = evaluator_->HoistedRotations(ct, steps, gk_);
  ASSERT_TRUE(hoisted.ok());
  // Step 0 is a verbatim copy.
  ExpectSameCiphertext(hoisted.value()[0], ct);
  for (size_t i = 1; i < steps.size(); ++i) {
    Ciphertext seq = ct;
    ASSERT_TRUE(evaluator_->RotateRowsInplace(&seq, steps[i], gk_).ok());
    EXPECT_EQ(Decode(hoisted.value()[i]), Decode(seq));
  }
}

// Steps without an exact Galois key (e.g. 3 = 1+2) take the sequential
// composed fallback but must still decode correctly.
TEST_F(EvaluatorHoistingTest, HoistedFallsBackForCompositeSteps) {
  Ciphertext ct = EncryptRamp();
  auto hoisted = evaluator_->HoistedRotations(ct, {3, 1}, gk_);
  ASSERT_TRUE(hoisted.ok());
  Ciphertext seq = ct;
  ASSERT_TRUE(evaluator_->RotateRowsInplace(&seq, 3, gk_).ok());
  EXPECT_EQ(Decode(hoisted.value()[0]), Decode(seq));
}

// A chain of automorphisms (the permute/absorb sweep shape, including the
// column swap) must equal the same automorphisms applied one by one.
TEST_F(EvaluatorHoistingTest, GaloisChainMatchesSequentialHops) {
  Ciphertext ct = EncryptRamp();
  std::vector<uint64_t> elts = {
      ctx_->GaloisEltForRotation(1), ctx_->GaloisEltForRotation(4),
      ctx_->GaloisEltForColumnSwap(), ctx_->GaloisEltForRotation(-2)};
  Ciphertext chained = ct;
  ASSERT_TRUE(
      evaluator_->ApplyGaloisChainInplace(&chained, elts, gk_).ok());
  Ciphertext seq = ct;
  for (uint64_t elt : elts) {
    ASSERT_TRUE(evaluator_->ApplyGaloisInplace(&seq, elt, gk_).ok());
  }
  EXPECT_EQ(Decode(chained), Decode(seq));
}

TEST_F(EvaluatorHoistingTest, GaloisChainRejectsMissingKey) {
  Ciphertext ct = EncryptRamp();
  // Only power-of-two steps have keys; the exact element for step 3 does
  // not.
  const uint64_t elt = ctx_->GaloisEltForRotation(3);
  ASSERT_FALSE(gk_.Has(elt));
  Status s = evaluator_->ApplyGaloisChainInplace(&ct, {elt}, gk_);
  EXPECT_FALSE(s.ok());
}

// FoldRows must equal the naive rotate-and-add ladder.
TEST_F(EvaluatorHoistingTest, FoldRowsMatchesNaiveRotateAdd) {
  for (size_t block : {size_t{2}, size_t{8}, ctx_->row_size()}) {
    Ciphertext folded = EncryptRamp();
    Ciphertext naive = folded;
    ASSERT_TRUE(evaluator_->FoldRowsInplace(&folded, block, gk_).ok());
    for (size_t s = 1; s < block; s <<= 1) {
      Ciphertext rot = naive;
      ASSERT_TRUE(
          evaluator_->RotateRowsInplace(&rot, static_cast<int>(s), gk_).ok());
      ASSERT_TRUE(evaluator_->AddInplace(&naive, rot).ok());
    }
    EXPECT_EQ(Decode(folded), Decode(naive)) << "block " << block;
  }
}

// The prepared-operand overloads must be bit-identical to the plain
// overloads (same lift, same NTT, same pointwise ops).
TEST_F(EvaluatorHoistingTest, MultiplyOperandMatchesPlainOverload) {
  std::vector<uint64_t> values(ctx_->n());
  for (size_t i = 0; i < values.size(); ++i) values[i] = (3 * i + 1) % 17;
  Plaintext pt = encoder_->Encode(values).value();
  Ciphertext ct = EncryptRamp();

  Ciphertext direct = ct;
  ASSERT_TRUE(evaluator_->MultiplyPlainInplace(&direct, pt).ok());

  auto op = evaluator_->MakeMultiplyOperand(pt, ct.level);
  ASSERT_TRUE(op.ok());
  Ciphertext prepared = ct;
  ASSERT_TRUE(evaluator_->MultiplyPlainInplace(&prepared, op.value()).ok());
  ExpectSameCiphertext(direct, prepared);
}

TEST_F(EvaluatorHoistingTest, AddOperandMatchesPlainOverload) {
  Plaintext pt = encoder_->EncodeScalar(9);
  Ciphertext ct = EncryptRamp();
  // Mod-switch once so the ciphertext carries a non-trivial scale — the
  // operand must bake the same correction in.
  ASSERT_TRUE(evaluator_->ModSwitchToNextInplace(&ct).ok());

  Ciphertext direct = ct;
  ASSERT_TRUE(evaluator_->AddPlainInplace(&direct, pt).ok());

  auto op = evaluator_->MakeAddOperand(pt, ct.level, ct.scale);
  ASSERT_TRUE(op.ok());
  Ciphertext prepared = ct;
  ASSERT_TRUE(evaluator_->AddPlainInplace(&prepared, op.value()).ok());
  ExpectSameCiphertext(direct, prepared);
}

TEST_F(EvaluatorHoistingTest, OperandRejectsLevelAndScaleMismatch) {
  Plaintext pt = encoder_->EncodeScalar(2);
  Ciphertext ct = EncryptRamp();
  auto mul_op = evaluator_->MakeMultiplyOperand(pt, ct.level);
  ASSERT_TRUE(mul_op.ok());
  Ciphertext lower = ct;
  ASSERT_TRUE(evaluator_->ModSwitchToNextInplace(&lower).ok());
  EXPECT_FALSE(
      evaluator_->MultiplyPlainInplace(&lower, mul_op.value()).ok());

  auto add_op = evaluator_->MakeAddOperand(pt, lower.level, lower.scale);
  ASSERT_TRUE(add_op.ok());
  Ciphertext wrong_scale = lower;
  wrong_scale.scale = lower.scale + 1;
  EXPECT_FALSE(
      evaluator_->AddPlainInplace(&wrong_scale, add_op.value()).ok());
}

// The cache must hand back the same prepared operand (same pointer) for
// the same key and produce ciphertexts identical to the uncached path.
TEST_F(EvaluatorHoistingTest, PlainOperandCacheReturnsStableIdenticalOperands) {
  PlainOperandCache cache;
  Plaintext pt = encoder_->EncodeScalar(5);
  Ciphertext ct = EncryptRamp();

  auto first = cache.MultiplyOperand(*evaluator_, /*tag=*/7, pt, ct.level);
  ASSERT_TRUE(first.ok());
  auto second = cache.MultiplyOperand(*evaluator_, /*tag=*/7, pt, ct.level);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());  // same cached entry
  EXPECT_EQ(cache.size(), 1u);

  Ciphertext cached = ct;
  ASSERT_TRUE(
      evaluator_->MultiplyPlainInplace(&cached, *first.value()).ok());
  Ciphertext uncached = ct;
  ASSERT_TRUE(evaluator_->MultiplyPlainInplace(&uncached, pt).ok());
  ExpectSameCiphertext(cached, uncached);

  // Distinct tags and levels are distinct entries; Clear empties the map.
  auto other = cache.MultiplyOperand(*evaluator_, /*tag=*/8, pt, ct.level);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(first.value(), other.value());
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace bgv
}  // namespace sknn
