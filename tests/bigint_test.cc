#include "math/bigint.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/prime.h"

namespace sknn {
namespace {

TEST(BigUintTest, ZeroAndSmallValues) {
  BigUint zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.BitLength(), 0u);
  EXPECT_EQ(zero.ToDecimal(), "0");
  BigUint one(1);
  EXPECT_FALSE(one.IsZero());
  EXPECT_TRUE(one.IsOdd());
  EXPECT_EQ(one.BitLength(), 1u);
  EXPECT_EQ(one.ToU64(), 1u);
}

TEST(BigUintTest, NormalizationDropsLeadingZeroLimbs) {
  BigUint v(std::vector<uint64_t>{5, 0, 0});
  EXPECT_EQ(v.limb_count(), 1u);
  EXPECT_EQ(v.ToU64(), 5u);
}

TEST(BigUintTest, DecimalRoundtrip) {
  const std::string digits =
      "123456789012345678901234567890123456789012345678901234567890";
  auto v = BigUint::FromDecimal(digits);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToDecimal(), digits);
}

TEST(BigUintTest, FromDecimalRejectsGarbage) {
  EXPECT_FALSE(BigUint::FromDecimal("").ok());
  EXPECT_FALSE(BigUint::FromDecimal("12a3").ok());
  EXPECT_FALSE(BigUint::FromDecimal("-5").ok());
}

TEST(BigUintTest, AddCarriesAcrossLimbs) {
  BigUint a(UINT64_MAX);
  BigUint b(1);
  BigUint c = BigUint::Add(a, b);
  EXPECT_EQ(c.limb_count(), 2u);
  EXPECT_EQ(c.limbs()[0], 0u);
  EXPECT_EQ(c.limbs()[1], 1u);
}

TEST(BigUintTest, SubBorrowsAcrossLimbs) {
  BigUint a(std::vector<uint64_t>{0, 1});  // 2^64
  BigUint b(1);
  BigUint c = BigUint::Sub(a, b);
  EXPECT_EQ(c.limb_count(), 1u);
  EXPECT_EQ(c.limbs()[0], UINT64_MAX);
}

TEST(BigUintTest, AddSubRoundtripRandom) {
  Chacha20Rng rng(uint64_t{1});
  for (int i = 0; i < 200; ++i) {
    BigUint a = BigUint::RandomBits(1 + rng.UniformBelow(300), &rng);
    BigUint b = BigUint::RandomBits(1 + rng.UniformBelow(300), &rng);
    BigUint sum = BigUint::Add(a, b);
    EXPECT_EQ(BigUint::Sub(sum, b), a);
    EXPECT_EQ(BigUint::Sub(sum, a), b);
  }
}

TEST(BigUintTest, MulMatchesU64) {
  Chacha20Rng rng(uint64_t{2});
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.NextU32();
    uint64_t b = rng.NextU32();
    BigUint p = BigUint::Mul(BigUint(a), BigUint(b));
    EXPECT_EQ(p.ToU64(), a * b);
  }
}

TEST(BigUintTest, MulCommutativeAndDistributive) {
  Chacha20Rng rng(uint64_t{3});
  for (int i = 0; i < 50; ++i) {
    BigUint a = BigUint::RandomBits(200, &rng);
    BigUint b = BigUint::RandomBits(150, &rng);
    BigUint c = BigUint::RandomBits(100, &rng);
    EXPECT_EQ(BigUint::Mul(a, b), BigUint::Mul(b, a));
    EXPECT_EQ(BigUint::Mul(a, BigUint::Add(b, c)),
              BigUint::Add(BigUint::Mul(a, b), BigUint::Mul(a, c)));
  }
}

TEST(BigUintTest, DivModInvariantRandom) {
  Chacha20Rng rng(uint64_t{4});
  for (int i = 0; i < 300; ++i) {
    BigUint a = BigUint::RandomBits(1 + rng.UniformBelow(512), &rng);
    BigUint b = BigUint::RandomBits(1 + rng.UniformBelow(256), &rng);
    if (b.IsZero()) continue;
    BigUint q, r;
    BigUint::DivMod(a, b, &q, &r);
    EXPECT_LT(BigUint::Compare(r, b), 0);
    EXPECT_EQ(BigUint::Add(BigUint::Mul(q, b), r), a);
  }
}

TEST(BigUintTest, DivModKnuthAddBackCase) {
  // Constructed case that stresses the rare "add back" branch of
  // algorithm D: divisor with high limb pattern close to the dividend's.
  BigUint a(std::vector<uint64_t>{0, 0, 0x8000000000000000ull});
  BigUint b(std::vector<uint64_t>{1, 0x8000000000000000ull});
  BigUint q, r;
  BigUint::DivMod(a, b, &q, &r);
  EXPECT_EQ(BigUint::Add(BigUint::Mul(q, b), r), a);
  EXPECT_LT(BigUint::Compare(r, b), 0);
}

TEST(BigUintTest, ShiftLeftRightInverse) {
  Chacha20Rng rng(uint64_t{5});
  for (size_t shift : {0ul, 1ul, 63ul, 64ul, 65ul, 130ul}) {
    BigUint a = BigUint::RandomBits(200, &rng);
    EXPECT_EQ(a.ShiftLeft(shift).ShiftRight(shift), a);
  }
}

TEST(BigUintTest, ShiftLeftMultipliesByPowerOfTwo) {
  BigUint a(7);
  EXPECT_EQ(a.ShiftLeft(3).ToU64(), 56u);
  EXPECT_EQ(a.ShiftLeft(64).limb_count(), 2u);
}

TEST(BigUintTest, BitAccess) {
  BigUint a(0b1011);
  EXPECT_TRUE(a.GetBit(0));
  EXPECT_TRUE(a.GetBit(1));
  EXPECT_FALSE(a.GetBit(2));
  EXPECT_TRUE(a.GetBit(3));
  EXPECT_FALSE(a.GetBit(200));
}

TEST(BigUintTest, ModU64MatchesDivMod) {
  Chacha20Rng rng(uint64_t{6});
  for (int i = 0; i < 100; ++i) {
    BigUint a = BigUint::RandomBits(300, &rng);
    uint64_t m = rng.UniformInRange(1, UINT64_MAX >> 1);
    BigUint q, r;
    BigUint::DivMod(a, BigUint(m), &q, &r);
    EXPECT_EQ(a.ModU64(m), r.IsZero() ? 0 : r.ToU64());
  }
}

TEST(BigUintTest, PowModSmallCases) {
  BigUint m(1000000007);
  EXPECT_EQ(BigUint::PowMod(BigUint(2), BigUint(10), m).ToU64(), 1024u);
  EXPECT_EQ(BigUint::PowMod(BigUint(5), BigUint(0), m).ToU64(), 1u);
  EXPECT_EQ(BigUint::PowMod(BigUint(0), BigUint(5), m).ToU64(), 0u);
}

TEST(BigUintTest, PowModFermatLittleTheorem) {
  Chacha20Rng rng(uint64_t{7});
  BigUint p = BigUint::RandomPrime(128, &rng);
  BigUint p_minus_1 = BigUint::Sub(p, BigUint(1));
  for (int i = 0; i < 10; ++i) {
    BigUint a = BigUint::Add(BigUint::RandomBelow(p_minus_1, &rng), BigUint(1));
    EXPECT_EQ(BigUint::PowMod(a, p_minus_1, p).ToU64(), 1u);
  }
}

TEST(BigUintTest, PowModMatchesMulChain) {
  Chacha20Rng rng(uint64_t{8});
  BigUint m = BigUint::RandomBits(192, &rng);
  if (!m.IsOdd()) m = BigUint::Add(m, BigUint(1));
  BigUint a = BigUint::RandomBelow(m, &rng);
  BigUint acc(1);
  for (uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(BigUint::PowMod(a, BigUint(e), m), acc);
    acc = BigUint::MulMod(acc, a, m);
  }
}

TEST(BigUintTest, PowModEvenModulus) {
  BigUint m(std::vector<uint64_t>{0, 1});  // 2^64 (even -> generic path)
  BigUint r = BigUint::PowMod(BigUint(3), BigUint(64), m);
  // 3^64 mod 2^64: compute with wrap-around u64 arithmetic.
  uint64_t expected = 1;
  for (int i = 0; i < 64; ++i) expected *= 3;
  EXPECT_EQ(r.ToU64(), expected);
}

TEST(BigUintTest, GcdLcm) {
  EXPECT_EQ(BigUint::Gcd(BigUint(48), BigUint(36)).ToU64(), 12u);
  EXPECT_EQ(BigUint::Gcd(BigUint(17), BigUint(5)).ToU64(), 1u);
  EXPECT_EQ(BigUint::Lcm(BigUint(4), BigUint(6)).ToU64(), 12u);
  EXPECT_EQ(BigUint::Gcd(BigUint(0), BigUint(9)).ToU64(), 9u);
}

TEST(BigUintTest, InvModRandomPrimes) {
  Chacha20Rng rng(uint64_t{9});
  BigUint p = BigUint::RandomPrime(96, &rng);
  for (int i = 0; i < 20; ++i) {
    BigUint a = BigUint::Add(
        BigUint::RandomBelow(BigUint::Sub(p, BigUint(1)), &rng), BigUint(1));
    auto inv = BigUint::InvMod(a, p);
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ(BigUint::MulMod(a, inv.value(), p).ToU64(), 1u);
  }
}

TEST(BigUintTest, InvModDetectsNonCoprime) {
  EXPECT_FALSE(BigUint::InvMod(BigUint(6), BigUint(9)).ok());
  EXPECT_FALSE(BigUint::InvMod(BigUint(0), BigUint(7)).ok());
}

TEST(BigUintTest, RandomBitsExactLength) {
  Chacha20Rng rng(uint64_t{10});
  for (size_t bits : {1ul, 8ul, 64ul, 65ul, 257ul}) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(BigUint::RandomBits(bits, &rng).BitLength(), bits);
    }
  }
}

TEST(BigUintTest, RandomBelowInRange) {
  Chacha20Rng rng(uint64_t{11});
  BigUint bound = BigUint::RandomBits(130, &rng);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(BigUint::Compare(BigUint::RandomBelow(bound, &rng), bound), 0);
  }
}

TEST(BigUintTest, IsProbablePrimeAgreesWithWordSizeOracle) {
  Chacha20Rng rng(uint64_t{12});
  for (int i = 0; i < 100; ++i) {
    uint64_t n = rng.UniformInRange(2, 1 << 20);
    EXPECT_EQ(BigUint::IsProbablePrime(BigUint(n), &rng), IsPrime(n)) << n;
  }
}

TEST(BigUintTest, RandomPrimeIsPrimeAndRightSize) {
  Chacha20Rng rng(uint64_t{13});
  BigUint p = BigUint::RandomPrime(160, &rng);
  EXPECT_EQ(p.BitLength(), 160u);
  EXPECT_TRUE(BigUint::IsProbablePrime(p, &rng, 48));
}

TEST(BigUintTest, CrtReconstructMatchesDirectValue) {
  Chacha20Rng rng(uint64_t{14});
  std::vector<uint64_t> moduli = {1000003, 999999937, 998244353};
  BigUint value = BigUint::RandomBits(80, &rng);
  std::vector<uint64_t> residues;
  for (uint64_t m : moduli) residues.push_back(value.ModU64(m));
  BigUint rec = BigUint::CrtReconstruct(residues, moduli);
  EXPECT_EQ(rec, value);
}

TEST(BigUintTest, CrtReconstructZeroAndProductMinusOne) {
  std::vector<uint64_t> moduli = {97, 101};
  EXPECT_TRUE(BigUint::CrtReconstruct({0, 0}, moduli).IsZero());
  BigUint rec = BigUint::CrtReconstruct({96, 100}, moduli);
  EXPECT_EQ(rec.ToU64(), 97u * 101u - 1);
}

TEST(BigUintTest, KaratsubaMatchesSchoolbookReference) {
  // Operands above the Karatsuba threshold, verified against the identity
  // (a+b)^2 - (a-b)^2 = 4ab which exercises Mul through independent paths.
  Chacha20Rng rng(uint64_t{21});
  for (size_t bits : {1600ul, 2500ul, 4096ul, 8191ul}) {
    BigUint a = BigUint::RandomBits(bits, &rng);
    BigUint b = BigUint::RandomBits(bits - 7, &rng);
    BigUint ab = BigUint::Mul(a, b);
    BigUint sum_sq = BigUint::Mul(BigUint::Add(a, b), BigUint::Add(a, b));
    BigUint diff = BigUint::Sub(a, b);
    BigUint diff_sq = BigUint::Mul(diff, diff);
    BigUint four_ab = ab.ShiftLeft(2);
    EXPECT_EQ(BigUint::Sub(sum_sq, diff_sq), four_ab) << bits;
  }
}

TEST(BigUintTest, KaratsubaAsymmetricOperands) {
  Chacha20Rng rng(uint64_t{22});
  BigUint a = BigUint::RandomBits(5000, &rng);
  BigUint b = BigUint::RandomBits(300, &rng);
  // Distributivity across an asymmetric split: a*(b+1) == a*b + a.
  EXPECT_EQ(BigUint::Mul(a, BigUint::Add(b, BigUint(1))),
            BigUint::Add(BigUint::Mul(a, b), a));
  // And a * 2^k via shifting.
  EXPECT_EQ(BigUint::Mul(a, BigUint(1).ShiftLeft(200)), a.ShiftLeft(200));
}

TEST(BigUintTest, KaratsubaDivModRoundtrip) {
  Chacha20Rng rng(uint64_t{23});
  BigUint a = BigUint::RandomBits(3000, &rng);
  BigUint b = BigUint::RandomBits(1700, &rng);
  BigUint q, r;
  BigUint::DivMod(BigUint::Mul(a, b), b, &q, &r);
  EXPECT_EQ(q, a);
  EXPECT_TRUE(r.IsZero());
}

TEST(MontgomeryTest, RoundtripAndMultiply) {
  Chacha20Rng rng(uint64_t{15});
  BigUint m = BigUint::RandomPrime(128, &rng);
  MontgomeryCtx ctx(m);
  for (int i = 0; i < 30; ++i) {
    BigUint a = BigUint::RandomBelow(m, &rng);
    BigUint b = BigUint::RandomBelow(m, &rng);
    EXPECT_EQ(ctx.FromMont(ctx.ToMont(a)), a);
    BigUint prod = ctx.FromMont(ctx.MulMont(ctx.ToMont(a), ctx.ToMont(b)));
    EXPECT_EQ(prod, BigUint::MulMod(a, b, m));
  }
}

TEST(MontgomeryTest, PowMatchesGenericPow) {
  Chacha20Rng rng(uint64_t{16});
  BigUint m = BigUint::RandomBits(256, &rng);
  if (!m.IsOdd()) m = BigUint::Add(m, BigUint(1));
  MontgomeryCtx ctx(m);
  for (int i = 0; i < 10; ++i) {
    BigUint a = BigUint::RandomBelow(m, &rng);
    BigUint e = BigUint::RandomBits(64, &rng);
    // Generic reference: square-and-multiply with MulMod.
    BigUint ref(1);
    for (size_t bit = e.BitLength(); bit-- > 0;) {
      ref = BigUint::MulMod(ref, ref, m);
      if (e.GetBit(bit)) ref = BigUint::MulMod(ref, a, m);
    }
    EXPECT_EQ(ctx.PowMod(a, e), ref);
  }
}

}  // namespace
}  // namespace sknn
