#ifndef SKNN_COMMON_TRACE_ID_H_
#define SKNN_COMMON_TRACE_ID_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <string>

// Distributed trace identity, shared by the tracer, the flight recorder
// and the logger (PROTOCOL.md "Trace-id preamble").
//
// A trace id is a nonzero 64-bit token minted once per query on the
// client and propagated — over kControl preambles — through Party A to
// Party B, so the spans, flight records and log lines of one query can
// be stitched across three processes (`tools/trace_stitch.py`). The id
// is derived from a per-process random epoch mixed with a counter:
// unlike the flight recorder's old monotonic-from-zero query ids, two
// runs of the same binary (or a restarted server) cannot alias each
// other's records.
//
// This header is dependency-free on purpose: logging.h includes it to
// tag every log line with the active trace id, and logging.h must stay
// includable from anywhere.

namespace sknn {
namespace trace {

namespace internal_trace_id {
// The thread's active trace id (0 = none). Manipulated via ScopedTraceId
// below and by the server/worker plumbing in src/core/server.cc.
inline thread_local uint64_t tls_trace_id = 0;

// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace internal_trace_id

// Random once-per-process epoch. Seeded from std::random_device plus the
// wall clock so two processes started in the same nanosecond on an
// entropy-less machine still diverge.
inline uint64_t ProcessEpoch() {
  static const uint64_t epoch = [] {
    std::random_device rd;
    uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    seed ^= static_cast<uint64_t>(
        std::chrono::system_clock::now().time_since_epoch().count());
    const uint64_t mixed = internal_trace_id::Mix64(seed);
    return mixed == 0 ? 1 : mixed;
  }();
  return epoch;
}

// A fresh process-unique, restart-unique trace id; never 0.
inline uint64_t MintTraceId() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t id = internal_trace_id::Mix64(
      ProcessEpoch() ^ counter.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;
}

// Derives the trace id a record with ordinal `ordinal` gets when no
// externally-propagated id is present (the flight recorder's
// cross-restart collision fix: same ordinal, different epoch -> a
// different id).
inline uint64_t DeriveTraceId(uint64_t epoch, uint64_t ordinal) {
  const uint64_t id = internal_trace_id::Mix64(epoch ^ ordinal);
  return id == 0 ? 1 : id;
}

// The calling thread's active trace id (0 outside any traced query).
inline uint64_t CurrentTraceId() { return internal_trace_id::tls_trace_id; }

// Lowercase-hex rendering used on the wire, in logs and in JSON ("0" for
// the zero/no-trace id).
inline std::string TraceIdHex(uint64_t id) {
  if (id == 0) return "0";
  char buf[17];
  int i = 16;
  buf[16] = '\0';
  while (id != 0) {
    buf[--i] = "0123456789abcdef"[id & 0xF];
    id >>= 4;
  }
  return std::string(buf + i);
}

// Parses the lowercase/uppercase-hex form back; returns 0 on malformed
// input (0 is never a valid minted id, so callers treat it as absent).
inline uint64_t ParseTraceIdHex(const char* begin, const char* end) {
  if (begin == end || end - begin > 16) return 0;
  uint64_t v = 0;
  for (const char* p = begin; p != end; ++p) {
    const char c = *p;
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return 0;
    }
    v = (v << 4) | digit;
  }
  return v;
}

// RAII: establishes `id` as the thread's active trace id for the scope.
// Spans, flight records and log lines produced inside pick it up.
class ScopedTraceId {
 public:
  explicit ScopedTraceId(uint64_t id)
      : saved_(internal_trace_id::tls_trace_id) {
    internal_trace_id::tls_trace_id = id;
  }
  ~ScopedTraceId() { internal_trace_id::tls_trace_id = saved_; }
  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  uint64_t saved_;
};

}  // namespace trace
}  // namespace sknn

#endif  // SKNN_COMMON_TRACE_ID_H_
