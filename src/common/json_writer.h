#ifndef SKNN_COMMON_JSON_WRITER_H_
#define SKNN_COMMON_JSON_WRITER_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

// Minimal JSON emission helpers shared by the trace exporter and the bench
// harnesses. Write-only (the repo never parses JSON), ordered, and
// dependency-free; values are escaped per RFC 8259.

namespace sknn {
namespace json {

inline std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Ordered JSON object builder: {"a": 1, "b": "x", ...}. Keys are emitted in
// insertion order so diffs of generated files stay stable.
class ObjectWriter {
 public:
  ObjectWriter& Int(const std::string& key, uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return Raw(key, buf);
  }
  ObjectWriter& Num(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return Raw(key, buf);
  }
  ObjectWriter& Str(const std::string& key, const std::string& v) {
    return Raw(key, "\"" + Escape(v) + "\"");
  }
  ObjectWriter& Bool(const std::string& key, bool v) {
    return Raw(key, v ? "true" : "false");
  }
  // Inserts pre-rendered JSON (a nested object/array) verbatim.
  ObjectWriter& Raw(const std::string& key, const std::string& rendered) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + Escape(key) + "\":" + rendered;
    return *this;
  }

  std::string Render() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

inline std::string Array(const std::vector<std::string>& rendered_elems) {
  std::string out = "[";
  for (size_t i = 0; i < rendered_elems.size(); ++i) {
    if (i != 0) out += ",";
    out += rendered_elems[i];
  }
  out += "]";
  return out;
}

// Writes `content` to `path`; returns false (and leaves errno set) on
// failure. Used for BENCH_*.json and --trace outputs.
inline bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (written != content.size()) std::fclose(f);
  return ok;
}

}  // namespace json
}  // namespace sknn

#endif  // SKNN_COMMON_JSON_WRITER_H_
