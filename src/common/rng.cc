#include "common/rng.h"

#include <cmath>
#include <cstring>
#include <random>

#include "common/logging.h"

namespace sknn {
namespace {

inline uint32_t Rotl32(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d ^= a;
  d = Rotl32(d, 16);
  c += d;
  b ^= c;
  b = Rotl32(b, 12);
  a += b;
  d ^= a;
  d = Rotl32(d, 8);
  c += d;
  b ^= c;
  b = Rotl32(b, 7);
}

constexpr uint32_t kChaChaConst[4] = {0x61707865u, 0x3320646eu, 0x79622d32u,
                                      0x6b206574u};

}  // namespace

void ChaCha20Block(const std::array<uint32_t, 8>& key, uint32_t counter,
                   const std::array<uint32_t, 3>& nonce,
                   std::array<uint8_t, 64>* out) {
  uint32_t state[16];
  uint32_t working[16];
  state[0] = kChaChaConst[0];
  state[1] = kChaChaConst[1];
  state[2] = kChaChaConst[2];
  state[3] = kChaChaConst[3];
  for (int i = 0; i < 8; ++i) state[4 + i] = key[i];
  state[12] = counter;
  state[13] = nonce[0];
  state[14] = nonce[1];
  state[15] = nonce[2];
  std::memcpy(working, state, sizeof(state));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(working[0], working[4], working[8], working[12]);
    QuarterRound(working[1], working[5], working[9], working[13]);
    QuarterRound(working[2], working[6], working[10], working[14]);
    QuarterRound(working[3], working[7], working[11], working[15]);
    QuarterRound(working[0], working[5], working[10], working[15]);
    QuarterRound(working[1], working[6], working[11], working[12]);
    QuarterRound(working[2], working[7], working[8], working[13]);
    QuarterRound(working[3], working[4], working[9], working[14]);
  }
  for (int i = 0; i < 16; ++i) {
    uint32_t v = working[i] + state[i];
    (*out)[4 * i + 0] = static_cast<uint8_t>(v);
    (*out)[4 * i + 1] = static_cast<uint8_t>(v >> 8);
    (*out)[4 * i + 2] = static_cast<uint8_t>(v >> 16);
    (*out)[4 * i + 3] = static_cast<uint8_t>(v >> 24);
  }
}

Chacha20Rng::Chacha20Rng(const Seed& seed, uint64_t stream_id)
    : counter_(0), buffer_pos_(64) {
  for (int i = 0; i < 8; ++i) {
    key_[i] = static_cast<uint32_t>(seed[4 * i]) |
              (static_cast<uint32_t>(seed[4 * i + 1]) << 8) |
              (static_cast<uint32_t>(seed[4 * i + 2]) << 16) |
              (static_cast<uint32_t>(seed[4 * i + 3]) << 24);
  }
  nonce_[0] = static_cast<uint32_t>(stream_id);
  nonce_[1] = static_cast<uint32_t>(stream_id >> 32);
  nonce_[2] = 0;
}

Chacha20Rng::Chacha20Rng(uint64_t seed64, uint64_t stream_id)
    : counter_(0), buffer_pos_(64) {
  Seed seed{};
  for (int i = 0; i < 8; ++i) {
    seed[i] = static_cast<uint8_t>(seed64 >> (8 * i));
    // Spread the 64-bit seed with a fixed pattern so distinct small seeds
    // produce very different keys.
    seed[8 + i] = static_cast<uint8_t>((seed64 * 0x9e3779b97f4a7c15ull) >>
                                       (8 * i));
    seed[16 + i] = static_cast<uint8_t>((seed64 ^ 0xa5a5a5a5a5a5a5a5ull) >>
                                        (8 * i));
    seed[24 + i] = static_cast<uint8_t>(
        ((seed64 + 0x0123456789abcdefull) * 0xc2b2ae3d27d4eb4full) >> (8 * i));
  }
  *this = Chacha20Rng(seed, stream_id);
}

Chacha20Rng::Seed Chacha20Rng::OsSeed() {
  Seed seed;
  std::random_device rd;
  for (size_t i = 0; i < seed.size(); i += 4) {
    uint32_t v = rd();
    seed[i] = static_cast<uint8_t>(v);
    seed[i + 1] = static_cast<uint8_t>(v >> 8);
    seed[i + 2] = static_cast<uint8_t>(v >> 16);
    seed[i + 3] = static_cast<uint8_t>(v >> 24);
  }
  return seed;
}

Chacha20Rng Chacha20Rng::Fork(uint64_t label) {
  Seed child_seed;
  FillBytes(child_seed.data(), child_seed.size());
  return Chacha20Rng(child_seed, label);
}

void Chacha20Rng::Refill() {
  ChaCha20Block(key_, counter_, nonce_, &buffer_);
  ++counter_;
  if (counter_ == 0) {
    // 256 GiB of keystream consumed on one nonce: advance the nonce rather
    // than repeat blocks.
    ++nonce_[2];
  }
  buffer_pos_ = 0;
}

uint64_t Chacha20Rng::NextU64() {
  if (buffer_pos_ + 8 > 64) Refill();
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | buffer_[buffer_pos_ + static_cast<size_t>(i)];
  }
  buffer_pos_ += 8;
  return v;
}

uint32_t Chacha20Rng::NextU32() {
  if (buffer_pos_ + 4 > 64) Refill();
  uint32_t v = static_cast<uint32_t>(buffer_[buffer_pos_]) |
               (static_cast<uint32_t>(buffer_[buffer_pos_ + 1]) << 8) |
               (static_cast<uint32_t>(buffer_[buffer_pos_ + 2]) << 16) |
               (static_cast<uint32_t>(buffer_[buffer_pos_ + 3]) << 24);
  buffer_pos_ += 4;
  return v;
}

void Chacha20Rng::FillBytes(uint8_t* out, size_t len) {
  size_t written = 0;
  while (written < len) {
    if (buffer_pos_ >= 64) Refill();
    size_t take = std::min<size_t>(64 - buffer_pos_, len - written);
    std::memcpy(out + written, buffer_.data() + buffer_pos_, take);
    buffer_pos_ += take;
    written += take;
  }
}

uint64_t Chacha20Rng::UniformBelow(uint64_t bound) {
  SKNN_CHECK_GE(bound, 1u);
  if (bound == 1) return 0;
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - (UINT64_MAX % bound + 1) % bound;
  for (;;) {
    uint64_t v = NextU64();
    if (v <= limit) return v % bound;
  }
}

uint64_t Chacha20Rng::UniformInRange(uint64_t lo, uint64_t hi) {
  SKNN_CHECK_LE(lo, hi);
  uint64_t span = hi - lo;
  if (span == UINT64_MAX) return NextU64();
  return lo + UniformBelow(span + 1);
}

double Chacha20Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

void Chacha20Rng::SampleTernary(uint64_t q, size_t n,
                                std::vector<uint64_t>* out) {
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t r = UniformBelow(3);
    (*out)[i] = (r == 2) ? q - 1 : r;  // {0,1,q-1} == {0,1,-1} mod q
  }
}

void Chacha20Rng::SampleGaussian(uint64_t q, double sigma, size_t n,
                                 std::vector<uint64_t>* out) {
  SKNN_CHECK_GT(sigma, 0.0);
  // Inverse-CDF table over the integer support [-tail, tail], tail = 6*sigma.
  const int tail = static_cast<int>(std::ceil(6.0 * sigma));
  std::vector<double> cdf(static_cast<size_t>(2 * tail + 1));
  double acc = 0.0;
  for (int x = -tail; x <= tail; ++x) {
    acc += std::exp(-(static_cast<double>(x) * x) / (2.0 * sigma * sigma));
    cdf[static_cast<size_t>(x + tail)] = acc;
  }
  const double total = acc;
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    double u = NextDouble() * total;
    // Binary search for the first cdf entry >= u.
    size_t lo = 0, hi = cdf.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    int64_t x = static_cast<int64_t>(lo) - tail;
    (*out)[i] = (x >= 0) ? static_cast<uint64_t>(x)
                         : q - static_cast<uint64_t>(-x);
  }
}

void Chacha20Rng::SampleUniformMod(uint64_t q, size_t n,
                                   std::vector<uint64_t>* out) {
  out->resize(n);
  SampleUniformModInto(q, n, out->data());
}

void Chacha20Rng::SampleUniformModInto(uint64_t q, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = UniformBelow(q);
}

std::vector<size_t> Chacha20Rng::RandomPermutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t i = n; i > 1; --i) {
    size_t j = static_cast<size_t>(UniformBelow(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace sknn
