#ifndef SKNN_COMMON_LOGGING_H_
#define SKNN_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

// Minimal logging + check macros in the glog style. INFO/WARNING go to
// stderr; FATAL aborts. SKNN_CHECK is active in all build modes (it guards
// internal invariants, not user input — user input errors return Status).

namespace sknn {
namespace internal_logging {

enum class LogSeverity { kInfo, kWarning, kError, kFatal };

class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity)
      : severity_(severity) {
    stream_ << "[" << Basename(file) << ":" << line << "] ";
  }

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    if (severity_ == LogSeverity::kFatal) {
      std::cerr.flush();
      std::abort();
    }
  }

  std::ostringstream& stream() { return stream_; }

 private:
  static const char* Basename(const char* file) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace sknn

#define SKNN_LOG_INFO                                 \
  ::sknn::internal_logging::LogMessage(               \
      __FILE__, __LINE__,                             \
      ::sknn::internal_logging::LogSeverity::kInfo)   \
      .stream()
#define SKNN_LOG_WARNING                              \
  ::sknn::internal_logging::LogMessage(               \
      __FILE__, __LINE__,                             \
      ::sknn::internal_logging::LogSeverity::kWarning) \
      .stream()
#define SKNN_LOG_FATAL                                \
  ::sknn::internal_logging::LogMessage(               \
      __FILE__, __LINE__,                             \
      ::sknn::internal_logging::LogSeverity::kFatal)  \
      .stream()

// Internal invariant check; aborts with a message when violated.
#define SKNN_CHECK(cond)                                       \
  if (!(cond)) SKNN_LOG_FATAL << "Check failed: " #cond " "

#define SKNN_CHECK_EQ(a, b) SKNN_CHECK((a) == (b))
#define SKNN_CHECK_NE(a, b) SKNN_CHECK((a) != (b))
#define SKNN_CHECK_LT(a, b) SKNN_CHECK((a) < (b))
#define SKNN_CHECK_LE(a, b) SKNN_CHECK((a) <= (b))
#define SKNN_CHECK_GT(a, b) SKNN_CHECK((a) > (b))
#define SKNN_CHECK_GE(a, b) SKNN_CHECK((a) >= (b))

#endif  // SKNN_COMMON_LOGGING_H_
