#ifndef SKNN_COMMON_LOGGING_H_
#define SKNN_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/trace_id.h"

// Minimal logging + check macros in the glog style. Messages go to stderr
// prefixed with a severity tag ([I]/[W]/[E]/[F]); FATAL aborts. A thread
// with an active distributed trace id (common/trace_id.h) gets a
// `[trace=<hex>]` tag appended, so one query's log lines correlate across
// the client, Party A and Party B processes. The `SKNN_LOG_LEVEL`
// environment variable (I, W, E or F — read once per process) suppresses
// messages below the named severity, so chaos/soak runs can silence INFO
// chatter; FATAL always prints and aborts regardless. SKNN_CHECK is
// active in all build modes (it guards internal invariants, not user
// input — user input errors return Status).

namespace sknn {
namespace internal_logging {

enum class LogSeverity { kInfo, kWarning, kError, kFatal };

// Minimum severity that actually reaches stderr, from SKNN_LOG_LEVEL.
// Unset or unrecognized -> kInfo (everything prints).
inline LogSeverity MinLogSeverity() {
  static const LogSeverity min_severity = [] {
    const char* env = std::getenv("SKNN_LOG_LEVEL");
    if (env == nullptr || env[0] == '\0') return LogSeverity::kInfo;
    switch (env[0]) {
      case 'W': case 'w': return LogSeverity::kWarning;
      case 'E': case 'e': return LogSeverity::kError;
      case 'F': case 'f': return LogSeverity::kFatal;
      default: return LogSeverity::kInfo;
    }
  }();
  return min_severity;
}

class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity)
      : severity_(severity) {
    stream_ << "[" << SeverityTag(severity) << " " << Basename(file) << ":"
            << line << "]";
    const uint64_t trace_id = ::sknn::trace::CurrentTraceId();
    if (trace_id != 0) {
      stream_ << "[trace=" << ::sknn::trace::TraceIdHex(trace_id) << "]";
    }
    stream_ << " ";
  }

  ~LogMessage() {
    // FATAL is never filtered: the message is the abort diagnosis.
    if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
      stream_ << "\n";
      std::cerr << stream_.str();
    }
    if (severity_ == LogSeverity::kFatal) {
      std::cerr.flush();
      std::abort();
    }
  }

  std::ostringstream& stream() { return stream_; }

 private:
  static char SeverityTag(LogSeverity severity) {
    switch (severity) {
      case LogSeverity::kInfo: return 'I';
      case LogSeverity::kWarning: return 'W';
      case LogSeverity::kError: return 'E';
      case LogSeverity::kFatal: return 'F';
    }
    return '?';
  }

  static const char* Basename(const char* file) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace sknn

#define SKNN_LOG_INFO                                 \
  ::sknn::internal_logging::LogMessage(               \
      __FILE__, __LINE__,                             \
      ::sknn::internal_logging::LogSeverity::kInfo)   \
      .stream()
#define SKNN_LOG_WARNING                              \
  ::sknn::internal_logging::LogMessage(               \
      __FILE__, __LINE__,                             \
      ::sknn::internal_logging::LogSeverity::kWarning) \
      .stream()
#define SKNN_LOG_ERROR                                \
  ::sknn::internal_logging::LogMessage(               \
      __FILE__, __LINE__,                             \
      ::sknn::internal_logging::LogSeverity::kError)  \
      .stream()
#define SKNN_LOG_FATAL                                \
  ::sknn::internal_logging::LogMessage(               \
      __FILE__, __LINE__,                             \
      ::sknn::internal_logging::LogSeverity::kFatal)  \
      .stream()

// Internal invariant check; aborts with a message when violated.
#define SKNN_CHECK(cond)                                       \
  if (!(cond)) SKNN_LOG_FATAL << "Check failed: " #cond " "

#define SKNN_CHECK_EQ(a, b) SKNN_CHECK((a) == (b))
#define SKNN_CHECK_NE(a, b) SKNN_CHECK((a) != (b))
#define SKNN_CHECK_LT(a, b) SKNN_CHECK((a) < (b))
#define SKNN_CHECK_LE(a, b) SKNN_CHECK((a) <= (b))
#define SKNN_CHECK_GT(a, b) SKNN_CHECK((a) > (b))
#define SKNN_CHECK_GE(a, b) SKNN_CHECK((a) >= (b))

#endif  // SKNN_COMMON_LOGGING_H_
