#ifndef SKNN_COMMON_XXHASH_H_
#define SKNN_COMMON_XXHASH_H_

#include <cstddef>
#include <cstdint>

// Self-contained XXH64 (Yann Collet's xxHash, 64-bit variant). Used as the
// frame checksum of the transport envelope (src/net/frame.h): fast enough
// to be negligible next to ciphertext serialization, and strong enough that
// a random bit flip, truncation, or splice is detected with probability
// 1 - 2^-64. This is an integrity check against *accidental* corruption,
// not a MAC: a malicious network can forge it, which is outside the
// honest-but-curious threat model (DESIGN.md §8).

namespace sknn {

// Hashes `len` bytes of `data` with the given seed. Matches the reference
// XXH64 implementation bit-for-bit (vectors pinned in frame_test.cc).
uint64_t Xxh64(const void* data, size_t len, uint64_t seed);

}  // namespace sknn

#endif  // SKNN_COMMON_XXHASH_H_
