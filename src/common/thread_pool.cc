#include "common/thread_pool.h"

#include <atomic>

#include "common/trace.h"

namespace sknn {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  if (num_threads <= 1) return;  // inline mode, no workers
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  if (threads_.empty()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      fn = std::move(queue_.front());
      queue_.pop();
    }
    fn();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  if (threads_.empty()) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Shared state lives in a shared_ptr: worker lambdas scheduled for this
  // call may wake after the caller has already observed completion and
  // returned, so they must not reference the caller's stack.
  struct BatchState {
    std::atomic<size_t> next;
    std::atomic<size_t> done{0};
    size_t end;
    size_t total;
    const std::function<void(size_t)>* fn;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<BatchState>();
  state->next.store(begin);
  state->end = end;
  state->total = end - begin;
  state->fn = &fn;
  // Workers inherit the caller's trace-span path and distributed trace id
  // so spans opened inside fn nest under the phase that issued the
  // ParallelFor and stay attributed to the same query (the caller's own
  // iterations already run under both).
  const std::string trace_path = trace::Tracer::CurrentPath();
  const uint64_t trace_id = trace::CurrentTraceId();
  const size_t workers = threads_.size();
  for (size_t w = 0; w < workers; ++w) {
    Schedule([state, trace_path, trace_id] {
      trace::Tracer::ScopedPath scoped_path(trace_path);
      trace::ScopedTraceId scoped_trace_id(trace_id);
      for (;;) {
        size_t i = state->next.fetch_add(1);
        if (i >= state->end) break;
        (*state->fn)(i);
        if (state->done.fetch_add(1) + 1 == state->total) {
          std::lock_guard<std::mutex> lock(state->mu);
          state->cv.notify_all();
        }
      }
    });
  }
  // The caller also participates so the pool cannot deadlock on nested
  // ParallelFor calls issued from worker threads.
  for (;;) {
    size_t i = state->next.fetch_add(1);
    if (i >= state->end) break;
    fn(i);
    if (state->done.fetch_add(1) + 1 == state->total) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->cv.notify_all();
    }
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load() == state->total; });
}

}  // namespace sknn
