#ifndef SKNN_COMMON_METRICS_REGISTRY_H_
#define SKNN_COMMON_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

// Named counters and gauges for protocol and substrate instrumentation.
//
// A `Counter` is a monotonically increasing uint64 (homomorphic-op counts,
// message counts); a `Gauge` is a last-write-wins double (noise budgets,
// security bits). Handles returned by `GetCounter`/`GetGauge` are stable
// for the registry's lifetime, so hot paths cache the pointer once (e.g.
// in a function-local static) and pay one relaxed atomic add per event —
// the BGV evaluator counts every primitive this way, always-on.
//
// Naming taxonomy (dot-separated, coarse-to-fine):
//   bgv.evaluator.<op>    evaluator primitives (multiply, rotate, ...)
//   core.<party>.<op>     protocol-level counts exported from OpCounts
//   baseline.<...>        Paillier baseline equivalents
// `core::OpCounts` (the per-party struct the paper's Table 1 is built
// from) stays the protocol-facing aggregate; `OpCounts::ExportTo` maps it
// into this registry under a caller-chosen prefix.

namespace sknn {

class MetricsRegistry {
 public:
  class Counter {
   public:
    void Add(uint64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
    void Increment() { Add(1); }
    uint64_t value() const { return v_.load(std::memory_order_relaxed); }
    void Reset() { v_.store(0, std::memory_order_relaxed); }

   private:
    std::atomic<uint64_t> v_{0};
  };

  class Gauge {
   public:
    void Set(double v) { v_.store(v, std::memory_order_relaxed); }
    double value() const { return v_.load(std::memory_order_relaxed); }

   private:
    std::atomic<double> v_{0};
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry used by library instrumentation.
  static MetricsRegistry& Global();

  // Returns the counter/gauge with this name, creating it at zero on first
  // use. The pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);

  // Point-in-time snapshots (name -> value), sorted by name.
  std::map<std::string, uint64_t> CounterValues() const;
  std::map<std::string, double> GaugeValues() const;

  // Adds every counter of `other` into this registry and overwrites gauges
  // with `other`'s values. Used to fold per-worker or per-run registries
  // into an aggregate.
  void MergeFrom(const MetricsRegistry& other);

  // Zeroes all counters and gauges (names and handles survive).
  void ResetValues();

  // Counter snapshot rendered as a JSON object (for trace files and
  // BENCH_*.json).
  std::string CountersJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

}  // namespace sknn

#endif  // SKNN_COMMON_METRICS_REGISTRY_H_
