#ifndef SKNN_COMMON_METRICS_REGISTRY_H_
#define SKNN_COMMON_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

// Named counters, gauges and histograms for protocol and substrate
// instrumentation.
//
// A `Counter` is a monotonically increasing uint64 (homomorphic-op counts,
// message counts); a `Gauge` is a last-write-wins double (noise budgets,
// security bits); a `Histogram` is a lock-free log-bucketed distribution
// (latencies in ns, transfer sizes in bytes) with p50/p95/p99/max readout.
// Handles returned by `GetCounter`/`GetGauge`/`GetHistogram` are stable
// for the registry's lifetime, so hot paths cache the pointer once (e.g.
// in a function-local static) and pay one relaxed atomic add per event —
// the BGV evaluator counts every primitive this way, always-on.
//
// Naming taxonomy (dot-separated, coarse-to-fine):
//   bgv.evaluator.<op>    evaluator primitives (multiply, rotate, ...)
//   core.<party>.<op>     protocol-level counts exported from OpCounts
//   baseline.<...>        Paillier baseline equivalents
// `core::OpCounts` (the per-party struct the paper's Table 1 is built
// from) stays the protocol-facing aggregate; `OpCounts::ExportTo` maps it
// into this registry under a caller-chosen prefix.

namespace sknn {

class MetricsRegistry {
 public:
  class Counter {
   public:
    void Add(uint64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
    void Increment() { Add(1); }
    uint64_t value() const { return v_.load(std::memory_order_relaxed); }
    void Reset() { v_.store(0, std::memory_order_relaxed); }

   private:
    std::atomic<uint64_t> v_{0};
  };

  class Gauge {
   public:
    void Set(double v) { v_.store(v, std::memory_order_relaxed); }
    // Atomic read-modify-write for gauges tracking a live count (e.g.
    // server.connections.active) updated from concurrent threads; a
    // load/Set pair would lose updates under contention.
    void Add(double delta) {
      double cur = v_.load(std::memory_order_relaxed);
      while (!v_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
      }
    }
    double value() const { return v_.load(std::memory_order_relaxed); }

   private:
    std::atomic<double> v_{0};
  };

  // Lock-free log-bucketed histogram (HDR-lite). Values below kSubBuckets
  // land in exact unit buckets; above that each power-of-two octave is
  // split into kSubBuckets sub-buckets, so the relative bucket width is
  // <= 1/kSubBuckets (12.5%) across the full uint64 range. `Record` is a
  // handful of relaxed atomic ops (no locks, no allocation), cheap enough
  // to call from every TraceSpan completion; `BM_HistogramRecord` in
  // bench_microops pins the per-event cost.
  //
  // Concurrent `Record`s are individually atomic but the aggregate
  // (count/sum/buckets) is only eventually consistent: a snapshot taken
  // while writers are active may be off by in-flight events. That is fine
  // for telemetry; quantile readout walks a bucket snapshot.
  class Histogram {
   public:
    static constexpr int kSubBucketBits = 3;
    static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 8
    static constexpr int kNumBuckets =
        kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;  // 496

    void Record(uint64_t v) {
      buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
      sum_.fetch_add(v, std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
      uint64_t cur = max_.load(std::memory_order_relaxed);
      while (v > cur && !max_.compare_exchange_weak(
                            cur, v, std::memory_order_relaxed)) {
      }
    }

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    uint64_t max() const { return max_.load(std::memory_order_relaxed); }
    uint64_t bucket_count(int i) const {
      return buckets_[i].load(std::memory_order_relaxed);
    }

    // Approximate value at quantile q in [0, 1]: the inclusive upper bound
    // of the bucket holding the q-th event (clamped to the observed max),
    // so reported percentiles never understate the true value by more than
    // one bucket width (<= 12.5% relative).
    uint64_t Quantile(double q) const;

    // Adds `other`'s events into this histogram.
    void MergeFrom(const Histogram& other);

    void Reset();

    // Inclusive upper bound of bucket `i` (the `le` label in Prometheus
    // exposition).
    static uint64_t BucketUpperBound(int i);
    static int BucketIndex(uint64_t v);

   private:
    std::atomic<uint64_t> buckets_[kNumBuckets]{};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> max_{0};
  };

  // Point-in-time distribution summary used by exporters.
  struct HistogramSnapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry used by library instrumentation.
  static MetricsRegistry& Global();

  // Returns the counter/gauge/histogram with this name, creating it at
  // zero on first use. The pointer stays valid for the registry's
  // lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Point-in-time snapshots (name -> value), sorted by name.
  std::map<std::string, uint64_t> CounterValues() const;
  std::map<std::string, double> GaugeValues() const;
  std::map<std::string, HistogramSnapshot> HistogramValues() const;

  // Adds every counter and histogram of `other` into this registry and
  // overwrites gauges with `other`'s values. Used to fold per-worker or
  // per-run registries into an aggregate.
  void MergeFrom(const MetricsRegistry& other);

  // Zeroes all counters, gauges and histograms (names and handles
  // survive).
  void ResetValues();

  // Counter snapshot rendered as a JSON object (for trace files and
  // BENCH_*.json).
  std::string CountersJson() const;

  // Histogram snapshot rendered as a JSON object: name -> {count, sum,
  // max, p50, p95, p99}. Embedded as the "histograms" key of every
  // BENCH_*.json row.
  std::string HistogramsJson() const;

  // Full registry in Prometheus text exposition format (version 0.0.4):
  // counters as `counter`, gauges as `gauge`, histograms as `histogram`
  // (cumulative `le` buckets + `_sum`/`_count`) plus a companion
  // `<name>_quantiles` summary carrying p50/p95/p99/max. Metric names are
  // sanitized (non-[a-zA-Z0-9_:] -> '_'). This is the payload of
  // `sknn_cli --metrics-out=FILE`.
  std::string PrometheusText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sknn

#endif  // SKNN_COMMON_METRICS_REGISTRY_H_
