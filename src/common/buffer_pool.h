#ifndef SKNN_COMMON_BUFFER_POOL_H_
#define SKNN_COMMON_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

// Free-list pool for the word buffers behind RnsPoly and the key-switch
// accumulators (DESIGN.md §3.3). A query makes thousands of short-lived
// polynomial temporaries, all drawn from a handful of distinct sizes
// (n × components words); recycling those buffers turns the hot path
// allocation-quiet: steady-state queries hit the free lists for every
// temporary and `bgv.alloc.pool_misses` stays flat.
//
// Ownership and reset rules:
//   - Acquire()/AcquireZeroed()/AcquireCopy() hand the caller exclusive
//     ownership of a std::vector<uint64_t> of exactly `words` elements.
//     Acquire() leaves recycled contents UNSPECIFIED (stale words from the
//     previous owner) — callers that need zeros must say so.
//   - Release() returns a buffer to the calling thread's free list; the
//     caller must not touch it afterwards. Releasing on a different
//     thread than Acquire is fine (free lists are per-thread, a buffer
//     simply migrates; the mutex-guarded global spill list rebalances
//     produce/free imbalances across threads).
//   - Buffers are keyed by capacity. Odd-capacity buffers (vectors grown
//     outside the pool) still recycle if a matching request arrives.
//
// Thread safety: the fast path is a thread-local free list (no
// synchronization, tsan-clean by construction); only the spill list takes
// a mutex. Caps bound the cached bytes per thread and globally; beyond
// them Release simply frees.
//
// Telemetry (process-wide, via MetricsRegistry::Global()):
//   bgv.alloc.pool_hits          counter  acquires served from a free list
//   bgv.alloc.pool_misses        counter  acquires that hit the heap
//   bgv.alloc.released           counter  buffers returned to the pool
//   bgv.alloc.bytes_outstanding  gauge    bytes currently owned by callers
// Allocations-per-query = delta of pool_misses across a query (the flight
// recorder records it per query as `heap_allocs`).

namespace sknn {

class BufferPool {
 public:
  // A buffer of `words` elements with unspecified contents.
  static std::vector<uint64_t> Acquire(size_t words);
  // A buffer of `words` zeros.
  static std::vector<uint64_t> AcquireZeroed(size_t words);
  // A buffer holding a copy of `src`.
  static std::vector<uint64_t> AcquireCopy(const std::vector<uint64_t>& src);

  // Returns a buffer to the pool (no-op for empty buffers). The moved-from
  // vector is left empty.
  static void Release(std::vector<uint64_t>&& buf);

  struct Stats {
    uint64_t pool_hits = 0;
    uint64_t pool_misses = 0;
    uint64_t released = 0;
    int64_t bytes_outstanding = 0;
  };
  static Stats GetStats();

  // Frees every cached buffer (this thread's free list and the global
  // spill list). Outstanding buffers are unaffected. Mostly for tests and
  // leak-checked shutdown paths.
  static void Clear();

  // RAII wrapper for non-RnsPoly scratch (key-switch accumulators):
  // acquires in the constructor, releases in the destructor.
  class Scoped {
   public:
    explicit Scoped(size_t words, bool zeroed = true)
        : buf_(zeroed ? AcquireZeroed(words) : Acquire(words)) {}
    ~Scoped() { Release(std::move(buf_)); }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

    uint64_t* data() { return buf_.data(); }
    const uint64_t* data() const { return buf_.data(); }
    size_t size() const { return buf_.size(); }
    std::vector<uint64_t>& vector() { return buf_; }

   private:
    std::vector<uint64_t> buf_;
  };
};

}  // namespace sknn

#endif  // SKNN_COMMON_BUFFER_POOL_H_
