#include "common/metrics_registry.h"

#include <cinttypes>
#include <cstdio>

#include "common/json_writer.h"

namespace sknn {
namespace {

// Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted,
// '/'-joined span paths do not, so map every other byte to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "_" + out;
  return out;
}

std::string U64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string Dbl(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int MetricsRegistry::Histogram::BucketIndex(uint64_t v) {
  if (v < kSubBuckets) return static_cast<int>(v);
  // Octave = floor(log2(v)) >= kSubBucketBits; the top kSubBucketBits+1
  // bits select {octave, sub-bucket}.
  const int octave = 63 - __builtin_clzll(v);
  const int sub = static_cast<int>((v >> (octave - kSubBucketBits)) &
                                   (kSubBuckets - 1));
  return kSubBuckets + (octave - kSubBucketBits) * kSubBuckets + sub;
}

uint64_t MetricsRegistry::Histogram::BucketUpperBound(int i) {
  if (i < kSubBuckets) return static_cast<uint64_t>(i);
  const int rel = i - kSubBuckets;
  const int octave = rel / kSubBuckets + kSubBucketBits;
  const int sub = rel % kSubBuckets;
  const uint64_t lower = static_cast<uint64_t>(kSubBuckets + sub)
                         << (octave - kSubBucketBits);
  const uint64_t width = uint64_t{1} << (octave - kSubBucketBits);
  return lower + width - 1;
}

uint64_t MetricsRegistry::Histogram::Quantile(double q) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = bucket_count(i);
    total += counts[i];
  }
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target event, 1-based; q=0 maps to the first event.
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
  if (target < 1) target = 1;
  if (target > total) target = total;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += counts[i];
    if (seen >= target) {
      const uint64_t upper = BucketUpperBound(i);
      const uint64_t observed_max = max();
      return upper < observed_max ? upper : observed_max;
    }
  }
  return max();
}

void MetricsRegistry::Histogram::MergeFrom(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = other.bucket_count(i);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  const uint64_t other_max = other.max();
  uint64_t cur = max_.load(std::memory_order_relaxed);
  while (other_max > cur &&
         !max_.compare_exchange_weak(cur, other_max,
                                     std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::Histogram::Reset() {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Counter* MetricsRegistry::GetCounter(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

MetricsRegistry::Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

MetricsRegistry::Histogram* MetricsRegistry::GetHistogram(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::map<std::string, uint64_t> MetricsRegistry::CounterValues() const {
  std::map<std::string, uint64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> MetricsRegistry::GaugeValues() const {
  std::map<std::string, double> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::map<std::string, MetricsRegistry::HistogramSnapshot>
MetricsRegistry::HistogramValues() const {
  std::map<std::string, HistogramSnapshot> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot snap;
    snap.count = hist->count();
    snap.sum = hist->sum();
    snap.max = hist->max();
    snap.p50 = hist->Quantile(0.50);
    snap.p95 = hist->Quantile(0.95);
    snap.p99 = hist->Quantile(0.99);
    out[name] = snap;
  }
  return out;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.CounterValues()) {
    if (value != 0) GetCounter(name)->Add(value);
  }
  for (const auto& [name, value] : other.GaugeValues()) {
    GetGauge(name)->Set(value);
  }
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    for (const auto& [name, hist] : other.histograms_) {
      if (hist->count() != 0) GetHistogram(name)->MergeFrom(*hist);
    }
  }
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Set(0);
  for (auto& [name, hist] : histograms_) hist->Reset();
}

std::string MetricsRegistry::CountersJson() const {
  json::ObjectWriter out;
  for (const auto& [name, value] : CounterValues()) out.Int(name, value);
  return out.Render();
}

std::string MetricsRegistry::HistogramsJson() const {
  json::ObjectWriter out;
  for (const auto& [name, snap] : HistogramValues()) {
    json::ObjectWriter row;
    row.Int("count", snap.count)
        .Int("sum", snap.sum)
        .Int("max", snap.max)
        .Int("p50", snap.p50)
        .Int("p95", snap.p95)
        .Int("p99", snap.p99);
    out.Raw(name, row.Render());
  }
  return out.Render();
}

std::string MetricsRegistry::PrometheusText() const {
  std::string out;
  for (const auto& [name, value] : CounterValues()) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + U64(value) + "\n";
  }
  for (const auto& [name, value] : GaugeValues()) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + Dbl(value) + "\n";
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, hist] : histograms_) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " histogram\n";
    uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t c = hist->bucket_count(i);
      if (c == 0) continue;  // only occupied buckets; `le` stays cumulative
      cumulative += c;
      out += pname + "_bucket{le=\"" + U64(Histogram::BucketUpperBound(i)) +
             "\"} " + U64(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + U64(cumulative) + "\n";
    out += pname + "_sum " + U64(hist->sum()) + "\n";
    out += pname + "_count " + U64(hist->count()) + "\n";
    const std::string qname = pname + "_quantiles";
    out += "# TYPE " + qname + " summary\n";
    out += qname + "{quantile=\"0.5\"} " + U64(hist->Quantile(0.50)) + "\n";
    out += qname + "{quantile=\"0.95\"} " + U64(hist->Quantile(0.95)) + "\n";
    out += qname + "{quantile=\"0.99\"} " + U64(hist->Quantile(0.99)) + "\n";
    out += qname + "{quantile=\"1\"} " + U64(hist->max()) + "\n";
    out += qname + "_sum " + U64(hist->sum()) + "\n";
    out += qname + "_count " + U64(hist->count()) + "\n";
  }
  return out;
}

}  // namespace sknn
