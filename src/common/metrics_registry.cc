#include "common/metrics_registry.h"

#include "common/json_writer.h"

namespace sknn {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Counter* MetricsRegistry::GetCounter(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

MetricsRegistry::Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

std::map<std::string, uint64_t> MetricsRegistry::CounterValues() const {
  std::map<std::string, uint64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> MetricsRegistry::GaugeValues() const {
  std::map<std::string, double> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.CounterValues()) {
    if (value != 0) GetCounter(name)->Add(value);
  }
  for (const auto& [name, value] : other.GaugeValues()) {
    GetGauge(name)->Set(value);
  }
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Set(0);
}

std::string MetricsRegistry::CountersJson() const {
  json::ObjectWriter out;
  for (const auto& [name, value] : CounterValues()) out.Int(name, value);
  return out.Render();
}

}  // namespace sknn
