#include "common/buffer_pool.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/metrics_registry.h"

namespace sknn {
namespace {

// Caps on cached (idle) bytes. Generous relative to the working set of one
// query at n=8192 (a poly is ≤ ~0.5 MiB, a query juggles a few dozen);
// beyond them Release degrades to plain free. Outstanding buffers are
// never bounded by the pool — it only limits what sits idle.
constexpr size_t kMaxThreadCacheBytes = size_t{64} << 20;   // per thread
constexpr size_t kMaxGlobalCacheBytes = size_t{128} << 20;  // spill list
// Per-size cap on a thread's free list: bounds worst-case idle memory when
// a phase churns through many buffers of one size sequentially.
constexpr size_t kMaxBuffersPerSize = 16;

struct PoolCounters {
  MetricsRegistry::Counter* hits;
  MetricsRegistry::Counter* misses;
  MetricsRegistry::Counter* released;
  MetricsRegistry::Gauge* bytes_outstanding;
};

PoolCounters& Counters() {
  static PoolCounters counters = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return PoolCounters{reg.GetCounter("bgv.alloc.pool_hits"),
                        reg.GetCounter("bgv.alloc.pool_misses"),
                        reg.GetCounter("bgv.alloc.released"),
                        reg.GetGauge("bgv.alloc.bytes_outstanding")};
  }();
  return counters;
}

// bytes_outstanding is tracked in a plain atomic (gauges are last-write-
// wins doubles; concurrent read-modify-write through one would race) and
// mirrored into the gauge after every change.
std::atomic<int64_t>& OutstandingBytes() {
  static std::atomic<int64_t> bytes{0};
  return bytes;
}

void TrackAcquire(size_t words, bool hit) {
  PoolCounters& c = Counters();
  (hit ? c.hits : c.misses)->Increment();
  const int64_t now = OutstandingBytes().fetch_add(
                          static_cast<int64_t>(words * sizeof(uint64_t)),
                          std::memory_order_relaxed) +
                      static_cast<int64_t>(words * sizeof(uint64_t));
  c.bytes_outstanding->Set(static_cast<double>(now));
}

void TrackRelease(size_t words) {
  PoolCounters& c = Counters();
  c.released->Increment();
  const int64_t now = OutstandingBytes().fetch_sub(
                          static_cast<int64_t>(words * sizeof(uint64_t)),
                          std::memory_order_relaxed) -
                      static_cast<int64_t>(words * sizeof(uint64_t));
  c.bytes_outstanding->Set(static_cast<double>(now));
}

using FreeMap = std::unordered_map<size_t, std::vector<std::vector<uint64_t>>>;

struct GlobalCache {
  std::mutex mu;
  FreeMap by_words;
  size_t cached_bytes = 0;
};

GlobalCache& Global() {
  static GlobalCache* cache = new GlobalCache();  // leaked: outlives TLS dtors
  return *cache;
}

// Thread-local free list. `alive` guards the teardown race: a thread_local
// RnsPoly destroyed after this struct's destructor ran (destruction order
// between TLS objects is unspecified) must not repopulate a dead list.
struct ThreadCache {
  FreeMap by_words;
  size_t cached_bytes = 0;
  bool alive = true;
  ~ThreadCache() { alive = false; }
};

ThreadCache& Local() {
  static thread_local ThreadCache cache;
  return cache;
}

bool PopFrom(FreeMap& map, size_t* cached_bytes, size_t words,
             std::vector<uint64_t>* out) {
  auto it = map.find(words);
  if (it == map.end() || it->second.empty()) return false;
  *out = std::move(it->second.back());
  it->second.pop_back();
  *cached_bytes -= words * sizeof(uint64_t);
  return true;
}

// A buffer of capacity >= words (== in practice) or empty on miss.
std::vector<uint64_t> TakeCached(size_t words) {
  std::vector<uint64_t> buf;
  ThreadCache& local = Local();
  if (local.alive && PopFrom(local.by_words, &local.cached_bytes, words, &buf)) {
    return buf;
  }
  GlobalCache& global = Global();
  std::lock_guard<std::mutex> lock(global.mu);
  PopFrom(global.by_words, &global.cached_bytes, words, &buf);
  return buf;
}

}  // namespace

std::vector<uint64_t> BufferPool::Acquire(size_t words) {
  if (words == 0) return {};
  std::vector<uint64_t> buf = TakeCached(words);
  const bool hit = !buf.empty();
  if (!hit) buf.resize(words);
  TrackAcquire(words, hit);
  return buf;
}

std::vector<uint64_t> BufferPool::AcquireZeroed(size_t words) {
  if (words == 0) return {};
  std::vector<uint64_t> buf = TakeCached(words);
  const bool hit = !buf.empty();
  if (hit) {
    std::fill(buf.begin(), buf.end(), 0);
  } else {
    buf.resize(words);  // value-initialized to zero
  }
  TrackAcquire(words, hit);
  return buf;
}

std::vector<uint64_t> BufferPool::AcquireCopy(const std::vector<uint64_t>& src) {
  if (src.empty()) return {};
  std::vector<uint64_t> buf = TakeCached(src.size());
  const bool hit = !buf.empty();
  if (hit) {
    std::copy(src.begin(), src.end(), buf.begin());
  } else {
    buf = src;
  }
  TrackAcquire(src.size(), hit);
  return buf;
}

void BufferPool::Release(std::vector<uint64_t>&& buf) {
  // Key by capacity: a buffer that was resized below its allocation still
  // recycles at full size for the next exact-capacity request.
  const size_t words = buf.capacity();
  if (words == 0) return;
  TrackRelease(buf.size());
  buf.resize(words);
  const size_t bytes = words * sizeof(uint64_t);

  ThreadCache& local = Local();
  if (local.alive && local.cached_bytes + bytes <= kMaxThreadCacheBytes) {
    std::vector<std::vector<uint64_t>>& list = local.by_words[words];
    if (list.size() < kMaxBuffersPerSize) {
      list.push_back(std::move(buf));
      local.cached_bytes += bytes;
      return;
    }
  }
  GlobalCache& global = Global();
  {
    std::lock_guard<std::mutex> lock(global.mu);
    if (global.cached_bytes + bytes <= kMaxGlobalCacheBytes) {
      global.by_words[words].push_back(std::move(buf));
      global.cached_bytes += bytes;
      return;
    }
  }
  // Both caches full: let the vector free on scope exit.
}

BufferPool::Stats BufferPool::GetStats() {
  PoolCounters& c = Counters();
  Stats s;
  s.pool_hits = c.hits->value();
  s.pool_misses = c.misses->value();
  s.released = c.released->value();
  s.bytes_outstanding = OutstandingBytes().load(std::memory_order_relaxed);
  return s;
}

void BufferPool::Clear() {
  ThreadCache& local = Local();
  if (local.alive) {
    local.by_words.clear();
    local.cached_bytes = 0;
  }
  GlobalCache& global = Global();
  std::lock_guard<std::mutex> lock(global.mu);
  global.by_words.clear();
  global.cached_bytes = 0;
}

}  // namespace sknn
