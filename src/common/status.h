#ifndef SKNN_COMMON_STATUS_H_
#define SKNN_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

// Lightweight Status/StatusOr error handling in the style of Abseil/Arrow.
// The project does not use exceptions; every fallible operation returns a
// Status or StatusOr<T>.

namespace sknn {

// Canonical error codes (subset of the Abseil canonical space that this
// project needs).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kFailedPrecondition = 2,
  kOutOfRange = 3,
  kInternal = 4,
  kNotFound = 5,
  kUnimplemented = 6,
  kResourceExhausted = 7,
  // Transport/fault taxonomy (see IsTransientCode below). kUnavailable: the
  // peer's message has not arrived (empty queue, delayed delivery);
  // kDeadlineExceeded: a bounded wait for it timed out; kDataLoss: a frame
  // arrived but failed integrity checks (corruption, truncation, desync);
  // kAborted: an operation was abandoned mid-flight and may be re-issued.
  kUnavailable = 8,
  kDeadlineExceeded = 9,
  kDataLoss = 10,
  kAborted = 11,
};

// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

// True for error codes that a retry (of the receive poll, or of the whole
// protocol leg — the messages are idempotent to re-request, PROTOCOL.md
// "Frame envelope & recovery") can plausibly cure: kUnavailable,
// kDeadlineExceeded, kDataLoss, kAborted. Everything else — malformed
// arguments, protocol-logic violations, unimplemented paths — is fatal.
bool IsTransientCode(StatusCode code);

// A Status holds either "OK" or an error code plus message. Cheap to copy
// in the OK case (empty message).
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  // True if this is an error a retry may cure (never true for OK).
  bool IsTransient() const { return !ok() && IsTransientCode(code_); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Returns "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Returns `status` unchanged when OK; otherwise the same code with
// "<prefix>: <original message>". Used by recovery layers (worker
// reconnect, whole-query re-execution) to say *where* a transient error
// was handled without disturbing the typed code the caller dispatches on.
Status Annotate(const Status& status, const std::string& prefix);

// Convenience constructors mirroring absl::*Error.
Status InvalidArgumentError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status InternalError(std::string message);
Status NotFoundError(std::string message);
Status UnimplementedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);
Status DataLossError(std::string message);
Status AbortedError(std::string message);

}  // namespace sknn

// Evaluates `expr` (a Status expression) and returns it from the enclosing
// function if it is not OK.
#define SKNN_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::sknn::Status sknn_status_tmp_ = (expr);        \
    if (!sknn_status_tmp_.ok()) return sknn_status_tmp_; \
  } while (false)

#define SKNN_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define SKNN_STATUS_MACROS_CONCAT_(x, y) SKNN_STATUS_MACROS_CONCAT_INNER_(x, y)

// Evaluates `rexpr` (a StatusOr<T> expression); on error returns the status,
// otherwise assigns the value to `lhs`.
#define SKNN_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  SKNN_ASSIGN_OR_RETURN_IMPL_(                                             \
      SKNN_STATUS_MACROS_CONCAT_(sknn_statusor_, __LINE__), lhs, rexpr)

#define SKNN_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                \
  if (!statusor.ok()) return std::move(statusor).status(); \
  lhs = std::move(statusor).value()

#endif  // SKNN_COMMON_STATUS_H_
