#ifndef SKNN_COMMON_RNG_H_
#define SKNN_COMMON_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

// Deterministic cryptographic randomness for the whole project.
//
// The generator is the ChaCha20 stream cipher (RFC 8439) keyed with a
// 256-bit seed; the keystream is the random stream. Every experiment in the
// repository is reproducible because all randomness flows through explicitly
// seeded Chacha20Rng instances. On top of the raw stream we provide the
// samplers the lattice crypto needs: uniform residues, ternary secrets,
// discrete Gaussians, and Fisher-Yates permutations.

namespace sknn {

// ChaCha20 block function (exposed for test vectors). Generates one 64-byte
// keystream block for the given key, block counter and nonce.
void ChaCha20Block(const std::array<uint32_t, 8>& key, uint32_t counter,
                   const std::array<uint32_t, 3>& nonce,
                   std::array<uint8_t, 64>* out);

// A deterministic CSPRNG backed by the ChaCha20 keystream.
//
// Copyable (copies continue the stream independently from the same state,
// which is occasionally useful in tests; production code should Fork()).
class Chacha20Rng {
 public:
  using Seed = std::array<uint8_t, 32>;

  // Constructs from a 256-bit seed and a stream id; distinct stream ids on
  // the same seed yield independent streams.
  explicit Chacha20Rng(const Seed& seed, uint64_t stream_id = 0);

  // Convenience: expand a 64-bit seed into a full Seed (for tests/benches).
  explicit Chacha20Rng(uint64_t seed64, uint64_t stream_id = 0);

  // Returns a seed derived from the OS entropy source.
  static Seed OsSeed();

  // Derives an independent generator; the child stream is a deterministic
  // function of this generator's state and the label.
  Chacha20Rng Fork(uint64_t label);

  // Uniform random 64-bit value.
  uint64_t NextU64();
  // Uniform random 32-bit value.
  uint32_t NextU32();
  // Fills `out` with random bytes.
  void FillBytes(uint8_t* out, size_t len);

  // Uniform value in [0, bound) with rejection sampling (bound >= 1).
  uint64_t UniformBelow(uint64_t bound);

  // Uniform value in [lo, hi] inclusive (lo <= hi).
  uint64_t UniformInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Samples a ternary vector with entries in {-1, 0, 1} represented as
  // residues {q-1, 0, 1} modulo q.
  void SampleTernary(uint64_t q, size_t n, std::vector<uint64_t>* out);

  // Samples a centered discrete Gaussian vector with standard deviation
  // `sigma` (tail cut at 6*sigma), entries reduced modulo q.
  void SampleGaussian(uint64_t q, double sigma, size_t n,
                      std::vector<uint64_t>* out);

  // Samples a vector of uniform residues modulo q.
  void SampleUniformMod(uint64_t q, size_t n, std::vector<uint64_t>* out);

  // Same, writing into a caller-owned buffer of n words (e.g. one RNS
  // component of a flat RnsPoly).
  void SampleUniformModInto(uint64_t q, size_t n, uint64_t* out);

  // Returns a uniformly random permutation of {0, 1, ..., n-1}.
  std::vector<size_t> RandomPermutation(size_t n);

 private:
  void Refill();

  std::array<uint32_t, 8> key_;
  std::array<uint32_t, 3> nonce_;
  uint32_t counter_;
  std::array<uint8_t, 64> buffer_;
  size_t buffer_pos_;
};

}  // namespace sknn

#endif  // SKNN_COMMON_RNG_H_
