#include "common/serial.h"

#include <cstring>

namespace sknn {

void ByteSink::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteSink::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteSink::WriteU64Vector(const std::vector<uint64_t>& v) {
  WriteU64Span(v.data(), v.size());
}

void ByteSink::WriteU64Span(const uint64_t* v, size_t len) {
  WriteU64(len);
  size_t old = bytes_.size();
  bytes_.resize(old + 8 * len);
  for (size_t i = 0; i < len; ++i) {
    uint64_t x = v[i];
    for (int b = 0; b < 8; ++b) {
      bytes_[old + 8 * i + static_cast<size_t>(b)] =
          static_cast<uint8_t>(x >> (8 * b));
    }
  }
}

void ByteSink::WriteBytes(const uint8_t* data, size_t len) {
  bytes_.insert(bytes_.end(), data, data + len);
}

void ByteSink::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

Status ByteSource::Require(size_t n) const {
  if (pos_ + n > bytes_.size()) {
    return OutOfRangeError("ByteSource: truncated input");
  }
  return Status::Ok();
}

StatusOr<uint8_t> ByteSource::ReadU8() {
  SKNN_RETURN_IF_ERROR(Require(1));
  return bytes_[pos_++];
}

StatusOr<uint32_t> ByteSource::ReadU32() {
  SKNN_RETURN_IF_ERROR(Require(4));
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | bytes_[pos_ + static_cast<size_t>(i)];
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> ByteSource::ReadU64() {
  SKNN_RETURN_IF_ERROR(Require(8));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | bytes_[pos_ + static_cast<size_t>(i)];
  pos_ += 8;
  return v;
}

StatusOr<std::vector<uint64_t>> ByteSource::ReadU64Vector() {
  SKNN_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > remaining() / 8) {
    return OutOfRangeError("ByteSource: vector length exceeds input");
  }
  std::vector<uint64_t> v(static_cast<size_t>(n));
  for (size_t i = 0; i < v.size(); ++i) {
    uint64_t x = 0;
    for (int b = 7; b >= 0; --b) {
      x = (x << 8) | bytes_[pos_ + 8 * i + static_cast<size_t>(b)];
    }
    v[i] = x;
  }
  pos_ += 8 * v.size();
  return v;
}

Status ByteSource::ReadU64Span(uint64_t* out, size_t expected_len) {
  SKNN_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n != expected_len) {
    return OutOfRangeError("ByteSource: unexpected vector length");
  }
  SKNN_RETURN_IF_ERROR(Require(8 * expected_len));
  for (size_t i = 0; i < expected_len; ++i) {
    uint64_t x = 0;
    for (int b = 7; b >= 0; --b) {
      x = (x << 8) | bytes_[pos_ + 8 * i + static_cast<size_t>(b)];
    }
    out[i] = x;
  }
  pos_ += 8 * expected_len;
  return Status::Ok();
}

StatusOr<std::string> ByteSource::ReadString() {
  SKNN_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  SKNN_RETURN_IF_ERROR(Require(static_cast<size_t>(n)));
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                static_cast<size_t>(n));
  pos_ += static_cast<size_t>(n);
  return s;
}

}  // namespace sknn
