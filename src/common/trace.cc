#include "common/trace.h"

#include "common/json_writer.h"
#include "common/metrics_registry.h"

namespace sknn {
namespace trace {
namespace {

// Per-thread span state. `path` is the ancestry of the innermost open span;
// `innermost` receives channel-byte attribution. tids are small sequential
// ids (steadier across runs than pthread handles, and what the Chrome
// trace viewer groups rows by).
struct ThreadState {
  std::string path;
  TraceSpan* innermost = nullptr;
  uint32_t tid;

  ThreadState() {
    static std::atomic<uint32_t> next{0};
    tid = next.fetch_add(1, std::memory_order_relaxed);
  }
};

ThreadState& Tls() {
  static thread_local ThreadState state;
  return state;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
    epoch_ = std::chrono::steady_clock::now();
    epoch_steady_ns_.store(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                epoch_.time_since_epoch())
                .count()),
        std::memory_order_relaxed);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

uint64_t Tracer::EpochSteadyNs() const {
  return epoch_steady_ns_.load(std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

std::vector<SpanRecord> Tracer::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

uint64_t Tracer::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::Record(SpanRecord record) {
  // Every completed span also feeds the registry's histograms, keyed by
  // full path: latency always, byte-size distributions only for spans that
  // carried channel traffic. This runs only while tracing is enabled (span
  // destructors check before calling), so disabled hot paths stay free.
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetHistogram("latency_ns." + record.path)->Record(record.dur_ns);
  if (record.bytes_sent != 0) {
    registry.GetHistogram("bytes_sent." + record.path)
        ->Record(record.bytes_sent);
  }
  if (record.bytes_received != 0) {
    registry.GetHistogram("bytes_received." + record.path)
        ->Record(record.bytes_received);
  }
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

void Tracer::AddBytesSent(uint64_t n) {
  if (!enabled()) return;
  TraceSpan* span = Tls().innermost;
  if (span != nullptr) span->bytes_sent_ += n;
}

void Tracer::AddBytesReceived(uint64_t n) {
  if (!enabled()) return;
  TraceSpan* span = Tls().innermost;
  if (span != nullptr) span->bytes_received_ += n;
}

std::string Tracer::CurrentPath() {
  return Tracer::Global().enabled() ? Tls().path : std::string();
}

Tracer::ScopedPath::ScopedPath(const std::string& path) {
  if (!Tracer::Global().enabled()) return;
  ThreadState& tls = Tls();
  saved_ = tls.path;
  tls.path = path;
  active_ = true;
}

Tracer::ScopedPath::~ScopedPath() {
  if (!active_) return;
  Tls().path = std::move(saved_);
}

TraceSpan::TraceSpan(const char* name) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  ThreadState& tls = Tls();
  parent_path_len_ = tls.path.size();
  if (!tls.path.empty()) tls.path += '/';
  tls.path += name;
  parent_ = tls.innermost;
  tls.innermost = this;
  start_ns_ = tracer.NowNs();
  active_ = true;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  Tracer& tracer = Tracer::Global();
  ThreadState& tls = Tls();
  SpanRecord record;
  record.path = tls.path;
  record.start_ns = start_ns_;
  const uint64_t end_ns = tracer.NowNs();
  record.dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  record.tid = tls.tid;
  record.bytes_sent = bytes_sent_;
  record.bytes_received = bytes_received_;
  // The id active at close time: a ScopedTraceId established anywhere
  // inside the span (e.g. after the server parsed the preamble) still
  // tags it, and nested spans inherit it for free.
  record.trace_id = CurrentTraceId();
  tls.path.resize(parent_path_len_);
  tls.innermost = parent_;
  // A span that outlives Disable() is dropped rather than recorded into a
  // cleared buffer the next Enable() would misinterpret.
  if (tracer.enabled()) tracer.Record(std::move(record));
}

std::map<std::string, PhaseStats> Summarize(
    const std::vector<SpanRecord>& records) {
  std::map<std::string, PhaseStats> summary;
  for (const SpanRecord& r : records) {
    PhaseStats& stats = summary[r.path];
    stats.count += 1;
    stats.total_ns += r.dur_ns;
    stats.bytes_sent += r.bytes_sent;
    stats.bytes_received += r.bytes_received;
  }
  return summary;
}

std::string PhaseSummaryJson(
    const std::map<std::string, PhaseStats>& summary) {
  json::ObjectWriter out;
  for (const auto& [path, stats] : summary) {
    json::ObjectWriter row;
    row.Int("count", stats.count)
        .Num("seconds", stats.seconds())
        .Int("bytes_sent", stats.bytes_sent)
        .Int("bytes_received", stats.bytes_received);
    out.Raw(path, row.Render());
  }
  return out.Render();
}

namespace {

Status WriteChromeTraceImpl(const std::vector<SpanRecord>& records,
                            const TraceMeta* meta, const std::string& path) {
  std::vector<std::string> events;
  events.reserve(records.size());
  for (const SpanRecord& r : records) {
    const size_t slash = r.path.rfind('/');
    const std::string leaf =
        slash == std::string::npos ? r.path : r.path.substr(slash + 1);
    json::ObjectWriter args;
    args.Str("path", r.path);
    if (r.bytes_sent != 0) args.Int("bytes_sent", r.bytes_sent);
    if (r.bytes_received != 0) args.Int("bytes_received", r.bytes_received);
    if (r.trace_id != 0) args.Str("trace_id", TraceIdHex(r.trace_id));
    json::ObjectWriter ev;
    ev.Str("name", leaf)
        .Str("cat", "sknn")
        .Str("ph", "X")
        .Num("ts", static_cast<double>(r.start_ns) * 1e-3)  // microseconds
        .Num("dur", static_cast<double>(r.dur_ns) * 1e-3)
        .Int("pid", 1)
        .Int("tid", r.tid)
        .Raw("args", args.Render());
    events.push_back(ev.Render());
  }
  json::ObjectWriter doc;
  doc.Raw("traceEvents", json::Array(events));
  if (meta != nullptr) {
    json::ObjectWriter m;
    m.Str("process", meta->process)
        .Int("epoch_steady_ns", meta->epoch_steady_ns)
        .Raw("peer_clock_offset_ns",
             std::to_string(meta->peer_clock_offset_ns));
    doc.Raw("traceMeta", m.Render());
  }
  doc.Raw("phaseSummary", PhaseSummaryJson(Summarize(records)))
      .Raw("counters",
           MetricsRegistry::Global().CountersJson());
  if (!json::WriteFile(path, doc.Render())) {
    return InternalError("cannot write trace file: " + path);
  }
  return Status::Ok();
}

}  // namespace

Status WriteChromeTrace(const std::vector<SpanRecord>& records,
                        const std::string& path) {
  return WriteChromeTraceImpl(records, nullptr, path);
}

Status WriteChromeTrace(const std::vector<SpanRecord>& records,
                        const TraceMeta& meta, const std::string& path) {
  return WriteChromeTraceImpl(records, &meta, path);
}

Status WriteGlobalTrace(const std::string& path) {
  return WriteChromeTrace(Tracer::Global().Records(), path);
}

Status WriteGlobalTrace(const TraceMeta& meta, const std::string& path) {
  TraceMeta filled = meta;
  if (filled.epoch_steady_ns == 0) {
    filled.epoch_steady_ns = Tracer::Global().EpochSteadyNs();
  }
  return WriteChromeTrace(Tracer::Global().Records(), filled, path);
}

}  // namespace trace
}  // namespace sknn
