#ifndef SKNN_COMMON_THREAD_POOL_H_
#define SKNN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

// A small fixed-size thread pool plus a ParallelFor helper used by Party A
// to spread per-ciphertext work across cores. With num_threads <= 1 all work
// runs inline on the calling thread (the default on single-core containers),
// keeping execution deterministic.

namespace sknn {

class ThreadPool {
 public:
  // Creates a pool with `num_threads` workers; 0 means
  // hardware_concurrency().
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  // Schedules `fn` for execution; fire-and-forget (use ParallelFor for
  // joinable batches).
  void Schedule(std::function<void()> fn);

  // Runs fn(i) for i in [begin, end), partitioned across the pool, and
  // blocks until all iterations complete. fn must not throw. The calling
  // thread's trace-span path (common/trace.h) is propagated into the
  // workers, so TraceSpans opened inside fn nest under the caller's span.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace sknn

#endif  // SKNN_COMMON_THREAD_POOL_H_
