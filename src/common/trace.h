#ifndef SKNN_COMMON_TRACE_H_
#define SKNN_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/trace_id.h"

// Hierarchical phase tracing for the secure k-NN protocol.
//
// A `TraceSpan` is an RAII scope that measures one protocol phase (e.g.
// Party A's distance computation, the A->B transfer). Spans nest: a span
// opened while another is active becomes its child, and the full ancestry
// is recorded as a '/'-separated path ("query/party_a.distance/unit").
// `net::Channel` attributes the serialized size of every message it carries
// to the span active at Send/Receive time, so per-phase bandwidth falls out
// of the same tree as per-phase time.
//
// Collection is process-global (`Tracer::Global()`) and disabled by
// default: a disabled tracer makes span construction a single relaxed
// atomic load, so instrumentation can stay in the hot path. Completed spans
// accumulate thread-safely — `ThreadPool::ParallelFor` propagates the
// caller's span path into its workers (see `Tracer::ScopedPath`), so
// per-unit spans created on worker threads still land under the right
// parent.
//
// Exporters: `WriteChromeTrace` produces a Chrome `trace_event` JSON file
// (open in chrome://tracing or https://ui.perfetto.dev), with a flat
// per-phase summary and a counter snapshot embedded alongside the events;
// `Summarize`/`PhaseSummaryJson` give the same flat summary for embedding
// into the bench harnesses' BENCH_*.json outputs.

namespace sknn {
namespace trace {

// One completed span.
struct SpanRecord {
  std::string path;  // full ancestry, '/'-separated
  uint64_t start_ns = 0;  // relative to the tracer's Enable() epoch
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  // small stable per-thread id (0 = first seen)
  // Channel bytes attributed to this span (innermost active span wins; a
  // parent does NOT inherit its children's bytes — aggregate by path
  // prefix if you need inclusive numbers).
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  // The distributed trace id active when the span opened (0 = untraced).
  // Minted by the client per query and propagated over kControl preambles
  // (common/trace_id.h), so one query's spans share an id across the
  // client, Party A, and Party B processes.
  uint64_t trace_id = 0;
};

class TraceSpan;

class Tracer {
 public:
  static Tracer& Global();

  // Starts collecting: clears prior records and resets the time epoch.
  void Enable();
  // Stops collecting. Spans already open keep their state and are dropped
  // on close; spans opened while disabled are free no-ops.
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops collected records (keeps the enabled state and epoch). Benches
  // call this between sweep points.
  void Reset();

  // Snapshot of all completed spans, in completion order.
  std::vector<SpanRecord> Records() const;

  // The Enable() epoch as absolute steady-clock nanoseconds. All span
  // timestamps are relative to it; trace_stitch uses it (plus the
  // heartbeat-derived peer clock offset) to align trace files written by
  // different processes on the same machine, where the steady clock is
  // system-wide. 0 before the first Enable().
  uint64_t EpochSteadyNs() const;

  // Attributes bytes to the innermost span active on the calling thread.
  // No-op when disabled or outside any span. Called by net::Channel for
  // every message, and manually for the client legs that do not cross a
  // Channel.
  void AddBytesSent(uint64_t n);
  void AddBytesReceived(uint64_t n);

  // The calling thread's current span path ("" outside any span). Captured
  // by ThreadPool::ParallelFor and re-established in workers via
  // ScopedPath so spans created inside worker lambdas nest correctly.
  static std::string CurrentPath();

  // Re-establishes a captured span path on this thread for the scope's
  // lifetime (workers only carry the *path*, not byte attribution — bytes
  // sent from a worker thread outside any local span are dropped).
  class ScopedPath {
   public:
    explicit ScopedPath(const std::string& path);
    ~ScopedPath();
    ScopedPath(const ScopedPath&) = delete;
    ScopedPath& operator=(const ScopedPath&) = delete;

   private:
    std::string saved_;
    bool active_ = false;
  };

 private:
  friend class TraceSpan;

  Tracer() = default;
  uint64_t NowNs() const;
  void Record(SpanRecord record);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
  std::chrono::steady_clock::time_point epoch_{};
  std::atomic<uint64_t> epoch_steady_ns_{0};
};

// RAII span. Construct to open, destroy to close-and-record. Cheap no-op
// when the global tracer is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  friend class Tracer;

  bool active_ = false;
  uint64_t start_ns_ = 0;
  size_t parent_path_len_ = 0;
  TraceSpan* parent_ = nullptr;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

// Flat per-path aggregation of a record set.
struct PhaseStats {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;

  double seconds() const { return static_cast<double>(total_ns) * 1e-9; }
};

std::map<std::string, PhaseStats> Summarize(
    const std::vector<SpanRecord>& records);

// Renders a summary as a JSON object keyed by span path:
//   {"query/party_a.distance": {"count":1,"seconds":0.12,"bytes_sent":0,...}}
std::string PhaseSummaryJson(const std::map<std::string, PhaseStats>& summary);

// Per-process metadata embedded in a trace file so tools/trace_stitch.py
// can merge files from the client, Party A and Party B into one aligned
// timeline.
struct TraceMeta {
  // "client", "party_a", "party_b" (or any label; becomes the Chrome
  // process name of this file's rows after stitching).
  std::string process;
  // Tracer::Global().EpochSteadyNs() at write time: the absolute
  // steady-clock anchor of this file's relative timestamps.
  uint64_t epoch_steady_ns = 0;
  // Estimated (peer steady clock) - (our steady clock) in ns, measured
  // from heartbeat RTT on the A->B link (PartyAServer). 0 = unknown or
  // same clock. Only Party A fills this (its peer is B).
  int64_t peer_clock_offset_ns = 0;
};

// Writes a Chrome trace_event file:
//   { "traceEvents": [...complete events...],
//     "phaseSummary": {...PhaseSummaryJson...},
//     "counters": {...MetricsRegistry::Global() snapshot...} }
// chrome://tracing ignores the extra keys; tooling can read them directly.
// Span trace ids (when nonzero) appear as args.trace_id hex strings on
// the events. The meta overload additionally embeds a "traceMeta" object
// for trace_stitch.
Status WriteChromeTrace(const std::vector<SpanRecord>& records,
                        const std::string& path);
Status WriteChromeTrace(const std::vector<SpanRecord>& records,
                        const TraceMeta& meta, const std::string& path);

// Convenience: WriteChromeTrace(Tracer::Global().Records(), path).
Status WriteGlobalTrace(const std::string& path);
// Convenience with stitch metadata; fills meta.epoch_steady_ns from the
// global tracer when the caller leaves it 0.
Status WriteGlobalTrace(const TraceMeta& meta, const std::string& path);

}  // namespace trace
}  // namespace sknn

#endif  // SKNN_COMMON_TRACE_H_
