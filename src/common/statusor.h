#ifndef SKNN_COMMON_STATUSOR_H_
#define SKNN_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace sknn {

// StatusOr<T> holds either a value of type T or a non-OK Status explaining
// why the value is absent. Mirrors absl::StatusOr semantics for the subset
// this project needs.
template <typename T>
class StatusOr {
 public:
  // Constructs from an error status. Must not be OK (an OK status without a
  // value is a programming error and is converted to kInternal).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed with OK status, no value");
    }
  }

  // Constructs from a value.
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : status_(Status::Ok()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }

  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  // Accessors require ok(); checked by assert in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sknn

#endif  // SKNN_COMMON_STATUSOR_H_
