#ifndef SKNN_COMMON_U128_H_
#define SKNN_COMMON_U128_H_

#include <cstdint>

// Project-wide portability wrapper for 128-bit unsigned arithmetic.
//
// The Google style guide forbids nonstandard extensions outside of a
// designated portability header; this is that header. All 64x64->128
// multiplication and 128/64 reduction in the codebase goes through these
// helpers so that a fallback implementation can be swapped in on toolchains
// without `unsigned __int128`.

namespace sknn {

#if defined(__SIZEOF_INT128__)
using uint128_t = unsigned __int128;

// Returns the full 128-bit product of two 64-bit unsigned integers.
inline uint128_t Mul64To128(uint64_t a, uint64_t b) {
  return static_cast<uint128_t>(a) * b;
}

// Returns the high 64 bits of the 128-bit product a*b.
inline uint64_t MulHigh64(uint64_t a, uint64_t b) {
  return static_cast<uint64_t>(Mul64To128(a, b) >> 64);
}

// Returns the low 64 bits of a 128-bit value.
inline uint64_t Low64(uint128_t x) { return static_cast<uint64_t>(x); }

// Returns the high 64 bits of a 128-bit value.
inline uint64_t High64(uint128_t x) { return static_cast<uint64_t>(x >> 64); }

// Composes a 128-bit value from high and low 64-bit halves.
inline uint128_t Make128(uint64_t high, uint64_t low) {
  return (static_cast<uint128_t>(high) << 64) | low;
}
#else
#error "secure_knn requires a compiler with __int128 support (GCC/Clang)."
#endif

}  // namespace sknn

#endif  // SKNN_COMMON_U128_H_
