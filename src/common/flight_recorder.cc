#include "common/flight_recorder.h"

#include "common/json_writer.h"
#include "common/logging.h"
#include "common/trace_id.h"

namespace sknn {

std::string FlightRecord::Json() const {
  std::vector<std::string> phase_rows;
  phase_rows.reserve(phases.size());
  for (const Phase& p : phases) {
    json::ObjectWriter row;
    row.Str("name", p.name).Num("seconds", p.seconds).Int("bytes", p.bytes);
    if (p.min_noise_budget_bits >= 0) {
      row.Num("min_noise_budget_bits", p.min_noise_budget_bits);
    }
    phase_rows.push_back(row.Render());
  }
  json::ObjectWriter out;
  out.Int("query_id", query_id)
      .Str("process_epoch", trace::TraceIdHex(process_epoch))
      .Str("trace_id", trace::TraceIdHex(trace_id))
      .Int("seed", seed)
      .Int("num_points", num_points)
      .Int("dims", dims)
      .Int("k", k)
      .Raw("phases", json::Array(phase_rows))
      .Int("leg_retries", leg_retries)
      .Int("faults_injected", faults_injected)
      .Int("recovered_legs", recovered_legs)
      .Int("heap_allocs", heap_allocs)
      .Int("pool_requests", pool_requests)
      .Bool("ok", ok)
      .Str("status", status);
  return out.Render();
}

FlightRecorder::FlightRecorder(size_t capacity) : capacity_(capacity) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Add(FlightRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.query_id = next_id_++;
  record.process_epoch = trace::ProcessEpoch();
  // A query that ran under an active distributed trace keeps that id
  // (thread-local, established by the server/session plumbing); an
  // untraced query still gets a restart-unique id derived from the
  // process epoch, never the bare monotonic counter.
  if (record.trace_id == 0) record.trace_id = trace::CurrentTraceId();
  if (record.trace_id == 0) {
    record.trace_id =
        trace::DeriveTraceId(record.process_epoch, record.query_id);
  }
  const bool dump = !record.ok && dump_on_error_;
  ring_.push_back(std::move(record));
  if (ring_.size() > capacity_) ring_.pop_front();
  if (dump) {
    SKNN_LOG_ERROR << "query failed; flight record: " << ring_.back().Json();
  }
}

std::vector<FlightRecord> FlightRecorder::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<FlightRecord>(ring_.begin(), ring_.end());
}

bool FlightRecorder::FindBySeed(uint64_t seed, FlightRecord* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->seed == seed) {
      *out = *it;
      return true;
    }
  }
  return false;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

std::string FlightRecorder::Json() const {
  std::vector<std::string> rows;
  for (const FlightRecord& r : Records()) rows.push_back(r.Json());
  json::ObjectWriter out;
  out.Raw("flight_records", json::Array(rows));
  return out.Render();
}

}  // namespace sknn
