#ifndef SKNN_COMMON_FLIGHT_RECORDER_H_
#define SKNN_COMMON_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

// Bounded ring of per-query structured records — the protocol's black box.
//
// `core::SecureKnnSession::RunQuery` appends one record per query: the
// replay seed, problem shape, per-phase durations/bytes, the transport
// retry/fault counter deltas the query incurred, the minimum estimated
// noise margin per phase, and the final status. The ring keeps the last
// `capacity` queries (default 256), so a failure deep into a soak run
// still has its context. When a record with a non-OK status is added the
// recorder dumps it to the log automatically — a chaos failure is
// replayable from stderr alone. `sknn_cli --flight-record=FILE` writes
// the whole ring as JSON.

namespace sknn {

struct FlightRecord {
  uint64_t query_id = 0;  // monotonic across the recorder's lifetime
  // Restart-safe identity. `query_id` alone starts at 0 in every process,
  // so records from a restarted server alias the old ones; `process_epoch`
  // (random, minted once per process — common/trace_id.h) disambiguates,
  // and `trace_id` is globally unique: the distributed id propagated from
  // the client when the query was traced, else derived from
  // (process_epoch, query_id) by the recorder.
  uint64_t process_epoch = 0;
  uint64_t trace_id = 0;
  // Replay key: the fault seed for this query (fault_seed + query index in
  // chaos runs; 0 when no fault injection is active).
  uint64_t seed = 0;
  uint64_t num_points = 0;  // n
  uint64_t dims = 0;        // d
  uint64_t k = 0;

  struct Phase {
    std::string name;
    double seconds = 0;
    uint64_t bytes = 0;  // bytes moved during the phase (both directions)
    // Minimum estimated remaining noise budget over the phase's
    // ciphertexts (bits); negative = not tracked for this phase.
    double min_noise_budget_bits = -1;
  };
  std::vector<Phase> phases;

  // Transport counter deltas across this query (from the PR 4 stack).
  uint64_t leg_retries = 0;
  uint64_t faults_injected = 0;
  uint64_t recovered_legs = 0;

  // Allocation counter deltas across this query (bgv.alloc.*): heap_allocs
  // is the number of buffer-pool misses (actual heap allocations),
  // pool_requests the total buffers drawn. A warm pool keeps heap_allocs
  // near zero while pool_requests stays in the thousands.
  uint64_t heap_allocs = 0;
  uint64_t pool_requests = 0;

  bool ok = false;
  std::string status;  // "ok" or the error message

  std::string Json() const;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 256);

  // The process-wide recorder core::Session populates.
  static FlightRecorder& Global();

  // Appends a record, evicting the oldest when full. Non-OK records are
  // dumped to the log (SKNN_LOG_ERROR) unless dumping is disabled.
  void Add(FlightRecord record);

  // Snapshot, oldest first.
  std::vector<FlightRecord> Records() const;

  // Most recent record whose seed matches; false if none in the ring.
  bool FindBySeed(uint64_t seed, FlightRecord* out) const;

  void Clear();

  // {"flight_records": [...]} — the --flight-record=FILE payload.
  std::string Json() const;

  // Chaos tests inject thousands of failing queries on purpose; they turn
  // the automatic dump off and print only the records they care about.
  void set_dump_on_error(bool dump) { dump_on_error_ = dump; }

 private:
  const size_t capacity_;
  bool dump_on_error_ = true;
  mutable std::mutex mu_;
  uint64_t next_id_ = 0;
  std::deque<FlightRecord> ring_;
};

}  // namespace sknn

#endif  // SKNN_COMMON_FLIGHT_RECORDER_H_
