#ifndef SKNN_COMMON_SERIAL_H_
#define SKNN_COMMON_SERIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

// Byte-oriented serialization primitives. Everything that crosses a
// protocol Channel (ciphertexts, keys, indicator vectors) is encoded with
// these little-endian writers/readers so that the communication accounting
// in src/net measures real bytes, not object counts.

namespace sknn {

// Append-only byte buffer writer.
class ByteSink {
 public:
  ByteSink() = default;

  void WriteU8(uint8_t v) { bytes_.push_back(v); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  // Writes length (u64) followed by the raw words.
  void WriteU64Vector(const std::vector<uint64_t>& v);
  // Same wire format from a raw word span (no intermediate vector).
  void WriteU64Span(const uint64_t* v, size_t len);
  void WriteBytes(const uint8_t* data, size_t len);
  // Writes length (u64) followed by the raw bytes.
  void WriteString(const std::string& s);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

// Sequential reader over a byte buffer; all reads are bounds-checked and
// return Status on truncated input. Length-prefixed reads (ReadU64Vector,
// ReadString) validate the encoded length against the bytes actually
// remaining *before* allocating, so an adversarial header cannot force a
// giant allocation; composite decoders with their own length fields (e.g.
// bgv::ReadRnsPoly) must apply the same remaining()-bound themselves.
class ByteSource {
 public:
  explicit ByteSource(std::vector<uint8_t> bytes)
      : bytes_(std::move(bytes)), pos_(0) {}

  StatusOr<uint8_t> ReadU8();
  StatusOr<uint32_t> ReadU32();
  StatusOr<uint64_t> ReadU64();
  StatusOr<std::vector<uint64_t>> ReadU64Vector();
  // Reads a length-prefixed word vector into a caller-owned buffer; fails
  // if the encoded length differs from `expected_len`.
  Status ReadU64Span(uint64_t* out, size_t expected_len);
  StatusOr<std::string> ReadString();

  // True when every byte has been consumed.
  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  Status Require(size_t n) const;

  std::vector<uint8_t> bytes_;
  size_t pos_;
};

}  // namespace sknn

#endif  // SKNN_COMMON_SERIAL_H_
