#include "bgv/evaluator.h"

#include <cstring>

#include "bgv/sampling.h"
#include "common/buffer_pool.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/thread_pool.h"
#include "math/simd/kernels.h"

namespace sknn {
namespace bgv {

// Always-on primitive-op counters: one relaxed atomic add per call against
// a cached registry handle (see common/metrics_registry.h taxonomy).
#define SKNN_COUNT_EVALUATOR_OP(op)                                      \
  do {                                                                   \
    static MetricsRegistry::Counter* counter =                           \
        MetricsRegistry::Global().GetCounter("bgv.evaluator." op);       \
    counter->Increment();                                                \
  } while (0)

Evaluator::Evaluator(std::shared_ptr<const BgvContext> ctx)
    : ctx_(std::move(ctx)), noise_(*ctx_) {}

Status Evaluator::CheckCt(const Ciphertext& a) const {
  if (a.size() < 2) return InvalidArgumentError("ciphertext too small");
  if (a.level > ctx_->max_level()) {
    return InvalidArgumentError("ciphertext level out of range");
  }
  if (a.num_components() != a.level + 1) {
    return InternalError("ciphertext level/component mismatch");
  }
  if (a.c[0].n() != ctx_->n()) {
    return InvalidArgumentError(
        "ciphertext ring degree does not match this evaluator's context");
  }
  return Status::Ok();
}

Status Evaluator::Equalize(Ciphertext* a, Ciphertext* b) const {
  while (a->level > b->level) SKNN_RETURN_IF_ERROR(ModSwitchToNextInplace(a));
  while (b->level > a->level) SKNN_RETURN_IF_ERROR(ModSwitchToNextInplace(b));
  return Status::Ok();
}

Status Evaluator::MatchScale(Ciphertext* a, const Ciphertext& b) const {
  if (a->scale == b.scale) return Status::Ok();
  // Multiply a by (scale_b / scale_a) mod t so both carry scale_b.
  const Modulus& t_mod = ctx_->plain_modulus();
  const uint64_t ratio =
      t_mod.MulMod(b.scale, InvModPrime(a->scale, ctx_->t()));
  SKNN_RETURN_IF_ERROR(MultiplyScalarInplace(a, ratio));
  // MultiplyScalarInplace scaled the content, not the tracked factor.
  a->scale = b.scale;
  return Status::Ok();
}

Status Evaluator::AddInplace(Ciphertext* a, const Ciphertext& b) const {
  SKNN_COUNT_EVALUATOR_OP("add");
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  SKNN_RETURN_IF_ERROR(CheckCt(b));
  Ciphertext b_copy;
  const Ciphertext* rhs = &b;
  if (a->level != b.level) {
    b_copy = b;
    SKNN_RETURN_IF_ERROR(Equalize(a, &b_copy));
    rhs = &b_copy;
  }
  if (a->size() != rhs->size()) {
    return InvalidArgumentError("ciphertext size mismatch in Add");
  }
  SKNN_RETURN_IF_ERROR(MatchScale(a, *rhs));
  for (size_t i = 0; i < a->size(); ++i) {
    sknn::AddInplace(&a->c[i], rhs->c[i], ctx_->key_base());
  }
  a->noise_bits = noise_.Add(a->noise_bits, rhs->noise_bits);
  return Status::Ok();
}

Status Evaluator::SubInplace(Ciphertext* a, const Ciphertext& b) const {
  SKNN_COUNT_EVALUATOR_OP("sub");
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  SKNN_RETURN_IF_ERROR(CheckCt(b));
  Ciphertext b_copy;
  const Ciphertext* rhs = &b;
  if (a->level != b.level) {
    b_copy = b;
    SKNN_RETURN_IF_ERROR(Equalize(a, &b_copy));
    rhs = &b_copy;
  }
  if (a->size() != rhs->size()) {
    return InvalidArgumentError("ciphertext size mismatch in Sub");
  }
  SKNN_RETURN_IF_ERROR(MatchScale(a, *rhs));
  for (size_t i = 0; i < a->size(); ++i) {
    sknn::SubInplace(&a->c[i], rhs->c[i], ctx_->key_base());
  }
  a->noise_bits = noise_.Add(a->noise_bits, rhs->noise_bits);
  return Status::Ok();
}

void Evaluator::NegateInplace(Ciphertext* a) const {
  for (RnsPoly& p : a->c) sknn::NegateInplace(&p, ctx_->key_base());
}

StatusOr<PlainOperand> Evaluator::MakeAddOperand(const Plaintext& pt,
                                                 size_t level,
                                                 uint64_t scale) const {
  if (pt.coeffs.size() != ctx_->n()) {
    return InvalidArgumentError("plaintext degree mismatch");
  }
  if (level > ctx_->max_level()) {
    return InvalidArgumentError("operand level out of range");
  }
  PlainOperand op;
  op.level = level;
  op.scale = scale;
  // Scale the addend by the ciphertext's correction factor so that it
  // lands on the plaintext with weight one after decryption.
  if (scale != 1) {
    Plaintext scaled = pt;
    const Modulus& t_mod = ctx_->plain_modulus();
    for (uint64_t& c : scaled.coeffs) c = t_mod.MulMod(c, scale);
    op.m = LiftPlainCentered(*ctx_, scaled.coeffs, level + 1);
  } else {
    op.m = LiftPlainCentered(*ctx_, pt.coeffs, level + 1);
  }
  ToNttInplace(&op.m, ctx_->key_base());
  return op;
}

Status Evaluator::AddPlainInplace(Ciphertext* a, const PlainOperand& op) const {
  SKNN_COUNT_EVALUATOR_OP("add_plain");
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  if (op.level != a->level) {
    return InvalidArgumentError("plaintext operand prepared for another level");
  }
  if (op.scale != a->scale) {
    return InvalidArgumentError("plaintext operand prepared for another scale");
  }
  sknn::AddInplace(&a->c[0], op.m, ctx_->key_base());
  a->noise_bits = noise_.AddPlain(a->noise_bits);
  return Status::Ok();
}

Status Evaluator::AddPlainInplace(Ciphertext* a, const Plaintext& pt) const {
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  SKNN_ASSIGN_OR_RETURN(PlainOperand op,
                        MakeAddOperand(pt, a->level, a->scale));
  return AddPlainInplace(a, op);
}

Status Evaluator::SubPlainInplace(Ciphertext* a, const Plaintext& pt) const {
  Plaintext negated = pt;
  const uint64_t t = ctx_->t();
  for (uint64_t& c : negated.coeffs) c = NegMod(c, t);
  return AddPlainInplace(a, negated);
}

StatusOr<Ciphertext> Evaluator::Multiply(const Ciphertext& a,
                                         const Ciphertext& b) const {
  SKNN_COUNT_EVALUATOR_OP("multiply");
  SKNN_RETURN_IF_ERROR(CheckCt(a));
  SKNN_RETURN_IF_ERROR(CheckCt(b));
  if (a.size() != 2 || b.size() != 2) {
    return InvalidArgumentError("Multiply requires size-2 ciphertexts");
  }
  // Copy an operand only when Equalize would actually mod-switch it; the
  // common same-level case reads both inputs in place.
  const Ciphertext* x = &a;
  const Ciphertext* y = &b;
  Ciphertext switched;
  if (a.level != b.level) {
    if (a.level > b.level) {
      switched = a;
      SKNN_RETURN_IF_ERROR(ModSwitchToLevelInplace(&switched, b.level));
      x = &switched;
    } else {
      switched = b;
      SKNN_RETURN_IF_ERROR(ModSwitchToLevelInplace(&switched, a.level));
      y = &switched;
    }
  }
  const RnsBase& base = ctx_->key_base();
  Ciphertext out;
  out.level = x->level;
  out.scale = ctx_->plain_modulus().MulMod(x->scale, y->scale);
  RnsPoly d0 = MulPointwise(x->c[0], y->c[0], base);
  RnsPoly d1 = MulPointwise(x->c[0], y->c[1], base);
  AddMulInplace(&d1, x->c[1], y->c[0], base);
  RnsPoly d2 = MulPointwise(x->c[1], y->c[1], base);
  out.c.push_back(std::move(d0));
  out.c.push_back(std::move(d1));
  out.c.push_back(std::move(d2));
  out.noise_bits = noise_.Multiply(x->noise_bits, y->noise_bits);
  return out;
}

KSwitchDigits Evaluator::DecomposeForKeySwitch(
    size_t level, const RnsPoly& target, const RnsPoly* target_ntt) const {
  SKNN_CHECK(!target.ntt_form());
  SKNN_CHECK_EQ(target.num_components(), level + 1);
  const size_t n = ctx_->n();
  const size_t ext = level + 2;
  const size_t sp_key_idx = ctx_->special_index();
  const RnsBase& base = ctx_->key_base();

  KSwitchDigits out;
  out.level = level;
  out.digits.reserve(level + 1);
  for (size_t i = 0; i <= level; ++i) {
    // Lift digit i (integers < q_i) into every extended-base prime. Primes
    // at least as large as q_i take the residues verbatim. The diagonal
    // component (j == i) equals the target's own residues mod q_i, so when
    // the caller still holds the target in NTT form that component is
    // copied pre-transformed and its forward NTT below is skipped.
    RnsPoly digit(n, ext, /*ntt_form=*/false);
    const uint64_t qi = base.modulus(i).value();
    const uint64_t* __restrict d = target.comp(i);
    for (size_t j = 0; j < ext; ++j) {
      const size_t key_idx = (j <= level) ? j : sp_key_idx;
      uint64_t* __restrict dst = digit.comp(j);
      if (key_idx == i && target_ntt != nullptr) {
        std::memcpy(dst, target_ntt->comp(i), n * sizeof(uint64_t));
      } else if (key_idx == i || base.modulus(key_idx).value() >= qi) {
        std::memcpy(dst, d, n * sizeof(uint64_t));
      } else {
        const Modulus& mod = base.modulus(key_idx);
        for (size_t c = 0; c < n; ++c) dst[c] = mod.Reduce(d[c]);
      }
    }
    out.digits.push_back(std::move(digit));
  }

  // Forward NTT of all (level+1)*(level+2) digit components — the
  // expensive half of a key switch, shared across every key the digits
  // are later multiplied against.
  auto transform = [&](size_t flat) {
    const size_t i = flat / ext;
    const size_t j = flat % ext;
    if (j == i && target_ntt != nullptr) return;  // already NTT form
    const size_t key_idx = (j <= level) ? j : sp_key_idx;
    base.ntt(key_idx).ForwardNtt(out.digits[i].comp(j));
  };
  const size_t total = (level + 1) * ext;
  ThreadPool* pool = base.thread_pool();
  if (pool != nullptr && total > 1) {
    pool->ParallelFor(0, total, transform);
  } else {
    for (size_t flat = 0; flat < total; ++flat) transform(flat);
  }
  for (RnsPoly& digit : out.digits) digit.set_ntt_form(true);
  return out;
}

void Evaluator::KeySwitchInner(const KSwitchDigits& digits,
                               const KSwitchKey& ksk,
                               const uint32_t* perm_ntt, RnsPoly* u0,
                               RnsPoly* u1, bool ntt_out) const {
  const size_t level = digits.level;
  const size_t n = ctx_->n();
  const size_t ext = level + 2;
  const size_t sp_key_idx = ctx_->special_index();
  const RnsBase& base = ctx_->key_base();
  SKNN_CHECK_EQ(ksk.digits.size(), ctx_->num_data_primes());
  const KSwitchKey::ShoupTables& shoup = ksk.GetShoupTables(base);

  // MAC loop with deferred reduction. Bound argument (DESIGN.md §3.2):
  // every q is below 2^62 (NttTables::Create rejects larger), each
  // MulModShoupLazy term is in [0, 2q), the accumulator invariant is
  // [0, 2q), so term + accumulator < 4q < 2^64 never wraps and one
  // conditional subtract of 2q per step restores the invariant. The
  // [0, 2q) accumulators feed InverseNtt directly (its lazy butterflies
  // tolerate inputs below 2q and fully reduce on output).
  BufferPool::Scoped acc0_buf(ext * n), acc1_buf(ext * n);
  std::vector<uint64_t>& acc0 = acc0_buf.vector();
  std::vector<uint64_t>& acc1 = acc1_buf.vector();
  const simd::KernelTable& kernels = simd::ActiveKernels();
  for (size_t i = 0; i <= level; ++i) {
    const RnsPoly& kb = ksk.digits[i].first;
    const RnsPoly& ka = ksk.digits[i].second;
    const std::vector<uint64_t>& kb_shoup = shoup.digits[i].first;
    const std::vector<uint64_t>& ka_shoup = shoup.digits[i].second;
    for (size_t j = 0; j < ext; ++j) {
      const size_t key_idx = (j <= level) ? j : sp_key_idx;
      const uint64_t q = base.modulus(key_idx).value();
      const uint64_t* __restrict dg = digits.digits[i].comp(j);
      const uint64_t* __restrict kbv = kb.comp(key_idx);
      const uint64_t* __restrict kav = ka.comp(key_idx);
      const uint64_t* __restrict kbs = kb_shoup.data() + key_idx * n;
      const uint64_t* __restrict kas = ka_shoup.data() + key_idx * n;
      uint64_t* __restrict a0 = acc0.data() + j * n;
      uint64_t* __restrict a1 = acc1.data() + j * n;
      // The fused MAC runs through the SIMD dispatch table; a non-null
      // perm_ntt folds the NTT-domain automorphism into the gather, so
      // hoisted rotations never re-decompose.
      kernels.fused_mac(a0, a1, dg, perm_ntt, kbv, kbs, kav, kas, n, q);
    }
  }

  // Inverse NTT all accumulator components (back to coefficient form;
  // inputs are in [0, 2q), outputs fully reduced).
  auto inverse = [&](size_t flat) {
    const size_t j = flat >> 1;
    const size_t key_idx = (j <= level) ? j : sp_key_idx;
    uint64_t* buf = ((flat & 1) == 0 ? acc0 : acc1).data() + j * n;
    base.ntt(key_idx).InverseNtt(buf);
  };
  ThreadPool* pool = base.thread_pool();
  if (pool != nullptr) {
    pool->ParallelFor(0, 2 * ext, inverse);
  } else {
    for (size_t flat = 0; flat < 2 * ext; ++flat) inverse(flat);
  }

  // Divide by the special prime with t-preserving rounding:
  //   delta = t * [acc_sp * t^{-1}]_sp (centered), out = (acc - delta)/sp,
  // restructured component-major: the centered correction r is computed
  // once per coefficient into the special-prime slot, then each data prime
  // runs one linear pass out = acc*sp^{-1} - r*(t*sp^{-1}) using
  // precomputed Shoup constants (no per-coefficient hardware division).
  const uint64_t sp = base.modulus(sp_key_idx).value();
  const uint64_t sp_half = sp >> 1;
  const uint64_t t_inv_sp = ctx_->t_inv_mod_sp();
  const uint64_t t_inv_sp_shoup = ctx_->t_inv_mod_sp_shoup();
  *u0 = ZeroPoly(n, level + 1, /*ntt_form=*/false);
  *u1 = ZeroPoly(n, level + 1, /*ntt_form=*/false);
  for (int which = 0; which < 2; ++which) {
    std::vector<uint64_t>& acc = which == 0 ? acc0 : acc1;
    RnsPoly* out = which == 0 ? u0 : u1;
    uint64_t* __restrict rsp = acc.data() + (level + 1) * n;
    for (size_t c = 0; c < n; ++c) {
      rsp[c] = MulModShoup(rsp[c], t_inv_sp, t_inv_sp_shoup, sp);
    }
    for (size_t j = 0; j <= level; ++j) {
      const Modulus& mod = base.modulus(j);
      const uint64_t q = mod.value();
      const uint64_t sp_mod_qj = ctx_->sp_mod_q(j);
      const uint64_t sp_inv = ctx_->sp_inv_mod_q(j);
      const uint64_t sp_inv_shoup = ctx_->sp_inv_mod_q_shoup(j);
      const uint64_t t_sp_inv = ctx_->t_sp_inv_mod_q(j);
      const uint64_t t_sp_inv_shoup = ctx_->t_sp_inv_mod_q_shoup(j);
      const uint64_t* __restrict av = acc.data() + j * n;
      uint64_t* __restrict ov = out->comp(j);
      for (size_t c = 0; c < n; ++c) {
        const uint64_t r = rsp[c];
        uint64_t rq = mod.Reduce(r);
        if (r > sp_half) rq = SubMod(rq, sp_mod_qj, q);
        const uint64_t lhs = MulModShoup(av[c], sp_inv, sp_inv_shoup, q);
        const uint64_t rhs = MulModShoup(rq, t_sp_inv, t_sp_inv_shoup, q);
        ov[c] = SubMod(lhs, rhs, q);
      }
    }
  }
  if (ntt_out) {
    ToNttInplace(u0, base);
    ToNttInplace(u1, base);
  }
}

void Evaluator::KeySwitchCore(size_t level, const RnsPoly& target,
                              const KSwitchKey& ksk, RnsPoly* u0, RnsPoly* u1,
                              const RnsPoly* target_ntt) const {
  KSwitchDigits digits = DecomposeForKeySwitch(level, target, target_ntt);
  KeySwitchInner(digits, ksk, /*perm_ntt=*/nullptr, u0, u1, /*ntt_out=*/true);
}

Status Evaluator::RelinearizeInplace(Ciphertext* a,
                                     const RelinKeys& rk) const {
  SKNN_COUNT_EVALUATOR_OP("relinearize");
  if (a->size() != 3) {
    return InvalidArgumentError("Relinearize requires a size-3 ciphertext");
  }
  RnsPoly d2 = a->c[2];
  FromNttInplace(&d2, ctx_->key_base());
  RnsPoly u0, u1;
  KeySwitchCore(a->level, d2, rk.key, &u0, &u1, /*target_ntt=*/&a->c[2]);
  sknn::AddInplace(&a->c[0], u0, ctx_->key_base());
  sknn::AddInplace(&a->c[1], u1, ctx_->key_base());
  a->c.pop_back();
  a->noise_bits = noise_.KeySwitch(a->noise_bits, a->level);
  return Status::Ok();
}

StatusOr<Ciphertext> Evaluator::MultiplyRelin(const Ciphertext& a,
                                              const Ciphertext& b,
                                              const RelinKeys& rk,
                                              bool mod_switch) const {
  SKNN_ASSIGN_OR_RETURN(Ciphertext out, Multiply(a, b));
  SKNN_RETURN_IF_ERROR(RelinearizeInplace(&out, rk));
  if (mod_switch && out.level > 0) {
    SKNN_RETURN_IF_ERROR(ModSwitchToNextInplace(&out));
  }
  return out;
}

StatusOr<PlainOperand> Evaluator::MakeMultiplyOperand(const Plaintext& pt,
                                                      size_t level) const {
  if (pt.coeffs.size() != ctx_->n()) {
    return InvalidArgumentError("plaintext degree mismatch");
  }
  if (level > ctx_->max_level()) {
    return InvalidArgumentError("operand level out of range");
  }
  if (pt.IsZero()) {
    return InvalidArgumentError(
        "multiplying by the zero plaintext produces a transparent "
        "ciphertext; subtract instead");
  }
  PlainOperand op;
  op.level = level;
  op.scale = 1;
  op.m = LiftPlainCentered(*ctx_, pt.coeffs, level + 1);
  ToNttInplace(&op.m, ctx_->key_base());
  return op;
}

Status Evaluator::MultiplyPlainInplace(Ciphertext* a,
                                       const PlainOperand& op) const {
  SKNN_COUNT_EVALUATOR_OP("multiply_plain");
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  if (op.level != a->level) {
    return InvalidArgumentError("plaintext operand prepared for another level");
  }
  for (RnsPoly& p : a->c) MulPointwiseInplace(&p, op.m, ctx_->key_base());
  a->noise_bits = noise_.MultiplyPlain(a->noise_bits);
  return Status::Ok();
}

Status Evaluator::MultiplyPlainInplace(Ciphertext* a,
                                       const Plaintext& pt) const {
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  SKNN_ASSIGN_OR_RETURN(PlainOperand op, MakeMultiplyOperand(pt, a->level));
  return MultiplyPlainInplace(a, op);
}

Status Evaluator::MultiplyScalarInplace(Ciphertext* a,
                                        uint64_t scalar_mod_t) const {
  SKNN_COUNT_EVALUATOR_OP("multiply_scalar");
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  if (scalar_mod_t >= ctx_->t()) {
    return InvalidArgumentError("scalar exceeds plaintext modulus");
  }
  if (scalar_mod_t == 0) {
    return InvalidArgumentError("scalar multiply by zero is transparent");
  }
  const int64_t centered = CenterMod(scalar_mod_t, ctx_->t());
  const size_t comps = a->level + 1;
  std::vector<uint64_t> per_prime(comps);
  for (size_t i = 0; i < comps; ++i) {
    per_prime[i] =
        ToUnsignedMod(centered, ctx_->key_base().modulus(i).value());
  }
  for (RnsPoly& p : a->c) {
    MulScalarInplace(&p, per_prime, ctx_->key_base());
  }
  a->noise_bits = noise_.MultiplyScalar(a->noise_bits, scalar_mod_t);
  return Status::Ok();
}

RnsPoly Evaluator::DropLastComponent(const RnsPoly& poly, size_t level) const {
  SKNN_CHECK(!poly.ntt_form());
  SKNN_CHECK_EQ(poly.num_components(), level + 1);
  SKNN_CHECK_GE(level, 1u);
  const size_t n = ctx_->n();
  const RnsBase& base = ctx_->key_base();
  const uint64_t q_last = base.modulus(level).value();
  const uint64_t t_inv = ctx_->t_inv_mod_q(level);

  // Component-major rounding (same restructuring as the key-switch tail):
  // one pass computes the centered correction r = [last * t^{-1}]_{q_last}
  // for all coefficients, then each surviving prime runs a linear pass
  // out = a*q_last^{-1} - r*(t*q_last^{-1}) on Shoup constants.
  const uint64_t half = q_last >> 1;
  const uint64_t t_inv_shoup = ctx_->t_inv_mod_q_shoup(level);
  BufferPool::Scoped r_buf(n, /*zeroed=*/false);
  uint64_t* __restrict r = r_buf.data();
  const uint64_t* __restrict last = poly.comp(level);
  for (size_t c = 0; c < n; ++c) {
    r[c] = MulModShoup(last[c], t_inv, t_inv_shoup, q_last);
  }
  RnsPoly out = ZeroPoly(n, level, /*ntt_form=*/false);
  for (size_t j = 0; j < level; ++j) {
    const Modulus& mod = base.modulus(j);
    const uint64_t q = mod.value();
    const uint64_t q_last_mod_qj = ctx_->q_mod_q(level, j);
    const uint64_t q_inv = ctx_->q_inv_mod_q(level, j);
    const uint64_t q_inv_shoup = ctx_->q_inv_mod_q_shoup(level, j);
    const uint64_t t_q_inv = ctx_->t_q_inv_mod_q(level, j);
    const uint64_t t_q_inv_shoup = ctx_->t_q_inv_mod_q_shoup(level, j);
    const uint64_t* __restrict av = poly.comp(j);
    uint64_t* __restrict ov = out.comp(j);
    for (size_t c = 0; c < n; ++c) {
      uint64_t rq = mod.Reduce(r[c]);
      if (r[c] > half) rq = SubMod(rq, q_last_mod_qj, q);
      const uint64_t lhs = MulModShoup(av[c], q_inv, q_inv_shoup, q);
      const uint64_t rhs = MulModShoup(rq, t_q_inv, t_q_inv_shoup, q);
      ov[c] = SubMod(lhs, rhs, q);
    }
  }
  return out;
}

Status Evaluator::ModSwitchToNextInplace(Ciphertext* a) const {
  SKNN_COUNT_EVALUATOR_OP("mod_switch");
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  if (a->level == 0) {
    return FailedPreconditionError("already at the lowest level");
  }
  for (RnsPoly& p : a->c) {
    FromNttInplace(&p, ctx_->key_base());
    p = DropLastComponent(p, a->level);
    ToNttInplace(&p, ctx_->key_base());
  }
  a->noise_bits = noise_.ModSwitch(a->noise_bits, a->level, a->size());
  a->scale = ctx_->plain_modulus().MulMod(a->scale, ctx_->q_inv_mod_t(a->level));
  a->level -= 1;
  return Status::Ok();
}

Status Evaluator::ModSwitchToLevelInplace(Ciphertext* a, size_t level) const {
  if (level > a->level) {
    return InvalidArgumentError("cannot mod switch upward");
  }
  while (a->level > level) {
    SKNN_RETURN_IF_ERROR(ModSwitchToNextInplace(a));
  }
  return Status::Ok();
}

Status Evaluator::ApplyGaloisInplace(Ciphertext* a, uint64_t galois_elt,
                                     const GaloisKeys& gk) const {
  SKNN_COUNT_EVALUATOR_OP("galois_automorphism");
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  if (a->size() != 2) {
    return InvalidArgumentError("ApplyGalois requires a size-2 ciphertext");
  }
  auto it = gk.keys.find(galois_elt);
  if (it == gk.keys.end()) {
    return NotFoundError("missing Galois key for element " +
                         std::to_string(galois_elt));
  }
  // NTT-domain automorphism: c0 is permuted in place (no round-trip), and
  // c1's automorphism is fused into the key-switch inner product as a
  // permuted gather of its digits (decompose commutes with tau, so the
  // permuted digits are a valid decomposition of tau(c1)).
  const RnsBase& base = ctx_->key_base();
  RnsPoly c1 = a->c[1];
  FromNttInplace(&c1, base);
  KSwitchDigits digits =
      DecomposeForKeySwitch(a->level, c1, /*target_ntt=*/&a->c[1]);
  const std::vector<uint32_t>& perm = base.GaloisPermTableNtt(galois_elt);
  RnsPoly u0, u1;
  KeySwitchInner(digits, it->second, perm.data(), &u0, &u1, /*ntt_out=*/true);
  RnsPoly c0_tau = ApplyGaloisNtt(a->c[0], galois_elt, base);
  sknn::AddInplace(&u0, c0_tau, base);
  a->c[0] = std::move(u0);
  a->c[1] = std::move(u1);
  a->noise_bits = noise_.KeySwitch(a->noise_bits, a->level);
  return Status::Ok();
}

Status Evaluator::ApplyGaloisChainInplace(
    Ciphertext* a, const std::vector<uint64_t>& galois_elts,
    const GaloisKeys& gk) const {
  if (galois_elts.empty()) return Status::Ok();
  if (galois_elts.size() == 1) {
    return ApplyGaloisInplace(a, galois_elts[0], gk);
  }
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  if (a->size() != 2) {
    return InvalidArgumentError("ApplyGalois requires a size-2 ciphertext");
  }
  // Validate every key before mutating the ciphertext.
  for (uint64_t elt : galois_elts) {
    if (!gk.Has(elt)) {
      return NotFoundError("missing Galois key for element " +
                           std::to_string(elt));
    }
  }
  // Chain in coefficient form: each hop decomposes the current c1, runs the
  // permuted inner product, and folds tau into c0 coefficient-side. Only
  // the final result pays a ToNtt conversion, so h hops cost h decomposes
  // plus 2 conversions instead of the ~5h conversions of repeated
  // ApplyGaloisInplace.
  const RnsBase& base = ctx_->key_base();
  RnsPoly c0 = a->c[0];
  RnsPoly c1 = a->c[1];
  FromNttInplace(&c0, base);
  FromNttInplace(&c1, base);
  // The first hop can reuse the still-NTT-form input c1 for the diagonal
  // digit components; later hops only have the coefficient form.
  const RnsPoly* c1_ntt = &a->c[1];
  for (uint64_t elt : galois_elts) {
    SKNN_COUNT_EVALUATOR_OP("galois_automorphism");
    KSwitchDigits digits = DecomposeForKeySwitch(a->level, c1, c1_ntt);
    c1_ntt = nullptr;
    const std::vector<uint32_t>& perm = base.GaloisPermTableNtt(elt);
    RnsPoly u0, u1;
    KeySwitchInner(digits, gk.keys.at(elt), perm.data(), &u0, &u1,
                   /*ntt_out=*/false);
    c0 = ApplyGaloisCoeff(c0, elt, base);
    sknn::AddInplace(&c0, u0, base);
    c1 = std::move(u1);
    a->noise_bits = noise_.KeySwitch(a->noise_bits, a->level);
  }
  ToNttInplace(&c0, base);
  ToNttInplace(&c1, base);
  a->c[0] = std::move(c0);
  a->c[1] = std::move(c1);
  return Status::Ok();
}

std::vector<uint64_t> Evaluator::RotationGaloisElts(
    int step, const GaloisKeys& gk) const {
  const size_t row = ctx_->row_size();
  step = static_cast<int>(((step % static_cast<int>(row)) +
                           static_cast<int>(row)) %
                          static_cast<int>(row));
  if (step == 0) return {};
  // Prefer the exact key; decompose into power-of-two keys otherwise.
  const uint64_t elt = ctx_->GaloisEltForRotation(step);
  if (gk.Has(elt)) return {elt};
  std::vector<uint64_t> elts;
  for (size_t bit = 0; (size_t{1} << bit) < row; ++bit) {
    if (step & (1 << bit)) {
      elts.push_back(ctx_->GaloisEltForRotation(1 << bit));
    }
  }
  return elts;
}

Status Evaluator::RotateRowsInplace(Ciphertext* a, int step,
                                    const GaloisKeys& gk) const {
  if (step == 0) return Status::Ok();
  return ApplyGaloisChainInplace(a, RotationGaloisElts(step, gk), gk);
}

Status Evaluator::RotateColumnsInplace(Ciphertext* a,
                                       const GaloisKeys& gk) const {
  return ApplyGaloisInplace(a, ctx_->GaloisEltForColumnSwap(), gk);
}

Status Evaluator::FoldRowsInplace(Ciphertext* a, size_t block,
                                  const GaloisKeys& gk) const {
  if (block == 0 || (block & (block - 1)) != 0) {
    return InvalidArgumentError("fold block must be a power of two");
  }
  if (block > ctx_->row_size()) {
    return InvalidArgumentError("fold block exceeds row size");
  }
  if (block == 1) return Status::Ok();
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  if (a->size() != 2) {
    return InvalidArgumentError("FoldRows requires a size-2 ciphertext");
  }
  // Power-of-two step keys are the standard set; without them, fall back
  // to the generic rotate-and-add loop.
  bool have_keys = true;
  for (size_t step = 1; step < block; step <<= 1) {
    if (!gk.Has(ctx_->GaloisEltForRotation(static_cast<int>(step)))) {
      have_keys = false;
      break;
    }
  }
  if (!have_keys) {
    for (size_t step = 1; step < block; step <<= 1) {
      Ciphertext rotated = *a;
      SKNN_RETURN_IF_ERROR(
          RotateRowsInplace(&rotated, static_cast<int>(step), gk));
      SKNN_RETURN_IF_ERROR(AddInplace(a, rotated));
    }
    return Status::Ok();
  }
  // Fast path: keep the running sum in coefficient form across the whole
  // log2(block) fold. Each stage decomposes the current c1 once and runs
  // the permuted inner product (a += tau_step(a)); only the final result
  // pays a ToNtt, so the fold does one NTT conversion set instead of one
  // per stage.
  const RnsBase& base = ctx_->key_base();
  RnsPoly c0 = a->c[0];
  RnsPoly c1 = a->c[1];
  FromNttInplace(&c0, base);
  FromNttInplace(&c1, base);
  // Stage 1 can reuse the still-NTT-form input c1 for the diagonal digit
  // components; later stages only have the coefficient form.
  const RnsPoly* c1_ntt = &a->c[1];
  for (size_t step = 1; step < block; step <<= 1) {
    SKNN_COUNT_EVALUATOR_OP("galois_automorphism");
    SKNN_COUNT_EVALUATOR_OP("add");
    const uint64_t elt = ctx_->GaloisEltForRotation(static_cast<int>(step));
    KSwitchDigits digits = DecomposeForKeySwitch(a->level, c1, c1_ntt);
    c1_ntt = nullptr;
    const std::vector<uint32_t>& perm = base.GaloisPermTableNtt(elt);
    RnsPoly u0, u1;
    KeySwitchInner(digits, gk.keys.at(elt), perm.data(), &u0, &u1,
                   /*ntt_out=*/false);
    // Rotated ciphertext is (tau(c0) + u0, u1); fold it into the sum.
    RnsPoly c0_tau = ApplyGaloisCoeff(c0, elt, base);
    sknn::AddInplace(&c0, c0_tau, base);
    sknn::AddInplace(&c0, u0, base);
    sknn::AddInplace(&c1, u1, base);
    a->noise_bits = noise_.Add(
        a->noise_bits, noise_.KeySwitch(a->noise_bits, a->level));
  }
  ToNttInplace(&c0, base);
  ToNttInplace(&c1, base);
  a->c[0] = std::move(c0);
  a->c[1] = std::move(c1);
  return Status::Ok();
}

StatusOr<std::vector<Ciphertext>> Evaluator::HoistedRotations(
    const Ciphertext& ct, const std::vector<int>& steps,
    const GaloisKeys& gk) const {
  SKNN_RETURN_IF_ERROR(CheckCt(ct));
  if (ct.size() != 2) {
    return InvalidArgumentError(
        "HoistedRotations requires a size-2 ciphertext");
  }
  const size_t row = ctx_->row_size();
  const RnsBase& base = ctx_->key_base();
  // Normalize the steps and decide which can ride the shared
  // decomposition (exact key present).
  std::vector<int> normalized(steps.size());
  std::vector<uint64_t> elts(steps.size(), 0);
  bool any_hoisted = false;
  for (size_t i = 0; i < steps.size(); ++i) {
    int step = static_cast<int>(((steps[i] % static_cast<int>(row)) +
                                 static_cast<int>(row)) %
                                static_cast<int>(row));
    normalized[i] = step;
    if (step == 0) continue;
    const uint64_t elt = ctx_->GaloisEltForRotation(step);
    if (gk.Has(elt)) {
      elts[i] = elt;
      any_hoisted = true;
    }
  }
  // One decomposition of c1 serves every hoisted step.
  KSwitchDigits digits;
  if (any_hoisted) {
    RnsPoly c1 = ct.c[1];
    FromNttInplace(&c1, base);
    digits = DecomposeForKeySwitch(ct.level, c1, /*target_ntt=*/&ct.c[1]);
  }
  std::vector<Ciphertext> out;
  out.reserve(steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    if (normalized[i] == 0) {
      out.push_back(ct);
      continue;
    }
    if (elts[i] == 0) {
      // No exact key: compose power-of-two rotations sequentially.
      Ciphertext rotated = ct;
      SKNN_RETURN_IF_ERROR(RotateRowsInplace(&rotated, normalized[i], gk));
      out.push_back(std::move(rotated));
      continue;
    }
    SKNN_COUNT_EVALUATOR_OP("hoisted_rotation");
    const std::vector<uint32_t>& perm = base.GaloisPermTableNtt(elts[i]);
    Ciphertext rotated;
    rotated.level = ct.level;
    rotated.scale = ct.scale;
    rotated.noise_bits = noise_.KeySwitch(ct.noise_bits, ct.level);
    RnsPoly u0, u1;
    KeySwitchInner(digits, gk.keys.at(elts[i]), perm.data(), &u0, &u1,
                   /*ntt_out=*/true);
    RnsPoly c0_tau = ApplyGaloisNtt(ct.c[0], elts[i], base);
    sknn::AddInplace(&u0, c0_tau, base);
    rotated.c.push_back(std::move(u0));
    rotated.c.push_back(std::move(u1));
    out.push_back(std::move(rotated));
  }
  return out;
}

StatusOr<const PlainOperand*> PlainOperandCache::MultiplyOperand(
    const Evaluator& ev, uint64_t tag, const Plaintext& pt, size_t level) {
  const Key key{0, tag, level, 0};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ops_.find(key);
    if (it != ops_.end()) return it->second.get();
  }
  SKNN_ASSIGN_OR_RETURN(PlainOperand op, ev.MakeMultiplyOperand(pt, level));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = ops_[key];
  if (slot == nullptr) slot = std::make_unique<PlainOperand>(std::move(op));
  return slot.get();
}

StatusOr<const PlainOperand*> PlainOperandCache::AddOperand(
    const Evaluator& ev, uint64_t tag, const Plaintext& pt, size_t level,
    uint64_t scale) {
  const Key key{1, tag, level, scale};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ops_.find(key);
    if (it != ops_.end()) return it->second.get();
  }
  SKNN_ASSIGN_OR_RETURN(PlainOperand op, ev.MakeAddOperand(pt, level, scale));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = ops_[key];
  if (slot == nullptr) slot = std::make_unique<PlainOperand>(std::move(op));
  return slot.get();
}

void PlainOperandCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ops_.clear();
}

size_t PlainOperandCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_.size();
}

}  // namespace bgv
}  // namespace sknn
