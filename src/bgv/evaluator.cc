#include "bgv/evaluator.h"

#include "bgv/sampling.h"
#include "common/logging.h"
#include "common/metrics_registry.h"

namespace sknn {
namespace bgv {

// Always-on primitive-op counters: one relaxed atomic add per call against
// a cached registry handle (see common/metrics_registry.h taxonomy).
#define SKNN_COUNT_EVALUATOR_OP(op)                                      \
  do {                                                                   \
    static MetricsRegistry::Counter* counter =                           \
        MetricsRegistry::Global().GetCounter("bgv.evaluator." op);       \
    counter->Increment();                                                \
  } while (0)

Evaluator::Evaluator(std::shared_ptr<const BgvContext> ctx)
    : ctx_(std::move(ctx)) {}

Status Evaluator::CheckCt(const Ciphertext& a) const {
  if (a.size() < 2) return InvalidArgumentError("ciphertext too small");
  if (a.level > ctx_->max_level()) {
    return InvalidArgumentError("ciphertext level out of range");
  }
  if (a.num_components() != a.level + 1) {
    return InternalError("ciphertext level/component mismatch");
  }
  if (a.c[0].n() != ctx_->n()) {
    return InvalidArgumentError(
        "ciphertext ring degree does not match this evaluator's context");
  }
  return Status::Ok();
}

Status Evaluator::Equalize(Ciphertext* a, Ciphertext* b) const {
  while (a->level > b->level) SKNN_RETURN_IF_ERROR(ModSwitchToNextInplace(a));
  while (b->level > a->level) SKNN_RETURN_IF_ERROR(ModSwitchToNextInplace(b));
  return Status::Ok();
}

Status Evaluator::MatchScale(Ciphertext* a, const Ciphertext& b) const {
  if (a->scale == b.scale) return Status::Ok();
  // Multiply a by (scale_b / scale_a) mod t so both carry scale_b.
  const Modulus& t_mod = ctx_->plain_modulus();
  const uint64_t ratio =
      t_mod.MulMod(b.scale, InvModPrime(a->scale, ctx_->t()));
  SKNN_RETURN_IF_ERROR(MultiplyScalarInplace(a, ratio));
  // MultiplyScalarInplace scaled the content, not the tracked factor.
  a->scale = b.scale;
  return Status::Ok();
}

Status Evaluator::AddInplace(Ciphertext* a, const Ciphertext& b) const {
  SKNN_COUNT_EVALUATOR_OP("add");
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  SKNN_RETURN_IF_ERROR(CheckCt(b));
  Ciphertext b_copy;
  const Ciphertext* rhs = &b;
  if (a->level != b.level) {
    b_copy = b;
    SKNN_RETURN_IF_ERROR(Equalize(a, &b_copy));
    rhs = &b_copy;
  }
  if (a->size() != rhs->size()) {
    return InvalidArgumentError("ciphertext size mismatch in Add");
  }
  SKNN_RETURN_IF_ERROR(MatchScale(a, *rhs));
  for (size_t i = 0; i < a->size(); ++i) {
    sknn::AddInplace(&a->c[i], rhs->c[i], ctx_->key_base());
  }
  return Status::Ok();
}

Status Evaluator::SubInplace(Ciphertext* a, const Ciphertext& b) const {
  SKNN_COUNT_EVALUATOR_OP("sub");
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  SKNN_RETURN_IF_ERROR(CheckCt(b));
  Ciphertext b_copy;
  const Ciphertext* rhs = &b;
  if (a->level != b.level) {
    b_copy = b;
    SKNN_RETURN_IF_ERROR(Equalize(a, &b_copy));
    rhs = &b_copy;
  }
  if (a->size() != rhs->size()) {
    return InvalidArgumentError("ciphertext size mismatch in Sub");
  }
  SKNN_RETURN_IF_ERROR(MatchScale(a, *rhs));
  for (size_t i = 0; i < a->size(); ++i) {
    sknn::SubInplace(&a->c[i], rhs->c[i], ctx_->key_base());
  }
  return Status::Ok();
}

void Evaluator::NegateInplace(Ciphertext* a) const {
  for (RnsPoly& p : a->c) sknn::NegateInplace(&p, ctx_->key_base());
}

Status Evaluator::AddPlainInplace(Ciphertext* a, const Plaintext& pt) const {
  SKNN_COUNT_EVALUATOR_OP("add_plain");
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  if (pt.coeffs.size() != ctx_->n()) {
    return InvalidArgumentError("plaintext degree mismatch");
  }
  // Scale the addend by the ciphertext's correction factor so that it
  // lands on the plaintext with weight one after decryption.
  Plaintext scaled = pt;
  if (a->scale != 1) {
    const Modulus& t_mod = ctx_->plain_modulus();
    for (uint64_t& c : scaled.coeffs) c = t_mod.MulMod(c, a->scale);
  }
  RnsPoly m = LiftPlainCentered(*ctx_, scaled.coeffs, a->level + 1);
  ToNttInplace(&m, ctx_->key_base());
  sknn::AddInplace(&a->c[0], m, ctx_->key_base());
  return Status::Ok();
}

Status Evaluator::SubPlainInplace(Ciphertext* a, const Plaintext& pt) const {
  Plaintext negated = pt;
  const uint64_t t = ctx_->t();
  for (uint64_t& c : negated.coeffs) c = NegMod(c, t);
  return AddPlainInplace(a, negated);
}

StatusOr<Ciphertext> Evaluator::Multiply(const Ciphertext& a,
                                         const Ciphertext& b) const {
  SKNN_COUNT_EVALUATOR_OP("multiply");
  SKNN_RETURN_IF_ERROR(CheckCt(a));
  SKNN_RETURN_IF_ERROR(CheckCt(b));
  if (a.size() != 2 || b.size() != 2) {
    return InvalidArgumentError("Multiply requires size-2 ciphertexts");
  }
  Ciphertext x = a;
  Ciphertext y = b;
  SKNN_RETURN_IF_ERROR(Equalize(&x, &y));
  const RnsBase& base = ctx_->key_base();
  Ciphertext out;
  out.level = x.level;
  out.scale = ctx_->plain_modulus().MulMod(x.scale, y.scale);
  RnsPoly d0 = MulPointwise(x.c[0], y.c[0], base);
  RnsPoly d1 = MulPointwise(x.c[0], y.c[1], base);
  AddMulInplace(&d1, x.c[1], y.c[0], base);
  RnsPoly d2 = MulPointwise(x.c[1], y.c[1], base);
  out.c.push_back(std::move(d0));
  out.c.push_back(std::move(d1));
  out.c.push_back(std::move(d2));
  return out;
}

void Evaluator::KeySwitchCore(size_t level, const RnsPoly& target,
                              const KSwitchKey& ksk, RnsPoly* u0,
                              RnsPoly* u1) const {
  SKNN_CHECK(!target.ntt_form());
  SKNN_CHECK_EQ(target.num_components(), level + 1);
  const size_t n = ctx_->n();
  const size_t sp_key_idx = ctx_->special_index();
  const RnsBase& base = ctx_->key_base();

  // Accumulators over the extended base: components 0..level (data primes)
  // plus one slot for the special prime. Flat component-major buffers.
  const size_t ext = level + 2;
  std::vector<uint64_t> acc0(ext * n, 0);
  std::vector<uint64_t> acc1(ext * n, 0);

  std::vector<uint64_t> digit(n);
  for (size_t i = 0; i <= level; ++i) {
    const uint64_t* d = target.comp(i);
    SKNN_CHECK_EQ(ksk.digits.size(), ctx_->num_data_primes());
    const RnsPoly& kb = ksk.digits[i].first;
    const RnsPoly& ka = ksk.digits[i].second;
    for (size_t j = 0; j < ext; ++j) {
      const size_t key_idx = (j <= level) ? j : sp_key_idx;
      const Modulus& mod = base.modulus(key_idx);
      const NttTables& ntt = base.ntt(key_idx);
      const uint64_t q = mod.value();
      // Lift digit i (integers < q_i) into Z_q.
      for (size_t c = 0; c < n; ++c) digit[c] = mod.Reduce(d[c]);
      ntt.ForwardNtt(digit.data());
      const uint64_t* __restrict kbv = kb.comp(key_idx);
      const uint64_t* __restrict kav = ka.comp(key_idx);
      const uint64_t* __restrict dg = digit.data();
      uint64_t* __restrict a0 = acc0.data() + j * n;
      uint64_t* __restrict a1 = acc1.data() + j * n;
      for (size_t c = 0; c < n; ++c) {
        const uint64_t s0 = a0[c] + mod.MulMod(dg[c], kbv[c]);
        const uint64_t s1 = a1[c] + mod.MulMod(dg[c], kav[c]);
        a0[c] = s0 >= q ? s0 - q : s0;
        a1[c] = s1 >= q ? s1 - q : s1;
      }
    }
  }

  // Inverse NTT all accumulator components (back to coefficient form).
  for (size_t j = 0; j < ext; ++j) {
    const size_t key_idx = (j <= level) ? j : sp_key_idx;
    base.ntt(key_idx).InverseNtt(acc0.data() + j * n);
    base.ntt(key_idx).InverseNtt(acc1.data() + j * n);
  }

  // Divide by the special prime with t-preserving rounding:
  //   delta = t * [acc_sp * t^{-1}]_sp (centered), out = (acc - delta)/sp.
  const uint64_t sp = base.modulus(sp_key_idx).value();
  const uint64_t t_inv_sp = ctx_->t_inv_mod_sp();
  *u0 = ZeroPoly(n, level + 1, /*ntt_form=*/false);
  *u1 = ZeroPoly(n, level + 1, /*ntt_form=*/false);
  const Modulus sp_mod(sp);
  for (int which = 0; which < 2; ++which) {
    const std::vector<uint64_t>& acc = which == 0 ? acc0 : acc1;
    RnsPoly* out = which == 0 ? u0 : u1;
    const uint64_t* acc_sp = acc.data() + (level + 1) * n;
    for (size_t c = 0; c < n; ++c) {
      const uint64_t r = sp_mod.MulMod(acc_sp[c], t_inv_sp);
      const int64_t r_centered = CenterMod(r, sp);
      for (size_t j = 0; j <= level; ++j) {
        const Modulus& mod = base.modulus(j);
        const uint64_t q = mod.value();
        const uint64_t delta =
            mod.MulMod(ctx_->t_mod_q(j), ToUnsignedMod(r_centered, q));
        const uint64_t diff = SubMod(acc[j * n + c], delta, q);
        out->comp(j)[c] = mod.MulMod(diff, ctx_->sp_inv_mod_q(j));
      }
    }
  }
  ToNttInplace(u0, base);
  ToNttInplace(u1, base);
}

Status Evaluator::RelinearizeInplace(Ciphertext* a,
                                     const RelinKeys& rk) const {
  SKNN_COUNT_EVALUATOR_OP("relinearize");
  if (a->size() != 3) {
    return InvalidArgumentError("Relinearize requires a size-3 ciphertext");
  }
  RnsPoly d2 = a->c[2];
  FromNttInplace(&d2, ctx_->key_base());
  RnsPoly u0, u1;
  KeySwitchCore(a->level, d2, rk.key, &u0, &u1);
  sknn::AddInplace(&a->c[0], u0, ctx_->key_base());
  sknn::AddInplace(&a->c[1], u1, ctx_->key_base());
  a->c.pop_back();
  return Status::Ok();
}

StatusOr<Ciphertext> Evaluator::MultiplyRelin(const Ciphertext& a,
                                              const Ciphertext& b,
                                              const RelinKeys& rk,
                                              bool mod_switch) const {
  SKNN_ASSIGN_OR_RETURN(Ciphertext out, Multiply(a, b));
  SKNN_RETURN_IF_ERROR(RelinearizeInplace(&out, rk));
  if (mod_switch && out.level > 0) {
    SKNN_RETURN_IF_ERROR(ModSwitchToNextInplace(&out));
  }
  return out;
}

Status Evaluator::MultiplyPlainInplace(Ciphertext* a,
                                       const Plaintext& pt) const {
  SKNN_COUNT_EVALUATOR_OP("multiply_plain");
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  if (pt.coeffs.size() != ctx_->n()) {
    return InvalidArgumentError("plaintext degree mismatch");
  }
  if (pt.IsZero()) {
    return InvalidArgumentError(
        "multiplying by the zero plaintext produces a transparent "
        "ciphertext; subtract instead");
  }
  RnsPoly m = LiftPlainCentered(*ctx_, pt.coeffs, a->level + 1);
  ToNttInplace(&m, ctx_->key_base());
  for (RnsPoly& p : a->c) MulPointwiseInplace(&p, m, ctx_->key_base());
  return Status::Ok();
}

Status Evaluator::MultiplyScalarInplace(Ciphertext* a,
                                        uint64_t scalar_mod_t) const {
  SKNN_COUNT_EVALUATOR_OP("multiply_scalar");
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  if (scalar_mod_t >= ctx_->t()) {
    return InvalidArgumentError("scalar exceeds plaintext modulus");
  }
  if (scalar_mod_t == 0) {
    return InvalidArgumentError("scalar multiply by zero is transparent");
  }
  const int64_t centered = CenterMod(scalar_mod_t, ctx_->t());
  const size_t comps = a->level + 1;
  std::vector<uint64_t> per_prime(comps);
  for (size_t i = 0; i < comps; ++i) {
    per_prime[i] =
        ToUnsignedMod(centered, ctx_->key_base().modulus(i).value());
  }
  for (RnsPoly& p : a->c) {
    MulScalarInplace(&p, per_prime, ctx_->key_base());
  }
  return Status::Ok();
}

RnsPoly Evaluator::DropLastComponent(const RnsPoly& poly, size_t level) const {
  SKNN_CHECK(!poly.ntt_form());
  SKNN_CHECK_EQ(poly.num_components(), level + 1);
  SKNN_CHECK_GE(level, 1u);
  const size_t n = ctx_->n();
  const RnsBase& base = ctx_->key_base();
  const uint64_t q_last = base.modulus(level).value();
  const Modulus& last_mod = base.modulus(level);
  const uint64_t t_inv = ctx_->t_inv_mod_q(level);

  RnsPoly out = ZeroPoly(n, level, /*ntt_form=*/false);
  const uint64_t* last = poly.comp(level);
  for (size_t c = 0; c < n; ++c) {
    const uint64_t r = last_mod.MulMod(last[c], t_inv);
    const int64_t r_centered = CenterMod(r, q_last);
    for (size_t j = 0; j < level; ++j) {
      const Modulus& mod = base.modulus(j);
      const uint64_t q = mod.value();
      const uint64_t delta =
          mod.MulMod(ctx_->t_mod_q(j), ToUnsignedMod(r_centered, q));
      const uint64_t diff = SubMod(poly.comp(j)[c], delta, q);
      out.comp(j)[c] = mod.MulMod(diff, ctx_->q_inv_mod_q(level, j));
    }
  }
  return out;
}

Status Evaluator::ModSwitchToNextInplace(Ciphertext* a) const {
  SKNN_COUNT_EVALUATOR_OP("mod_switch");
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  if (a->level == 0) {
    return FailedPreconditionError("already at the lowest level");
  }
  for (RnsPoly& p : a->c) {
    FromNttInplace(&p, ctx_->key_base());
    p = DropLastComponent(p, a->level);
    ToNttInplace(&p, ctx_->key_base());
  }
  a->scale = ctx_->plain_modulus().MulMod(a->scale, ctx_->q_inv_mod_t(a->level));
  a->level -= 1;
  return Status::Ok();
}

Status Evaluator::ModSwitchToLevelInplace(Ciphertext* a, size_t level) const {
  if (level > a->level) {
    return InvalidArgumentError("cannot mod switch upward");
  }
  while (a->level > level) {
    SKNN_RETURN_IF_ERROR(ModSwitchToNextInplace(a));
  }
  return Status::Ok();
}

Status Evaluator::ApplyGaloisInplace(Ciphertext* a, uint64_t galois_elt,
                                     const GaloisKeys& gk) const {
  SKNN_COUNT_EVALUATOR_OP("galois_automorphism");
  SKNN_RETURN_IF_ERROR(CheckCt(*a));
  if (a->size() != 2) {
    return InvalidArgumentError("ApplyGalois requires a size-2 ciphertext");
  }
  auto it = gk.keys.find(galois_elt);
  if (it == gk.keys.end()) {
    return NotFoundError("missing Galois key for element " +
                         std::to_string(galois_elt));
  }
  const RnsBase& base = ctx_->key_base();
  RnsPoly c0 = a->c[0];
  RnsPoly c1 = a->c[1];
  FromNttInplace(&c0, base);
  FromNttInplace(&c1, base);
  RnsPoly c0_tau = ApplyGaloisCoeff(c0, galois_elt, base);
  RnsPoly c1_tau = ApplyGaloisCoeff(c1, galois_elt, base);
  ToNttInplace(&c0_tau, base);

  RnsPoly u0, u1;
  KeySwitchCore(a->level, c1_tau, it->second, &u0, &u1);
  sknn::AddInplace(&u0, c0_tau, base);
  a->c[0] = std::move(u0);
  a->c[1] = std::move(u1);
  return Status::Ok();
}

Status Evaluator::RotateRowsInplace(Ciphertext* a, int step,
                                    const GaloisKeys& gk) const {
  if (step == 0) return Status::Ok();
  const size_t row = ctx_->row_size();
  // Normalize into (-row, row).
  step = static_cast<int>(((step % static_cast<int>(row)) +
                           static_cast<int>(row)) %
                          static_cast<int>(row));
  if (step == 0) return Status::Ok();
  // Decompose into available power-of-two keys when the exact key is
  // missing.
  const uint64_t elt = ctx_->GaloisEltForRotation(step);
  if (gk.Has(elt)) {
    return ApplyGaloisInplace(a, elt, gk);
  }
  for (size_t bit = 0; (size_t{1} << bit) < row; ++bit) {
    if (step & (1 << bit)) {
      const uint64_t e = ctx_->GaloisEltForRotation(1 << bit);
      SKNN_RETURN_IF_ERROR(ApplyGaloisInplace(a, e, gk));
    }
  }
  return Status::Ok();
}

Status Evaluator::RotateColumnsInplace(Ciphertext* a,
                                       const GaloisKeys& gk) const {
  return ApplyGaloisInplace(a, ctx_->GaloisEltForColumnSwap(), gk);
}

Status Evaluator::FoldRowsInplace(Ciphertext* a, size_t block,
                                  const GaloisKeys& gk) const {
  if (block == 0 || (block & (block - 1)) != 0) {
    return InvalidArgumentError("fold block must be a power of two");
  }
  if (block > ctx_->row_size()) {
    return InvalidArgumentError("fold block exceeds row size");
  }
  for (size_t step = 1; step < block; step <<= 1) {
    Ciphertext rotated = *a;
    SKNN_RETURN_IF_ERROR(
        RotateRowsInplace(&rotated, static_cast<int>(step), gk));
    SKNN_RETURN_IF_ERROR(AddInplace(a, rotated));
  }
  return Status::Ok();
}

}  // namespace bgv
}  // namespace sknn
