#ifndef SKNN_BGV_SERIALIZATION_H_
#define SKNN_BGV_SERIALIZATION_H_

#include "bgv/ciphertext.h"
#include "bgv/keys.h"
#include "common/serial.h"
#include "common/status.h"
#include "common/statusor.h"

// Byte-level (de)serialization for everything that crosses a protocol
// channel. Readers validate structure but trust the caller to check shapes
// against the active context.

namespace sknn {
namespace bgv {

void WriteRnsPoly(const RnsPoly& p, ByteSink* sink);
StatusOr<RnsPoly> ReadRnsPoly(ByteSource* src);

void WritePlaintext(const Plaintext& pt, ByteSink* sink);
StatusOr<Plaintext> ReadPlaintext(ByteSource* src);

void WriteCiphertext(const Ciphertext& ct, ByteSink* sink);
StatusOr<Ciphertext> ReadCiphertext(ByteSource* src);

void WritePublicKey(const PublicKey& pk, ByteSink* sink);
StatusOr<PublicKey> ReadPublicKey(ByteSource* src);

void WriteSecretKey(const SecretKey& sk, ByteSink* sink);
StatusOr<SecretKey> ReadSecretKey(ByteSource* src);

void WriteKSwitchKey(const KSwitchKey& k, ByteSink* sink);
StatusOr<KSwitchKey> ReadKSwitchKey(ByteSource* src);

void WriteRelinKeys(const RelinKeys& rk, ByteSink* sink);
StatusOr<RelinKeys> ReadRelinKeys(ByteSource* src);

void WriteGaloisKeys(const GaloisKeys& gk, ByteSink* sink);
StatusOr<GaloisKeys> ReadGaloisKeys(ByteSource* src);

}  // namespace bgv
}  // namespace sknn

#endif  // SKNN_BGV_SERIALIZATION_H_
