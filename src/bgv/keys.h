#ifndef SKNN_BGV_KEYS_H_
#define SKNN_BGV_KEYS_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "bgv/context.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "math/rns_poly.h"

// BGV key material and the key generator.

namespace sknn {
namespace bgv {

// Secret key s (ternary), stored in NTT form over the full key base
// (all data primes + the special prime), plus a coefficient-form copy used
// to derive Galois-rotated keys.
struct SecretKey {
  RnsPoly s_ntt;
  RnsPoly s_coeff;
};

// Public encryption key (b, a) with b = -(a*s + t*e), in NTT form over all
// data primes (encryption at level l uses the first l+1 components).
struct PublicKey {
  RnsPoly b;
  RnsPoly a;
};

// Key-switching key from some secret s' to s: one (b_i, a_i) pair per data
// prime (RNS decomposition digits), each over the full key base in NTT
// form. b_i = -(a_i*s + t*e_i) + sp * indicator_i * s'.
struct KSwitchKey {
  std::vector<std::pair<RnsPoly, RnsPoly>> digits;

  // Shoup companions of every digit residue (same flat component-major
  // layout as the polynomials), built lazily on first use by the
  // evaluator's MAC loop and shared across copies of the key. Derived
  // data only: never serialized, never compared.
  struct ShoupTables {
    // shoup[i] = {b_shoup, a_shoup} for digits[i], each
    // num_components * n words.
    std::vector<std::pair<std::vector<uint64_t>, std::vector<uint64_t>>>
        digits;
  };
  // Returns the cached tables, building them on first call (thread-safe).
  const ShoupTables& GetShoupTables(const RnsBase& base) const;

 private:
  mutable std::shared_ptr<const ShoupTables> shoup_cache_;
};

// Relinearization key: switches s^2 -> s.
struct RelinKeys {
  KSwitchKey key;
};

// Galois keys: switches tau_g(s) -> s for each supported Galois element.
struct GaloisKeys {
  std::map<uint64_t, KSwitchKey> keys;

  bool Has(uint64_t galois_elt) const { return keys.count(galois_elt) > 0; }
};

// Generates all key material from a seeded RNG (reproducible keygen).
class KeyGenerator {
 public:
  KeyGenerator(std::shared_ptr<const BgvContext> ctx, Chacha20Rng* rng);

  SecretKey GenerateSecretKey();
  PublicKey GeneratePublicKey(const SecretKey& sk);
  RelinKeys GenerateRelinKeys(const SecretKey& sk);
  // One key per Galois element; helpers below pick elements for rotations.
  GaloisKeys GenerateGaloisKeys(const SecretKey& sk,
                                const std::vector<uint64_t>& galois_elts);
  // Keys for all power-of-two row rotations (1, 2, ..., row_size/2) in both
  // directions plus the column swap — enough to compose any rotation.
  GaloisKeys GeneratePowerOfTwoRotationKeys(const SecretKey& sk);

 private:
  KSwitchKey MakeKSwitchKey(const RnsPoly& s_prime_ntt, const SecretKey& sk);

  std::shared_ptr<const BgvContext> ctx_;
  Chacha20Rng* rng_;
};

}  // namespace bgv
}  // namespace sknn

#endif  // SKNN_BGV_KEYS_H_
