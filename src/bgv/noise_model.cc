#include "bgv/noise_model.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "bgv/sampling.h"
#include "common/logging.h"
#include "common/metrics_registry.h"

namespace sknn {
namespace bgv {
namespace {

// log2(2^a + 2^b) without overflow, stable for far-apart magnitudes.
double LogAdd(double a, double b) {
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  if (hi - lo > 60.0) return hi;
  return hi + std::log2(1.0 + std::exp2(lo - hi));
}

bool Untracked(double bits) { return bits < 0.0; }

}  // namespace

NoiseModel::NoiseModel(const BgvContext& ctx) {
  const double n = static_cast<double>(ctx.n());
  t_ = ctx.t();
  log_n_ = std::log2(n);
  log_t_ = std::log2(static_cast<double>(t_));
  // The sampler's inverse-CDF table has hard support [-B, B]; see
  // Chacha20Rng::SampleGaussian.
  log_b_ = std::log2(std::ceil(6.0 * kNoiseSigma));
  log_sp_ =
      std::log2(static_cast<double>(
          ctx.key_base().modulus(ctx.special_index()).value()));
  log_q_.resize(ctx.num_data_primes());
  log_qmax_.resize(ctx.num_data_primes());
  double acc = 0.0;
  double qmax = 0.0;
  for (size_t i = 0; i < ctx.num_data_primes(); ++i) {
    const double qi =
        std::log2(static_cast<double>(ctx.key_base().modulus(i).value()));
    acc += qi;
    qmax = std::max(qmax, qi);
    log_q_[i] = acc;
    log_qmax_[i] = qmax;
  }
  // Public key: v = m + t*(e_pk*u + e0 + e1*s), ternary u,s, gaussian
  // errors |e| <= B: N <= t*B*(2n+1).
  fresh_pk_bits_ = log_t_ + log_b_ + std::log2(2.0 * n + 1.0);
  // Symmetric: v = m + t*e: N <= t*B.
  fresh_sym_bits_ = log_t_ + log_b_;
}

double NoiseModel::EstimatedBudgetBits(const Ciphertext& ct) const {
  if (!ct.noise_tracked()) return kNoiseUntracked;
  const double budget = LogQ(ct.level) - 1.0 - ct.noise_bits;
  return budget > 0.0 ? budget : 0.0;
}

double NoiseModel::Add(double a, double b) const {
  if (Untracked(a) || Untracked(b)) return kNoiseUntracked;
  // N1 + N2 plus up to t for re-centering the message sum.
  return LogAdd(LogAdd(a, b), log_t_);
}

double NoiseModel::AddPlain(double a) const {
  if (Untracked(a)) return kNoiseUntracked;
  return LogAdd(a, log_t_);
}

double NoiseModel::Multiply(double a, double b) const {
  if (Untracked(a) || Untracked(b)) return kNoiseUntracked;
  // v3 = v1*v2 (ring product): ||v3|| <= n*(t/2 + N1)*(t/2 + N2), plus t/2
  // re-centering the product message.
  const double half_t = log_t_ - 1.0;
  return LogAdd(log_n_ + LogAdd(a, half_t) + LogAdd(b, half_t), half_t);
}

double NoiseModel::MultiplyPlain(double a) const {
  if (Untracked(a)) return kNoiseUntracked;
  const double half_t = log_t_ - 1.0;
  return LogAdd(log_n_ + half_t + LogAdd(a, half_t), half_t);
}

double NoiseModel::MultiplyScalar(double a, uint64_t scalar_mod_t) const {
  if (Untracked(a)) return kNoiseUntracked;
  // Coefficient-wise product by the centered lift c of the scalar:
  // |c| * (N + t/2) + t/2. Multiplying by zero annihilates the noise.
  uint64_t mag = scalar_mod_t;
  if (mag > t_ / 2) mag = t_ - mag;
  if (mag == 0) return 0.0;
  const double half_t = log_t_ - 1.0;
  return LogAdd(std::log2(static_cast<double>(mag)) + LogAdd(a, half_t),
                half_t);
}

double NoiseModel::KeySwitch(double a, size_t level) const {
  if (Untracked(a)) return kNoiseUntracked;
  // Hybrid key switching over level+1 digits: each digit |d_j| <= q_j/2
  // multiplies a key poly with gaussian error, divided by the special
  // prime P on the way down, plus the t-preserving rounding of size-2
  // results: n*t*B*(level+1)*q_max/(2P) + (t/2)*(1 + n). The 1/2 on the
  // first term is dropped (digits bounded by q_j, not q_j/2) for safety
  // against the special-prime rounding interplay.
  const double digits = std::log2(static_cast<double>(level + 1));
  const double term1 =
      log_n_ + log_t_ + log_b_ + digits + log_qmax_[level] - log_sp_;
  const double term2 = log_t_ - 1.0 + std::log2(1.0 + std::exp2(log_n_));
  return LogAdd(a, LogAdd(term1, term2));
}

double NoiseModel::ModSwitch(double a, size_t level_from,
                             size_t ct_size) const {
  if (Untracked(a)) return kNoiseUntracked;
  const double log_q_dropped =
      log_q_[level_from] - (level_from == 0 ? 0.0 : log_q_[level_from - 1]);
  // Scaled-down noise plus rounding (t/2)*sum_{i<size} n^i: the delta
  // correction is bounded by t*q_drop/2 per component and components meet
  // powers of s with ||s^i||-expansion n^i.
  double powers = 1.0;
  double n_pow = 1.0;
  for (size_t i = 1; i < ct_size; ++i) {
    n_pow *= std::exp2(log_n_);
    powers += n_pow;
  }
  const double rounding = log_t_ - 1.0 + std::log2(powers);
  return LogAdd(a - log_q_dropped, rounding);
}

void NoiseModel::WarnIfThin(const Ciphertext& ct, const char* where) const {
  const double budget = EstimatedBudgetBits(ct);
  if (budget < 0.0 || budget >= kThinMarginBits) return;
  static MetricsRegistry::Counter* warnings =
      MetricsRegistry::Global().GetCounter("bgv.noise.thin_margin_warnings");
  warnings->Increment();
  // One log line per site, not per ciphertext: a k*n indicator sweep near
  // the margin would otherwise flood stderr.
  static std::atomic<uint64_t> logged{0};
  if (logged.fetch_add(1, std::memory_order_relaxed) < 8) {
    SKNN_LOG_WARNING << "thin noise margin at " << where << ": estimated "
                     << budget << " bits remaining (level " << ct.level
                     << ", noise " << ct.noise_bits << " bits)";
  }
}

}  // namespace bgv
}  // namespace sknn
