#ifndef SKNN_BGV_NOISE_MODEL_H_
#define SKNN_BGV_NOISE_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bgv/ciphertext.h"
#include "bgv/context.h"

// Secret-key-free static estimator for BGV invariant noise.
//
// Writing the decryption invariant as v = c0 + c1*s (+ c2*s^2) = [m]_t + t*e
// over the integers (coefficients centered), the quantity the exact
// measurement `Decryptor::NoiseBudgetBits` reports is
//   budget = bitlen(Q_level) - 1 - log2(||t*e||_inf).
// This model tracks `Ciphertext::noise_bits`, an upper bound on
// log2(||t*e||_inf), through every Encryptor/Evaluator primitive using
// worst-case coefficient-norm bounds (||a*b||_inf <= n*||a||_inf*||b||_inf
// for degree-n ring products; the Gaussian sampler is hard-truncated at
// B = ceil(6*sigma), so fresh-noise bounds hold with certainty, not just
// overwhelming probability). Consequently the estimated remaining budget
//   EstimatedBudgetBits = log2(Q_level) - 1 - noise_bits
// is a guaranteed lower bound on the exact measurement — it reaches the
// thin-margin threshold strictly before decryption can fail. Derivations
// and the observed slack (how pessimistic each rule is in practice) are in
// DESIGN.md §7.3.
//
// All transition rules operate in log2 space on `noise_bits` values and
// propagate `kNoiseUntracked` (any untracked input -> untracked output),
// so call sites stay one-liners. The model is a handful of precomputed
// doubles; every rule is a few flops and safe on hot paths.

namespace sknn {
namespace bgv {

class NoiseModel {
 public:
  // Estimated budget below which `WarnIfThin` fires: one more deep
  // multiply-and-fold at typical parameters can burn through this margin,
  // so a run that ever decrypts incorrectly must have warned first.
  static constexpr double kThinMarginBits = 10.0;

  explicit NoiseModel(const BgvContext& ctx);

  // log2 of the ciphertext modulus product q_0..q_level.
  double LogQ(size_t level) const { return log_q_[level]; }

  // Guaranteed lower bound on Decryptor::NoiseBudgetBits for a tracked
  // ciphertext (clamped at 0); kNoiseUntracked if the estimate is absent.
  double EstimatedBudgetBits(const Ciphertext& ct) const;

  // Fresh-encryption bounds: public-key t*B*(2n+1), symmetric t*B.
  double FreshPkNoiseBits() const { return fresh_pk_bits_; }
  double FreshSymmetricNoiseBits() const { return fresh_sym_bits_; }

  // --- transition rules (inputs/outputs are noise_bits values) ---
  // Ciphertext add/sub, including the +t message re-centering term.
  double Add(double a, double b) const;
  // Plaintext add/sub: +t re-centering only.
  double AddPlain(double a) const;
  // Tensor product: n*(t/2 + N1)*(t/2 + N2) + t/2.
  double Multiply(double a, double b) const;
  // Plaintext (ring) product: n*(t/2)*(t/2 + N) + t/2.
  double MultiplyPlain(double a) const;
  // Coefficient-wise scalar product by `scalar` (mod t, centered lift):
  // |c|*(N + t/2) + t/2.
  double MultiplyScalar(double a, uint64_t scalar_mod_t) const;
  // Additive key-switch term (relinearization, Galois) at `level`.
  double KeySwitch(double a, size_t level) const;
  // Drop the last data prime of `level_from`; `ct_size` components feel
  // the t-preserving rounding (t/2 * sum_{i<size} n^i).
  double ModSwitch(double a, size_t level_from, size_t ct_size) const;

  // Logs a rate-limited warning and bumps `bgv.noise.thin_margin_warnings`
  // when a tracked ciphertext's estimated budget drops below
  // kThinMarginBits. `where` names the protocol site for the log line.
  void WarnIfThin(const Ciphertext& ct, const char* where) const;

 private:
  uint64_t t_ = 0;         // plain modulus (for centered scalar lifts)
  double log_n_ = 0;       // log2(ring degree)
  double log_t_ = 0;       // log2(plain modulus)
  double log_b_ = 0;       // log2(gaussian truncation bound)
  double log_sp_ = 0;      // log2(special prime)
  std::vector<double> log_q_;      // log2(prod q_0..q_i) per level
  std::vector<double> log_qmax_;   // log2(max data prime <= level)
  double fresh_pk_bits_ = 0;
  double fresh_sym_bits_ = 0;
};

}  // namespace bgv
}  // namespace sknn

#endif  // SKNN_BGV_NOISE_MODEL_H_
