#ifndef SKNN_BGV_SAMPLING_H_
#define SKNN_BGV_SAMPLING_H_

#include "bgv/context.h"
#include "common/rng.h"
#include "math/rns_poly.h"

// RNS polynomial samplers. Ternary and Gaussian polynomials represent one
// signed integer polynomial consistently across all RNS components; uniform
// polynomials are sampled independently per component (valid by CRT).

namespace sknn {
namespace bgv {

// Noise standard deviation used throughout (the HE-standard value).
inline constexpr double kNoiseSigma = 3.2;

// Uniform polynomial over the first `components` primes of the key base,
// returned in NTT form.
RnsPoly SampleUniformPoly(const BgvContext& ctx, size_t components,
                          Chacha20Rng* rng);

// Ternary {-1,0,1} polynomial with consistent signed values across the
// first `components` primes; returned in coefficient form.
RnsPoly SampleTernaryPoly(const BgvContext& ctx, size_t components,
                          Chacha20Rng* rng);

// Centered discrete Gaussian polynomial (sigma = kNoiseSigma), consistent
// across components; returned in coefficient form.
RnsPoly SampleGaussianPoly(const BgvContext& ctx, size_t components,
                           Chacha20Rng* rng);

// Lifts a plaintext coefficient vector (mod t) to an RNS polynomial over
// the first `components` primes using the centered representative
// (minimizes noise growth); returned in coefficient form.
RnsPoly LiftPlainCentered(const BgvContext& ctx,
                          const std::vector<uint64_t>& coeffs_mod_t,
                          size_t components);

}  // namespace bgv
}  // namespace sknn

#endif  // SKNN_BGV_SAMPLING_H_
