#include "bgv/symmetric.h"

#include "bgv/noise_model.h"
#include "bgv/sampling.h"
#include "bgv/serialization.h"

namespace sknn {
namespace bgv {
namespace {

// Deterministically expands the uniform c1 component from a seed. The
// expansion must be identical on both sides: one Chacha20 stream per RNS
// component (stream id = component index).
RnsPoly ExpandA(const BgvContext& ctx, const Chacha20Rng::Seed& seed,
                size_t components) {
  RnsPoly a = ZeroPoly(ctx.n(), components, /*ntt_form=*/true);
  for (size_t i = 0; i < components; ++i) {
    Chacha20Rng stream(seed, /*stream_id=*/i);
    stream.SampleUniformModInto(ctx.key_base().modulus(i).value(), ctx.n(),
                                a.comp(i));
  }
  return a;
}

}  // namespace

SymmetricEncryptor::SymmetricEncryptor(std::shared_ptr<const BgvContext> ctx,
                                       SecretKey sk, Chacha20Rng* rng)
    : ctx_(std::move(ctx)), sk_(std::move(sk)), rng_(rng) {}

StatusOr<SeededCiphertext> SymmetricEncryptor::EncryptSeeded(
    const Plaintext& pt, size_t level, Chacha20Rng* rng) const {
  if (level > ctx_->max_level()) {
    return InvalidArgumentError("encryption level exceeds parameter chain");
  }
  if (pt.coeffs.size() != ctx_->n()) {
    return InvalidArgumentError("plaintext has wrong degree");
  }
  if (rng == nullptr) rng = rng_;
  const size_t comps = level + 1;
  const RnsBase& base = ctx_->key_base();

  SeededCiphertext out;
  out.level = level;
  out.scale = 1;
  rng->FillBytes(out.seed.data(), out.seed.size());
  RnsPoly a = ExpandA(*ctx_, out.seed, comps);

  RnsPoly e = SampleGaussianPoly(*ctx_, comps, rng);
  std::vector<uint64_t> t_mod(comps);
  for (size_t i = 0; i < comps; ++i) t_mod[i] = ctx_->t_mod_q(i);
  MulScalarInplace(&e, t_mod, base);
  RnsPoly m = LiftPlainCentered(*ctx_, pt.coeffs, comps);
  AddInplace(&e, m, base);  // e <- t*e + m
  ToNttInplace(&e, base);

  // c0 = -(a*s) + t*e + m.
  RnsPoly s_restricted = sk_.s_ntt.Prefix(comps);
  out.c0 = MulPointwise(a, s_restricted, base);
  NegateInplace(&out.c0, base);
  AddInplace(&out.c0, e, base);
  return out;
}

StatusOr<Ciphertext> SymmetricEncryptor::Encrypt(const Plaintext& pt,
                                                 size_t level) const {
  SKNN_ASSIGN_OR_RETURN(SeededCiphertext seeded, EncryptSeeded(pt, level));
  return ExpandSeeded(*ctx_, seeded);
}

StatusOr<Ciphertext> ExpandSeeded(const BgvContext& ctx,
                                  const SeededCiphertext& seeded) {
  if (seeded.c0.n() != ctx.n()) {
    return InvalidArgumentError("seeded ciphertext ring mismatch");
  }
  if (seeded.level + 1 != seeded.c0.num_components()) {
    return InvalidArgumentError("seeded ciphertext level mismatch");
  }
  Ciphertext ct;
  ct.level = seeded.level;
  ct.scale = seeded.scale;
  // The seeded form is only ever produced by EncryptSeeded, so the fresh
  // symmetric bound applies whether it was expanded locally or after a
  // wire round-trip.
  ct.noise_bits = NoiseModel(ctx).FreshSymmetricNoiseBits();
  ct.c.push_back(seeded.c0);
  ct.c.push_back(ExpandA(ctx, seeded.seed, seeded.level + 1));
  return ct;
}

void WriteSeededCiphertext(const SeededCiphertext& ct, ByteSink* sink) {
  sink->WriteU64(ct.level);
  sink->WriteU64(ct.scale);
  WriteRnsPoly(ct.c0, sink);
  sink->WriteBytes(ct.seed.data(), ct.seed.size());
}

StatusOr<SeededCiphertext> ReadSeededCiphertext(ByteSource* src) {
  SeededCiphertext ct;
  SKNN_ASSIGN_OR_RETURN(uint64_t level, src->ReadU64());
  ct.level = static_cast<size_t>(level);
  SKNN_ASSIGN_OR_RETURN(ct.scale, src->ReadU64());
  SKNN_ASSIGN_OR_RETURN(ct.c0, ReadRnsPoly(src));
  for (size_t i = 0; i < ct.seed.size(); ++i) {
    SKNN_ASSIGN_OR_RETURN(ct.seed[i], src->ReadU8());
  }
  return ct;
}

}  // namespace bgv
}  // namespace sknn
