#ifndef SKNN_BGV_CONTEXT_H_
#define SKNN_BGV_CONTEXT_H_

#include <memory>
#include <vector>

#include "bgv/params.h"
#include "common/status.h"
#include "common/statusor.h"
#include "math/ntt.h"
#include "math/rns_poly.h"

// Precomputed tables shared by every BGV component: the RNS base with NTT
// tables per prime, the plaintext-space NTT for batching, the slot index
// map, modulus-switching constants, and key-switching constants.

namespace sknn {
namespace bgv {

class BgvContext {
 public:
  // Builds and validates a context; the returned object is immutable and
  // shared by encryptor/decryptor/evaluator instances.
  static StatusOr<std::shared_ptr<const BgvContext>> Create(
      const BgvParams& params);

  const BgvParams& params() const { return params_; }
  size_t n() const { return params_.n; }
  uint64_t t() const { return params_.plain_modulus; }
  const Modulus& plain_modulus() const { return plain_mod_; }

  // Number of data primes (levels run 0 .. num_data_primes()-1).
  size_t num_data_primes() const { return params_.data_primes.size(); }
  size_t max_level() const { return num_data_primes() - 1; }
  // Index of the special prime inside key_base().
  size_t special_index() const { return num_data_primes(); }

  // Full key RNS base: data primes followed by the special prime.
  const RnsBase& key_base() const { return key_base_; }
  // NTT tables for the plaintext modulus (batching).
  const NttTables& plain_ntt() const { return plain_ntt_; }

  // Batching layout: slot i of the value vector maps to coefficient
  // slot_index_map()[i] in the NTT-evaluation ordering.
  const std::vector<size_t>& slot_index_map() const { return slot_index_map_; }
  size_t row_size() const { return params_.n / 2; }

  // --- modulus switching constants ---
  // Each multiplicative constant comes with a Shoup companion (`*_shoup`)
  // so the rounding tails of key switching and modulus switching can run
  // component-major with two-multiply Shoup products instead of Barrett.
  // t^{-1} mod q_i (data prime i) and mod the special prime.
  uint64_t t_inv_mod_q(size_t i) const { return t_inv_mod_q_[i]; }
  uint64_t t_inv_mod_q_shoup(size_t i) const { return t_inv_mod_q_shoup_[i]; }
  uint64_t t_inv_mod_sp() const { return t_inv_mod_sp_; }
  uint64_t t_inv_mod_sp_shoup() const { return t_inv_mod_sp_shoup_; }
  // q_dropped^{-1} mod q_j, j < dropped.
  uint64_t q_inv_mod_q(size_t dropped, size_t j) const {
    return q_inv_mod_q_[dropped][j];
  }
  uint64_t q_inv_mod_q_shoup(size_t dropped, size_t j) const {
    return q_inv_mod_q_shoup_[dropped][j];
  }
  // q_dropped mod q_j, j < dropped (signed-lift correction term).
  uint64_t q_mod_q(size_t dropped, size_t j) const {
    return q_mod_q_[dropped][j];
  }
  // t * q_dropped^{-1} mod q_j: the fused factor the rounding correction
  // multiplies by (out = a * q_inv - r * t_q_inv).
  uint64_t t_q_inv_mod_q(size_t dropped, size_t j) const {
    return t_q_inv_mod_q_[dropped][j];
  }
  uint64_t t_q_inv_mod_q_shoup(size_t dropped, size_t j) const {
    return t_q_inv_mod_q_shoup_[dropped][j];
  }
  // special^{-1} mod q_j.
  uint64_t sp_inv_mod_q(size_t j) const { return sp_inv_mod_q_[j]; }
  uint64_t sp_inv_mod_q_shoup(size_t j) const { return sp_inv_mod_q_shoup_[j]; }
  // t * special^{-1} mod q_j (fused rounding factor for key switching).
  uint64_t t_sp_inv_mod_q(size_t j) const { return t_sp_inv_mod_q_[j]; }
  uint64_t t_sp_inv_mod_q_shoup(size_t j) const {
    return t_sp_inv_mod_q_shoup_[j];
  }
  // special mod q_i (key generation payload factor).
  uint64_t sp_mod_q(size_t i) const { return sp_mod_q_[i]; }
  // t mod q_i / t mod special.
  uint64_t t_mod_q(size_t i) const { return t_mod_q_[i]; }
  uint64_t t_mod_sp() const { return t_mod_sp_; }

  // q_i^{-1} mod t: the factor a modulus switch dropping q_i applies to the
  // ciphertext's scale.
  uint64_t q_inv_mod_t(size_t i) const { return q_inv_mod_t_[i]; }
  // Reference product of dropped primes q_{level+1..L} mod t (the scale a
  // top-level ciphertext acquires when switched straight down to `level`).
  uint64_t correction_mod_t(size_t level) const {
    return correction_mod_t_[level];
  }

  // --- Galois / rotation ---
  // Galois element realizing a cyclic row rotation by `step`
  // (step in (-row_size, row_size), nonzero).
  uint64_t GaloisEltForRotation(int step) const;
  // Galois element swapping the two slot rows.
  uint64_t GaloisEltForColumnSwap() const { return 2 * params_.n - 1; }

 private:
  BgvContext() = default;

  BgvParams params_;
  RnsBase key_base_;
  NttTables plain_ntt_;
  Modulus plain_mod_;
  std::vector<size_t> slot_index_map_;
  std::vector<uint64_t> t_inv_mod_q_;
  std::vector<uint64_t> t_inv_mod_q_shoup_;
  uint64_t t_inv_mod_sp_ = 0;
  uint64_t t_inv_mod_sp_shoup_ = 0;
  std::vector<std::vector<uint64_t>> q_inv_mod_q_;
  std::vector<std::vector<uint64_t>> q_inv_mod_q_shoup_;
  std::vector<std::vector<uint64_t>> q_mod_q_;
  std::vector<std::vector<uint64_t>> t_q_inv_mod_q_;
  std::vector<std::vector<uint64_t>> t_q_inv_mod_q_shoup_;
  std::vector<uint64_t> sp_inv_mod_q_;
  std::vector<uint64_t> sp_inv_mod_q_shoup_;
  std::vector<uint64_t> t_sp_inv_mod_q_;
  std::vector<uint64_t> t_sp_inv_mod_q_shoup_;
  std::vector<uint64_t> sp_mod_q_;
  std::vector<uint64_t> t_mod_q_;
  uint64_t t_mod_sp_ = 0;
  std::vector<uint64_t> q_inv_mod_t_;
  std::vector<uint64_t> correction_mod_t_;
};

}  // namespace bgv
}  // namespace sknn

#endif  // SKNN_BGV_CONTEXT_H_
