#ifndef SKNN_BGV_DECRYPTOR_H_
#define SKNN_BGV_DECRYPTOR_H_

#include <memory>

#include "bgv/ciphertext.h"
#include "bgv/context.h"
#include "bgv/keys.h"
#include "common/status.h"
#include "common/statusor.h"

// BGV decryption and exact noise measurement.

namespace sknn {
namespace bgv {

class Decryptor {
 public:
  Decryptor(std::shared_ptr<const BgvContext> ctx, SecretKey sk);

  // Decrypts a ciphertext of size 2 or 3 at any level. Applies the modulus
  // switching correction factor so the result equals the originally
  // encrypted plaintext.
  StatusOr<Plaintext> Decrypt(const Ciphertext& ct) const;

  // Remaining noise budget in bits: log2(Q_level / (2 * |noise|)).
  // Decryption fails (garbage output) when this reaches 0. Exact
  // computation via CRT reconstruction; intended for tests and diagnostics.
  StatusOr<double> NoiseBudgetBits(const Ciphertext& ct) const;

 private:
  // v = sum_i c_i * s^i over the ciphertext's components, coefficient form.
  RnsPoly DotWithSecret(const Ciphertext& ct) const;

  std::shared_ptr<const BgvContext> ctx_;
  SecretKey sk_;
};

}  // namespace bgv
}  // namespace sknn

#endif  // SKNN_BGV_DECRYPTOR_H_
