#ifndef SKNN_BGV_CIPHERTEXT_H_
#define SKNN_BGV_CIPHERTEXT_H_

#include <cstdint>
#include <vector>

#include "math/rns_poly.h"

// BGV plaintext and ciphertext value types.

namespace sknn {
namespace bgv {

// A plaintext polynomial in R_t, stored as n coefficients in [0, t).
// Batched plaintexts are produced by BatchEncoder; scalar plaintexts
// (constant polynomials) act on every slot uniformly.
struct Plaintext {
  std::vector<uint64_t> coeffs;

  bool IsZero() const {
    for (uint64_t c : coeffs) {
      if (c != 0) return false;
    }
    return true;
  }
};

// A BGV ciphertext at some level. c.size() == 2 normally; 3 transiently
// after tensoring (before relinearization). Polynomials are kept in NTT
// form over the first level+1 data primes.
//
// `scale` is the BGV correction factor: decrypting yields scale * m (mod t).
// Modulus switching multiplies it by q_dropped^{-1} and ciphertext
// multiplication multiplies the factors; the Decryptor divides it out and
// the Evaluator reconciles mismatched factors on addition.
struct Ciphertext {
  size_t level = 0;
  uint64_t scale = 1;
  std::vector<RnsPoly> c;

  size_t size() const { return c.size(); }
  size_t num_components() const {
    return c.empty() ? 0 : c[0].num_components();
  }
};

}  // namespace bgv
}  // namespace sknn

#endif  // SKNN_BGV_CIPHERTEXT_H_
