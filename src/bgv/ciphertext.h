#ifndef SKNN_BGV_CIPHERTEXT_H_
#define SKNN_BGV_CIPHERTEXT_H_

#include <cstdint>
#include <vector>

#include "math/rns_poly.h"

// BGV plaintext and ciphertext value types.

namespace sknn {
namespace bgv {

// A plaintext polynomial in R_t, stored as n coefficients in [0, t).
// Batched plaintexts are produced by BatchEncoder; scalar plaintexts
// (constant polynomials) act on every slot uniformly.
struct Plaintext {
  std::vector<uint64_t> coeffs;

  bool IsZero() const {
    for (uint64_t c : coeffs) {
      if (c != 0) return false;
    }
    return true;
  }
};

// A BGV ciphertext at some level. c.size() == 2 normally; 3 transiently
// after tensoring (before relinearization). Polynomials are kept in NTT
// form over the first level+1 data primes.
//
// `scale` is the BGV correction factor: decrypting yields scale * m (mod t).
// Modulus switching multiplies it by q_dropped^{-1} and ciphertext
// multiplication multiplies the factors; the Decryptor divides it out and
// the Evaluator reconciles mismatched factors on addition.
// Sentinel for `Ciphertext::noise_bits`: the estimator has no provenance
// for this ciphertext (e.g. it was deserialized from the wire), so no
// bound is tracked until a caller stamps one (see bgv::NoiseModel).
inline constexpr double kNoiseUntracked = -1.0;

struct Ciphertext {
  size_t level = 0;
  uint64_t scale = 1;
  std::vector<RnsPoly> c;

  // Secret-key-free upper bound on the invariant-noise magnitude,
  // log2(||t*e||_inf), maintained by Encryptor/Evaluator through every
  // primitive (see bgv::NoiseModel and DESIGN.md §7.3). Telemetry only:
  // never serialized (the wire format is unchanged) and never read by the
  // arithmetic itself. kNoiseUntracked when unknown.
  double noise_bits = kNoiseUntracked;

  bool noise_tracked() const { return noise_bits >= 0.0; }

  size_t size() const { return c.size(); }
  size_t num_components() const {
    return c.empty() ? 0 : c[0].num_components();
  }
};

}  // namespace bgv
}  // namespace sknn

#endif  // SKNN_BGV_CIPHERTEXT_H_
