#ifndef SKNN_BGV_SYMMETRIC_H_
#define SKNN_BGV_SYMMETRIC_H_

#include <memory>

#include "bgv/ciphertext.h"
#include "bgv/context.h"
#include "bgv/keys.h"
#include "common/rng.h"
#include "common/serial.h"
#include "common/status.h"
#include "common/statusor.h"

// Symmetric (secret-key) BGV encryption with seed compression.
//
// A fresh symmetric ciphertext is (c0, c1) with c1 = a drawn uniformly and
// c0 = -(a*s + t*e) + m. Since a is uniform, it can be *derived from a
// 32-byte PRF seed* instead of being transmitted: the sender ships
// (c0, seed) and the receiver re-expands a. This halves the wire size of
// every fresh ciphertext — in the k-NN protocol it halves Party B's
// indicator upload, the dominant communication cost.

namespace sknn {
namespace bgv {

// A half-size fresh ciphertext: the c1 component is represented by the
// seed that generates it.
struct SeededCiphertext {
  size_t level = 0;
  uint64_t scale = 1;
  RnsPoly c0;
  Chacha20Rng::Seed seed = {};
};

// Rebuilds the full two-component ciphertext from the compressed form.
StatusOr<Ciphertext> ExpandSeeded(const BgvContext& ctx,
                                  const SeededCiphertext& seeded);

// Secret-key encryptor (the key-holding party's cheap path: one ring
// product instead of the public-key encryption's two, plus seedable c1).
class SymmetricEncryptor {
 public:
  SymmetricEncryptor(std::shared_ptr<const BgvContext> ctx, SecretKey sk,
                     Chacha20Rng* rng);

  // Compressed encryption at the given level. When `rng` is non-null all
  // randomness (including the c1 seed) is drawn from it instead of the
  // constructor's generator — parallel callers hand each task a
  // deterministic fork so the transcript does not depend on scheduling.
  StatusOr<SeededCiphertext> EncryptSeeded(const Plaintext& pt, size_t level,
                                           Chacha20Rng* rng = nullptr) const;
  // Convenience: compressed encryption immediately expanded.
  StatusOr<Ciphertext> Encrypt(const Plaintext& pt, size_t level) const;

 private:
  std::shared_ptr<const BgvContext> ctx_;
  SecretKey sk_;
  Chacha20Rng* rng_;
};

// Serialization of the compressed form.
void WriteSeededCiphertext(const SeededCiphertext& ct, ByteSink* sink);
StatusOr<SeededCiphertext> ReadSeededCiphertext(ByteSource* src);

}  // namespace bgv
}  // namespace sknn

#endif  // SKNN_BGV_SYMMETRIC_H_
