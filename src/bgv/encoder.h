#ifndef SKNN_BGV_ENCODER_H_
#define SKNN_BGV_ENCODER_H_

#include <memory>
#include <vector>

#include "bgv/ciphertext.h"
#include "bgv/context.h"
#include "common/status.h"
#include "common/statusor.h"

// Smart–Vercauteren batching: because t ≡ 1 (mod 2n), x^n + 1 splits into n
// linear factors mod t and R_t ≅ Z_t^n. Encode maps a vector of n slot
// values to the unique polynomial taking those values at the evaluation
// points; Decode inverts. Homomorphic ring operations then act slot-wise.

namespace sknn {
namespace bgv {

class BatchEncoder {
 public:
  explicit BatchEncoder(std::shared_ptr<const BgvContext> ctx);

  size_t slot_count() const { return ctx_->n(); }
  size_t row_size() const { return ctx_->row_size(); }

  // Encodes up to slot_count() values (each < t); missing slots are zero.
  StatusOr<Plaintext> Encode(const std::vector<uint64_t>& values) const;
  // Decodes all slots.
  std::vector<uint64_t> Decode(const Plaintext& pt) const;

  // Constant-polynomial plaintext: the same scalar in every slot, with no
  // NTT cost and minimal noise impact when multiplied.
  Plaintext EncodeScalar(uint64_t value) const;

 private:
  std::shared_ptr<const BgvContext> ctx_;
};

}  // namespace bgv
}  // namespace sknn

#endif  // SKNN_BGV_ENCODER_H_
