#include "bgv/encryptor.h"

#include "bgv/noise_model.h"
#include "bgv/sampling.h"
#include "common/logging.h"

namespace sknn {
namespace bgv {

Encryptor::Encryptor(std::shared_ptr<const BgvContext> ctx, PublicKey pk,
                     Chacha20Rng* rng)
    : ctx_(std::move(ctx)), pk_(std::move(pk)), rng_(rng) {}

StatusOr<Ciphertext> Encryptor::Encrypt(const Plaintext& pt) const {
  return EncryptAtLevel(pt, ctx_->max_level());
}

StatusOr<Ciphertext> Encryptor::EncryptAtLevel(const Plaintext& pt,
                                               size_t level,
                                               Chacha20Rng* rng) const {
  if (level > ctx_->max_level()) {
    return InvalidArgumentError("encryption level exceeds parameter chain");
  }
  if (pt.coeffs.size() != ctx_->n()) {
    return InvalidArgumentError("plaintext has wrong degree");
  }
  if (rng == nullptr) rng = rng_;
  const size_t comps = level + 1;
  const RnsBase& base = ctx_->key_base();

  RnsPoly u = SampleTernaryPoly(*ctx_, comps, rng);
  ToNttInplace(&u, base);
  RnsPoly e0 = SampleGaussianPoly(*ctx_, comps, rng);
  RnsPoly e1 = SampleGaussianPoly(*ctx_, comps, rng);
  std::vector<uint64_t> t_mod(comps);
  for (size_t i = 0; i < comps; ++i) t_mod[i] = ctx_->t_mod_q(i);
  MulScalarInplace(&e0, t_mod, base);
  MulScalarInplace(&e1, t_mod, base);

  RnsPoly m = LiftPlainCentered(*ctx_, pt.coeffs, comps);
  AddInplace(&e0, m, base);  // e0 <- t*e0 + m (both coefficient form)
  ToNttInplace(&e0, base);
  ToNttInplace(&e1, base);

  Ciphertext ct;
  ct.level = level;
  ct.scale = 1;
  ct.noise_bits = NoiseModel(*ctx_).FreshPkNoiseBits();
  // c0 = b*u + t*e0 + m ; c1 = a*u + t*e1, restricted to `comps` components.
  RnsPoly b_restricted = pk_.b.Prefix(comps);
  RnsPoly a_restricted = pk_.a.Prefix(comps);
  RnsPoly c0 = MulPointwise(b_restricted, u, base);
  AddInplace(&c0, e0, base);
  RnsPoly c1 = MulPointwise(a_restricted, u, base);
  AddInplace(&c1, e1, base);
  ct.c.push_back(std::move(c0));
  ct.c.push_back(std::move(c1));
  return ct;
}

}  // namespace bgv
}  // namespace sknn
