#include "bgv/sampling.h"

#include "common/logging.h"

namespace sknn {
namespace bgv {
namespace {

// Builds an RNS polynomial from one vector of signed values.
RnsPoly FromSigned(const BgvContext& ctx, size_t components,
                   const std::vector<int64_t>& values) {
  RnsPoly p = ZeroPoly(ctx.n(), components, /*ntt_form=*/false);
  for (size_t i = 0; i < components; ++i) {
    const uint64_t q = ctx.key_base().modulus(i).value();
    uint64_t* comp = p.comp(i);
    for (size_t j = 0; j < ctx.n(); ++j) {
      comp[j] = ToUnsignedMod(values[j], q);
    }
  }
  return p;
}

}  // namespace

RnsPoly SampleUniformPoly(const BgvContext& ctx, size_t components,
                          Chacha20Rng* rng) {
  RnsPoly p = ZeroPoly(ctx.n(), components, /*ntt_form=*/true);
  for (size_t i = 0; i < components; ++i) {
    rng->SampleUniformModInto(ctx.key_base().modulus(i).value(), ctx.n(),
                              p.comp(i));
  }
  return p;
}

RnsPoly SampleTernaryPoly(const BgvContext& ctx, size_t components,
                          Chacha20Rng* rng) {
  std::vector<int64_t> values(ctx.n());
  for (size_t j = 0; j < ctx.n(); ++j) {
    values[j] = static_cast<int64_t>(rng->UniformBelow(3)) - 1;
  }
  return FromSigned(ctx, components, values);
}

RnsPoly SampleGaussianPoly(const BgvContext& ctx, size_t components,
                           Chacha20Rng* rng) {
  // Sample once against a large reference modulus, then recentre.
  const uint64_t ref = uint64_t{1} << 62;
  std::vector<uint64_t> raw;
  rng->SampleGaussian(ref, kNoiseSigma, ctx.n(), &raw);
  std::vector<int64_t> values(ctx.n());
  for (size_t j = 0; j < ctx.n(); ++j) values[j] = CenterMod(raw[j], ref);
  return FromSigned(ctx, components, values);
}

RnsPoly LiftPlainCentered(const BgvContext& ctx,
                          const std::vector<uint64_t>& coeffs_mod_t,
                          size_t components) {
  SKNN_CHECK_EQ(coeffs_mod_t.size(), ctx.n());
  const uint64_t t = ctx.t();
  std::vector<int64_t> values(ctx.n());
  for (size_t j = 0; j < ctx.n(); ++j) {
    SKNN_CHECK_LT(coeffs_mod_t[j], t);
    values[j] = CenterMod(coeffs_mod_t[j], t);
  }
  return FromSigned(ctx, components, values);
}

}  // namespace bgv
}  // namespace sknn
