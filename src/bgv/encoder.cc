#include "bgv/encoder.h"

#include "common/logging.h"

namespace sknn {
namespace bgv {

BatchEncoder::BatchEncoder(std::shared_ptr<const BgvContext> ctx)
    : ctx_(std::move(ctx)) {}

StatusOr<Plaintext> BatchEncoder::Encode(
    const std::vector<uint64_t>& values) const {
  if (values.size() > slot_count()) {
    return InvalidArgumentError("too many values for slot count");
  }
  const uint64_t t = ctx_->t();
  Plaintext pt;
  pt.coeffs.assign(ctx_->n(), 0);
  const std::vector<size_t>& map = ctx_->slot_index_map();
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= t) {
      return InvalidArgumentError("slot value exceeds plaintext modulus");
    }
    pt.coeffs[map[i]] = values[i];
  }
  ctx_->plain_ntt().InverseNtt(&pt.coeffs);
  return pt;
}

std::vector<uint64_t> BatchEncoder::Decode(const Plaintext& pt) const {
  SKNN_CHECK_EQ(pt.coeffs.size(), ctx_->n());
  std::vector<uint64_t> evals = pt.coeffs;
  ctx_->plain_ntt().ForwardNtt(&evals);
  const std::vector<size_t>& map = ctx_->slot_index_map();
  std::vector<uint64_t> values(ctx_->n());
  for (size_t i = 0; i < values.size(); ++i) values[i] = evals[map[i]];
  return values;
}

Plaintext BatchEncoder::EncodeScalar(uint64_t value) const {
  SKNN_CHECK_LT(value, ctx_->t());
  Plaintext pt;
  pt.coeffs.assign(ctx_->n(), 0);
  pt.coeffs[0] = value;
  return pt;
}

}  // namespace bgv
}  // namespace sknn
