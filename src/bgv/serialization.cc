#include "bgv/serialization.h"

namespace sknn {
namespace bgv {

void WriteRnsPoly(const RnsPoly& p, ByteSink* sink) {
  sink->WriteU64(p.n());
  sink->WriteU8(p.ntt_form() ? 1 : 0);
  sink->WriteU64(p.num_components());
  for (size_t i = 0; i < p.num_components(); ++i) {
    sink->WriteU64Span(p.comp(i), p.n());
  }
}

StatusOr<RnsPoly> ReadRnsPoly(ByteSource* src) {
  SKNN_ASSIGN_OR_RETURN(uint64_t n, src->ReadU64());
  SKNN_ASSIGN_OR_RETURN(uint8_t ntt, src->ReadU8());
  SKNN_ASSIGN_OR_RETURN(uint64_t comps, src->ReadU64());
  if (comps > 64) return OutOfRangeError("implausible RNS component count");
  if (n > (uint64_t{1} << 20)) {
    return OutOfRangeError("implausible ring degree");
  }
  // The body is comps*n u64 coefficients. A plausible-looking (n, comps)
  // header on a short buffer must not be allowed to allocate up to 512 MB
  // before the span reads fail: bound the allocation by the bytes actually
  // present (giant-allocation DoS hardening; the plausibility checks above
  // keep the multiplication far from uint64 overflow).
  const uint64_t body_bytes = comps * n * 8;
  if (body_bytes > src->remaining()) {
    return OutOfRangeError(
        "RNS poly header promises " + std::to_string(body_bytes) +
        " coefficient bytes but only " + std::to_string(src->remaining()) +
        " remain in the buffer");
  }
  RnsPoly p(static_cast<size_t>(n), static_cast<size_t>(comps), ntt != 0);
  for (uint64_t i = 0; i < comps; ++i) {
    SKNN_RETURN_IF_ERROR(
        src->ReadU64Span(p.comp(static_cast<size_t>(i)), p.n()));
  }
  return p;
}

void WritePlaintext(const Plaintext& pt, ByteSink* sink) {
  sink->WriteU64Vector(pt.coeffs);
}

StatusOr<Plaintext> ReadPlaintext(ByteSource* src) {
  Plaintext pt;
  SKNN_ASSIGN_OR_RETURN(pt.coeffs, src->ReadU64Vector());
  return pt;
}

void WriteCiphertext(const Ciphertext& ct, ByteSink* sink) {
  sink->WriteU64(ct.level);
  sink->WriteU64(ct.scale);
  sink->WriteU64(ct.size());
  for (const RnsPoly& p : ct.c) WriteRnsPoly(p, sink);
}

StatusOr<Ciphertext> ReadCiphertext(ByteSource* src) {
  Ciphertext ct;
  SKNN_ASSIGN_OR_RETURN(uint64_t level, src->ReadU64());
  ct.level = static_cast<size_t>(level);
  SKNN_ASSIGN_OR_RETURN(ct.scale, src->ReadU64());
  SKNN_ASSIGN_OR_RETURN(uint64_t size, src->ReadU64());
  if (size < 2 || size > 3) return OutOfRangeError("bad ciphertext size");
  for (uint64_t i = 0; i < size; ++i) {
    SKNN_ASSIGN_OR_RETURN(RnsPoly p, ReadRnsPoly(src));
    ct.c.push_back(std::move(p));
  }
  return ct;
}

void WritePublicKey(const PublicKey& pk, ByteSink* sink) {
  WriteRnsPoly(pk.b, sink);
  WriteRnsPoly(pk.a, sink);
}

StatusOr<PublicKey> ReadPublicKey(ByteSource* src) {
  PublicKey pk;
  SKNN_ASSIGN_OR_RETURN(pk.b, ReadRnsPoly(src));
  SKNN_ASSIGN_OR_RETURN(pk.a, ReadRnsPoly(src));
  return pk;
}

void WriteSecretKey(const SecretKey& sk, ByteSink* sink) {
  WriteRnsPoly(sk.s_ntt, sink);
  WriteRnsPoly(sk.s_coeff, sink);
}

StatusOr<SecretKey> ReadSecretKey(ByteSource* src) {
  SecretKey sk;
  SKNN_ASSIGN_OR_RETURN(sk.s_ntt, ReadRnsPoly(src));
  SKNN_ASSIGN_OR_RETURN(sk.s_coeff, ReadRnsPoly(src));
  return sk;
}

void WriteKSwitchKey(const KSwitchKey& k, ByteSink* sink) {
  sink->WriteU64(k.digits.size());
  for (const auto& [b, a] : k.digits) {
    WriteRnsPoly(b, sink);
    WriteRnsPoly(a, sink);
  }
}

StatusOr<KSwitchKey> ReadKSwitchKey(ByteSource* src) {
  KSwitchKey k;
  SKNN_ASSIGN_OR_RETURN(uint64_t digits, src->ReadU64());
  if (digits > 64) return OutOfRangeError("implausible digit count");
  for (uint64_t i = 0; i < digits; ++i) {
    SKNN_ASSIGN_OR_RETURN(RnsPoly b, ReadRnsPoly(src));
    SKNN_ASSIGN_OR_RETURN(RnsPoly a, ReadRnsPoly(src));
    k.digits.emplace_back(std::move(b), std::move(a));
  }
  return k;
}

void WriteRelinKeys(const RelinKeys& rk, ByteSink* sink) {
  WriteKSwitchKey(rk.key, sink);
}

StatusOr<RelinKeys> ReadRelinKeys(ByteSource* src) {
  RelinKeys rk;
  SKNN_ASSIGN_OR_RETURN(rk.key, ReadKSwitchKey(src));
  return rk;
}

void WriteGaloisKeys(const GaloisKeys& gk, ByteSink* sink) {
  sink->WriteU64(gk.keys.size());
  for (const auto& [elt, key] : gk.keys) {
    sink->WriteU64(elt);
    WriteKSwitchKey(key, sink);
  }
}

StatusOr<GaloisKeys> ReadGaloisKeys(ByteSource* src) {
  GaloisKeys gk;
  SKNN_ASSIGN_OR_RETURN(uint64_t count, src->ReadU64());
  if (count > 4096) return OutOfRangeError("implausible Galois key count");
  for (uint64_t i = 0; i < count; ++i) {
    SKNN_ASSIGN_OR_RETURN(uint64_t elt, src->ReadU64());
    SKNN_ASSIGN_OR_RETURN(KSwitchKey key, ReadKSwitchKey(src));
    gk.keys.emplace(elt, std::move(key));
  }
  return gk;
}

}  // namespace bgv
}  // namespace sknn
