#ifndef SKNN_BGV_EVALUATOR_H_
#define SKNN_BGV_EVALUATOR_H_

#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "bgv/ciphertext.h"
#include "bgv/context.h"
#include "bgv/keys.h"
#include "bgv/noise_model.h"
#include "common/status.h"
#include "common/statusor.h"

// Homomorphic operations on BGV ciphertexts.
//
// Levels: fresh ciphertexts sit at max_level(); every ct-ct multiplication
// should be followed by ModSwitchToNextInplace (the Multiply helpers do it
// on request). Binary operations equalize operand levels automatically by
// switching the higher one down.
//
// Key switching is split Halevi–Shoup style (DESIGN.md §3.2): the digit
// decomposition (lift + forward NTTs, the expensive half) is computed once
// per source polynomial and can be reused across every Galois key applied
// to it — HoistedRotations and the fold/rotation chains are built on that
// split.

namespace sknn {
namespace bgv {

// The hoisted half of a key switch: RNS digits of a polynomial lifted to
// the extended base (the level's data primes + the special prime) and
// NTT'd. digits[i] has level+2 components; component j lives mod key-base
// prime j for j <= level and mod the special prime for j == level+1.
// Reusable across keys because the decomposition only depends on the
// source polynomial.
struct KSwitchDigits {
  size_t level = 0;
  std::vector<RnsPoly> digits;
};

// A plaintext operand prepared for repeated use against ciphertexts at one
// (level, scale): lifted to the RNS base (centered mod t) and NTT'd. For
// additive operands the ciphertext's scale correction is baked into the
// lift, so `scale` records which ciphertexts the operand is valid for
// (multiplicative operands are scale-independent; their scale is 1).
struct PlainOperand {
  size_t level = 0;
  uint64_t scale = 1;
  RnsPoly m;
};

class Evaluator {
 public:
  explicit Evaluator(std::shared_ptr<const BgvContext> ctx);

  // Static noise estimator sharing this evaluator's context. Every
  // primitive below updates its result's `noise_bits` through this model;
  // callers use it to read estimated budgets and emit thin-margin
  // warnings without the secret key.
  const NoiseModel& noise_model() const { return noise_; }

  // --- linear operations (no noise growth beyond addition) ---
  Status AddInplace(Ciphertext* a, const Ciphertext& b) const;
  Status SubInplace(Ciphertext* a, const Ciphertext& b) const;
  void NegateInplace(Ciphertext* a) const;
  // a += Enc(pt) without encryption (transparent addend).
  Status AddPlainInplace(Ciphertext* a, const Plaintext& pt) const;
  Status SubPlainInplace(Ciphertext* a, const Plaintext& pt) const;

  // --- multiplications ---
  // Tensor product; result has size 3 and must be relinearized before any
  // further multiplication. Operand levels are equalized.
  StatusOr<Ciphertext> Multiply(const Ciphertext& a, const Ciphertext& b) const;
  // Keyswitches the quadratic component back to size 2.
  Status RelinearizeInplace(Ciphertext* a, const RelinKeys& rk) const;
  // Multiply + relinearize + modulus switch (the common idiom).
  StatusOr<Ciphertext> MultiplyRelin(const Ciphertext& a, const Ciphertext& b,
                                     const RelinKeys& rk,
                                     bool mod_switch = true) const;
  // Slot-wise product with an encoded plaintext.
  Status MultiplyPlainInplace(Ciphertext* a, const Plaintext& pt) const;
  // Product with a scalar (constant polynomial): cheaper, noise grows by
  // |scalar| only.
  Status MultiplyScalarInplace(Ciphertext* a, uint64_t scalar_mod_t) const;

  // --- prepared plaintext operands ---
  // Builds the lifted+NTT'd operand once; the Inplace overloads below then
  // skip LiftPlainCentered + ToNttInplace on every use. The operand is
  // bound to a level (and, for addition, a ciphertext scale).
  StatusOr<PlainOperand> MakeMultiplyOperand(const Plaintext& pt,
                                             size_t level) const;
  StatusOr<PlainOperand> MakeAddOperand(const Plaintext& pt, size_t level,
                                        uint64_t scale) const;
  Status MultiplyPlainInplace(Ciphertext* a, const PlainOperand& op) const;
  Status AddPlainInplace(Ciphertext* a, const PlainOperand& op) const;

  // --- level management ---
  Status ModSwitchToNextInplace(Ciphertext* a) const;
  Status ModSwitchToLevelInplace(Ciphertext* a, size_t level) const;

  // --- rotations ---
  // Cyclically rotates both slot rows left by `step` (negative: right).
  Status RotateRowsInplace(Ciphertext* a, int step, const GaloisKeys& gk) const;
  // Swaps the two slot rows.
  Status RotateColumnsInplace(Ciphertext* a, const GaloisKeys& gk) const;
  // Applies an arbitrary Galois automorphism (a key for it must exist).
  Status ApplyGaloisInplace(Ciphertext* a, uint64_t galois_elt,
                            const GaloisKeys& gk) const;
  // Applies a sequence of automorphisms (all keys must exist), keeping the
  // intermediate ciphertext in coefficient form so a chain of h hops pays
  // 2 NTT conversions instead of 2h. The workhorse behind multi-hop
  // rotations and Party A's permute/absorb sweeps.
  Status ApplyGaloisChainInplace(Ciphertext* a,
                                 const std::vector<uint64_t>& galois_elts,
                                 const GaloisKeys& gk) const;
  // Sums an arbitrary contiguous power-of-two block: after this call every
  // slot j holds sum_{r<block} input[j+r] (within rows). Used for the
  // distance fold.
  Status FoldRowsInplace(Ciphertext* a, size_t block, const GaloisKeys& gk) const;
  // Halevi–Shoup hoisting: rotates `ct` by every step in `steps` while
  // paying the expensive digit decomposition once (steps served this way
  // bump the bgv.evaluator.hoisted_rotation counter). Steps whose exact
  // Galois key is missing fall back to sequential composed rotation; step 0
  // returns a plain copy.
  StatusOr<std::vector<Ciphertext>> HoistedRotations(
      const Ciphertext& ct, const std::vector<int>& steps,
      const GaloisKeys& gk) const;
  // Galois elements whose composition realizes a row rotation by `step`
  // (empty for step 0): the exact element when its key exists, else the
  // power-of-two decomposition. Lets callers splice rotations and column
  // swaps into one ApplyGaloisChainInplace call.
  std::vector<uint64_t> RotationGaloisElts(int step,
                                           const GaloisKeys& gk) const;

 private:
  Status CheckCt(const Ciphertext& a) const;
  // Equalizes ciphertext levels by switching the higher one down.
  Status Equalize(Ciphertext* a, Ciphertext* b) const;
  // Rescales a's content so it carries b's scale factor (no-op when equal).
  Status MatchScale(Ciphertext* a, const Ciphertext& b) const;
  // The hoisted half of a key switch: digit lift + per-prime forward NTTs
  // of `target` (coefficient form, level+1 components). When the caller
  // still holds the same polynomial in NTT form, passing it as
  // `target_ntt` lets the diagonal digit components (digit i mod prime i)
  // skip their forward NTT — they equal the NTT-form residues verbatim.
  KSwitchDigits DecomposeForKeySwitch(size_t level, const RnsPoly& target,
                                      const RnsPoly* target_ntt =
                                          nullptr) const;
  // The cheap half: inner product of prepared digits against `ksk` with
  // lazy [0, 2q) accumulation, optional NTT-domain Galois permutation of
  // the digits (perm_ntt from RnsBase::GaloisPermTableNtt, may be null),
  // inverse NTTs and the special-prime rounding division. Outputs have
  // level+1 components, NTT form iff `ntt_out`.
  void KeySwitchInner(const KSwitchDigits& digits, const KSwitchKey& ksk,
                      const uint32_t* perm_ntt, RnsPoly* u0, RnsPoly* u1,
                      bool ntt_out) const;
  // Decompose + inner product (no permutation), NTT-form outputs.
  void KeySwitchCore(size_t level, const RnsPoly& target,
                     const KSwitchKey& ksk, RnsPoly* u0, RnsPoly* u1,
                     const RnsPoly* target_ntt = nullptr) const;
  // Drops the last RNS component of a poly with BGV rounding (coefficient
  // form in, coefficient form out).
  RnsPoly DropLastComponent(const RnsPoly& poly, size_t level) const;

  std::shared_ptr<const BgvContext> ctx_;
  NoiseModel noise_;
};

// Thread-safe keyed cache of prepared plaintext operands. Callers pick the
// tag namespace (e.g. "selector for unit u", "mask coefficient j"); the
// cache key is (kind, tag, level, scale). Entries are stable: returned
// pointers stay valid until Clear(). Typical use: Party A's per-query mask
// polynomial, whose coefficients hit every unit at the same few levels.
class PlainOperandCache {
 public:
  // Returns the cached multiply operand for (tag, level), building it from
  // `pt` on a miss. The caller must pass the same plaintext for the same
  // tag while the cache lives.
  StatusOr<const PlainOperand*> MultiplyOperand(const Evaluator& ev,
                                                uint64_t tag,
                                                const Plaintext& pt,
                                                size_t level);
  // Additive variant; the operand also depends on the ciphertext scale it
  // will be added to.
  StatusOr<const PlainOperand*> AddOperand(const Evaluator& ev, uint64_t tag,
                                           const Plaintext& pt, size_t level,
                                           uint64_t scale);
  void Clear();
  size_t size() const;

 private:
  // (is_add, tag, level, scale) -> operand.
  using Key = std::tuple<int, uint64_t, size_t, uint64_t>;
  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<PlainOperand>> ops_;
};

}  // namespace bgv
}  // namespace sknn

#endif  // SKNN_BGV_EVALUATOR_H_
