#ifndef SKNN_BGV_EVALUATOR_H_
#define SKNN_BGV_EVALUATOR_H_

#include <memory>
#include <vector>

#include "bgv/ciphertext.h"
#include "bgv/context.h"
#include "bgv/keys.h"
#include "common/status.h"
#include "common/statusor.h"

// Homomorphic operations on BGV ciphertexts.
//
// Levels: fresh ciphertexts sit at max_level(); every ct-ct multiplication
// should be followed by ModSwitchToNextInplace (the Multiply helpers do it
// on request). Binary operations equalize operand levels automatically by
// switching the higher one down.

namespace sknn {
namespace bgv {

class Evaluator {
 public:
  explicit Evaluator(std::shared_ptr<const BgvContext> ctx);

  // --- linear operations (no noise growth beyond addition) ---
  Status AddInplace(Ciphertext* a, const Ciphertext& b) const;
  Status SubInplace(Ciphertext* a, const Ciphertext& b) const;
  void NegateInplace(Ciphertext* a) const;
  // a += Enc(pt) without encryption (transparent addend).
  Status AddPlainInplace(Ciphertext* a, const Plaintext& pt) const;
  Status SubPlainInplace(Ciphertext* a, const Plaintext& pt) const;

  // --- multiplications ---
  // Tensor product; result has size 3 and must be relinearized before any
  // further multiplication. Operand levels are equalized.
  StatusOr<Ciphertext> Multiply(const Ciphertext& a, const Ciphertext& b) const;
  // Keyswitches the quadratic component back to size 2.
  Status RelinearizeInplace(Ciphertext* a, const RelinKeys& rk) const;
  // Multiply + relinearize + modulus switch (the common idiom).
  StatusOr<Ciphertext> MultiplyRelin(const Ciphertext& a, const Ciphertext& b,
                                     const RelinKeys& rk,
                                     bool mod_switch = true) const;
  // Slot-wise product with an encoded plaintext.
  Status MultiplyPlainInplace(Ciphertext* a, const Plaintext& pt) const;
  // Product with a scalar (constant polynomial): cheaper, noise grows by
  // |scalar| only.
  Status MultiplyScalarInplace(Ciphertext* a, uint64_t scalar_mod_t) const;

  // --- level management ---
  Status ModSwitchToNextInplace(Ciphertext* a) const;
  Status ModSwitchToLevelInplace(Ciphertext* a, size_t level) const;

  // --- rotations ---
  // Cyclically rotates both slot rows left by `step` (negative: right).
  Status RotateRowsInplace(Ciphertext* a, int step, const GaloisKeys& gk) const;
  // Swaps the two slot rows.
  Status RotateColumnsInplace(Ciphertext* a, const GaloisKeys& gk) const;
  // Applies an arbitrary Galois automorphism (a key for it must exist).
  Status ApplyGaloisInplace(Ciphertext* a, uint64_t galois_elt,
                            const GaloisKeys& gk) const;
  // Sums an arbitrary contiguous power-of-two block: after this call every
  // slot j holds sum_{r<block} input[j+r] (within rows). Used for the
  // distance fold.
  Status FoldRowsInplace(Ciphertext* a, size_t block, const GaloisKeys& gk) const;

 private:
  Status CheckCt(const Ciphertext& a) const;
  // Equalizes ciphertext levels by switching the higher one down.
  Status Equalize(Ciphertext* a, Ciphertext* b) const;
  // Rescales a's content so it carries b's scale factor (no-op when equal).
  Status MatchScale(Ciphertext* a, const Ciphertext& b) const;
  // Core key switch: given `target` (coefficient form, level+1 components),
  // returns the rounded (u0, u1) contribution in NTT form at the same level.
  void KeySwitchCore(size_t level, const RnsPoly& target,
                     const KSwitchKey& ksk, RnsPoly* u0, RnsPoly* u1) const;
  // Drops the last RNS component of a poly with BGV rounding (coefficient
  // form in, coefficient form out).
  RnsPoly DropLastComponent(const RnsPoly& poly, size_t level) const;

  std::shared_ptr<const BgvContext> ctx_;
};

}  // namespace bgv
}  // namespace sknn

#endif  // SKNN_BGV_EVALUATOR_H_
