#ifndef SKNN_BGV_ENCRYPTOR_H_
#define SKNN_BGV_ENCRYPTOR_H_

#include <memory>

#include "bgv/ciphertext.h"
#include "bgv/context.h"
#include "bgv/keys.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"

// Public-key BGV encryption.

namespace sknn {
namespace bgv {

class Encryptor {
 public:
  Encryptor(std::shared_ptr<const BgvContext> ctx, PublicKey pk,
            Chacha20Rng* rng);

  // Encrypts at the top level (all data primes).
  StatusOr<Ciphertext> Encrypt(const Plaintext& pt) const;
  // Encrypts directly at a lower level: smaller ciphertext, less headroom.
  // When `rng` is non-null all randomness is drawn from it instead of the
  // constructor's generator — callers running encryptions in parallel hand
  // each task a deterministic fork so the transcript does not depend on
  // scheduling.
  StatusOr<Ciphertext> EncryptAtLevel(const Plaintext& pt, size_t level,
                                      Chacha20Rng* rng = nullptr) const;

 private:
  std::shared_ptr<const BgvContext> ctx_;
  PublicKey pk_;
  Chacha20Rng* rng_;
};

}  // namespace bgv
}  // namespace sknn

#endif  // SKNN_BGV_ENCRYPTOR_H_
