#include "bgv/params.h"

#include <cmath>
#include <sstream>

#include "math/prime.h"

namespace sknn {
namespace bgv {
namespace {

// Homomorphic encryption standard (ternary secret, classical attacks):
// maximum log2(QP) for 128-bit security per ring degree.
struct SecurityRow {
  size_t n;
  double max_logqp_128;
};
constexpr SecurityRow kSecurityTable[] = {
    {1024, 27},  {2048, 54},   {4096, 109},
    {8192, 218}, {16384, 438}, {32768, 881},
};

int DataPrimeBitsForPreset(SecurityPreset preset) {
  switch (preset) {
    case SecurityPreset::kToy:
      return 45;
    default:
      return 58;
  }
}

int SpecialPrimeBitsForPreset(SecurityPreset preset) {
  switch (preset) {
    case SecurityPreset::kToy:
      return 50;
    default:
      return 60;
  }
}

size_t RingDegreeForPreset(SecurityPreset preset) {
  switch (preset) {
    case SecurityPreset::kToy:
      return 1024;
    case SecurityPreset::kBench:
      return 4096;
    case SecurityPreset::kDefault:
      return 8192;
    case SecurityPreset::kParanoid:
      return 16384;
  }
  return 8192;
}

}  // namespace

double BgvParams::TotalModulusBits() const {
  double bits = std::log2(static_cast<double>(special_prime));
  for (uint64_t q : data_primes) bits += std::log2(static_cast<double>(q));
  return bits;
}

std::string BgvParams::DebugString() const {
  std::ostringstream os;
  os << "BgvParams{n=" << n << ", t=" << plain_modulus << ", q=[";
  for (size_t i = 0; i < data_primes.size(); ++i) {
    if (i) os << ", ";
    os << data_primes[i];
  }
  os << "], sp=" << special_prime << ", logQP=" << TotalModulusBits()
     << ", est_security=" << EstimateSecurityBits(n, TotalModulusBits())
     << "}";
  return os.str();
}

StatusOr<BgvParams> BgvParams::Create(SecurityPreset preset, size_t levels,
                                      int plain_bits) {
  return CreateCustom(RingDegreeForPreset(preset), plain_bits, levels,
                      DataPrimeBitsForPreset(preset),
                      SpecialPrimeBitsForPreset(preset));
}

StatusOr<BgvParams> BgvParams::CreateCustom(size_t n, int plain_bits,
                                            size_t levels,
                                            int data_prime_bits,
                                            int special_prime_bits) {
  if (levels < 1) return InvalidArgumentError("need at least one data prime");
  BgvParams p;
  p.n = n;
  const uint64_t congruence = 2 * static_cast<uint64_t>(n);
  // Plaintext prime: smallest suitable prime of the requested size, chosen
  // from a different bit size than the ciphertext primes so they never
  // collide.
  SKNN_ASSIGN_OR_RETURN(std::vector<uint64_t> t_candidates,
                        GenerateNttPrimes(plain_bits, congruence, 1));
  p.plain_modulus = t_candidates[0];

  std::vector<uint64_t> exclude = {p.plain_modulus};
  if (special_prime_bits == data_prime_bits) {
    SKNN_ASSIGN_OR_RETURN(
        std::vector<uint64_t> all,
        GenerateNttPrimes(data_prime_bits, congruence, levels + 1, exclude));
    p.special_prime = all[0];
    p.data_primes.assign(all.begin() + 1, all.end());
  } else {
    SKNN_ASSIGN_OR_RETURN(
        std::vector<uint64_t> sp,
        GenerateNttPrimes(special_prime_bits, congruence, 1, exclude));
    p.special_prime = sp[0];
    exclude.push_back(p.special_prime);
    SKNN_ASSIGN_OR_RETURN(
        p.data_primes,
        GenerateNttPrimes(data_prime_bits, congruence, levels, exclude));
  }
  SKNN_RETURN_IF_ERROR(p.Validate());
  return p;
}

Status BgvParams::Validate() const {
  if (n < 8 || (n & (n - 1)) != 0) {
    return InvalidArgumentError("ring degree must be a power of two >= 8");
  }
  const uint64_t congruence = 2 * static_cast<uint64_t>(n);
  auto check_prime = [&](uint64_t q, const char* what) -> Status {
    if (!IsPrime(q)) {
      return InvalidArgumentError(std::string(what) + " is not prime");
    }
    if (q % congruence != 1) {
      return InvalidArgumentError(std::string(what) + " != 1 mod 2n");
    }
    return Status::Ok();
  };
  SKNN_RETURN_IF_ERROR(check_prime(plain_modulus, "plain modulus"));
  SKNN_RETURN_IF_ERROR(check_prime(special_prime, "special prime"));
  if (data_primes.empty()) {
    return InvalidArgumentError("no data primes");
  }
  for (uint64_t q : data_primes) {
    SKNN_RETURN_IF_ERROR(check_prime(q, "data prime"));
    if (q == plain_modulus) {
      return InvalidArgumentError("data prime equals plain modulus");
    }
    if (q == special_prime) {
      return InvalidArgumentError("data prime equals special prime");
    }
  }
  for (size_t i = 0; i < data_primes.size(); ++i) {
    for (size_t j = i + 1; j < data_primes.size(); ++j) {
      if (data_primes[i] == data_primes[j]) {
        return InvalidArgumentError("duplicate data primes");
      }
    }
  }
  return Status::Ok();
}

double EstimateSecurityBits(size_t n, double total_modulus_bits) {
  // Linear interpolation in log-domain over the standard's 128-bit rows:
  // security scales roughly like n / logQP.
  double max_logqp = 0;
  for (const auto& row : kSecurityTable) {
    if (row.n == n) max_logqp = row.max_logqp_128;
  }
  if (max_logqp == 0) {
    // Interpolate n between table rows.
    for (size_t i = 0; i + 1 < std::size(kSecurityTable); ++i) {
      if (n > kSecurityTable[i].n && n < kSecurityTable[i + 1].n) {
        double f = (std::log2(static_cast<double>(n)) -
                    std::log2(static_cast<double>(kSecurityTable[i].n)));
        max_logqp = kSecurityTable[i].max_logqp_128 *
                    std::pow(kSecurityTable[i + 1].max_logqp_128 /
                                 kSecurityTable[i].max_logqp_128,
                             f);
      }
    }
  }
  if (max_logqp == 0) return 0;
  return 128.0 * max_logqp / total_modulus_bits;
}

}  // namespace bgv
}  // namespace sknn
