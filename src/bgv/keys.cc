#include "bgv/keys.h"

#include <mutex>

#include "bgv/sampling.h"
#include "common/logging.h"

namespace sknn {
namespace bgv {

const KSwitchKey::ShoupTables& KSwitchKey::GetShoupTables(
    const RnsBase& base) const {
  // One build per key object (copies made before the first use each build
  // their own tables; copies made after share the pointer). A single global
  // mutex is enough: the build is a few ms and runs once per key.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (shoup_cache_ == nullptr) {
    auto tables = std::make_shared<ShoupTables>();
    tables->digits.resize(digits.size());
    for (size_t i = 0; i < digits.size(); ++i) {
      const RnsPoly& b = digits[i].first;
      const RnsPoly& a = digits[i].second;
      const size_t n = b.n();
      auto precompute = [&](const RnsPoly& p, std::vector<uint64_t>* out) {
        out->resize(p.num_components() * n);
        for (size_t c = 0; c < p.num_components(); ++c) {
          const uint64_t q = base.modulus(c).value();
          const uint64_t* __restrict src = p.comp(c);
          uint64_t* __restrict dst = out->data() + c * n;
          for (size_t j = 0; j < n; ++j) dst[j] = ShoupPrecompute(src[j], q);
        }
      };
      precompute(b, &tables->digits[i].first);
      precompute(a, &tables->digits[i].second);
    }
    shoup_cache_ = std::move(tables);
  }
  return *shoup_cache_;
}

KeyGenerator::KeyGenerator(std::shared_ptr<const BgvContext> ctx,
                           Chacha20Rng* rng)
    : ctx_(std::move(ctx)), rng_(rng) {}

SecretKey KeyGenerator::GenerateSecretKey() {
  SecretKey sk;
  const size_t all = ctx_->key_base().size();
  sk.s_coeff = SampleTernaryPoly(*ctx_, all, rng_);
  sk.s_ntt = sk.s_coeff;
  ToNttInplace(&sk.s_ntt, ctx_->key_base());
  return sk;
}

PublicKey KeyGenerator::GeneratePublicKey(const SecretKey& sk) {
  const size_t data = ctx_->num_data_primes();
  PublicKey pk;
  pk.a = SampleUniformPoly(*ctx_, data, rng_);
  RnsPoly e = SampleGaussianPoly(*ctx_, data, rng_);
  // b = -(a*s + t*e) over the data primes.
  std::vector<uint64_t> t_mod(data);
  for (size_t i = 0; i < data; ++i) t_mod[i] = ctx_->t_mod_q(i);
  MulScalarInplace(&e, t_mod, ctx_->key_base());
  ToNttInplace(&e, ctx_->key_base());

  RnsPoly s_data = sk.s_ntt.Prefix(data);

  pk.b = MulPointwise(pk.a, s_data, ctx_->key_base());
  AddInplace(&pk.b, e, ctx_->key_base());
  NegateInplace(&pk.b, ctx_->key_base());
  return pk;
}

KSwitchKey KeyGenerator::MakeKSwitchKey(const RnsPoly& s_prime_ntt,
                                        const SecretKey& sk) {
  const size_t data = ctx_->num_data_primes();
  const size_t all = ctx_->key_base().size();
  KSwitchKey ksk;
  ksk.digits.reserve(data);
  for (size_t i = 0; i < data; ++i) {
    RnsPoly a_i = SampleUniformPoly(*ctx_, all, rng_);
    RnsPoly e_i = SampleGaussianPoly(*ctx_, all, rng_);
    std::vector<uint64_t> t_mod(all);
    for (size_t j = 0; j < data; ++j) t_mod[j] = ctx_->t_mod_q(j);
    t_mod[data] = ctx_->t_mod_sp();
    MulScalarInplace(&e_i, t_mod, ctx_->key_base());
    ToNttInplace(&e_i, ctx_->key_base());

    RnsPoly b_i = MulPointwise(a_i, sk.s_ntt, ctx_->key_base());
    AddInplace(&b_i, e_i, ctx_->key_base());
    NegateInplace(&b_i, ctx_->key_base());
    // Payload: add sp * s' on the i-th RNS component only. In NTT form the
    // CRT indicator of component i is simply "touch only component i".
    const Modulus& qi = ctx_->key_base().modulus(i);
    const uint64_t factor = ctx_->sp_mod_q(i);
    const uint64_t factor_shoup = ShoupPrecompute(factor, qi.value());
    const uint64_t* s_prime_i = s_prime_ntt.comp(i);
    uint64_t* b_i_comp = b_i.comp(i);
    for (size_t c = 0; c < ctx_->n(); ++c) {
      const uint64_t payload =
          MulModShoup(s_prime_i[c], factor, factor_shoup, qi.value());
      b_i_comp[c] = AddMod(b_i_comp[c], payload, qi.value());
    }
    ksk.digits.emplace_back(std::move(b_i), std::move(a_i));
  }
  return ksk;
}

RelinKeys KeyGenerator::GenerateRelinKeys(const SecretKey& sk) {
  RnsPoly s_squared = MulPointwise(sk.s_ntt, sk.s_ntt, ctx_->key_base());
  RelinKeys rk;
  rk.key = MakeKSwitchKey(s_squared, sk);
  return rk;
}

GaloisKeys KeyGenerator::GenerateGaloisKeys(
    const SecretKey& sk, const std::vector<uint64_t>& galois_elts) {
  GaloisKeys gk;
  for (uint64_t elt : galois_elts) {
    if (gk.Has(elt)) continue;
    RnsPoly s_tau =
        ApplyGaloisCoeff(sk.s_coeff, elt, ctx_->key_base());
    ToNttInplace(&s_tau, ctx_->key_base());
    gk.keys.emplace(elt, MakeKSwitchKey(s_tau, sk));
  }
  return gk;
}

GaloisKeys KeyGenerator::GeneratePowerOfTwoRotationKeys(const SecretKey& sk) {
  std::vector<uint64_t> elts;
  for (size_t step = 1; step < ctx_->row_size(); step <<= 1) {
    elts.push_back(ctx_->GaloisEltForRotation(static_cast<int>(step)));
    elts.push_back(ctx_->GaloisEltForRotation(-static_cast<int>(step)));
  }
  elts.push_back(ctx_->GaloisEltForColumnSwap());
  return GenerateGaloisKeys(sk, elts);
}

}  // namespace bgv
}  // namespace sknn
