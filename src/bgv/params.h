#ifndef SKNN_BGV_PARAMS_H_
#define SKNN_BGV_PARAMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

// Encryption parameters for the BGV levelled FHE scheme.
//
// A parameter set fixes the ring degree n (power of two), the plaintext
// prime t (t ≡ 1 mod 2n so the ring splits into n slots), the chain of data
// primes q_0..q_L, and one special prime used only inside key switching.
// Fresh ciphertexts live at level L (all data primes); each multiplication
// is followed by a modulus switch that drops one prime.

namespace sknn {
namespace bgv {

// Convenience presets trading performance for lattice security. The
// *measured* security of any parameter set is reported by
// EstimateSecurityBits(); benchmarks print it so scaled-down runs stay
// honest.
enum class SecurityPreset {
  kToy,       // n=1024,  fast unit tests; not secure
  kBench,     // n=4096,  benchmark harness on small machines; reduced security
  kDefault,   // n=8192,  ~100-bit security with the default chain
  kParanoid,  // n=16384, >= 128-bit security with the default chain
};

struct BgvParams {
  size_t n = 0;                       // ring degree
  uint64_t plain_modulus = 0;         // t, prime, t = 1 mod 2n
  std::vector<uint64_t> data_primes;  // q_0 .. q_L
  uint64_t special_prime = 0;         // key-switching prime

  // Number of levels (highest level index L).
  size_t max_level() const { return data_primes.size() - 1; }
  // Total bits of Q*P (drives the security estimate).
  double TotalModulusBits() const;
  std::string DebugString() const;

  // Builds a parameter set from a preset with `levels` data primes
  // (levels >= 1 means indices 0..levels-1, i.e. max_level = levels-1) and
  // a plaintext prime near 2^plain_bits.
  static StatusOr<BgvParams> Create(SecurityPreset preset, size_t levels = 4,
                                    int plain_bits = 33);

  // Fully custom construction; validates every constraint.
  static StatusOr<BgvParams> CreateCustom(size_t n, int plain_bits,
                                          size_t levels, int data_prime_bits,
                                          int special_prime_bits);

  // Validates primality, congruences, distinctness.
  Status Validate() const;
};

// Heuristic security estimate (classical, ternary secret) interpolated from
// the homomorphic encryption standard table: returns the approximate bit
// security of ring degree n with total modulus `total_modulus_bits`.
double EstimateSecurityBits(size_t n, double total_modulus_bits);

}  // namespace bgv
}  // namespace sknn

#endif  // SKNN_BGV_PARAMS_H_
