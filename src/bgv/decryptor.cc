#include "bgv/decryptor.h"

#include <cmath>

#include "common/logging.h"
#include "math/bigint.h"

namespace sknn {
namespace bgv {

Decryptor::Decryptor(std::shared_ptr<const BgvContext> ctx, SecretKey sk)
    : ctx_(std::move(ctx)), sk_(std::move(sk)) {}

RnsPoly Decryptor::DotWithSecret(const Ciphertext& ct) const {
  SKNN_CHECK_GE(ct.size(), 2u);
  const size_t comps = ct.level + 1;
  const RnsBase& base = ctx_->key_base();

  RnsPoly s_restricted = sk_.s_ntt.Prefix(comps);
  RnsPoly v = ct.c[0];
  SKNN_CHECK(v.ntt_form());
  RnsPoly s_power = s_restricted;
  for (size_t idx = 1; idx < ct.size(); ++idx) {
    AddMulInplace(&v, ct.c[idx], s_power, base);
    if (idx + 1 < ct.size()) {
      MulPointwiseInplace(&s_power, s_restricted, base);
    }
  }
  FromNttInplace(&v, base);
  return v;
}

StatusOr<Plaintext> Decryptor::Decrypt(const Ciphertext& ct) const {
  if (ct.size() < 2) return InvalidArgumentError("ciphertext too small");
  if (ct.level > ctx_->max_level()) {
    return InvalidArgumentError("ciphertext level out of range");
  }
  RnsPoly v = DotWithSecret(ct);
  const uint64_t t = ctx_->t();
  const Modulus& t_mod = ctx_->plain_modulus();
  // Undo the tracked BGV correction factor: raw = scale * m.
  const uint64_t correction = InvModPrime(ct.scale % t, t);

  Plaintext pt;
  pt.coeffs.assign(ctx_->n(), 0);
  if (ct.level == 0) {
    // Fast path: single prime, 64-bit arithmetic only.
    const uint64_t q0 = ctx_->key_base().modulus(0).value();
    const uint64_t* v0 = v.comp(0);
    for (size_t c = 0; c < ctx_->n(); ++c) {
      const int64_t centered = CenterMod(v0[c], q0);
      const uint64_t raw = ToUnsignedMod(centered, t);
      pt.coeffs[c] = t_mod.MulMod(raw, correction);
    }
    return pt;
  }
  // General path: CRT reconstruction per coefficient.
  std::vector<uint64_t> moduli(ct.level + 1);
  for (size_t i = 0; i <= ct.level; ++i) {
    moduli[i] = ctx_->key_base().modulus(i).value();
  }
  BigUint big_q(1);
  for (uint64_t q : moduli) big_q = BigUint::Mul(big_q, BigUint(q));
  BigUint half_q = big_q.ShiftRight(1);
  std::vector<uint64_t> residues(moduli.size());
  for (size_t c = 0; c < ctx_->n(); ++c) {
    for (size_t i = 0; i < moduli.size(); ++i) residues[i] = v.comp(i)[c];
    BigUint value = BigUint::CrtReconstruct(residues, moduli);
    uint64_t raw;
    if (BigUint::Compare(value, half_q) > 0) {
      // Negative representative: -(Q - value) mod t.
      const uint64_t mag = BigUint::Sub(big_q, value).ModU64(t);
      raw = mag == 0 ? 0 : t - mag;
    } else {
      raw = value.ModU64(t);
    }
    pt.coeffs[c] = t_mod.MulMod(raw, correction);
  }
  return pt;
}

StatusOr<double> Decryptor::NoiseBudgetBits(const Ciphertext& ct) const {
  if (ct.size() < 2) return InvalidArgumentError("ciphertext too small");
  RnsPoly v = DotWithSecret(ct);
  const uint64_t t = ctx_->t();

  std::vector<uint64_t> moduli(ct.level + 1);
  for (size_t i = 0; i <= ct.level; ++i) {
    moduli[i] = ctx_->key_base().modulus(i).value();
  }
  BigUint big_q(1);
  for (uint64_t q : moduli) big_q = BigUint::Mul(big_q, BigUint(q));
  BigUint half_q = big_q.ShiftRight(1);

  // Noise is v - m_hat where m_hat is the centered residue of v mod t;
  // track the maximum magnitude over all coefficients.
  size_t max_noise_bits = 0;
  std::vector<uint64_t> residues(moduli.size());
  for (size_t c = 0; c < ctx_->n(); ++c) {
    for (size_t i = 0; i < moduli.size(); ++i) residues[i] = v.comp(i)[c];
    BigUint value = BigUint::CrtReconstruct(residues, moduli);
    bool negative = BigUint::Compare(value, half_q) > 0;
    BigUint mag = negative ? BigUint::Sub(big_q, value) : value;
    // Remove the plaintext part: centered residue of +-mag modulo t.
    uint64_t m_res = mag.ModU64(t);
    BigUint noise_mag;
    if (m_res <= t / 2) {
      noise_mag = BigUint::Sub(mag, BigUint(m_res));
    } else {
      noise_mag = BigUint::Add(mag, BigUint(t - m_res));
    }
    max_noise_bits = std::max(max_noise_bits, noise_mag.BitLength());
  }
  const double q_bits =
      static_cast<double>(big_q.BitLength());
  const double budget = q_bits - 1.0 - static_cast<double>(max_noise_bits);
  return budget > 0 ? budget : 0.0;
}

}  // namespace bgv
}  // namespace sknn
