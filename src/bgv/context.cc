#include "bgv/context.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "math/mod_arith.h"

namespace sknn {
namespace bgv {
namespace {

// Process-wide worker pool shared by every context for per-RNS-component
// NTT parallelism. Sized by SKNN_NTT_THREADS (0/1 disables); defaults to
// hardware_concurrency capped at 4, since the modulus chain rarely has more
// than ~5 components. Returns null when threading is disabled.
std::shared_ptr<ThreadPool> SharedNttPool() {
  static const std::shared_ptr<ThreadPool> pool = [] {
    size_t threads = std::min<size_t>(std::thread::hardware_concurrency(), 4);
    if (const char* env = std::getenv("SKNN_NTT_THREADS")) {
      threads = static_cast<size_t>(std::strtoul(env, nullptr, 10));
    }
    return threads > 1 ? std::make_shared<ThreadPool>(threads)
                       : std::shared_ptr<ThreadPool>();
  }();
  return pool;
}

}  // namespace

StatusOr<std::shared_ptr<const BgvContext>> BgvContext::Create(
    const BgvParams& params) {
  SKNN_RETURN_IF_ERROR(params.Validate());
  auto ctx = std::shared_ptr<BgvContext>(new BgvContext());
  ctx->params_ = params;

  std::vector<uint64_t> key_primes = params.data_primes;
  key_primes.push_back(params.special_prime);
  SKNN_ASSIGN_OR_RETURN(ctx->key_base_,
                        RnsBase::Create(params.n, key_primes));
  ctx->key_base_.set_thread_pool(SharedNttPool());
  SKNN_ASSIGN_OR_RETURN(ctx->plain_ntt_,
                        NttTables::Create(params.n, params.plain_modulus));
  ctx->plain_mod_ = Modulus(params.plain_modulus);

  // Slot index map (Smart–Vercauteren batching layout compatible with the
  // x -> x^3 rotation subgroup; same construction as SEAL's BatchEncoder).
  const size_t n = params.n;
  const uint64_t m = 2 * static_cast<uint64_t>(n);
  int log_n = 0;
  while ((size_t{1} << log_n) < n) ++log_n;
  const size_t row_size = n / 2;
  ctx->slot_index_map_.resize(n);
  uint64_t pos = 1;
  for (size_t i = 0; i < row_size; ++i) {
    const uint64_t index1 = (pos - 1) >> 1;
    const uint64_t index2 = (m - pos - 1) >> 1;
    ctx->slot_index_map_[i] =
        static_cast<size_t>(ReverseBits(index1, log_n));
    ctx->slot_index_map_[row_size + i] =
        static_cast<size_t>(ReverseBits(index2, log_n));
    pos = (pos * 3) & (m - 1);
  }

  const size_t num_data = params.data_primes.size();
  const uint64_t t = params.plain_modulus;
  const uint64_t sp = params.special_prime;
  ctx->t_inv_mod_q_.resize(num_data);
  ctx->t_mod_q_.resize(num_data);
  ctx->sp_inv_mod_q_.resize(num_data);
  ctx->sp_mod_q_.resize(num_data);
  ctx->t_inv_mod_q_shoup_.resize(num_data);
  ctx->sp_inv_mod_q_shoup_.resize(num_data);
  ctx->t_sp_inv_mod_q_.resize(num_data);
  ctx->t_sp_inv_mod_q_shoup_.resize(num_data);
  for (size_t i = 0; i < num_data; ++i) {
    const uint64_t q = params.data_primes[i];
    const Modulus mod(q);
    ctx->t_inv_mod_q_[i] = InvModPrime(t % q, q);
    ctx->t_inv_mod_q_shoup_[i] = ShoupPrecompute(ctx->t_inv_mod_q_[i], q);
    ctx->t_mod_q_[i] = t % q;
    ctx->sp_inv_mod_q_[i] = InvModPrime(sp % q, q);
    ctx->sp_inv_mod_q_shoup_[i] = ShoupPrecompute(ctx->sp_inv_mod_q_[i], q);
    ctx->t_sp_inv_mod_q_[i] = mod.MulMod(t % q, ctx->sp_inv_mod_q_[i]);
    ctx->t_sp_inv_mod_q_shoup_[i] = ShoupPrecompute(ctx->t_sp_inv_mod_q_[i], q);
    ctx->sp_mod_q_[i] = sp % q;
  }
  ctx->t_inv_mod_sp_ = InvModPrime(t % sp, sp);
  ctx->t_inv_mod_sp_shoup_ = ShoupPrecompute(ctx->t_inv_mod_sp_, sp);
  ctx->t_mod_sp_ = t % sp;

  ctx->q_inv_mod_q_.assign(num_data, std::vector<uint64_t>(num_data, 0));
  ctx->q_inv_mod_q_shoup_.assign(num_data,
                                 std::vector<uint64_t>(num_data, 0));
  ctx->q_mod_q_.assign(num_data, std::vector<uint64_t>(num_data, 0));
  ctx->t_q_inv_mod_q_.assign(num_data, std::vector<uint64_t>(num_data, 0));
  ctx->t_q_inv_mod_q_shoup_.assign(num_data,
                                   std::vector<uint64_t>(num_data, 0));
  for (size_t dropped = 0; dropped < num_data; ++dropped) {
    for (size_t j = 0; j < dropped; ++j) {
      const uint64_t qj = params.data_primes[j];
      const Modulus mod(qj);
      ctx->q_inv_mod_q_[dropped][j] =
          InvModPrime(params.data_primes[dropped] % qj, qj);
      ctx->q_inv_mod_q_shoup_[dropped][j] =
          ShoupPrecompute(ctx->q_inv_mod_q_[dropped][j], qj);
      ctx->q_mod_q_[dropped][j] = params.data_primes[dropped] % qj;
      ctx->t_q_inv_mod_q_[dropped][j] =
          mod.MulMod(t % qj, ctx->q_inv_mod_q_[dropped][j]);
      ctx->t_q_inv_mod_q_shoup_[dropped][j] =
          ShoupPrecompute(ctx->t_q_inv_mod_q_[dropped][j], qj);
    }
  }

  // correction_mod_t_[level] = prod_{i > level} q_i mod t (the primes
  // dropped by mod switching down to `level`).
  ctx->correction_mod_t_.resize(num_data);
  Modulus t_mod(t);
  uint64_t acc = 1;
  for (size_t level = num_data; level-- > 0;) {
    ctx->correction_mod_t_[level] = acc;
    acc = t_mod.MulMod(acc, params.data_primes[level] % t);
  }
  ctx->q_inv_mod_t_.resize(num_data);
  for (size_t i = 0; i < num_data; ++i) {
    ctx->q_inv_mod_t_[i] = InvModPrime(params.data_primes[i] % t, t);
  }

  return std::shared_ptr<const BgvContext>(ctx);
}

uint64_t BgvContext::GaloisEltForRotation(int step) const {
  const uint64_t m = 2 * static_cast<uint64_t>(params_.n);
  const size_t row = row_size();
  SKNN_CHECK_NE(step, 0);
  SKNN_CHECK_LT(static_cast<size_t>(step < 0 ? -step : step), row);
  // The rotation subgroup is generated by 3 (order row_size in Z_m^*);
  // negative steps wrap around the subgroup.
  const uint64_t k = step > 0
                         ? static_cast<uint64_t>(step)
                         : static_cast<uint64_t>(static_cast<long>(row) + step);
  uint64_t elt = 1;
  uint64_t g = 3;
  uint64_t e = k;
  while (e > 0) {
    if (e & 1) elt = (elt * g) % m;
    g = (g * g) % m;
    e >>= 1;
  }
  return elt;
}

}  // namespace bgv
}  // namespace sknn
