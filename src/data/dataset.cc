#include "data/dataset.h"

#include "common/logging.h"

namespace sknn {
namespace data {

std::vector<uint64_t> Dataset::point(size_t i) const {
  SKNN_CHECK_LT(i, num_points_);
  return std::vector<uint64_t>(values_.begin() + static_cast<long>(i * dims_),
                               values_.begin() +
                                   static_cast<long>((i + 1) * dims_));
}

uint64_t Dataset::MaxValue() const {
  uint64_t max = 0;
  for (uint64_t v : values_) max = std::max(max, v);
  return max;
}

Dataset Dataset::QuantizeToBits(int bits) const {
  SKNN_CHECK_GT(bits, 0);
  const uint64_t bound = uint64_t{1} << bits;
  uint64_t max = MaxValue();
  int shift = 0;
  while ((max >> shift) >= bound) ++shift;
  Dataset out(num_points_, dims_);
  for (size_t i = 0; i < values_.size(); ++i) {
    out.values_[i] = values_[i] >> shift;
  }
  return out;
}

Dataset Dataset::TakePoints(size_t count) const {
  const size_t keep = std::min(count, num_points_);
  Dataset out(keep, dims_);
  for (size_t i = 0; i < keep * dims_; ++i) out.values_[i] = values_[i];
  return out;
}

uint64_t SquaredDistance(const Dataset& data, size_t point,
                         const std::vector<uint64_t>& query) {
  SKNN_CHECK_EQ(query.size(), data.dims());
  uint64_t sum = 0;
  for (size_t j = 0; j < data.dims(); ++j) {
    const uint64_t a = data.at(point, j);
    const uint64_t b = query[j];
    const uint64_t diff = a > b ? a - b : b - a;
    sum += diff * diff;
  }
  return sum;
}

uint64_t MaxSquaredDistance(size_t dims, uint64_t max_coord) {
  return static_cast<uint64_t>(dims) * max_coord * max_coord;
}

}  // namespace data
}  // namespace sknn
