#ifndef SKNN_DATA_GENERATORS_H_
#define SKNN_DATA_GENERATORS_H_

#include "common/rng.h"
#include "data/dataset.h"

// Dataset generators.
//
// The paper evaluates on two UCI datasets (cervical cancer risk factors:
// 858 x 32; default of credit card clients: 30000 x 23) preprocessed to
// non-negative integers, plus uniform synthetic data for the parameter
// sweeps. The UCI files are not redistributable offline, so we generate
// surrogates with the same shape (n, d) and realistic per-feature integer
// ranges; the protocol's cost depends only on n, d, k and value magnitude,
// and exactness is always checked against plaintext k-NN on the same data,
// so the substitution preserves every reported behaviour.

namespace sknn {
namespace data {

// Uniform synthetic data in [0, max_value] (the paper's simulation setup).
Dataset UniformDataset(size_t num_points, size_t dims, uint64_t max_value,
                       uint64_t seed);

// A random query point in the same range.
std::vector<uint64_t> UniformQuery(size_t dims, uint64_t max_value,
                                   uint64_t seed);

// Surrogate for "Cervical cancer (Risk Factors)": 858 points, 32 integer
// features (demographics, habits, binary medical indicators).
Dataset SimulatedCervicalCancer(uint64_t seed);

// Surrogate for "default of credit card clients": 30000 points, 23 integer
// features (credit amounts, demographics, bill/payment history).
// `num_points` can shrink the dataset for scaled-down runs (default full).
Dataset SimulatedCreditCard(uint64_t seed, size_t num_points = 30000);

}  // namespace data
}  // namespace sknn

#endif  // SKNN_DATA_GENERATORS_H_
