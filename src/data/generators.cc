#include "data/generators.h"

namespace sknn {
namespace data {
namespace {

// Feature spec: values are sampled uniformly in [lo, hi] with probability
// (1 - zero_prob), else 0 (simulating sparse/absent indicators).
struct FeatureSpec {
  uint64_t lo;
  uint64_t hi;
  double zero_prob;
};

Dataset FromSpecs(const std::vector<FeatureSpec>& specs, size_t num_points,
                  uint64_t seed) {
  Dataset out(num_points, specs.size());
  Chacha20Rng rng(seed);
  for (size_t i = 0; i < num_points; ++i) {
    for (size_t j = 0; j < specs.size(); ++j) {
      const FeatureSpec& f = specs[j];
      if (f.zero_prob > 0 && rng.NextDouble() < f.zero_prob) {
        out.set(i, j, 0);
      } else {
        out.set(i, j, rng.UniformInRange(f.lo, f.hi));
      }
    }
  }
  return out;
}

}  // namespace

Dataset UniformDataset(size_t num_points, size_t dims, uint64_t max_value,
                       uint64_t seed) {
  Dataset out(num_points, dims);
  Chacha20Rng rng(seed);
  for (size_t i = 0; i < num_points; ++i) {
    for (size_t j = 0; j < dims; ++j) {
      out.set(i, j, rng.UniformInRange(0, max_value));
    }
  }
  return out;
}

std::vector<uint64_t> UniformQuery(size_t dims, uint64_t max_value,
                                   uint64_t seed) {
  Chacha20Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<uint64_t> q(dims);
  for (auto& v : q) v = rng.UniformInRange(0, max_value);
  return q;
}

Dataset SimulatedCervicalCancer(uint64_t seed) {
  // 32 features mirroring the UCI schema: age, sexual-history counts,
  // smoking (years/packs), contraceptive use (years), STD counts, and a
  // tail of binary diagnosis/test indicators.
  std::vector<FeatureSpec> specs;
  specs.push_back({13, 84, 0.0});   // age
  specs.push_back({1, 28, 0.02});   // number of sexual partners
  specs.push_back({10, 32, 0.02});  // first intercourse (age)
  specs.push_back({0, 11, 0.0});    // number of pregnancies
  specs.push_back({0, 1, 0.0});     // smokes
  specs.push_back({0, 37, 0.55});   // smokes (years)
  specs.push_back({0, 37, 0.55});   // smokes (packs/year)
  specs.push_back({0, 1, 0.0});     // hormonal contraceptives
  specs.push_back({0, 30, 0.35});   // hormonal contraceptives (years)
  specs.push_back({0, 1, 0.0});     // IUD
  specs.push_back({0, 19, 0.85});   // IUD (years)
  specs.push_back({0, 1, 0.0});     // STDs
  specs.push_back({0, 4, 0.85});    // STDs (number)
  for (int i = 0; i < 12; ++i) {
    specs.push_back({0, 1, 0.9});   // STD condition indicators
  }
  specs.push_back({0, 22, 0.9});    // time since first diagnosis
  specs.push_back({0, 22, 0.9});    // time since last diagnosis
  specs.push_back({0, 1, 0.85});    // Dx:Cancer
  specs.push_back({0, 1, 0.85});    // Dx:CIN
  specs.push_back({0, 1, 0.85});    // Dx:HPV
  specs.push_back({0, 1, 0.9});     // Hinselmann test
  specs.push_back({0, 1, 0.9});     // Schiller test
  // == 32 features total.
  Dataset d = FromSpecs(specs, 858, seed);
  return d;
}

Dataset SimulatedCreditCard(uint64_t seed, size_t num_points) {
  // 23 features mirroring the UCI schema: LIMIT_BAL, SEX, EDUCATION,
  // MARRIAGE, AGE, six monthly repayment statuses, six bill amounts and
  // six previous payment amounts. Monetary features are expressed in
  // thousands (integers).
  std::vector<FeatureSpec> specs;
  specs.push_back({10, 1000, 0.0});  // LIMIT_BAL (thousands)
  specs.push_back({1, 2, 0.0});      // SEX
  specs.push_back({1, 4, 0.0});      // EDUCATION
  specs.push_back({1, 3, 0.0});      // MARRIAGE
  specs.push_back({21, 79, 0.0});    // AGE
  for (int i = 0; i < 6; ++i) {
    specs.push_back({0, 9, 0.4});    // PAY_i repayment status (shifted)
  }
  for (int i = 0; i < 6; ++i) {
    specs.push_back({0, 960, 0.1});  // BILL_AMT_i (thousands)
  }
  for (int i = 0; i < 6; ++i) {
    specs.push_back({0, 870, 0.25});  // PAY_AMT_i (thousands)
  }
  return FromSpecs(specs, num_points, seed);
}

}  // namespace data
}  // namespace sknn
