#ifndef SKNN_DATA_DATASET_H_
#define SKNN_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

// Integer datasets for k-NN. The paper preprocesses its UCI datasets to
// non-negative integers; everything here is already in that form.

namespace sknn {
namespace data {

// Row-major n x d matrix of non-negative integer features.
class Dataset {
 public:
  Dataset() = default;
  Dataset(size_t num_points, size_t dims)
      : num_points_(num_points), dims_(dims),
        values_(num_points * dims, 0) {}

  size_t num_points() const { return num_points_; }
  size_t dims() const { return dims_; }

  uint64_t at(size_t point, size_t dim) const {
    return values_[point * dims_ + dim];
  }
  void set(size_t point, size_t dim, uint64_t v) {
    values_[point * dims_ + dim] = v;
  }
  // One point as a vector.
  std::vector<uint64_t> point(size_t i) const;

  // Largest feature value present.
  uint64_t MaxValue() const;

  // Returns a copy rescaled so every value fits in [0, 2^bits): values are
  // divided by the smallest power of two that brings the maximum under the
  // bound. Relative order of distances is approximately preserved; exact
  // k-NN correctness tests run on the scaled data.
  Dataset QuantizeToBits(int bits) const;

  // Returns a copy containing only the first min(count, num_points) points
  // (used by the bench smoke runs to shrink fixed datasets).
  Dataset TakePoints(size_t count) const;

 private:
  size_t num_points_ = 0;
  size_t dims_ = 0;
  std::vector<uint64_t> values_;
};

// Squared Euclidean distance between a dataset point and a query vector.
uint64_t SquaredDistance(const Dataset& data, size_t point,
                         const std::vector<uint64_t>& query);

// Upper bound on any squared distance: d * max_coord^2 (both sides bounded
// by max_coord).
uint64_t MaxSquaredDistance(size_t dims, uint64_t max_coord);

}  // namespace data
}  // namespace sknn

#endif  // SKNN_DATA_DATASET_H_
