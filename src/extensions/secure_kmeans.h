#ifndef SKNN_EXTENSIONS_SECURE_KMEANS_H_
#define SKNN_EXTENSIONS_SECURE_KMEANS_H_

#include <memory>
#include <vector>

#include "bgv/context.h"
#include "bgv/decryptor.h"
#include "bgv/encoder.h"
#include "bgv/encryptor.h"
#include "bgv/evaluator.h"
#include "bgv/keys.h"
#include "common/rng.h"
#include "core/layout.h"
#include "core/masking.h"
#include "core/metrics.h"
#include "core/protocol_config.h"
#include "data/dataset.h"

// Secure k-means clustering over encrypted data — the extension the paper
// names as future work ("we plan to extend our work to other data mining
// algorithms, including k-Means"). Built from the same ingredients as the
// k-NN protocol, in the same two-cloud model:
//
// Each Lloyd iteration:
//   1. The client encrypts the current centroids (replicated slot layout).
//   2. Party A homomorphically computes, per centroid, the masked squared
//      distances to every point — the same fresh monotone polynomial for
//      all centroids of the iteration (so Party B can compare them) and a
//      fresh point permutation.
//   3. Party B decrypts, assigns every (permuted) point to its nearest
//      centroid, and returns per-cluster encrypted indicator units.
//   4. Party A computes per-cluster encrypted coordinate sums obliviously
//      (indicator products + a rotation fold); Party B reveals only the
//      cluster sizes.
//   5. The client decrypts the sums and derives the next integer centroids
//      (floor division; empty clusters keep their centroid).
//
// Leakage beyond the k-NN protocol (documented): Party B learns the
// partition structure of the *permuted* points within one iteration and
// the cluster sizes. Fresh permutations prevent linking across iterations.
// The final centroids are exact: they equal the plaintext Lloyd iteration
// with identical integer rounding, which is what the tests assert.

namespace sknn {
namespace extensions {

struct KMeansConfig {
  size_t num_clusters = 2;
  size_t iterations = 5;
  int coord_bits = 4;
  size_t poly_degree = 2;
  size_t dims = 2;
  bgv::SecurityPreset preset = bgv::SecurityPreset::kToy;
  uint64_t seed = 1;
};

struct KMeansResult {
  // Final centroids (integer coordinates).
  std::vector<std::vector<uint64_t>> centroids;
  // Cluster sizes after the final assignment.
  std::vector<size_t> sizes;
  size_t iterations_run = 0;
  core::OpCounts party_a_ops;
  core::OpCounts party_b_ops;
};

class SecureKMeans {
 public:
  static StatusOr<std::unique_ptr<SecureKMeans>> Create(
      const KMeansConfig& config, const data::Dataset& dataset);

  // Runs Lloyd iterations from the given initial centroids (defaults to
  // the first num_clusters dataset points when empty). Stops early when
  // centroids are stable.
  StatusOr<KMeansResult> Run(
      std::vector<std::vector<uint64_t>> initial_centroids = {});

  // Plaintext reference with the identical update rule (floor division,
  // ties to the lowest centroid index); used by tests and examples to
  // verify exactness.
  static std::vector<std::vector<uint64_t>> ReferenceLloyd(
      const data::Dataset& dataset,
      std::vector<std::vector<uint64_t>> centroids, size_t iterations,
      std::vector<size_t>* final_sizes = nullptr);

 private:
  SecureKMeans() = default;

  // One secure iteration: returns the next centroids and cluster sizes.
  Status Iterate(std::vector<std::vector<uint64_t>>* centroids,
                 std::vector<size_t>* sizes);

  KMeansConfig config_;
  data::Dataset dataset_;
  std::shared_ptr<const bgv::BgvContext> ctx_;
  core::SlotLayout layout_;
  std::unique_ptr<Chacha20Rng> rng_;
  bgv::SecretKey sk_;
  bgv::PublicKey pk_;
  bgv::RelinKeys rk_;
  bgv::GaloisKeys gk_;
  std::unique_ptr<bgv::BatchEncoder> encoder_;
  std::unique_ptr<bgv::Encryptor> encryptor_;
  std::unique_ptr<bgv::Decryptor> decryptor_;
  std::unique_ptr<bgv::Evaluator> evaluator_;
  std::vector<bgv::Ciphertext> db_units_;      // top level (distances)
  std::vector<bgv::Ciphertext> db_units_low_;  // indicator level (sums)
  core::OpCounts a_ops_;
  core::OpCounts b_ops_;
};

}  // namespace extensions
}  // namespace sknn

#endif  // SKNN_EXTENSIONS_SECURE_KMEANS_H_
