#include "extensions/secure_kmeans.h"

#include "common/logging.h"

namespace sknn {
namespace extensions {
namespace {

// Assigns a point to its nearest centroid index (strict <, ties to the
// lowest index) given its k distance values.
size_t ArgMin(const std::vector<uint64_t>& values) {
  size_t best = 0;
  for (size_t c = 1; c < values.size(); ++c) {
    if (values[c] < values[best]) best = c;
  }
  return best;
}

}  // namespace

StatusOr<std::unique_ptr<SecureKMeans>> SecureKMeans::Create(
    const KMeansConfig& config, const data::Dataset& dataset) {
  if (config.num_clusters < 1) {
    return InvalidArgumentError("need at least one cluster");
  }
  if (config.num_clusters > dataset.num_points()) {
    return InvalidArgumentError("more clusters than points");
  }
  if (dataset.dims() != config.dims) {
    return InvalidArgumentError("dataset dimensionality mismatch");
  }
  const uint64_t bound = uint64_t{1} << config.coord_bits;
  if (dataset.MaxValue() >= bound) {
    return InvalidArgumentError("dataset values exceed coord_bits");
  }

  auto km = std::unique_ptr<SecureKMeans>(new SecureKMeans());
  km->config_ = config;
  km->dataset_ = dataset;
  km->rng_ = std::make_unique<Chacha20Rng>(config.seed);

  // Same pipeline depth as the packed k-NN layout.
  core::ProtocolConfig pcfg;
  pcfg.k = config.num_clusters;
  pcfg.dims = config.dims;
  pcfg.coord_bits = config.coord_bits;
  pcfg.poly_degree = config.poly_degree;
  pcfg.layout = core::Layout::kPacked;
  pcfg.preset = config.preset;
  pcfg.levels = pcfg.MinimumLevels();
  SKNN_ASSIGN_OR_RETURN(bgv::BgvParams params, pcfg.MakeBgvParams());
  SKNN_ASSIGN_OR_RETURN(km->ctx_, bgv::BgvContext::Create(params));
  SKNN_ASSIGN_OR_RETURN(
      km->layout_,
      core::SlotLayout::Create(pcfg, km->ctx_->n(), dataset.num_points()));

  // Cluster coordinate sums must fit the plaintext space.
  const uint64_t max_dist =
      data::MaxSquaredDistance(config.dims, bound - 1);
  if (max_dist >= km->ctx_->t() ||
      static_cast<uint64_t>(dataset.num_points()) * (bound - 1) >=
          km->ctx_->t()) {
    return InvalidArgumentError(
        "plaintext modulus too small for distances or coordinate sums");
  }

  bgv::KeyGenerator keygen(km->ctx_, km->rng_.get());
  km->sk_ = keygen.GenerateSecretKey();
  km->pk_ = keygen.GeneratePublicKey(km->sk_);
  km->rk_ = keygen.GenerateRelinKeys(km->sk_);
  km->gk_ = keygen.GeneratePowerOfTwoRotationKeys(km->sk_);
  km->encoder_ = std::make_unique<bgv::BatchEncoder>(km->ctx_);
  km->encryptor_ =
      std::make_unique<bgv::Encryptor>(km->ctx_, km->pk_, km->rng_.get());
  km->decryptor_ = std::make_unique<bgv::Decryptor>(km->ctx_, km->sk_);
  km->evaluator_ = std::make_unique<bgv::Evaluator>(km->ctx_);

  // Encrypted database units (top level for distances, level 2 for sums).
  for (size_t u = 0; u < km->layout_.num_units(); ++u) {
    SKNN_ASSIGN_OR_RETURN(
        bgv::Plaintext pt,
        km->encoder_->Encode(km->layout_.EncodeDbUnit(dataset, u)));
    SKNN_ASSIGN_OR_RETURN(bgv::Ciphertext ct, km->encryptor_->Encrypt(pt));
    bgv::Ciphertext low = ct;
    // The oblivious-sum phase multiplies and then folds with ~log2(slots)
    // rotations; level 2 leaves enough budget for both (level 1 would only
    // survive the multiplication).
    SKNN_RETURN_IF_ERROR(km->evaluator_->ModSwitchToLevelInplace(&low, 2));
    km->db_units_.push_back(std::move(ct));
    km->db_units_low_.push_back(std::move(low));
  }
  return km;
}

Status SecureKMeans::Iterate(std::vector<std::vector<uint64_t>>* centroids,
                             std::vector<size_t>* sizes) {
  const size_t k = config_.num_clusters;
  const size_t units = layout_.num_units();
  const size_t ppu = layout_.payloads_per_unit();
  const uint64_t t = ctx_->t();
  const uint64_t max_dist = data::MaxSquaredDistance(
      config_.dims, (uint64_t{1} << config_.coord_bits) - 1);

  // Party A: one fresh mask for the whole iteration (values must stay
  // comparable across centroids) and a fresh unit permutation.
  SKNN_ASSIGN_OR_RETURN(
      core::MaskingPolynomial mask,
      core::MaskingPolynomial::Sample(t, max_dist, config_.poly_degree,
                                      rng_.get()));
  const std::vector<size_t> perm = rng_->RandomPermutation(units);
  const std::vector<uint64_t>& a = mask.coefficients();
  const size_t degree = mask.degree();

  // masked[c][pos]: the distance unit for centroid c at permuted position.
  std::vector<std::vector<bgv::Ciphertext>> masked(
      k, std::vector<bgv::Ciphertext>(units));
  for (size_t c = 0; c < k; ++c) {
    // Client encrypts the centroid in the replicated query layout.
    SKNN_ASSIGN_OR_RETURN(
        bgv::Plaintext centroid_pt,
        encoder_->Encode(layout_.EncodeQuery((*centroids)[c])));
    SKNN_ASSIGN_OR_RETURN(bgv::Ciphertext centroid_ct,
                          encryptor_->Encrypt(centroid_pt));
    b_ops_.encryptions += 1;  // client-side, attributed to the key holder
    for (size_t u = 0; u < units; ++u) {
      bgv::Ciphertext diff = db_units_[u];
      SKNN_RETURN_IF_ERROR(evaluator_->SubInplace(&diff, centroid_ct));
      SKNN_ASSIGN_OR_RETURN(bgv::Ciphertext x,
                            evaluator_->MultiplyRelin(diff, diff, rk_));
      a_ops_.he_multiplications += 1;
      if (layout_.padded_dims() > 1) {
        SKNN_RETURN_IF_ERROR(
            evaluator_->FoldRowsInplace(&x, layout_.padded_dims(), gk_));
        a_ops_.rotations += 1;
      }
      SKNN_ASSIGN_OR_RETURN(bgv::Plaintext selector,
                            encoder_->Encode(layout_.SelectorSlots(u)));
      SKNN_RETURN_IF_ERROR(evaluator_->MultiplyPlainInplace(&x, selector));
      SKNN_RETURN_IF_ERROR(evaluator_->ModSwitchToNextInplace(&x));
      a_ops_.he_plain_ops += 1;
      // Horner masking.
      bgv::Ciphertext m_ct = x;
      SKNN_RETURN_IF_ERROR(
          evaluator_->MultiplyScalarInplace(&m_ct, a[degree]));
      SKNN_RETURN_IF_ERROR(evaluator_->AddPlainInplace(
          &m_ct, encoder_->EncodeScalar(a[degree - 1])));
      for (size_t j = degree - 1; j-- > 0;) {
        SKNN_ASSIGN_OR_RETURN(m_ct, evaluator_->MultiplyRelin(m_ct, x, rk_));
        a_ops_.he_multiplications += 1;
        SKNN_RETURN_IF_ERROR(evaluator_->AddPlainInplace(
            &m_ct, encoder_->EncodeScalar(a[j])));
      }
      if (m_ct.level > 1) {
        SKNN_RETURN_IF_ERROR(evaluator_->ModSwitchToLevelInplace(&m_ct, 1));
      }
      // Additive mask: random on non-payload slots, sentinel on pads.
      std::vector<uint64_t> mask_slots(ctx_->n(), 0);
      const std::vector<bool> rand_pos = layout_.RandomMaskPositions(u);
      for (size_t s = 0; s < mask_slots.size(); ++s) {
        if (rand_pos[s]) mask_slots[s] = rng_->UniformBelow(t);
      }
      const uint64_t pad_sentinel = SubMod(t - 1, a[0] % t, t);
      for (size_t s : layout_.PaddingPayloadSlots(u)) {
        mask_slots[s] = pad_sentinel;
      }
      SKNN_ASSIGN_OR_RETURN(bgv::Plaintext mask_pt,
                            encoder_->Encode(mask_slots));
      SKNN_RETURN_IF_ERROR(evaluator_->AddPlainInplace(&m_ct, mask_pt));
      SKNN_RETURN_IF_ERROR(evaluator_->ModSwitchToLevelInplace(&m_ct, 0));
      a_ops_.mod_switches += 1;
      masked[c][u] = std::move(m_ct);
    }
    // Apply the permutation to the unit order.
    std::vector<bgv::Ciphertext> permuted(units);
    for (size_t pos = 0; pos < units; ++pos) {
      permuted[pos] = std::move(masked[c][perm[pos]]);
    }
    masked[c] = std::move(permuted);
  }

  // Party B: decrypt, assign each (permuted) point to its nearest
  // centroid; padding payloads show the sentinel for every centroid.
  std::vector<std::vector<std::vector<uint64_t>>> indicators(
      k, std::vector<std::vector<uint64_t>>(
             units, std::vector<uint64_t>(ctx_->n(), 0)));
  std::vector<size_t> cluster_sizes(k, 0);
  for (size_t pos = 0; pos < units; ++pos) {
    std::vector<std::vector<uint64_t>> per_centroid(k);
    for (size_t c = 0; c < k; ++c) {
      SKNN_ASSIGN_OR_RETURN(bgv::Plaintext pt,
                            decryptor_->Decrypt(masked[c][pos]));
      b_ops_.decryptions += 1;
      per_centroid[c] = encoder_->Decode(pt);
    }
    for (size_t p = 0; p < ppu; ++p) {
      const size_t slot = layout_.PayloadSlot(p);
      std::vector<uint64_t> values(k);
      bool all_sentinel = true;
      for (size_t c = 0; c < k; ++c) {
        values[c] = per_centroid[c][slot];
        if (values[c] != t - 1) all_sentinel = false;
      }
      if (all_sentinel) continue;  // padding payload
      const size_t assigned = ArgMin(values);
      ++cluster_sizes[assigned];
      const std::vector<uint64_t> block = layout_.IndicatorSlots(p);
      for (size_t s = 0; s < block.size(); ++s) {
        if (block[s]) indicators[assigned][pos][s] = 1;
      }
    }
  }

  // Party B encrypts the per-cluster indicator units; Party A forms the
  // oblivious per-cluster coordinate sums.
  std::vector<std::vector<uint64_t>> sums(
      k, std::vector<uint64_t>(config_.dims, 0));
  for (size_t c = 0; c < k; ++c) {
    bgv::Ciphertext acc;
    bool started = false;
    for (size_t pos = 0; pos < units; ++pos) {
      SKNN_ASSIGN_OR_RETURN(bgv::Plaintext ind_pt,
                            encoder_->Encode(indicators[c][pos]));
      SKNN_ASSIGN_OR_RETURN(bgv::Ciphertext ind_ct,
                            encryptor_->EncryptAtLevel(ind_pt, 2));
      b_ops_.encryptions += 1;
      // A multiplies with the unpermuted database unit.
      SKNN_ASSIGN_OR_RETURN(
          bgv::Ciphertext prod,
          evaluator_->Multiply(db_units_low_[perm[pos]], ind_ct));
      a_ops_.he_multiplications += 1;
      if (!started) {
        acc = std::move(prod);
        started = true;
      } else {
        SKNN_RETURN_IF_ERROR(evaluator_->AddInplace(&acc, prod));
        a_ops_.he_additions += 1;
      }
    }
    SKNN_RETURN_IF_ERROR(evaluator_->RelinearizeInplace(&acc, rk_));
    a_ops_.relinearizations += 1;
    // Fold all blocks onto block 0 (dimension-aligned strides), then merge
    // the two rows.
    for (size_t step = layout_.padded_dims(); step < layout_.row_size();
         step <<= 1) {
      bgv::Ciphertext rotated = acc;
      SKNN_RETURN_IF_ERROR(evaluator_->RotateRowsInplace(
          &rotated, static_cast<int>(step), gk_));
      SKNN_RETURN_IF_ERROR(evaluator_->AddInplace(&acc, rotated));
      a_ops_.rotations += 1;
    }
    {
      bgv::Ciphertext swapped = acc;
      SKNN_RETURN_IF_ERROR(evaluator_->RotateColumnsInplace(&swapped, gk_));
      SKNN_RETURN_IF_ERROR(evaluator_->AddInplace(&acc, swapped));
      a_ops_.rotations += 1;
    }
    SKNN_RETURN_IF_ERROR(evaluator_->ModSwitchToLevelInplace(&acc, 0));
    // Client decrypts the sums from block 0 of row 0.
    SKNN_ASSIGN_OR_RETURN(bgv::Plaintext pt, decryptor_->Decrypt(acc));
    b_ops_.decryptions += 1;
    const std::vector<uint64_t> slots = encoder_->Decode(pt);
    for (size_t j = 0; j < config_.dims; ++j) sums[c][j] = slots[j];
  }

  // Client: next centroids = floor(sum / size); empty clusters persist.
  for (size_t c = 0; c < k; ++c) {
    if (cluster_sizes[c] == 0) continue;
    for (size_t j = 0; j < config_.dims; ++j) {
      (*centroids)[c][j] = sums[c][j] / cluster_sizes[c];
    }
  }
  *sizes = cluster_sizes;
  return Status::Ok();
}

StatusOr<KMeansResult> SecureKMeans::Run(
    std::vector<std::vector<uint64_t>> initial_centroids) {
  std::vector<std::vector<uint64_t>> centroids = std::move(initial_centroids);
  if (centroids.empty()) {
    for (size_t c = 0; c < config_.num_clusters; ++c) {
      centroids.push_back(dataset_.point(c));
    }
  }
  if (centroids.size() != config_.num_clusters) {
    return InvalidArgumentError("wrong number of initial centroids");
  }
  for (const auto& c : centroids) {
    if (c.size() != config_.dims) {
      return InvalidArgumentError("centroid dimensionality mismatch");
    }
  }
  KMeansResult result;
  std::vector<size_t> sizes(config_.num_clusters, 0);
  for (size_t it = 0; it < config_.iterations; ++it) {
    std::vector<std::vector<uint64_t>> before = centroids;
    SKNN_RETURN_IF_ERROR(Iterate(&centroids, &sizes));
    ++result.iterations_run;
    if (centroids == before) break;  // converged
  }
  result.centroids = std::move(centroids);
  result.sizes = std::move(sizes);
  result.party_a_ops = a_ops_;
  result.party_b_ops = b_ops_;
  return result;
}

std::vector<std::vector<uint64_t>> SecureKMeans::ReferenceLloyd(
    const data::Dataset& dataset,
    std::vector<std::vector<uint64_t>> centroids, size_t iterations,
    std::vector<size_t>* final_sizes) {
  const size_t k = centroids.size();
  std::vector<size_t> sizes(k, 0);
  for (size_t it = 0; it < iterations; ++it) {
    std::vector<std::vector<uint64_t>> sums(
        k, std::vector<uint64_t>(dataset.dims(), 0));
    sizes.assign(k, 0);
    for (size_t i = 0; i < dataset.num_points(); ++i) {
      std::vector<uint64_t> distances(k);
      for (size_t c = 0; c < k; ++c) {
        distances[c] = data::SquaredDistance(dataset, i, centroids[c]);
      }
      const size_t assigned = ArgMin(distances);
      ++sizes[assigned];
      for (size_t j = 0; j < dataset.dims(); ++j) {
        sums[assigned][j] += dataset.at(i, j);
      }
    }
    std::vector<std::vector<uint64_t>> next = centroids;
    for (size_t c = 0; c < k; ++c) {
      if (sizes[c] == 0) continue;
      for (size_t j = 0; j < dataset.dims(); ++j) {
        next[c][j] = sums[c][j] / sizes[c];
      }
    }
    if (next == centroids) break;
    centroids = std::move(next);
  }
  if (final_sizes != nullptr) *final_sizes = sizes;
  return centroids;
}

}  // namespace extensions
}  // namespace sknn
