#ifndef SKNN_OBS_TELEMETRY_HTTP_H_
#define SKNN_OBS_TELEMETRY_HTTP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

// The live telemetry plane (OPERATIONS.md "Monitoring"): a small
// self-contained HTTP/1.1 server embedded in `sknn_server_a` /
// `sknn_server_b` (and `bench_load`) behind `--admin-port`, so a running
// deployment can be scraped and probed instead of only rewriting a
// metrics file on a timer.
//
// Scope is deliberately narrow — this is an admin plane, not a web
// server: one blocking accept thread serves requests serially, each on a
// short-lived connection (`Connection: close`), request heads are capped
// at 8 KB, and only GET is answered. It speaks plain HTTP/1.1 over the
// same POSIX sockets as the rest of the repo; no third-party
// dependencies. The SKNF protocol port and the admin port never share a
// listener, so a scraper can never desynchronize the ciphertext stream.
//
// Endpoints are registered as path -> handler; `RegisterStandardEndpoints`
// wires the five standard ones (/metrics, /healthz, /readyz, /flightz,
// /varz) against the process-global registries. `tools/check_docs.sh`
// cross-checks the registered paths against the OPERATIONS.md endpoint
// table.

namespace sknn {
namespace obs {

struct HttpRequest {
  std::string method;  // "GET", ...
  std::string path;    // decoded target path, query string stripped
  // Query parameters ("?n=10&x=y"), raw (no %-decoding: admin values are
  // ASCII numbers and words).
  std::map<std::string, std::string> params;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class TelemetryHttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  // Binds and starts the accept thread. `port` 0 picks an ephemeral port
  // (read back with port()).
  static StatusOr<std::unique_ptr<TelemetryHttpServer>> Start(
      const std::string& host, uint16_t port);
  ~TelemetryHttpServer();

  TelemetryHttpServer(const TelemetryHttpServer&) = delete;
  TelemetryHttpServer& operator=(const TelemetryHttpServer&) = delete;

  uint16_t port() const { return port_; }

  // Registers (or replaces) the handler for an exact path. Safe to call
  // while the server is running.
  void RegisterHandler(const std::string& path, Handler handler);

  // Registered paths, sorted (the /varz "endpoints" listing).
  std::vector<std::string> RegisteredPaths() const;

  // Stops the accept thread and closes the listener. Idempotent; the
  // destructor calls it.
  void Shutdown();

 private:
  TelemetryHttpServer() = default;
  void AcceptLoop();
  void ServeOne(int client_fd);

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  mutable std::mutex mu_;
  std::map<std::string, Handler> handlers_;
};

// Static build/process facts reported by /varz. The caller fills what it
// knows; `simd_backend` comes from the caller so this library depends
// only on sknn_common (git SHA and build type default to the values
// baked into sknn_obs at configure time when left empty).
struct BuildInfo {
  std::string role;                // "party_a" | "party_b" | "bench_load"
  std::string git_sha;             // defaults to SKNN_OBS_GIT_SHA
  std::string build_type;          // defaults to SKNN_OBS_BUILD_TYPE
  std::string simd_backend;        // simd::ActiveKernels().name
  std::string params_fingerprint;  // deployment fingerprint, hex
};

// Readiness probe: Ok = serve traffic; an error's message becomes the
// 503 body of /readyz (e.g. "draining" or "no connected B workers").
using ReadyCheck = std::function<Status()>;

// Registers the five standard endpoints:
//   /metrics     live MetricsRegistry::Global().PrometheusText()
//   /healthz     pure liveness (200 once the process serves HTTP at all)
//   /readyz      200 when `ready` returns Ok, 503 with the reason else
//   /flightz?n=K last K flight records as JSON (default 32)
//   /varz        build info + uptime as JSON
// Every /metrics scrape refreshes the `obs.uptime_seconds` gauge so the
// exposition itself carries process uptime.
void RegisterStandardEndpoints(TelemetryHttpServer* server,
                               const BuildInfo& info, ReadyCheck ready);

// Minimal scrape client for the harnesses (bench_load mid-run scrape,
// the conformance tests, process_chaos /readyz probes). One GET, bounded
// by `timeout_ms` end-to-end.
struct HttpGetResult {
  int status = 0;
  std::string body;
  double latency_ms = 0;
};
StatusOr<HttpGetResult> HttpGet(const std::string& host, uint16_t port,
                                const std::string& path_and_query,
                                int timeout_ms = 5000);

}  // namespace obs
}  // namespace sknn

#endif  // SKNN_OBS_TELEMETRY_HTTP_H_
