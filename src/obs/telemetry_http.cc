#include "obs/telemetry_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/flight_recorder.h"
#include "common/json_writer.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/trace_id.h"

// Values baked in by src/obs/CMakeLists.txt at configure time; the
// fallbacks keep the file compilable standalone.
#ifndef SKNN_OBS_GIT_SHA
#define SKNN_OBS_GIT_SHA "unknown"
#endif
#ifndef SKNN_OBS_BUILD_TYPE
#define SKNN_OBS_BUILD_TYPE "unknown"
#endif

namespace sknn {
namespace obs {
namespace {

// Request heads beyond this are rejected (414): admin requests are one
// short line plus a handful of headers.
constexpr size_t kMaxRequestBytes = 8192;
// Per-connection budget for reading the request head and writing the
// response. A stuck scraper must not wedge the accept thread for long.
constexpr int kIoTimeoutMs = 2000;

MetricsRegistry::Counter* HttpCounter(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name);
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 414: return "URI Too Long";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

// Reads from `fd` until the blank line ending the request head, EOF, the
// byte cap, or the deadline. Returns false on any of the failure modes.
bool ReadRequestHead(int fd, std::string* out) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(kIoTimeoutMs);
  char buf[1024];
  for (;;) {
    if (out->find("\r\n\r\n") != std::string::npos) return true;
    if (out->size() >= kMaxRequestBytes) return false;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    struct pollfd pfd = {fd, POLLIN, 0};
    const int pr = poll(&pfd, 1, wait_ms);
    if (pr <= 0) return false;
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    out->append(buf, static_cast<size_t>(n));
  }
}

// Writes the whole buffer, bounded by the per-connection deadline.
bool WriteAll(int fd, const std::string& data) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(kIoTimeoutMs);
  size_t off = 0;
  while (off < data.size()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    struct pollfd pfd = {fd, POLLOUT, 0};
    const int pr = poll(&pfd, 1, wait_ms);
    if (pr <= 0) return false;
    const ssize_t n =
        send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

// Parses "GET /path?a=1&b=2 HTTP/1.1" into method/path/params. Returns
// false when the request line is not of that three-token shape.
bool ParseRequestLine(const std::string& head, HttpRequest* req) {
  const size_t eol = head.find("\r\n");
  if (eol == std::string::npos) return false;
  const std::string line = head.substr(0, eol);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  req->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  const size_t q = target.find('?');
  req->path = target.substr(0, q);
  if (q != std::string::npos) {
    std::string query = target.substr(q + 1);
    size_t pos = 0;
    while (pos <= query.size()) {
      size_t amp = query.find('&', pos);
      if (amp == std::string::npos) amp = query.size();
      const std::string pair = query.substr(pos, amp - pos);
      if (!pair.empty()) {
        const size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          req->params[pair] = "";
        } else {
          req->params[pair.substr(0, eq)] = pair.substr(eq + 1);
        }
      }
      pos = amp + 1;
    }
  }
  return true;
}

std::string RenderResponse(const HttpResponse& resp) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    ReasonPhrase(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  return out;
}

}  // namespace

StatusOr<std::unique_ptr<TelemetryHttpServer>> TelemetryHttpServer::Start(
    const std::string& host, uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("admin socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return InvalidArgumentError("admin host must be an IPv4 address: " + host);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return UnavailableError("admin bind " + host + ":" +
                            std::to_string(port) + ": " + err);
  }
  if (listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return InternalError("admin listen: " + err);
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return InternalError("admin getsockname: " + err);
  }
  std::unique_ptr<TelemetryHttpServer> server(new TelemetryHttpServer());
  server->listen_fd_ = fd;
  server->port_ = ntohs(bound.sin_port);
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

TelemetryHttpServer::~TelemetryHttpServer() { Shutdown(); }

void TelemetryHttpServer::Shutdown() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) {
    return;  // already shut down
  }
  // The accept loop polls with a short timeout, so flipping the flag is
  // enough; shutdown() additionally unblocks any in-flight accept.
  if (listen_fd_ >= 0) shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TelemetryHttpServer::RegisterHandler(const std::string& path,
                                          Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[path] = std::move(handler);
}

std::vector<std::string> TelemetryHttpServer::RegisteredPaths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> paths;
  paths.reserve(handlers_.size());
  for (const auto& kv : handlers_) paths.push_back(kv.first);
  return paths;
}

void TelemetryHttpServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int pr = poll(&pfd, 1, 100);
    if (pr <= 0) continue;
    const int client = accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    ServeOne(client);
    close(client);
  }
}

void TelemetryHttpServer::ServeOne(int client_fd) {
  HttpCounter("obs.http.requests")->Increment();
  std::string head;
  HttpResponse resp;
  HttpRequest req;
  if (!ReadRequestHead(client_fd, &head)) {
    resp.status = head.size() >= kMaxRequestBytes ? 414 : 400;
    resp.body = "bad request\n";
  } else if (!ParseRequestLine(head, &req)) {
    resp.status = 400;
    resp.body = "malformed request line\n";
  } else if (req.method != "GET" && req.method != "HEAD") {
    resp.status = 405;
    resp.body = "only GET is served\n";
  } else {
    Handler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = handlers_.find(req.path);
      if (it != handlers_.end()) handler = it->second;
    }
    if (!handler) {
      resp.status = 404;
      resp.body = "no handler for " + req.path + "\n";
    } else {
      resp = handler(req);
    }
  }
  if (resp.status != 200) HttpCounter("obs.http.errors")->Increment();
  if (req.method == "HEAD") resp.body.clear();
  if (!WriteAll(client_fd, RenderResponse(resp))) {
    HttpCounter("obs.http.write_failures")->Increment();
  }
}

void RegisterStandardEndpoints(TelemetryHttpServer* server,
                               const BuildInfo& info, ReadyCheck ready) {
  BuildInfo filled = info;
  if (filled.git_sha.empty()) filled.git_sha = SKNN_OBS_GIT_SHA;
  if (filled.build_type.empty()) filled.build_type = SKNN_OBS_BUILD_TYPE;
  const auto start = std::chrono::steady_clock::now();
  const auto uptime_seconds = [start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  server->RegisterHandler("/metrics", [uptime_seconds](const HttpRequest&) {
    // Refresh the uptime gauge first so every scrape carries it.
    MetricsRegistry::Global()
        .GetGauge("obs.uptime_seconds")
        ->Set(uptime_seconds());
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = MetricsRegistry::Global().PrometheusText();
    return resp;
  });

  server->RegisterHandler("/healthz", [](const HttpRequest&) {
    // Pure liveness: if this handler runs, the process is alive.
    HttpResponse resp;
    resp.body = "ok\n";
    return resp;
  });

  server->RegisterHandler("/readyz", [ready](const HttpRequest&) {
    HttpResponse resp;
    const Status status = ready ? ready() : Status::Ok();
    if (status.ok()) {
      resp.body = "ready\n";
    } else {
      resp.status = 503;
      resp.body = status.message() + "\n";
    }
    return resp;
  });

  server->RegisterHandler("/flightz", [](const HttpRequest& req) {
    size_t n = 32;
    auto it = req.params.find("n");
    if (it != req.params.end()) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || it->second.empty()) {
        HttpResponse bad;
        bad.status = 400;
        bad.body = "n must be a non-negative integer\n";
        return bad;
      }
      n = static_cast<size_t>(v);
    }
    std::vector<FlightRecord> records = FlightRecorder::Global().Records();
    const size_t begin = records.size() > n ? records.size() - n : 0;
    std::vector<std::string> rows;
    rows.reserve(records.size() - begin);
    for (size_t i = begin; i < records.size(); ++i) {
      rows.push_back(records[i].Json());
    }
    json::ObjectWriter out;
    out.Int("total_in_ring", records.size())
        .Raw("flight_records", json::Array(rows));
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = out.Render() + "\n";
    return resp;
  });

  server->RegisterHandler(
      "/varz", [filled, uptime_seconds, server](const HttpRequest&) {
        json::ObjectWriter out;
        out.Str("role", filled.role)
            .Str("git_sha", filled.git_sha)
            .Str("build_type", filled.build_type)
            .Str("simd_backend", filled.simd_backend)
            .Str("params_fingerprint", filled.params_fingerprint)
            .Str("process_epoch", trace::TraceIdHex(trace::ProcessEpoch()))
            .Int("pid", static_cast<uint64_t>(getpid()))
            .Num("uptime_seconds", uptime_seconds());
        std::vector<std::string> endpoints;
        for (const std::string& p : server->RegisteredPaths()) {
          endpoints.push_back("\"" + json::Escape(p) + "\"");
        }
        out.Raw("endpoints", json::Array(endpoints));
        HttpResponse resp;
        resp.content_type = "application/json";
        resp.body = out.Render() + "\n";
        return resp;
      });
}

StatusOr<HttpGetResult> HttpGet(const std::string& host, uint16_t port,
                                const std::string& path_and_query,
                                int timeout_ms) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::milliseconds(timeout_ms);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return InvalidArgumentError("host must be an IPv4 address: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return UnavailableError("connect " + host + ":" + std::to_string(port) +
                            ": " + err);
  }
  const std::string request = "GET " + path_and_query +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!WriteAll(fd, request)) {
    close(fd);
    return UnavailableError("request write failed");
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      close(fd);
      return DeadlineExceededError("scrape timed out after " +
                                   std::to_string(timeout_ms) + "ms");
    }
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    struct pollfd pfd = {fd, POLLIN, 0};
    const int pr = poll(&pfd, 1, wait_ms);
    if (pr <= 0) {
      close(fd);
      return DeadlineExceededError("scrape timed out waiting for response");
    }
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      close(fd);
      return UnavailableError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) break;  // server closed: response complete
    raw.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.size() < 12 ||
      raw.compare(0, 5, "HTTP/") != 0) {
    return DataLossError("malformed HTTP response");
  }
  HttpGetResult result;
  // Status code: the token after the first space of the status line.
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    return DataLossError("malformed HTTP status line");
  }
  result.status = std::atoi(raw.c_str() + sp + 1);
  result.body = raw.substr(head_end + 4);
  result.latency_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  return result;
}

}  // namespace obs
}  // namespace sknn
