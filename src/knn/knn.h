#ifndef SKNN_KNN_KNN_H_
#define SKNN_KNN_KNN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "data/dataset.h"

// Plaintext exact k-NN: the correctness reference for both secure
// protocols, plus the streaming top-k selection that Party B runs on
// decrypted masked distances (Algorithm 2 of the paper).

namespace sknn {
namespace knn {

struct Neighbor {
  size_t index;
  uint64_t squared_distance;
};

// Exact k nearest neighbours by squared Euclidean distance, ties broken by
// lower index (deterministic). k is clamped to the dataset size.
StatusOr<std::vector<Neighbor>> PlaintextKnn(const data::Dataset& data,
                                             const std::vector<uint64_t>& query,
                                             size_t k);

// Streaming selection of the k smallest values (paper's Algorithm 2: scan
// with a size-k window replacing the current maximum). Returns the indices
// of the k smallest values in `values`, in the order the algorithm emits
// them. Ties resolve to the earliest-seen value, matching the paper's
// strict `<` comparison.
std::vector<size_t> SelectKSmallest(const std::vector<uint64_t>& values,
                                    size_t k);

}  // namespace knn
}  // namespace sknn

#endif  // SKNN_KNN_KNN_H_
