#include "knn/knn.h"

#include <algorithm>

namespace sknn {
namespace knn {

StatusOr<std::vector<Neighbor>> PlaintextKnn(const data::Dataset& data,
                                             const std::vector<uint64_t>& query,
                                             size_t k) {
  if (query.size() != data.dims()) {
    return InvalidArgumentError("query dimension mismatch");
  }
  if (k == 0) return InvalidArgumentError("k must be positive");
  k = std::min(k, data.num_points());
  std::vector<Neighbor> all(data.num_points());
  for (size_t i = 0; i < data.num_points(); ++i) {
    all[i] = {i, data::SquaredDistance(data, i, query)};
  }
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k), all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      if (a.squared_distance != b.squared_distance) {
                        return a.squared_distance < b.squared_distance;
                      }
                      return a.index < b.index;
                    });
  all.resize(k);
  return all;
}

std::vector<size_t> SelectKSmallest(const std::vector<uint64_t>& values,
                                    size_t k) {
  k = std::min(k, values.size());
  if (k == 0) return {};
  std::vector<uint64_t> nn(k);
  std::vector<size_t> nn_index(k);
  for (size_t i = 0; i < k; ++i) {
    nn[i] = values[i];
    nn_index[i] = i;
  }
  for (size_t i = k; i < values.size(); ++i) {
    // Find the current maximum in the window.
    size_t max_pos = 0;
    for (size_t j = 1; j < k; ++j) {
      if (nn[j] > nn[max_pos]) max_pos = j;
    }
    if (values[i] < nn[max_pos]) {
      nn[max_pos] = values[i];
      nn_index[max_pos] = i;
    }
  }
  return nn_index;
}

}  // namespace knn
}  // namespace sknn
