#ifndef SKNN_MATH_PRIME_H_
#define SKNN_MATH_PRIME_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

// Word-size primality testing and NTT-friendly prime generation.

namespace sknn {

// Deterministic Miller–Rabin for 64-bit integers (fixed witness set proven
// complete below 3.3 * 10^24).
bool IsPrime(uint64_t n);

// Returns `count` distinct primes of exactly `bit_size` bits with
// p ≡ 1 (mod congruence), searching downward from 2^bit_size - 1.
// `exclude` lists primes that must not be returned (e.g. already used by
// another chain).
StatusOr<std::vector<uint64_t>> GenerateNttPrimes(
    int bit_size, uint64_t congruence, size_t count,
    const std::vector<uint64_t>& exclude = {});

// Finds a generator of the (cyclic) multiplicative group of Z_q (q prime),
// then returns an element of exact multiplicative order `order`;
// requires order | q-1.
StatusOr<uint64_t> FindPrimitiveRoot(uint64_t order, uint64_t q);

}  // namespace sknn

#endif  // SKNN_MATH_PRIME_H_
