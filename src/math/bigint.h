#ifndef SKNN_MATH_BIGINT_H_
#define SKNN_MATH_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"

// Arbitrary-precision unsigned integers, implemented from scratch (no GMP).
//
// This is the substrate for the Paillier cryptosystem used by the baseline
// protocol (Elmehdwi et al.) and for exact CRT reconstruction in the BGV
// noise estimator. Limbs are 64-bit, little-endian, normalized (no trailing
// zero limbs; zero is the empty limb vector).

namespace sknn {

class BigUint {
 public:
  // Zero.
  BigUint() = default;
  // From a 64-bit value.
  explicit BigUint(uint64_t v);
  // From little-endian limbs (normalized internally).
  explicit BigUint(std::vector<uint64_t> limbs);

  // Parses a decimal string (digits only). Fails on empty/invalid input.
  static StatusOr<BigUint> FromDecimal(const std::string& s);

  // ---- observers ----
  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  size_t limb_count() const { return limbs_.size(); }
  const std::vector<uint64_t>& limbs() const { return limbs_; }
  // Number of significant bits (0 for zero).
  size_t BitLength() const;
  bool GetBit(size_t i) const;
  // Value as uint64 (checked: must fit).
  uint64_t ToU64() const;
  bool FitsU64() const { return limbs_.size() <= 1; }
  std::string ToDecimal() const;

  // ---- comparison ----
  // <0, 0, >0 like memcmp.
  static int Compare(const BigUint& a, const BigUint& b);
  bool operator==(const BigUint& o) const { return Compare(*this, o) == 0; }
  bool operator!=(const BigUint& o) const { return Compare(*this, o) != 0; }
  bool operator<(const BigUint& o) const { return Compare(*this, o) < 0; }
  bool operator<=(const BigUint& o) const { return Compare(*this, o) <= 0; }
  bool operator>(const BigUint& o) const { return Compare(*this, o) > 0; }
  bool operator>=(const BigUint& o) const { return Compare(*this, o) >= 0; }

  // ---- arithmetic ----
  static BigUint Add(const BigUint& a, const BigUint& b);
  // a - b; requires a >= b.
  static BigUint Sub(const BigUint& a, const BigUint& b);
  static BigUint Mul(const BigUint& a, const BigUint& b);
  // Quotient and remainder (Knuth algorithm D); b must be nonzero.
  static void DivMod(const BigUint& a, const BigUint& b, BigUint* quotient,
                     BigUint* remainder);
  static BigUint Mod(const BigUint& a, const BigUint& m);
  BigUint ShiftLeft(size_t bits) const;
  BigUint ShiftRight(size_t bits) const;

  // ---- modular arithmetic ----
  static BigUint AddMod(const BigUint& a, const BigUint& b, const BigUint& m);
  static BigUint SubMod(const BigUint& a, const BigUint& b, const BigUint& m);
  static BigUint MulMod(const BigUint& a, const BigUint& b, const BigUint& m);
  // a^e mod m. Uses Montgomery exponentiation when m is odd.
  static BigUint PowMod(const BigUint& a, const BigUint& e, const BigUint& m);
  static BigUint Gcd(BigUint a, BigUint b);
  static BigUint Lcm(const BigUint& a, const BigUint& b);
  // Multiplicative inverse of a modulo m; error if gcd(a, m) != 1.
  static StatusOr<BigUint> InvMod(const BigUint& a, const BigUint& m);

  // ---- randomness / primes ----
  // Uniform value with exactly `bits` bits (top bit set).
  static BigUint RandomBits(size_t bits, Chacha20Rng* rng);
  // Uniform value in [0, bound).
  static BigUint RandomBelow(const BigUint& bound, Chacha20Rng* rng);
  // Miller–Rabin with `rounds` random witnesses.
  static bool IsProbablePrime(const BigUint& n, Chacha20Rng* rng,
                              int rounds = 32);
  // Random prime with exactly `bits` bits.
  static BigUint RandomPrime(size_t bits, Chacha20Rng* rng);

  // ---- CRT ----
  // Reconstructs x in [0, prod(moduli)) from residues x mod m_i (the m_i
  // must be pairwise coprime 64-bit values).
  static BigUint CrtReconstruct(const std::vector<uint64_t>& residues,
                                const std::vector<uint64_t>& moduli);

  // Reduces this value modulo a word-size modulus.
  uint64_t ModU64(uint64_t m) const;

 private:
  void Normalize();

  std::vector<uint64_t> limbs_;
};

// Montgomery context for repeated modular multiplication/exponentiation
// with a fixed odd modulus (the hot path of Paillier).
class MontgomeryCtx {
 public:
  // `modulus` must be odd and > 1.
  explicit MontgomeryCtx(const BigUint& modulus);

  const BigUint& modulus() const { return n_; }

  // Converts into/out of Montgomery form.
  BigUint ToMont(const BigUint& a) const;
  BigUint FromMont(const BigUint& a) const;
  // Product in Montgomery form.
  BigUint MulMont(const BigUint& a, const BigUint& b) const;
  // a^e mod n for ordinary-form a; returns ordinary form.
  BigUint PowMod(const BigUint& a, const BigUint& e) const;

 private:
  BigUint Redc(const BigUint& t) const;

  BigUint n_;
  size_t k_;            // limb count of n
  uint64_t n_inv_neg_;  // -n^{-1} mod 2^64
  BigUint r_mod_n_;     // R mod n, R = 2^{64k}
  BigUint r2_mod_n_;    // R^2 mod n
};

}  // namespace sknn

#endif  // SKNN_MATH_BIGINT_H_
