#ifndef SKNN_MATH_NTT_H_
#define SKNN_MATH_NTT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "math/mod_arith.h"
#include "math/simd/kernels.h"

// Negacyclic number-theoretic transform over Z_q[x]/(x^n + 1).
//
// q must be a prime with q ≡ 1 (mod 2n) so that a primitive 2n-th root of
// unity ψ exists. The forward transform (Cooley–Tukey) maps coefficient
// order to bit-reversed evaluation order; the inverse (Gentleman–Sande) maps
// back. Pointwise products in the transformed domain realise negacyclic
// convolution. The formulation follows Longa–Naehrig with Shoup-precomputed
// twiddles and Harvey lazy reduction: butterflies keep values in [0, 4q)
// (forward) / [0, 2q) (inverse) and defer the final reduction to a single
// pass, which requires 4q < 2^64, i.e. q < 2^62 (see DESIGN.md §math).

namespace sknn {

class NttTables {
 public:
  // Builds tables for degree n (power of two, >= 4) and modulus q.
  // Fails if q is not prime or q != 1 mod 2n.
  static StatusOr<NttTables> Create(size_t n, uint64_t q);

  size_t n() const { return n_; }
  const Modulus& modulus() const { return modulus_; }
  // The primitive 2n-th root of unity used by the tables.
  uint64_t psi() const { return psi_; }

  // In-place forward negacyclic NTT. `a` has n entries, each < q; the
  // output is fully reduced (< q). Internally lazy: butterflies run in
  // [0, 4q) with one reduction pass at the end.
  void ForwardNtt(uint64_t* a) const;
  // In-place inverse negacyclic NTT (output < q). The n^{-1} scaling is
  // folded into the last butterfly stage.
  void InverseNtt(uint64_t* a) const;

  void ForwardNtt(std::vector<uint64_t>* a) const { ForwardNtt(a->data()); }
  void InverseNtt(std::vector<uint64_t>* a) const { InverseNtt(a->data()); }

  // Default-constructed tables are empty placeholders to be assigned from
  // Create(); calling the transforms on one is a programming error.
  NttTables() = default;

  // Twiddle tables packaged for the simd:: kernels (pointers into this
  // object; valid while it lives).
  simd::NttArgs KernelArgs() const;

 private:
  size_t n_ = 0;
  int log_n_ = 0;
  Modulus modulus_;
  uint64_t psi_ = 0;
  // psi_rev_[i] = psi^{bitreverse(i, log n)} and Shoup companion.
  std::vector<uint64_t> psi_rev_;
  std::vector<uint64_t> psi_rev_shoup_;
  // psi_inv_rev_[i] = psi^{-bitreverse(i, log n)} and Shoup companion.
  std::vector<uint64_t> psi_inv_rev_;
  std::vector<uint64_t> psi_inv_rev_shoup_;
  uint64_t n_inv_ = 0;
  uint64_t n_inv_shoup_ = 0;
  // psi_inv_rev_[1] * n^{-1}: the single twiddle of the last inverse stage
  // with the n^{-1} multiply folded in.
  uint64_t psi_inv_n_scaled_ = 0;
  uint64_t psi_inv_n_scaled_shoup_ = 0;
};

// Reverses the low `bits` bits of x.
inline uint64_t ReverseBits(uint64_t x, int bits) {
  uint64_t r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | ((x >> i) & 1);
  }
  return r;
}

// Reference O(n^2) negacyclic convolution for testing: out = a * b mod
// (x^n + 1, q).
void NaiveNegacyclicMultiply(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b, uint64_t q,
                             std::vector<uint64_t>* out);

}  // namespace sknn

#endif  // SKNN_MATH_NTT_H_
