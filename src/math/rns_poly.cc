#include "math/rns_poly.h"

#include <cstring>

#include "common/logging.h"
#include "math/simd/kernels.h"

namespace sknn {

StatusOr<RnsBase> RnsBase::Create(size_t n,
                                  const std::vector<uint64_t>& primes) {
  if (primes.empty()) return InvalidArgumentError("RnsBase needs >= 1 prime");
  RnsBase base;
  base.n_ = n;
  base.moduli_.reserve(primes.size());
  base.ntt_.reserve(primes.size());
  for (uint64_t q : primes) {
    SKNN_ASSIGN_OR_RETURN(NttTables tables, NttTables::Create(n, q));
    base.moduli_.emplace_back(q);
    base.ntt_.push_back(std::move(tables));
  }
  base.galois_cache_ = std::make_unique<GaloisCache>();
  return base;
}

const std::vector<uint32_t>& RnsBase::GaloisPermTable(
    uint64_t galois_elt) const {
  SKNN_CHECK_EQ(galois_elt & 1, 1u);
  const uint64_t two_n = 2 * static_cast<uint64_t>(n_);
  SKNN_CHECK_LT(galois_elt, two_n);
  GaloisCache* cache = galois_cache_.get();
  {
    std::lock_guard<std::mutex> lock(cache->mu);
    auto it = cache->tables.find(galois_elt);
    if (it != cache->tables.end()) return it->second;
  }
  // x^i -> x^(i * elt mod 2n), with x^(n + k) = -x^k. Walk i * elt mod 2n
  // incrementally to avoid the per-element multiply + modulo.
  std::vector<uint32_t> table(n_);
  uint64_t target = 0;
  for (size_t i = 0; i < n_; ++i) {
    if (target < n_) {
      table[i] = static_cast<uint32_t>(target << 1);
    } else {
      table[i] = static_cast<uint32_t>(((target - n_) << 1) | 1);
    }
    target += galois_elt;
    if (target >= two_n) target -= two_n;
  }
  std::lock_guard<std::mutex> lock(cache->mu);
  // Unordered_map references to mapped values stay valid across rehash, so
  // handing out a reference under concurrent insertion is safe.
  return cache->tables.emplace(galois_elt, std::move(table)).first->second;
}

const std::vector<uint32_t>& RnsBase::GaloisPermTableNtt(
    uint64_t galois_elt) const {
  SKNN_CHECK_EQ(galois_elt & 1, 1u);
  const uint64_t two_n = 2 * static_cast<uint64_t>(n_);
  SKNN_CHECK_LT(galois_elt, two_n);
  GaloisCache* cache = galois_cache_.get();
  {
    std::lock_guard<std::mutex> lock(cache->mu);
    auto it = cache->ntt_tables.find(galois_elt);
    if (it != cache->ntt_tables.end()) return it->second;
  }
  // NTT slot i (bit-reversed order) holds the evaluation at the primitive
  // 2n-th root psi^(2*rev(i)+1). tau(a)(y) = a(y^elt), so slot i of
  // NTT(tau(a)) is a(psi^((2*rev(i)+1)*elt mod 2n)) — i.e. the input slot
  // whose exponent is that product. No sign flips: the automorphism
  // permutes the evaluation points, it never leaves the root set.
  int log_n = 0;
  while ((size_t{1} << log_n) < n_) ++log_n;
  std::vector<uint32_t> table(n_);
  for (size_t i = 0; i < n_; ++i) {
    const uint64_t rev = ReverseBits(static_cast<uint64_t>(i), log_n);
    const uint64_t exponent = ((2 * rev + 1) * galois_elt) & (two_n - 1);
    table[i] = static_cast<uint32_t>(ReverseBits((exponent - 1) >> 1, log_n));
  }
  std::lock_guard<std::mutex> lock(cache->mu);
  return cache->ntt_tables.emplace(galois_elt, std::move(table)).first->second;
}

bool RnsPoly::IsZero() const {
  for (uint64_t v : data_) {
    if (v != 0) return false;
  }
  return true;
}

RnsPoly RnsPoly::Prefix(size_t components) const {
  SKNN_CHECK_LE(components, components_);
  RnsPoly out;
  out.n_ = n_;
  out.components_ = components;
  out.ntt_form_ = ntt_form_;
  out.data_ = BufferPool::Acquire(components * n_);
  std::memcpy(out.data_.data(), data_.data(),
              components * n_ * sizeof(uint64_t));
  return out;
}

RnsPoly ZeroPoly(size_t n, size_t components, bool ntt_form) {
  return RnsPoly(n, components, ntt_form);
}

namespace {
void CheckShapes(const RnsPoly& a, const RnsPoly& b) {
  SKNN_CHECK_EQ(a.n(), b.n());
  SKNN_CHECK_EQ(a.num_components(), b.num_components());
  SKNN_CHECK_EQ(a.ntt_form(), b.ntt_form());
}
}  // namespace

void AddInplace(RnsPoly* a, const RnsPoly& b, const RnsBase& base) {
  CheckShapes(*a, b);
  const size_t n = a->n();
  const simd::KernelTable& kernels = simd::ActiveKernels();
  for (size_t i = 0; i < a->num_components(); ++i) {
    kernels.mod_add(a->comp(i), b.comp(i), n, base.modulus(i).value());
  }
}

void SubInplace(RnsPoly* a, const RnsPoly& b, const RnsBase& base) {
  CheckShapes(*a, b);
  const size_t n = a->n();
  const simd::KernelTable& kernels = simd::ActiveKernels();
  for (size_t i = 0; i < a->num_components(); ++i) {
    kernels.mod_sub(a->comp(i), b.comp(i), n, base.modulus(i).value());
  }
}

void NegateInplace(RnsPoly* a, const RnsBase& base) {
  const size_t n = a->n();
  const simd::KernelTable& kernels = simd::ActiveKernels();
  for (size_t i = 0; i < a->num_components(); ++i) {
    kernels.mod_neg(a->comp(i), n, base.modulus(i).value());
  }
}

RnsPoly MulPointwise(const RnsPoly& a, const RnsPoly& b, const RnsBase& base) {
  RnsPoly out = a;
  MulPointwiseInplace(&out, b, base);
  return out;
}

void MulPointwiseInplace(RnsPoly* a, const RnsPoly& b, const RnsBase& base) {
  CheckShapes(*a, b);
  SKNN_CHECK(a->ntt_form());
  const size_t n = a->n();
  const simd::KernelTable& kernels = simd::ActiveKernels();
  for (size_t i = 0; i < a->num_components(); ++i) {
    const Modulus& mod = base.modulus(i);
    kernels.mod_mul(a->comp(i), b.comp(i), n, mod.value(), mod.ratio_hi(),
                    mod.ratio_lo());
  }
}

void AddMulInplace(RnsPoly* a, const RnsPoly& b, const RnsPoly& c,
                   const RnsBase& base) {
  CheckShapes(b, c);
  SKNN_CHECK_EQ(a->num_components(), b.num_components());
  SKNN_CHECK(a->ntt_form() && b.ntt_form());
  const size_t n = a->n();
  const simd::KernelTable& kernels = simd::ActiveKernels();
  for (size_t i = 0; i < a->num_components(); ++i) {
    const Modulus& mod = base.modulus(i);
    kernels.mod_add_mul(a->comp(i), b.comp(i), c.comp(i), n, mod.value(),
                        mod.ratio_hi(), mod.ratio_lo());
  }
}

void MulScalarInplace(RnsPoly* a,
                      const std::vector<uint64_t>& scalar_per_prime,
                      const RnsBase& base) {
  SKNN_CHECK_GE(scalar_per_prime.size(), a->num_components());
  const size_t n = a->n();
  const simd::KernelTable& kernels = simd::ActiveKernels();
  for (size_t i = 0; i < a->num_components(); ++i) {
    const uint64_t q = base.modulus(i).value();
    const uint64_t s = scalar_per_prime[i];
    kernels.mod_mul_scalar(a->comp(i), n, s, ShoupPrecompute(s, q), q);
  }
}

void ToNttInplace(RnsPoly* a, const RnsBase& base) {
  if (a->ntt_form()) return;
  const size_t comps = a->num_components();
  ThreadPool* pool = base.thread_pool();
  if (pool != nullptr && comps > 1) {
    pool->ParallelFor(0, comps,
                      [&](size_t i) { base.ntt(i).ForwardNtt(a->comp(i)); });
  } else {
    for (size_t i = 0; i < comps; ++i) base.ntt(i).ForwardNtt(a->comp(i));
  }
  a->set_ntt_form(true);
}

void FromNttInplace(RnsPoly* a, const RnsBase& base) {
  if (!a->ntt_form()) return;
  const size_t comps = a->num_components();
  ThreadPool* pool = base.thread_pool();
  if (pool != nullptr && comps > 1) {
    pool->ParallelFor(0, comps,
                      [&](size_t i) { base.ntt(i).InverseNtt(a->comp(i)); });
  } else {
    for (size_t i = 0; i < comps; ++i) base.ntt(i).InverseNtt(a->comp(i));
  }
  a->set_ntt_form(false);
}

RnsPoly ApplyGaloisCoeff(const RnsPoly& a, uint64_t galois_elt,
                         const RnsBase& base) {
  SKNN_CHECK(!a.ntt_form());
  const size_t n = a.n();
  const std::vector<uint32_t>& table = base.GaloisPermTable(galois_elt);
  RnsPoly out(n, a.num_components(), /*ntt_form=*/false);
  for (size_t c = 0; c < a.num_components(); ++c) {
    const uint64_t q = base.modulus(c).value();
    const uint64_t* __restrict src = a.comp(c);
    uint64_t* __restrict dst = out.comp(c);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t e = table[i];
      const uint64_t v = src[i];
      dst[e >> 1] = (e & 1) == 0 ? v : (v == 0 ? 0 : q - v);
    }
  }
  return out;
}

RnsPoly ApplyGaloisNtt(const RnsPoly& a, uint64_t galois_elt,
                       const RnsBase& base) {
  SKNN_CHECK(a.ntt_form());
  const size_t n = a.n();
  const std::vector<uint32_t>& table = base.GaloisPermTableNtt(galois_elt);
  const uint32_t* __restrict perm = table.data();
  RnsPoly out(n, a.num_components(), /*ntt_form=*/true);
  for (size_t c = 0; c < a.num_components(); ++c) {
    const uint64_t* __restrict src = a.comp(c);
    uint64_t* __restrict dst = out.comp(c);
    for (size_t i = 0; i < n; ++i) dst[i] = src[perm[i]];
  }
  return out;
}

}  // namespace sknn
