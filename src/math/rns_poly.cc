#include "math/rns_poly.h"

#include "common/logging.h"

namespace sknn {

StatusOr<RnsBase> RnsBase::Create(size_t n,
                                  const std::vector<uint64_t>& primes) {
  if (primes.empty()) return InvalidArgumentError("RnsBase needs >= 1 prime");
  RnsBase base;
  base.n_ = n;
  base.moduli_.reserve(primes.size());
  base.ntt_.reserve(primes.size());
  for (uint64_t q : primes) {
    SKNN_ASSIGN_OR_RETURN(NttTables tables, NttTables::Create(n, q));
    base.moduli_.emplace_back(q);
    base.ntt_.push_back(std::move(tables));
  }
  return base;
}

bool RnsPoly::IsZero() const {
  for (const auto& c : comp) {
    for (uint64_t v : c) {
      if (v != 0) return false;
    }
  }
  return true;
}

RnsPoly ZeroPoly(size_t n, size_t components, bool ntt_form) {
  RnsPoly p;
  p.n = n;
  p.ntt_form = ntt_form;
  p.comp.assign(components, std::vector<uint64_t>(n, 0));
  return p;
}

namespace {
void CheckShapes(const RnsPoly& a, const RnsPoly& b) {
  SKNN_CHECK_EQ(a.n, b.n);
  SKNN_CHECK_EQ(a.num_components(), b.num_components());
  SKNN_CHECK_EQ(a.ntt_form, b.ntt_form);
}
}  // namespace

void AddInplace(RnsPoly* a, const RnsPoly& b, const RnsBase& base) {
  CheckShapes(*a, b);
  for (size_t i = 0; i < a->num_components(); ++i) {
    const uint64_t q = base.modulus(i).value();
    uint64_t* av = a->comp[i].data();
    const uint64_t* bv = b.comp[i].data();
    for (size_t j = 0; j < a->n; ++j) av[j] = AddMod(av[j], bv[j], q);
  }
}

void SubInplace(RnsPoly* a, const RnsPoly& b, const RnsBase& base) {
  CheckShapes(*a, b);
  for (size_t i = 0; i < a->num_components(); ++i) {
    const uint64_t q = base.modulus(i).value();
    uint64_t* av = a->comp[i].data();
    const uint64_t* bv = b.comp[i].data();
    for (size_t j = 0; j < a->n; ++j) av[j] = SubMod(av[j], bv[j], q);
  }
}

void NegateInplace(RnsPoly* a, const RnsBase& base) {
  for (size_t i = 0; i < a->num_components(); ++i) {
    const uint64_t q = base.modulus(i).value();
    uint64_t* av = a->comp[i].data();
    for (size_t j = 0; j < a->n; ++j) av[j] = NegMod(av[j], q);
  }
}

RnsPoly MulPointwise(const RnsPoly& a, const RnsPoly& b, const RnsBase& base) {
  RnsPoly out = a;
  MulPointwiseInplace(&out, b, base);
  return out;
}

void MulPointwiseInplace(RnsPoly* a, const RnsPoly& b, const RnsBase& base) {
  CheckShapes(*a, b);
  SKNN_CHECK(a->ntt_form);
  for (size_t i = 0; i < a->num_components(); ++i) {
    const Modulus& mod = base.modulus(i);
    uint64_t* av = a->comp[i].data();
    const uint64_t* bv = b.comp[i].data();
    for (size_t j = 0; j < a->n; ++j) av[j] = mod.MulMod(av[j], bv[j]);
  }
}

void AddMulInplace(RnsPoly* a, const RnsPoly& b, const RnsPoly& c,
                   const RnsBase& base) {
  CheckShapes(b, c);
  SKNN_CHECK_EQ(a->num_components(), b.num_components());
  SKNN_CHECK(a->ntt_form && b.ntt_form);
  for (size_t i = 0; i < a->num_components(); ++i) {
    const Modulus& mod = base.modulus(i);
    const uint64_t q = mod.value();
    uint64_t* av = a->comp[i].data();
    const uint64_t* bv = b.comp[i].data();
    const uint64_t* cv = c.comp[i].data();
    for (size_t j = 0; j < a->n; ++j) {
      av[j] = AddMod(av[j], mod.MulMod(bv[j], cv[j]), q);
    }
  }
}

void MulScalarInplace(RnsPoly* a,
                      const std::vector<uint64_t>& scalar_per_prime,
                      const RnsBase& base) {
  SKNN_CHECK_GE(scalar_per_prime.size(), a->num_components());
  for (size_t i = 0; i < a->num_components(); ++i) {
    const Modulus& mod = base.modulus(i);
    const uint64_t s = scalar_per_prime[i];
    const uint64_t s_shoup = ShoupPrecompute(s, mod.value());
    uint64_t* av = a->comp[i].data();
    for (size_t j = 0; j < a->n; ++j) {
      av[j] = MulModShoup(av[j], s, s_shoup, mod.value());
    }
  }
}

void ToNttInplace(RnsPoly* a, const RnsBase& base) {
  if (a->ntt_form) return;
  for (size_t i = 0; i < a->num_components(); ++i) {
    base.ntt(i).ForwardNtt(a->comp[i].data());
  }
  a->ntt_form = true;
}

void FromNttInplace(RnsPoly* a, const RnsBase& base) {
  if (!a->ntt_form) return;
  for (size_t i = 0; i < a->num_components(); ++i) {
    base.ntt(i).InverseNtt(a->comp[i].data());
  }
  a->ntt_form = false;
}

RnsPoly ApplyGaloisCoeff(const RnsPoly& a, uint64_t galois_elt,
                         const RnsBase& base) {
  SKNN_CHECK(!a.ntt_form);
  SKNN_CHECK_EQ(galois_elt & 1, 1u);
  const size_t n = a.n;
  const uint64_t two_n = 2 * static_cast<uint64_t>(n);
  SKNN_CHECK_LT(galois_elt, two_n);
  RnsPoly out = ZeroPoly(n, a.num_components(), /*ntt_form=*/false);
  for (size_t c = 0; c < a.num_components(); ++c) {
    const uint64_t q = base.modulus(c).value();
    for (size_t i = 0; i < n; ++i) {
      const uint64_t target = (static_cast<uint64_t>(i) * galois_elt) % two_n;
      const uint64_t v = a.comp[c][i];
      if (target < n) {
        out.comp[c][target] = v;
      } else {
        out.comp[c][target - n] = NegMod(v, q);
      }
    }
  }
  return out;
}

}  // namespace sknn
