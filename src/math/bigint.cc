#include "math/bigint.h"

#include <algorithm>

#include "common/logging.h"
#include "common/u128.h"
#include "math/mod_arith.h"

namespace sknn {

BigUint::BigUint(uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

BigUint::BigUint(std::vector<uint64_t> limbs) : limbs_(std::move(limbs)) {
  Normalize();
}

void BigUint::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

StatusOr<BigUint> BigUint::FromDecimal(const std::string& s) {
  if (s.empty()) return InvalidArgumentError("empty decimal string");
  BigUint result;
  const BigUint ten(10);
  for (char c : s) {
    if (c < '0' || c > '9') {
      return InvalidArgumentError("invalid decimal digit");
    }
    result = Add(Mul(result, ten), BigUint(static_cast<uint64_t>(c - '0')));
  }
  return result;
}

size_t BigUint::BitLength() const {
  if (limbs_.empty()) return 0;
  uint64_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 64;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUint::GetBit(size_t i) const {
  size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

uint64_t BigUint::ToU64() const {
  SKNN_CHECK_LE(limbs_.size(), 1u);
  return limbs_.empty() ? 0 : limbs_[0];
}

std::string BigUint::ToDecimal() const {
  if (IsZero()) return "0";
  BigUint v = *this;
  const BigUint base(10000000000000000000ull);  // 10^19
  std::string out;
  while (!v.IsZero()) {
    BigUint q, r;
    DivMod(v, base, &q, &r);
    uint64_t chunk = r.IsZero() ? 0 : r.limbs_[0];
    for (int i = 0; i < 19; ++i) {
      out.push_back(static_cast<char>('0' + chunk % 10));
      chunk /= 10;
    }
    v = q;
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  std::reverse(out.begin(), out.end());
  return out;
}

int BigUint::Compare(const BigUint& a, const BigUint& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUint BigUint::Add(const BigUint& a, const BigUint& b) {
  const std::vector<uint64_t>& x = a.limbs_;
  const std::vector<uint64_t>& y = b.limbs_;
  std::vector<uint64_t> out(std::max(x.size(), y.size()) + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < out.size() - 1; ++i) {
    uint128_t s = static_cast<uint128_t>(i < x.size() ? x[i] : 0) +
                  (i < y.size() ? y[i] : 0) + carry;
    out[i] = Low64(s);
    carry = High64(s);
  }
  out.back() = carry;
  return BigUint(std::move(out));
}

BigUint BigUint::Sub(const BigUint& a, const BigUint& b) {
  SKNN_CHECK(Compare(a, b) >= 0);
  std::vector<uint64_t> out(a.limbs_.size(), 0);
  uint128_t br = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint128_t bi = (i < b.limbs_.size() ? b.limbs_[i] : 0);
    uint128_t lhs = a.limbs_[i];
    uint128_t rhs = bi + br;
    if (lhs >= rhs) {
      out[i] = Low64(lhs - rhs);
      br = 0;
    } else {
      out[i] = Low64((Make128(1, 0) + lhs) - rhs);
      br = 1;
    }
  }
  return BigUint(std::move(out));
}

namespace {

using Limbs = std::vector<uint64_t>;

// Schoolbook product of raw limb vectors (out sized a+b).
Limbs MulSchoolbook(const Limbs& a, const Limbs& b) {
  Limbs out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t ai = a[i];
    for (size_t j = 0; j < b.size(); ++j) {
      uint128_t cur = Mul64To128(ai, b[j]) + out[i + j] + carry;
      out[i + j] = Low64(cur);
      carry = High64(cur);
    }
    size_t k = i + b.size();
    while (carry != 0) {
      uint128_t cur = static_cast<uint128_t>(out[k]) + carry;
      out[k] = Low64(cur);
      carry = High64(cur);
      ++k;
    }
  }
  return out;
}

Limbs AddLimbs(const Limbs& a, const Limbs& b) {
  Limbs out(std::max(a.size(), b.size()) + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i + 1 < out.size(); ++i) {
    uint128_t s = static_cast<uint128_t>(i < a.size() ? a[i] : 0) +
                  (i < b.size() ? b[i] : 0) + carry;
    out[i] = Low64(s);
    carry = High64(s);
  }
  out.back() = carry;
  return out;
}

// a -= b in place; requires a >= b as integers.
void SubLimbsInplace(Limbs* a, const Limbs& b) {
  uint128_t borrow = 0;
  for (size_t i = 0; i < a->size(); ++i) {
    uint128_t rhs = (i < b.size() ? b[i] : 0) + borrow;
    uint128_t lhs = (*a)[i];
    if (lhs >= rhs) {
      (*a)[i] = Low64(lhs - rhs);
      borrow = 0;
    } else {
      (*a)[i] = Low64((Make128(1, 0) + lhs) - rhs);
      borrow = 1;
    }
  }
}

// out += src << (64 * shift_limbs), out pre-sized large enough.
void AddShiftedInplace(Limbs* out, const Limbs& src, size_t shift_limbs) {
  uint64_t carry = 0;
  size_t i = 0;
  for (; i < src.size(); ++i) {
    uint128_t s = static_cast<uint128_t>((*out)[shift_limbs + i]) + src[i] +
                  carry;
    (*out)[shift_limbs + i] = Low64(s);
    carry = High64(s);
  }
  while (carry != 0) {
    uint128_t s = static_cast<uint128_t>((*out)[shift_limbs + i]) + carry;
    (*out)[shift_limbs + i] = Low64(s);
    carry = High64(s);
    ++i;
  }
}

// Karatsuba threshold in limbs (~2048 bits); below it schoolbook wins.
constexpr size_t kKaratsubaLimbs = 24;

Limbs MulRecursive(const Limbs& a, const Limbs& b) {
  if (a.empty() || b.empty()) return {};
  if (std::min(a.size(), b.size()) < kKaratsubaLimbs) {
    return MulSchoolbook(a, b);
  }
  // Split both at m limbs: x = x1*B^m + x0.
  const size_t m = std::max(a.size(), b.size()) / 2;
  auto lo = [&](const Limbs& x) {
    return Limbs(x.begin(), x.begin() + static_cast<long>(
                                            std::min(m, x.size())));
  };
  auto hi = [&](const Limbs& x) {
    return x.size() > m
               ? Limbs(x.begin() + static_cast<long>(m), x.end())
               : Limbs{};
  };
  Limbs a0 = lo(a), a1 = hi(a), b0 = lo(b), b1 = hi(b);
  Limbs z0 = MulRecursive(a0, b0);
  Limbs z2 = MulRecursive(a1, b1);
  Limbs mid = MulRecursive(AddLimbs(a0, a1), AddLimbs(b0, b1));
  SubLimbsInplace(&mid, z0);
  SubLimbsInplace(&mid, z2);
  Limbs out(a.size() + b.size() + 1, 0);
  AddShiftedInplace(&out, z0, 0);
  AddShiftedInplace(&out, mid, m);
  AddShiftedInplace(&out, z2, 2 * m);
  return out;
}

}  // namespace

BigUint BigUint::Mul(const BigUint& a, const BigUint& b) {
  if (a.IsZero() || b.IsZero()) return BigUint();
  return BigUint(MulRecursive(a.limbs_, b.limbs_));
}

BigUint BigUint::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) return bits == 0 ? *this : BigUint(limbs_);
  const size_t limb_shift = bits / 64;
  const size_t bit_shift = bits % 64;
  std::vector<uint64_t> out(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out[i + limb_shift] |= bit_shift == 0 ? limbs_[i] : (limbs_[i] << bit_shift);
    if (bit_shift != 0) {
      out[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  return BigUint(std::move(out));
}

BigUint BigUint::ShiftRight(size_t bits) const {
  const size_t limb_shift = bits / 64;
  const size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigUint();
  std::vector<uint64_t> out(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.size(); ++i) {
    uint64_t lo = limbs_[i + limb_shift];
    uint64_t hi = (i + limb_shift + 1 < limbs_.size()) ? limbs_[i + limb_shift + 1] : 0;
    out[i] = bit_shift == 0 ? lo : ((lo >> bit_shift) | (hi << (64 - bit_shift)));
  }
  return BigUint(std::move(out));
}

void BigUint::DivMod(const BigUint& a, const BigUint& b, BigUint* quotient,
                     BigUint* remainder) {
  SKNN_CHECK(!b.IsZero());
  if (Compare(a, b) < 0) {
    *quotient = BigUint();
    *remainder = a;
    return;
  }
  if (b.limbs_.size() == 1) {
    // Single-limb fast path.
    const uint64_t d = b.limbs_[0];
    std::vector<uint64_t> q(a.limbs_.size(), 0);
    uint128_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      uint128_t cur = (rem << 64) | a.limbs_[i];
      q[i] = static_cast<uint64_t>(cur / d);
      rem = cur % d;
    }
    *quotient = BigUint(std::move(q));
    *remainder = BigUint(static_cast<uint64_t>(rem));
    return;
  }
  // Knuth Algorithm D. Normalize so the top limb of the divisor has its
  // high bit set.
  size_t shift = 0;
  uint64_t top = b.limbs_.back();
  while ((top & (uint64_t{1} << 63)) == 0) {
    top <<= 1;
    ++shift;
  }
  BigUint u = a.ShiftLeft(shift);
  BigUint v = b.ShiftLeft(shift);
  const size_t n = v.limbs_.size();
  const size_t m = u.limbs_.size() >= n ? u.limbs_.size() - n : 0;
  std::vector<uint64_t> un(u.limbs_);
  un.resize(m + n + 1, 0);
  const std::vector<uint64_t>& vn = v.limbs_;
  std::vector<uint64_t> q(m + 1, 0);

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (un[j+n]*B + un[j+n-1]) / vn[n-1].
    uint128_t numerator = Make128(un[j + n], un[j + n - 1]);
    uint128_t q_hat = numerator / vn[n - 1];
    uint128_t r_hat = numerator % vn[n - 1];
    while (q_hat > UINT64_MAX ||
           (Mul64To128(static_cast<uint64_t>(q_hat), vn[n - 2]) >
            ((r_hat << 64) | un[j + n - 2]))) {
      q_hat -= 1;
      r_hat += vn[n - 1];
      if (r_hat > UINT64_MAX) break;
    }
    // Multiply and subtract: un[j..j+n] -= q_hat * vn.
    uint64_t qh = static_cast<uint64_t>(q_hat);
    uint128_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint128_t p = Mul64To128(qh, vn[i]) + carry;
      carry = High64(p);
      uint64_t plo = Low64(p);
      uint128_t sub = static_cast<uint128_t>(plo) + Low64(borrow);
      if (static_cast<uint128_t>(un[i + j]) >= sub) {
        un[i + j] = static_cast<uint64_t>(un[i + j] - Low64(sub));
        borrow = 0;
      } else {
        un[i + j] = Low64((Make128(1, 0) + un[i + j]) - sub);
        borrow = 1;
      }
    }
    uint128_t sub = static_cast<uint128_t>(carry) + Low64(borrow);
    bool negative = static_cast<uint128_t>(un[j + n]) < sub;
    un[j + n] = Low64(static_cast<uint128_t>(un[j + n]) - sub +
                      (negative ? Make128(1, 0) : uint128_t{0}));
    if (negative) {
      // q_hat was one too large: add back.
      qh -= 1;
      uint64_t c = 0;
      for (size_t i = 0; i < n; ++i) {
        uint128_t s = static_cast<uint128_t>(un[i + j]) + vn[i] + c;
        un[i + j] = Low64(s);
        c = High64(s);
      }
      un[j + n] += c;
    }
    q[j] = qh;
  }
  *quotient = BigUint(std::move(q));
  std::vector<uint64_t> rem(un.begin(), un.begin() + static_cast<long>(n));
  *remainder = BigUint(std::move(rem)).ShiftRight(shift);
}

BigUint BigUint::Mod(const BigUint& a, const BigUint& m) {
  BigUint q, r;
  DivMod(a, m, &q, &r);
  return r;
}

BigUint BigUint::AddMod(const BigUint& a, const BigUint& b, const BigUint& m) {
  return Mod(Add(a, b), m);
}

BigUint BigUint::SubMod(const BigUint& a, const BigUint& b, const BigUint& m) {
  BigUint am = Mod(a, m);
  BigUint bm = Mod(b, m);
  if (Compare(am, bm) >= 0) return Sub(am, bm);
  return Sub(Add(am, m), bm);
}

BigUint BigUint::MulMod(const BigUint& a, const BigUint& b, const BigUint& m) {
  return Mod(Mul(a, b), m);
}

BigUint BigUint::PowMod(const BigUint& a, const BigUint& e, const BigUint& m) {
  SKNN_CHECK(!m.IsZero());
  if (m.limbs().size() == 1 && m.limbs()[0] == 1) return BigUint();
  if (m.IsOdd()) {
    MontgomeryCtx ctx(m);
    return ctx.PowMod(a, e);
  }
  // Generic square-and-multiply for even moduli (rare path).
  BigUint base = Mod(a, m);
  BigUint result(1);
  const size_t bits = e.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = MulMod(result, result, m);
    if (e.GetBit(i)) result = MulMod(result, base, m);
  }
  return result;
}

BigUint BigUint::Gcd(BigUint a, BigUint b) {
  while (!b.IsZero()) {
    BigUint r = Mod(a, b);
    a = b;
    b = r;
  }
  return a;
}

BigUint BigUint::Lcm(const BigUint& a, const BigUint& b) {
  if (a.IsZero() || b.IsZero()) return BigUint();
  BigUint g = Gcd(a, b);
  BigUint q, r;
  DivMod(a, g, &q, &r);
  return Mul(q, b);
}

StatusOr<BigUint> BigUint::InvMod(const BigUint& a, const BigUint& m) {
  // Extended Euclid over signed values represented as (negative?, magnitude).
  struct Signed {
    bool neg = false;
    BigUint mag;
  };
  auto sub_signed = [](const Signed& x, const Signed& y) {
    // x - y
    Signed r;
    if (x.neg == y.neg) {
      if (Compare(x.mag, y.mag) >= 0) {
        r.mag = Sub(x.mag, y.mag);
        r.neg = x.neg;
      } else {
        r.mag = Sub(y.mag, x.mag);
        r.neg = !x.neg;
      }
    } else {
      r.mag = Add(x.mag, y.mag);
      r.neg = x.neg;
    }
    if (r.mag.IsZero()) r.neg = false;
    return r;
  };
  auto mul_signed = [](const Signed& x, const BigUint& k) {
    Signed r;
    r.mag = Mul(x.mag, k);
    r.neg = x.neg && !r.mag.IsZero();
    return r;
  };

  BigUint old_r = Mod(a, m);
  BigUint r = m;
  Signed old_s{false, BigUint(1)};
  Signed s{false, BigUint()};
  while (!r.IsZero()) {
    BigUint q, rem;
    DivMod(old_r, r, &q, &rem);
    BigUint next_r = rem;
    Signed next_s = sub_signed(old_s, mul_signed(s, q));
    old_r = r;
    r = next_r;
    old_s = s;
    s = next_s;
  }
  if (!(old_r.limbs().size() == 1 && old_r.limbs()[0] == 1)) {
    return InvalidArgumentError("InvMod: inputs are not coprime");
  }
  BigUint inv = Mod(old_s.mag, m);
  if (old_s.neg && !inv.IsZero()) inv = Sub(m, inv);
  return inv;
}

BigUint BigUint::RandomBits(size_t bits, Chacha20Rng* rng) {
  SKNN_CHECK_GE(bits, 1u);
  const size_t limbs = (bits + 63) / 64;
  std::vector<uint64_t> out(limbs);
  for (size_t i = 0; i < limbs; ++i) out[i] = rng->NextU64();
  const size_t top_bits = bits - (limbs - 1) * 64;
  if (top_bits < 64) out.back() &= (uint64_t{1} << top_bits) - 1;
  out.back() |= uint64_t{1} << (top_bits - 1);  // force exact bit length
  return BigUint(std::move(out));
}

BigUint BigUint::RandomBelow(const BigUint& bound, Chacha20Rng* rng) {
  SKNN_CHECK(!bound.IsZero());
  const size_t bits = bound.BitLength();
  const size_t limbs = (bits + 63) / 64;
  const size_t top_bits = bits - (limbs - 1) * 64;
  for (;;) {
    std::vector<uint64_t> out(limbs);
    for (size_t i = 0; i < limbs; ++i) out[i] = rng->NextU64();
    if (top_bits < 64) out.back() &= (uint64_t{1} << top_bits) - 1;
    BigUint candidate(std::move(out));
    if (Compare(candidate, bound) < 0) return candidate;
  }
}

bool BigUint::IsProbablePrime(const BigUint& n, Chacha20Rng* rng, int rounds) {
  if (n.limbs().size() == 1) {
    uint64_t v = n.limbs()[0];
    if (v < 2) return false;
    for (uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull}) {
      if (v % p == 0) return v == p;
    }
  }
  if (n.IsZero() || !n.IsOdd()) return false;
  // Trial division by small primes.
  for (uint64_t p : {3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull,
                     29ull, 31ull, 37ull, 41ull, 43ull, 47ull, 53ull, 59ull,
                     61ull, 67ull, 71ull, 73ull, 79ull, 83ull, 89ull, 97ull}) {
    if (n.ModU64(p) == 0) {
      return n.limbs().size() == 1 && n.limbs()[0] == p;
    }
  }
  const BigUint one(1);
  const BigUint n_minus_1 = Sub(n, one);
  // n-1 = d * 2^r
  size_t r = 0;
  BigUint d = n_minus_1;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++r;
  }
  MontgomeryCtx ctx(n);
  for (int round = 0; round < rounds; ++round) {
    BigUint a = Add(RandomBelow(Sub(n, BigUint(3)), rng), BigUint(2));
    BigUint x = ctx.PowMod(a, d);
    if (Compare(x, one) == 0 || Compare(x, n_minus_1) == 0) continue;
    bool composite = true;
    for (size_t i = 1; i < r; ++i) {
      x = MulMod(x, x, n);
      if (Compare(x, n_minus_1) == 0) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigUint BigUint::RandomPrime(size_t bits, Chacha20Rng* rng) {
  SKNN_CHECK_GE(bits, 8u);
  for (;;) {
    BigUint candidate = RandomBits(bits, rng);
    if (!candidate.IsOdd()) candidate = Add(candidate, BigUint(1));
    if (candidate.BitLength() != bits) continue;
    if (IsProbablePrime(candidate, rng)) return candidate;
  }
}

BigUint BigUint::CrtReconstruct(const std::vector<uint64_t>& residues,
                                const std::vector<uint64_t>& moduli) {
  SKNN_CHECK_EQ(residues.size(), moduli.size());
  BigUint result;
  BigUint product(1);
  for (size_t i = 0; i < moduli.size(); ++i) {
    product = Mul(product, BigUint(moduli[i]));
  }
  for (size_t i = 0; i < moduli.size(); ++i) {
    BigUint qi(moduli[i]);
    BigUint q_over_qi, dummy;
    DivMod(product, qi, &q_over_qi, &dummy);
    const uint64_t q_over_qi_mod_qi = q_over_qi.ModU64(moduli[i]);
    const uint64_t inv = InvModPrime(q_over_qi_mod_qi, moduli[i]);
    const uint64_t coeff =
        static_cast<uint64_t>(Mul64To128(residues[i] % moduli[i], inv) %
                              moduli[i]);
    result = Add(result, Mul(q_over_qi, BigUint(coeff)));
  }
  return Mod(result, product);
}

uint64_t BigUint::ModU64(uint64_t m) const {
  SKNN_CHECK_GE(m, 1u);
  uint128_t rem = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 64) | limbs_[i]) % m;
  }
  return static_cast<uint64_t>(rem);
}

MontgomeryCtx::MontgomeryCtx(const BigUint& modulus) : n_(modulus) {
  SKNN_CHECK(n_.IsOdd());
  SKNN_CHECK(n_.BitLength() > 1);
  k_ = n_.limb_count();
  // n' = -n^{-1} mod 2^64 via Newton iteration.
  const uint64_t n0 = n_.limbs()[0];
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;
  n_inv_neg_ = ~inv + 1;  // -inv mod 2^64
  BigUint r = BigUint(1).ShiftLeft(64 * k_);
  r_mod_n_ = BigUint::Mod(r, n_);
  r2_mod_n_ = BigUint::MulMod(r_mod_n_, r_mod_n_, n_);
}

BigUint MontgomeryCtx::Redc(const BigUint& t) const {
  // Multi-precision Montgomery reduction: returns t * R^{-1} mod n,
  // t < n * R.
  std::vector<uint64_t> a(t.limbs());
  a.resize(2 * k_ + 1, 0);
  const std::vector<uint64_t>& n = n_.limbs();
  for (size_t i = 0; i < k_; ++i) {
    const uint64_t m = a[i] * n_inv_neg_;
    uint64_t carry = 0;
    for (size_t j = 0; j < k_; ++j) {
      uint128_t cur = Mul64To128(m, n[j]) + a[i + j] + carry;
      a[i + j] = Low64(cur);
      carry = High64(cur);
    }
    size_t idx = i + k_;
    while (carry != 0) {
      uint128_t cur = static_cast<uint128_t>(a[idx]) + carry;
      a[idx] = Low64(cur);
      carry = High64(cur);
      ++idx;
    }
  }
  std::vector<uint64_t> hi(a.begin() + static_cast<long>(k_), a.end());
  BigUint result(std::move(hi));
  if (BigUint::Compare(result, n_) >= 0) result = BigUint::Sub(result, n_);
  return result;
}

BigUint MontgomeryCtx::ToMont(const BigUint& a) const {
  return Redc(BigUint::Mul(BigUint::Mod(a, n_), r2_mod_n_));
}

BigUint MontgomeryCtx::FromMont(const BigUint& a) const { return Redc(a); }

BigUint MontgomeryCtx::MulMont(const BigUint& a, const BigUint& b) const {
  return Redc(BigUint::Mul(a, b));
}

BigUint MontgomeryCtx::PowMod(const BigUint& a, const BigUint& e) const {
  BigUint base = ToMont(a);
  BigUint result = r_mod_n_;  // 1 in Montgomery form
  const size_t bits = e.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = MulMont(result, result);
    if (e.GetBit(i)) result = MulMont(result, base);
  }
  return FromMont(result);
}

}  // namespace sknn
