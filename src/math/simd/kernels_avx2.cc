#include "math/simd/kernels.h"

// AVX2 kernels: 4 lanes of 64-bit residues per vector. Compiled with
// -mavx2 for this file only (see src/math/CMakeLists.txt); only ever
// called after the dispatcher has checked CPUID. When the toolchain lacks
// -mavx2 the table getter returns null and dispatch skips the level.
//
// 64×64 products are built from 32-bit vpmuludq partials; conditional
// subtracts use the sign-flip trick for unsigned 64-bit compares (values
// reach 4q < 2^64, so signed compares would be wrong for q near 2^62).
// Every kernel reproduces the scalar arithmetic exactly — same partial
// products, same carries, same correction order — so results are
// bit-identical to the scalar table.

#if defined(SKNN_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include "math/mod_arith.h"

namespace sknn {
namespace simd {
namespace {

inline __m256i Set1(uint64_t v) {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

// All-ones lanes where a > b as unsigned 64-bit.
inline __m256i CmpGtU64(__m256i a, __m256i b) {
  const __m256i sign = Set1(uint64_t{1} << 63);
  return _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign),
                            _mm256_xor_si256(b, sign));
}

// x >= m ? x - m : x, per lane.
inline __m256i CondSub(__m256i x, __m256i m) {
  const __m256i t = _mm256_sub_epi64(x, m);
  const __m256i lt = CmpGtU64(m, x);
  return _mm256_add_epi64(t, _mm256_and_si256(m, lt));
}

// High 64 bits of the 128-bit product, per lane. Four vpmuludq partials;
// vpmuludq reads only the low 32 bits of each lane, so explicit masking is
// needed just where a partial feeds an addition.
inline __m256i MulHi64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i hl = _mm256_mul_epu32(a_hi, b);
  const __m256i lh = _mm256_mul_epu32(a, b_hi);
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i lo_mask = Set1(0xffffffffull);
  // cross = hl + (ll >> 32): <= (2^32-1)^2 + 2^32-1 < 2^64, no overflow.
  const __m256i cross = _mm256_add_epi64(hl, _mm256_srli_epi64(ll, 32));
  const __m256i cross2 =
      _mm256_add_epi64(lh, _mm256_and_si256(cross, lo_mask));
  return _mm256_add_epi64(
      hh, _mm256_add_epi64(_mm256_srli_epi64(cross, 32),
                           _mm256_srli_epi64(cross2, 32)));
}

// Low 64 bits of the product, per lane.
inline __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i hl = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  const __m256i lh = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  const __m256i cross = _mm256_add_epi64(hl, lh);
  return _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
}

// Full 128-bit product split into hi/lo words, per lane.
inline void Mul128(__m256i a, __m256i b, __m256i* hi, __m256i* lo) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i hl = _mm256_mul_epu32(a_hi, b);
  const __m256i lh = _mm256_mul_epu32(a, b_hi);
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i lo_mask = Set1(0xffffffffull);
  const __m256i cross = _mm256_add_epi64(hl, _mm256_srli_epi64(ll, 32));
  const __m256i cross2 =
      _mm256_add_epi64(lh, _mm256_and_si256(cross, lo_mask));
  *hi = _mm256_add_epi64(
      hh, _mm256_add_epi64(_mm256_srli_epi64(cross, 32),
                           _mm256_srli_epi64(cross2, 32)));
  // x_lo = (ll & mask) | (low32(cross2) << 32): bits [32, 64) of the
  // product are low32(ll>>32 + hl + lh) = low32(cross2).
  *lo = _mm256_add_epi64(_mm256_and_si256(ll, lo_mask),
                         _mm256_slli_epi64(cross2, 32));
}

// MulModShoupLazy per lane: x * s - MulHigh64(x, s_shoup) * q, in [0, 2q)
// for reduced s (any 64-bit x).
inline __m256i ShoupLazy(__m256i x, __m256i s, __m256i s_shoup, __m256i qv) {
  const __m256i hi = MulHi64(x, s_shoup);
  return _mm256_sub_epi64(MulLo64(x, s), MulLo64(hi, qv));
}

// 0/1 per lane where sum < addend (i.e. the 64-bit add carried out).
inline __m256i CarryOut(__m256i addend, __m256i sum) {
  return _mm256_srli_epi64(CmpGtU64(addend, sum), 63);
}

// Barrett (a*b) mod q mirroring Modulus::ReduceU128 lane-wise. q_hat
// underestimates the true quotient by at most 2 (full 2^128/q ratio), so
// r < 3q and two conditional subtracts fully reduce — identical to the
// scalar correction loop.
inline __m256i BarrettMulMod(__m256i av, __m256i bv, __m256i qv, __m256i rhi,
                             __m256i rlo) {
  __m256i x_hi, x_lo;
  Mul128(av, bv, &x_hi, &x_lo);
  const __m256i carry = MulHi64(x_lo, rlo);
  __m256i p_hi, p_lo;
  Mul128(x_lo, rhi, &p_hi, &p_lo);  // tmp3 = p_hi, tmp2 = p_lo
  const __m256i sum = _mm256_add_epi64(p_lo, carry);
  const __m256i carry2 = CarryOut(p_lo, sum);
  __m256i p2_hi, p2_lo;
  Mul128(x_hi, rlo, &p2_hi, &p2_lo);
  const __m256i sum2 = _mm256_add_epi64(p2_lo, sum);
  const __m256i carry3 = CarryOut(p2_lo, sum2);
  const __m256i q_hat = _mm256_add_epi64(
      MulLo64(x_hi, rhi),
      _mm256_add_epi64(_mm256_add_epi64(p_hi, carry2),
                       _mm256_add_epi64(p2_hi, carry3)));
  __m256i r = _mm256_sub_epi64(x_lo, MulLo64(q_hat, qv));
  r = CondSub(r, qv);
  r = CondSub(r, qv);
  return r;
}

inline __m256i Load(const uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void Store(uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

constexpr size_t kWidth = 4;

void NttForwardAvx2(const NttArgs& args, uint64_t* a) {
  const size_t n = args.n;
  const uint64_t q = args.q;
  const uint64_t two_q = q << 1;
  const __m256i qv = Set1(q);
  const __m256i two_qv = Set1(two_q);
  size_t t = n;
  for (size_t m = 1; m < n; m <<= 1) {
    t >>= 1;
    if (t >= kWidth) {
      for (size_t i = 0; i < m; ++i) {
        const __m256i sv = Set1(args.psi_rev[m + i]);
        const __m256i sshv = Set1(args.psi_rev_shoup[m + i]);
        uint64_t* x = a + 2 * i * t;
        uint64_t* y = x + t;
        for (size_t j = 0; j < t; j += kWidth) {
          const __m256i u = CondSub(Load(x + j), two_qv);
          const __m256i v = ShoupLazy(Load(y + j), sv, sshv, qv);
          Store(x + j, _mm256_add_epi64(u, v));
          Store(y + j,
                _mm256_sub_epi64(_mm256_add_epi64(u, two_qv), v));
        }
      }
    } else {
      for (size_t i = 0; i < m; ++i) {
        const uint64_t s = args.psi_rev[m + i];
        const uint64_t s_shoup = args.psi_rev_shoup[m + i];
        uint64_t* __restrict x = a + 2 * i * t;
        uint64_t* __restrict y = x + t;
        for (size_t j = 0; j < t; ++j) {
          uint64_t u = x[j];
          if (u >= two_q) u -= two_q;
          const uint64_t v = MulModShoupLazy(y[j], s, s_shoup, q);
          x[j] = u + v;
          y[j] = u + two_q - v;
        }
      }
    }
  }
  size_t j = 0;
  for (; j + kWidth <= n; j += kWidth) {
    __m256i v = Load(a + j);
    v = CondSub(v, two_qv);
    v = CondSub(v, qv);
    Store(a + j, v);
  }
  for (; j < n; ++j) {
    uint64_t v = a[j];
    if (v >= two_q) v -= two_q;
    if (v >= q) v -= q;
    a[j] = v;
  }
}

void NttInverseAvx2(const NttArgs& args, uint64_t* a) {
  const size_t n = args.n;
  const uint64_t q = args.q;
  const uint64_t two_q = q << 1;
  const __m256i qv = Set1(q);
  const __m256i two_qv = Set1(two_q);
  size_t t = 1;
  for (size_t m = n; m > 2; m >>= 1) {
    size_t j1 = 0;
    const size_t h = m >> 1;
    if (t >= kWidth) {
      for (size_t i = 0; i < h; ++i) {
        const __m256i sv = Set1(args.psi_inv_rev[h + i]);
        const __m256i sshv = Set1(args.psi_inv_rev_shoup[h + i]);
        uint64_t* x = a + j1;
        uint64_t* y = x + t;
        for (size_t j = 0; j < t; j += kWidth) {
          const __m256i u = Load(x + j);
          const __m256i v = Load(y + j);
          Store(x + j, CondSub(_mm256_add_epi64(u, v), two_qv));
          const __m256i diff =
              _mm256_sub_epi64(_mm256_add_epi64(u, two_qv), v);
          Store(y + j, ShoupLazy(diff, sv, sshv, qv));
        }
        j1 += 2 * t;
      }
    } else {
      for (size_t i = 0; i < h; ++i) {
        const uint64_t s = args.psi_inv_rev[h + i];
        const uint64_t s_shoup = args.psi_inv_rev_shoup[h + i];
        uint64_t* __restrict x = a + j1;
        uint64_t* __restrict y = x + t;
        for (size_t j = 0; j < t; ++j) {
          const uint64_t u = x[j];
          const uint64_t v = y[j];
          uint64_t s0 = u + v;
          if (s0 >= two_q) s0 -= two_q;
          x[j] = s0;
          y[j] = MulModShoupLazy(u + two_q - v, s, s_shoup, q);
        }
        j1 += 2 * t;
      }
    }
    t <<= 1;
  }
  // Last stage (m == 2): fold in n^{-1}, fully reduce.
  uint64_t* x = a;
  uint64_t* y = a + t;
  const __m256i n_inv_v = Set1(args.n_inv);
  const __m256i n_inv_sh_v = Set1(args.n_inv_shoup);
  const __m256i pis_v = Set1(args.psi_inv_n_scaled);
  const __m256i pis_sh_v = Set1(args.psi_inv_n_scaled_shoup);
  size_t j = 0;
  for (; j + kWidth <= t; j += kWidth) {
    const __m256i u = Load(x + j);
    const __m256i v = Load(y + j);
    const __m256i r0 =
        ShoupLazy(_mm256_add_epi64(u, v), n_inv_v, n_inv_sh_v, qv);
    const __m256i r1 = ShoupLazy(
        _mm256_sub_epi64(_mm256_add_epi64(u, two_qv), v), pis_v, pis_sh_v, qv);
    Store(x + j, CondSub(r0, qv));
    Store(y + j, CondSub(r1, qv));
  }
  for (; j < t; ++j) {
    const uint64_t u = x[j];
    const uint64_t v = y[j];
    const uint64_t r0 = MulModShoupLazy(u + v, args.n_inv, args.n_inv_shoup, q);
    const uint64_t r1 = MulModShoupLazy(u + two_q - v, args.psi_inv_n_scaled,
                                        args.psi_inv_n_scaled_shoup, q);
    x[j] = r0 >= q ? r0 - q : r0;
    y[j] = r1 >= q ? r1 - q : r1;
  }
}

void ModAddAvx2(uint64_t* a, const uint64_t* b, size_t n, uint64_t q) {
  const __m256i qv = Set1(q);
  size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    Store(a + i, CondSub(_mm256_add_epi64(Load(a + i), Load(b + i)), qv));
  }
  for (; i < n; ++i) {
    const uint64_t s = a[i] + b[i];
    a[i] = s >= q ? s - q : s;
  }
}

void ModSubAvx2(uint64_t* a, const uint64_t* b, size_t n, uint64_t q) {
  const __m256i qv = Set1(q);
  size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    const __m256i av = Load(a + i);
    const __m256i bv = Load(b + i);
    const __m256i d = _mm256_sub_epi64(av, bv);
    const __m256i lt = CmpGtU64(bv, av);
    Store(a + i, _mm256_add_epi64(d, _mm256_and_si256(qv, lt)));
  }
  for (; i < n; ++i) a[i] = SubMod(a[i], b[i], q);
}

void ModNegAvx2(uint64_t* a, size_t n, uint64_t q) {
  const __m256i qv = Set1(q);
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    const __m256i av = Load(a + i);
    const __m256i is_zero = _mm256_cmpeq_epi64(av, zero);
    Store(a + i, _mm256_andnot_si256(is_zero, _mm256_sub_epi64(qv, av)));
  }
  for (; i < n; ++i) a[i] = NegMod(a[i], q);
}

void ModMulAvx2(uint64_t* a, const uint64_t* b, size_t n, uint64_t q,
                uint64_t ratio_hi, uint64_t ratio_lo) {
  const __m256i qv = Set1(q);
  const __m256i rhi = Set1(ratio_hi);
  const __m256i rlo = Set1(ratio_lo);
  const Modulus mod(q);
  size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    Store(a + i, BarrettMulMod(Load(a + i), Load(b + i), qv, rhi, rlo));
  }
  for (; i < n; ++i) a[i] = mod.MulMod(a[i], b[i]);
}

void ModAddMulAvx2(uint64_t* a, const uint64_t* b, const uint64_t* c, size_t n,
                   uint64_t q, uint64_t ratio_hi, uint64_t ratio_lo) {
  const __m256i qv = Set1(q);
  const __m256i rhi = Set1(ratio_hi);
  const __m256i rlo = Set1(ratio_lo);
  const Modulus mod(q);
  size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    const __m256i prod = BarrettMulMod(Load(b + i), Load(c + i), qv, rhi, rlo);
    Store(a + i, CondSub(_mm256_add_epi64(Load(a + i), prod), qv));
  }
  for (; i < n; ++i) a[i] = AddMod(a[i], mod.MulMod(b[i], c[i]), q);
}

void ModMulScalarAvx2(uint64_t* a, size_t n, uint64_t s, uint64_t s_shoup,
                      uint64_t q) {
  const __m256i qv = Set1(q);
  const __m256i sv = Set1(s);
  const __m256i sshv = Set1(s_shoup);
  size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    Store(a + i, CondSub(ShoupLazy(Load(a + i), sv, sshv, qv), qv));
  }
  for (; i < n; ++i) a[i] = MulModShoup(a[i], s, s_shoup, q);
}

void FusedMacAvx2(uint64_t* acc0, uint64_t* acc1, const uint64_t* d,
                  const uint32_t* perm, const uint64_t* kb,
                  const uint64_t* kb_shoup, const uint64_t* ka,
                  const uint64_t* ka_shoup, size_t n, uint64_t q) {
  const uint64_t two_q = q << 1;
  const __m256i qv = Set1(q);
  const __m256i two_qv = Set1(two_q);
  size_t c = 0;
  for (; c + kWidth <= n; c += kWidth) {
    __m256i dv;
    if (perm == nullptr) {
      dv = Load(d + c);
    } else {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(perm + c));
      dv = _mm256_i32gather_epi64(reinterpret_cast<const long long*>(d), idx,
                                  8);
    }
    const __m256i t0 = ShoupLazy(dv, Load(kb + c), Load(kb_shoup + c), qv);
    const __m256i t1 = ShoupLazy(dv, Load(ka + c), Load(ka_shoup + c), qv);
    Store(acc0 + c, CondSub(_mm256_add_epi64(Load(acc0 + c), t0), two_qv));
    Store(acc1 + c, CondSub(_mm256_add_epi64(Load(acc1 + c), t1), two_qv));
  }
  for (; c < n; ++c) {
    const uint64_t dc = perm == nullptr ? d[c] : d[perm[c]];
    const uint64_t s0 = acc0[c] + MulModShoupLazy(dc, kb[c], kb_shoup[c], q);
    const uint64_t s1 = acc1[c] + MulModShoupLazy(dc, ka[c], ka_shoup[c], q);
    acc0[c] = s0 >= two_q ? s0 - two_q : s0;
    acc1[c] = s1 >= two_q ? s1 - two_q : s1;
  }
}

const KernelTable kAvx2Table = {
    /*name=*/"avx2",
    /*ntt_forward=*/NttForwardAvx2,
    /*ntt_inverse=*/NttInverseAvx2,
    /*mod_add=*/ModAddAvx2,
    /*mod_sub=*/ModSubAvx2,
    /*mod_neg=*/ModNegAvx2,
    /*mod_mul=*/ModMulAvx2,
    /*mod_add_mul=*/ModAddMulAvx2,
    /*mod_mul_scalar=*/ModMulScalarAvx2,
    /*fused_mac=*/FusedMacAvx2,
};

}  // namespace

const KernelTable* Avx2Kernels() { return &kAvx2Table; }

}  // namespace simd
}  // namespace sknn

#else  // !SKNN_HAVE_AVX2

namespace sknn {
namespace simd {

const KernelTable* Avx2Kernels() { return nullptr; }

}  // namespace simd
}  // namespace sknn

#endif  // SKNN_HAVE_AVX2
