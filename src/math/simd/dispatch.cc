#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/logging.h"
#include "math/simd/kernels.h"

// Kernel dispatch: picks the widest ISA level supported by both the build
// (per-file -mavx2 / -mavx512f -mavx512dq, see src/math/CMakeLists.txt)
// and the running CPU, once per process. `SKNN_SIMD=scalar|avx2|avx512`
// narrows the choice for testing; ForceIsa overrides it programmatically
// (benchmarks, equality sweeps). The active table lives behind a relaxed
// atomic pointer, so a kernel call costs one load over the direct-call
// baseline.

namespace sknn {
namespace simd {
namespace {

bool CpuSupports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return ScalarKernels();
    case Isa::kAvx2:
      return Avx2Kernels();
    case Isa::kAvx512:
      return Avx512Kernels();
  }
  return nullptr;
}

Isa WidestAvailable() {
  if (IsaAvailable(Isa::kAvx512)) return Isa::kAvx512;
  if (IsaAvailable(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

// Default choice honouring SKNN_SIMD. Unknown or unavailable values warn
// and fall back to the widest level so a stale override can never abort a
// run or silently compute differently (all tables are bit-identical).
Isa ChooseFromEnv() {
  const char* env = std::getenv("SKNN_SIMD");
  if (env == nullptr || *env == '\0') return WidestAvailable();
  Isa requested;
  if (std::strcmp(env, "scalar") == 0) {
    requested = Isa::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = Isa::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    requested = Isa::kAvx512;
  } else {
    SKNN_LOG_WARNING << "SKNN_SIMD=" << env
                     << " not recognised (want scalar|avx2|avx512); using "
                     << IsaName(WidestAvailable());
    return WidestAvailable();
  }
  if (!IsaAvailable(requested)) {
    SKNN_LOG_WARNING << "SKNN_SIMD=" << env
                     << " not available on this CPU/build; using "
                     << IsaName(WidestAvailable());
    return WidestAvailable();
  }
  return requested;
}

std::atomic<const KernelTable*> g_active{nullptr};
std::atomic<int> g_active_isa{0};
std::mutex g_init_mu;

const KernelTable* InitOnce() {
  std::lock_guard<std::mutex> lock(g_init_mu);
  const KernelTable* table = g_active.load(std::memory_order_relaxed);
  if (table != nullptr) return table;
  const Isa isa = ChooseFromEnv();
  table = TableFor(isa);
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  g_active.store(table, std::memory_order_release);
  return table;
}

void SetActive(Isa isa) {
  std::lock_guard<std::mutex> lock(g_init_mu);
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  g_active.store(TableFor(isa), std::memory_order_release);
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const KernelTable& ActiveKernels() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) table = InitOnce();
  return *table;
}

Isa ActiveIsa() {
  ActiveKernels();
  return static_cast<Isa>(g_active_isa.load(std::memory_order_relaxed));
}

bool IsaAvailable(Isa isa) {
  return TableFor(isa) != nullptr && CpuSupports(isa);
}

std::vector<Isa> AvailableIsaLevels() {
  std::vector<Isa> levels;
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (IsaAvailable(isa)) levels.push_back(isa);
  }
  return levels;
}

Status ForceIsa(Isa isa) {
  if (!IsaAvailable(isa)) {
    return InvalidArgumentError(std::string("SIMD level ") + IsaName(isa) +
                                " is not available on this CPU/build");
  }
  SetActive(isa);
  return Status::Ok();
}

void ResetIsaFromEnv() { SetActive(ChooseFromEnv()); }

}  // namespace simd
}  // namespace sknn
