#ifndef SKNN_MATH_SIMD_KERNELS_H_
#define SKNN_MATH_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

// Runtime-dispatched SIMD kernels for the NTT butterflies and the
// element-wise RNS loops (DESIGN.md §3.3).
//
// Every kernel has three implementations — portable scalar, AVX2, and
// AVX-512 (F+DQ) — selected once per process from CPUID, overridable with
// the environment variable `SKNN_SIMD=scalar|avx2|avx512` (testing) or
// `ForceIsa` (benchmarks). All implementations are bit-identical: the
// vector lanes run the exact same lazy-reduction arithmetic as the scalar
// code (forward butterflies in [0, 4q), inverse in [0, 2q), Shoup and
// Barrett multiplies mirrored operation for operation), so the choice of
// ISA can never change a ciphertext. Tails shorter than the vector width
// fall back to scalar inside each kernel; callers never need to pad.

namespace sknn {
namespace simd {

// Instruction-set level of a kernel table, ordered narrow to wide.
enum class Isa : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

const char* IsaName(Isa isa);

// Twiddle tables and constants of one NTT prime, passed by the owning
// NttTables. Pointers reference the table's storage and must outlive the
// call.
struct NttArgs {
  size_t n = 0;
  uint64_t q = 0;
  const uint64_t* psi_rev = nullptr;
  const uint64_t* psi_rev_shoup = nullptr;
  const uint64_t* psi_inv_rev = nullptr;
  const uint64_t* psi_inv_rev_shoup = nullptr;
  uint64_t n_inv = 0;
  uint64_t n_inv_shoup = 0;
  uint64_t psi_inv_n_scaled = 0;
  uint64_t psi_inv_n_scaled_shoup = 0;
};

// One fully-populated implementation set. Members must all be non-null in
// every registered table — asserted by `simd_kernels_test` and the
// `simd_dispatch_check` source guard, so a kernel added here cannot
// silently miss an ISA.
struct KernelTable {
  const char* name;

  // In-place forward negacyclic NTT, Harvey lazy reduction: butterflies
  // stay in [0, 4q), one final pass reduces to [0, q).
  void (*ntt_forward)(const NttArgs& args, uint64_t* a);
  // In-place inverse NTT: stages stay in [0, 2q), n^{-1} folded into the
  // last stage, output fully reduced.
  void (*ntt_inverse)(const NttArgs& args, uint64_t* a);

  // a[i] = (a[i] + b[i]) mod q. Inputs reduced.
  void (*mod_add)(uint64_t* a, const uint64_t* b, size_t n, uint64_t q);
  // a[i] = (a[i] - b[i]) mod q. Inputs reduced.
  void (*mod_sub)(uint64_t* a, const uint64_t* b, size_t n, uint64_t q);
  // a[i] = (-a[i]) mod q. Input reduced.
  void (*mod_neg)(uint64_t* a, size_t n, uint64_t q);
  // a[i] = (a[i] * b[i]) mod q, Barrett with the modulus' 128-bit ratio
  // (ratio = floor(2^128 / q), split hi/lo). Inputs reduced.
  void (*mod_mul)(uint64_t* a, const uint64_t* b, size_t n, uint64_t q,
                  uint64_t ratio_hi, uint64_t ratio_lo);
  // a[i] = (a[i] + b[i] * c[i]) mod q, same Barrett product.
  void (*mod_add_mul)(uint64_t* a, const uint64_t* b, const uint64_t* c,
                      size_t n, uint64_t q, uint64_t ratio_hi,
                      uint64_t ratio_lo);
  // a[i] = (a[i] * s) mod q with the Shoup companion of the constant s.
  void (*mod_mul_scalar)(uint64_t* a, size_t n, uint64_t s, uint64_t s_shoup,
                         uint64_t q);
  // The fused key-switch MAC (Evaluator::KeySwitchInner):
  //   acc0[i] += d[perm[i]] * kb[i];  acc1[i] += d[perm[i]] * ka[i]
  // with per-element Shoup companions kb_shoup/ka_shoup and lazy [0, 2q)
  // accumulators (terms land in [0, 2q), acc + term < 4q < 2^64, one
  // conditional subtract of 2q restores the invariant). `perm` may be null
  // for the identity gather (plain relinearization); non-null fuses the
  // NTT-domain Galois automorphism of hoisted rotations.
  void (*fused_mac)(uint64_t* acc0, uint64_t* acc1, const uint64_t* d,
                    const uint32_t* perm, const uint64_t* kb,
                    const uint64_t* kb_shoup, const uint64_t* ka,
                    const uint64_t* ka_shoup, size_t n, uint64_t q);
};

// The table selected for this process: the widest ISA the CPU and build
// support, unless overridden by SKNN_SIMD or ForceIsa. Cheap (one relaxed
// atomic load after first use).
const KernelTable& ActiveKernels();
Isa ActiveIsa();

// True when `isa` was compiled in AND the running CPU supports it.
// kScalar is always available.
bool IsaAvailable(Isa isa);

// Every available level, narrow to wide (always contains kScalar). What
// the equality sweeps and dispatch benches iterate.
std::vector<Isa> AvailableIsaLevels();

// Overrides the active table (tests/benches). Fails with
// InvalidArgumentError when the level is not available on this
// CPU/build. Thread-safe, takes effect for subsequent kernel calls.
Status ForceIsa(Isa isa);

// Re-reads SKNN_SIMD and recomputes the default choice (drops any
// ForceIsa override). An unavailable or unknown value logs a warning and
// falls back to the widest available level.
void ResetIsaFromEnv();

// Per-ISA table getters (null when the level is not compiled in). Exposed
// for the dispatch-coverage test; normal callers go through
// ActiveKernels().
const KernelTable* ScalarKernels();
const KernelTable* Avx2Kernels();
const KernelTable* Avx512Kernels();

}  // namespace simd
}  // namespace sknn

#endif  // SKNN_MATH_SIMD_KERNELS_H_
