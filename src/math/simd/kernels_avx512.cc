#include "math/simd/kernels.h"

// AVX-512 kernels: 8 lanes of 64-bit residues per vector. Requires F
// (arithmetic, gathers) and DQ (vpmullq for low-64 products); compiled
// with -mavx512f -mavx512dq for this file only and dispatched behind
// CPUID checks for both features. The high-64 product still uses 32-bit
// vpmuludq partials (no 64-bit widening multiply exists below IFMA), but
// mask registers replace the AVX2 sign-flip compares and vpmullq replaces
// the 3-multiply low-word emulation. Arithmetic is bit-identical to the
// scalar table.

#if defined(SKNN_HAVE_AVX512) && defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include "math/mod_arith.h"

namespace sknn {
namespace simd {
namespace {

inline __m512i Set1(uint64_t v) {
  return _mm512_set1_epi64(static_cast<long long>(v));
}

// x >= m ? x - m : x, per lane.
inline __m512i CondSub(__m512i x, __m512i m) {
  const __mmask8 ge = _mm512_cmpge_epu64_mask(x, m);
  return _mm512_mask_sub_epi64(x, ge, x, m);
}

// High 64 bits of the 128-bit product, per lane.
inline __m512i MulHi64(__m512i a, __m512i b) {
  const __m512i a_hi = _mm512_srli_epi64(a, 32);
  const __m512i b_hi = _mm512_srli_epi64(b, 32);
  const __m512i ll = _mm512_mul_epu32(a, b);
  const __m512i hl = _mm512_mul_epu32(a_hi, b);
  const __m512i lh = _mm512_mul_epu32(a, b_hi);
  const __m512i hh = _mm512_mul_epu32(a_hi, b_hi);
  const __m512i lo_mask = Set1(0xffffffffull);
  const __m512i cross = _mm512_add_epi64(hl, _mm512_srli_epi64(ll, 32));
  const __m512i cross2 =
      _mm512_add_epi64(lh, _mm512_and_si512(cross, lo_mask));
  return _mm512_add_epi64(
      hh, _mm512_add_epi64(_mm512_srli_epi64(cross, 32),
                           _mm512_srli_epi64(cross2, 32)));
}

// MulModShoupLazy per lane, result in [0, 2q).
inline __m512i ShoupLazy(__m512i x, __m512i s, __m512i s_shoup, __m512i qv) {
  const __m512i hi = MulHi64(x, s_shoup);
  return _mm512_sub_epi64(_mm512_mullo_epi64(x, s),
                          _mm512_mullo_epi64(hi, qv));
}

// 0/1 per lane where the add `sum = addend + other` carried out of 64 bits.
inline __m512i CarryOut(__m512i addend, __m512i sum) {
  const __mmask8 lt = _mm512_cmplt_epu64_mask(sum, addend);
  return _mm512_maskz_set1_epi64(lt, 1);
}

// Barrett (a*b) mod q mirroring Modulus::ReduceU128 lane-wise; r < 3q
// before the two conditional subtracts (see the AVX2 twin for the bound).
inline __m512i BarrettMulMod(__m512i av, __m512i bv, __m512i qv, __m512i rhi,
                             __m512i rlo) {
  const __m512i x_hi = MulHi64(av, bv);
  const __m512i x_lo = _mm512_mullo_epi64(av, bv);
  const __m512i carry = MulHi64(x_lo, rlo);
  const __m512i p_hi = MulHi64(x_lo, rhi);
  const __m512i p_lo = _mm512_mullo_epi64(x_lo, rhi);
  const __m512i sum = _mm512_add_epi64(p_lo, carry);
  const __m512i carry2 = CarryOut(p_lo, sum);
  const __m512i p2_hi = MulHi64(x_hi, rlo);
  const __m512i p2_lo = _mm512_mullo_epi64(x_hi, rlo);
  const __m512i sum2 = _mm512_add_epi64(p2_lo, sum);
  const __m512i carry3 = CarryOut(p2_lo, sum2);
  const __m512i q_hat = _mm512_add_epi64(
      _mm512_mullo_epi64(x_hi, rhi),
      _mm512_add_epi64(_mm512_add_epi64(p_hi, carry2),
                       _mm512_add_epi64(p2_hi, carry3)));
  __m512i r = _mm512_sub_epi64(x_lo, _mm512_mullo_epi64(q_hat, qv));
  r = CondSub(r, qv);
  r = CondSub(r, qv);
  return r;
}

inline __m512i Load(const uint64_t* p) { return _mm512_loadu_si512(p); }

inline void Store(uint64_t* p, __m512i v) { _mm512_storeu_si512(p, v); }

constexpr size_t kWidth = 8;

void NttForwardAvx512(const NttArgs& args, uint64_t* a) {
  const size_t n = args.n;
  const uint64_t q = args.q;
  const uint64_t two_q = q << 1;
  const __m512i qv = Set1(q);
  const __m512i two_qv = Set1(two_q);
  size_t t = n;
  for (size_t m = 1; m < n; m <<= 1) {
    t >>= 1;
    if (t >= kWidth) {
      for (size_t i = 0; i < m; ++i) {
        const __m512i sv = Set1(args.psi_rev[m + i]);
        const __m512i sshv = Set1(args.psi_rev_shoup[m + i]);
        uint64_t* x = a + 2 * i * t;
        uint64_t* y = x + t;
        for (size_t j = 0; j < t; j += kWidth) {
          const __m512i u = CondSub(Load(x + j), two_qv);
          const __m512i v = ShoupLazy(Load(y + j), sv, sshv, qv);
          Store(x + j, _mm512_add_epi64(u, v));
          Store(y + j, _mm512_sub_epi64(_mm512_add_epi64(u, two_qv), v));
        }
      }
    } else {
      for (size_t i = 0; i < m; ++i) {
        const uint64_t s = args.psi_rev[m + i];
        const uint64_t s_shoup = args.psi_rev_shoup[m + i];
        uint64_t* __restrict x = a + 2 * i * t;
        uint64_t* __restrict y = x + t;
        for (size_t j = 0; j < t; ++j) {
          uint64_t u = x[j];
          if (u >= two_q) u -= two_q;
          const uint64_t v = MulModShoupLazy(y[j], s, s_shoup, q);
          x[j] = u + v;
          y[j] = u + two_q - v;
        }
      }
    }
  }
  size_t j = 0;
  for (; j + kWidth <= n; j += kWidth) {
    __m512i v = Load(a + j);
    v = CondSub(v, two_qv);
    v = CondSub(v, qv);
    Store(a + j, v);
  }
  for (; j < n; ++j) {
    uint64_t v = a[j];
    if (v >= two_q) v -= two_q;
    if (v >= q) v -= q;
    a[j] = v;
  }
}

void NttInverseAvx512(const NttArgs& args, uint64_t* a) {
  const size_t n = args.n;
  const uint64_t q = args.q;
  const uint64_t two_q = q << 1;
  const __m512i qv = Set1(q);
  const __m512i two_qv = Set1(two_q);
  size_t t = 1;
  for (size_t m = n; m > 2; m >>= 1) {
    size_t j1 = 0;
    const size_t h = m >> 1;
    if (t >= kWidth) {
      for (size_t i = 0; i < h; ++i) {
        const __m512i sv = Set1(args.psi_inv_rev[h + i]);
        const __m512i sshv = Set1(args.psi_inv_rev_shoup[h + i]);
        uint64_t* x = a + j1;
        uint64_t* y = x + t;
        for (size_t j = 0; j < t; j += kWidth) {
          const __m512i u = Load(x + j);
          const __m512i v = Load(y + j);
          Store(x + j, CondSub(_mm512_add_epi64(u, v), two_qv));
          const __m512i diff =
              _mm512_sub_epi64(_mm512_add_epi64(u, two_qv), v);
          Store(y + j, ShoupLazy(diff, sv, sshv, qv));
        }
        j1 += 2 * t;
      }
    } else {
      for (size_t i = 0; i < h; ++i) {
        const uint64_t s = args.psi_inv_rev[h + i];
        const uint64_t s_shoup = args.psi_inv_rev_shoup[h + i];
        uint64_t* __restrict x = a + j1;
        uint64_t* __restrict y = x + t;
        for (size_t j = 0; j < t; ++j) {
          const uint64_t u = x[j];
          const uint64_t v = y[j];
          uint64_t s0 = u + v;
          if (s0 >= two_q) s0 -= two_q;
          x[j] = s0;
          y[j] = MulModShoupLazy(u + two_q - v, s, s_shoup, q);
        }
        j1 += 2 * t;
      }
    }
    t <<= 1;
  }
  uint64_t* x = a;
  uint64_t* y = a + t;
  const __m512i n_inv_v = Set1(args.n_inv);
  const __m512i n_inv_sh_v = Set1(args.n_inv_shoup);
  const __m512i pis_v = Set1(args.psi_inv_n_scaled);
  const __m512i pis_sh_v = Set1(args.psi_inv_n_scaled_shoup);
  size_t j = 0;
  for (; j + kWidth <= t; j += kWidth) {
    const __m512i u = Load(x + j);
    const __m512i v = Load(y + j);
    const __m512i r0 =
        ShoupLazy(_mm512_add_epi64(u, v), n_inv_v, n_inv_sh_v, qv);
    const __m512i r1 = ShoupLazy(
        _mm512_sub_epi64(_mm512_add_epi64(u, two_qv), v), pis_v, pis_sh_v, qv);
    Store(x + j, CondSub(r0, qv));
    Store(y + j, CondSub(r1, qv));
  }
  for (; j < t; ++j) {
    const uint64_t u = x[j];
    const uint64_t v = y[j];
    const uint64_t r0 = MulModShoupLazy(u + v, args.n_inv, args.n_inv_shoup, q);
    const uint64_t r1 = MulModShoupLazy(u + two_q - v, args.psi_inv_n_scaled,
                                        args.psi_inv_n_scaled_shoup, q);
    x[j] = r0 >= q ? r0 - q : r0;
    y[j] = r1 >= q ? r1 - q : r1;
  }
}

void ModAddAvx512(uint64_t* a, const uint64_t* b, size_t n, uint64_t q) {
  const __m512i qv = Set1(q);
  size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    Store(a + i, CondSub(_mm512_add_epi64(Load(a + i), Load(b + i)), qv));
  }
  for (; i < n; ++i) {
    const uint64_t s = a[i] + b[i];
    a[i] = s >= q ? s - q : s;
  }
}

void ModSubAvx512(uint64_t* a, const uint64_t* b, size_t n, uint64_t q) {
  const __m512i qv = Set1(q);
  size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    const __m512i av = Load(a + i);
    const __m512i bv = Load(b + i);
    const __mmask8 lt = _mm512_cmplt_epu64_mask(av, bv);
    const __m512i d = _mm512_sub_epi64(av, bv);
    Store(a + i, _mm512_mask_add_epi64(d, lt, d, qv));
  }
  for (; i < n; ++i) a[i] = SubMod(a[i], b[i], q);
}

void ModNegAvx512(uint64_t* a, size_t n, uint64_t q) {
  const __m512i qv = Set1(q);
  size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    const __m512i av = Load(a + i);
    const __mmask8 nonzero = _mm512_test_epi64_mask(av, av);
    Store(a + i, _mm512_maskz_sub_epi64(nonzero, qv, av));
  }
  for (; i < n; ++i) a[i] = NegMod(a[i], q);
}

void ModMulAvx512(uint64_t* a, const uint64_t* b, size_t n, uint64_t q,
                  uint64_t ratio_hi, uint64_t ratio_lo) {
  const __m512i qv = Set1(q);
  const __m512i rhi = Set1(ratio_hi);
  const __m512i rlo = Set1(ratio_lo);
  const Modulus mod(q);
  size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    Store(a + i, BarrettMulMod(Load(a + i), Load(b + i), qv, rhi, rlo));
  }
  for (; i < n; ++i) a[i] = mod.MulMod(a[i], b[i]);
}

void ModAddMulAvx512(uint64_t* a, const uint64_t* b, const uint64_t* c,
                     size_t n, uint64_t q, uint64_t ratio_hi,
                     uint64_t ratio_lo) {
  const __m512i qv = Set1(q);
  const __m512i rhi = Set1(ratio_hi);
  const __m512i rlo = Set1(ratio_lo);
  const Modulus mod(q);
  size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    const __m512i prod = BarrettMulMod(Load(b + i), Load(c + i), qv, rhi, rlo);
    Store(a + i, CondSub(_mm512_add_epi64(Load(a + i), prod), qv));
  }
  for (; i < n; ++i) a[i] = AddMod(a[i], mod.MulMod(b[i], c[i]), q);
}

void ModMulScalarAvx512(uint64_t* a, size_t n, uint64_t s, uint64_t s_shoup,
                        uint64_t q) {
  const __m512i qv = Set1(q);
  const __m512i sv = Set1(s);
  const __m512i sshv = Set1(s_shoup);
  size_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    Store(a + i, CondSub(ShoupLazy(Load(a + i), sv, sshv, qv), qv));
  }
  for (; i < n; ++i) a[i] = MulModShoup(a[i], s, s_shoup, q);
}

void FusedMacAvx512(uint64_t* acc0, uint64_t* acc1, const uint64_t* d,
                    const uint32_t* perm, const uint64_t* kb,
                    const uint64_t* kb_shoup, const uint64_t* ka,
                    const uint64_t* ka_shoup, size_t n, uint64_t q) {
  const uint64_t two_q = q << 1;
  const __m512i qv = Set1(q);
  const __m512i two_qv = Set1(two_q);
  size_t c = 0;
  for (; c + kWidth <= n; c += kWidth) {
    __m512i dv;
    if (perm == nullptr) {
      dv = Load(d + c);
    } else {
      const __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(perm + c));
      dv = _mm512_i32gather_epi64(idx, d, 8);
    }
    const __m512i t0 = ShoupLazy(dv, Load(kb + c), Load(kb_shoup + c), qv);
    const __m512i t1 = ShoupLazy(dv, Load(ka + c), Load(ka_shoup + c), qv);
    Store(acc0 + c, CondSub(_mm512_add_epi64(Load(acc0 + c), t0), two_qv));
    Store(acc1 + c, CondSub(_mm512_add_epi64(Load(acc1 + c), t1), two_qv));
  }
  for (; c < n; ++c) {
    const uint64_t dc = perm == nullptr ? d[c] : d[perm[c]];
    const uint64_t s0 = acc0[c] + MulModShoupLazy(dc, kb[c], kb_shoup[c], q);
    const uint64_t s1 = acc1[c] + MulModShoupLazy(dc, ka[c], ka_shoup[c], q);
    acc0[c] = s0 >= two_q ? s0 - two_q : s0;
    acc1[c] = s1 >= two_q ? s1 - two_q : s1;
  }
}

const KernelTable kAvx512Table = {
    /*name=*/"avx512",
    /*ntt_forward=*/NttForwardAvx512,
    /*ntt_inverse=*/NttInverseAvx512,
    /*mod_add=*/ModAddAvx512,
    /*mod_sub=*/ModSubAvx512,
    /*mod_neg=*/ModNegAvx512,
    /*mod_mul=*/ModMulAvx512,
    /*mod_add_mul=*/ModAddMulAvx512,
    /*mod_mul_scalar=*/ModMulScalarAvx512,
    /*fused_mac=*/FusedMacAvx512,
};

}  // namespace

const KernelTable* Avx512Kernels() { return &kAvx512Table; }

}  // namespace simd
}  // namespace sknn

#else  // !SKNN_HAVE_AVX512

namespace sknn {
namespace simd {

const KernelTable* Avx512Kernels() { return nullptr; }

}  // namespace simd
}  // namespace sknn

#endif  // SKNN_HAVE_AVX512
