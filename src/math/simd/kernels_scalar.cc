#include "math/mod_arith.h"
#include "math/simd/kernels.h"

// Portable scalar kernels. These are the reference semantics: the AVX2 and
// AVX-512 tables must match them bit for bit (enforced by the equality
// sweeps in ntt_test and simd_kernels_test). The loops are verbatim the
// pre-dispatch hot loops of ntt.cc / rns_poly.cc / evaluator.cc.

namespace sknn {
namespace simd {
namespace {

void NttForwardScalar(const NttArgs& args, uint64_t* a) {
  const size_t n = args.n;
  const uint64_t q = args.q;
  const uint64_t two_q = q << 1;
  size_t t = n;
  for (size_t m = 1; m < n; m <<= 1) {
    t >>= 1;
    for (size_t i = 0; i < m; ++i) {
      const uint64_t s = args.psi_rev[m + i];
      const uint64_t s_shoup = args.psi_rev_shoup[m + i];
      uint64_t* __restrict x = a + 2 * i * t;
      uint64_t* __restrict y = x + t;
      for (size_t j = 0; j < t; ++j) {
        uint64_t u = x[j];
        if (u >= two_q) u -= two_q;
        const uint64_t v = MulModShoupLazy(y[j], s, s_shoup, q);
        x[j] = u + v;
        y[j] = u + two_q - v;
      }
    }
  }
  for (size_t j = 0; j < n; ++j) {
    uint64_t v = a[j];
    if (v >= two_q) v -= two_q;
    if (v >= q) v -= q;
    a[j] = v;
  }
}

void NttInverseScalar(const NttArgs& args, uint64_t* a) {
  const size_t n = args.n;
  const uint64_t q = args.q;
  const uint64_t two_q = q << 1;
  size_t t = 1;
  for (size_t m = n; m > 2; m >>= 1) {
    size_t j1 = 0;
    const size_t h = m >> 1;
    for (size_t i = 0; i < h; ++i) {
      const uint64_t s = args.psi_inv_rev[h + i];
      const uint64_t s_shoup = args.psi_inv_rev_shoup[h + i];
      uint64_t* __restrict x = a + j1;
      uint64_t* __restrict y = x + t;
      for (size_t j = 0; j < t; ++j) {
        const uint64_t u = x[j];
        const uint64_t v = y[j];
        uint64_t s0 = u + v;
        if (s0 >= two_q) s0 -= two_q;
        x[j] = s0;
        y[j] = MulModShoupLazy(u + two_q - v, s, s_shoup, q);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  uint64_t* __restrict x = a;
  uint64_t* __restrict y = a + t;
  for (size_t j = 0; j < t; ++j) {
    const uint64_t u = x[j];
    const uint64_t v = y[j];
    const uint64_t r0 = MulModShoupLazy(u + v, args.n_inv, args.n_inv_shoup, q);
    const uint64_t r1 = MulModShoupLazy(u + two_q - v, args.psi_inv_n_scaled,
                                        args.psi_inv_n_scaled_shoup, q);
    x[j] = r0 >= q ? r0 - q : r0;
    y[j] = r1 >= q ? r1 - q : r1;
  }
}

void ModAddScalar(uint64_t* a, const uint64_t* b, size_t n, uint64_t q) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t s = a[i] + b[i];
    a[i] = s >= q ? s - q : s;
  }
}

void ModSubScalar(uint64_t* a, const uint64_t* b, size_t n, uint64_t q) {
  for (size_t i = 0; i < n; ++i) {
    a[i] = SubMod(a[i], b[i], q);
  }
}

void ModNegScalar(uint64_t* a, size_t n, uint64_t q) {
  for (size_t i = 0; i < n; ++i) {
    a[i] = NegMod(a[i], q);
  }
}

// Barrett product mirroring Modulus::ReduceU128 exactly; kept local so the
// kernel depends only on the raw ratio words handed in by the caller.
inline uint64_t BarrettMulMod(uint64_t a, uint64_t b, uint64_t q,
                              uint64_t ratio_hi, uint64_t ratio_lo) {
  const uint128_t x = Mul64To128(a, b);
  const uint64_t x_lo = Low64(x);
  const uint64_t x_hi = High64(x);
  uint64_t tmp1;
  const uint64_t carry = MulHigh64(x_lo, ratio_lo);
  uint128_t prod = Mul64To128(x_lo, ratio_hi);
  const uint64_t tmp2 = Low64(prod);
  const uint64_t tmp3 = High64(prod);
  uint128_t sum = static_cast<uint128_t>(tmp2) + carry;
  tmp1 = Low64(sum);
  const uint64_t carry2 = High64(sum);
  prod = Mul64To128(x_hi, ratio_lo);
  sum = static_cast<uint128_t>(Low64(prod)) + tmp1;
  const uint64_t carry3 = High64(sum);
  tmp1 = High64(prod);
  const uint64_t q_hat = x_hi * ratio_hi + tmp3 + carry2 + tmp1 + carry3;
  uint64_t r = x_lo - q_hat * q;
  while (r >= q) r -= q;
  return r;
}

void ModMulScalar(uint64_t* a, const uint64_t* b, size_t n, uint64_t q,
                  uint64_t ratio_hi, uint64_t ratio_lo) {
  for (size_t i = 0; i < n; ++i) {
    a[i] = BarrettMulMod(a[i], b[i], q, ratio_hi, ratio_lo);
  }
}

void ModAddMulScalar(uint64_t* a, const uint64_t* b, const uint64_t* c,
                     size_t n, uint64_t q, uint64_t ratio_hi,
                     uint64_t ratio_lo) {
  for (size_t i = 0; i < n; ++i) {
    a[i] = AddMod(a[i], BarrettMulMod(b[i], c[i], q, ratio_hi, ratio_lo), q);
  }
}

void ModMulScalarConst(uint64_t* a, size_t n, uint64_t s, uint64_t s_shoup,
                       uint64_t q) {
  for (size_t i = 0; i < n; ++i) {
    a[i] = MulModShoup(a[i], s, s_shoup, q);
  }
}

void FusedMacScalar(uint64_t* acc0, uint64_t* acc1, const uint64_t* d,
                    const uint32_t* perm, const uint64_t* kb,
                    const uint64_t* kb_shoup, const uint64_t* ka,
                    const uint64_t* ka_shoup, size_t n, uint64_t q) {
  const uint64_t two_q = q << 1;
  if (perm == nullptr) {
    for (size_t c = 0; c < n; ++c) {
      const uint64_t dc = d[c];
      const uint64_t s0 = acc0[c] + MulModShoupLazy(dc, kb[c], kb_shoup[c], q);
      const uint64_t s1 = acc1[c] + MulModShoupLazy(dc, ka[c], ka_shoup[c], q);
      acc0[c] = s0 >= two_q ? s0 - two_q : s0;
      acc1[c] = s1 >= two_q ? s1 - two_q : s1;
    }
  } else {
    for (size_t c = 0; c < n; ++c) {
      const uint64_t dc = d[perm[c]];
      const uint64_t s0 = acc0[c] + MulModShoupLazy(dc, kb[c], kb_shoup[c], q);
      const uint64_t s1 = acc1[c] + MulModShoupLazy(dc, ka[c], ka_shoup[c], q);
      acc0[c] = s0 >= two_q ? s0 - two_q : s0;
      acc1[c] = s1 >= two_q ? s1 - two_q : s1;
    }
  }
}

const KernelTable kScalarTable = {
    /*name=*/"scalar",
    /*ntt_forward=*/NttForwardScalar,
    /*ntt_inverse=*/NttInverseScalar,
    /*mod_add=*/ModAddScalar,
    /*mod_sub=*/ModSubScalar,
    /*mod_neg=*/ModNegScalar,
    /*mod_mul=*/ModMulScalar,
    /*mod_add_mul=*/ModAddMulScalar,
    /*mod_mul_scalar=*/ModMulScalarConst,
    /*fused_mac=*/FusedMacScalar,
};

}  // namespace

const KernelTable* ScalarKernels() { return &kScalarTable; }

}  // namespace simd
}  // namespace sknn
