#ifndef SKNN_MATH_RNS_POLY_H_
#define SKNN_MATH_RNS_POLY_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/buffer_pool.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_pool.h"
#include "math/mod_arith.h"
#include "math/ntt.h"

// Polynomials in R_Q = Z_Q[x]/(x^n + 1) with Q = q_0 * ... * q_{L} held in
// residue number system (RNS) form. All BGV arithmetic happens on this
// representation with 64-bit words only. Storage is a single contiguous
// n * num_components buffer (component-major), so the element-wise kernels
// traverse memory linearly and the whole polynomial is one allocation.

namespace sknn {

// An ordered set of RNS moduli for a fixed ring degree, with NTT tables per
// prime. Ciphertexts at level l use the first l+1 moduli of the base they
// were created under. Move-only: it owns lazily built caches shared by all
// users of the base.
class RnsBase {
 public:
  // Builds a base for ring degree n over the given primes (each must be an
  // NTT prime for n: q ≡ 1 mod 2n).
  static StatusOr<RnsBase> Create(size_t n, const std::vector<uint64_t>& primes);

  // Default-constructed bases are empty placeholders to be assigned from
  // Create(); using one is a programming error.
  RnsBase() = default;
  RnsBase(RnsBase&&) = default;
  RnsBase& operator=(RnsBase&&) = default;

  size_t n() const { return n_; }
  size_t size() const { return moduli_.size(); }
  const Modulus& modulus(size_t i) const { return moduli_[i]; }
  const NttTables& ntt(size_t i) const { return ntt_[i]; }
  const std::vector<Modulus>& moduli() const { return moduli_; }

  // Permutation table for the Galois automorphism x -> x^galois_elt
  // (galois_elt odd, < 2n) acting on coefficient-form polynomials: entry i
  // packs (target_index << 1) | negate for source coefficient i. The table
  // is modulus-independent (the negate bit stands for "negate mod q_c").
  // Built on first use and cached per element; thread-safe.
  const std::vector<uint32_t>& GaloisPermTable(uint64_t galois_elt) const;

  // Permutation table for the same automorphism acting on NTT-form
  // polynomials (negacyclic NTT in bit-reversed order): out[i] =
  // in[table[i]], a pure gather with no negations, valid for every prime of
  // the base. Built on first use and cached per element; thread-safe.
  const std::vector<uint32_t>& GaloisPermTableNtt(uint64_t galois_elt) const;

  // Optional worker pool used by ToNttInplace/FromNttInplace to transform
  // RNS components in parallel. Null (the default) keeps all work on the
  // calling thread. The base shares ownership of the pool.
  void set_thread_pool(std::shared_ptr<ThreadPool> pool) {
    pool_ = std::move(pool);
  }
  ThreadPool* thread_pool() const { return pool_.get(); }

 private:
  struct GaloisCache {
    std::mutex mu;
    std::unordered_map<uint64_t, std::vector<uint32_t>> tables;
    std::unordered_map<uint64_t, std::vector<uint32_t>> ntt_tables;
  };

  size_t n_ = 0;
  std::vector<Modulus> moduli_;
  std::vector<NttTables> ntt_;
  std::unique_ptr<GaloisCache> galois_cache_;
  std::shared_ptr<ThreadPool> pool_;
};

// RNS polynomial: comp(i)[j] is coefficient j modulo prime i (or the NTT
// image when ntt_form). The number of components defines the level. The
// residues live in one flat n * num_components vector, component-major:
// comp(i) == data() + i * n().
class RnsPoly {
 public:
  RnsPoly() = default;
  // Allocates an all-zero polynomial with `components` RNS components. The
  // flat buffer comes from BufferPool (and returns there on destruction),
  // so steady-state temporaries never touch the heap — see
  // common/buffer_pool.h for the ownership rules and bgv.alloc.* metrics.
  RnsPoly(size_t n, size_t components, bool ntt_form)
      : n_(n),
        components_(components),
        ntt_form_(ntt_form),
        data_(BufferPool::AcquireZeroed(n * components)) {}

  ~RnsPoly() { BufferPool::Release(std::move(data_)); }

  RnsPoly(const RnsPoly& other)
      : n_(other.n_),
        components_(other.components_),
        ntt_form_(other.ntt_form_),
        data_(BufferPool::AcquireCopy(other.data_)) {}

  RnsPoly& operator=(const RnsPoly& other) {
    if (this != &other) {
      n_ = other.n_;
      components_ = other.components_;
      ntt_form_ = other.ntt_form_;
      if (data_.size() == other.data_.size()) {
        std::copy(other.data_.begin(), other.data_.end(), data_.begin());
      } else {
        BufferPool::Release(std::move(data_));
        data_ = BufferPool::AcquireCopy(other.data_);
      }
    }
    return *this;
  }

  // Moves steal the buffer (no pool round-trip); the source reverts to the
  // default-constructed empty state.
  RnsPoly(RnsPoly&& other) noexcept
      : n_(other.n_),
        components_(other.components_),
        ntt_form_(other.ntt_form_),
        data_(std::move(other.data_)) {
    other.n_ = 0;
    other.components_ = 0;
    other.ntt_form_ = false;
  }

  RnsPoly& operator=(RnsPoly&& other) noexcept {
    if (this != &other) {
      BufferPool::Release(std::move(data_));
      n_ = other.n_;
      components_ = other.components_;
      ntt_form_ = other.ntt_form_;
      data_ = std::move(other.data_);
      other.n_ = 0;
      other.components_ = 0;
      other.ntt_form_ = false;
    }
    return *this;
  }

  size_t n() const { return n_; }
  size_t num_components() const { return components_; }
  bool ntt_form() const { return ntt_form_; }
  void set_ntt_form(bool ntt_form) { ntt_form_ = ntt_form; }
  bool IsZero() const;

  // Residue vector of component i (n contiguous words).
  uint64_t* comp(size_t i) { return data_.data() + i * n_; }
  const uint64_t* comp(size_t i) const { return data_.data() + i * n_; }

  // The whole flat buffer (n * num_components words, component-major).
  uint64_t* data() { return data_.data(); }
  const uint64_t* data() const { return data_.data(); }
  const std::vector<uint64_t>& flat() const { return data_; }

  // A new polynomial holding the first `components` components (the
  // level-restriction every encrypt/decrypt path performs); one memcpy.
  RnsPoly Prefix(size_t components) const;

  friend bool operator==(const RnsPoly& a, const RnsPoly& b) {
    return a.n_ == b.n_ && a.components_ == b.components_ &&
           a.ntt_form_ == b.ntt_form_ && a.data_ == b.data_;
  }
  friend bool operator!=(const RnsPoly& a, const RnsPoly& b) {
    return !(a == b);
  }

 private:
  size_t n_ = 0;
  size_t components_ = 0;
  bool ntt_form_ = false;
  std::vector<uint64_t> data_;
};

// Allocates an all-zero polynomial with `components` RNS components.
RnsPoly ZeroPoly(size_t n, size_t components, bool ntt_form);

// In-place a += b. Shapes (n, component count, ntt form) must match.
void AddInplace(RnsPoly* a, const RnsPoly& b, const RnsBase& base);
// In-place a -= b.
void SubInplace(RnsPoly* a, const RnsPoly& b, const RnsBase& base);
// In-place a = -a.
void NegateInplace(RnsPoly* a, const RnsBase& base);
// Pointwise product c = a * b (both must be in NTT form).
RnsPoly MulPointwise(const RnsPoly& a, const RnsPoly& b, const RnsBase& base);
// In-place a *= b (NTT form).
void MulPointwiseInplace(RnsPoly* a, const RnsPoly& b, const RnsBase& base);
// In-place a += b * c (all NTT form); the fused op of key switching.
void AddMulInplace(RnsPoly* a, const RnsPoly& b, const RnsPoly& c,
                   const RnsBase& base);
// In-place multiply every component by a scalar (given reduced per prime).
void MulScalarInplace(RnsPoly* a, const std::vector<uint64_t>& scalar_per_prime,
                      const RnsBase& base);
// Converts to NTT form in place (no-op if already).
void ToNttInplace(RnsPoly* a, const RnsBase& base);
// Converts to coefficient form in place (no-op if already).
void FromNttInplace(RnsPoly* a, const RnsBase& base);

// Applies the Galois automorphism x -> x^galois_elt (odd, < 2n) to a
// coefficient-form polynomial using the base's cached permutation table.
RnsPoly ApplyGaloisCoeff(const RnsPoly& a, uint64_t galois_elt,
                         const RnsBase& base);

// Applies the same automorphism to an NTT-form polynomial as a pure slot
// permutation (no negations, no FromNtt/ToNtt round-trip): evaluation
// points of the negacyclic NTT are the primitive 2n-th roots ω^(2i+1), and
// x -> x^elt permutes them, so NTT(τ(a))[i] = NTT(a)[π(i)] with π cached in
// the base. This is what makes hoisted rotations cheap.
RnsPoly ApplyGaloisNtt(const RnsPoly& a, uint64_t galois_elt,
                       const RnsBase& base);

}  // namespace sknn

#endif  // SKNN_MATH_RNS_POLY_H_
