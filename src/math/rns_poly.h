#ifndef SKNN_MATH_RNS_POLY_H_
#define SKNN_MATH_RNS_POLY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "math/mod_arith.h"
#include "math/ntt.h"

// Polynomials in R_Q = Z_Q[x]/(x^n + 1) with Q = q_0 * ... * q_{L} held in
// residue number system (RNS) form: one length-n residue vector per prime.
// All BGV arithmetic happens on this representation with 64-bit words only.

namespace sknn {

// An ordered set of RNS moduli for a fixed ring degree, with NTT tables per
// prime. Ciphertexts at level l use the first l+1 moduli of the base they
// were created under.
class RnsBase {
 public:
  // Builds a base for ring degree n over the given primes (each must be an
  // NTT prime for n: q ≡ 1 mod 2n).
  static StatusOr<RnsBase> Create(size_t n, const std::vector<uint64_t>& primes);

  size_t n() const { return n_; }
  size_t size() const { return moduli_.size(); }
  const Modulus& modulus(size_t i) const { return moduli_[i]; }
  const NttTables& ntt(size_t i) const { return ntt_[i]; }
  const std::vector<Modulus>& moduli() const { return moduli_; }

 private:
  size_t n_ = 0;
  std::vector<Modulus> moduli_;
  std::vector<NttTables> ntt_;
};

// RNS polynomial: comp[i][j] is coefficient j modulo prime i (or the NTT
// image when ntt_form). The number of components defines the level.
struct RnsPoly {
  size_t n = 0;
  bool ntt_form = false;
  std::vector<std::vector<uint64_t>> comp;

  size_t num_components() const { return comp.size(); }
  bool IsZero() const;
};

// Allocates an all-zero polynomial with `components` RNS components.
RnsPoly ZeroPoly(size_t n, size_t components, bool ntt_form);

// In-place a += b. Shapes (n, component count, ntt form) must match.
void AddInplace(RnsPoly* a, const RnsPoly& b, const RnsBase& base);
// In-place a -= b.
void SubInplace(RnsPoly* a, const RnsPoly& b, const RnsBase& base);
// In-place a = -a.
void NegateInplace(RnsPoly* a, const RnsBase& base);
// Pointwise product c = a * b (both must be in NTT form).
RnsPoly MulPointwise(const RnsPoly& a, const RnsPoly& b, const RnsBase& base);
// In-place a *= b (NTT form).
void MulPointwiseInplace(RnsPoly* a, const RnsPoly& b, const RnsBase& base);
// In-place a += b * c (all NTT form); the fused op of key switching.
void AddMulInplace(RnsPoly* a, const RnsPoly& b, const RnsPoly& c,
                   const RnsBase& base);
// In-place multiply every component by a scalar (given reduced per prime).
void MulScalarInplace(RnsPoly* a, const std::vector<uint64_t>& scalar_per_prime,
                      const RnsBase& base);
// Converts to NTT form in place (no-op if already).
void ToNttInplace(RnsPoly* a, const RnsBase& base);
// Converts to coefficient form in place (no-op if already).
void FromNttInplace(RnsPoly* a, const RnsBase& base);

// Applies the Galois automorphism x -> x^galois_elt (odd, < 2n) to a
// coefficient-form polynomial.
RnsPoly ApplyGaloisCoeff(const RnsPoly& a, uint64_t galois_elt,
                         const RnsBase& base);

}  // namespace sknn

#endif  // SKNN_MATH_RNS_POLY_H_
