#include "math/prime.h"

#include <string>

#include "math/mod_arith.h"

namespace sknn {
namespace {

// a^e mod n for any 64-bit n (Modulus-based PowMod requires n < 2^62, which
// primality testing cannot assume).
uint64_t PowModAny(uint64_t a, uint64_t e, uint64_t n) {
  uint64_t result = 1 % n;
  a %= n;
  while (e > 0) {
    if (e & 1) result = MulModSlow(result, a, n);
    a = MulModSlow(a, a, n);
    e >>= 1;
  }
  return result;
}

// Miller–Rabin single-witness test. n odd, n > 2, d*2^r = n-1 with d odd.
bool WitnessComposite(uint64_t a, uint64_t n, uint64_t d, int r) {
  a %= n;
  if (a == 0) return false;
  uint64_t x = PowModAny(a, d, n);
  if (x == 1 || x == n - 1) return false;
  for (int i = 1; i < r; ++i) {
    x = MulModSlow(x, x, n);
    if (x == n - 1) return false;
  }
  return true;  // composite
}

// Factors out the distinct prime factors of n (trial division; n here is
// always q-1 for a ~60-bit prime q, and q-1 is 2^k * small cofactor by
// construction of our NTT primes, so this is fast in practice; the generic
// fallback uses Pollard rho).
uint64_t PollardRho(uint64_t n);

void DistinctPrimeFactors(uint64_t n, std::vector<uint64_t>* factors) {
  for (uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                     23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) {
      factors->push_back(p);
      while (n % p == 0) n /= p;
    }
  }
  // Remaining part: fully factor with rho + recursion.
  std::vector<uint64_t> stack;
  if (n > 1) stack.push_back(n);
  while (!stack.empty()) {
    uint64_t m = stack.back();
    stack.pop_back();
    if (m == 1) continue;
    if (IsPrime(m)) {
      bool seen = false;
      for (uint64_t f : *factors) {
        if (f == m) {
          seen = true;
          break;
        }
      }
      if (!seen) factors->push_back(m);
      continue;
    }
    uint64_t d = PollardRho(m);
    stack.push_back(d);
    stack.push_back(m / d);
  }
}

uint64_t PollardRho(uint64_t n) {
  if (n % 2 == 0) return 2;
  Modulus mod(n < (uint64_t{1} << 62) ? n : 3);  // Modulus needs < 2^62
  uint64_t c = 1;
  for (;;) {
    uint64_t x = 2, y = 2, d = 1;
    auto f = [&](uint64_t v) {
      uint64_t fv = (n < (uint64_t{1} << 62)) ? mod.MulMod(v, v)
                                              : MulModSlow(v, v, n);
      fv += c;
      if (fv >= n) fv -= n;
      return fv;
    };
    while (d == 1) {
      x = f(x);
      y = f(f(y));
      uint64_t diff = x > y ? x - y : y - x;
      if (diff == 0) break;
      // gcd
      uint64_t a = diff, b = n;
      while (b != 0) {
        uint64_t t = a % b;
        a = b;
        b = t;
      }
      d = a;
    }
    if (d != 1 && d != n) return d;
    ++c;
  }
}

}  // namespace

bool IsPrime(uint64_t n) {
  if (n < 2) return false;
  for (uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                     23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic for all n < 3.3e24.
  for (uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                     23ull, 29ull, 31ull, 37ull}) {
    if (WitnessComposite(a, n, d, r)) return false;
  }
  return true;
}

StatusOr<std::vector<uint64_t>> GenerateNttPrimes(
    int bit_size, uint64_t congruence, size_t count,
    const std::vector<uint64_t>& exclude) {
  if (bit_size < 10 || bit_size > 61) {
    return InvalidArgumentError("prime bit size must be in [10, 61]");
  }
  std::vector<uint64_t> primes;
  // Largest candidate of the right size congruent to 1 mod `congruence`.
  const uint64_t hi = (uint64_t{1} << bit_size) - 1;
  const uint64_t lo = uint64_t{1} << (bit_size - 1);
  uint64_t candidate = hi - ((hi - 1) % congruence);  // candidate = 1 mod c
  while (primes.size() < count && candidate > lo) {
    if (IsPrime(candidate)) {
      bool banned = false;
      for (uint64_t e : exclude) {
        if (e == candidate) banned = true;
      }
      for (uint64_t p : primes) {
        if (p == candidate) banned = true;
      }
      if (!banned) primes.push_back(candidate);
    }
    if (candidate < congruence) break;
    candidate -= congruence;
  }
  if (primes.size() < count) {
    return NotFoundError("not enough NTT primes of bit size " +
                         std::to_string(bit_size));
  }
  return primes;
}

StatusOr<uint64_t> FindPrimitiveRoot(uint64_t order, uint64_t q) {
  if (!IsPrime(q)) return InvalidArgumentError("q must be prime");
  const uint64_t group_order = q - 1;
  if (order == 0 || group_order % order != 0) {
    return InvalidArgumentError("order must divide q-1");
  }
  std::vector<uint64_t> factors;
  DistinctPrimeFactors(group_order, &factors);
  // Find a generator g of Z_q^*.
  uint64_t g = 0;
  for (uint64_t cand = 2; cand < q; ++cand) {
    bool is_generator = true;
    for (uint64_t f : factors) {
      if (PowMod(cand, group_order / f, q) == 1) {
        is_generator = false;
        break;
      }
    }
    if (is_generator) {
      g = cand;
      break;
    }
  }
  if (g == 0) return InternalError("no generator found");
  uint64_t root = PowMod(g, group_order / order, q);
  // Verify exact order.
  std::vector<uint64_t> order_factors;
  DistinctPrimeFactors(order, &order_factors);
  for (uint64_t f : order_factors) {
    if (PowMod(root, order / f, q) == 1) {
      return InternalError("root has smaller order than requested");
    }
  }
  return root;
}

}  // namespace sknn
