#ifndef SKNN_MATH_MOD_ARITH_H_
#define SKNN_MATH_MOD_ARITH_H_

#include <cstdint>

#include "common/logging.h"
#include "common/u128.h"

// Word-size modular arithmetic kernels. Moduli are odd primes below 2^62
// (the NTT-friendly primes of the BGV modulus chain and the plaintext
// modulus). Hot paths use Barrett reduction (precomputed per modulus) and
// Shoup multiplication (precomputed per constant operand).

namespace sknn {

// A modulus together with its precomputed Barrett constant
// ratio = floor(2^128 / value), enabling reduction of 128-bit products
// without hardware division.
class Modulus {
 public:
  Modulus() : value_(0), ratio_hi_(0), ratio_lo_(0) {}

  // `value` must be in [2, 2^62).
  explicit Modulus(uint64_t value);

  uint64_t value() const { return value_; }

  // High/low words of the Barrett constant floor(2^128 / value). The SIMD
  // Barrett kernels mirror ReduceU128 in vector lanes and need the raw
  // words.
  uint64_t ratio_hi() const { return ratio_hi_; }
  uint64_t ratio_lo() const { return ratio_lo_; }

  // Reduces a 128-bit value modulo this modulus (Barrett).
  uint64_t ReduceU128(uint128_t x) const;

  // Reduces a 64-bit value.
  uint64_t Reduce(uint64_t x) const {
    if (x < value_) return x;
    return ReduceU128(x);
  }

  // (a * b) mod value, a and b both already reduced.
  uint64_t MulMod(uint64_t a, uint64_t b) const {
    return ReduceU128(Mul64To128(a, b));
  }

  bool operator==(const Modulus& other) const { return value_ == other.value_; }

 private:
  uint64_t value_;
  uint64_t ratio_hi_;
  uint64_t ratio_lo_;
};

// (a + b) mod q; inputs already reduced.
inline uint64_t AddMod(uint64_t a, uint64_t b, uint64_t q) {
  uint64_t s = a + b;
  return (s >= q || s < a) ? s - q : s;
}

// (a - b) mod q; inputs already reduced.
inline uint64_t SubMod(uint64_t a, uint64_t b, uint64_t q) {
  return (a >= b) ? a - b : a + q - b;
}

// (-a) mod q; input already reduced.
inline uint64_t NegMod(uint64_t a, uint64_t q) { return a == 0 ? 0 : q - a; }

// (a * b) mod q via 128-bit product and hardware division. Slower than
// Modulus::MulMod; for cold paths.
inline uint64_t MulModSlow(uint64_t a, uint64_t b, uint64_t q) {
  return static_cast<uint64_t>(Mul64To128(a, b) % q);
}

// a^e mod q (square and multiply).
uint64_t PowMod(uint64_t a, uint64_t e, uint64_t q);

// Multiplicative inverse of a modulo prime q (Fermat). a must be nonzero
// mod q and q must be prime.
uint64_t InvModPrime(uint64_t a, uint64_t q);

// Shoup precomputation for repeated multiplication by the constant
// `operand` modulo q: returns floor(operand * 2^64 / q).
inline uint64_t ShoupPrecompute(uint64_t operand, uint64_t q) {
  return static_cast<uint64_t>(Make128(operand, 0) / q);
}

// Shoup modular multiplication: (x * operand) mod q where operand_shoup =
// ShoupPrecompute(operand, q). Result is in [0, 2q); caller subtracts q if
// needed (lazy form used inside NTT butterflies).
inline uint64_t MulModShoupLazy(uint64_t x, uint64_t operand,
                                uint64_t operand_shoup, uint64_t q) {
  uint64_t hi = MulHigh64(x, operand_shoup);
  return x * operand - hi * q;
}

// Non-lazy Shoup multiplication with final correction.
inline uint64_t MulModShoup(uint64_t x, uint64_t operand,
                            uint64_t operand_shoup, uint64_t q) {
  uint64_t r = MulModShoupLazy(x, operand, operand_shoup, q);
  return r >= q ? r - q : r;
}

// Centered representative of x mod q mapped to int64: in (-q/2, q/2].
inline int64_t CenterMod(uint64_t x, uint64_t q) {
  SKNN_CHECK_LT(x, q);
  if (x > q / 2) return static_cast<int64_t>(x) - static_cast<int64_t>(q);
  return static_cast<int64_t>(x);
}

// Maps a signed value into [0, q).
inline uint64_t ToUnsignedMod(int64_t x, uint64_t q) {
  if (x >= 0) return static_cast<uint64_t>(x) % q;
  uint64_t r = static_cast<uint64_t>(-x) % q;
  return r == 0 ? 0 : q - r;
}

}  // namespace sknn

#endif  // SKNN_MATH_MOD_ARITH_H_
