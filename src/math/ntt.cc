#include "math/ntt.h"

#include <string>

#include "math/prime.h"

namespace sknn {

StatusOr<NttTables> NttTables::Create(size_t n, uint64_t q) {
  if (n < 4 || (n & (n - 1)) != 0) {
    return InvalidArgumentError("NTT degree must be a power of two >= 4");
  }
  if (!IsPrime(q)) {
    return InvalidArgumentError("NTT modulus must be prime");
  }
  if ((q - 1) % (2 * n) != 0) {
    return InvalidArgumentError(
        "NTT modulus must satisfy q = 1 mod 2n (got q=" + std::to_string(q) +
        ")");
  }
  if (q >= (uint64_t{1} << 62)) {
    // The lazy butterflies keep values in [0, 4q); 4q must fit in a word.
    return InvalidArgumentError("NTT modulus must be below 2^62");
  }
  NttTables t;
  t.n_ = n;
  t.log_n_ = 0;
  while ((size_t{1} << t.log_n_) < n) ++t.log_n_;
  t.modulus_ = Modulus(q);
  SKNN_ASSIGN_OR_RETURN(t.psi_, FindPrimitiveRoot(2 * n, q));
  const uint64_t psi_inv = InvModPrime(t.psi_, q);

  t.psi_rev_.resize(n);
  t.psi_rev_shoup_.resize(n);
  t.psi_inv_rev_.resize(n);
  t.psi_inv_rev_shoup_.resize(n);
  uint64_t power = 1;
  uint64_t power_inv = 1;
  std::vector<uint64_t> psi_powers(n), psi_inv_powers(n);
  for (size_t i = 0; i < n; ++i) {
    psi_powers[i] = power;
    psi_inv_powers[i] = power_inv;
    power = t.modulus_.MulMod(power, t.psi_);
    power_inv = t.modulus_.MulMod(power_inv, psi_inv);
  }
  for (size_t i = 0; i < n; ++i) {
    size_t r = static_cast<size_t>(ReverseBits(i, t.log_n_));
    t.psi_rev_[i] = psi_powers[r];
    t.psi_rev_shoup_[i] = ShoupPrecompute(psi_powers[r], q);
    t.psi_inv_rev_[i] = psi_inv_powers[r];
    t.psi_inv_rev_shoup_[i] = ShoupPrecompute(psi_inv_powers[r], q);
  }
  t.n_inv_ = InvModPrime(static_cast<uint64_t>(n % q), q);
  t.n_inv_shoup_ = ShoupPrecompute(t.n_inv_, q);
  t.psi_inv_n_scaled_ = t.modulus_.MulMod(t.psi_inv_rev_[1], t.n_inv_);
  t.psi_inv_n_scaled_shoup_ = ShoupPrecompute(t.psi_inv_n_scaled_, q);
  return t;
}

// Harvey lazy-reduction butterflies. Invariants (see DESIGN.md §math):
//   forward: every stage starts with values < 4q; the top branch is
//     pre-reduced to [0, 2q), the twiddle product lands in [0, 2q)
//     (MulModShoupLazy works for any 64-bit input), so u + v and
//     u + 2q - v stay below 4q. One final pass reduces [0, 4q) -> [0, q).
//   inverse: every stage keeps values < 2q; u + v is reduced back to
//     [0, 2q) eagerly, u + 2q - v < 4q feeds the lazy twiddle product which
//     lands in [0, 2q). The last stage has a single twiddle psi^{-br(1)}
//     into which n^{-1} is folded, with the final correction to [0, q)
//     applied in the same loop.
// The loops themselves live in src/math/simd/ (scalar reference plus
// AVX2/AVX-512 lanes with the same invariants); this class hands its
// twiddle tables to whichever implementation the dispatcher selected.
simd::NttArgs NttTables::KernelArgs() const {
  simd::NttArgs args;
  args.n = n_;
  args.q = modulus_.value();
  args.psi_rev = psi_rev_.data();
  args.psi_rev_shoup = psi_rev_shoup_.data();
  args.psi_inv_rev = psi_inv_rev_.data();
  args.psi_inv_rev_shoup = psi_inv_rev_shoup_.data();
  args.n_inv = n_inv_;
  args.n_inv_shoup = n_inv_shoup_;
  args.psi_inv_n_scaled = psi_inv_n_scaled_;
  args.psi_inv_n_scaled_shoup = psi_inv_n_scaled_shoup_;
  return args;
}

void NttTables::ForwardNtt(uint64_t* a) const {
  simd::ActiveKernels().ntt_forward(KernelArgs(), a);
}

void NttTables::InverseNtt(uint64_t* a) const {
  simd::ActiveKernels().ntt_inverse(KernelArgs(), a);
}

void NaiveNegacyclicMultiply(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b, uint64_t q,
                             std::vector<uint64_t>* out) {
  const size_t n = a.size();
  SKNN_CHECK_EQ(b.size(), n);
  Modulus mod(q);
  out->assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (a[i] == 0) continue;
    for (size_t j = 0; j < n; ++j) {
      const uint64_t prod = mod.MulMod(a[i], b[j]);
      const size_t k = i + j;
      if (k < n) {
        (*out)[k] = AddMod((*out)[k], prod, q);
      } else {
        (*out)[k - n] = SubMod((*out)[k - n], prod, q);
      }
    }
  }
}

}  // namespace sknn
