#include "math/ntt.h"

#include <string>

#include "math/prime.h"

namespace sknn {

StatusOr<NttTables> NttTables::Create(size_t n, uint64_t q) {
  if (n < 4 || (n & (n - 1)) != 0) {
    return InvalidArgumentError("NTT degree must be a power of two >= 4");
  }
  if (!IsPrime(q)) {
    return InvalidArgumentError("NTT modulus must be prime");
  }
  if ((q - 1) % (2 * n) != 0) {
    return InvalidArgumentError(
        "NTT modulus must satisfy q = 1 mod 2n (got q=" + std::to_string(q) +
        ")");
  }
  NttTables t;
  t.n_ = n;
  t.log_n_ = 0;
  while ((size_t{1} << t.log_n_) < n) ++t.log_n_;
  t.modulus_ = Modulus(q);
  SKNN_ASSIGN_OR_RETURN(t.psi_, FindPrimitiveRoot(2 * n, q));
  const uint64_t psi_inv = InvModPrime(t.psi_, q);

  t.psi_rev_.resize(n);
  t.psi_rev_shoup_.resize(n);
  t.psi_inv_rev_.resize(n);
  t.psi_inv_rev_shoup_.resize(n);
  uint64_t power = 1;
  uint64_t power_inv = 1;
  std::vector<uint64_t> psi_powers(n), psi_inv_powers(n);
  for (size_t i = 0; i < n; ++i) {
    psi_powers[i] = power;
    psi_inv_powers[i] = power_inv;
    power = t.modulus_.MulMod(power, t.psi_);
    power_inv = t.modulus_.MulMod(power_inv, psi_inv);
  }
  for (size_t i = 0; i < n; ++i) {
    size_t r = static_cast<size_t>(ReverseBits(i, t.log_n_));
    t.psi_rev_[i] = psi_powers[r];
    t.psi_rev_shoup_[i] = ShoupPrecompute(psi_powers[r], q);
    t.psi_inv_rev_[i] = psi_inv_powers[r];
    t.psi_inv_rev_shoup_[i] = ShoupPrecompute(psi_inv_powers[r], q);
  }
  t.n_inv_ = InvModPrime(static_cast<uint64_t>(n % q), q);
  t.n_inv_shoup_ = ShoupPrecompute(t.n_inv_, q);
  return t;
}

void NttTables::ForwardNtt(uint64_t* a) const {
  const uint64_t q = modulus_.value();
  size_t t = n_;
  for (size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (size_t i = 0; i < m; ++i) {
      const size_t j1 = 2 * i * t;
      const uint64_t s = psi_rev_[m + i];
      const uint64_t s_shoup = psi_rev_shoup_[m + i];
      for (size_t j = j1; j < j1 + t; ++j) {
        const uint64_t u = a[j];
        const uint64_t v = MulModShoup(a[j + t], s, s_shoup, q);
        a[j] = AddMod(u, v, q);
        a[j + t] = SubMod(u, v, q);
      }
    }
  }
}

void NttTables::InverseNtt(uint64_t* a) const {
  const uint64_t q = modulus_.value();
  size_t t = 1;
  for (size_t m = n_; m > 1; m >>= 1) {
    size_t j1 = 0;
    const size_t h = m >> 1;
    for (size_t i = 0; i < h; ++i) {
      const uint64_t s = psi_inv_rev_[h + i];
      const uint64_t s_shoup = psi_inv_rev_shoup_[h + i];
      for (size_t j = j1; j < j1 + t; ++j) {
        const uint64_t u = a[j];
        const uint64_t v = a[j + t];
        a[j] = AddMod(u, v, q);
        a[j + t] = MulModShoup(SubMod(u, v, q), s, s_shoup, q);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  for (size_t j = 0; j < n_; ++j) {
    a[j] = MulModShoup(a[j], n_inv_, n_inv_shoup_, q);
  }
}

void NaiveNegacyclicMultiply(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b, uint64_t q,
                             std::vector<uint64_t>* out) {
  const size_t n = a.size();
  SKNN_CHECK_EQ(b.size(), n);
  Modulus mod(q);
  out->assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (a[i] == 0) continue;
    for (size_t j = 0; j < n; ++j) {
      const uint64_t prod = mod.MulMod(a[i], b[j]);
      const size_t k = i + j;
      if (k < n) {
        (*out)[k] = AddMod((*out)[k], prod, q);
      } else {
        (*out)[k - n] = SubMod((*out)[k - n], prod, q);
      }
    }
  }
}

}  // namespace sknn
