#include "math/mod_arith.h"

namespace sknn {

Modulus::Modulus(uint64_t value) : value_(value) {
  SKNN_CHECK_GE(value, 2u);
  SKNN_CHECK_LT(value, uint64_t{1} << 62);
  // ratio = floor(2^128 / value), computed by long division of 2^128.
  uint128_t numerator_hi = (~uint128_t{0}) / value;  // floor((2^128-1)/value)
  // (2^128 - 1) / v equals floor(2^128/v) unless v divides 2^128, which
  // cannot happen for v >= 2 and v not a power of two; handle powers of two
  // exactly anyway.
  uint128_t ratio = numerator_hi;
  // Correct: 2^128 = (2^128 - 1) + 1; floor((x+1)/v) differs only if
  // v | (x+1).
  uint128_t rem = (~uint128_t{0}) % value;
  if (rem == value - 1) ratio += 1;
  ratio_hi_ = High64(ratio);
  ratio_lo_ = Low64(ratio);
}

uint64_t Modulus::ReduceU128(uint128_t x) const {
  // Barrett reduction of a 128-bit value (SEAL-style).
  uint64_t x_lo = Low64(x);
  uint64_t x_hi = High64(x);

  // Multiply x by ratio (256-bit product), keep bits [128, 192).
  uint64_t tmp1;
  uint64_t carry = MulHigh64(x_lo, ratio_lo_);
  uint128_t prod = Mul64To128(x_lo, ratio_hi_);
  uint64_t tmp2 = Low64(prod);
  uint64_t tmp3 = High64(prod);
  uint128_t sum = static_cast<uint128_t>(tmp2) + carry;
  tmp1 = Low64(sum);
  uint64_t carry2 = High64(sum);
  prod = Mul64To128(x_hi, ratio_lo_);
  sum = static_cast<uint128_t>(Low64(prod)) + tmp1;
  uint64_t carry3 = High64(sum);
  tmp1 = High64(prod);
  uint64_t q_hat = x_hi * ratio_hi_ + tmp3 + carry2 + tmp1 + carry3;

  uint64_t r = x_lo - q_hat * value_;
  while (r >= value_) r -= value_;
  return r;
}

uint64_t PowMod(uint64_t a, uint64_t e, uint64_t q) {
  Modulus mod(q);
  uint64_t base = mod.Reduce(a);
  uint64_t result = 1 % q;
  while (e > 0) {
    if (e & 1) result = mod.MulMod(result, base);
    base = mod.MulMod(base, base);
    e >>= 1;
  }
  return result;
}

uint64_t InvModPrime(uint64_t a, uint64_t q) {
  SKNN_CHECK_NE(a % q, 0u);
  return PowMod(a, q - 2, q);
}

}  // namespace sknn
