#include "baseline/subprotocols.h"

#include "common/logging.h"

namespace sknn {
namespace baseline {
namespace {

// Statistical blinding parameter (bits of mask slack).
constexpr size_t kKappa = 40;

}  // namespace

CloudC2::CloudC2(paillier::PaillierPublicKey pk,
                 paillier::PaillierSecretKey sk, uint64_t seed)
    : rng_(seed), enc_(pk, &rng_), dec_(std::move(pk), std::move(sk)) {}

Subprotocols::Subprotocols(paillier::PaillierPublicKey pk, CloudC2* c2,
                           size_t value_bits, uint64_t seed)
    : pk_(pk), c2_(c2), value_bits_(value_bits), rng_(seed),
      enc_(std::move(pk), &rng_) {
  // Products of two masked values must stay below N: 2*(vb + kappa) slack.
  SKNN_CHECK_LT(2 * (value_bits + kKappa) + 2, pk_.n.BitLength());
}

BigUint Subprotocols::RandomMask() {
  return BigUint::RandomBits(value_bits_ + kKappa, &rng_);
}

StatusOr<BigUint> Subprotocols::SecureMultiply(const BigUint& ca,
                                               const BigUint& cb) {
  SKNN_ASSIGN_OR_RETURN(std::vector<BigUint> out,
                        SecureMultiplyBatch({ca}, {cb}));
  return out[0];
}

StatusOr<std::vector<BigUint>> Subprotocols::SecureMultiplyBatch(
    const std::vector<BigUint>& ca, const std::vector<BigUint>& cb) {
  if (ca.size() != cb.size()) {
    return InvalidArgumentError("SM batch size mismatch");
  }
  std::vector<BigUint> out(ca.size());
  std::vector<BigUint> ra(ca.size()), rb(ca.size());
  std::vector<BigUint> hs(ca.size());
  // C1 -> C2: blinded operands.
  for (size_t i = 0; i < ca.size(); ++i) {
    ra[i] = RandomMask();
    rb[i] = RandomMask();
    SKNN_ASSIGN_OR_RETURN(BigUint era, enc_.Encrypt(ra[i]));
    SKNN_ASSIGN_OR_RETURN(BigUint erb, enc_.Encrypt(rb[i]));
    ops_.encryptions += 2;
    BigUint ca_blind = enc_.Add(ca[i], era);
    BigUint cb_blind = enc_.Add(cb[i], erb);
    ops_.he_additions += 2;
    CountTransfer(ca_blind);
    CountTransfer(cb_blind);
    // C2: decrypt, multiply in the clear, re-encrypt.
    SKNN_ASSIGN_OR_RETURN(BigUint a_blind, c2_->dec().Decrypt(ca_blind));
    SKNN_ASSIGN_OR_RETURN(BigUint b_blind, c2_->dec().Decrypt(cb_blind));
    c2_->ops().decryptions += 2;
    BigUint h = BigUint::MulMod(a_blind, b_blind, pk_.n);
    SKNN_ASSIGN_OR_RETURN(hs[i], c2_->enc().Encrypt(h));
    c2_->ops().encryptions += 1;
    CountTransfer(hs[i]);
  }
  CountRound();
  // C1: strip the blinding: ab = h - a*rb - b*ra - ra*rb.
  for (size_t i = 0; i < ca.size(); ++i) {
    BigUint neg_rb = BigUint::Sub(pk_.n, BigUint::Mod(rb[i], pk_.n));
    BigUint neg_ra = BigUint::Sub(pk_.n, BigUint::Mod(ra[i], pk_.n));
    BigUint t1 = enc_.MulPlain(ca[i], neg_rb);
    BigUint t2 = enc_.MulPlain(cb[i], neg_ra);
    ops_.he_plain_ops += 2;
    BigUint rr = BigUint::MulMod(ra[i], rb[i], pk_.n);
    BigUint neg_rr = rr.IsZero() ? rr : BigUint::Sub(pk_.n, rr);
    BigUint acc = enc_.Add(enc_.Add(hs[i], t1), t2);
    SKNN_ASSIGN_OR_RETURN(acc, enc_.AddPlain(acc, neg_rr));
    ops_.he_additions += 3;
    out[i] = std::move(acc);
  }
  return out;
}

StatusOr<BigUint> Subprotocols::SecureSquaredDistance(
    const std::vector<BigUint>& cp, const std::vector<BigUint>& cq) {
  if (cp.size() != cq.size() || cp.empty()) {
    return InvalidArgumentError("SSED dimension mismatch");
  }
  // diff_i = p_i - q_i (homomorphic), then one batched SM squares all
  // dimensions in a single round, then sum.
  std::vector<BigUint> diffs(cp.size());
  for (size_t i = 0; i < cp.size(); ++i) {
    diffs[i] = enc_.Add(cp[i], enc_.Negate(cq[i]));
    ops_.he_additions += 1;
    ops_.he_plain_ops += 1;
  }
  SKNN_ASSIGN_OR_RETURN(std::vector<BigUint> squares,
                        SecureMultiplyBatch(diffs, diffs));
  BigUint sum = squares[0];
  for (size_t i = 1; i < squares.size(); ++i) {
    sum = enc_.Add(sum, squares[i]);
    ops_.he_additions += 1;
  }
  return sum;
}

StatusOr<std::vector<BigUint>> Subprotocols::SecureBitDecompose(
    const BigUint& cx) {
  SKNN_ASSIGN_OR_RETURN(std::vector<std::vector<BigUint>> out,
                        SecureBitDecomposeBatch({cx}));
  return out[0];
}

StatusOr<std::vector<std::vector<BigUint>>>
Subprotocols::SecureBitDecomposeBatch(const std::vector<BigUint>& cxs) {
  const size_t l = value_bits_;
  const BigUint two(2);
  SKNN_ASSIGN_OR_RETURN(BigUint inv2, BigUint::InvMod(two, pk_.n));
  std::vector<std::vector<BigUint>> bits(cxs.size());
  for (auto& b : bits) b.reserve(l);
  std::vector<BigUint> cz = cxs;
  for (size_t i = 0; i < l; ++i) {
    // One round extracts bit i of every value in the batch.
    for (size_t v = 0; v < cz.size(); ++v) {
      BigUint r = RandomMask();
      SKNN_ASSIGN_OR_RETURN(BigUint er, enc_.Encrypt(r));
      ops_.encryptions += 1;
      BigUint cy = enc_.Add(cz[v], er);
      ops_.he_additions += 1;
      CountTransfer(cy);
      SKNN_ASSIGN_OR_RETURN(BigUint y, c2_->dec().Decrypt(cy));
      c2_->ops().decryptions += 1;
      SKNN_ASSIGN_OR_RETURN(BigUint cbeta,
                            c2_->enc().EncryptU64(y.IsOdd() ? 1 : 0));
      c2_->ops().encryptions += 1;
      CountTransfer(cbeta);
      // Unflip by r's parity: bit = beta XOR (r mod 2).
      BigUint cbit;
      if (r.IsOdd()) {
        SKNN_ASSIGN_OR_RETURN(
            cbit, enc_.AddPlain(enc_.Negate(cbeta), BigUint(1)));
        ops_.he_plain_ops += 1;
        ops_.he_additions += 1;
      } else {
        cbit = cbeta;
      }
      // z <- (z - bit) / 2 (exact since z - bit is even).
      BigUint cz_minus = enc_.Add(cz[v], enc_.Negate(cbit));
      ops_.he_additions += 1;
      ops_.he_plain_ops += 1;
      cz[v] = enc_.MulPlain(cz_minus, inv2);
      ops_.he_plain_ops += 1;
      bits[v].push_back(std::move(cbit));
    }
    CountRound();
  }
  return bits;
}

StatusOr<Subprotocols::MinResult> Subprotocols::SecureMin(
    const std::vector<BigUint>& u_bits, const std::vector<BigUint>& v_bits) {
  SKNN_ASSIGN_OR_RETURN(std::vector<MinResult> out,
                        SecureMinBatch({{u_bits, v_bits}}));
  return std::move(out[0]);
}

StatusOr<std::vector<Subprotocols::MinResult>> Subprotocols::SecureMinBatch(
    const std::vector<std::pair<std::vector<BigUint>,
                                std::vector<BigUint>>>& pairs) {
  const size_t l = value_bits_;
  const size_t m = pairs.size();
  if (m == 0) return InvalidArgumentError("empty SMIN batch");
  for (const auto& [u, v] : pairs) {
    if (u.size() != l || v.size() != l) {
      return InvalidArgumentError("SMIN expects value_bits-long inputs");
    }
  }
  // Coin flip per pair hides which operand plays "x" in the comparison C2
  // resolves.
  std::vector<bool> flip(m);
  for (size_t p = 0; p < m; ++p) flip[p] = rng_.UniformBelow(2) == 1;
  auto x_of = [&](size_t p) -> const std::vector<BigUint>& {
    return flip[p] ? pairs[p].second : pairs[p].first;
  };
  auto y_of = [&](size_t p) -> const std::vector<BigUint>& {
    return flip[p] ? pairs[p].first : pairs[p].second;
  };

  // Stage 1: all bit products x_i*y_i in one batched SM round; XORs follow
  // locally: x XOR y = x + y - 2xy.
  std::vector<BigUint> xs, ys;
  xs.reserve(m * l);
  ys.reserve(m * l);
  for (size_t p = 0; p < m; ++p) {
    for (size_t i = 0; i < l; ++i) {
      xs.push_back(x_of(p)[i]);
      ys.push_back(y_of(p)[i]);
    }
  }
  SKNN_ASSIGN_OR_RETURN(std::vector<BigUint> xy, SecureMultiplyBatch(xs, ys));
  const BigUint minus_two = BigUint::Sub(pk_.n, BigUint(2));

  // Stage 2: DGK comparison terms c_i = y_i - x_i + 1 + 3*sum_{j>i} xor_j
  // (j more significant); x > y iff some c_i == 0. Multiplicatively
  // randomized and permuted; C2 reports one coin-masked bit per pair.
  std::vector<BigUint> lambdas(m);
  for (size_t p = 0; p < m; ++p) {
    std::vector<BigUint> diff_xor(l);
    for (size_t i = 0; i < l; ++i) {
      BigUint minus_2xy = enc_.MulPlain(xy[p * l + i], minus_two);
      diff_xor[i] = enc_.Add(enc_.Add(x_of(p)[i], y_of(p)[i]), minus_2xy);
      ops_.he_plain_ops += 1;
      ops_.he_additions += 2;
    }
    std::vector<BigUint> c_terms(l);
    BigUint prefix;
    bool have_prefix = false;
    for (size_t idx = l; idx-- > 0;) {
      BigUint ci = enc_.Add(y_of(p)[idx], enc_.Negate(x_of(p)[idx]));
      SKNN_ASSIGN_OR_RETURN(ci, enc_.AddPlain(ci, BigUint(1)));
      ops_.he_additions += 2;
      ops_.he_plain_ops += 2;
      if (have_prefix) {
        ci = enc_.Add(ci, enc_.MulPlain(prefix, BigUint(3)));
        ops_.he_additions += 1;
        ops_.he_plain_ops += 1;
      }
      c_terms[idx] = std::move(ci);
      if (!have_prefix) {
        prefix = diff_xor[idx];
        have_prefix = true;
      } else {
        prefix = enc_.Add(prefix, diff_xor[idx]);
        ops_.he_additions += 1;
      }
    }
    std::vector<size_t> perm = rng_.RandomPermutation(l);
    bool any_zero = false;
    for (size_t i = 0; i < l; ++i) {
      BigUint rand_factor =
          BigUint::Add(BigUint::RandomBits(40, &rng_), BigUint(1));
      BigUint masked = enc_.MulPlain(c_terms[perm[i]], rand_factor);
      ops_.he_plain_ops += 1;
      CountTransfer(masked);
      SKNN_ASSIGN_OR_RETURN(BigUint val, c2_->dec().Decrypt(masked));
      c2_->ops().decryptions += 1;
      if (val.IsZero()) any_zero = true;
    }
    SKNN_ASSIGN_OR_RETURN(lambdas[p],
                          c2_->enc().EncryptU64(any_zero ? 1 : 0));
    c2_->ops().encryptions += 1;
    CountTransfer(lambdas[p]);
  }
  CountRound();

  // Stage 3: u_is_min per pair, then min_i = v_i + b*(u_i - v_i) via one
  // more batched SM round.
  std::vector<MinResult> results(m);
  std::vector<BigUint> b_vec, u_minus_v;
  b_vec.reserve(m * l);
  u_minus_v.reserve(m * l);
  for (size_t p = 0; p < m; ++p) {
    BigUint u_is_min;
    if (!flip[p]) {
      // x = u: lambda == (u > v); u_is_min = 1 - lambda.
      SKNN_ASSIGN_OR_RETURN(
          u_is_min, enc_.AddPlain(enc_.Negate(lambdas[p]), BigUint(1)));
      ops_.he_plain_ops += 1;
      ops_.he_additions += 1;
    } else {
      // x = v: lambda == (v > u); if equal, v is picked (same value).
      u_is_min = lambdas[p];
    }
    for (size_t i = 0; i < l; ++i) {
      b_vec.push_back(u_is_min);
      BigUint duv =
          enc_.Add(pairs[p].first[i], enc_.Negate(pairs[p].second[i]));
      ops_.he_additions += 1;
      ops_.he_plain_ops += 1;
      u_minus_v.push_back(std::move(duv));
    }
    results[p].u_is_min = std::move(u_is_min);
  }
  SKNN_ASSIGN_OR_RETURN(std::vector<BigUint> picked,
                        SecureMultiplyBatch(b_vec, u_minus_v));
  for (size_t p = 0; p < m; ++p) {
    results[p].min_bits.resize(l);
    for (size_t i = 0; i < l; ++i) {
      results[p].min_bits[i] =
          enc_.Add(pairs[p].second[i], picked[p * l + i]);
      ops_.he_additions += 1;
    }
  }
  return results;
}

StatusOr<std::vector<BigUint>> Subprotocols::SecureMinN(
    const std::vector<std::vector<BigUint>>& values_bits) {
  if (values_bits.empty()) return InvalidArgumentError("SMIN_n of nothing");
  std::vector<std::vector<BigUint>> current = values_bits;
  while (current.size() > 1) {
    // One tournament level: all pairwise SMINs share their rounds.
    std::vector<std::pair<std::vector<BigUint>, std::vector<BigUint>>> pairs;
    for (size_t i = 0; i + 1 < current.size(); i += 2) {
      pairs.emplace_back(std::move(current[i]), std::move(current[i + 1]));
    }
    std::vector<std::vector<BigUint>> next;
    if (!pairs.empty()) {
      SKNN_ASSIGN_OR_RETURN(std::vector<MinResult> level,
                            SecureMinBatch(pairs));
      for (MinResult& r : level) next.push_back(std::move(r.min_bits));
    }
    if (current.size() % 2 == 1) next.push_back(std::move(current.back()));
    current = std::move(next);
  }
  return current[0];
}

BigUint Subprotocols::BitsToValue(const std::vector<BigUint>& bits) {
  SKNN_CHECK(!bits.empty());
  BigUint acc = bits[0];
  BigUint power(2);
  for (size_t i = 1; i < bits.size(); ++i) {
    acc = enc_.Add(acc, enc_.MulPlain(bits[i], power));
    ops_.he_additions += 1;
    ops_.he_plain_ops += 1;
    power = BigUint::Mul(power, BigUint(2));
  }
  return acc;
}

}  // namespace baseline
}  // namespace sknn
