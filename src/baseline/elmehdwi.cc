#include "baseline/elmehdwi.h"

#include <chrono>

#include "common/logging.h"
#include "common/trace.h"

namespace sknn {
namespace baseline {
namespace {

size_t BitsFor(uint64_t v) {
  size_t bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits == 0 ? 1 : bits;
}

}  // namespace

StatusOr<std::unique_ptr<ElmehdwiSknn>> ElmehdwiSknn::Create(
    const BaselineConfig& config, const data::Dataset& dataset) {
  if (config.k == 0) return InvalidArgumentError("k must be positive");
  if (dataset.num_points() == 0) return InvalidArgumentError("empty dataset");
  auto proto = std::unique_ptr<ElmehdwiSknn>(new ElmehdwiSknn());
  proto->config_ = config;
  proto->dataset_ = dataset;
  // Distances fit in value_bits; add one bit of headroom so the exclusion
  // sentinel 2^l - 1 strictly exceeds every real distance.
  const uint64_t max_dist =
      data::MaxSquaredDistance(dataset.dims(), dataset.MaxValue());
  proto->value_bits_ = config.value_bits != 0 ? config.value_bits
                                              : BitsFor(max_dist) + 1;
  proto->rng_ = std::make_unique<Chacha20Rng>(config.seed);

  SKNN_ASSIGN_OR_RETURN(
      paillier::PaillierKeyPair kp,
      paillier::GeneratePaillierKeys(config.paillier_bits, proto->rng_.get()));
  proto->c2_ = std::make_unique<CloudC2>(kp.pk, kp.sk,
                                         proto->rng_->NextU64());
  proto->c1_ = std::make_unique<Subprotocols>(
      kp.pk, proto->c2_.get(), proto->value_bits_, proto->rng_->NextU64());
  proto->client_dec_ =
      std::make_unique<paillier::PaillierDecryptor>(kp.pk, kp.sk);

  // Data owner encrypts the database for C1.
  paillier::PaillierEncryptor owner_enc(kp.pk, proto->rng_.get());
  proto->db_.resize(dataset.num_points());
  for (size_t i = 0; i < dataset.num_points(); ++i) {
    proto->db_[i].reserve(dataset.dims());
    for (size_t j = 0; j < dataset.dims(); ++j) {
      SKNN_ASSIGN_OR_RETURN(BigUint ct,
                            owner_enc.EncryptU64(dataset.at(i, j)));
      proto->db_[i].push_back(std::move(ct));
    }
  }
  return proto;
}

StatusOr<BaselineResult> ElmehdwiSknn::RunQuery(
    const std::vector<uint64_t>& query) {
  if (query.size() != dataset_.dims()) {
    return InvalidArgumentError("query dimensionality mismatch");
  }
  trace::TraceSpan query_span("baseline.query");
  const auto start = std::chrono::steady_clock::now();
  BaselineResult result;
  c1_->ops() = core::OpCounts();
  c2_->ops() = core::OpCounts();
  const uint64_t rounds_before = c1_->rounds();
  const uint64_t bytes_before = c1_->bytes_exchanged();
  const size_t n = dataset_.num_points();
  const size_t d = dataset_.dims();
  const size_t l = value_bits_;
  const size_t k = std::min(config_.k, n);

  // Client encrypts the query for C1.
  std::vector<BigUint> cq(d);
  {
    trace::TraceSpan span("baseline.encrypt_query");
    for (size_t j = 0; j < d; ++j) {
      SKNN_ASSIGN_OR_RETURN(cq[j], c1_->enc().EncryptU64(query[j]));
      c1_->ops().encryptions += 1;
    }
  }

  // Stage 1 — SSED for every point (one batched SM round): build all n*d
  // differences, square them together, then sum per point.
  std::vector<BigUint> dist(n);
  {
    trace::TraceSpan span("baseline.ssed");
    std::vector<BigUint> diffs;
    diffs.reserve(n * d);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < d; ++j) {
        diffs.push_back(
            c1_->enc().Add(db_[i][j], c1_->enc().Negate(cq[j])));
        c1_->ops().he_additions += 1;
        c1_->ops().he_plain_ops += 1;
      }
    }
    SKNN_ASSIGN_OR_RETURN(std::vector<BigUint> squares,
                          c1_->SecureMultiplyBatch(diffs, diffs));
    for (size_t i = 0; i < n; ++i) {
      BigUint acc = squares[i * d];
      for (size_t j = 1; j < d; ++j) {
        acc = c1_->enc().Add(acc, squares[i * d + j]);
        c1_->ops().he_additions += 1;
      }
      dist[i] = std::move(acc);
    }
  }

  // Stage 2 — SBD of every distance (l rounds for the whole batch).
  std::vector<std::vector<BigUint>> dist_bits;
  {
    trace::TraceSpan span("baseline.sbd");
    SKNN_ASSIGN_OR_RETURN(dist_bits, c1_->SecureBitDecomposeBatch(dist));
  }

  // Stage 3 — k rounds of { SMIN_n; oblivious argmin; exclude; retrieve }.
  const BigUint n_mod = c1_->enc().pk().n;
  std::vector<std::vector<BigUint>> retrieved;
  for (size_t iter = 0; iter < k; ++iter) {
    // Global minimum (bits), then recomposed value.
    BigUint cmin;
    {
      trace::TraceSpan span("baseline.smin");
      SKNN_ASSIGN_OR_RETURN(std::vector<BigUint> min_bits,
                            c1_->SecureMinN(dist_bits));
      cmin = c1_->BitsToValue(min_bits);
    }

    // Oblivious argmin: tau_i = r_i * (d_i - dmin), permuted; C2 marks the
    // first zero with an encrypted indicator vector.
    std::vector<BigUint> indicator(n);
    {
      trace::TraceSpan span("baseline.argmin");
      std::vector<BigUint> dist_vals(n);
      for (size_t i = 0; i < n; ++i) {
        dist_vals[i] = c1_->BitsToValue(dist_bits[i]);
      }
      std::vector<size_t> perm = c1_->rng().RandomPermutation(n);
      std::vector<BigUint> masked(n);
      for (size_t pos = 0; pos < n; ++pos) {
        const size_t i = perm[pos];
        BigUint tau =
            c1_->enc().Add(dist_vals[i], c1_->enc().Negate(cmin));
        c1_->ops().he_additions += 1;
        c1_->ops().he_plain_ops += 1;
        BigUint r = BigUint::Add(BigUint::RandomBits(40, &c1_->rng()),
                                 BigUint(1));
        masked[pos] = c1_->enc().MulPlain(tau, r);
        c1_->ops().he_plain_ops += 1;
        c1_->CountTransfer(masked[pos]);
      }
      // C2: decrypt, find first zero, answer with an encrypted indicator.
      std::vector<BigUint> indicator_perm(n);
      bool found = false;
      for (size_t pos = 0; pos < n; ++pos) {
        SKNN_ASSIGN_OR_RETURN(BigUint v, c2_->dec().Decrypt(masked[pos]));
        c2_->ops().decryptions += 1;
        const bool is_min = !found && v.IsZero();
        if (is_min) found = true;
        SKNN_ASSIGN_OR_RETURN(indicator_perm[pos],
                              c2_->enc().EncryptU64(is_min ? 1 : 0));
        c2_->ops().encryptions += 1;
        c1_->CountTransfer(indicator_perm[pos]);
      }
      c1_->CountRound();
      if (!found) return InternalError("argmin not found (protocol bug)");
      // Un-permute.
      for (size_t pos = 0; pos < n; ++pos) {
        indicator[perm[pos]] = std::move(indicator_perm[pos]);
      }
    }

    // Oblivious retrieval: record_j = sum_i U_i * p_i (batched SM).
    {
      trace::TraceSpan span("baseline.retrieve");
      std::vector<BigUint> sel, vals;
      sel.reserve(n * d);
      vals.reserve(n * d);
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < d; ++j) {
          sel.push_back(indicator[i]);
          vals.push_back(db_[i][j]);
        }
      }
      SKNN_ASSIGN_OR_RETURN(std::vector<BigUint> products,
                            c1_->SecureMultiplyBatch(sel, vals));
      std::vector<BigUint> record(d);
      for (size_t j = 0; j < d; ++j) {
        BigUint acc = products[j];
        for (size_t i = 1; i < n; ++i) {
          acc = c1_->enc().Add(acc, products[i * d + j]);
          c1_->ops().he_additions += 1;
        }
        record[j] = std::move(acc);
      }
      retrieved.push_back(std::move(record));
    }

    // Exclusion: OR the chosen point's distance bits with the indicator
    // so it becomes the all-ones sentinel: bit' = bit + U - bit*U (SBOR),
    // one batched SM for all n*l bit products.
    if (iter + 1 < k) {
      trace::TraceSpan span("baseline.exclude");
      std::vector<BigUint> us, bs;
      us.reserve(n * l);
      bs.reserve(n * l);
      for (size_t i = 0; i < n; ++i) {
        for (size_t b = 0; b < l; ++b) {
          us.push_back(indicator[i]);
          bs.push_back(dist_bits[i][b]);
        }
      }
      SKNN_ASSIGN_OR_RETURN(std::vector<BigUint> ub,
                            c1_->SecureMultiplyBatch(us, bs));
      for (size_t i = 0; i < n; ++i) {
        for (size_t b = 0; b < l; ++b) {
          BigUint sum = c1_->enc().Add(dist_bits[i][b], indicator[i]);
          BigUint neg = c1_->enc().MulPlain(
              ub[i * l + b], BigUint::Sub(n_mod, BigUint(1)));
          dist_bits[i][b] = c1_->enc().Add(sum, neg);
          c1_->ops().he_additions += 2;
          c1_->ops().he_plain_ops += 1;
        }
      }
    }
  }

  // Client decrypts the k records.
  {
    trace::TraceSpan span("baseline.client_decrypt");
    for (const std::vector<BigUint>& record : retrieved) {
      std::vector<uint64_t> point(dataset_.dims());
      for (size_t j = 0; j < dataset_.dims(); ++j) {
        SKNN_ASSIGN_OR_RETURN(BigUint v, client_dec_->Decrypt(record[j]));
        if (!v.FitsU64()) {
          return InternalError("decrypted coordinate overflow");
        }
        point[j] = v.ToU64();
      }
      result.neighbours.push_back(std::move(point));
    }
  }
  result.k = k;
  result.c1_ops = c1_->ops();
  result.c2_ops = c2_->ops();
  result.c1_ops.ExportTo(&MetricsRegistry::Global(), "baseline.c1");
  result.c2_ops.ExportTo(&MetricsRegistry::Global(), "baseline.c2");
  result.rounds = c1_->rounds() - rounds_before;
  result.bytes = c1_->bytes_exchanged() - bytes_before;
  result.query_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return result;
}

}  // namespace baseline
}  // namespace sknn
