#ifndef SKNN_BASELINE_ELMEHDWI_H_
#define SKNN_BASELINE_ELMEHDWI_H_

#include <memory>
#include <vector>

#include "baseline/subprotocols.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "core/metrics.h"
#include "data/dataset.h"

// The Elmehdwi–Samanthula–Jiang secure k-NN protocol (ICDE 2014) — the
// state-of-the-art baseline the paper compares against. Paillier-based,
// exact, with the characteristic O(k) interactive structure:
//   1. SSED: encrypted squared distances (one batched SM round),
//   2. SBD: bit decomposition of every distance (l rounds),
//   3. k iterations of { SMIN_n tournament; oblivious argmin via masked
//      differences; exclusion by forcing the chosen distance to max;
//      oblivious record retrieval }.
//
// Outputs the exact k nearest records in encrypted form.

namespace sknn {
namespace baseline {

struct BaselineConfig {
  size_t k = 5;
  // Paillier modulus size. 512+ for realism; tests use smaller.
  size_t paillier_bits = 512;
  // Bound: plaintext values (coordinates and distances) fit value_bits
  // bits. Derived from data when zero.
  size_t value_bits = 0;
  uint64_t seed = 1;
};

struct BaselineResult {
  std::vector<std::vector<uint64_t>> neighbours;
  size_t k = 0;
  core::OpCounts c1_ops;
  core::OpCounts c2_ops;
  uint64_t rounds = 0;
  uint64_t bytes = 0;
  double query_seconds = 0;
};

class ElmehdwiSknn {
 public:
  // Sets up keys and the encrypted database.
  static StatusOr<std::unique_ptr<ElmehdwiSknn>> Create(
      const BaselineConfig& config, const data::Dataset& dataset);

  // Runs one exact k-NN query.
  StatusOr<BaselineResult> RunQuery(const std::vector<uint64_t>& query);

  size_t value_bits() const { return value_bits_; }

 private:
  ElmehdwiSknn() = default;

  BaselineConfig config_;
  data::Dataset dataset_;
  size_t value_bits_ = 0;
  std::unique_ptr<Chacha20Rng> rng_;
  std::unique_ptr<CloudC2> c2_;
  std::unique_ptr<Subprotocols> c1_;
  std::unique_ptr<paillier::PaillierDecryptor> client_dec_;
  // Encrypted database: db_[i][j] = Enc(point i, dim j).
  std::vector<std::vector<BigUint>> db_;
};

}  // namespace baseline
}  // namespace sknn

#endif  // SKNN_BASELINE_ELMEHDWI_H_
