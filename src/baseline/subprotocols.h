#ifndef SKNN_BASELINE_SUBPROTOCOLS_H_
#define SKNN_BASELINE_SUBPROTOCOLS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/trace.h"
#include "core/metrics.h"
#include "crypto/paillier.h"

// Building blocks of the Elmehdwi–Samanthula–Jiang baseline (ICDE 2014),
// the protocol the paper compares against ("Yousef et al."). Two
// non-colluding clouds: C1 holds the Paillier-encrypted data, C2 holds the
// secret key. Every subprotocol is exact; blinding uses statistically
// masking randomizers over the bounded value domain (documented deviation:
// the original SBD is probabilistic with retries, ours chooses masks that
// avoid modular wrap so one pass always succeeds).
//
// All methods count operations into the two clouds' OpCounts and count a
// round each time the C1->C2->C1 interaction pattern completes.

namespace sknn {
namespace baseline {

// The C2 side: decryption oracle duties of the key-holding cloud.
class CloudC2 {
 public:
  CloudC2(paillier::PaillierPublicKey pk, paillier::PaillierSecretKey sk,
          uint64_t seed);

  const paillier::PaillierEncryptor& enc() const { return enc_; }
  const paillier::PaillierDecryptor& dec() const { return dec_; }
  core::OpCounts& ops() { return ops_; }
  Chacha20Rng& rng() { return rng_; }

 private:
  Chacha20Rng rng_;
  paillier::PaillierEncryptor enc_;
  paillier::PaillierDecryptor dec_;
  core::OpCounts ops_;
};

// The C1 side plus the interactive subprotocols (C1 drives, C2 assists).
class Subprotocols {
 public:
  // `value_bits` bounds every plaintext value handled (distances fit in
  // value_bits bits); masks are sized so no modular wrap can occur.
  Subprotocols(paillier::PaillierPublicKey pk, CloudC2* c2, size_t value_bits,
               uint64_t seed);

  // SM: Enc(a), Enc(b) -> Enc(a*b). One C1->C2->C1 round.
  StatusOr<BigUint> SecureMultiply(const BigUint& ca, const BigUint& cb);

  // Batched SM (one logical round for the whole batch, as in the paper).
  StatusOr<std::vector<BigUint>> SecureMultiplyBatch(
      const std::vector<BigUint>& ca, const std::vector<BigUint>& cb);

  // SSED: encrypted points -> Enc(squared euclidean distance).
  StatusOr<BigUint> SecureSquaredDistance(const std::vector<BigUint>& cp,
                                          const std::vector<BigUint>& cq);

  // SBD: Enc(x) -> [Enc(x_0), ..., Enc(x_{l-1})] (LSB first), l =
  // value_bits. l rounds.
  StatusOr<std::vector<BigUint>> SecureBitDecompose(const BigUint& cx);

  // Batched SBD over many values: still l rounds total (one per bit
  // position across the whole batch), as in the paper.
  StatusOr<std::vector<std::vector<BigUint>>> SecureBitDecomposeBatch(
      const std::vector<BigUint>& cxs);

  // SMIN over two bit-decomposed values: returns the encrypted bits of
  // min(u, v) plus Enc(u < v ? 1 : 0). C2 learns only a coin-flipped
  // comparison outcome. Constant rounds.
  struct MinResult {
    std::vector<BigUint> min_bits;
    BigUint u_is_min;  // Enc(1) if u <= v else Enc(0)
  };
  StatusOr<MinResult> SecureMin(const std::vector<BigUint>& u_bits,
                                const std::vector<BigUint>& v_bits);

  // Batched SMIN over independent pairs: three interaction rounds for the
  // whole batch (the paper evaluates one tournament level in parallel).
  StatusOr<std::vector<MinResult>> SecureMinBatch(
      const std::vector<std::pair<std::vector<BigUint>,
                                  std::vector<BigUint>>>& pairs);

  // SMIN_n: tournament minimum of n bit-decomposed values; returns the
  // encrypted bits of the global minimum. ceil(log2 n) batched levels.
  StatusOr<std::vector<BigUint>> SecureMinN(
      const std::vector<std::vector<BigUint>>& values_bits);

  // Recomposes bits into Enc(x) locally.
  BigUint BitsToValue(const std::vector<BigUint>& bits);

  const paillier::PaillierEncryptor& enc() const { return enc_; }
  core::OpCounts& ops() { return ops_; }
  uint64_t rounds() const { return rounds_; }
  uint64_t bytes_exchanged() const { return bytes_; }
  size_t value_bits() const { return value_bits_; }
  Chacha20Rng& rng() { return rng_; }

  // Accounting helpers (also used by the top-level protocol driver). A
  // transfer also attributes its bytes to the active trace span, so baseline
  // phases get per-span bandwidth like the BGV protocol's channel does.
  void CountRound() { ++rounds_; }
  void CountTransfer(const BigUint& ciphertext) {
    const uint64_t b = (ciphertext.BitLength() + 7) / 8;
    bytes_ += b;
    trace::Tracer::Global().AddBytesSent(b);
  }

 private:
  // A blinding randomizer that cannot wrap: uniform in [0, 2^{mask_bits}).
  BigUint RandomMask();

  paillier::PaillierPublicKey pk_;
  CloudC2* c2_;
  size_t value_bits_;
  Chacha20Rng rng_;
  paillier::PaillierEncryptor enc_;
  core::OpCounts ops_;
  uint64_t rounds_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace baseline
}  // namespace sknn

#endif  // SKNN_BASELINE_SUBPROTOCOLS_H_
