#include "crypto/paillier.h"

#include "common/logging.h"

namespace sknn {
namespace paillier {
namespace {

// L(x) = (x - 1) / n; x must be = 1 mod n.
BigUint LFunction(const BigUint& x, const BigUint& n) {
  BigUint q, r;
  BigUint::DivMod(BigUint::Sub(x, BigUint(1)), n, &q, &r);
  SKNN_CHECK(r.IsZero());
  return q;
}

}  // namespace

StatusOr<PaillierKeyPair> GeneratePaillierKeys(size_t modulus_bits,
                                               Chacha20Rng* rng) {
  if (modulus_bits < 64 || modulus_bits > 4096) {
    return InvalidArgumentError("Paillier modulus must be 64..4096 bits");
  }
  const size_t half = modulus_bits / 2;
  for (int attempt = 0; attempt < 64; ++attempt) {
    BigUint p = BigUint::RandomPrime(half, rng);
    BigUint q = BigUint::RandomPrime(modulus_bits - half, rng);
    if (p == q) continue;
    BigUint n = BigUint::Mul(p, q);
    if (n.BitLength() != modulus_bits) continue;
    PaillierKeyPair kp;
    kp.pk.n = n;
    kp.pk.n_squared = BigUint::Mul(n, n);
    BigUint p1 = BigUint::Sub(p, BigUint(1));
    BigUint q1 = BigUint::Sub(q, BigUint(1));
    kp.sk.lambda = BigUint::Lcm(p1, q1);
    // mu = L(g^lambda mod n^2)^{-1} mod n with g = n+1:
    // g^lambda = 1 + lambda*n mod n^2, so L(...) = lambda mod n.
    BigUint lambda_mod_n = BigUint::Mod(kp.sk.lambda, n);
    auto mu = BigUint::InvMod(lambda_mod_n, n);
    if (!mu.ok()) continue;
    kp.sk.mu = std::move(mu).value();
    return kp;
  }
  return InternalError("failed to generate Paillier keys");
}

PaillierEncryptor::PaillierEncryptor(PaillierPublicKey pk, Chacha20Rng* rng)
    : pk_(std::move(pk)),
      mont_n2_(std::make_unique<MontgomeryCtx>(pk_.n_squared)),
      rng_(rng) {}

StatusOr<BigUint> PaillierEncryptor::Encrypt(const BigUint& m) const {
  if (BigUint::Compare(m, pk_.n) >= 0) {
    return InvalidArgumentError("Paillier plaintext out of range");
  }
  // r uniform in [1, n) coprime to n (overwhelmingly likely).
  BigUint r = BigUint::Add(
      BigUint::RandomBelow(BigUint::Sub(pk_.n, BigUint(1)), rng_), BigUint(1));
  // c = (1 + m*n) * r^n mod n^2.
  BigUint gm = BigUint::Mod(BigUint::Add(BigUint(1), BigUint::Mul(m, pk_.n)),
                            pk_.n_squared);
  BigUint rn = mont_n2_->PowMod(r, pk_.n);
  return BigUint::MulMod(gm, rn, pk_.n_squared);
}

StatusOr<BigUint> PaillierEncryptor::EncryptU64(uint64_t m) const {
  return Encrypt(BigUint(m));
}

BigUint PaillierEncryptor::Add(const BigUint& ca, const BigUint& cb) const {
  return BigUint::MulMod(ca, cb, pk_.n_squared);
}

StatusOr<BigUint> PaillierEncryptor::AddPlain(const BigUint& ca,
                                              const BigUint& b) const {
  if (BigUint::Compare(b, pk_.n) >= 0) {
    return InvalidArgumentError("Paillier plaintext out of range");
  }
  BigUint gb = BigUint::Mod(BigUint::Add(BigUint(1), BigUint::Mul(b, pk_.n)),
                            pk_.n_squared);
  return BigUint::MulMod(ca, gb, pk_.n_squared);
}

BigUint PaillierEncryptor::MulPlain(const BigUint& ca,
                                    const BigUint& k) const {
  return mont_n2_->PowMod(ca, k);
}

BigUint PaillierEncryptor::Negate(const BigUint& ca) const {
  return MulPlain(ca, BigUint::Sub(pk_.n, BigUint(1)));
}

StatusOr<BigUint> PaillierEncryptor::Rerandomize(const BigUint& ca) const {
  SKNN_ASSIGN_OR_RETURN(BigUint zero, EncryptU64(0));
  return Add(ca, zero);
}

PaillierDecryptor::PaillierDecryptor(PaillierPublicKey pk,
                                     PaillierSecretKey sk)
    : pk_(std::move(pk)),
      sk_(std::move(sk)),
      mont_n2_(std::make_unique<MontgomeryCtx>(pk_.n_squared)) {}

StatusOr<BigUint> PaillierDecryptor::Decrypt(const BigUint& c) const {
  if (BigUint::Compare(c, pk_.n_squared) >= 0 || c.IsZero()) {
    return InvalidArgumentError("Paillier ciphertext out of range");
  }
  BigUint x = mont_n2_->PowMod(c, sk_.lambda);
  BigUint l = LFunction(x, pk_.n);
  return BigUint::MulMod(l, sk_.mu, pk_.n);
}

StatusOr<int64_t> PaillierDecryptor::DecryptSignedU64(const BigUint& c) const {
  SKNN_ASSIGN_OR_RETURN(BigUint m, Decrypt(c));
  BigUint half = pk_.n.ShiftRight(1);
  if (BigUint::Compare(m, half) > 0) {
    BigUint mag = BigUint::Sub(pk_.n, m);
    if (!mag.FitsU64() ||
        mag.ToU64() > static_cast<uint64_t>(INT64_MAX)) {
      return OutOfRangeError("signed Paillier value too large");
    }
    return -static_cast<int64_t>(mag.ToU64());
  }
  if (!m.FitsU64() || m.ToU64() > static_cast<uint64_t>(INT64_MAX)) {
    return OutOfRangeError("signed Paillier value too large");
  }
  return static_cast<int64_t>(m.ToU64());
}

}  // namespace paillier
}  // namespace sknn
