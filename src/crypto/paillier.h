#ifndef SKNN_CRYPTO_PAILLIER_H_
#define SKNN_CRYPTO_PAILLIER_H_

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "math/bigint.h"

// The Paillier cryptosystem (additively homomorphic), built on the from-
// scratch bignum substrate. This is the cryptographic tool underlying the
// Elmehdwi–Samanthula–Jiang baseline SkNN protocol the paper compares
// against.
//
// Standard instantiation with g = n + 1:
//   Enc(m; r) = (1 + m*n) * r^n  mod n^2
//   Dec(c)    = L(c^lambda mod n^2) * mu mod n,  L(x) = (x-1)/n

namespace sknn {
namespace paillier {

struct PaillierPublicKey {
  BigUint n;
  BigUint n_squared;

  size_t modulus_bits() const { return n.BitLength(); }
};

struct PaillierSecretKey {
  BigUint lambda;  // lcm(p-1, q-1)
  BigUint mu;      // L(g^lambda mod n^2)^{-1} mod n
};

struct PaillierKeyPair {
  PaillierPublicKey pk;
  PaillierSecretKey sk;
};

// Generates a key pair with an RSA modulus of `modulus_bits` bits.
StatusOr<PaillierKeyPair> GeneratePaillierKeys(size_t modulus_bits,
                                               Chacha20Rng* rng);

// Encryption / homomorphic operations under a public key.
class PaillierEncryptor {
 public:
  PaillierEncryptor(PaillierPublicKey pk, Chacha20Rng* rng);

  // Encrypts m in [0, n).
  StatusOr<BigUint> Encrypt(const BigUint& m) const;
  StatusOr<BigUint> EncryptU64(uint64_t m) const;

  // Enc(a) (+) Enc(b) = Enc(a + b mod n).
  BigUint Add(const BigUint& ca, const BigUint& cb) const;
  // Enc(a) (+) b = Enc(a + b mod n) without a fresh encryption's cost.
  StatusOr<BigUint> AddPlain(const BigUint& ca, const BigUint& b) const;
  // Enc(a) (*) k = Enc(a * k mod n).
  BigUint MulPlain(const BigUint& ca, const BigUint& k) const;
  // Enc(a) -> Enc(n - a) = Enc(-a).
  BigUint Negate(const BigUint& ca) const;
  // Fresh randomization of a ciphertext (same plaintext, new randomness).
  StatusOr<BigUint> Rerandomize(const BigUint& ca) const;

  const PaillierPublicKey& pk() const { return pk_; }

 private:
  PaillierPublicKey pk_;
  std::unique_ptr<MontgomeryCtx> mont_n2_;
  Chacha20Rng* rng_;
};

// Decryption under a secret key.
class PaillierDecryptor {
 public:
  PaillierDecryptor(PaillierPublicKey pk, PaillierSecretKey sk);

  StatusOr<BigUint> Decrypt(const BigUint& c) const;
  // Decrypts and reduces into a signed interpretation: values above n/2 are
  // returned as negative offsets (v - n), which the baseline protocol uses
  // for comparisons.
  StatusOr<int64_t> DecryptSignedU64(const BigUint& c) const;

 private:
  PaillierPublicKey pk_;
  PaillierSecretKey sk_;
  std::unique_ptr<MontgomeryCtx> mont_n2_;
};

}  // namespace paillier
}  // namespace sknn

#endif  // SKNN_CRYPTO_PAILLIER_H_
