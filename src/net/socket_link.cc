#include "net/socket_link.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "common/metrics_registry.h"
#include "common/serial.h"
#include "common/trace.h"
#include "net/frame.h"

namespace sknn {
namespace net {

namespace {

MetricsRegistry::Counter* SocketCounter(const char* name) {
  return MetricsRegistry::Global().GetCounter(std::string("net.socket.") +
                                              name);
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return InternalError(std::string("fcntl(O_NONBLOCK): ") + strerror(errno));
  }
  return Status::Ok();
}

void SetSocketOptions(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Ciphertext bundles are MB-scale; default buffers stall the poll loop.
  int buf = 4 << 20;
  setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
}

StatusOr<sockaddr_in> ResolveAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("cannot parse IPv4 address '" + host + "'");
  }
  return addr;
}

// Reads the little-endian u64 payload length at frame-header offset 16.
uint64_t HeaderPayloadLen(const uint8_t* header) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t{header[16 + i]} << (8 * i);
  return v;
}

uint32_t HeaderMagic(const uint8_t* header) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t{header[i]} << (8 * i);
  return v;
}

}  // namespace

SocketChannel::SocketChannel(int fd, std::string name)
    : fd_(fd), name_(std::move(name)) {
  SetNonBlocking(fd_);  // best-effort; a blocking fd only slows polls down
  SetSocketOptions(fd_);
}

SocketChannel::~SocketChannel() { Close(); }

void SocketChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SocketChannel::Send(std::vector<uint8_t> message) {
  if (fd_ < 0) return AbortedError("send on closed socket " + name_);
  SocketCounter("messages_sent")->Increment();
  size_t off = 0;
  int stalled_polls = 0;
  while (off < message.size()) {
    const ssize_t n = ::send(fd_, message.data() + off, message.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      stalled_polls = 0;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel send buffer full: wait for writability, bounded so a peer
      // that stopped reading cannot wedge us forever.
      if (++stalled_polls > 500) {
        return DeadlineExceededError(
            "send on " + name_ + " stalled (peer not reading) after " +
            std::to_string(off) + "/" + std::to_string(message.size()) +
            " bytes");
      }
      pollfd pfd{fd_, POLLOUT, 0};
      const int r = ::poll(&pfd, 1, io_poll_ms_);
      if (r < 0 && errno != EINTR) {
        return AbortedError("poll(POLLOUT) on " + name_ + ": " +
                            strerror(errno));
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    SocketCounter("send_errors")->Increment();
    return AbortedError("peer of " + name_ + " closed the connection (" +
                        strerror(errno) + ") after " + std::to_string(off) +
                        "/" + std::to_string(message.size()) + " bytes sent");
  }
  bytes_sent_ += message.size();
  SocketCounter("bytes_sent")->Add(message.size());
  return Status::Ok();
}

Status SocketChannel::FillFromSocket(int timeout_ms) {
  if (fd_ < 0) return AbortedError("receive on closed socket " + name_);
  if (peer_eof_) return Status::Ok();
  uint8_t chunk[64 * 1024];
  bool waited = false;
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.insert(buf_.end(), chunk, chunk + n);
      bytes_received_ += static_cast<uint64_t>(n);
      SocketCounter("bytes_received")->Add(static_cast<uint64_t>(n));
      // Keep draining without waiting: more may already be queued.
      continue;
    }
    if (n == 0) {
      peer_eof_ = true;
      return Status::Ok();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (waited || timeout_ms <= 0) return Status::Ok();
      pollfd pfd{fd_, POLLIN, 0};
      const int r = ::poll(&pfd, 1, timeout_ms);
      if (r < 0 && errno != EINTR) {
        return AbortedError("poll(POLLIN) on " + name_ + ": " +
                            strerror(errno));
      }
      waited = true;  // one wait per fill; the caller owns the retry budget
      if (r <= 0) return Status::Ok();
      continue;
    }
    if (errno == ECONNRESET) {
      peer_eof_ = true;
      return Status::Ok();
    }
    return AbortedError("recv on " + name_ + ": " + strerror(errno));
  }
}

StatusOr<bool> SocketChannel::ExtractFrame(std::vector<uint8_t>* out) {
  if (buf_.size() < kFrameHeaderBytes) return false;
  if (HeaderMagic(buf_.data()) != kFrameMagic) {
    // The stream no longer starts at a frame boundary — a corrupted or
    // truncated frame upstream. There is no resync point inside a TCP
    // stream, so surface kDataLoss and let leg recovery drain us.
    SocketCounter("desync")->Increment();
    std::ostringstream os;
    os << "stream on " << name_ << " desynchronized: expected frame magic 0x"
       << std::hex << kFrameMagic << ", found 0x" << HeaderMagic(buf_.data())
       << std::dec << " with " << buf_.size() << " bytes buffered";
    buf_.clear();
    return DataLossError(os.str());
  }
  const uint64_t payload_len = HeaderPayloadLen(buf_.data());
  if (payload_len > kMaxSocketFramePayload) {
    SocketCounter("desync")->Increment();
    std::ostringstream os;
    os << "frame header on " << name_ << " announces " << payload_len
       << " payload bytes (cap " << kMaxSocketFramePayload
       << "); treating the stream as desynchronized";
    buf_.clear();
    return DataLossError(os.str());
  }
  const uint64_t total = kFrameHeaderBytes + payload_len;
  if (buf_.size() < total) return false;
  out->assign(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(total));
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(total));
  return true;
}

StatusOr<std::vector<uint8_t>> SocketChannel::Receive() {
  std::vector<uint8_t> frame;
  // First try what is already buffered, then one bounded kernel fill.
  SKNN_ASSIGN_OR_RETURN(bool complete, ExtractFrame(&frame));
  if (!complete) {
    SKNN_RETURN_IF_ERROR(FillFromSocket(io_poll_ms_));
    SKNN_ASSIGN_OR_RETURN(complete, ExtractFrame(&frame));
  }
  if (complete) {
    SocketCounter("messages_received")->Increment();
    return frame;
  }
  if (peer_eof_) {
    if (buf_.empty()) {
      return AbortedError("peer of " + name_ +
                          " disconnected (clean EOF at a frame boundary)");
    }
    const size_t leftover = buf_.size();
    buf_.clear();
    return DataLossError("connection " + name_ + " truncated mid-frame: " +
                         std::to_string(leftover) +
                         " bytes of an incomplete frame at EOF");
  }
  return UnavailableError("no complete frame on " + name_ + " within " +
                          std::to_string(io_poll_ms_) + "ms poll window (" +
                          std::to_string(buf_.size()) + " bytes buffered)");
}

StatusOr<bool> SocketChannel::WaitReadable(int timeout_ms) {
  if (!buf_.empty()) return true;
  if (fd_ < 0 || peer_eof_) {
    return AbortedError("peer of " + name_ + " disconnected");
  }
  pollfd pfd{fd_, POLLIN, 0};
  const int r = ::poll(&pfd, 1, timeout_ms);
  if (r < 0 && errno != EINTR) {
    return AbortedError("poll(POLLIN) on " + name_ + ": " + strerror(errno));
  }
  if (r <= 0) return false;
  if (pfd.revents & (POLLHUP | POLLERR)) {
    // Readable-with-hangup still delivers queued bytes; let Receive sort
    // EOF-vs-data out. Report readable so the caller proceeds to Receive.
    return true;
  }
  return true;
}

void SocketChannel::DiscardPending() {
  buf_.clear();
  if (fd_ < 0 || peer_eof_) return;
  uint8_t chunk[64 * 1024];
  int quiet_polls = 0;
  // Keep discarding until the stream stays quiet for two short polls —
  // in-flight loopback bytes land within microseconds.
  while (quiet_polls < 2) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      bytes_received_ += static_cast<uint64_t>(n);
      SocketCounter("bytes_received")->Add(static_cast<uint64_t>(n));
      SocketCounter("bytes_discarded")->Add(static_cast<uint64_t>(n));
      quiet_polls = 0;
      continue;
    }
    if (n == 0 || (n < 0 && errno == ECONNRESET)) {
      peer_eof_ = true;
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    pollfd pfd{fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 2);
    if (r <= 0) ++quiet_polls;
  }
}

SocketListener::~SocketListener() { Close(); }

void SocketListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<std::unique_ptr<SocketListener>> SocketListener::Listen(
    const std::string& host, uint16_t port) {
  SKNN_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveAddr(host, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return InternalError(std::string("socket: ") + strerror(errno));
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    return UnavailableError("bind " + host + ":" + std::to_string(port) +
                            ": " + err);
  }
  if (::listen(fd, 64) < 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    return InternalError("listen: " + err);
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  uint16_t actual_port = port;
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    actual_port = ntohs(bound.sin_port);
  }
  return std::unique_ptr<SocketListener>(
      new SocketListener(fd, actual_port));
}

StatusOr<std::unique_ptr<SocketChannel>> SocketListener::Accept(
    int timeout_ms, const std::string& name) {
  if (fd_ < 0) return FailedPreconditionError("accept on closed listener");
  pollfd pfd{fd_, POLLIN, 0};
  const int r = ::poll(&pfd, 1, timeout_ms);
  if (r < 0 && errno != EINTR) {
    return InternalError(std::string("poll(accept): ") + strerror(errno));
  }
  if (r <= 0) {
    return UnavailableError("no connection within " +
                            std::to_string(timeout_ms) + "ms accept window");
  }
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return UnavailableError("connection vanished before accept");
    }
    return InternalError(std::string("accept: ") + strerror(errno));
  }
  SocketCounter("accepts")->Increment();
  return std::make_unique<SocketChannel>(conn, name);
}

StatusOr<std::unique_ptr<SocketChannel>> ConnectSocket(
    const std::string& host, uint16_t port, int timeout_ms,
    const std::string& name) {
  const std::string target = host.empty() ? "127.0.0.1" : host;
  SKNN_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveAddr(target, port));
  if (addr.sin_addr.s_addr == htonl(INADDR_ANY)) {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return InternalError(std::string("socket: ") + strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      SocketCounter("connects")->Increment();
      return std::make_unique<SocketChannel>(fd, name);
    }
    const int saved = errno;
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      return UnavailableError("connect " + target + ":" +
                              std::to_string(port) + " timed out after " +
                              std::to_string(timeout_ms) + "ms (" +
                              strerror(saved) + ")");
    }
    // The peer server may still be binding; retry until the deadline.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

namespace {

// Mirrors LinkEndpointImpl from channel.cc: per-direction LinkStats, round
// counting, and trace-span byte attribution, delegating transport to a
// SocketChannel. Single-threaded like InMemoryLink.
class CountingSocketEndpoint : public Channel {
 public:
  CountingSocketEndpoint(SocketChannel* transport, LinkStats* stats,
                         int* last_direction, bool is_a)
      : transport_(transport),
        stats_(stats),
        last_direction_(last_direction),
        is_a_(is_a) {}

  Status Send(std::vector<uint8_t> message) override {
    trace::Tracer::Global().AddBytesSent(message.size());
    const int dir = is_a_ ? 1 : -1;
    if (*last_direction_ != dir) {
      ++stats_->rounds;
      *last_direction_ = dir;
    }
    if (is_a_) {
      ++stats_->messages_a_to_b;
      stats_->bytes_a_to_b += message.size();
    } else {
      ++stats_->messages_b_to_a;
      stats_->bytes_b_to_a += message.size();
    }
    return transport_->Send(std::move(message));
  }

  StatusOr<std::vector<uint8_t>> Receive() override {
    SKNN_ASSIGN_OR_RETURN(std::vector<uint8_t> msg, transport_->Receive());
    trace::Tracer::Global().AddBytesReceived(msg.size());
    return msg;
  }

 private:
  SocketChannel* transport_;
  LinkStats* stats_;
  int* last_direction_;
  bool is_a_;
};

}  // namespace

SocketLink::~SocketLink() = default;

StatusOr<std::unique_ptr<SocketLink>> SocketLink::Create() {
  SKNN_ASSIGN_OR_RETURN(std::unique_ptr<SocketListener> listener,
                        SocketListener::Listen("127.0.0.1", 0));
  SKNN_ASSIGN_OR_RETURN(
      std::unique_ptr<SocketChannel> a,
      ConnectSocket("127.0.0.1", listener->port(), /*timeout_ms=*/2000,
                    "socket-link A"));
  SKNN_ASSIGN_OR_RETURN(
      std::unique_ptr<SocketChannel> b,
      listener->Accept(/*timeout_ms=*/2000, "socket-link B"));
  auto link = std::unique_ptr<SocketLink>(new SocketLink());
  link->a_ = std::move(a);
  link->b_ = std::move(b);
  link->a_counting_ = std::make_unique<CountingSocketEndpoint>(
      link->a_.get(), &link->stats_, &link->last_direction_, /*is_a=*/true);
  link->b_counting_ = std::make_unique<CountingSocketEndpoint>(
      link->b_.get(), &link->stats_, &link->last_direction_, /*is_a=*/false);
  return link;
}

void SocketLink::Drain() {
  // Two passes: bytes still queued in the kernel on one side can surface
  // after the other side's discard returns.
  a_->DiscardPending();
  b_->DiscardPending();
  a_->DiscardPending();
  b_->DiscardPending();
}

}  // namespace net
}  // namespace sknn
