#include "net/resilient_channel.h"

#include <chrono>
#include <sstream>
#include <thread>

#include "common/metrics_registry.h"

namespace sknn {
namespace net {
namespace {

// A reorder stash larger than this means the expected frame is not coming
// (e.g. it was dropped and everything behind it piled up).
constexpr size_t kMaxStashedFrames = 64;

MetricsRegistry::Counter* NetCounter(const char* name) {
  return MetricsRegistry::Global().GetCounter(name);
}

}  // namespace

ResilientChannel::ResilientChannel(Channel* inner, const RetryPolicy& policy,
                                   uint64_t seed, std::string name)
    : inner_(inner),
      policy_(policy),
      jitter_rng_(seed),
      name_(std::move(name)) {}

Status ResilientChannel::Send(std::vector<uint8_t> message) {
  return SendMessage(MessageType::kOpaque, message);
}

Status ResilientChannel::SendMessage(MessageType type,
                                     const std::vector<uint8_t>& payload) {
  static MetricsRegistry::Counter* sent = NetCounter("net.frames.sent");
  static MetricsRegistry::Counter* overhead =
      NetCounter("net.frames.overhead_bytes");
  sent->Increment();
  overhead->Add(kFrameHeaderBytes);
  return inner_->Send(EncodeFrame(type, send_seq_++, payload));
}

StatusOr<std::vector<uint8_t>> ResilientChannel::Receive() {
  return ReceiveInternal(/*check_type=*/false, MessageType::kOpaque);
}

StatusOr<std::vector<uint8_t>> ResilientChannel::ReceiveMessage(
    MessageType expected) {
  return ReceiveInternal(/*check_type=*/true, expected);
}

void ResilientChannel::Backoff(int attempt) {
  double delay = static_cast<double>(policy_.base_backoff_us);
  for (int i = 0; i < attempt; ++i) delay *= policy_.backoff_multiplier;
  if (delay > static_cast<double>(policy_.max_backoff_us)) {
    delay = static_cast<double>(policy_.max_backoff_us);
  }
  if (policy_.jitter > 0) {
    const double u =
        static_cast<double>(jitter_rng_.NextU32()) / 4294967296.0;
    delay *= 1.0 - policy_.jitter + 2.0 * policy_.jitter * u;
  }
  if (delay >= 1.0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(delay)));
  }
}

StatusOr<Frame> ResilientChannel::NextFrameInOrder() {
  static MetricsRegistry::Counter* received =
      NetCounter("net.frames.received");
  static MetricsRegistry::Counter* corrupt = NetCounter("net.corrupt_frames");
  static MetricsRegistry::Counter* retries = NetCounter("net.retries");
  static MetricsRegistry::Counter* dup_dropped =
      NetCounter("net.frames.duplicates_dropped");
  static MetricsRegistry::Counter* held =
      NetCounter("net.frames.reordered_held");

  int polls = 0;
  for (;;) {
    auto it = stash_.find(next_recv_seq_);
    if (it != stash_.end()) {
      Frame frame = std::move(it->second);
      stash_.erase(it);
      next_recv_seq_ = frame.seq + 1;
      return frame;
    }
    if (has_deadline_ &&
        std::chrono::steady_clock::now() >= deadline_) {
      std::ostringstream os;
      os << "endpoint " << name_ << " deadline expired while waiting for "
         << "frame seq " << next_recv_seq_ << " (" << polls
         << " polls spent of the leg's remaining budget)";
      return DeadlineExceededError(os.str());
    }
    auto raw = inner_->Receive();
    if (!raw.ok()) {
      // A peer that closed the connection is not going to retransmit on
      // this channel: surface the kAborted right away instead of burning
      // the whole poll budget against a dead socket (the caller's
      // reconnect/re-execution layer owns recovery).
      if (raw.status().code() == StatusCode::kAborted) {
        return std::move(raw).status();
      }
      if (polls + 1 >= policy_.max_receive_polls) {
        std::ostringstream os;
        os << "endpoint " << name_ << " timed out waiting for "
           << "frame seq " << next_recv_seq_ << " after "
           << policy_.max_receive_polls
           << " polls (message lost or delayed beyond the deadline); "
           << "inner channel: " << raw.status().message();
        return DeadlineExceededError(os.str());
      }
      retries->Increment();
      Backoff(polls);
      ++polls;
      continue;
    }
    auto frame = DecodeFrame(std::move(raw).value());
    if (!frame.ok()) {
      corrupt->Increment();
      return std::move(frame).status();
    }
    received->Increment();
    if (frame->seq < next_recv_seq_) {
      dup_dropped->Increment();
      continue;  // duplicate or stale copy: consume silently
    }
    if (frame->seq > next_recv_seq_) {
      held->Increment();
      stash_.emplace(frame->seq, std::move(frame).value());
      if (stash_.size() > kMaxStashedFrames) {
        std::ostringstream os;
        os << "endpoint " << name_ << " desynchronized: " << stash_.size()
           << " frames stashed ahead of expected seq " << next_recv_seq_
           << " (a frame was lost and traffic piled up behind it)";
        return DataLossError(os.str());
      }
      continue;
    }
    next_recv_seq_ = frame->seq + 1;
    return std::move(frame).value();
  }
}

StatusOr<Frame> ResilientChannel::ReceiveFrame() {
  return NextFrameInOrder();
}

StatusOr<std::vector<uint8_t>> ResilientChannel::ReceiveInternal(
    bool check_type, MessageType expected) {
  SKNN_ASSIGN_OR_RETURN(Frame frame, NextFrameInOrder());
  if (check_type && frame.type != expected) {
    std::ostringstream os;
    os << "endpoint " << name_ << " desynchronized: expected a "
       << MessageTypeToString(expected) << " frame, got "
       << MessageTypeToString(frame.type) << " (seq " << frame.seq << ")";
    return DataLossError(os.str());
  }
  return std::move(frame.payload);
}

void ResilientChannel::ResetEpoch() {
  send_seq_ = 0;
  next_recv_seq_ = 0;
  stash_.clear();
}

}  // namespace net
}  // namespace sknn
