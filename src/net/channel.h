#ifndef SKNN_NET_CHANNEL_H_
#define SKNN_NET_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "common/statusor.h"

// Simulated network layer between protocol parties. Messages are real byte
// buffers (serialized ciphertexts and keys); the link keeps per-direction
// byte and message counters plus a round counter (a round increments each
// time the direction of traffic flips), so benchmarks can report the
// communication columns of Table 1. Every Send/Receive also attributes the
// message size to the trace span active on the calling thread
// (common/trace.h), giving per-phase bandwidth in trace output.

namespace sknn {
namespace net {

// One endpoint's sending/receiving interface.
class Channel {
 public:
  virtual ~Channel() = default;

  virtual Status Send(std::vector<uint8_t> message) = 0;
  virtual StatusOr<std::vector<uint8_t>> Receive() = 0;

  // Convenience wrappers around ByteSink/ByteSource payloads.
  Status SendSink(ByteSink* sink) { return Send(sink->TakeBytes()); }
  StatusOr<ByteSource> ReceiveSource() {
    auto bytes = Receive();
    if (!bytes.ok()) return std::move(bytes).status();
    return ByteSource(std::move(bytes).value());
  }
};

struct LinkStats {
  uint64_t messages_a_to_b = 0;
  uint64_t messages_b_to_a = 0;
  uint64_t bytes_a_to_b = 0;
  uint64_t bytes_b_to_a = 0;
  // Number of direction flips (the paper's "round communications").
  uint64_t rounds = 0;

  uint64_t total_bytes() const { return bytes_a_to_b + bytes_b_to_a; }
  std::string DebugString() const;
};

// An in-process bidirectional link between two parties A and B.
// Single-threaded protocols alternate Send/Receive; Receive on an empty
// queue is a protocol bug and returns FailedPrecondition.
class InMemoryLink {
 public:
  InMemoryLink();

  Channel* a_endpoint() { return a_.get(); }
  Channel* b_endpoint() { return b_.get(); }

  const LinkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LinkStats(); }

 private:
  friend class LinkEndpoint;

  std::deque<std::vector<uint8_t>> a_to_b_;
  std::deque<std::vector<uint8_t>> b_to_a_;
  LinkStats stats_;
  // +1 = last traffic flowed A->B, -1 = B->A, 0 = none yet.
  int last_direction_ = 0;

  std::unique_ptr<Channel> a_;
  std::unique_ptr<Channel> b_;
};

}  // namespace net
}  // namespace sknn

#endif  // SKNN_NET_CHANNEL_H_
