#ifndef SKNN_NET_CHANNEL_H_
#define SKNN_NET_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "common/statusor.h"

// Simulated network layer between protocol parties. Messages are real byte
// buffers (serialized ciphertexts and keys); the link keeps per-direction
// byte and message counters plus a round counter (a round increments each
// time the direction of traffic flips), so benchmarks can report the
// communication columns of Table 1. Every Send/Receive also attributes the
// message size to the trace span active on the calling thread
// (common/trace.h), giving per-phase bandwidth in trace output.

namespace sknn {
namespace net {

// One endpoint's sending/receiving interface.
class Channel {
 public:
  virtual ~Channel() = default;

  virtual Status Send(std::vector<uint8_t> message) = 0;
  virtual StatusOr<std::vector<uint8_t>> Receive() = 0;

  // Convenience wrappers around ByteSink/ByteSource payloads.
  Status SendSink(ByteSink* sink) { return Send(sink->TakeBytes()); }
  StatusOr<ByteSource> ReceiveSource() {
    auto bytes = Receive();
    if (!bytes.ok()) return std::move(bytes).status();
    return ByteSource(std::move(bytes).value());
  }
};

struct LinkStats {
  uint64_t messages_a_to_b = 0;
  uint64_t messages_b_to_a = 0;
  uint64_t bytes_a_to_b = 0;
  uint64_t bytes_b_to_a = 0;
  // Number of direction flips (the paper's "round communications").
  uint64_t rounds = 0;

  uint64_t total_bytes() const { return bytes_a_to_b + bytes_b_to_a; }
  std::string DebugString() const;
};

// An in-process bidirectional link between two parties A and B.
//
// Threading contract: SINGLE-THREADED ONLY. The deques, stats, and
// direction flag are unsynchronized; both endpoints must be driven from
// one thread (the session runs both parties on the caller's thread, and
// the retry layer in net/resilient_channel.h polls on that same thread).
// Decorate with your own locking before sharing a link across threads —
// a mutex here would suggest a cross-thread rendezvous semantics
// (blocking receive) that this in-memory simulation deliberately does not
// provide.
//
// Receive on an empty queue returns kUnavailable (transient: with a
// fault-injecting decorator the message may be delayed or dropped, and
// the caller's poll/retry loop decides when to give up); the error text
// reports the direction, per-direction message counts, and the index of
// the message the receiver was expecting.
class InMemoryLink {
 public:
  InMemoryLink();

  Channel* a_endpoint() { return a_.get(); }
  Channel* b_endpoint() { return b_.get(); }

  const LinkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LinkStats(); }

  // Discards every undelivered message in both directions (sent-byte
  // accounting is kept: the bytes did cross the simulated wire). Used by
  // session leg recovery to guarantee a clean queue before a re-issue.
  void Drain();

 private:
  friend class LinkEndpoint;

  std::deque<std::vector<uint8_t>> a_to_b_;
  std::deque<std::vector<uint8_t>> b_to_a_;
  LinkStats stats_;
  // +1 = last traffic flowed A->B, -1 = B->A, 0 = none yet.
  int last_direction_ = 0;

  std::unique_ptr<Channel> a_;
  std::unique_ptr<Channel> b_;
};

}  // namespace net
}  // namespace sknn

#endif  // SKNN_NET_CHANNEL_H_
