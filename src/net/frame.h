#ifndef SKNN_NET_FRAME_H_
#define SKNN_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

// Framed transport envelope (PROTOCOL.md "Frame envelope & recovery").
//
// Every message that crosses a protocol channel is wrapped in a fixed
// 32-byte header so the receiving endpoint can *detect* corruption,
// truncation, duplication, and desynchronization instead of misparsing
// ciphertext bytes:
//
//   offset size field
//        0    4 magic        0x464E4B53 ("SKNF" as little-endian bytes)
//        4    1 version      kFrameVersion (mismatch is a fatal error)
//        5    1 type         MessageType tag (PROTOCOL.md messages 1-4)
//        6    2 flags        reserved, must be zero
//        8    8 seq          per-direction monotonically increasing counter
//       16    8 payload_len  exact byte length of the payload that follows
//       24    8 checksum     XXH64 over header (checksum field zeroed) ++
//                            payload, seed kFrameChecksumSeed
//
// All integers little-endian, matching common/serial.h. The checksum covers
// the header, so a bit flip in type/seq/length is detected exactly like a
// payload flip. Integrity only — not authentication (DESIGN.md §8).

namespace sknn {
namespace net {

// Wire tags for the protocol messages of PROTOCOL.md. kOpaque is used by
// callers that frame a channel without assigning protocol meaning (tests,
// generic Channel::Send); kControl is reserved for future ack/resync
// traffic.
enum class MessageType : uint8_t {
  kOpaque = 0,
  kQuery = 1,       // message 1: client -> A encrypted query
  kDistances = 2,   // message 2: A -> B masked distance bundle
  kIndicators = 3,  // message 3: B -> A indicator ciphertexts
  kResults = 4,     // message 4: A -> client encrypted neighbours
  kControl = 5,
  kHeartbeat = 6,   // liveness probe on an idle A->B worker connection
};

const char* MessageTypeToString(MessageType type);

inline constexpr uint32_t kFrameMagic = 0x464E4B53u;  // "SKNF"
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 32;
inline constexpr uint64_t kFrameChecksumSeed = 0x6b6e6e2d66726d65ull;

struct Frame {
  MessageType type = MessageType::kOpaque;
  uint64_t seq = 0;
  std::vector<uint8_t> payload;
};

// Wraps `payload` in a frame envelope. Never fails.
std::vector<uint8_t> EncodeFrame(MessageType type, uint64_t seq,
                                 const std::vector<uint8_t>& payload);

// Parses and validates one frame. Error taxonomy:
//   kDataLoss           truncated header/payload, bad magic, length
//                       mismatch, checksum mismatch, unknown type, nonzero
//                       flags — transient (a retransmission can cure it).
//   kFailedPrecondition version mismatch — fatal (incompatible peers).
StatusOr<Frame> DecodeFrame(std::vector<uint8_t> bytes);

}  // namespace net
}  // namespace sknn

#endif  // SKNN_NET_FRAME_H_
