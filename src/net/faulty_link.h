#ifndef SKNN_NET_FAULTY_LINK_H_
#define SKNN_NET_FAULTY_LINK_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "net/channel.h"

// Deterministic fault injection for any Channel pair (the chaos harness of
// DESIGN.md §8). FaultyLink decorates both directions of a link with
// seeded, per-direction injection of the classic network failure modes:
//
//   drop     message vanishes (receiver eventually times out)
//   dup      message is delivered twice (same frame bytes, same seq)
//   flip     1-8 random bit flips in the wire bytes
//   trunc    wire bytes cut at a random point
//   reorder  message held back and released after the next send (or on a
//            receive poll, so the tail message of a leg cannot starve)
//   delay    message hidden for `delay_polls` receive polls, exercising the
//            receiver's backoff loop
//
// Injection decisions come from a Chacha20Rng fork per direction, so a
// given (seed, traffic) pair replays bit-identically. Every injected fault
// increments a `net.faults.*` counter in MetricsRegistry::Global().
// Single-threaded, like the InMemoryLink it typically decorates.

namespace sknn {
namespace net {

struct FaultSpec {
  // Each probability is evaluated independently per message, in [0, 1].
  double drop = 0;
  double dup = 0;
  double flip = 0;
  double trunc = 0;
  double reorder = 0;
  double delay = 0;
  // How many receive polls a delayed message stays hidden.
  int delay_polls = 3;

  bool any() const {
    return drop > 0 || dup > 0 || flip > 0 || trunc > 0 || reorder > 0 ||
           delay > 0;
  }
  std::string DebugString() const;
};

// Parses "mode:prob[,mode:prob...]" with modes drop|dup|flip|trunc|reorder|
// delay; delay accepts an optional third field "delay:PROB:POLLS".
// Examples: "drop:0.05,flip:0.01", "delay:0.2:4". Empty string -> no
// faults. Probabilities outside [0,1] or unknown modes are
// InvalidArgument.
StatusOr<FaultSpec> ParseFaultSpec(const std::string& spec);

class FaultyLink {
 public:
  // `a_raw` / `b_raw` are the two endpoints of the undecorated link (e.g.
  // InMemoryLink::a_endpoint()/b_endpoint()). The decorated endpoints
  // returned by a_endpoint()/b_endpoint() must be used *instead of* the raw
  // ones; mixing raw and decorated calls skips injection and staging.
  FaultyLink(Channel* a_raw, Channel* b_raw, const FaultSpec& a_to_b,
             const FaultSpec& b_to_a, uint64_t seed);

  Channel* a_endpoint() { return a_.get(); }
  Channel* b_endpoint() { return b_.get(); }

  // Discards every held/delayed message (both directions). Part of the
  // session's leg-recovery drain: combined with InMemoryLink::Drain() it
  // guarantees no stale frame from a failed leg can surface later.
  void Reset();

  // Total number of injected faults so far (all modes, both directions).
  uint64_t faults_injected() const { return faults_injected_; }

 private:
  friend class FaultyEndpointImpl;

  struct Direction {
    FaultSpec spec;
    Channel* raw_sender = nullptr;  // raw endpoint whose Send feeds this dir
    Chacha20Rng rng{uint64_t{0}};
    // One-slot reorder hold and the delayed-message queue (message,
    // remaining polls).
    bool has_hold = false;
    std::vector<uint8_t> hold;
    std::deque<std::pair<std::vector<uint8_t>, int>> delayed;
  };

  Status InjectAndSend(Direction* dir, std::vector<uint8_t> message);
  // Called on every receive poll of `dir`'s receiving endpoint: ages the
  // delayed queue and flushes expired (and, when the raw queue ran dry,
  // held) messages into the raw link.
  void OnReceivePoll(Direction* dir, bool raw_queue_empty);

  bool Chance(Direction* dir, double p);

  Direction ab_;
  Direction ba_;
  uint64_t faults_injected_ = 0;
  std::unique_ptr<Channel> a_;
  std::unique_ptr<Channel> b_;
};

}  // namespace net
}  // namespace sknn

#endif  // SKNN_NET_FAULTY_LINK_H_
