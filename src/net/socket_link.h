#ifndef SKNN_NET_SOCKET_LINK_H_
#define SKNN_NET_SOCKET_LINK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "net/channel.h"

// Socket-backed transport (PROTOCOL.md "Socket transport"). A
// `SocketChannel` carries the same framed envelopes as the in-memory link,
// written verbatim onto a TCP stream: the 32-byte frame header
// (net/frame.h) doubles as the stream delimiter, so the byte stream is a
// pure concatenation of SKNF frames and the receiver re-synchronizes by
// the header's `payload_len`. A corrupted header (bad magic, absurd
// length) is a typed kDataLoss — the caller's leg-recovery drain discards
// the poisoned stream, exactly like the in-memory chaos path.
//
// All reads are non-blocking and poll-bounded: `Receive` accumulates
// whatever the kernel has within one `io_poll_ms` window and returns
// kUnavailable when no complete frame arrived, so `ResilientChannel`'s
// retry/backoff/timeout machinery works unchanged over real sockets.
// Error taxonomy (everything transient per Status::IsTransient):
//   kUnavailable       no complete frame within the poll window
//   kAborted           peer disconnected at a frame boundary / send to a
//                      closed peer (ECONNRESET, EPIPE)
//   kDataLoss          peer closed mid-frame (truncated connection) or the
//                      stream desynchronized (bad magic / oversized length)
//
// Threading: one SocketChannel must be driven from one thread at a time
// (the servers give each connection and each worker its own channel).

namespace sknn {
namespace net {

// Largest payload a frame header may announce before the receiver calls
// the stream desynchronized. Generous: the biggest real message (an
// encrypted database unit) is a few MB.
inline constexpr uint64_t kMaxSocketFramePayload = uint64_t{1} << 30;

class SocketChannel : public Channel {
 public:
  // Takes ownership of `fd` (sets O_NONBLOCK and TCP_NODELAY). `name` tags
  // error messages ("A->B worker 3", "client 0", ...).
  SocketChannel(int fd, std::string name);
  ~SocketChannel() override;

  SocketChannel(const SocketChannel&) = delete;
  SocketChannel& operator=(const SocketChannel&) = delete;

  // Writes the message bytes onto the stream. The bytes are expected to be
  // one framed envelope (EncodeFrame) — the channel does not validate
  // this (fault injectors deliberately send corrupted frames) but the
  // receiving side can only delimit well-formed headers. Blocks only on a
  // full send buffer, poll-bounded; a peer reset is kAborted.
  Status Send(std::vector<uint8_t> message) override;

  // Returns the next complete frame (header + payload) from the stream,
  // or a typed transient error (see file comment).
  StatusOr<std::vector<uint8_t>> Receive() override;

  // Waits up to `timeout_ms` for the stream to become readable (or for
  // buffered bytes). Lets servers idle on a connection without burning
  // the per-message retry budget. Returns false on timeout, kAborted when
  // the peer disconnected.
  StatusOr<bool> WaitReadable(int timeout_ms);

  // Reads and discards everything the peer has in flight until the stream
  // stays quiet, and clears the partial-frame reassembly buffer. The
  // socket half of a leg-recovery drain.
  void DiscardPending();

  void Close();
  bool closed() const { return fd_ < 0; }
  const std::string& name() const { return name_; }

  // Per-receive poll window (milliseconds). ResilientChannel multiplies
  // this by its poll budget to form the per-message timeout.
  void set_io_poll_ms(int ms) { io_poll_ms_ = ms; }

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

 private:
  // Appends available bytes to buf_; returns false when the peer is gone.
  Status FillFromSocket(int timeout_ms);
  // Extracts one frame from buf_ if complete; nullopt-style via bool.
  StatusOr<bool> ExtractFrame(std::vector<uint8_t>* out);

  int fd_;
  std::string name_;
  int io_poll_ms_ = 20;
  bool peer_eof_ = false;
  std::vector<uint8_t> buf_;  // partial-frame reassembly
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

class SocketListener {
 public:
  // Binds and listens on host:port (port 0 = ephemeral; read the actual
  // one back with port()). SO_REUSEADDR is set; the accept socket is
  // non-blocking.
  static StatusOr<std::unique_ptr<SocketListener>> Listen(
      const std::string& host, uint16_t port);
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  // Poll-bounded non-blocking accept: kUnavailable when no connection
  // arrived within `timeout_ms`. Increments `net.socket.accepts`.
  StatusOr<std::unique_ptr<SocketChannel>> Accept(int timeout_ms,
                                                  const std::string& name);

  uint16_t port() const { return port_; }
  void Close();

 private:
  SocketListener(int fd, uint16_t port) : fd_(fd), port_(port) {}
  int fd_;
  uint16_t port_;
};

// Poll-bounded TCP connect with retry until `timeout_ms` elapses (the
// peer server may still be binding). Returns a connected channel.
StatusOr<std::unique_ptr<SocketChannel>> ConnectSocket(
    const std::string& host, uint16_t port, int timeout_ms,
    const std::string& name);

// A loopback TCP pair with the same link interface as InMemoryLink: two
// byte-counted endpoints, LinkStats, and a Drain() for leg recovery. Used
// by SecureKnnSession's socket transport mode and by the chaos harness to
// run the full fault matrix over real sockets (a FaultyLink decorates the
// endpoints exactly as it decorates the in-memory ones).
//
// Threading contract: SINGLE-THREADED ONLY, like InMemoryLink — the
// stats/rounds accounting is unsynchronized and both endpoints must be
// driven from the session's thread.
class SocketLink {
 public:
  static StatusOr<std::unique_ptr<SocketLink>> Create();
  ~SocketLink();

  Channel* a_endpoint() { return a_counting_.get(); }
  Channel* b_endpoint() { return b_counting_.get(); }

  const LinkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LinkStats(); }

  // Discards every in-flight byte in both directions and resets the
  // partial-frame buffers (leg recovery; see InMemoryLink::Drain).
  void Drain();

 private:
  SocketLink() = default;

  std::unique_ptr<SocketChannel> a_;
  std::unique_ptr<SocketChannel> b_;
  std::unique_ptr<Channel> a_counting_;
  std::unique_ptr<Channel> b_counting_;
  LinkStats stats_;
  int last_direction_ = 0;
};

}  // namespace net
}  // namespace sknn

#endif  // SKNN_NET_SOCKET_LINK_H_
