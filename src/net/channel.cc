#include "net/channel.h"

#include <sstream>

#include "common/trace.h"

namespace sknn {
namespace net {

std::string LinkStats::DebugString() const {
  std::ostringstream os;
  os << "LinkStats{A->B " << messages_a_to_b << " msgs/" << bytes_a_to_b
     << " B, B->A " << messages_b_to_a << " msgs/" << bytes_b_to_a
     << " B, rounds=" << rounds << "}";
  return os.str();
}

namespace {

class LinkEndpointImpl : public Channel {
 public:
  LinkEndpointImpl(std::deque<std::vector<uint8_t>>* out,
                   std::deque<std::vector<uint8_t>>* in, LinkStats* stats,
                   int* last_direction, bool is_a)
      : out_(out),
        in_(in),
        stats_(stats),
        last_direction_(last_direction),
        is_a_(is_a) {}

  Status Send(std::vector<uint8_t> message) override {
    trace::Tracer::Global().AddBytesSent(message.size());
    const int dir = is_a_ ? 1 : -1;
    if (*last_direction_ != dir) {
      ++stats_->rounds;
      *last_direction_ = dir;
    }
    if (is_a_) {
      ++stats_->messages_a_to_b;
      stats_->bytes_a_to_b += message.size();
    } else {
      ++stats_->messages_b_to_a;
      stats_->bytes_b_to_a += message.size();
    }
    out_->push_back(std::move(message));
    return Status::Ok();
  }

  StatusOr<std::vector<uint8_t>> Receive() override {
    if (in_->empty()) {
      // Report enough context to localize the desync: which direction ran
      // dry, how much traffic each direction has carried, and which
      // message index (the raw-link sequence number) the receiver expected
      // next.
      const uint64_t sent_to_us =
          is_a_ ? stats_->messages_b_to_a : stats_->messages_a_to_b;
      std::ostringstream os;
      os << "Receive on empty " << (is_a_ ? "B->A" : "A->B")
         << " queue at endpoint " << (is_a_ ? "A" : "B") << ": expected message #"
         << sent_to_us << " in this direction, but only " << sent_to_us
         << " were ever sent (A->B " << stats_->messages_a_to_b << " msgs, "
         << "B->A " << stats_->messages_b_to_a
         << " msgs so far); the message is still in flight, was dropped, or "
            "the protocol is desynchronized";
      return UnavailableError(os.str());
    }
    std::vector<uint8_t> msg = std::move(in_->front());
    in_->pop_front();
    trace::Tracer::Global().AddBytesReceived(msg.size());
    return msg;
  }

 private:
  std::deque<std::vector<uint8_t>>* out_;
  std::deque<std::vector<uint8_t>>* in_;
  LinkStats* stats_;
  int* last_direction_;
  bool is_a_;
};

}  // namespace

void InMemoryLink::Drain() {
  a_to_b_.clear();
  b_to_a_.clear();
}

InMemoryLink::InMemoryLink() {
  a_ = std::make_unique<LinkEndpointImpl>(&a_to_b_, &b_to_a_, &stats_,
                                          &last_direction_, /*is_a=*/true);
  b_ = std::make_unique<LinkEndpointImpl>(&b_to_a_, &a_to_b_, &stats_,
                                          &last_direction_, /*is_a=*/false);
}

}  // namespace net
}  // namespace sknn
