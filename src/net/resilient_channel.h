#ifndef SKNN_NET_RESILIENT_CHANNEL_H_
#define SKNN_NET_RESILIENT_CHANNEL_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "net/channel.h"
#include "net/frame.h"

// Reliability layer over any Channel (PROTOCOL.md "Frame envelope &
// recovery"). ResilientChannel frames every outgoing message
// (net/frame.h) and enforces strict in-order, exactly-once delivery on the
// receive side:
//
//   * empty queue    -> bounded polling with exponential backoff + jitter,
//                       then kDeadlineExceeded (per-message timeout);
//   * corrupt frame  -> kDataLoss immediately (the caller re-issues the
//                       protocol leg; the messages are idempotent);
//   * duplicate      -> silently consumed (seq below the expected one);
//   * reordered      -> stashed until its sequence number comes up;
//   * desync         -> a valid frame of the wrong MessageType or a stash
//                       overflow is kDataLoss with a diagnostic.
//
// All failure codes are classified by Status::IsTransient(): everything a
// leg retry can cure is transient; a frame-version mismatch is fatal.
// Counters: net.frames.sent/received, net.frames.overhead_bytes,
// net.frames.duplicates_dropped, net.frames.reordered_held,
// net.corrupt_frames, net.retries.

namespace sknn {
namespace net {

struct RetryPolicy {
  // Receive polls per message before kDeadlineExceeded (the per-message
  // timeout, expressed in polls so in-memory tests stay deterministic).
  int max_receive_polls = 16;
  // Full protocol-leg re-issues the session attempts on a transient error.
  int max_leg_retries = 8;
  // Backoff between receive polls: base * multiplier^attempt, capped at
  // max, each scaled by a uniform jitter in [1-jitter, 1+jitter].
  uint64_t base_backoff_us = 20;
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_us = 2000;
  double jitter = 0.5;
};

class ResilientChannel : public Channel {
 public:
  // Does not take ownership of `inner`. `name` tags error messages and
  // trace spans (e.g. "A" / "B"). `seed` drives backoff jitter only — it
  // never affects protocol bytes.
  ResilientChannel(Channel* inner, const RetryPolicy& policy, uint64_t seed,
                   std::string name);

  // Channel interface: untyped messages travel as MessageType::kOpaque and
  // Receive() accepts any type.
  Status Send(std::vector<uint8_t> message) override;
  StatusOr<std::vector<uint8_t>> Receive() override;

  // Typed variants used by the protocol session: the type tag is checked
  // on receive, turning a desynchronized peer into a typed error instead
  // of a ciphertext misparse.
  Status SendMessage(MessageType type, const std::vector<uint8_t>& payload);
  StatusOr<std::vector<uint8_t>> ReceiveMessage(MessageType expected);

  // The next in-order frame with its type tag intact. For receivers that
  // legitimately accept more than one MessageType at a point in the
  // protocol (Party B's serve loop: a query's first kDistances frame or
  // an idle kHeartbeat probe); everything else should use the typed
  // ReceiveMessage.
  StatusOr<Frame> ReceiveFrame();

  // Resets both sequence spaces and drops the reorder stash. Only safe
  // after the underlying link has been fully drained (no in-flight frames
  // from the old epoch); the session does this as part of leg recovery.
  void ResetEpoch();

  // Absolute deadline for every subsequent receive: once it passes, a
  // pending receive stops polling and returns kDeadlineExceeded even if
  // the poll budget (`RetryPolicy::max_receive_polls`) is not yet spent.
  // This is how a query's end-to-end deadline bounds each protocol leg
  // instead of every leg getting the full fixed budget. Cleared by
  // clear_deadline(); ResetEpoch does NOT clear it (the deadline belongs
  // to the query, the epoch to the connection).
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void clear_deadline() { has_deadline_ = false; }

  const RetryPolicy& policy() const { return policy_; }

 private:
  StatusOr<Frame> NextFrameInOrder();
  StatusOr<std::vector<uint8_t>> ReceiveInternal(bool check_type,
                                                 MessageType expected);
  void Backoff(int attempt);

  Channel* inner_;
  RetryPolicy policy_;
  Chacha20Rng jitter_rng_;
  std::string name_;
  uint64_t send_seq_ = 0;
  uint64_t next_recv_seq_ = 0;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  // Frames that arrived ahead of their turn, keyed by sequence number.
  std::map<uint64_t, Frame> stash_;
};

}  // namespace net
}  // namespace sknn

#endif  // SKNN_NET_RESILIENT_CHANNEL_H_
