#include "net/faulty_link.h"

#include <cstdlib>
#include <sstream>

#include "common/metrics_registry.h"

namespace sknn {
namespace net {
namespace {

MetricsRegistry::Counter* FaultCounter(const char* mode) {
  return MetricsRegistry::Global().GetCounter(std::string("net.faults.") +
                                              mode);
}

}  // namespace

std::string FaultSpec::DebugString() const {
  std::ostringstream os;
  os << "FaultSpec{";
  const char* sep = "";
  auto emit = [&](const char* name, double p) {
    if (p > 0) {
      os << sep << name << ":" << p;
      sep = ",";
    }
  };
  emit("drop", drop);
  emit("dup", dup);
  emit("flip", flip);
  emit("trunc", trunc);
  emit("reorder", reorder);
  if (delay > 0) {
    os << sep << "delay:" << delay << ":" << delay_polls;
    sep = ",";
  }
  os << "}";
  return os.str();
}

StatusOr<FaultSpec> ParseFaultSpec(const std::string& spec) {
  FaultSpec out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return InvalidArgumentError("fault spec entry '" + entry +
                                  "' is not mode:prob");
    }
    const std::string mode = entry.substr(0, colon);
    std::string prob_str = entry.substr(colon + 1);
    std::string polls_str;
    const size_t colon2 = prob_str.find(':');
    if (colon2 != std::string::npos) {
      polls_str = prob_str.substr(colon2 + 1);
      prob_str = prob_str.substr(0, colon2);
    }
    char* end = nullptr;
    const double p = std::strtod(prob_str.c_str(), &end);
    if (end == prob_str.c_str() || *end != '\0' || p < 0 || p > 1) {
      return InvalidArgumentError("fault spec probability '" + prob_str +
                                  "' is not in [0,1]");
    }
    if (!polls_str.empty() && mode != "delay") {
      return InvalidArgumentError("only delay takes a poll count: '" + entry +
                                  "'");
    }
    if (mode == "drop") {
      out.drop = p;
    } else if (mode == "dup") {
      out.dup = p;
    } else if (mode == "flip") {
      out.flip = p;
    } else if (mode == "trunc") {
      out.trunc = p;
    } else if (mode == "reorder") {
      out.reorder = p;
    } else if (mode == "delay") {
      out.delay = p;
      if (!polls_str.empty()) {
        const long polls = std::strtol(polls_str.c_str(), &end, 10);
        if (end == polls_str.c_str() || *end != '\0' || polls < 1 ||
            polls > 1000) {
          return InvalidArgumentError("delay poll count '" + polls_str +
                                      "' is not in [1,1000]");
        }
        out.delay_polls = static_cast<int>(polls);
      }
    } else {
      return InvalidArgumentError(
          "unknown fault mode '" + mode +
          "' (expected drop|dup|flip|trunc|reorder|delay)");
    }
  }
  return out;
}

// Not in an anonymous namespace: it must match the friend declaration in
// faulty_link.h to reach the link's injection/staging internals.
class FaultyEndpointImpl : public Channel {
 public:
  FaultyEndpointImpl(FaultyLink* link, FaultyLink::Direction* out,
                     FaultyLink::Direction* in, Channel* raw_receiver)
      : link_(link), out_(out), in_(in), raw_receiver_(raw_receiver) {}

  Status Send(std::vector<uint8_t> message) override {
    return link_->InjectAndSend(out_, std::move(message));
  }

  StatusOr<std::vector<uint8_t>> Receive() override {
    // Age the incoming direction's staged messages, flushing any whose
    // time has come, then read the raw queue.
    link_->OnReceivePoll(in_, /*raw_queue_empty=*/false);
    auto msg = raw_receiver_->Receive();
    if (!msg.ok()) {
      // Raw queue dry: release a held reorder message (if any) so the
      // last message of a leg cannot starve, and let the caller poll
      // again.
      link_->OnReceivePoll(in_, /*raw_queue_empty=*/true);
      return msg;
    }
    return msg;
  }

 private:
  FaultyLink* link_;
  FaultyLink::Direction* out_;
  FaultyLink::Direction* in_;
  Channel* raw_receiver_;
};

FaultyLink::FaultyLink(Channel* a_raw, Channel* b_raw,
                       const FaultSpec& a_to_b, const FaultSpec& b_to_a,
                       uint64_t seed) {
  Chacha20Rng root(seed);
  ab_.spec = a_to_b;
  ab_.raw_sender = a_raw;
  ab_.rng = root.Fork(1);
  ba_.spec = b_to_a;
  ba_.raw_sender = b_raw;
  ba_.rng = root.Fork(2);
  a_ = std::make_unique<FaultyEndpointImpl>(this, &ab_, &ba_, a_raw);
  b_ = std::make_unique<FaultyEndpointImpl>(this, &ba_, &ab_, b_raw);
}

bool FaultyLink::Chance(Direction* dir, double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  // 2^-32 resolution is plenty for test probabilities.
  return dir->rng.NextU32() <
         static_cast<uint32_t>(p * 4294967296.0);
}

Status FaultyLink::InjectAndSend(Direction* dir, std::vector<uint8_t> message) {
  static MetricsRegistry::Counter* drop_c = FaultCounter("drop");
  static MetricsRegistry::Counter* dup_c = FaultCounter("duplicate");
  static MetricsRegistry::Counter* flip_c = FaultCounter("bitflip");
  static MetricsRegistry::Counter* trunc_c = FaultCounter("truncate");
  static MetricsRegistry::Counter* reorder_c = FaultCounter("reorder");
  static MetricsRegistry::Counter* delay_c = FaultCounter("delay");

  if (Chance(dir, dir->spec.drop)) {
    drop_c->Increment();
    ++faults_injected_;
    return Status::Ok();  // vanishes; the receiver's poll loop times out
  }
  int copies = 1;
  if (Chance(dir, dir->spec.dup)) {
    dup_c->Increment();
    ++faults_injected_;
    copies = 2;
  }
  for (int c = 0; c < copies; ++c) {
    std::vector<uint8_t> wire = message;  // corrupt each copy independently
    if (!wire.empty() && Chance(dir, dir->spec.flip)) {
      flip_c->Increment();
      ++faults_injected_;
      const uint64_t flips = 1 + dir->rng.UniformBelow(8);
      for (uint64_t f = 0; f < flips; ++f) {
        const uint64_t bit = dir->rng.UniformBelow(wire.size() * 8);
        wire[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
    }
    if (!wire.empty() && Chance(dir, dir->spec.trunc)) {
      trunc_c->Increment();
      ++faults_injected_;
      wire.resize(dir->rng.UniformBelow(wire.size()));
    }
    if (Chance(dir, dir->spec.delay)) {
      delay_c->Increment();
      ++faults_injected_;
      dir->delayed.emplace_back(std::move(wire), dir->spec.delay_polls);
      continue;
    }
    if (dir->has_hold) {
      // A message was held for reordering: emit the new one first, then
      // the held one — the pair arrives swapped.
      SKNN_RETURN_IF_ERROR(dir->raw_sender->Send(std::move(wire)));
      dir->has_hold = false;
      SKNN_RETURN_IF_ERROR(dir->raw_sender->Send(std::move(dir->hold)));
      continue;
    }
    if (Chance(dir, dir->spec.reorder)) {
      reorder_c->Increment();
      ++faults_injected_;
      dir->hold = std::move(wire);
      dir->has_hold = true;
      continue;
    }
    SKNN_RETURN_IF_ERROR(dir->raw_sender->Send(std::move(wire)));
  }
  return Status::Ok();
}

void FaultyLink::OnReceivePoll(Direction* dir, bool raw_queue_empty) {
  if (raw_queue_empty) {
    if (dir->has_hold) {
      dir->has_hold = false;
      (void)dir->raw_sender->Send(std::move(dir->hold));
    }
    return;
  }
  for (auto& entry : dir->delayed) --entry.second;
  while (!dir->delayed.empty() && dir->delayed.front().second <= 0) {
    (void)dir->raw_sender->Send(std::move(dir->delayed.front().first));
    dir->delayed.pop_front();
  }
}

void FaultyLink::Reset() {
  ab_.has_hold = false;
  ab_.hold.clear();
  ab_.delayed.clear();
  ba_.has_hold = false;
  ba_.hold.clear();
  ba_.delayed.clear();
}

}  // namespace net
}  // namespace sknn
