#include "net/frame.h"

#include <cstring>
#include <sstream>

#include "common/xxhash.h"

namespace sknn {
namespace net {
namespace {

void PutU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void PutU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kOpaque:
      return "opaque";
    case MessageType::kQuery:
      return "query";
    case MessageType::kDistances:
      return "distances";
    case MessageType::kIndicators:
      return "indicators";
    case MessageType::kResults:
      return "results";
    case MessageType::kControl:
      return "control";
    case MessageType::kHeartbeat:
      return "heartbeat";
  }
  return "invalid";
}

std::vector<uint8_t> EncodeFrame(MessageType type, uint64_t seq,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out(kFrameHeaderBytes + payload.size());
  PutU32(out.data(), kFrameMagic);
  out[4] = kFrameVersion;
  out[5] = static_cast<uint8_t>(type);
  out[6] = 0;  // flags
  out[7] = 0;
  PutU64(out.data() + 8, seq);
  PutU64(out.data() + 16, payload.size());
  PutU64(out.data() + 24, 0);  // checksum placeholder
  if (!payload.empty()) {
    std::memcpy(out.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  PutU64(out.data() + 24, Xxh64(out.data(), out.size(), kFrameChecksumSeed));
  return out;
}

StatusOr<Frame> DecodeFrame(std::vector<uint8_t> bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    std::ostringstream os;
    os << "frame truncated: " << bytes.size() << " bytes is smaller than the "
       << kFrameHeaderBytes << "-byte header";
    return DataLossError(os.str());
  }
  if (GetU32(bytes.data()) != kFrameMagic) {
    return DataLossError("frame corrupt: bad magic");
  }
  if (bytes[4] != kFrameVersion) {
    std::ostringstream os;
    os << "frame protocol version mismatch: got " << int{bytes[4]}
       << ", this endpoint speaks " << int{kFrameVersion};
    return FailedPreconditionError(os.str());
  }
  const uint8_t raw_type = bytes[5];
  if (raw_type > static_cast<uint8_t>(MessageType::kHeartbeat)) {
    return DataLossError("frame corrupt: unknown message type tag");
  }
  if (bytes[6] != 0 || bytes[7] != 0) {
    return DataLossError("frame corrupt: nonzero reserved flags");
  }
  const uint64_t seq = GetU64(bytes.data() + 8);
  const uint64_t payload_len = GetU64(bytes.data() + 16);
  if (payload_len != bytes.size() - kFrameHeaderBytes) {
    std::ostringstream os;
    os << "frame length mismatch: header declares " << payload_len
       << " payload bytes, " << (bytes.size() - kFrameHeaderBytes)
       << " present (truncated or spliced)";
    return DataLossError(os.str());
  }
  const uint64_t declared = GetU64(bytes.data() + 24);
  PutU64(bytes.data() + 24, 0);
  const uint64_t actual = Xxh64(bytes.data(), bytes.size(), kFrameChecksumSeed);
  if (declared != actual) {
    std::ostringstream os;
    os << "frame checksum mismatch on seq " << seq << " ("
       << MessageTypeToString(static_cast<MessageType>(raw_type))
       << "): message corrupted in transit";
    return DataLossError(os.str());
  }
  Frame frame;
  frame.type = static_cast<MessageType>(raw_type);
  frame.seq = seq;
  frame.payload.assign(bytes.begin() + kFrameHeaderBytes, bytes.end());
  return frame;
}

}  // namespace net
}  // namespace sknn
