#include "core/protocol_config.h"

#include <sstream>

namespace sknn {
namespace core {

const char* LayoutName(Layout layout) {
  switch (layout) {
    case Layout::kPerPoint:
      return "per-point";
    case Layout::kPacked:
      return "packed";
  }
  return "unknown";
}

size_t ProtocolConfig::MinimumLevels() const {
  // One level each for: the distance squaring, every extra Horner degree,
  // the mask/rotation stage (level 1) and transport (level 0); packed mode
  // additionally spends one on the garbage/padding selector.
  size_t needed = 1 + (poly_degree - 1) + 2;
  if (layout == Layout::kPacked) needed += 1;
  return needed;
}

StatusOr<bgv::BgvParams> ProtocolConfig::MakeBgvParams() const {
  SKNN_RETURN_IF_ERROR(Validate());
  return bgv::BgvParams::Create(preset, levels, plain_bits);
}

Status ProtocolConfig::Validate() const {
  if (k == 0) return InvalidArgumentError("k must be positive");
  if (dims == 0) return InvalidArgumentError("dims must be positive");
  if (poly_degree == 0) {
    return InvalidArgumentError("masking polynomial degree must be >= 1");
  }
  if (coord_bits < 1 || coord_bits > 30) {
    return InvalidArgumentError("coord_bits must be in [1, 30]");
  }
  if (levels < MinimumLevels()) {
    return InvalidArgumentError(
        "not enough levels for the distance + masking pipeline (need " +
        std::to_string(MinimumLevels()) + " for this layout/degree)");
  }
  if (indicator_level < 1 || indicator_level >= levels) {
    return InvalidArgumentError("indicator_level must be in [1, levels)");
  }
  return Status::Ok();
}

std::string ProtocolConfig::DebugString() const {
  std::ostringstream os;
  os << "ProtocolConfig{k=" << k << ", D=" << poly_degree
     << ", coord_bits=" << coord_bits << ", dims=" << dims
     << ", layout=" << LayoutName(layout) << ", levels=" << levels
     << ", plain_bits=" << plain_bits << "}";
  return os.str();
}

}  // namespace core
}  // namespace sknn
