#ifndef SKNN_CORE_PROTOCOL_CONFIG_H_
#define SKNN_CORE_PROTOCOL_CONFIG_H_

#include <cstdint>
#include <string>

#include "bgv/params.h"
#include "common/status.h"
#include "common/statusor.h"

// Public configuration of the secure k-NN protocol. Everything here is
// known to all parties (including the adversary); secrets are only the
// keys, the data, the query, the masking polynomial and the permutation.
//
// Cost knobs at a glance: query time is linear in n (points), d (dims),
// k, and poly_degree; communication is linear in n and k. coord_bits
// enters the masking coefficient budget — raising it shrinks the room
// for mask randomness at fixed plain_bits, so plain_bits may need to
// grow with it (MaskingPolynomial::Sample enforces the budget).

namespace sknn {
namespace core {

// Ciphertext layout used by Party A (see DESIGN.md §3.4):
//  - kPerPoint: one ciphertext per database point (the paper's layout;
//    uniform permutation over all points, O(n) ciphertexts on the wire).
//  - kPacked: many points per ciphertext (slot packing); faster and far
//    smaller, at the cost of a permutation that only mixes ciphertext
//    blocks and block rotations (Party B additionally learns which masked
//    distances co-reside in a block).
enum class Layout {
  kPerPoint,
  kPacked,
};

const char* LayoutName(Layout layout);

struct ProtocolConfig {
  // Number of neighbours to return. Drives the O(n·k) indicator round:
  // both B's encryption count and the dominant B->A byte volume.
  size_t k = 5;
  // Degree D of the order-preserving masking polynomial m(x). Higher D
  // hardens B's distance-guessing problem (paper §4.2) at the cost of
  // D-1 extra ciphertext multiplies per unit and a steeper coefficient
  // budget. D=1 is accepted for ablation only — an affine mask preserves
  // order but leaks distance ratios to B.
  size_t poly_degree = 2;
  // Bound: every coordinate of data and query lies in [0, 2^coord_bits).
  // This is a protocol precondition, not a hint — out-of-range inputs are
  // rejected at encryption time because they would overflow the masking
  // budget and break order preservation.
  int coord_bits = 4;
  // Data dimensionality.
  size_t dims = 2;
  // Ciphertext layout.
  Layout layout = Layout::kPacked;
  // Lattice parameter preset and chain length.
  bgv::SecurityPreset preset = bgv::SecurityPreset::kBench;
  size_t levels = 4;
  int plain_bits = 33;
  // Level at which Party B encrypts indicator vectors (they undergo one
  // multiplication and one switch before returning to the client).
  size_t indicator_level = 1;
  // Worker threads for Party A (0 = hardware concurrency).
  size_t threads = 1;
  // Seed-compress Party B's indicator ciphertexts (halves the dominant
  // B->A communication; B holds the secret key, so it can encrypt
  // symmetrically with a PRF-expanded c1 component).
  bool compress_indicators = true;

  // Smallest level count supporting the distance/masking pipeline for this
  // layout and polynomial degree.
  size_t MinimumLevels() const;

  // Builds the BGV parameter set implied by this config.
  StatusOr<bgv::BgvParams> MakeBgvParams() const;

  // Validates internal consistency (degree vs plaintext budget is checked
  // later against the actual modulus by MaskingPolynomial::Sample).
  Status Validate() const;

  std::string DebugString() const;
};

}  // namespace core
}  // namespace sknn

#endif  // SKNN_CORE_PROTOCOL_CONFIG_H_
