#include "core/data_owner.h"

#include "bgv/encoder.h"
#include "bgv/encryptor.h"
#include "core/masking.h"

namespace sknn {
namespace core {

DataOwner::DataOwner(ProtocolConfig config, const data::Dataset& dataset,
                     uint64_t seed)
    : config_(std::move(config)), dataset_(dataset), rng_(seed) {}

StatusOr<std::unique_ptr<DataOwner>> DataOwner::Create(
    const ProtocolConfig& config, const data::Dataset& dataset,
    uint64_t seed) {
  SKNN_RETURN_IF_ERROR(config.Validate());
  if (dataset.dims() != config.dims) {
    return InvalidArgumentError("dataset dimensionality mismatch");
  }
  const uint64_t bound = uint64_t{1} << config.coord_bits;
  if (dataset.MaxValue() >= bound) {
    return InvalidArgumentError(
        "dataset values exceed coord_bits; quantize the data first");
  }
  auto owner =
      std::unique_ptr<DataOwner>(new DataOwner(config, dataset, seed));
  SKNN_ASSIGN_OR_RETURN(bgv::BgvParams params, config.MakeBgvParams());
  SKNN_ASSIGN_OR_RETURN(owner->ctx_, bgv::BgvContext::Create(params));

  // The plaintext space must hold every masked distance.
  const uint64_t max_dist =
      data::MaxSquaredDistance(config.dims, bound - 1);
  if (max_dist >= owner->ctx_->t()) {
    return InvalidArgumentError(
        "squared distances exceed the plaintext modulus; lower coord_bits "
        "or raise plain_bits");
  }
  if (MaskingPolynomial::CoefficientBudget(owner->ctx_->t(), max_dist,
                                           config.poly_degree,
                                           config.poly_degree) < 1) {
    return InvalidArgumentError(
        "plaintext modulus cannot accommodate the masking degree at this "
        "distance bound; lower poly_degree or coord_bits, or raise "
        "plain_bits");
  }

  SKNN_ASSIGN_OR_RETURN(
      owner->layout_,
      SlotLayout::Create(config, owner->ctx_->n(), dataset.num_points()));

  bgv::KeyGenerator keygen(owner->ctx_, &owner->rng_);
  owner->sk_ = keygen.GenerateSecretKey();
  owner->pk_ = keygen.GeneratePublicKey(owner->sk_);
  owner->relin_ = keygen.GenerateRelinKeys(owner->sk_);
  owner->galois_ = keygen.GeneratePowerOfTwoRotationKeys(owner->sk_);
  return owner;
}

StatusOr<std::vector<bgv::Ciphertext>> DataOwner::EncryptDatabase() {
  bgv::BatchEncoder encoder(ctx_);
  bgv::Encryptor encryptor(ctx_, pk_, &rng_);
  std::vector<bgv::Ciphertext> units;
  units.reserve(layout_.num_units());
  for (size_t u = 0; u < layout_.num_units(); ++u) {
    SKNN_ASSIGN_OR_RETURN(bgv::Plaintext pt,
                          encoder.Encode(layout_.EncodeDbUnit(dataset_, u)));
    SKNN_ASSIGN_OR_RETURN(bgv::Ciphertext ct, encryptor.Encrypt(pt));
    ops_.encryptions += 1;
    units.push_back(std::move(ct));
  }
  return units;
}

}  // namespace core
}  // namespace sknn
