#ifndef SKNN_CORE_PARTY_A_H_
#define SKNN_CORE_PARTY_A_H_

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "bgv/ciphertext.h"
#include "bgv/context.h"
#include "bgv/encoder.h"
#include "bgv/evaluator.h"
#include "bgv/keys.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/layout.h"
#include "core/masking.h"
#include "core/metrics.h"
#include "core/protocol_config.h"

// Party A: the storage-and-compute cloud. Holds the encrypted database and
// the evaluation keys; never sees the secret key. Implements Algorithm 1
// (Compute Distances) and Algorithm 3 (Return kNN) of the paper.
//
// Security invariants this class maintains (Theorem 4.1 relies on them):
//  * Everything A touches stays encrypted — no method takes or returns a
//    plaintext derived from the database or the query.
//  * The masking polynomial m and the permutation/rotation transform are
//    redrawn from the CSPRNG on EVERY StartQuery call. Reusing either
//    across queries would let Party B link masked distances between
//    queries; freshness is a hard precondition, not an optimisation.
//
// Concurrency: one PartyA serves many queries at once (DESIGN.md §9).
// All per-query state — mask, permutation, Horner operand cache,
// accumulators, op counts — lives in the `Query` object returned by
// `StartQuery`, so concurrent queries cannot cross-contaminate
// ciphertexts or transforms. The shared pieces are immutable after setup
// (database units, keys) or internally synchronized (the CSPRNG behind
// `rng_mu_`, the layout-keyed selector operand cache, the thread pool).
//
// Cost model (n = database points, u = ciphertext units — n in kPerPoint,
// ~n·d'/slots in kPacked — d = dimensions, D = mask degree, k = results):
// distance phase O(u·(log d' + D)) ciphertext multiplies/rotations; return
// phase O(u·k) plaintext multiplies + O(k) relinearizations.

namespace sknn {
namespace core {

class PartyA {
 public:
  // Cooperative cancellation hook for the distance phase. Called between
  // per-unit pipelines (the long pole of a query); returning a non-OK
  // status stops the remaining units and surfaces that status from
  // StartQuery. The server wires a deadline/shutdown check here so a
  // query whose deadline expired mid-phase stops burning HE compute
  // instead of finishing an answer nobody is waiting for. Must be
  // thread-safe: units run on the thread pool.
  using CancelCheck = std::function<Status()>;

  // The per-query transform: drawn fresh from the party CSPRNG at
  // StartQuery, fixed for the query's lifetime, never shared between
  // queries. Kept in a shared_ptr so the `last_*` test hooks can observe
  // the most recent draw without racing query teardown.
  struct QueryTransform {
    explicit QueryTransform(MaskingPolynomial m) : mask(std::move(m)) {}
    MaskingPolynomial mask;
    std::vector<size_t> perm;       // transformed position -> original unit
    std::vector<size_t> rotations;  // per original unit, in blocks
    std::vector<bool> col_swapped;  // per original unit
    std::vector<uint64_t> unit_seeds;  // per-unit mask-slot RNG forks
  };

  // One in-flight query at Party A: a small state machine
  // (DESIGN.md §9) advancing kDistancesReady -> kReturning on
  // BeginReturnPhase. Construction (via StartQuery) runs Algorithm 1;
  // the return-phase methods run Algorithm 3 against this query's own
  // accumulators and transform. Not thread-safe itself — one query is
  // driven by one worker — but independent Query objects may run
  // concurrently on one PartyA.
  class Query {
   public:
    // Masked, permuted, transport-level distance ciphertexts in
    // transformed order (protocol message 2 payload).
    const std::vector<bgv::Ciphertext>& distances() const {
      return distances_;
    }

    // Phase 2 (Algorithm 3): absorbs Party B's indicator ciphertexts one
    // at a time (streaming keeps memory at O(1) ciphertexts), accumulating
    // the oblivious dot products T^j. Indicator positions refer to this
    // query's TRANSFORMED order. Re-entering BeginReturnPhase resets the
    // accumulators (leg retry). One plaintext multiply (+ inverse rotation
    // in kPacked) per indicator: O(u·k) total.
    Status BeginReturnPhase(size_t k);
    Status AbsorbIndicator(size_t j, size_t transformed_unit_pos,
                           const bgv::Ciphertext& indicator);
    // Relinearizes + switches T^j to the transport level (message 4
    // payload). One relinearization + mod-switch chain per result.
    StatusOr<bgv::Ciphertext> FinalizeResult(size_t j);

    // HE work performed by this query so far (distance phase included).
    const OpCounts& ops() const { return ops_; }
    const QueryTransform& transform() const { return *transform_; }

   private:
    friend class PartyA;
    enum class State { kDistancesReady, kReturning };

    explicit Query(PartyA* party) : party_(party) {}

    PartyA* party_;
    std::shared_ptr<const QueryTransform> transform_;
    // Prepared Horner addends for this query's mask coefficients (lifted +
    // NTT'd once by the first unit, shared across units of this query;
    // useless to any other query, whose mask differs).
    bgv::PlainOperandCache horner_cache_;
    std::vector<bgv::Ciphertext> distances_;
    State state_ = State::kDistancesReady;
    std::vector<bgv::Ciphertext> acc_;
    std::vector<bool> acc_started_;
    // Running minima for the return phase (reset by BeginReturnPhase),
    // exported as `bgv.noise.party_a.{absorb,retrieve}`.
    double min_absorb_budget_ = -1;
    double min_retrieve_budget_ = -1;
    OpCounts ops_;
  };

  PartyA(std::shared_ptr<const bgv::BgvContext> ctx, ProtocolConfig config,
         SlotLayout layout, bgv::PublicKey pk, bgv::RelinKeys relin,
         bgv::GaloisKeys galois, uint64_t rng_seed);

  // Stores the encrypted database units (top level) and precomputes the
  // indicator-level copies used by the return phase.
  Status LoadEncryptedDatabase(std::vector<bgv::Ciphertext> units);

  // Phase 1 (Algorithm 1): draws a fresh mask + permutation (under the
  // RNG mutex, so concurrent StartQuery calls each get an independent
  // transform) and homomorphically computes the masked, permuted
  // distances for the encrypted query. Runs the per-unit pipeline on the
  // internal thread pool; emits `party_a.distance` trace spans.
  // O(u·(log d' + D)) HE ops. The two-argument form checks `cancel`
  // before each unit's pipeline (see CancelCheck above).
  StatusOr<std::unique_ptr<Query>> StartQuery(const bgv::Ciphertext& query_ct);
  StatusOr<std::unique_ptr<Query>> StartQuery(const bgv::Ciphertext& query_ct,
                                              const CancelCheck& cancel);

  const OpCounts& ops() const { return ops_; }
  void ResetOps() { ops_ = OpCounts(); }
  size_t num_units() const { return layout_.num_units(); }

  // Exposed for tests: the transform drawn for the most recent query
  // (under concurrency, the most recent StartQuery to finish drawing).
  // The pointers stay valid until the next StartQuery — single-threaded
  // test-driver use only.
  std::vector<size_t> last_permutation() const;
  const MaskingPolynomial* last_mask() const;

 private:
  // Minimum estimated remaining noise budget (bits) observed at the end of
  // each distance sub-phase; negative = no tracked ciphertext seen.
  // Reduced across units after the parallel section and exported as the
  // `bgv.noise.party_a.*` gauges.
  struct PhaseNoise {
    double square_fold = -1;
    double mask = -1;
    double permute = -1;
  };

  // Distance pipeline for a single unit (everything after the subtraction
  // is per-unit independent, so units run in parallel).
  StatusOr<bgv::Ciphertext> DistanceForUnit(size_t unit,
                                            const bgv::Ciphertext& query_ct,
                                            Query* query,
                                            Chacha20Rng* unit_rng,
                                            OpCounts* ops, PhaseNoise* noise);

  std::shared_ptr<const bgv::BgvContext> ctx_;
  ProtocolConfig config_;
  SlotLayout layout_;
  bgv::RelinKeys relin_;
  bgv::GaloisKeys galois_;
  bgv::BatchEncoder encoder_;
  bgv::Evaluator evaluator_;
  mutable std::mutex rng_mu_;  // guards rng_ and last_transform_
  Chacha20Rng rng_;
  ThreadPool pool_;
  OpCounts ops_;  // setup-time work only (return-phase copies)

  std::vector<bgv::Ciphertext> db_top_;  // distance phase operands
  std::vector<bgv::Ciphertext> db_ret_;  // return phase operands (low level)

  // Prepared selector operands (lifted + NTT'd once, reused across units
  // AND queries — the packed-mode zeroing selector depends only on the
  // layout, keyed by unit index). Internally mutex-guarded.
  bgv::PlainOperandCache selector_cache_;

  // Most recent transform, for the test hooks above.
  std::shared_ptr<const QueryTransform> last_transform_;
};

}  // namespace core
}  // namespace sknn

#endif  // SKNN_CORE_PARTY_A_H_
