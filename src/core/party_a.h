#ifndef SKNN_CORE_PARTY_A_H_
#define SKNN_CORE_PARTY_A_H_

#include <memory>
#include <vector>

#include "bgv/ciphertext.h"
#include "bgv/context.h"
#include "bgv/encoder.h"
#include "bgv/evaluator.h"
#include "bgv/keys.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/layout.h"
#include "core/masking.h"
#include "core/metrics.h"
#include "core/protocol_config.h"

// Party A: the storage-and-compute cloud. Holds the encrypted database and
// the evaluation keys; never sees the secret key. Implements Algorithm 1
// (Compute Distances) and Algorithm 3 (Return kNN) of the paper.
//
// Security invariants this class maintains (Theorem 4.1 relies on them):
//  * Everything A touches stays encrypted — no method takes or returns a
//    plaintext derived from the database or the query.
//  * The masking polynomial m and the permutation/rotation transform are
//    redrawn from the CSPRNG on EVERY ComputeDistances call. Reusing either
//    across queries would let Party B link masked distances between
//    queries; freshness is a hard precondition, not an optimisation.
//
// Cost model (n = database points, u = ciphertext units — n in kPerPoint,
// ~n·d'/slots in kPacked — d = dimensions, D = mask degree, k = results):
// distance phase O(u·(log d' + D)) ciphertext multiplies/rotations; return
// phase O(u·k) plaintext multiplies + O(k) relinearizations.

namespace sknn {
namespace core {

class PartyA {
 public:
  PartyA(std::shared_ptr<const bgv::BgvContext> ctx, ProtocolConfig config,
         SlotLayout layout, bgv::PublicKey pk, bgv::RelinKeys relin,
         bgv::GaloisKeys galois, uint64_t rng_seed);

  // Stores the encrypted database units (top level) and precomputes the
  // indicator-level copies used by the return phase.
  Status LoadEncryptedDatabase(std::vector<bgv::Ciphertext> units);

  // Phase 1 (Algorithm 1): homomorphically computes masked, permuted
  // distances for the encrypted query (protocol message 2 payload). A
  // fresh masking polynomial and a fresh permutation/rotation transform
  // are drawn per query — see the class comment; callers must not replay
  // the outputs of one call alongside another's. The returned ciphertexts
  // are at the transport level (level 0) in transformed order. Runs the
  // per-unit pipeline on the internal thread pool; emits
  // `query/party_a.distance` trace spans. O(u·(log d' + D)) HE ops.
  StatusOr<std::vector<bgv::Ciphertext>> ComputeDistances(
      const bgv::Ciphertext& query_ct);

  // Phase 2 (Algorithm 3): absorbs Party B's indicator ciphertexts one at
  // a time (streaming keeps memory at O(1) ciphertexts), accumulating the
  // oblivious dot products T^j. Indicator positions refer to the
  // TRANSFORMED order of the ComputeDistances call still in effect;
  // interleaving a new query between phases desynchronises Π and yields
  // garbage (but leaks nothing). One plaintext multiply (+ inverse
  // rotation in kPacked) per indicator: O(u·k) total.
  Status BeginReturnPhase(size_t k);
  Status AbsorbIndicator(size_t j, size_t transformed_unit_pos,
                         const bgv::Ciphertext& indicator);
  // Relinearizes + switches T^j to the transport level (message 4
  // payload). One relinearization + mod-switch chain per result.
  StatusOr<bgv::Ciphertext> FinalizeResult(size_t j);

  const OpCounts& ops() const { return ops_; }
  void ResetOps() { ops_ = OpCounts(); }
  size_t num_units() const { return layout_.num_units(); }

  // Exposed for tests: the transform drawn for the last query.
  const std::vector<size_t>& last_permutation() const { return perm_; }
  const MaskingPolynomial* last_mask() const { return mask_.get(); }

 private:
  // Minimum estimated remaining noise budget (bits) observed at the end of
  // each distance sub-phase; negative = no tracked ciphertext seen.
  // Reduced across units after the parallel section and exported as the
  // `bgv.noise.party_a.*` gauges.
  struct PhaseNoise {
    double square_fold = -1;
    double mask = -1;
    double permute = -1;
  };

  // Distance pipeline for a single unit (everything after the subtraction
  // is per-unit independent, so units run in parallel).
  StatusOr<bgv::Ciphertext> DistanceForUnit(size_t unit,
                                            const bgv::Ciphertext& query_ct,
                                            const MaskingPolynomial& mask,
                                            Chacha20Rng* unit_rng,
                                            OpCounts* ops, PhaseNoise* noise);

  std::shared_ptr<const bgv::BgvContext> ctx_;
  ProtocolConfig config_;
  SlotLayout layout_;
  bgv::RelinKeys relin_;
  bgv::GaloisKeys galois_;
  bgv::BatchEncoder encoder_;
  bgv::Evaluator evaluator_;
  Chacha20Rng rng_;
  ThreadPool pool_;
  OpCounts ops_;

  std::vector<bgv::Ciphertext> db_top_;  // distance phase operands
  std::vector<bgv::Ciphertext> db_ret_;  // return phase operands (low level)

  // Prepared plaintext operands (lifted + NTT'd once, reused across units
  // and queries). selector_cache_ keys on the unit index: the packed-mode
  // zeroing selector only depends on the layout. horner_cache_ keys on the
  // mask coefficient index and is cleared at the start of every query (the
  // mask polynomial is redrawn).
  bgv::PlainOperandCache selector_cache_;
  bgv::PlainOperandCache horner_cache_;

  // Per-query transform state.
  std::unique_ptr<MaskingPolynomial> mask_;
  std::vector<size_t> perm_;        // transformed position -> original unit
  std::vector<size_t> rotations_;   // per original unit, in blocks
  std::vector<bool> col_swapped_;   // per original unit
  std::vector<bgv::Ciphertext> acc_;
  std::vector<bool> acc_started_;
  // Running minima for the return phase (reset by BeginReturnPhase),
  // exported as `bgv.noise.party_a.{absorb,retrieve}`.
  double min_absorb_budget_ = -1;
  double min_retrieve_budget_ = -1;
};

}  // namespace core
}  // namespace sknn

#endif  // SKNN_CORE_PARTY_A_H_
