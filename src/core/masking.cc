#include "core/masking.h"

#include <sstream>

#include "common/logging.h"

namespace sknn {
namespace core {

uint64_t MaskingPolynomial::CoefficientBudget(uint64_t plain_modulus,
                                              uint64_t max_input,
                                              size_t degree, size_t j) {
  SKNN_CHECK_GE(max_input, 1u);
  // B_j = (t-2) / ((D+1) * max_input^j), with overflow-safe power loop.
  // Using t-2 keeps every masked value strictly below t-1, so the t-1
  // padding sentinel can never tie with a real masked distance.
  uint64_t budget = (plain_modulus - 2) / (degree + 1);
  for (size_t i = 0; i < j; ++i) {
    budget /= max_input;
    if (budget == 0) return 0;
  }
  return budget;
}

StatusOr<MaskingPolynomial> MaskingPolynomial::Sample(uint64_t plain_modulus,
                                                      uint64_t max_input,
                                                      size_t degree,
                                                      Chacha20Rng* rng) {
  if (degree == 0) {
    return InvalidArgumentError("masking polynomial must have degree >= 1");
  }
  if (max_input == 0) max_input = 1;
  std::vector<uint64_t> coeffs(degree + 1);
  for (size_t j = 0; j <= degree; ++j) {
    const uint64_t budget =
        CoefficientBudget(plain_modulus, max_input, degree, j);
    if (budget < 1) {
      return InvalidArgumentError(
          "plaintext modulus too small for masking degree " +
          std::to_string(degree) + " at max distance " +
          std::to_string(max_input) +
          " (coefficient budget empty at degree " + std::to_string(j) + ")");
    }
    // a_0 may be anything in [0, B_0]; higher coefficients are >= 1 so the
    // polynomial is strictly increasing and of exact degree.
    coeffs[j] = (j == 0) ? rng->UniformInRange(0, budget)
                         : rng->UniformInRange(1, budget);
  }
  return MaskingPolynomial(std::move(coeffs), max_input);
}

uint64_t MaskingPolynomial::Evaluate(uint64_t x) const {
  SKNN_CHECK_LE(x, max_input_);
  // Horner; no wrap because of the budget construction.
  uint64_t acc = 0;
  for (size_t j = coeffs_.size(); j-- > 0;) {
    acc = acc * x + coeffs_[j];
  }
  return acc;
}

std::string MaskingPolynomial::DebugString() const {
  std::ostringstream os;
  os << "m(x) =";
  for (size_t j = 0; j < coeffs_.size(); ++j) {
    if (j) os << " +";
    os << " " << coeffs_[j];
    if (j >= 1) os << "*x";
    if (j >= 2) os << "^" << j;
  }
  return os.str();
}

}  // namespace core
}  // namespace sknn
