#ifndef SKNN_CORE_CLIENT_H_
#define SKNN_CORE_CLIENT_H_

#include <memory>
#include <vector>

#include "bgv/ciphertext.h"
#include "bgv/context.h"
#include "bgv/decryptor.h"
#include "bgv/encoder.h"
#include "bgv/encryptor.h"
#include "bgv/keys.h"
#include "common/rng.h"
#include "core/layout.h"
#include "core/metrics.h"
#include "core/protocol_config.h"

// The authorized client: encrypts queries (protocol message 1) and
// decrypts the k returned neighbour points (message 4). It holds both
// keys, like Party B, and performs O(1) encryptions + O(k) decryptions
// per query — all heavy lifting stays in the clouds.

namespace sknn {
namespace core {

class Client {
 public:
  Client(std::shared_ptr<const bgv::BgvContext> ctx, ProtocolConfig config,
         SlotLayout layout, bgv::PublicKey pk, bgv::SecretKey sk,
         uint64_t rng_seed);

  // Encrypts a query point (dimensions must match the config; every
  // coordinate must fit coord_bits — violating the bound would overflow
  // the masking budget and break exactness). One public-key encryption in
  // the layout's replicated slot pattern; span `query/client.encrypt`.
  StatusOr<bgv::Ciphertext> EncryptQuery(const std::vector<uint64_t>& query);

  // Decrypts one returned neighbour ciphertext into its coordinates by
  // summing the decoded blocks (non-selected blocks decrypt to exact
  // zeros). One decryption per neighbour; span `query/client.decrypt`.
  StatusOr<std::vector<uint64_t>> DecryptNeighbour(const bgv::Ciphertext& ct);

  const OpCounts& ops() const { return ops_; }
  void ResetOps() { ops_ = OpCounts(); }

 private:
  std::shared_ptr<const bgv::BgvContext> ctx_;
  ProtocolConfig config_;
  SlotLayout layout_;
  bgv::BatchEncoder encoder_;
  Chacha20Rng rng_;
  bgv::Encryptor encryptor_;
  bgv::Decryptor decryptor_;
  OpCounts ops_;
};

}  // namespace core
}  // namespace sknn

#endif  // SKNN_CORE_CLIENT_H_
