#ifndef SKNN_CORE_DATA_OWNER_H_
#define SKNN_CORE_DATA_OWNER_H_

#include <memory>
#include <vector>

#include "bgv/ciphertext.h"
#include "bgv/context.h"
#include "bgv/keys.h"
#include "common/rng.h"
#include "core/layout.h"
#include "core/metrics.h"
#include "core/protocol_config.h"
#include "data/dataset.h"

// The trusted data owner: generates all key material, encrypts the
// database, distributes public/evaluation keys to Party A and the secret
// key to Party B and the clients, then goes offline (Setup phase, Figure 2
// labels 1-3).

namespace sknn {
namespace core {

class DataOwner {
 public:
  // Validates the dataset against the config (coordinate range, plaintext
  // capacity for the masked distances) and builds the BGV context.
  static StatusOr<std::unique_ptr<DataOwner>> Create(
      const ProtocolConfig& config, const data::Dataset& dataset,
      uint64_t seed);

  std::shared_ptr<const bgv::BgvContext> context() const { return ctx_; }
  const SlotLayout& layout() const { return layout_; }
  const bgv::SecretKey& sk() const { return sk_; }
  const bgv::PublicKey& pk() const { return pk_; }
  const bgv::RelinKeys& relin() const { return relin_; }
  const bgv::GaloisKeys& galois() const { return galois_; }

  // Encrypts the database in the layout's unit order (top level).
  StatusOr<std::vector<bgv::Ciphertext>> EncryptDatabase();

  const OpCounts& ops() const { return ops_; }

 private:
  DataOwner(ProtocolConfig config, const data::Dataset& dataset,
            uint64_t seed);

  ProtocolConfig config_;
  data::Dataset dataset_;
  Chacha20Rng rng_;
  std::shared_ptr<const bgv::BgvContext> ctx_;
  SlotLayout layout_;
  bgv::SecretKey sk_;
  bgv::PublicKey pk_;
  bgv::RelinKeys relin_;
  bgv::GaloisKeys galois_;
  OpCounts ops_;
};

}  // namespace core
}  // namespace sknn

#endif  // SKNN_CORE_DATA_OWNER_H_
