#ifndef SKNN_CORE_METRICS_H_
#define SKNN_CORE_METRICS_H_

#include <cstdint>
#include <sstream>
#include <string>

#include "common/metrics_registry.h"

// Operation counters and phase timings shared by the new protocol and the
// baseline. These regenerate the computational-overhead columns of the
// paper's Table 1 from actual executions. OpCounts remains the per-party
// aggregate carried in QueryResult; ExportTo maps it into the named
// MetricsRegistry taxonomy (core.<party>.<op>) for trace/JSON output.

namespace sknn {
namespace core {

struct OpCounts {
  uint64_t he_multiplications = 0;  // ciphertext-ciphertext products
  uint64_t he_plain_ops = 0;        // plaintext/scalar mult-add on ciphertexts
  uint64_t he_additions = 0;
  uint64_t rotations = 0;
  uint64_t relinearizations = 0;
  uint64_t mod_switches = 0;
  uint64_t encryptions = 0;
  uint64_t decryptions = 0;

  uint64_t total_homomorphic() const {
    return he_multiplications + he_plain_ops + he_additions + rotations +
           relinearizations + mod_switches;
  }

  OpCounts& operator+=(const OpCounts& o) {
    he_multiplications += o.he_multiplications;
    he_plain_ops += o.he_plain_ops;
    he_additions += o.he_additions;
    rotations += o.rotations;
    relinearizations += o.relinearizations;
    mod_switches += o.mod_switches;
    encryptions += o.encryptions;
    decryptions += o.decryptions;
    return *this;
  }

  // Adds these counts into `registry` under `prefix` (e.g. prefix
  // "core.party_a" yields counters "core.party_a.he_multiplications", ...).
  void ExportTo(MetricsRegistry* registry, const std::string& prefix) const {
    auto add = [&](const char* name, uint64_t v) {
      if (v != 0) registry->GetCounter(prefix + "." + name)->Add(v);
    };
    add("he_multiplications", he_multiplications);
    add("he_plain_ops", he_plain_ops);
    add("he_additions", he_additions);
    add("rotations", rotations);
    add("relinearizations", relinearizations);
    add("mod_switches", mod_switches);
    add("encryptions", encryptions);
    add("decryptions", decryptions);
  }

  std::string DebugString() const {
    std::ostringstream os;
    os << "OpCounts{mult=" << he_multiplications
       << ", plain=" << he_plain_ops << ", add=" << he_additions
       << ", rot=" << rotations << ", relin=" << relinearizations
       << ", modswitch=" << mod_switches << ", enc=" << encryptions
       << ", dec=" << decryptions << "}";
    return os.str();
  }
};

struct PhaseTimings {
  double setup_seconds = 0;
  double query_encrypt_seconds = 0;
  double compute_distances_seconds = 0;  // Party A, phase 1
  double find_neighbours_seconds = 0;    // Party B
  double return_knn_seconds = 0;         // Party A, phase 2
  double client_decrypt_seconds = 0;

  double total_query_seconds() const {
    return query_encrypt_seconds + compute_distances_seconds +
           find_neighbours_seconds + return_knn_seconds +
           client_decrypt_seconds;
  }
};

}  // namespace core
}  // namespace sknn

#endif  // SKNN_CORE_METRICS_H_
