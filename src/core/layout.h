#ifndef SKNN_CORE_LAYOUT_H_
#define SKNN_CORE_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "core/protocol_config.h"
#include "data/dataset.h"

// Slot layout geometry: how database points, queries, distances and
// indicator vectors map onto BGV slot vectors for each Layout mode.
//
// Slots form a 2 x (n/2) matrix (two rows). A point occupies a block of
// padded_dims = next_pow2(dims) contiguous slots within one row.
//  - kPerPoint: each unit (ciphertext) holds exactly one point in block 0.
//  - kPacked:   each unit holds points_per_unit() points, filling both rows
//               block by block.
// The squared distance of a block lands in the block's first slot after the
// rotate-and-fold; those slots are the unit's "payload" positions.

namespace sknn {
namespace core {

class SlotLayout {
 public:
  // ring_degree = BGV n; num_points = database size.
  static StatusOr<SlotLayout> Create(const ProtocolConfig& config,
                                     size_t ring_degree, size_t num_points);

  Layout mode() const { return mode_; }
  size_t dims() const { return dims_; }
  // Block width: dims padded to the next power of two.
  size_t padded_dims() const { return padded_dims_; }
  size_t ring_degree() const { return ring_degree_; }
  size_t row_size() const { return ring_degree_ / 2; }
  size_t num_points() const { return num_points_; }
  // Blocks available per row / points stored per unit.
  size_t points_per_row() const { return points_per_row_; }
  size_t points_per_unit() const { return points_per_unit_; }
  // Number of ciphertexts covering the database.
  size_t num_units() const { return num_units_; }
  // Payload (distance) positions per unit.
  size_t payloads_per_unit() const { return points_per_unit_; }

  // Global point id stored at (unit, payload); may be >= num_points() for
  // padding blocks.
  size_t PointIndex(size_t unit, size_t payload) const;
  // Slot index of payload p's block start inside a unit.
  size_t PayloadSlot(size_t payload) const;

  // Slot vector (length ring_degree) holding the unit's points.
  std::vector<uint64_t> EncodeDbUnit(const data::Dataset& data,
                                     size_t unit) const;
  // Slot vector holding the query (replicated per block in kPacked mode).
  std::vector<uint64_t> EncodeQuery(const std::vector<uint64_t>& query) const;
  // 0/1 selector: 1 exactly on real-payload block-start slots (used by
  // Party A to zero out fold garbage and padding payloads). `unit` matters
  // because the last unit may contain padding blocks.
  std::vector<uint64_t> SelectorSlots(size_t unit) const;
  // Additive mask skeleton: for each slot, true if the slot must receive a
  // uniformly random value (non-payload), false if it is a real payload
  // (receives 0) ... padding payloads are marked separately via
  // PaddingSlots.
  std::vector<bool> RandomMaskPositions(size_t unit) const;
  // Block-start slots of padding blocks in this unit (set to t-1 so Party B
  // never selects them).
  std::vector<size_t> PaddingPayloadSlots(size_t unit) const;

  // Indicator slot vector for selecting payload p of a unit: 1 over the
  // whole block, 0 elsewhere.
  std::vector<uint64_t> IndicatorSlots(size_t payload) const;

  // Client-side: recovers the point coordinates from a decoded result
  // vector by summing all blocks (non-selected blocks decode to zero).
  std::vector<uint64_t> ExtractPoint(const std::vector<uint64_t>& decoded,
                                     uint64_t plain_modulus) const;

  // Default-constructed layouts are empty placeholders to be assigned from
  // Create().
  SlotLayout() = default;

 private:
  Layout mode_ = Layout::kPacked;
  size_t dims_ = 0;
  size_t padded_dims_ = 0;
  size_t ring_degree_ = 0;
  size_t num_points_ = 0;
  size_t points_per_row_ = 0;
  size_t points_per_unit_ = 0;
  size_t num_units_ = 0;
};

}  // namespace core
}  // namespace sknn

#endif  // SKNN_CORE_LAYOUT_H_
