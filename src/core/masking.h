#ifndef SKNN_CORE_MASKING_H_
#define SKNN_CORE_MASKING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"

// The order-preserving masking polynomial m(x) = a_0 + a_1 x + ... + a_D x^D
// that Party A evaluates homomorphically on every squared distance before
// handing the (permuted) results to Party B (Algorithm 1, steps 5-8).
//
// Deviation from the paper, documented in DESIGN.md: the paper samples
// coefficients uniformly in [1, 2^32-1], which overflows the plaintext
// space for realistic distances and would destroy both monotonicity and
// the protocol's exactness. Here each coefficient is sampled uniformly
// from the largest budget that guarantees m(x) < t for all x <= max_input,
// so the masked order always equals the true order.

namespace sknn {
namespace core {

class MaskingPolynomial {
 public:
  // Samples a fresh polynomial of exact degree `degree` with coefficients
  // uniform in [1, B_j], B_j = (t-1) / ((degree+1) * max_input^j). Fails
  // when the plaintext space is too small for the requested degree.
  static StatusOr<MaskingPolynomial> Sample(uint64_t plain_modulus,
                                            uint64_t max_input, size_t degree,
                                            Chacha20Rng* rng);

  size_t degree() const { return coeffs_.size() - 1; }
  const std::vector<uint64_t>& coefficients() const { return coeffs_; }
  uint64_t max_input() const { return max_input_; }

  // Reference evaluation (no modular wrap by construction for
  // x <= max_input).
  uint64_t Evaluate(uint64_t x) const;

  // Per-degree coefficient budget B_j (exposed so tests and parameter
  // selection can check masking entropy).
  static uint64_t CoefficientBudget(uint64_t plain_modulus,
                                    uint64_t max_input, size_t degree,
                                    size_t j);

  std::string DebugString() const;

 private:
  explicit MaskingPolynomial(std::vector<uint64_t> coeffs, uint64_t max_input)
      : coeffs_(std::move(coeffs)), max_input_(max_input) {}

  std::vector<uint64_t> coeffs_;  // a_0 .. a_D
  uint64_t max_input_;
};

}  // namespace core
}  // namespace sknn

#endif  // SKNN_CORE_MASKING_H_
