#include "core/party_a.h"

#include <algorithm>
#include <mutex>

#include "common/metrics_registry.h"
#include "common/trace.h"
#include "data/dataset.h"

namespace sknn {
namespace core {
namespace {

// min over estimated budgets where negative means "not observed yet".
double MinBudget(double a, double b) {
  if (a < 0) return b;
  if (b < 0) return a;
  return std::min(a, b);
}

}  // namespace

PartyA::PartyA(std::shared_ptr<const bgv::BgvContext> ctx,
               ProtocolConfig config, SlotLayout layout, bgv::PublicKey pk,
               bgv::RelinKeys relin, bgv::GaloisKeys galois,
               uint64_t rng_seed)
    : ctx_(ctx),
      config_(std::move(config)),
      layout_(std::move(layout)),
      relin_(std::move(relin)),
      galois_(std::move(galois)),
      encoder_(ctx),
      evaluator_(ctx),
      rng_(rng_seed),
      pool_(config_.threads) {
  (void)pk;  // Party A does not encrypt in this protocol variant.
}

Status PartyA::LoadEncryptedDatabase(std::vector<bgv::Ciphertext> units) {
  if (units.size() != layout_.num_units()) {
    return InvalidArgumentError("database unit count does not match layout");
  }
  db_top_ = std::move(units);
  db_ret_.clear();
  db_ret_.reserve(db_top_.size());
  for (const bgv::Ciphertext& unit : db_top_) {
    bgv::Ciphertext low = unit;
    SKNN_RETURN_IF_ERROR(
        evaluator_.ModSwitchToLevelInplace(&low, config_.indicator_level));
    ops_.mod_switches += ctx_->max_level() - config_.indicator_level;
    db_ret_.push_back(std::move(low));
  }
  return Status::Ok();
}

std::vector<size_t> PartyA::last_permutation() const {
  std::lock_guard<std::mutex> lock(rng_mu_);
  return last_transform_ ? last_transform_->perm : std::vector<size_t>();
}

const MaskingPolynomial* PartyA::last_mask() const {
  std::lock_guard<std::mutex> lock(rng_mu_);
  return last_transform_ ? &last_transform_->mask : nullptr;
}

StatusOr<bgv::Ciphertext> PartyA::DistanceForUnit(
    size_t unit, const bgv::Ciphertext& query_ct, Query* query,
    Chacha20Rng* unit_rng, OpCounts* ops, PhaseNoise* noise) {
  const QueryTransform& transform = *query->transform_;
  const MaskingPolynomial& mask = transform.mask;
  trace::TraceSpan unit_span("unit");
  const uint64_t t = ctx_->t();
  bgv::Ciphertext x;
  {
    trace::TraceSpan span("square_fold");
    // diff = p' - Q' (slot-wise).
    bgv::Ciphertext diff = db_top_[unit];
    SKNN_RETURN_IF_ERROR(evaluator_.SubInplace(&diff, query_ct));
    ops->he_additions += 1;
    // sq = diff^2, one level consumed.
    SKNN_ASSIGN_OR_RETURN(x, evaluator_.MultiplyRelin(diff, diff, relin_));
    ops->he_multiplications += 1;
    ops->relinearizations += 1;
    ops->mod_switches += 1;
    // Fold the padded_dims-wide blocks so each block's first slot holds the
    // squared distance.
    if (layout_.padded_dims() > 1) {
      SKNN_RETURN_IF_ERROR(
          evaluator_.FoldRowsInplace(&x, layout_.padded_dims(), galois_));
      size_t steps = 0;
      for (size_t s = 1; s < layout_.padded_dims(); s <<= 1) ++steps;
      ops->rotations += steps;
      ops->he_additions += steps;
    }
    // Packed mode: zero out fold garbage and padding payloads immediately
    // (while the noise budget is widest). Zeroed slots pass through the
    // masking polynomial as the constant m(0) = a_0 and are re-masked below.
    if (layout_.mode() == Layout::kPacked) {
      SKNN_ASSIGN_OR_RETURN(bgv::Plaintext selector,
                            encoder_.Encode(layout_.SelectorSlots(unit)));
      // The selector depends only on the layout, so its lifted+NTT'd
      // operand is cached across queries (keyed by unit).
      SKNN_ASSIGN_OR_RETURN(
          const bgv::PlainOperand* selector_op,
          selector_cache_.MultiplyOperand(evaluator_, unit, selector,
                                          x.level));
      SKNN_RETURN_IF_ERROR(evaluator_.MultiplyPlainInplace(&x, *selector_op));
      ops->he_plain_ops += 1;
      // A plaintext product costs as much noise as a ciphertext product;
      // spend a level on it.
      SKNN_RETURN_IF_ERROR(evaluator_.ModSwitchToNextInplace(&x));
      ops->mod_switches += 1;
    }
    noise->square_fold = evaluator_.noise_model().EstimatedBudgetBits(x);
  }
  bgv::Ciphertext u;
  {
    trace::TraceSpan span("mask");
    // Horner evaluation of the masking polynomial:
    //   u = a_D x + a_{D-1}; u = u*x + a_{D-2}; ...; + a_0.
    const std::vector<uint64_t>& a = mask.coefficients();
    const size_t d = mask.degree();
    u = x;
    SKNN_RETURN_IF_ERROR(evaluator_.MultiplyScalarInplace(&u, a[d]));
    ops->he_plain_ops += 1;
    // Every unit walks the same coefficient sequence through the same
    // (level, scale) trajectory, so the lifted+NTT'd addends are built
    // once per query (by the first unit) and served from the query's
    // cache after.
    SKNN_ASSIGN_OR_RETURN(
        const bgv::PlainOperand* addend,
        query->horner_cache_.AddOperand(evaluator_, d - 1,
                                        encoder_.EncodeScalar(a[d - 1]),
                                        u.level, u.scale));
    SKNN_RETURN_IF_ERROR(evaluator_.AddPlainInplace(&u, *addend));
    ops->he_plain_ops += 1;
    for (size_t j = d - 1; j-- > 0;) {
      SKNN_ASSIGN_OR_RETURN(u, evaluator_.MultiplyRelin(u, x, relin_));
      ops->he_multiplications += 1;
      ops->relinearizations += 1;
      ops->mod_switches += 1;
      SKNN_ASSIGN_OR_RETURN(
          const bgv::PlainOperand* addend_j,
          query->horner_cache_.AddOperand(evaluator_, j,
                                          encoder_.EncodeScalar(a[j]), u.level,
                                          u.scale));
      SKNN_RETURN_IF_ERROR(evaluator_.AddPlainInplace(&u, *addend_j));
      ops->he_plain_ops += 1;
    }
    // Masking and rotations happen at level 1: level 0 is reserved for
    // transport because its single-prime noise budget cannot absorb a key
    // switch.
    if (u.level > 1) {
      const size_t before = u.level;
      SKNN_RETURN_IF_ERROR(evaluator_.ModSwitchToLevelInplace(&u, 1));
      ops->mod_switches += before - 1;
    }
    // Additive mask: uniform randomness on every non-payload slot (hides the
    // fold partial sums / the zeroed garbage pattern), the exact t-1
    // sentinel on padding payloads (their current value is m(0) = a_0, which
    // Party A knows), zero on real payloads.
    std::vector<uint64_t> mask_slots(ctx_->n(), 0);
    const std::vector<bool> random_pos = layout_.RandomMaskPositions(unit);
    for (size_t s = 0; s < mask_slots.size(); ++s) {
      if (random_pos[s]) mask_slots[s] = unit_rng->UniformBelow(t);
    }
    const uint64_t pad_sentinel = SubMod(t - 1, a[0] % t, t);
    for (size_t s : layout_.PaddingPayloadSlots(unit)) {
      mask_slots[s] = pad_sentinel;
    }
    SKNN_ASSIGN_OR_RETURN(bgv::Plaintext mask_pt, encoder_.Encode(mask_slots));
    SKNN_RETURN_IF_ERROR(evaluator_.AddPlainInplace(&u, mask_pt));
    ops->he_plain_ops += 1;
    noise->mask = evaluator_.noise_model().EstimatedBudgetBits(u);
  }
  {
    trace::TraceSpan span("permute");
    // Packed mode: random block rotation + column swap (the intra-unit part
    // of the permutation), spliced into one coefficient-form Galois chain
    // so the whole sweep pays a single NTT round-trip.
    if (layout_.mode() == Layout::kPacked) {
      const size_t rot = transform.rotations[unit];
      std::vector<uint64_t> elts = evaluator_.RotationGaloisElts(
          static_cast<int>(rot * layout_.padded_dims()), galois_);
      if (rot != 0) ops->rotations += 1;
      if (transform.col_swapped[unit]) {
        elts.push_back(ctx_->GaloisEltForColumnSwap());
        ops->rotations += 1;
      }
      SKNN_RETURN_IF_ERROR(
          evaluator_.ApplyGaloisChainInplace(&u, elts, galois_));
    }
    // Transport level: the smallest ciphertext Party B can decrypt.
    if (u.level > 0) {
      const size_t before = u.level;
      SKNN_RETURN_IF_ERROR(evaluator_.ModSwitchToLevelInplace(&u, 0));
      ops->mod_switches += before;
    }
    noise->permute = evaluator_.noise_model().EstimatedBudgetBits(u);
    // The transport-level ciphertext is what Party B must decrypt: this is
    // the narrowest point of the distance phase.
    evaluator_.noise_model().WarnIfThin(u, "party_a.distance");
  }
  return u;
}

StatusOr<std::unique_ptr<PartyA::Query>> PartyA::StartQuery(
    const bgv::Ciphertext& query_ct) {
  return StartQuery(query_ct, CancelCheck());
}

StatusOr<std::unique_ptr<PartyA::Query>> PartyA::StartQuery(
    const bgv::Ciphertext& query_ct, const CancelCheck& cancel) {
  if (db_top_.empty()) {
    return FailedPreconditionError("no encrypted database loaded");
  }
  trace::TraceSpan phase_span("party_a.distance");
  const uint64_t t = ctx_->t();
  const uint64_t max_dist = data::MaxSquaredDistance(
      layout_.dims(), (uint64_t{1} << config_.coord_bits) - 1);
  const size_t units = layout_.num_units();

  auto query = std::unique_ptr<Query>(new Query(this));
  {
    // Draw the whole per-query transform in one critical section, in a
    // fixed order (mask, rotations/col-swaps, permutation, unit seeds), so
    // concurrent StartQuery calls interleave at transform granularity and
    // every query still gets an independent, deterministic-per-session
    // draw sequence.
    std::lock_guard<std::mutex> lock(rng_mu_);
    SKNN_ASSIGN_OR_RETURN(
        MaskingPolynomial mask,
        MaskingPolynomial::Sample(t, max_dist, config_.poly_degree, &rng_));
    auto transform = std::make_shared<QueryTransform>(std::move(mask));
    transform->rotations.assign(units, 0);
    transform->col_swapped.assign(units, false);
    if (layout_.mode() == Layout::kPacked) {
      for (size_t u = 0; u < units; ++u) {
        transform->rotations[u] = rng_.UniformBelow(layout_.points_per_row());
        transform->col_swapped[u] = rng_.UniformBelow(2) == 1;
      }
    }
    transform->perm = rng_.RandomPermutation(units);
    // Per-unit deterministic RNG forks (stable under parallel execution).
    transform->unit_seeds.resize(units);
    for (auto& s : transform->unit_seeds) s = rng_.NextU64();
    query->transform_ = transform;
    last_transform_ = transform;
  }

  std::vector<bgv::Ciphertext> transformed(units);
  std::vector<OpCounts> unit_ops(units);
  std::vector<PhaseNoise> unit_noise(units);
  Status first_error = Status::Ok();
  std::mutex error_mu;
  pool_.ParallelFor(0, units, [&](size_t u) {
    if (cancel) {
      // Cooperative cancellation checkpoint: a cancelled/expired query
      // skips the remaining units' HE pipelines (earlier units may have
      // completed — their ciphertexts are simply dropped with the query).
      Status cancelled = cancel();
      if (!cancelled.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = std::move(cancelled);
        return;
      }
    }
    Chacha20Rng unit_rng(query->transform_->unit_seeds[u]);
    auto result = DistanceForUnit(u, query_ct, query.get(), &unit_rng,
                                  &unit_ops[u], &unit_noise[u]);
    if (!result.ok()) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = result.status();
      return;
    }
    transformed[u] = std::move(result).value();
  });
  SKNN_RETURN_IF_ERROR(first_error);
  for (const OpCounts& oc : unit_ops) query->ops_ += oc;
  // Worst-case (minimum) estimated budget per sub-phase across units.
  PhaseNoise worst;
  for (const PhaseNoise& pn : unit_noise) {
    worst.square_fold = MinBudget(worst.square_fold, pn.square_fold);
    worst.mask = MinBudget(worst.mask, pn.mask);
    worst.permute = MinBudget(worst.permute, pn.permute);
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetGauge("bgv.noise.party_a.square_fold")->Set(worst.square_fold);
  registry.GetGauge("bgv.noise.party_a.mask")->Set(worst.mask);
  registry.GetGauge("bgv.noise.party_a.permute")->Set(worst.permute);

  // Apply the unit permutation: output position p carries original unit
  // perm[p].
  trace::TraceSpan perm_span("party_a.permute");
  query->distances_.resize(units);
  for (size_t p = 0; p < units; ++p) {
    query->distances_[p] = std::move(transformed[query->transform_->perm[p]]);
  }
  return query;
}

Status PartyA::Query::BeginReturnPhase(size_t k) {
  acc_.assign(k, bgv::Ciphertext());
  acc_started_.assign(k, false);
  min_absorb_budget_ = -1;
  min_retrieve_budget_ = -1;
  state_ = State::kReturning;
  return Status::Ok();
}

Status PartyA::Query::AbsorbIndicator(size_t j, size_t transformed_unit_pos,
                                      const bgv::Ciphertext& indicator) {
  if (state_ != State::kReturning) {
    return FailedPreconditionError("BeginReturnPhase has not run");
  }
  if (j >= acc_.size()) return InvalidArgumentError("result index j too big");
  const QueryTransform& transform = *transform_;
  if (transformed_unit_pos >= transform.perm.size()) {
    return InvalidArgumentError("unit position out of range");
  }
  trace::TraceSpan span("party_a.absorb");
  PartyA& a = *party_;
  const size_t unit = transform.perm[transformed_unit_pos];
  bgv::Ciphertext ind = indicator;
  // Undo the unit's intra-ciphertext transform so the indicator aligns
  // with the stored database layout (rotating the small indicator is far
  // cheaper than re-deriving rotated database units).
  if (a.layout_.mode() == Layout::kPacked) {
    std::vector<uint64_t> elts;
    if (transform.col_swapped[unit]) {
      elts.push_back(a.ctx_->GaloisEltForColumnSwap());
      ops_.rotations += 1;
    }
    if (transform.rotations[unit] != 0) {
      const std::vector<uint64_t> rot_elts = a.evaluator_.RotationGaloisElts(
          -static_cast<int>(transform.rotations[unit] *
                            a.layout_.padded_dims()),
          a.galois_);
      elts.insert(elts.end(), rot_elts.begin(), rot_elts.end());
      ops_.rotations += 1;
    }
    // One coefficient-form chain instead of separate column-swap and
    // rotation round-trips.
    SKNN_RETURN_IF_ERROR(
        a.evaluator_.ApplyGaloisChainInplace(&ind, elts, a.galois_));
  }
  SKNN_ASSIGN_OR_RETURN(bgv::Ciphertext prod,
                        a.evaluator_.Multiply(a.db_ret_[unit], ind));
  ops_.he_multiplications += 1;
  if (!acc_started_[j]) {
    acc_[j] = std::move(prod);
    acc_started_[j] = true;
  } else {
    SKNN_RETURN_IF_ERROR(a.evaluator_.AddInplace(&acc_[j], prod));
    ops_.he_additions += 1;
  }
  min_absorb_budget_ =
      MinBudget(min_absorb_budget_,
                a.evaluator_.noise_model().EstimatedBudgetBits(acc_[j]));
  MetricsRegistry::Global()
      .GetGauge("bgv.noise.party_a.absorb")
      ->Set(min_absorb_budget_);
  return Status::Ok();
}

StatusOr<bgv::Ciphertext> PartyA::Query::FinalizeResult(size_t j) {
  if (state_ != State::kReturning || j >= acc_.size() || !acc_started_[j]) {
    return FailedPreconditionError("no indicators absorbed for this result");
  }
  trace::TraceSpan span("party_a.retrieve");
  PartyA& a = *party_;
  bgv::Ciphertext result = std::move(acc_[j]);
  acc_started_[j] = false;
  SKNN_RETURN_IF_ERROR(a.evaluator_.RelinearizeInplace(&result, a.relin_));
  ops_.relinearizations += 1;
  const size_t before = result.level;
  SKNN_RETURN_IF_ERROR(a.evaluator_.ModSwitchToLevelInplace(&result, 0));
  ops_.mod_switches += before;
  min_retrieve_budget_ =
      MinBudget(min_retrieve_budget_,
                a.evaluator_.noise_model().EstimatedBudgetBits(result));
  MetricsRegistry::Global()
      .GetGauge("bgv.noise.party_a.retrieve")
      ->Set(min_retrieve_budget_);
  // The client must decrypt this ciphertext; warn before it gets the
  // chance to fail.
  a.evaluator_.noise_model().WarnIfThin(result, "party_a.retrieve");
  return result;
}

}  // namespace core
}  // namespace sknn
