#ifndef SKNN_CORE_SERVER_H_
#define SKNN_CORE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bgv/ciphertext.h"
#include "bgv/context.h"
#include "bgv/keys.h"
#include "core/client.h"
#include "core/layout.h"
#include "core/party_a.h"
#include "core/party_b.h"
#include "core/protocol_config.h"
#include "data/dataset.h"
#include "net/resilient_channel.h"
#include "net/socket_link.h"

// The two-cloud deployment in server form (OPERATIONS.md): long-lived
// Party A and Party B processes on the socket transport, serving many
// concurrent client sessions.
//
//   client ──kQuery──▶ PartyAServer ──kDistances──▶ PartyBServer
//   client ◀─kResults── (worker pool) ◀─kIndicators── (per-connection B)
//
// Party A accepts client connections, admits each query into a bounded
// queue (backpressure: a full queue sheds with a typed kUnavailable
// control reply — DESIGN.md §9), and a pool of workers drains the queue.
// Every worker owns a persistent connection to Party B; one query's
// A<->B exchange runs on exactly one worker connection with a fresh
// resilient-channel epoch, so concurrent queries never interleave frames.
// Party B spawns one thread + one PartyB instance per inbound connection.
//
// Key distribution follows Figure 2 of the paper: every process derives
// its key material locally from the shared data-owner seed (`Deployment`)
// instead of shipping keys over the wire; the handshake fingerprint
// rejects peers whose derivation diverged.

namespace sknn {
namespace core {

// Everything a server-side process derives from the data-owner seed:
// context, layout, key material, per-party RNG seeds (the same derivation
// chain as SecureKnnSession::Create, so a server deployment at seed s is
// transcript-compatible with a local session at seed s), and the
// handshake fingerprint.
struct Deployment {
  // `role_a`: also encrypt the database (only Party A needs the encrypted
  // units; B and clients skip the O(u) encryption work).
  static StatusOr<Deployment> Derive(const ProtocolConfig& config,
                                     const data::Dataset& dataset,
                                     uint64_t seed, bool role_a);

  ProtocolConfig config;
  std::shared_ptr<const bgv::BgvContext> ctx;
  SlotLayout layout;
  bgv::SecretKey sk;
  bgv::PublicKey pk;
  bgv::RelinKeys relin;
  bgv::GaloisKeys galois;
  uint64_t party_a_seed = 0;
  uint64_t party_b_seed = 0;
  uint64_t client_seed = 0;
  // XXH64 over (config, dataset shape, seed): both ends of every
  // connection must agree or the handshake is rejected.
  uint64_t fingerprint = 0;
  std::vector<bgv::Ciphertext> encrypted_db;  // role_a only
};

struct ServerOptions {
  std::string listen_host = "127.0.0.1";
  uint16_t listen_port = 0;  // 0 = ephemeral, read back with port()
  // Party A only: where Party B listens.
  std::string peer_host = "127.0.0.1";
  uint16_t peer_port = 0;
  // Party A only: worker pool size == number of persistent A->B
  // connections == max queries in flight.
  size_t workers = 2;
  // Party A only: admission queue capacity; a query arriving when
  // `queue_capacity` jobs are already waiting is shed with kUnavailable.
  size_t queue_capacity = 8;
  int accept_poll_ms = 50;
  // Per-receive socket poll window; multiplied by retry.max_receive_polls
  // this bounds how long one end waits for the other's next frame.
  int io_poll_ms = 20;
  // How often idle connection threads wake to check for shutdown.
  int idle_poll_ms = 100;
  int connect_timeout_ms = 5000;
  // --- Resilience knobs (OPERATIONS.md "Failure runbook") ---
  // An idle A worker probes its B connection with a kHeartbeat exchange
  // every `heartbeat_interval_ms`, so a silently dead B (SIGKILL, power
  // loss: no FIN/RST ever arrives) is detected within one interval
  // instead of at the next query. `heartbeat_timeout_ms` bounds the wait
  // for the probe reply.
  int heartbeat_interval_ms = 1000;
  int heartbeat_timeout_ms = 2000;
  // Supervised worker reconnect: exponential backoff between re-dial
  // attempts while B is unreachable (doubles from the base up to the
  // cap; each attempt's TCP connect is bounded by
  // `reconnect_attempt_timeout_ms`).
  int reconnect_backoff_ms = 50;
  int reconnect_backoff_max_ms = 2000;
  int reconnect_attempt_timeout_ms = 250;
  // Whole-query re-executions after a broken A<->B exchange: the protocol
  // is stateless per query, so a query that died mid-flight is re-run
  // from StartQuery on a fresh connection (fresh mask/permutation — the
  // leakage argument is DESIGN.md §8.5), at most this many times and
  // never past the query's deadline.
  int max_query_reexecutions = 1;
  // Graceful drain: how long Drain() waits for queued + in-flight
  // queries to finish before answering the stragglers with a typed
  // kUnavailable.
  int drain_deadline_ms = 5000;
  net::RetryPolicy retry = ServerRetryPolicy();

  // Wire-friendly defaults: protocol phases take real time, so the
  // per-message receive budget is ~10s (500 polls x 20ms) instead of the
  // in-memory session's few-ms budget.
  static net::RetryPolicy ServerRetryPolicy() {
    net::RetryPolicy p;
    p.max_receive_polls = 500;
    p.max_leg_retries = 0;  // cross-process legs fail fast; see PROTOCOL.md
    p.base_backoff_us = 200;
    p.max_backoff_us = 5000;
    return p;
  }
};

// Tracks per-connection threads for a long-lived server. Each accept
// iteration calls ReapFinished so a finished connection's thread is
// joined promptly instead of accumulating (unjoined threads retain
// kernel resources) until shutdown.
class ConnectionThreads {
 public:
  ~ConnectionThreads() { JoinAll(); }

  // Runs `fn` on a new tracked thread; the thread marks itself finished
  // when `fn` returns.
  template <typename Fn>
  void Launch(Fn fn) {
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread t([fn = std::move(fn), done]() mutable {
      fn();
      done->store(true, std::memory_order_release);
    });
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back({std::move(t), std::move(done)});
  }

  // Joins every thread whose body has returned.
  void ReapFinished();
  // Joins all threads, finished or not (shutdown path).
  void JoinAll();
  size_t size() const;

 private:
  struct Entry {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

// Bounded multi-producer multi-consumer admission queue. TryPush returns
// false when full (the caller sheds); Pop blocks until an item or Stop.
// Exports queue.depth / queue.capacity gauges and queue.enqueued /
// queue.shed counters.
template <typename T>
class AdmissionQueue {
 public:
  enum class PopOutcome { kItem, kTimeout, kStopped };

  explicit AdmissionQueue(size_t capacity);

  bool TryPush(T item);
  // Returns false when stopped and empty.
  bool Pop(T* out);
  // Bounded wait: kItem fills *out, kTimeout after `timeout_ms` with no
  // item (the worker's cue to heartbeat or retry a reconnect), kStopped
  // when the queue is stopped and empty.
  PopOutcome PopFor(T* out, int timeout_ms);
  void Stop();
  // Stops the queue and hands back everything still queued, so a
  // draining server can answer the stragglers with a typed error
  // instead of leaving their connection threads blocked forever.
  std::vector<T> StopAndDrain();
  size_t depth() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool stopped_ = false;
};

// Party B as a server: accepts connections from Party A workers, runs
// FindNeighbours + indicator emission per query, one thread and one
// PartyB instance per connection (per-connection isolation: a connection
// never shares selection state or RNG draws with another).
class PartyBServer {
 public:
  static StatusOr<std::unique_ptr<PartyBServer>> Start(
      const Deployment& deployment, const ServerOptions& options);
  ~PartyBServer();

  uint16_t port() const;
  // Graceful drain: stop accepting new connections, wait up to
  // `deadline_ms` (<=0: options.drain_deadline_ms) for in-flight queries
  // to finish, then return. Idempotent; Shutdown still closes the
  // connections afterwards.
  void Drain(int deadline_ms = 0);
  void Shutdown();

  // Readiness for the /readyz admin endpoint: a draining B must answer
  // 503 so load balancers stop routing new A connections to it.
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

 private:
  PartyBServer(Deployment deployment, ServerOptions options);
  void AcceptLoop();
  void ServeConnection(std::unique_ptr<net::SocketChannel> conn,
                       uint64_t conn_id);
  Status ServeQuery(PartyB* party_b, net::ResilientChannel* ch,
                    std::vector<uint8_t> first_distance_payload);

  Deployment deployment_;
  ServerOptions options_;
  std::unique_ptr<net::SocketListener> listener_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int> in_flight_{0};
  std::thread accept_thread_;
  ConnectionThreads conn_threads_;
};

// Party A as a server: accepts client connections, admission-controls
// queries into the worker pool, runs the A side of the protocol against
// Party B over per-worker persistent connections, and returns encrypted
// results. Exports server.* and queue.* metrics and appends one flight
// record per query.
class PartyAServer {
 public:
  // Connects `options.workers` channels to Party B (handshaking each)
  // before accepting clients; fails if B is unreachable.
  static StatusOr<std::unique_ptr<PartyAServer>> Start(
      const Deployment& deployment, const ServerOptions& options);
  ~PartyAServer();

  uint16_t port() const;
  // Graceful drain (OPERATIONS.md "Failure runbook"): new queries are
  // shed with a typed kUnavailable while queued + in-flight queries get
  // up to `deadline_ms` (<=0: options.drain_deadline_ms) to finish;
  // stragglers still queued at the deadline are answered with a typed
  // kUnavailable so no client is left hanging. Idempotent; call
  // Shutdown afterwards to release threads and sockets.
  void Drain(int deadline_ms = 0);
  void Shutdown();

  // --- Readiness + link state for the /readyz and /varz admin endpoints.
  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  // Workers whose persistent B connection is currently up. 0 = every
  // worker is in its reconnect loop (B down or unreachable): the server
  // is alive but cannot serve, so /readyz answers 503.
  int connected_workers() const {
    return connected_workers_.load(std::memory_order_relaxed);
  }
  // Estimated (B steady clock) - (A steady clock) in ns, refreshed by
  // every successful heartbeat probe from B's echoed clock sample and the
  // probe RTT. 0 until the first probe completes. trace_stitch uses it to
  // align the two parties' trace timelines.
  int64_t b_clock_offset_ns() const {
    return b_clock_offset_ns_.load(std::memory_order_relaxed);
  }

  // Test hook: artificial per-query delay in the worker (exercises
  // backpressure deterministically).
  void set_worker_delay_ms_for_test(int ms) { worker_delay_ms_ = ms; }
  // Test hook: the next `n` worker query executions fail with a typed
  // kAborted before touching the B connection, exercising the
  // close-reconnect-re-execute recovery path deterministically.
  void inject_worker_faults_for_test(int n) { inject_faults_ = n; }

 private:
  struct Job;

  PartyAServer(Deployment deployment, ServerOptions options);
  void AcceptLoop();
  void ServeConnection(std::unique_ptr<net::SocketChannel> conn,
                       uint64_t conn_id);
  void WorkerLoop(size_t worker_index);
  // The A side of one query against B on this worker's channel. Fills
  // job->result_payloads on success.
  Status RunQueryOnWorker(size_t worker_index, Job* job);
  Status ConnectWorkerToB(size_t worker_index, int connect_timeout_ms);
  // One kHeartbeat round-trip on the worker's B connection, bounded by
  // heartbeat_timeout_ms.
  Status HeartbeatProbe(size_t worker_index);
  // Completes `job` with `status` and wakes its connection thread.
  static void FinishJob(const std::shared_ptr<Job>& job, Status status);

  Deployment deployment_;
  ServerOptions options_;
  std::unique_ptr<PartyA> party_a_;
  std::unique_ptr<net::SocketListener> listener_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int> in_flight_{0};
  std::atomic<int> worker_delay_ms_{0};
  std::atomic<int> inject_faults_{0};
  std::atomic<int> connected_workers_{0};
  std::atomic<int64_t> b_clock_offset_ns_{0};

  std::unique_ptr<AdmissionQueue<std::shared_ptr<Job>>> queue_;
  // Worker w owns b_raw_[w] (socket) wrapped by b_ch_[w] (resilient).
  std::vector<std::unique_ptr<net::SocketChannel>> b_raw_;
  std::vector<std::unique_ptr<net::ResilientChannel>> b_ch_;
  std::vector<std::thread> workers_;
  std::thread accept_thread_;
  ConnectionThreads conn_threads_;
};

// A protocol client over the socket transport: connects to Party A,
// handshakes, then runs queries (encrypt -> kQuery -> control reply ->
// kResults -> decrypt). One connection serves many sequential queries;
// create one RemoteClient per concurrent client thread.
class RemoteClient {
 public:
  static StatusOr<std::unique_ptr<RemoteClient>> Connect(
      const Deployment& deployment, const std::string& host, uint16_t port,
      const ServerOptions& options);

  // Runs one query end-to-end. A shed returns the server's typed
  // kUnavailable; transport failures surface as their transient codes.
  //
  // `deadline_ms` > 0 sets an end-to-end budget: it rides a kControl
  // preamble frame to the server (which sheds the query with a typed
  // kDeadlineExceeded if it expires while queued, and bounds every
  // A<->B leg by the remainder) and bounds the client's own receive
  // waits, so a query can never outlive its deadline on either end.
  // 0 keeps the fixed RetryPolicy budgets (and sends no preamble — the
  // wire is byte-identical to the pre-deadline protocol).
  StatusOr<std::vector<std::vector<uint64_t>>> Query(
      const std::vector<uint64_t>& query, uint64_t deadline_ms = 0);

  // The distributed trace id of the most recent Query call (0 when that
  // query ran untraced). When the global tracer is enabled the client
  // mints one id per query and ships it to Party A in a kControl preamble
  // (PROTOCOL.md "Trace-id preamble"), so the same id tags the client's
  // spans, A's flight record and spans, and B's spans for that query.
  uint64_t last_trace_id() const { return last_trace_id_; }

 private:
  RemoteClient(const Deployment& deployment, const ServerOptions& options);
  // (Re)dials Party A and handshakes. Query calls this transparently when
  // the previous exchange left the connection dirty (an abandoned reply:
  // deadline expiry or a mid-stream failure) — reusing such a connection
  // would hand the NEXT query the stale reply and desynchronize every
  // exchange after it.
  Status Reconnect();

  ProtocolConfig config_;
  ServerOptions options_;
  uint64_t fingerprint_ = 0;
  std::string host_;
  uint16_t port_ = 0;
  std::unique_ptr<Client> client_;
  std::unique_ptr<net::SocketChannel> conn_;
  std::unique_ptr<net::ResilientChannel> ch_;
  bool dirty_ = false;
  uint64_t queries_ = 0;
  uint64_t last_trace_id_ = 0;
};

}  // namespace core
}  // namespace sknn

#endif  // SKNN_CORE_SERVER_H_
