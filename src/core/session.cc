#include "core/session.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>

#include "bgv/noise_model.h"
#include "bgv/serialization.h"
#include "bgv/symmetric.h"
#include "common/flight_recorder.h"
#include "common/metrics_registry.h"
#include "common/trace.h"
#include "net/frame.h"

namespace sknn {
namespace core {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Serializes a ciphertext to count its wire size, returning the bytes.
std::vector<uint8_t> CtToBytes(const bgv::Ciphertext& ct) {
  ByteSink sink;
  bgv::WriteCiphertext(ct, &sink);
  return sink.TakeBytes();
}

StatusOr<bgv::Ciphertext> CtFromBytes(std::vector<uint8_t> bytes) {
  ByteSource src(std::move(bytes));
  return bgv::ReadCiphertext(&src);
}

// Runs `body`; on a transient failure (Status::IsTransient) calls `drain`
// to flush every in-flight or staged frame and re-issues the whole leg,
// up to max_leg_retries times. Safe because each leg is idempotent to
// re-request (see RunQuery's doc comment). Fatal errors and retry
// exhaustion propagate to the caller as typed Status — never a crash or
// a silently wrong answer.
Status RunLegWithRecovery(const char* retry_span_name,
                          const net::RetryPolicy& policy,
                          const std::function<void()>& drain,
                          const std::function<Status()>& body,
                          uint64_t* recovered_legs) {
  static MetricsRegistry::Counter* recovered =
      MetricsRegistry::Global().GetCounter("query.recovered");
  static MetricsRegistry::Counter* leg_retries =
      MetricsRegistry::Global().GetCounter("net.leg_retries");
  Status status = body();
  int tries = 0;
  while (!status.ok() && status.IsTransient() &&
         tries < policy.max_leg_retries) {
    ++tries;
    leg_retries->Increment();
    trace::TraceSpan span(retry_span_name);
    drain();
    status = body();
  }
  if (status.ok() && tries > 0) {
    recovered->Increment();
    ++*recovered_legs;
  }
  return status;
}

// Sum of every `net.faults.*` counter — the flight recorder stores the
// delta across a query as "faults this query incurred".
uint64_t TotalInjectedFaults() {
  uint64_t total = 0;
  for (const auto& [name, value] :
       MetricsRegistry::Global().CounterValues()) {
    if (name.rfind("net.faults.", 0) == 0) total += value;
  }
  return total;
}

// min over budgets where negative means "not observed".
double MinBudget(double a, double b) {
  if (a < 0) return b;
  if (b < 0) return a;
  return std::min(a, b);
}

// The per-query noise gauges; reset to "unobserved" at query start so a
// flight record never inherits a previous query's margins.
constexpr const char* kNoiseGauges[] = {
    "bgv.noise.party_a.square_fold", "bgv.noise.party_a.mask",
    "bgv.noise.party_a.permute",     "bgv.noise.party_a.absorb",
    "bgv.noise.party_a.retrieve",    "bgv.noise.party_b.exact_distance_budget",
    "bgv.noise.party_b.indicator",
};

}  // namespace

void SecureKnnSession::SetFaultInjection(const net::FaultSpec& spec,
                                         uint64_t seed) {
  fault_spec_ = spec;
  fault_seed_ = seed;
}

StatusOr<std::unique_ptr<SecureKnnSession>> SecureKnnSession::Create(
    const ProtocolConfig& config, const data::Dataset& dataset,
    uint64_t seed) {
  trace::TraceSpan setup_span("setup");
  const auto start = std::chrono::steady_clock::now();
  auto session = std::unique_ptr<SecureKnnSession>(new SecureKnnSession());
  session->config_ = config;

  SKNN_ASSIGN_OR_RETURN(std::unique_ptr<DataOwner> owner,
                        DataOwner::Create(config, dataset, seed));
  session->ctx_ = owner->context();
  session->layout_ = owner->layout();

  // Measure what the owner ships to Party A: evaluation keys + the
  // encrypted database (Figure 2, label 1).
  {
    ByteSink key_sink;
    bgv::WritePublicKey(owner->pk(), &key_sink);
    bgv::WriteRelinKeys(owner->relin(), &key_sink);
    bgv::WriteGaloisKeys(owner->galois(), &key_sink);
    session->setup_report_.evaluation_key_bytes = key_sink.size();
  }
  std::vector<bgv::Ciphertext> units;
  {
    trace::TraceSpan span("owner.encrypt_db");
    SKNN_ASSIGN_OR_RETURN(units, owner->EncryptDatabase());
    for (const bgv::Ciphertext& u : units) {
      const size_t bytes = CtToBytes(u).size();
      session->setup_report_.encrypted_db_bytes += bytes;
      trace::Tracer::Global().AddBytesSent(bytes);
    }
  }

  Chacha20Rng seeder(seed ^ 0x5eC0DEull);
  session->party_a_ = std::make_unique<PartyA>(
      session->ctx_, config, session->layout_, owner->pk(), owner->relin(),
      owner->galois(), seeder.NextU64());
  SKNN_RETURN_IF_ERROR(
      session->party_a_->LoadEncryptedDatabase(std::move(units)));
  session->party_b_ = std::make_unique<PartyB>(
      session->ctx_, config, session->layout_, owner->sk(), owner->pk(),
      seeder.NextU64());
  session->client_ = std::make_unique<Client>(
      session->ctx_, config, session->layout_, owner->pk(), owner->sk(),
      seeder.NextU64());

  session->setup_report_.owner_ops = owner->ops();
  session->setup_report_.party_a_ops = session->party_a_->ops();
  session->setup_report_.setup_seconds = SecondsSince(start);
  session->setup_report_.estimated_security_bits = bgv::EstimateSecurityBits(
      session->ctx_->n(), session->ctx_->params().TotalModulusBits());
  session->party_a_->ResetOps();
  return session;
}

StatusOr<QueryResult> SecureKnnSession::RunQuery(
    const std::vector<uint64_t>& query) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (const char* name : kNoiseGauges) registry.GetGauge(name)->Set(-1);
  const uint64_t retries_before =
      registry.GetCounter("net.leg_retries")->value();
  const uint64_t recovered_before =
      registry.GetCounter("query.recovered")->value();
  const uint64_t faults_before = TotalInjectedFaults();
  const uint64_t pool_misses_before =
      registry.GetCounter("bgv.alloc.pool_misses")->value();
  const uint64_t pool_hits_before =
      registry.GetCounter("bgv.alloc.pool_hits")->value();
  // Mirrors the FaultyLink seed RunQueryInternal will use for this query
  // (0 when injection is off) — the replay key of the flight record.
  const uint64_t replay_seed =
      fault_spec_.any() ? fault_seed_ + queries_run_ : 0;

  QueryResult result;
  const Status status = RunQueryInternal(query, &result);

  auto gauge = [&](const char* name) {
    return registry.GetGauge(name)->value();
  };
  const bgv::NoiseModel noise_model(*ctx_);
  const double fresh_query_budget =
      std::max(0.0, noise_model.LogQ(ctx_->max_level()) - 1.0 -
                        noise_model.FreshPkNoiseBits());
  const double distance_margin =
      MinBudget(gauge("bgv.noise.party_a.square_fold"),
                MinBudget(gauge("bgv.noise.party_a.mask"),
                          gauge("bgv.noise.party_a.permute")));
  const double return_margin = MinBudget(
      gauge("bgv.noise.party_a.absorb"), gauge("bgv.noise.party_a.retrieve"));

  FlightRecord record;
  record.seed = replay_seed;
  record.num_points = layout_.num_points();
  record.dims = layout_.dims();
  record.k = config_.k;
  record.phases.push_back({"query_encrypt",
                           result.timings.query_encrypt_seconds,
                           result.client_bytes_sent, fresh_query_budget});
  record.phases.push_back({"compute_distances",
                           result.timings.compute_distances_seconds, 0,
                           distance_margin});
  record.phases.push_back(
      {"find_neighbours", result.timings.find_neighbours_seconds,
       result.ab_link.bytes_a_to_b,
       gauge("bgv.noise.party_b.exact_distance_budget")});
  record.phases.push_back({"return_knn", result.timings.return_knn_seconds,
                           result.ab_link.bytes_b_to_a, return_margin});
  record.phases.push_back({"client_decrypt",
                           result.timings.client_decrypt_seconds,
                           result.client_bytes_received,
                           gauge("bgv.noise.party_a.retrieve")});
  record.leg_retries =
      registry.GetCounter("net.leg_retries")->value() - retries_before;
  record.faults_injected = TotalInjectedFaults() - faults_before;
  record.recovered_legs =
      registry.GetCounter("query.recovered")->value() - recovered_before;
  record.heap_allocs =
      registry.GetCounter("bgv.alloc.pool_misses")->value() -
      pool_misses_before;
  record.pool_requests = record.heap_allocs +
                         registry.GetCounter("bgv.alloc.pool_hits")->value() -
                         pool_hits_before;
  record.ok = status.ok();
  record.status = status.ok() ? "ok" : status.message();
  FlightRecorder::Global().Add(std::move(record));

  if (!status.ok()) return status;
  return result;
}

Status SecureKnnSession::RunQueryInternal(const std::vector<uint64_t>& query,
                                          QueryResult* out) {
  QueryResult& result = *out;
  party_b_->ResetOps();
  client_->ResetOps();

  // Per-query transport stack: byte-counted raw link (in-memory deques or
  // a loopback TCP pair, selected by SetTransport), optional seeded fault
  // injection, framed + retrying endpoints (PROTOCOL.md "Frame envelope &
  // recovery").
  net::InMemoryLink mem_link;
  std::unique_ptr<net::SocketLink> sock_link;
  net::Channel* a_raw;
  net::Channel* b_raw;
  std::function<void()> link_drain;
  std::function<const net::LinkStats&()> link_stats;
  if (transport_ == Transport::kSocket) {
    SKNN_ASSIGN_OR_RETURN(sock_link, net::SocketLink::Create());
    a_raw = sock_link->a_endpoint();
    b_raw = sock_link->b_endpoint();
    link_drain = [&]() { sock_link->Drain(); };
    link_stats = [&]() -> const net::LinkStats& { return sock_link->stats(); };
  } else {
    a_raw = mem_link.a_endpoint();
    b_raw = mem_link.b_endpoint();
    link_drain = [&]() { mem_link.Drain(); };
    link_stats = [&]() -> const net::LinkStats& { return mem_link.stats(); };
  }
  std::unique_ptr<net::FaultyLink> faulty;
  if (fault_spec_.any()) {
    faulty = std::make_unique<net::FaultyLink>(
        a_raw, b_raw, fault_spec_, fault_spec_, fault_seed_ + queries_run_);
    a_raw = faulty->a_endpoint();
    b_raw = faulty->b_endpoint();
  }
  ++queries_run_;
  net::ResilientChannel a_ch(a_raw, retry_policy_, 2 * queries_run_, "A");
  net::ResilientChannel b_ch(b_raw, retry_policy_, 2 * queries_run_ + 1, "B");
  // Leg-recovery drain: no frame from a failed leg attempt — in the raw
  // queues or staged inside the fault injector — may survive into the
  // re-issue, so sequence spaces can restart from a clean slate.
  auto drain = [&]() {
    link_drain();
    if (faulty) faulty->Reset();
    a_ch.ResetEpoch();
    b_ch.ResetEpoch();
  };
  // Publish the link byte counts into the result on every exit path — the
  // flight record wants the bytes moved before an error, too.
  struct LinkStatsGuard {
    const std::function<const net::LinkStats&()>& stats;
    QueryResult* result;
    ~LinkStatsGuard() { result->ab_link = stats(); }
  } link_stats_guard{link_stats, &result};

  const bgv::NoiseModel noise_model(*ctx_);

  trace::TraceSpan query_span("query");

  // Client encrypts the query and sends it to Party A (label 4). The
  // client<->A legs are in-process handoffs, but they wear the same frame
  // envelope (message 1) so A validates them like wire traffic.
  auto t0 = std::chrono::steady_clock::now();
  SKNN_ASSIGN_OR_RETURN(bgv::Ciphertext query_ct,
                        client_->EncryptQuery(query));
  std::vector<uint8_t> query_bytes =
      net::EncodeFrame(net::MessageType::kQuery, 0, CtToBytes(query_ct));
  result.client_bytes_sent = query_bytes.size();
  bgv::Ciphertext query_at_a;
  {
    // The client->A leg is not carried by `ab_link`, so attribute its bytes
    // to the transfer span by hand.
    trace::TraceSpan span("transfer.query");
    trace::Tracer::Global().AddBytesSent(query_bytes.size());
    trace::Tracer::Global().AddBytesReceived(query_bytes.size());
    SKNN_ASSIGN_OR_RETURN(net::Frame frame,
                          net::DecodeFrame(std::move(query_bytes)));
    if (frame.type != net::MessageType::kQuery) {
      return DataLossError("client->A frame does not carry a query tag");
    }
    SKNN_ASSIGN_OR_RETURN(query_at_a, CtFromBytes(std::move(frame.payload)));
    // Deserialization strips the noise estimate (it never travels on the
    // wire); A knows this is a fresh public-key encryption, so re-seed the
    // tracker with the fresh-encryption bound.
    query_at_a.noise_bits = noise_model.FreshPkNoiseBits();
  }
  result.timings.query_encrypt_seconds = SecondsSince(t0);

  // Party A: Compute Distances (Algorithm 1, labels 5-6). Computed once
  // per query: leg retries below re-send these exact ciphertext bytes and
  // never recompute them, so the mask and permutation stay fixed within
  // the query. All of A's per-query state (transform, accumulators, op
  // counts) lives in the Query object, so concurrent sessions on one
  // PartyA stay isolated (DESIGN.md §9).
  t0 = std::chrono::steady_clock::now();
  SKNN_ASSIGN_OR_RETURN(std::unique_ptr<PartyA::Query> a_query,
                        party_a_->StartQuery(query_at_a));
  const std::vector<bgv::Ciphertext>& distances = a_query->distances();
  result.timings.compute_distances_seconds = SecondsSince(t0);

  // Leg 1 — message 2: A streams the masked distance bundle to B; B runs
  // Find Neighbours (Algorithm 2, label 7).
  t0 = std::chrono::steady_clock::now();
  size_t effective_k = 0;
  Status leg = RunLegWithRecovery(
      "retry/distances", retry_policy_, drain,
      [&]() -> Status {
        {
          trace::TraceSpan span("transfer.distances");
          for (const bgv::Ciphertext& ct : distances) {
            ByteSink sink;
            bgv::WriteCiphertext(ct, &sink);
            SKNN_RETURN_IF_ERROR(
                a_ch.SendMessage(net::MessageType::kDistances, sink.bytes()));
          }
        }
        std::vector<bgv::Ciphertext> received;
        received.reserve(distances.size());
        {
          trace::TraceSpan span("transfer.distances");
          for (size_t i = 0; i < distances.size(); ++i) {
            SKNN_ASSIGN_OR_RETURN(
                std::vector<uint8_t> bytes,
                b_ch.ReceiveMessage(net::MessageType::kDistances));
            SKNN_ASSIGN_OR_RETURN(bgv::Ciphertext ct,
                                  CtFromBytes(std::move(bytes)));
            received.push_back(std::move(ct));
          }
        }
        SKNN_ASSIGN_OR_RETURN(effective_k,
                              party_b_->FindNeighbours(received, config_.k));
        return Status::Ok();
      },
      &result.recovered_legs);
  SKNN_RETURN_IF_ERROR(leg);
  result.k = effective_k;
  result.timings.find_neighbours_seconds = SecondsSince(t0);

  // Leg 2 — message 3, interleaved: B streams indicator ciphertexts
  // (label 8), A absorbs them into the oblivious dot products (label 9).
  // Streaming keeps peak memory at one indicator ciphertext instead of
  // k*n. On retry, BeginReturnPhase resets A's accumulators and B
  // re-emits fresh encryptions of the same selectors.
  const size_t units = layout_.num_units();
  double b_seconds = 0;
  double a_seconds = 0;
  leg = RunLegWithRecovery(
      "retry/indicators", retry_policy_, drain,
      [&]() -> Status {
        SKNN_RETURN_IF_ERROR(a_query->BeginReturnPhase(effective_k));
        for (size_t j = 0; j < effective_k; ++j) {
          // B encrypts the whole row of indicators for result j in one
          // parallel batch (per-position RNG forks keep the transcript
          // deterministic), then streams them position by position.
          auto tbatch = std::chrono::steady_clock::now();
          std::vector<bgv::Ciphertext> row;
          std::vector<bgv::SeededCiphertext> row_seeded;
          if (config_.compress_indicators) {
            SKNN_ASSIGN_OR_RETURN(
                row_seeded, party_b_->EmitIndicatorsCompressedForResult(j));
          } else {
            SKNN_ASSIGN_OR_RETURN(row, party_b_->EmitIndicatorsForResult(j));
          }
          b_seconds += SecondsSince(tbatch);
          for (size_t pos = 0; pos < units; ++pos) {
            auto tb = std::chrono::steady_clock::now();
            ByteSink sink;
            if (config_.compress_indicators) {
              bgv::WriteSeededCiphertext(row_seeded[pos], &sink);
            } else {
              bgv::WriteCiphertext(row[pos], &sink);
            }
            {
              trace::TraceSpan span("transfer.indicators");
              SKNN_RETURN_IF_ERROR(b_ch.SendMessage(
                  net::MessageType::kIndicators, sink.bytes()));
            }
            b_seconds += SecondsSince(tb);

            auto ta = std::chrono::steady_clock::now();
            std::vector<uint8_t> bytes;
            {
              trace::TraceSpan span("transfer.indicators");
              SKNN_ASSIGN_OR_RETURN(
                  bytes, a_ch.ReceiveMessage(net::MessageType::kIndicators));
            }
            bgv::Ciphertext ind_at_a;
            if (config_.compress_indicators) {
              ByteSource src(std::move(bytes));
              SKNN_ASSIGN_OR_RETURN(bgv::SeededCiphertext seeded,
                                    bgv::ReadSeededCiphertext(&src));
              SKNN_ASSIGN_OR_RETURN(ind_at_a, bgv::ExpandSeeded(*ctx_, seeded));
            } else {
              SKNN_ASSIGN_OR_RETURN(ind_at_a, CtFromBytes(std::move(bytes)));
              // Fresh public-key indicator: re-seed the noise tracker
              // (ExpandSeeded stamps the symmetric bound itself).
              ind_at_a.noise_bits = noise_model.FreshPkNoiseBits();
            }
            SKNN_RETURN_IF_ERROR(a_query->AbsorbIndicator(j, pos, ind_at_a));
            a_seconds += SecondsSince(ta);
          }
        }
        return Status::Ok();
      },
      &result.recovered_legs);
  SKNN_RETURN_IF_ERROR(leg);
  result.timings.find_neighbours_seconds += b_seconds;

  // Party A finalizes and returns the k encrypted neighbours (label 10,
  // message 4), framed like the query leg.
  auto tr = std::chrono::steady_clock::now();
  std::vector<std::vector<uint8_t>> result_bytes;
  for (size_t j = 0; j < effective_k; ++j) {
    SKNN_ASSIGN_OR_RETURN(bgv::Ciphertext ct, a_query->FinalizeResult(j));
    result_bytes.push_back(
        net::EncodeFrame(net::MessageType::kResults, j, CtToBytes(ct)));
  }
  result.timings.return_knn_seconds = a_seconds + SecondsSince(tr);

  // Client decrypts. The A->client leg is not carried by `ab_link`; count
  // its bytes against the transfer span manually.
  t0 = std::chrono::steady_clock::now();
  for (std::vector<uint8_t>& bytes : result_bytes) {
    result.client_bytes_received += bytes.size();
    bgv::Ciphertext ct;
    {
      trace::TraceSpan span("transfer.results");
      trace::Tracer::Global().AddBytesSent(bytes.size());
      trace::Tracer::Global().AddBytesReceived(bytes.size());
      SKNN_ASSIGN_OR_RETURN(net::Frame frame,
                            net::DecodeFrame(std::move(bytes)));
      if (frame.type != net::MessageType::kResults) {
        return DataLossError("A->client frame does not carry a results tag");
      }
      SKNN_ASSIGN_OR_RETURN(ct, CtFromBytes(std::move(frame.payload)));
    }
    SKNN_ASSIGN_OR_RETURN(std::vector<uint64_t> point,
                          client_->DecryptNeighbour(ct));
    result.neighbours.push_back(std::move(point));
  }
  result.timings.client_decrypt_seconds = SecondsSince(t0);

  result.party_a_ops = a_query->ops();
  result.party_b_ops = party_b_->ops();
  result.client_ops = client_->ops();
  // (result.ab_link is filled by link_stats_guard on scope exit.)
  // Mirror the per-party aggregates into the global registry so trace/JSON
  // exports carry them alongside the bgv.evaluator.* counters.
  result.party_a_ops.ExportTo(&MetricsRegistry::Global(), "core.party_a");
  result.party_b_ops.ExportTo(&MetricsRegistry::Global(), "core.party_b");
  result.client_ops.ExportTo(&MetricsRegistry::Global(), "core.client");
  return Status::Ok();
}

}  // namespace core
}  // namespace sknn
