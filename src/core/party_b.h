#ifndef SKNN_CORE_PARTY_B_H_
#define SKNN_CORE_PARTY_B_H_

#include <memory>
#include <utility>
#include <vector>

#include "bgv/ciphertext.h"
#include "bgv/context.h"
#include "bgv/decryptor.h"
#include "bgv/encoder.h"
#include "bgv/encryptor.h"
#include "bgv/keys.h"
#include "bgv/noise_model.h"
#include "bgv/symmetric.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/layout.h"
#include "core/metrics.h"
#include "core/protocol_config.h"

// Party B: the key-holding cloud. Decrypts the masked, permuted distances,
// selects the k smallest (Algorithm 2), and answers with indicator
// ciphertexts. It never sees the database, the query or the true distances
// — only images under Party A's secret monotone polynomial in permuted
// order (Theorem 4.2: the view reveals the equidistance pattern and
// nothing else, provided A refreshed m and Π for this query).
//
// Cost model (n = points, u = units, l = payloads per unit, k = results):
// FindNeighbours is O(u) decryptions + O(n log k) heap scan; the
// indicator reply is O(u·k) fresh encryptions (the dominant B→A traffic —
// see EmitIndicatorCompressed).

namespace sknn {
namespace core {

class PartyB {
 public:
  PartyB(std::shared_ptr<const bgv::BgvContext> ctx, ProtocolConfig config,
         SlotLayout layout, bgv::SecretKey sk, bgv::PublicKey pk,
         uint64_t rng_seed);

  // Algorithm 2: decrypts the distance units, selects the k smallest
  // masked values (monotone masking preserves the order, so the selection
  // is exact). Returns the effective k (clamped to the point count).
  // Selection state persists until the next call; EmitIndicator* answers
  // are meaningless unless they follow the FindNeighbours of the same
  // query. O(u) decryptions + O(n log k) scan; span
  // `query/party_b.decrypt_select`.
  StatusOr<size_t> FindNeighbours(const std::vector<bgv::Ciphertext>& units,
                                  size_t k);

  // Indicator ciphertext for result j and transformed unit position
  // `unit_pos`: encrypts the 0/1 block selector (all zeros when result j
  // does not live in that unit). Every (j, unit_pos) pair gets a FRESH
  // encryption — even the all-zero ones — so A cannot distinguish hits
  // from misses by ciphertext equality. One encryption per call.
  StatusOr<bgv::Ciphertext> EmitIndicator(size_t j, size_t unit_pos) const;
  // Seed-compressed variant (half the bytes; B encrypts under its secret
  // key with a PRF-expanded c1). Same freshness guarantee: a new seed per
  // indicator.
  StatusOr<bgv::SeededCiphertext> EmitIndicatorCompressed(
      size_t j, size_t unit_pos) const;
  // Batch variants: the indicators for result j across ALL transformed
  // unit positions, encrypted in parallel on the internal thread pool.
  // Each position gets a deterministic RNG fork (seeds drawn sequentially
  // from the party RNG before the parallel section), so the ciphertexts do
  // not depend on thread count or scheduling. Output order is by unit
  // position; the freshness guarantee of the per-pair methods carries
  // over unchanged.
  StatusOr<std::vector<bgv::Ciphertext>> EmitIndicatorsForResult(
      size_t j) const;
  StatusOr<std::vector<bgv::SeededCiphertext>> EmitIndicatorsCompressedForResult(
      size_t j) const;

  const OpCounts& ops() const { return ops_; }
  void ResetOps() { ops_ = OpCounts(); }

  // Exposed for leakage tests: the masked values B observed (flattened in
  // transformed order) during the last query.
  const std::vector<uint64_t>& observed_masked_values() const {
    return observed_;
  }
  const std::vector<std::pair<size_t, size_t>>& selected() const {
    return selected_;
  }

 private:
  StatusOr<bgv::Plaintext> BuildIndicatorPlaintext(size_t j,
                                                   size_t unit_pos) const;

  std::shared_ptr<const bgv::BgvContext> ctx_;
  ProtocolConfig config_;
  SlotLayout layout_;
  bgv::BatchEncoder encoder_;
  bgv::NoiseModel noise_;
  bgv::Decryptor decryptor_;
  mutable Chacha20Rng rng_;
  mutable bgv::Encryptor encryptor_;
  bgv::SymmetricEncryptor sym_encryptor_;
  mutable ThreadPool pool_;
  mutable OpCounts ops_;

  std::vector<uint64_t> observed_;
  // (transformed unit position, payload index) per selected neighbour.
  std::vector<std::pair<size_t, size_t>> selected_;
};

}  // namespace core
}  // namespace sknn

#endif  // SKNN_CORE_PARTY_B_H_
