#ifndef SKNN_CORE_CONFIG_ADVISOR_H_
#define SKNN_CORE_CONFIG_ADVISOR_H_

#include <string>

#include "common/status.h"
#include "common/statusor.h"
#include "core/protocol_config.h"

// Automatic protocol configuration: given the workload (n, d, coordinate
// range, k) and a target security preset, picks a layout, masking degree,
// plaintext size and chain length that (a) satisfy every plaintext-space
// constraint and (b) minimize cost, with the trade-offs documented in the
// returned rationale. This encodes the parameter discipline of DESIGN.md
// §3 so users do not have to.

namespace sknn {
namespace core {

struct WorkloadSpec {
  size_t num_points = 0;
  size_t dims = 0;
  // Every coordinate of data and queries fits in [0, 2^coord_bits).
  int coord_bits = 4;
  size_t k = 5;
  // Smallest acceptable masking degree (leakage hardness floor; the paper
  // uses higher degrees for stronger distance hiding).
  size_t min_poly_degree = 1;
  bgv::SecurityPreset preset = bgv::SecurityPreset::kDefault;
};

struct AdvisedConfig {
  ProtocolConfig config;
  // Human-readable explanation of each choice.
  std::string rationale;
};

// Returns a validated configuration, or an error when the workload cannot
// fit any supported parameterization (e.g. coordinates too large for the
// plaintext space at any masking degree).
StatusOr<AdvisedConfig> AdviseConfig(const WorkloadSpec& workload);

}  // namespace core
}  // namespace sknn

#endif  // SKNN_CORE_CONFIG_ADVISOR_H_
