#include "core/client.h"

#include "common/trace.h"

namespace sknn {
namespace core {

Client::Client(std::shared_ptr<const bgv::BgvContext> ctx,
               ProtocolConfig config, SlotLayout layout, bgv::PublicKey pk,
               bgv::SecretKey sk, uint64_t rng_seed)
    : ctx_(ctx),
      config_(std::move(config)),
      layout_(std::move(layout)),
      encoder_(ctx),
      rng_(rng_seed),
      encryptor_(ctx, std::move(pk), &rng_),
      decryptor_(ctx, std::move(sk)) {}

StatusOr<bgv::Ciphertext> Client::EncryptQuery(
    const std::vector<uint64_t>& query) {
  if (query.size() != layout_.dims()) {
    return InvalidArgumentError("query dimensionality mismatch");
  }
  trace::TraceSpan span("client.encrypt");
  const uint64_t bound = uint64_t{1} << config_.coord_bits;
  for (uint64_t v : query) {
    if (v >= bound) {
      return InvalidArgumentError("query coordinate exceeds coord_bits");
    }
  }
  SKNN_ASSIGN_OR_RETURN(bgv::Plaintext pt,
                        encoder_.Encode(layout_.EncodeQuery(query)));
  SKNN_ASSIGN_OR_RETURN(bgv::Ciphertext ct, encryptor_.Encrypt(pt));
  ops_.encryptions += 1;
  return ct;
}

StatusOr<std::vector<uint64_t>> Client::DecryptNeighbour(
    const bgv::Ciphertext& ct) {
  trace::TraceSpan span("client.decrypt");
  SKNN_ASSIGN_OR_RETURN(bgv::Plaintext pt, decryptor_.Decrypt(ct));
  ops_.decryptions += 1;
  return layout_.ExtractPoint(encoder_.Decode(pt), ctx_->t());
}

}  // namespace core
}  // namespace sknn
