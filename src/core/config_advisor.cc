#include "core/config_advisor.h"

#include <sstream>

#include "core/masking.h"
#include "data/dataset.h"

namespace sknn {
namespace core {
namespace {

// Ring degree implied by a preset (mirrors BgvParams::Create).
size_t RingDegree(bgv::SecurityPreset preset) {
  switch (preset) {
    case bgv::SecurityPreset::kToy:
      return 1024;
    case bgv::SecurityPreset::kBench:
      return 4096;
    case bgv::SecurityPreset::kDefault:
      return 8192;
    case bgv::SecurityPreset::kParanoid:
      return 16384;
  }
  return 8192;
}

size_t NextPowerOfTwo(size_t x) {
  size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

StatusOr<AdvisedConfig> AdviseConfig(const WorkloadSpec& w) {
  if (w.num_points == 0 || w.dims == 0) {
    return InvalidArgumentError("workload needs points and dimensions");
  }
  if (w.min_poly_degree == 0) {
    return InvalidArgumentError("masking degree floor must be >= 1");
  }
  std::ostringstream why;

  ProtocolConfig cfg;
  cfg.k = w.k;
  cfg.dims = w.dims;
  cfg.coord_bits = w.coord_bits;
  cfg.preset = w.preset;

  const size_t ring = RingDegree(w.preset);
  const size_t padded = NextPowerOfTwo(w.dims);
  if (padded > ring / 2) {
    return InvalidArgumentError(
        "dimensionality exceeds the slot capacity of this preset");
  }

  // Layout: per-point gives the paper's exact (uniform-permutation)
  // leakage profile but costs one ciphertext per point; switch to packed
  // when the database is too large for that to be sane.
  const size_t points_per_unit = 2 * (ring / 2) / padded;
  if (w.num_points <= 1024 && w.num_points <= points_per_unit * 8) {
    cfg.layout = Layout::kPerPoint;
    why << "layout=per-point (n=" << w.num_points
        << " is small enough for the paper's uniform permutation; "
           "strongest leakage profile)\n";
  } else {
    cfg.layout = Layout::kPacked;
    why << "layout=packed (n=" << w.num_points << " would need "
        << w.num_points
        << " per-point ciphertexts; packing stores it in "
        << (w.num_points + points_per_unit - 1) / points_per_unit
        << " units at the cost of block-level permutation granularity)\n";
  }

  // Plaintext size: distances must fit, and the masking polynomial needs
  // a usable coefficient budget at the requested degree. Try the largest
  // degree first (better distance hiding), falling back toward the floor,
  // growing t when the noise budget allows.
  const uint64_t max_coord = (uint64_t{1} << w.coord_bits) - 1;
  const uint64_t max_dist = data::MaxSquaredDistance(w.dims, max_coord);
  // t ~ 2^33 is the largest plaintext the one-prime-per-level noise
  // discipline supports across all presets (cost per multiplication is
  // roughly plain_bits + log2(n) + margin bits of modulus); larger t needs
  // a custom chain with multiple primes per level.
  constexpr int kPlainBits = 33;
  const uint64_t t_approx = uint64_t{1} << kPlainBits;
  for (size_t degree : {size_t{3}, size_t{2}, size_t{1}}) {
    if (degree < w.min_poly_degree) break;
    if (max_dist >= t_approx / 2) continue;
    // Require at least 8 bits of entropy in the leading coefficient.
    if (MaskingPolynomial::CoefficientBudget(t_approx, max_dist, degree,
                                             degree) < (1u << 8)) {
      continue;
    }
    cfg.poly_degree = degree;
    cfg.plain_bits = kPlainBits;
    cfg.levels = cfg.MinimumLevels();
    why << "masking degree D=" << degree << " with t~2^" << kPlainBits
        << " (leading-coefficient budget >= 2^8; m(max_dist) < t)\n";
    why << "levels=" << cfg.levels
        << " (distance square + Horner + selector/mask + transport)\n";
    SKNN_RETURN_IF_ERROR(cfg.Validate());
    AdvisedConfig out;
    out.config = cfg;
    out.rationale = why.str();
    return out;
  }
  return InvalidArgumentError(
      "no supported plaintext size fits these coordinates at the requested "
      "masking degree; reduce coord_bits or min_poly_degree");
}

}  // namespace core
}  // namespace sknn
