#ifndef SKNN_CORE_SESSION_H_
#define SKNN_CORE_SESSION_H_

#include <memory>
#include <vector>

#include "core/client.h"
#include "core/data_owner.h"
#include "core/metrics.h"
#include "core/party_a.h"
#include "core/party_b.h"
#include "core/protocol_config.h"
#include "data/dataset.h"
#include "net/channel.h"
#include "net/faulty_link.h"
#include "net/resilient_channel.h"
#include "net/socket_link.h"

// End-to-end orchestration of the secure k-NN protocol: wires the data
// owner, Party A, Party B and the client together over byte-accounted
// in-memory links and runs queries. This is the primary public entry point
// of the library.
//
// Protocol coverage: Create performs the setup round (Figure 2 labels
// 1-3: keygen, database encryption, key distribution); each RunQuery is
// one complete query (labels 4-10, messages 1-4 of PROTOCOL.md) — one
// A<->B round trip. The A<->B link is a real byte-counted channel; the
// client<->A legs are in-process handoffs whose serialized sizes are
// still accounted (QueryResult::client_bytes_*).
//
// When `trace::Tracer::Global()` is enabled, setup records under the
// `setup/...` span tree and each query under `query/...` (the exact
// hierarchy is tabulated in PROTOCOL.md and DESIGN.md §7); per-party op
// counts are exported to `MetricsRegistry::Global()` under
// `core.party_a.*` / `core.party_b.*` / `core.client.*` at the end of
// each query.
//
// End-to-end cost per query: O(u·(log d' + D + k)) HE ops at A, O(u)
// decryptions + O(u·k) encryptions at B, 2 encryptions + k decryptions
// at the client (u = ciphertext units, d' = padded dims, D = mask
// degree).

namespace sknn {
namespace core {

struct QueryResult {
  // The k neighbour points (coordinates), in the order Party B emitted
  // them (an implementation-defined order, not sorted by distance).
  std::vector<std::vector<uint64_t>> neighbours;
  // Effective k (clamped to the database size).
  size_t k = 0;

  OpCounts party_a_ops;
  OpCounts party_b_ops;
  OpCounts client_ops;
  // Bytes/messages/rounds on the A<->B link during this query.
  net::LinkStats ab_link;
  // Bytes from client to A (query) and A to client (results).
  uint64_t client_bytes_sent = 0;
  uint64_t client_bytes_received = 0;
  // Protocol legs that hit a transient transport error and succeeded on a
  // re-issue (0 on a clean run; see "Frame envelope & recovery" in
  // PROTOCOL.md).
  uint64_t recovered_legs = 0;
  PhaseTimings timings;
};

struct SetupReport {
  double setup_seconds = 0;
  uint64_t encrypted_db_bytes = 0;
  uint64_t evaluation_key_bytes = 0;  // pk + relin + galois shipped to A
  OpCounts owner_ops;
  OpCounts party_a_ops;  // mod switches building the return-phase copies
  double estimated_security_bits = 0;
};

class SecureKnnSession {
 public:
  // Builds the full deployment for a dataset. All randomness derives from
  // `seed`; identical seeds reproduce identical transcripts. Setup cost is
  // dominated by the O(u) database encryptions and the O(u) mod-switch
  // chain building A's return-phase copies.
  static StatusOr<std::unique_ptr<SecureKnnSession>> Create(
      const ProtocolConfig& config, const data::Dataset& dataset,
      uint64_t seed);

  // Runs one k-NN query (k taken from the config). Each call is an
  // independent protocol instance: Party A refreshes the masking
  // polynomial and permutation internally, so queries may be issued
  // back-to-back without weakening the leakage profile. Results are
  // exact (same multiset of distances as plaintext k-NN).
  //
  // Fault tolerance: the A<->B traffic travels in framed envelopes over a
  // ResilientChannel pair; on a transient transport error (IsTransient()
  // status — lost, corrupted, duplicated, reordered, or delayed frame)
  // the affected protocol leg is drained and re-issued, up to
  // RetryPolicy::max_leg_retries times, before the error is surfaced.
  // Re-issuing a leg is safe: the retransmitted distance bundle is
  // byte-identical (no new randomness → no new leakage) and re-emitted
  // indicators are fresh encryptions of the same plaintext selectors
  // (covered by semantic security); mask and permutation stay fixed
  // within the query and are refreshed across queries (DESIGN.md §8).
  //
  // Observability: every call — success or failure — appends one record
  // to `FlightRecorder::Global()` (replay seed, per-phase timings/bytes,
  // transport counter deltas, minimum noise margins); failed queries dump
  // their record to the log automatically.
  StatusOr<QueryResult> RunQuery(const std::vector<uint64_t>& query);

  // Enables deterministic fault injection on the A<->B link of every
  // subsequent RunQuery (both directions use `spec`). `seed` makes the
  // fault pattern reproducible; successive queries use seed, seed+1, ...
  void SetFaultInjection(const net::FaultSpec& spec, uint64_t seed);

  // Transport carrying the A<->B frames of subsequent queries. kInMemory
  // (default) is the byte-accounted in-process link; kSocket routes the
  // identical frames over a loopback TCP pair (net::SocketLink), so the
  // whole protocol — including fault injection and leg recovery — can be
  // exercised against real kernel sockets.
  enum class Transport { kInMemory, kSocket };
  void SetTransport(Transport transport) { transport_ = transport; }

  // Replaces the default transport retry policy (polls, backoff, leg
  // retries) for subsequent queries.
  void SetRetryPolicy(const net::RetryPolicy& policy) {
    retry_policy_ = policy;
  }
  const net::RetryPolicy& retry_policy() const { return retry_policy_; }

  const SetupReport& setup_report() const { return setup_report_; }
  const ProtocolConfig& config() const { return config_; }
  std::shared_ptr<const bgv::BgvContext> context() const { return ctx_; }

  // Test hooks.
  PartyA& party_a() { return *party_a_; }
  PartyB& party_b() { return *party_b_; }

 private:
  SecureKnnSession() = default;

  // The protocol body of RunQuery; partial progress (timings, byte
  // counts) lands in `*result` even on error so the flight record built
  // by the public wrapper reflects how far the query got.
  Status RunQueryInternal(const std::vector<uint64_t>& query,
                          QueryResult* result);

  ProtocolConfig config_;
  std::shared_ptr<const bgv::BgvContext> ctx_;
  SlotLayout layout_;
  std::unique_ptr<PartyA> party_a_;
  std::unique_ptr<PartyB> party_b_;
  std::unique_ptr<Client> client_;
  SetupReport setup_report_;

  net::FaultSpec fault_spec_;
  uint64_t fault_seed_ = 0;
  uint64_t queries_run_ = 0;
  net::RetryPolicy retry_policy_;
  Transport transport_ = Transport::kInMemory;
};

}  // namespace core
}  // namespace sknn

#endif  // SKNN_CORE_SESSION_H_
