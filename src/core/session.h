#ifndef SKNN_CORE_SESSION_H_
#define SKNN_CORE_SESSION_H_

#include <memory>
#include <vector>

#include "core/client.h"
#include "core/data_owner.h"
#include "core/metrics.h"
#include "core/party_a.h"
#include "core/party_b.h"
#include "core/protocol_config.h"
#include "data/dataset.h"
#include "net/channel.h"

// End-to-end orchestration of the secure k-NN protocol: wires the data
// owner, Party A, Party B and the client together over byte-accounted
// in-memory links and runs queries. This is the primary public entry point
// of the library.
//
// Protocol coverage: Create performs the setup round (Figure 2 labels
// 1-3: keygen, database encryption, key distribution); each RunQuery is
// one complete query (labels 4-10, messages 1-4 of PROTOCOL.md) — one
// A<->B round trip. The A<->B link is a real byte-counted channel; the
// client<->A legs are in-process handoffs whose serialized sizes are
// still accounted (QueryResult::client_bytes_*).
//
// When `trace::Tracer::Global()` is enabled, setup records under the
// `setup/...` span tree and each query under `query/...` (the exact
// hierarchy is tabulated in PROTOCOL.md and DESIGN.md §7); per-party op
// counts are exported to `MetricsRegistry::Global()` under
// `core.party_a.*` / `core.party_b.*` / `core.client.*` at the end of
// each query.
//
// End-to-end cost per query: O(u·(log d' + D + k)) HE ops at A, O(u)
// decryptions + O(u·k) encryptions at B, 2 encryptions + k decryptions
// at the client (u = ciphertext units, d' = padded dims, D = mask
// degree).

namespace sknn {
namespace core {

struct QueryResult {
  // The k neighbour points (coordinates), in the order Party B emitted
  // them (an implementation-defined order, not sorted by distance).
  std::vector<std::vector<uint64_t>> neighbours;
  // Effective k (clamped to the database size).
  size_t k = 0;

  OpCounts party_a_ops;
  OpCounts party_b_ops;
  OpCounts client_ops;
  // Bytes/messages/rounds on the A<->B link during this query.
  net::LinkStats ab_link;
  // Bytes from client to A (query) and A to client (results).
  uint64_t client_bytes_sent = 0;
  uint64_t client_bytes_received = 0;
  PhaseTimings timings;
};

struct SetupReport {
  double setup_seconds = 0;
  uint64_t encrypted_db_bytes = 0;
  uint64_t evaluation_key_bytes = 0;  // pk + relin + galois shipped to A
  OpCounts owner_ops;
  OpCounts party_a_ops;  // mod switches building the return-phase copies
  double estimated_security_bits = 0;
};

class SecureKnnSession {
 public:
  // Builds the full deployment for a dataset. All randomness derives from
  // `seed`; identical seeds reproduce identical transcripts. Setup cost is
  // dominated by the O(u) database encryptions and the O(u) mod-switch
  // chain building A's return-phase copies.
  static StatusOr<std::unique_ptr<SecureKnnSession>> Create(
      const ProtocolConfig& config, const data::Dataset& dataset,
      uint64_t seed);

  // Runs one k-NN query (k taken from the config). Each call is an
  // independent protocol instance: Party A refreshes the masking
  // polynomial and permutation internally, so queries may be issued
  // back-to-back without weakening the leakage profile. Results are
  // exact (same multiset of distances as plaintext k-NN).
  StatusOr<QueryResult> RunQuery(const std::vector<uint64_t>& query);

  const SetupReport& setup_report() const { return setup_report_; }
  const ProtocolConfig& config() const { return config_; }
  std::shared_ptr<const bgv::BgvContext> context() const { return ctx_; }

  // Test hooks.
  PartyA& party_a() { return *party_a_; }
  PartyB& party_b() { return *party_b_; }

 private:
  SecureKnnSession() = default;

  ProtocolConfig config_;
  std::shared_ptr<const bgv::BgvContext> ctx_;
  SlotLayout layout_;
  std::unique_ptr<PartyA> party_a_;
  std::unique_ptr<PartyB> party_b_;
  std::unique_ptr<Client> client_;
  SetupReport setup_report_;
};

}  // namespace core
}  // namespace sknn

#endif  // SKNN_CORE_SESSION_H_
