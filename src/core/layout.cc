#include "core/layout.h"

#include "common/logging.h"

namespace sknn {
namespace core {
namespace {

size_t NextPowerOfTwo(size_t x) {
  size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

StatusOr<SlotLayout> SlotLayout::Create(const ProtocolConfig& config,
                                        size_t ring_degree,
                                        size_t num_points) {
  if (num_points == 0) return InvalidArgumentError("empty database");
  SlotLayout l;
  l.mode_ = config.layout;
  l.dims_ = config.dims;
  l.padded_dims_ = NextPowerOfTwo(config.dims);
  l.ring_degree_ = ring_degree;
  l.num_points_ = num_points;
  if (l.padded_dims_ > l.row_size()) {
    return InvalidArgumentError(
        "dimensionality exceeds slot row size; increase ring degree");
  }
  l.points_per_row_ = l.row_size() / l.padded_dims_;
  switch (l.mode_) {
    case Layout::kPerPoint:
      l.points_per_unit_ = 1;
      l.num_units_ = num_points;
      break;
    case Layout::kPacked:
      l.points_per_unit_ = 2 * l.points_per_row_;
      l.num_units_ =
          (num_points + l.points_per_unit_ - 1) / l.points_per_unit_;
      break;
  }
  return l;
}

size_t SlotLayout::PointIndex(size_t unit, size_t payload) const {
  SKNN_CHECK_LT(payload, payloads_per_unit());
  return unit * points_per_unit_ + payload;
}

size_t SlotLayout::PayloadSlot(size_t payload) const {
  SKNN_CHECK_LT(payload, payloads_per_unit());
  if (mode_ == Layout::kPerPoint) return 0;
  const size_t row = payload / points_per_row_;
  const size_t block = payload % points_per_row_;
  return row * row_size() + block * padded_dims_;
}

std::vector<uint64_t> SlotLayout::EncodeDbUnit(const data::Dataset& data,
                                               size_t unit) const {
  SKNN_CHECK_EQ(data.dims(), dims_);
  std::vector<uint64_t> slots(ring_degree_, 0);
  for (size_t p = 0; p < payloads_per_unit(); ++p) {
    const size_t point = PointIndex(unit, p);
    if (point >= num_points_) continue;  // padding block stays zero
    const size_t base = PayloadSlot(p);
    for (size_t j = 0; j < dims_; ++j) {
      slots[base + j] = data.at(point, j);
    }
  }
  return slots;
}

std::vector<uint64_t> SlotLayout::EncodeQuery(
    const std::vector<uint64_t>& query) const {
  SKNN_CHECK_EQ(query.size(), dims_);
  std::vector<uint64_t> slots(ring_degree_, 0);
  if (mode_ == Layout::kPerPoint) {
    for (size_t j = 0; j < dims_; ++j) slots[j] = query[j];
    return slots;
  }
  for (size_t p = 0; p < payloads_per_unit(); ++p) {
    const size_t base = PayloadSlot(p);
    for (size_t j = 0; j < dims_; ++j) slots[base + j] = query[j];
  }
  return slots;
}

std::vector<uint64_t> SlotLayout::SelectorSlots(size_t unit) const {
  std::vector<uint64_t> slots(ring_degree_, 0);
  for (size_t p = 0; p < payloads_per_unit(); ++p) {
    if (PointIndex(unit, p) >= num_points_) continue;  // padding: stays 0
    slots[PayloadSlot(p)] = 1;
  }
  return slots;
}

std::vector<bool> SlotLayout::RandomMaskPositions(size_t unit) const {
  std::vector<bool> mask(ring_degree_, true);
  for (size_t p = 0; p < payloads_per_unit(); ++p) {
    if (PointIndex(unit, p) >= num_points_) continue;  // padding handled apart
    mask[PayloadSlot(p)] = false;
  }
  // Padding payload slots must carry the sentinel, not a random value.
  for (size_t s : PaddingPayloadSlots(unit)) mask[s] = false;
  return mask;
}

std::vector<size_t> SlotLayout::PaddingPayloadSlots(size_t unit) const {
  std::vector<size_t> out;
  for (size_t p = 0; p < payloads_per_unit(); ++p) {
    if (PointIndex(unit, p) >= num_points_) out.push_back(PayloadSlot(p));
  }
  return out;
}

std::vector<uint64_t> SlotLayout::IndicatorSlots(size_t payload) const {
  std::vector<uint64_t> slots(ring_degree_, 0);
  const size_t base = PayloadSlot(payload);
  for (size_t j = 0; j < padded_dims_; ++j) slots[base + j] = 1;
  return slots;
}

std::vector<uint64_t> SlotLayout::ExtractPoint(
    const std::vector<uint64_t>& decoded, uint64_t plain_modulus) const {
  SKNN_CHECK_EQ(decoded.size(), ring_degree_);
  std::vector<uint64_t> point(dims_, 0);
  for (size_t p = 0; p < payloads_per_unit(); ++p) {
    const size_t base = PayloadSlot(p);
    for (size_t j = 0; j < dims_; ++j) {
      point[j] = (point[j] + decoded[base + j]) % plain_modulus;
    }
  }
  return point;
}

}  // namespace core
}  // namespace sknn
